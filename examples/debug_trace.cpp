// Developer tool: trace the mGP iteration dynamics (HPWL, overflow tau,
// penalty lambda, WA gamma, steplength alpha, backtracks, energy N) on a
// small circuit. Useful when tuning schedules — the healthy signature is
// lambda growing ~1.1x/iter, gamma shrinking with tau, alpha settling, and
// backtracks mostly 0-1.
//
//   debug_trace           standard-cell circuit
//   debug_trace mixed     adds movable macros
#include <cstdio>

#include "eplace/global_placer.h"
#include "gen/generator.h"
#include "qp/initial_place.h"
#include "util/log.h"

int main(int argc, char** argv) {
  ep::GenSpec spec;
  spec.name = "trace";
  spec.numCells = 1000;
  spec.numMovableMacros = argc > 1 ? 6 : 0;
  spec.numIo = 64;
  spec.seed = 2024;
  ep::PlacementDB db = ep::generateCircuit(spec);
  ep::quadraticInitialPlace(db);

  ep::GpConfig cfg;
  cfg.maxIterations = 600;
  ep::GlobalPlacer gp(db, db.movable(), cfg);
  gp.makeFillersFromDb();
  gp.run([](const ep::GpIterTrace& t) {
    if (t.iter % 20 == 0) {
      std::printf(
          "it %4d hpwl %10.4g tau %6.3f lambda %10.4g gamma %8.3g alpha "
          "%10.4g bt %d energy %10.4g\n",
          t.iter, t.hpwl, t.overflow, t.lambda, t.gamma, t.alpha,
          t.backtracks, t.energy);
    }
  });
  return 0;
}
