// eplace_loadgen — deterministic load + isolation harness for eplace_serve.
//
//   eplace_loadgen --socket <path> [options]
//     --jobs <n>          total requests to issue (default 200)
//     --seed <s>          RNG seed for the mix (default 1)
//     --combos <k>        distinct circuits cycled through (default 6)
//     --cells <n>         cells per generated circuit (default 240)
//     --gp-iters <n>      GP iteration cap per job (default 60)
//     --timeout <sec>     per-job wait bound (default 120)
//     --shutdown          gracefully shut the daemon down at the end
//     --verbose           per-job chatter
//
// The mix is deterministic for a given seed: ~10% of requests are malformed
// or oversized protocol lines (expect a typed rejection, daemon stays up),
// ~10% are fault-armed jobs (a NaN/spike injected into that job's own
// session), ~10% are cancelled right after submission, the rest are clean.
// The harness first computes each circuit's SOLO reference placement
// in-process, then asserts every clean daemon job reproduced the reference
// HPWL BIT-FOR-BIT — the isolation guarantee: poisoned, cancelled and
// malformed neighbors must not move a single ULP of anyone else's result.
// Queue-full submissions must come back as immediate ResourceExhausted
// rejections (admission never blocks); they are retried as slots free up.
// Exit code: 0 = all assertions held, 1 = violation.
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <map>
#include <string>
#include <system_error>
#include <vector>

#include "eplace/session.h"
#include "gen/generator.h"
#include "serve/client.h"
#include "util/io.h"
#include "util/jsonlite.h"
#include "util/rng.h"
#include "util/status.h"
#include "util/timer.h"

namespace {

struct Reference {
  std::uint64_t hpwlBits = 0;
  bool legal = false;
  bool ok = false;
};

struct Mix {
  int jobs = 200;
  std::uint64_t seed = 1;
  int combos = 6;
  int cells = 240;
  int gpIters = 60;
  double waitTimeout = 120.0;
  bool shutdown = false;
  bool verbose = false;
  std::string socket;
};

enum class Role { kClean, kFault, kCancel, kMalformed };

const char* roleName(Role r) {
  switch (r) {
    case Role::kClean: return "clean";
    case Role::kFault: return "fault";
    case Role::kCancel: return "cancel";
    case Role::kMalformed: return "malformed";
  }
  return "?";
}

/// Solo in-process run with EXACTLY the job's placement configuration
/// (supervised flow, same GP cap, detail off) — the bit-exact oracle.
Reference soloReference(const Mix& mix, int combo) {
  ep::SessionOptions so;
  so.name = "solo_" + std::to_string(combo);
  so.threads = 1;
  so.logLevel = ep::LogLevel::kOff;
  so.supervised = true;
  so.flow.gp.maxIterations = mix.gpIters;
  so.flow.runDetail = false;
  ep::PlacerSession session(so);
  ep::GenSpec gs;
  gs.name = so.name;
  gs.numCells = static_cast<std::size_t>(mix.cells);
  gs.seed = mix.seed * 1000 + static_cast<std::uint64_t>(combo);
  Reference ref;
  if (!session.adopt(ep::generateCircuit(gs)).ok()) return ref;
  const auto res = session.place();
  if (!res.ok()) return ref;
  ref.hpwlBits = std::bit_cast<std::uint64_t>(res->finalHpwl);
  ref.legal = res->legality.legal;
  ref.ok = res->status.ok();
  return ref;
}

ep::serve::JobSpec jobFor(const Mix& mix, int combo, int priority) {
  ep::serve::JobSpec spec;
  spec.hasGen = true;
  spec.gen.numCells = static_cast<std::uint64_t>(mix.cells);
  spec.gen.seed = mix.seed * 1000 + static_cast<std::uint64_t>(combo);
  spec.priority = priority;
  spec.threads = 1;
  spec.gpMaxIterations = mix.gpIters;
  spec.runDetail = false;
  return spec;
}

/// A malformed/adversarial line drawn from a fixed corpus or by mutating a
/// valid submit request (seeded, reproducible).
std::string malformedLine(ep::Rng& rng, const std::string& validLine) {
  static const char* kCorpus[] = {
      "",
      "{",
      "not json at all",
      "[1,2,3]",
      "{\"op\":\"submit\"}",
      "{\"op\":\"launch_missiles\"}",
      "{\"op\":\"submit\",\"job\":{}}",
      "{\"op\":\"submit\",\"job\":{\"gen\":{\"cells\":-5}}}",
      "{\"op\":\"wait\",\"id\":\"twelve\"}",
      "{\"op\":\"cancel\"}",
      "{\"op\":42}",
      "{\"op\":\"submit\",\"job\":{\"aux\":\"x\",\"gen\":{}}}",
      "{\"op\":\"ping\",\"junk\":\"\\udead\"}",
      "\x00\x01\x02garbage",
  };
  const std::size_t pick = static_cast<std::size_t>(
      rng.below(std::size(kCorpus) + 2));
  if (pick < std::size(kCorpus)) return kCorpus[pick];
  // Mutate a valid line: truncate or flip one byte.
  std::string line = validLine;
  if (line.empty()) return "{";
  if (pick == std::size(kCorpus)) {
    line.resize(line.size() / 2);
  } else {
    const std::size_t idx = static_cast<std::size_t>(rng.below(line.size()));
    line[idx] = static_cast<char>(line[idx] ^ (1 << rng.below(7)));
    if (line[idx] == '\n') line[idx] = '}';
  }
  return line;
}

}  // namespace

int main(int argc, char** argv) {
  Mix mix;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket" && i + 1 < argc) {
      mix.socket = argv[++i];
    } else if (a == "--jobs" && i + 1 < argc) {
      mix.jobs = std::atoi(argv[++i]);
    } else if (a == "--seed" && i + 1 < argc) {
      mix.seed = static_cast<std::uint64_t>(std::atoll(argv[++i]));
    } else if (a == "--combos" && i + 1 < argc) {
      mix.combos = std::atoi(argv[++i]);
    } else if (a == "--cells" && i + 1 < argc) {
      mix.cells = std::atoi(argv[++i]);
    } else if (a == "--gp-iters" && i + 1 < argc) {
      mix.gpIters = std::atoi(argv[++i]);
    } else if (a == "--timeout" && i + 1 < argc) {
      mix.waitTimeout = std::atof(argv[++i]);
    } else if (a == "--shutdown") {
      mix.shutdown = true;
    } else if (a == "--verbose") {
      mix.verbose = true;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 1;
    }
  }
  if (mix.socket.empty()) {
    std::fprintf(stderr, "usage: eplace_loadgen --socket <path> [options]\n");
    return 1;
  }

  ep::serve::ServeClient client;
  if (const ep::Status s = client.connect(mix.socket, 10.0); !s.ok()) {
    std::fprintf(stderr, "connect: %s\n", s.toString().c_str());
    return 1;
  }
  if (const ep::Status s = client.ping(); !s.ok()) {
    std::fprintf(stderr, "ping: %s\n", s.toString().c_str());
    return 1;
  }

  std::printf("loadgen: computing %d solo reference placement(s)...\n",
              mix.combos);
  std::vector<Reference> refs;
  refs.reserve(static_cast<std::size_t>(mix.combos));
  for (int c = 0; c < mix.combos; ++c) refs.push_back(soloReference(mix, c));

  ep::Rng rng(mix.seed);
  struct Submitted {
    std::uint64_t id;
    int combo;
    Role role;
  };
  std::vector<Submitted> inFlight;
  int malformedSent = 0, malformedTypedRejections = 0;
  int queueFullRejections = 0, submitRetriesExhausted = 0;
  int faultArmed = 0, cancelsSent = 0;
  double worstSubmitSeconds = 0.0;
  int violations = 0;

  for (int i = 0; i < mix.jobs; ++i) {
    const int combo = i % mix.combos;
    const int priority = static_cast<int>(rng.below(4));
    Role role = Role::kClean;
    switch (i % 10) {
      case 3: role = Role::kMalformed; break;
      case 6: role = Role::kFault; break;
      case 9: role = Role::kCancel; break;
      default: break;
    }
    ep::serve::JobSpec spec = jobFor(mix, combo, priority);
    spec.name = std::string(roleName(role)) + "_" + std::to_string(i);

    if (role == Role::kMalformed) {
      ep::serve::JsonValue req = ep::serve::JsonValue::object();
      req.set("op", ep::serve::JsonValue::str("submit"));
      req.set("job", ep::serve::jobSpecToJson(spec));
      const std::string bad = malformedLine(rng, ep::serve::writeJson(req));
      ++malformedSent;
      const auto raw = client.callRaw(bad, 30.0);
      if (!raw.ok()) {
        // Daemon dropped the connection (allowed for unframeable input);
        // it must still accept a fresh one.
        if (!client.connect(mix.socket, 10.0).ok() || !client.ping().ok()) {
          std::fprintf(stderr, "FAIL: daemon gone after malformed line\n");
          return 1;
        }
        ++malformedTypedRejections;
        continue;
      }
      const auto resp = ep::serve::parseJson(*raw);
      if (!resp.ok() || resp->getBool("ok", true)) {
        // A mutated line can still be a VALID submit — accept that case.
        if (resp.ok() && resp->getBool("ok", false) &&
            resp->getNumber("id", 0) >= 1) {
          inFlight.push_back({static_cast<std::uint64_t>(
                                  resp->getNumber("id", 0)),
                              combo, Role::kCancel});  // treat loosely
          continue;
        }
        std::fprintf(stderr, "FAIL: malformed line got a non-typed reply\n");
        ++violations;
        continue;
      }
      ++malformedTypedRejections;
      continue;
    }

    if (role == Role::kFault) {
      ep::serve::InjectSpec inj;
      inj.site = rng.chance(0.5) ? "nesterov.grad" : "fft.forward";
      inj.spec.kind = rng.chance(0.5) ? ep::FaultKind::kNaN
                                      : ep::FaultKind::kSpike;
      inj.spec.atTick = static_cast<long>(rng.below(20));
      inj.spec.count = 2;
      spec.injections.push_back(inj);
      ++faultArmed;
    }

    // Admission must never block: a full queue is an immediate typed
    // rejection, retried here as capacity frees up.
    std::uint64_t id = 0;
    bool accepted = false;
    for (int attempt = 0; attempt < 500; ++attempt) {
      ep::Timer t;
      const auto sub = client.submit(spec);
      const double took = t.seconds();
      worstSubmitSeconds = std::max(worstSubmitSeconds, took);
      if (sub.ok()) {
        id = *sub;
        accepted = true;
        break;
      }
      if (sub.status().code() == ep::StatusCode::kResourceExhausted) {
        ++queueFullRejections;
        if (took > 5.0) {
          std::fprintf(stderr, "FAIL: queue-full rejection took %.1fs "
                               "(admission blocked)\n", took);
          ++violations;
        }
        // Drain one in-flight job, then retry.
        if (!inFlight.empty()) {
          (void)client.wait(inFlight.front().id, mix.waitTimeout);
        }
        continue;
      }
      std::fprintf(stderr, "submit %s: %s\n", spec.name.c_str(),
                   sub.status().toString().c_str());
      break;
    }
    if (!accepted) {
      ++submitRetriesExhausted;
      continue;
    }
    if (role == Role::kCancel) {
      ++cancelsSent;
      (void)client.cancel(id);
    }
    inFlight.push_back({id, combo, role});
    if (mix.verbose) {
      std::printf("  #%llu %s (combo %d, prio %d)\n",
                  static_cast<unsigned long long>(id), roleName(role), combo,
                  priority);
    }
  }

  std::printf("loadgen: %zu accepted, waiting...\n", inFlight.size());
  int cleanOk = 0, cleanMismatch = 0, faultTerminal = 0, cancelled = 0;
  for (const Submitted& s : inFlight) {
    const auto out = client.wait(s.id, mix.waitTimeout);
    if (!out.ok()) {
      std::fprintf(stderr, "FAIL: wait(%llu) -> %s\n",
                   static_cast<unsigned long long>(s.id),
                   out.status().toString().c_str());
      ++violations;
      continue;
    }
    switch (s.role) {
      case Role::kClean: {
        const Reference& ref = refs[static_cast<std::size_t>(s.combo)];
        if (!out->status.ok() || out->hpwlBits != ref.hpwlBits ||
            out->legal != ref.legal) {
          std::fprintf(stderr,
                       "FAIL: clean job %llu diverged from solo reference "
                       "(status %s, bits %016llx vs %016llx)\n",
                       static_cast<unsigned long long>(s.id),
                       statusCodeName(out->status.code()),
                       static_cast<unsigned long long>(out->hpwlBits),
                       static_cast<unsigned long long>(ref.hpwlBits));
          ++cleanMismatch;
          ++violations;
        } else {
          ++cleanOk;
        }
        break;
      }
      case Role::kFault:
        // Contract: typed terminal outcome (graceful recovery to Ok is
        // fine), never a wedged job or daemon crash.
        ++faultTerminal;
        break;
      case Role::kCancel:
        if (out->status.code() == ep::StatusCode::kCancelled) {
          ++cancelled;
        }  // Ok = the job outran the cancel; also legal.
        break;
      case Role::kMalformed:
        break;
    }
  }

  const auto stats = client.stats();
  if (stats.ok()) {
    std::printf("daemon queue %g/%g, counters: %s\n",
                stats->getNumber("queue_depth", -1),
                stats->getNumber("queue_capacity", -1),
                ep::serve::writeJson(*stats->find("counters")).c_str());
  }
  if (mix.shutdown) {
    (void)client.shutdownDaemon();
  }

  std::printf(
      "loadgen summary: %d clean ok, %d clean MISMATCHED, %d fault jobs "
      "terminal, %d/%d cancels took effect, %d malformed sent (%d typed "
      "rejections), %d queue-full rejections (worst submit %.2fs), %d "
      "submits gave up, %d violations\n",
      cleanOk, cleanMismatch, faultTerminal, cancelled, cancelsSent,
      malformedSent, malformedTypedRejections, queueFullRejections,
      worstSubmitSeconds, submitRetriesExhausted, violations);
  if (malformedSent != malformedTypedRejections) {
    // Mutated-but-valid lines are counted above; anything else is a bug.
    std::printf("note: %d mutated line(s) parsed as valid requests\n",
                malformedSent - malformedTypedRejections);
  }

  // Machine-readable run summary, built with the shared jsonlite writer and
  // accumulated under bench_results/ alongside the bench run records.
  {
    ep::JsonValue sum = ep::JsonValue::object();
    sum.set("jobs", ep::JsonValue::number(mix.jobs));
    sum.set("clean_ok", ep::JsonValue::number(cleanOk));
    sum.set("clean_mismatched", ep::JsonValue::number(cleanMismatch));
    sum.set("fault_terminal", ep::JsonValue::number(faultTerminal));
    sum.set("cancels_sent", ep::JsonValue::number(cancelsSent));
    sum.set("cancels_effective", ep::JsonValue::number(cancelled));
    sum.set("malformed_sent", ep::JsonValue::number(malformedSent));
    sum.set("malformed_typed_rejections",
            ep::JsonValue::number(malformedTypedRejections));
    sum.set("queue_full_rejections",
            ep::JsonValue::number(queueFullRejections));
    sum.set("worst_submit_seconds",
            ep::JsonValue::number(worstSubmitSeconds));
    sum.set("submits_gave_up", ep::JsonValue::number(submitRetriesExhausted));
    sum.set("violations", ep::JsonValue::number(violations));
    std::error_code ec;
    std::filesystem::create_directories("bench_results", ec);
    const ep::Status wr = ep::io::writeFileDurably(
        "bench_results/loadgen_summary.json", ep::writeJson(sum) + "\n");
    if (!wr.ok()) {
      std::fprintf(stderr, "summary write failed: %s\n",
                   wr.toString().c_str());
    } else {
      std::printf("wrote bench_results/loadgen_summary.json\n");
    }
  }
  return violations == 0 ? 0 : 1;
}
