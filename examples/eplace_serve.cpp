// eplace_serve — the placement daemon (src/serve/daemon.h).
//
//   eplace_serve --socket <path> --root <dir> [options]
//     --socket <path>     AF_UNIX socket to listen on (required; keep
//                         short — sun_path is ~100 bytes)
//     --root <dir>        durable state root: job journal, results,
//                         snapshots, stats dump (required)
//     --workers <n>       concurrent placement jobs (default 2)
//     --queue-cap <n>     admission queue bound; a full queue rejects with
//                         ResourceExhausted, it never blocks (default 64)
//     --job-threads <n>   per-job session threads (default 1)
//     --drain <sec>       graceful-shutdown drain budget before running
//                         jobs are checkpointed + preempted (default 30)
//     --save-every <n>    default mid-stage snapshot cadence (default 25)
//     --max-request <n>   request line byte cap (default 65536)
//     --inject <site=kind@tick[xN]>  arm a daemon-level fault
//                         (serve.request / serve.accept)
//     --log-level <lvl>   debug | info | warn | error | off
//     --verbose           shorthand for --log-level info
//
// Protocol and guarantees: docs/SERVING.md. SIGINT/SIGTERM trigger the
// same graceful drain as the "shutdown" op; SIGKILL is recovered from by
// the next start (journal + snapshots). Exit codes follow
// ep::statusExitCode.
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "serve/daemon.h"
#include "util/context.h"
#include "util/fault_injector.h"
#include "util/log.h"
#include "util/status.h"

namespace {

volatile std::sig_atomic_t gSignalled = 0;

void onSignal(int) { gSignalled = 1; }

bool parseInjection(const std::string& arg, std::string* site,
                    ep::FaultSpec* spec) {
  const auto eq = arg.find('=');
  const auto at = arg.find('@');
  if (eq == std::string::npos || at == std::string::npos || at < eq) {
    return false;
  }
  *site = arg.substr(0, eq);
  const std::string kind = arg.substr(eq + 1, at - eq - 1);
  std::string tickStr = arg.substr(at + 1);
  if (kind == "nan") {
    spec->kind = ep::FaultKind::kNaN;
  } else if (kind == "spike") {
    spec->kind = ep::FaultKind::kSpike;
  } else if (kind == "trunc") {
    spec->kind = ep::FaultKind::kTruncate;
  } else if (kind == "error") {
    spec->kind = ep::FaultKind::kError;  // io.* sites: typed error return
  } else {
    return false;
  }
  const auto x = tickStr.find('x');
  if (x != std::string::npos) {
    spec->count = std::atoi(tickStr.c_str() + x + 1);
    tickStr.resize(x);
  }
  spec->atTick = std::atol(tickStr.c_str());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ep::serve::ServeOptions opt;
  std::vector<std::pair<std::string, ep::FaultSpec>> injections;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--socket" && i + 1 < argc) {
      opt.socketPath = argv[++i];
    } else if (a == "--root" && i + 1 < argc) {
      opt.root = argv[++i];
    } else if (a == "--workers" && i + 1 < argc) {
      opt.workers = std::atoi(argv[++i]);
    } else if (a == "--queue-cap" && i + 1 < argc) {
      opt.queueCapacity = std::atoi(argv[++i]);
    } else if (a == "--job-threads" && i + 1 < argc) {
      opt.jobThreads = std::atoi(argv[++i]);
    } else if (a == "--drain" && i + 1 < argc) {
      opt.drainSeconds = std::atof(argv[++i]);
    } else if (a == "--save-every" && i + 1 < argc) {
      opt.defaultSaveEvery = std::atoi(argv[++i]);
    } else if (a == "--max-request" && i + 1 < argc) {
      opt.maxRequestBytes =
          static_cast<std::size_t>(std::atol(argv[++i]));
    } else if (a == "--inject" && i + 1 < argc) {
      std::string site;
      ep::FaultSpec spec;
      if (!parseInjection(argv[++i], &site, &spec)) {
        std::fprintf(stderr, "bad --inject spec %s\n", argv[i]);
        return 1;
      }
      injections.emplace_back(std::move(site), spec);
    } else if (a == "--log-level" && i + 1 < argc) {
      if (!ep::parseLogLevel(argv[++i], &opt.logLevel)) {
        std::fprintf(stderr, "bad --log-level %s\n", argv[i]);
        return 1;
      }
    } else if (a == "--verbose") {
      opt.logLevel = ep::LogLevel::kInfo;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 1;
    }
  }
  if (opt.socketPath.empty() || opt.root.empty()) {
    std::fprintf(stderr, "usage: eplace_serve --socket <path> --root <dir> "
                         "[options]\n");
    return 1;
  }

  ep::serve::ServeDaemon daemon(opt);
  for (const auto& [site, spec] : injections) {
    daemon.context().faults().arm(site, spec);
  }
  const ep::Status s = daemon.start();
  if (!s.ok()) {
    std::fprintf(stderr, "error: %s\n", s.toString().c_str());
    return ep::statusExitCode(s.code());
  }
  std::printf("eplace_serve: listening on %s (state root %s)\n",
              opt.socketPath.c_str(), opt.root.c_str());
  if (daemon.recoveredJobs() > 0) {
    std::printf("eplace_serve: resuming %d journaled job(s)\n",
                daemon.recoveredJobs());
  }
  std::signal(SIGINT, onSignal);
  std::signal(SIGTERM, onSignal);
  // The handler only sets a flag; the graceful drain runs on this thread.
  while (gSignalled == 0 && !daemon.stopping()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  daemon.requestShutdown();
  daemon.wait();
  std::printf("eplace_serve: shut down cleanly\n");
  return 0;
}
