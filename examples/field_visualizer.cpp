// Electrostatics visualizer — renders the eDensity quantities of Sec. IV
// for a placement state: charge density rho(x,y), potential psi(x,y) from
// the Neumann Poisson solve, and field magnitude |xi(x,y)|. Shows why the
// analogy works: potential peaks over dense regions and the field pushes
// charges down the potential slope toward whitespace.
//
// Writes field_rho.ppm / field_psi.ppm / field_mag.ppm for the mIP state
// (everything piled at the center) of a small circuit.
#include <cmath>
#include <cstdio>
#include <vector>

#include "density/electro.h"
#include "eval/plot.h"
#include "gen/generator.h"
#include "qp/initial_place.h"

int main() {
  ep::GenSpec spec;
  spec.name = "fieldviz";
  spec.numCells = 1200;
  spec.numFixedMacros = 4;
  spec.seed = 31;
  ep::PlacementDB db = ep::generateCircuit(spec);
  ep::quadraticInitialPlace(db);  // dense pile: strongest fields

  const std::size_t m = 128;
  ep::ElectroDensity ed(db.region, m, m, db.targetDensity);
  ed.stampFixed(db);

  std::vector<double> cx, cy, w, h;
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    cx.push_back(o.center().x);
    cy.push_back(o.center().y);
    w.push_back(o.w);
    h.push_back(o.h);
  }
  ed.update(ep::ChargeView{cx, cy, w, h});

  std::vector<double> mag(m * m);
  const auto ex = ed.fieldX(), ey = ed.fieldY();
  for (std::size_t b = 0; b < mag.size(); ++b) {
    mag[b] = std::hypot(ex[b], ey[b]);
  }

  bool ok = ep::plotScalarMap(ed.density(), m, m, "field_rho.ppm") &&
            ep::plotScalarMap(ed.potential(), m, m, "field_psi.ppm") &&
            ep::plotScalarMap(mag, m, m, "field_mag.ppm");
  std::printf("density energy N(v) = %.6g\n", ed.energy());
  std::printf("wrote field_rho.ppm, field_psi.ppm, field_mag.ppm: %s\n",
              ok ? "ok" : "FAILED");

  // Numeric sanity: the potential's maximum sits near the charge pile
  // (the region center, where mIP stacked everything).
  const auto psi = ed.potential();
  std::size_t argmax = 0;
  for (std::size_t b = 0; b < psi.size(); ++b) {
    if (psi[b] > psi[argmax]) argmax = b;
  }
  const double px = (argmax % m + 0.5) / m, py = (argmax / m + 0.5) / m;
  std::printf("potential peak at (%.2f, %.2f) of the region (pile at "
              "~0.5, 0.5)\n", px, py);
  return ok ? 0 : 1;
}
