// Quickstart: generate a small circuit, run the full ePlace flow, print the
// per-stage metrics, and verify the final layout is legal.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>

#include "eplace/flow.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "util/log.h"

int main() {
  ep::setLogLevel(ep::LogLevel::kInfo);

  // A small mixed-size instance: 1000 std cells, 6 movable macros, IO pads.
  ep::GenSpec spec;
  spec.name = "quickstart";
  spec.numCells = 1000;
  spec.numMovableMacros = 6;
  spec.numIo = 64;
  spec.utilization = 0.7;
  spec.seed = 2024;
  ep::PlacementDB db = ep::generateCircuit(spec);
  std::printf("circuit: %zu objects, %zu nets, region %.0f x %.0f\n",
              db.objects.size(), db.nets.size(), db.region.width(),
              db.region.height());

  ep::FlowConfig cfg;
  const ep::FlowResult res = ep::runEplaceFlow(db, cfg);

  auto stage = [](const char* name, const ep::StageMetrics& m) {
    if (!m.ran) return;
    std::printf("%-4s  HPWL %12.4e  overflow %6.3f  %7.2fs  (%d iters)\n",
                name, m.hpwl, m.overflow, m.seconds, m.iterations);
  };
  stage("mIP", res.mip);
  stage("mGP", res.mgp);
  stage("mLG", res.mlg);
  stage("cGP", res.cgp);
  stage("cDP", res.cdp);
  std::printf("final HPWL %.4e (scaled %.4e), legal=%s\n", res.finalHpwl,
              res.finalScaledHpwl, res.legality.legal ? "yes" : "no");
  if (!res.legality.legal) {
    std::printf("first legality issue: %s\n", res.legality.firstIssue.c_str());
    return 1;
  }
  return 0;
}
