// Physical-design extensions demo: the two future-work directions the
// paper names (Sec. VIII) running on top of the unchanged ePlace engine —
// timing-driven placement via criticality net weighting, and
// routability-driven refinement via RUDY congestion + cell inflation.
#include <cstdio>

#include "eplace/flow.h"
#include "gen/generator.h"
#include "route/routability.h"
#include "timing/timing_driven.h"
#include "util/log.h"

int main() {
  ep::setLogLevel(ep::LogLevel::kInfo);

  // --- Timing-driven placement ---
  {
    ep::GenSpec spec;
    spec.name = "timing_demo";
    spec.numCells = 1200;
    spec.seed = 51;
    ep::PlacementDB db = ep::generateCircuit(spec);

    ep::TimingDrivenConfig cfg;
    cfg.clockFactor = 0.9;  // clock 10% tighter than the seed critical path
    cfg.rounds = 2;
    const ep::TimingDrivenResult res = ep::timingDrivenPlace(db, cfg);
    std::printf(
        "timing-driven: clock %.4g | WNS %.4g -> %.4g | critical path "
        "%.4g -> %.4g | HPWL %+.2f%% | legal=%s\n",
        res.clockPeriod, res.wnsBefore, res.wnsAfter, res.maxDelayBefore,
        res.maxDelayAfter, (res.hpwlAfter / res.hpwlBefore - 1.0) * 100.0,
        res.legal ? "yes" : "no");
  }

  // --- Routability-driven refinement ---
  {
    ep::GenSpec spec;
    spec.name = "route_demo";
    spec.numCells = 1200;
    spec.locality = 0.9;  // tight clusters create congestion knots
    spec.seed = 52;
    ep::PlacementDB db = ep::generateCircuit(spec);
    ep::runEplaceFlow(db);

    const ep::RoutabilityResult res = ep::routabilityDrivenRefine(db);
    std::printf(
        "routability: hotspot %.4g -> %.4g | peak %.4g -> %.4g | HPWL "
        "%+.2f%% | rounds %d | legal=%s\n",
        res.hotspotBefore, res.hotspotAfter, res.peakBefore, res.peakAfter,
        (res.hpwlAfter / res.hpwlBefore - 1.0) * 100.0, res.rounds,
        res.legal ? "yes" : "no");
  }
  return 0;
}
