// Mixed-size placement walkthrough — the scenario the paper's introduction
// motivates: a design with large movable macros *and* standard cells,
// placed by one generalized engine instead of a floorplanner + placer
// two-stage split.
//
// Demonstrates: stage-by-stage execution with live traces, snapshot images
// per stage, and the final legality/quality report.
#include <cstdio>

#include "eplace/flow.h"
#include "eval/metrics.h"
#include "eval/plot.h"
#include "gen/generator.h"
#include "util/log.h"

int main() {
  ep::setLogLevel(ep::LogLevel::kInfo);

  ep::GenSpec spec;
  spec.name = "mixed_size_demo";
  spec.numCells = 2000;
  spec.numMovableMacros = 12;
  spec.macroAreaFraction = 0.35;
  spec.numIo = 96;
  spec.utilization = 0.65;
  spec.seed = 7;
  ep::PlacementDB db = ep::generateCircuit(spec);
  std::printf("instance: %zu cells + %zu movable macros, %zu nets\n",
              spec.numCells, db.numMovableMacros(), db.nets.size());

  ep::FlowConfig cfg;
  int lastPrinted = -1000;
  cfg.gpTrace = [&](const std::string& stage, const ep::GpIterTrace& t) {
    if (t.iter - lastPrinted >= 50 || t.iter == 0) {
      std::printf("  [%s] iter %4d  HPWL %10.4g  overflow %5.3f  lambda "
                  "%8.3g\n",
                  stage.c_str(), t.iter, t.hpwl, t.overflow, t.lambda);
      lastPrinted = t.iter;
    }
  };

  const ep::FlowResult res = ep::runEplaceFlow(db, cfg);
  ep::plotLayout(db, "mixed_size_final.ppm");

  std::printf("\nstage summary:\n");
  auto stage = [](const char* name, const ep::StageMetrics& m) {
    if (!m.ran) return;
    std::printf("  %-4s HPWL %10.4g  overflow %5.3f  %6.2fs\n", name, m.hpwl,
                m.overflow, m.seconds);
  };
  stage("mIP", res.mip);
  stage("mGP", res.mgp);
  stage("mLG", res.mlg);
  stage("cGP", res.cgp);
  stage("cDP", res.cdp);
  std::printf("macro legalization: overlap %.4g -> %.4g (%s)\n",
              res.mlgResult.overlapBefore, res.mlgResult.overlapAfter,
              res.mlgResult.legal ? "legal" : "NOT legal");
  std::printf("final: HPWL %.4g, legal=%s, total %.2fs "
              "(layout: mixed_size_final.ppm)\n",
              res.finalHpwl, res.legality.legal ? "yes" : "no",
              res.totalSeconds);
  return res.legality.legal ? 0 : 1;
}
