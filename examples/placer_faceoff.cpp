// Placer face-off — runs all four engines in this repo (min-cut, quadratic
// spreading, bell-shape nonlinear CG, and ePlace) on the same circuit and
// prints a comparison, mirroring one row of the paper's tables. A compact
// way to explore how the algorithm categories behave as the circuit knobs
// (size, macros, density cap) change.
//
//   placer_faceoff [cells] [macros] [density]
#include <cstdio>
#include <cstdlib>

#include "baseline/bell.h"
#include "baseline/mincut.h"
#include "baseline/quadratic.h"
#include "eplace/flow.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "legal/detail.h"
#include "legal/legalize.h"
#include "legal/mlg.h"
#include "qp/initial_place.h"
#include "util/timer.h"
#include "wirelength/wl.h"

namespace {

struct Row {
  const char* name;
  double hpwl, scaled, overflow, seconds;
  bool legal;
};

void finish(ep::PlacementDB& db) {
  if (db.numMovableMacros() > 0) {
    ep::legalizeMacros(db);
    for (auto& o : db.objects) {
      if (o.kind == ep::ObjKind::kMacro) o.fixed = true;
    }
    db.finalize();
  }
  ep::legalizeCells(db);
  ep::detailPlace(db);
}

Row measure(const char* name, ep::PlacementDB& db, double seconds) {
  return {name,
          ep::hpwl(db),
          ep::scaledHpwl(db),
          ep::densityOverflow(db).overflow,
          seconds,
          ep::checkLegality(db).legal};
}

}  // namespace

int main(int argc, char** argv) {
  ep::GenSpec spec;
  spec.name = "faceoff";
  spec.numCells = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 1500;
  spec.numMovableMacros = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 8;
  spec.targetDensity = argc > 3 ? std::atof(argv[3]) : 1.0;
  if (spec.targetDensity < 1.0) spec.utilization = 0.45 * spec.targetDensity;
  spec.seed = 4242;

  std::printf("circuit: %zu cells, %zu macros, rho_t %.2f\n", spec.numCells,
              spec.numMovableMacros, spec.targetDensity);
  std::vector<Row> rows;

  {
    ep::PlacementDB db = ep::generateCircuit(spec);
    ep::Timer t;
    ep::minCutPlace(db);
    finish(db);
    rows.push_back(measure("min-cut (Capo-like)", db, t.seconds()));
  }
  {
    ep::PlacementDB db = ep::generateCircuit(spec);
    ep::Timer t;
    ep::quadraticPlace(db);
    finish(db);
    rows.push_back(measure("quadratic (FastPlace-like)", db, t.seconds()));
  }
  {
    ep::PlacementDB db = ep::generateCircuit(spec);
    ep::Timer t;
    ep::quadraticInitialPlace(db);
    ep::bellPlace(db);
    finish(db);
    rows.push_back(measure("bell-shape CG (APlace-like)", db, t.seconds()));
  }
  {
    ep::PlacementDB db = ep::generateCircuit(spec);
    ep::Timer t;
    ep::runEplaceFlow(db);
    rows.push_back(measure("ePlace", db, t.seconds()));
  }

  std::printf("\n%-28s %12s %12s %10s %8s %6s\n", "placer", "HPWL", "sHPWL",
              "overflow", "time(s)", "legal");
  const double ref = rows.back().scaled;
  for (const auto& r : rows) {
    std::printf("%-28s %12.4g %12.4g %10.4f %8.2f %6s  (%+.1f%% vs ePlace)\n",
                r.name, r.hpwl, r.scaled, r.overflow, r.seconds,
                r.legal ? "yes" : "no", (r.scaled / ref - 1.0) * 100.0);
  }
  return 0;
}
