// eplace_cli — command-line placer over Bookshelf (ISPD contest) files.
//
//   eplace_cli <design.aux> [options]
//     --out <dir>        write the placed result as <dir>/<name>_placed.*
//     --density <rho>    target density rho_t (default 1.0)
//     --plot <file.ppm>  render the final layout
//     --no-detail        stop after legalization
//     --verbose          info-level logging
//
// With no arguments it demonstrates the full loop on a generated circuit:
// write Bookshelf, read it back, place, and emit the placed .pl — i.e. the
// exact workflow for running the genuine ISPD 2005/2006/MMS releases.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <string>

#include "bookshelf/bookshelf.h"
#include "eplace/flow.h"
#include "eval/metrics.h"
#include "eval/plot.h"
#include "gen/generator.h"
#include "util/log.h"

namespace {

int place(ep::PlacementDB& db, const std::string& outDir,
          const std::string& plotPath, bool detail) {
  ep::FlowConfig cfg;
  cfg.runDetail = detail;
  const ep::FlowResult res = ep::runEplaceFlow(db, cfg);
  std::printf("%s: HPWL %.6g (scaled %.6g), overflow %.4f, legal=%s, %.2fs\n",
              db.name.c_str(), res.finalHpwl, res.finalScaledHpwl,
              ep::densityOverflow(db).overflow,
              res.legality.legal ? "yes" : "no", res.totalSeconds);
  if (!outDir.empty()) {
    std::filesystem::create_directories(outDir);
    const auto wr = ep::writeBookshelf(outDir, db.name + "_placed", db);
    if (!wr.ok) {
      std::fprintf(stderr, "error: %s\n", wr.error.c_str());
      return 1;
    }
    std::printf("wrote %s/%s_placed.{aux,nodes,nets,pl,scl,wts}\n",
                outDir.c_str(), db.name.c_str());
  }
  if (!plotPath.empty() && ep::plotLayout(db, plotPath)) {
    std::printf("wrote %s\n", plotPath.c_str());
  }
  return res.legality.legal ? 0 : 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string aux, outDir, plotPath;
  double density = 0.0;
  bool detail = true;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      outDir = argv[++i];
    } else if (a == "--density" && i + 1 < argc) {
      density = std::atof(argv[++i]);
    } else if (a == "--plot" && i + 1 < argc) {
      plotPath = argv[++i];
    } else if (a == "--no-detail") {
      detail = false;
    } else if (a == "--verbose") {
      ep::setLogLevel(ep::LogLevel::kInfo);
    } else if (a[0] != '-') {
      aux = a;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 1;
    }
  }

  ep::PlacementDB db;
  if (aux.empty()) {
    // Demo mode: generate -> write -> read back -> place.
    std::printf("no .aux given; running the round-trip demo\n");
    ep::GenSpec spec;
    spec.name = "cli_demo";
    spec.numCells = 1500;
    spec.numMovableMacros = 8;
    spec.seed = 99;
    ep::PlacementDB generated = ep::generateCircuit(spec);
    std::filesystem::create_directories("cli_demo");
    const auto wr = ep::writeBookshelf("cli_demo", "cli_demo", generated);
    if (!wr.ok) {
      std::fprintf(stderr, "write failed: %s\n", wr.error.c_str());
      return 1;
    }
    aux = "cli_demo/cli_demo.aux";
    if (outDir.empty()) outDir = "cli_demo";
  }

  const auto rd = ep::readBookshelf(aux, db);
  if (!rd.ok) {
    std::fprintf(stderr, "cannot read %s: %s\n", aux.c_str(),
                 rd.error.c_str());
    return 1;
  }
  if (density > 0.0) db.targetDensity = density;
  std::printf("loaded %s: %zu objects (%zu movable), %zu nets, region %.0f x "
              "%.0f, rho_t %.2f\n",
              db.name.c_str(), db.objects.size(), db.numMovable(),
              db.nets.size(), db.region.width(), db.region.height(),
              db.targetDensity);
  return place(db, outDir, plotPath, detail);
}
