// eplace_cli — command-line placer over Bookshelf (ISPD contest) files.
//
//   eplace_cli <design.aux> [options]
//     --out <dir>            write the placed result as <dir>/<name>_placed.*
//     --density <rho>        target density rho_t (default 1.0)
//     --plot <file.ppm>      render the final layout
//     --no-detail            stop after legalization
//     --checkpoint-every <n> rollback checkpoint cadence in GP iterations
//     --time-budget <sec>    wall-clock watchdog per placement stage
//     --max-recoveries <n>   rollback attempts before graceful degradation
//     --supervised           run under the FlowSupervisor (per-stage retry,
//                            fallback and invariant gates)
//     --snapshot-dir <dir>   write durable snapshots there (implies
//                            --supervised)
//     --save-every <n>       GP iterations between mid-stage snapshots
//                            (0 = stage boundaries only)
//     --resume <dir>         resume from the newest valid snapshot in <dir>
//                            (implies --supervised)
//     --stage-budget <sec>   per-stage wall budget for the supervisor
//     --stage-attempts <n>   per-stage retry cap for the supervisor
//     --multilevel           multilevel V-cycle mGP for large designs
//                            (implies --supervised; docs/SCALING.md)
//     --ml-min-movable <n>   movable-count threshold to engage the ladder
//     --inject <site=kind@tick[xN]>  arm the fault injector, e.g.
//                            nesterov.grad=nan@40, fft.forward=spike@3,
//                            bookshelf.line=trunc@10x-1 (N=-1: every pass)
//     --threads <n>          worker threads for the hot kernels (default:
//                            hardware concurrency; results are bit-identical
//                            for any n, see docs/PERFORMANCE.md)
//     --batch <manifest>     place every .aux listed in <manifest> (one path
//                            per line, # comments) instead of a single design
//     --sessions <k>         concurrent placer sessions for --batch
//                            (default 2); --threads is split across them
//     --record-out <path>    write the structured run record (JSON, see
//                            docs/OBSERVABILITY.md) there; in --batch mode
//                            <path> is a directory getting <name>.json each
//     --log-level <lvl>      debug | info | warn | error | off (default warn)
//     --verbose              shorthand for --log-level info
//
// Exit codes follow ep::statusExitCode (docs/ROBUSTNESS.md):
//   0 success   1 usage/unknown error   2 InvalidInput   3 Io
//   4 NumericalDivergence   5 Timeout   6 placed but not legal
//   7 Internal (a hot-path task threw; converted at the flow boundary)
//   8 Cancelled   9 ResourceExhausted   10 Unavailable
//
// With no arguments it demonstrates the full loop on a generated circuit:
// write Bookshelf, read it back, place, and emit the placed .pl — i.e. the
// exact workflow for running the genuine ISPD 2005/2006/MMS releases.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

#include "bookshelf/bookshelf.h"
#include "eplace/flow.h"
#include "eplace/session.h"
#include "eplace/supervisor.h"
#include "eval/metrics.h"
#include "eval/plot.h"
#include "gen/generator.h"
#include "util/context.h"
#include "util/fault_injector.h"
#include "util/log.h"
#include "util/status.h"

namespace {

// The process exit code is the shared taxonomy mapping (ep::statusExitCode);
// 6 is reserved by this CLI for "placed but not legal".
int exitCodeFor(ep::StatusCode code) { return ep::statusExitCode(code); }

/// Parses "site=kind@tick" or "site=kind@tickxCount"; armed on the run
/// context once it exists (after --threads / --log-level are known).
bool parseInjection(const std::string& arg, std::string* site,
                    ep::FaultSpec* spec) {
  const auto eq = arg.find('=');
  const auto at = arg.find('@');
  if (eq == std::string::npos || at == std::string::npos || at < eq) {
    return false;
  }
  *site = arg.substr(0, eq);
  const std::string kind = arg.substr(eq + 1, at - eq - 1);
  std::string tickStr = arg.substr(at + 1);
  if (kind == "nan") {
    spec->kind = ep::FaultKind::kNaN;
  } else if (kind == "spike") {
    spec->kind = ep::FaultKind::kSpike;
  } else if (kind == "trunc") {
    spec->kind = ep::FaultKind::kTruncate;
  } else if (kind == "error") {
    spec->kind = ep::FaultKind::kError;
  } else {
    return false;
  }
  const auto x = tickStr.find('x');
  if (x != std::string::npos) {
    spec->count = std::atoi(tickStr.c_str() + x + 1);
    tickStr.resize(x);
  }
  spec->atTick = std::atol(tickStr.c_str());
  return true;
}

/// Reads a batch manifest: one .aux path per line, blank lines and
/// #-comments skipped.
bool readManifest(const std::string& path, std::vector<ep::BatchItem>* out) {
  std::ifstream f(path);
  if (!f.good()) return false;
  std::string line;
  while (std::getline(f, line)) {
    const auto first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    const auto last = line.find_last_not_of(" \t\r");
    out->push_back({line.substr(first, last - first + 1), ""});
  }
  return true;
}

int place(ep::RuntimeContext& ctx, ep::PlacementDB& db,
          const ep::FlowConfig& cfg, const std::string& outDir,
          const std::string& plotPath, bool supervised,
          const ep::SupervisorConfig& sup, const std::string& recordOut) {
  ep::SupervisorReport report;
  const ep::StatusOr<ep::FlowResult> run =
      supervised ? ep::runSupervisedFlow(db, cfg, sup, &report, &ctx)
                 : ep::runEplaceFlowChecked(db, cfg, &ctx);
  if (!run.ok()) {
    std::fprintf(stderr, "error: %s\n", run.status().toString().c_str());
    return exitCodeFor(run.status().code());
  }
  if (!recordOut.empty()) {
    const ep::RunRecord rec = ep::buildRunRecord(
        db, *run, supervised ? &report : nullptr, &ctx, supervised);
    const ep::Status wr = ep::writeRunRecordFile(recordOut, rec, &ctx.faults());
    if (!wr.ok()) {
      std::fprintf(stderr, "record write failed: %s\n", wr.toString().c_str());
      return exitCodeFor(wr.code());
    }
    std::printf("wrote %s\n", recordOut.c_str());
  }
  if (supervised) std::printf("%s\n", report.summary().c_str());
  const ep::FlowResult& res = *run;
  std::printf("%s: HPWL %.6g (scaled %.6g), overflow %.4f, legal=%s, %.2fs\n",
              db.name.c_str(), res.finalHpwl, res.finalScaledHpwl,
              ep::densityOverflow(db).overflow,
              res.legality.legal ? "yes" : "no", res.totalSeconds);
  if (!res.status.ok()) {
    std::fprintf(stderr, "degraded: %s (recoveries mGP=%d cGP=%d)\n",
                 res.status.toString().c_str(), res.mgpResult.recoveries,
                 res.cgpResult.recoveries);
  }
  if (!outDir.empty()) {
    std::filesystem::create_directories(outDir);
    const ep::Status wr = ep::writeBookshelf(outDir, db.name + "_placed", db);
    if (!wr.ok()) {
      std::fprintf(stderr, "error: %s\n", wr.toString().c_str());
      return exitCodeFor(wr.code());
    }
    std::printf("wrote %s/%s_placed.{aux,nodes,nets,pl,scl,wts}\n",
                outDir.c_str(), db.name.c_str());
  }
  if (!plotPath.empty() && ep::plotLayout(db, plotPath, {}, {}, {}, {}, {}, &ctx)) {
    std::printf("wrote %s\n", plotPath.c_str());
  }
  if (!res.status.ok()) return exitCodeFor(res.status.code());
  return res.legality.legal ? 0 : 6;
}

}  // namespace

int main(int argc, char** argv) {
  std::string aux, outDir, plotPath, batchPath, recordOut;
  double density = 0.0;
  int threads = 0;
  int sessions = 2;
  ep::LogLevel logLevel = ep::LogLevel::kWarn;
  ep::FlowConfig cfg;
  ep::SupervisorConfig sup;
  bool supervised = false;
  std::vector<std::pair<std::string, ep::FaultSpec>> injections;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--out" && i + 1 < argc) {
      outDir = argv[++i];
    } else if (a == "--density" && i + 1 < argc) {
      density = std::atof(argv[++i]);
    } else if (a == "--plot" && i + 1 < argc) {
      plotPath = argv[++i];
    } else if (a == "--no-detail") {
      cfg.runDetail = false;
    } else if (a == "--checkpoint-every" && i + 1 < argc) {
      cfg.gp.health.checkpointEvery = std::atoi(argv[++i]);
    } else if (a == "--time-budget" && i + 1 < argc) {
      cfg.gp.health.timeBudgetSeconds = std::atof(argv[++i]);
    } else if (a == "--max-recoveries" && i + 1 < argc) {
      cfg.gp.health.maxRecoveries = std::atoi(argv[++i]);
    } else if (a == "--supervised") {
      supervised = true;
    } else if (a == "--snapshot-dir" && i + 1 < argc) {
      sup.snapshotDir = argv[++i];
      supervised = true;
    } else if (a == "--save-every" && i + 1 < argc) {
      sup.saveEvery = std::atoi(argv[++i]);
      supervised = true;
    } else if (a == "--resume" && i + 1 < argc) {
      sup.resumeDir = argv[++i];
      supervised = true;
    } else if (a == "--stage-budget" && i + 1 < argc) {
      const double budget = std::atof(argv[++i]);
      sup.mip.timeBudgetSeconds = budget;
      sup.mgp.timeBudgetSeconds = budget;
      sup.mlg.timeBudgetSeconds = budget;
      sup.cgp.timeBudgetSeconds = budget;
      sup.cdp.timeBudgetSeconds = budget;
      supervised = true;
    } else if (a == "--stage-attempts" && i + 1 < argc) {
      const int attempts = std::atoi(argv[++i]);
      sup.mgp.maxAttempts = attempts;
      sup.mlg.maxAttempts = attempts;
      sup.cgp.maxAttempts = attempts;
      sup.cdp.maxAttempts = attempts;
      supervised = true;
    } else if (a == "--multilevel") {
      sup.multilevel.enabled = true;
      supervised = true;
    } else if (a == "--ml-min-movable" && i + 1 < argc) {
      sup.multilevel.minMovable =
          static_cast<std::size_t>(std::atoll(argv[++i]));
      // Lowering the engage threshold below the ladder's coarsening floor
      // would silently build zero levels; drag the floor down with it
      // (never up) so the flag works on small designs too.
      sup.multilevel.cluster.minMovable =
          std::min(sup.multilevel.cluster.minMovable,
                   std::max<std::size_t>(sup.multilevel.minMovable / 2, 64));
      sup.multilevel.enabled = true;
      supervised = true;
    } else if (a == "--inject" && i + 1 < argc) {
      std::string site;
      ep::FaultSpec spec;
      if (!parseInjection(argv[++i], &site, &spec)) {
        std::fprintf(stderr, "bad --inject spec %s\n", argv[i]);
        return 1;
      }
      injections.emplace_back(std::move(site), spec);
    } else if (a == "--threads" && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
    } else if (a == "--record-out" && i + 1 < argc) {
      recordOut = argv[++i];
    } else if (a == "--batch" && i + 1 < argc) {
      batchPath = argv[++i];
    } else if (a == "--sessions" && i + 1 < argc) {
      sessions = std::atoi(argv[++i]);
    } else if (a == "--log-level" && i + 1 < argc) {
      if (!ep::parseLogLevel(argv[++i], &logLevel)) {
        std::fprintf(stderr, "bad --log-level %s\n", argv[i]);
        return 1;
      }
    } else if (a == "--verbose") {
      logLevel = ep::LogLevel::kInfo;
    } else if (a[0] != '-') {
      aux = a;
    } else {
      std::fprintf(stderr, "unknown option %s\n", a.c_str());
      return 1;
    }
  }
  // `--save-every` without an explicit directory checkpoints into the resume
  // directory (kill/resume loops keep one directory) or "./snapshots".
  if (sup.saveEvery > 0 && sup.snapshotDir.empty()) {
    sup.snapshotDir = sup.resumeDir.empty() ? "snapshots" : sup.resumeDir;
  }

  // --- batch mode: N designs, K concurrent sessions -------------------------
  if (!batchPath.empty()) {
    std::vector<ep::BatchItem> items;
    if (!readManifest(batchPath, &items)) {
      std::fprintf(stderr, "cannot read manifest %s\n", batchPath.c_str());
      return 3;
    }
    if (items.empty()) {
      std::fprintf(stderr, "manifest %s lists no designs\n",
                   batchPath.c_str());
      return 2;
    }
    if (!injections.empty()) {
      std::fprintf(stderr,
                   "--inject applies to single-design runs only; ignored "
                   "in --batch mode\n");
    }
    ep::BatchOptions opt;
    opt.maxConcurrentSessions = sessions;
    opt.totalThreads = threads;
    opt.session.logLevel = logLevel;
    opt.session.flow = cfg;
    opt.session.supervised = supervised;
    opt.session.sup = sup;
    opt.snapshotRoot = sup.snapshotDir;  // per-session subdirectories
    std::printf("batch: %zu designs, %d sessions in flight\n", items.size(),
                opt.maxConcurrentSessions);
    const ep::BatchResult batch = ep::runPlacerBatch(items, opt);
    if (!recordOut.empty()) std::filesystem::create_directories(recordOut);
    int exit = 0;
    for (const auto& r : batch.items) {
      if (r.status.ok() && !recordOut.empty()) {
        const std::string path = recordOut + "/" + r.name + ".json";
        const ep::Status wr = ep::writeRunRecordFile(path, r.record);
        if (!wr.ok()) {
          std::fprintf(stderr, "record write failed: %s\n",
                       wr.toString().c_str());
          if (exit == 0) exit = exitCodeFor(wr.code());
        }
      }
      if (r.status.ok()) {
        std::printf("%-16s HPWL %.6g, legal=%s, %.2fs%s\n", r.name.c_str(),
                    r.flow.finalHpwl, r.flow.legality.legal ? "yes" : "no",
                    r.seconds,
                    r.flow.status.ok() ? "" : "  [degraded]");
        if (!r.flow.status.ok() && exit == 0) {
          exit = exitCodeFor(r.flow.status.code());
        }
        if (!r.flow.legality.legal && exit == 0) exit = 6;
      } else {
        std::printf("%-16s FAILED: %s\n", r.name.c_str(),
                    r.status.toString().c_str());
        if (exit == 0) exit = exitCodeFor(r.status.code());
      }
    }
    std::printf("batch done in %.2fs wall\n", batch.totalSeconds);
    return exit;
  }

  ep::RuntimeOptions ro;
  ro.threads = threads;
  ro.logLevel = logLevel;
  ep::RuntimeContext ctx(ro);
  for (const auto& [site, spec] : injections) {
    ctx.faults().arm(site, spec);
    std::printf("armed fault: %s tick=%ld count=%d\n", site.c_str(),
                spec.atTick, spec.count);
  }

  ep::PlacementDB db;
  if (aux.empty()) {
    // Demo mode: generate -> write -> read back -> place.
    std::printf("no .aux given; running the round-trip demo\n");
    ep::GenSpec spec;
    spec.name = "cli_demo";
    spec.numCells = 1500;
    spec.numMovableMacros = 8;
    spec.seed = 99;
    ep::PlacementDB generated = ep::generateCircuit(spec);
    std::filesystem::create_directories("cli_demo");
    const ep::Status wr = ep::writeBookshelf("cli_demo", "cli_demo", generated);
    if (!wr.ok()) {
      std::fprintf(stderr, "write failed: %s\n", wr.toString().c_str());
      return exitCodeFor(wr.code());
    }
    aux = "cli_demo/cli_demo.aux";
    if (outDir.empty()) outDir = "cli_demo";
  }

  const ep::Status rd = ep::readBookshelf(aux, db, &ctx);
  if (!rd.ok()) {
    std::fprintf(stderr, "cannot read %s: %s\n", aux.c_str(),
                 rd.toString().c_str());
    return exitCodeFor(rd.code());
  }
  if (density > 0.0) db.targetDensity = density;
  std::printf("loaded %s: %zu objects (%zu movable), %zu nets, region %.0f x "
              "%.0f, rho_t %.2f, threads %d\n",
              db.name.c_str(), db.objects.size(), db.numMovable(),
              db.nets.size(), db.region.width(), db.region.height(),
              db.targetDensity, ctx.pool().threads());
  return place(ctx, db, cfg, outDir, plotPath, supervised, sup, recordOut);
}
