// Numerical health monitoring for the Nesterov placement loop.
//
// The Lipschitz-steplength loop is value-free: nothing in Algorithm 1
// notices when a bad steplength estimate or a corrupted gradient sends the
// iterate to NaN or flings every cell to the region boundary. The monitor
// watches the cheap per-iteration signals — position/gradient finiteness,
// a smoothed HPWL blow-up ratio, density-overflow regression past the best
// level seen — plus the wall clock, and classifies each iteration so the
// caller (GlobalPlacer) can roll back to a checkpoint or stop gracefully.
// Thresholds and the recovery policy are documented in docs/ROBUSTNESS.md.
#pragma once

#include <span>

namespace ep {

struct HealthConfig {
  bool enabled = true;
  /// Iterations between checkpoint refresh opportunities (the caller owns
  /// the actual snapshot; shouldCheckpoint() just gates the cadence).
  int checkpointEvery = 25;
  /// Rollback attempts before giving up and returning the best checkpoint.
  int maxRecoveries = 3;
  /// Instantaneous HPWL above this multiple of its own exponential moving
  /// average counts as divergence (normal spreading moves HPWL a few
  /// percent per iteration; a 4x jump is an instability).
  double hpwlBlowupRatio = 4.0;
  /// Overflow this far above the best overflow seen counts as divergence
  /// (tau decreases as spreading progresses; a large regression means the
  /// layout exploded). Absolute tau units.
  double overflowBlowupMargin = 0.3;
  /// Divergence checks only engage after this many iterations — the first
  /// steps legitimately reshuffle the layout.
  int warmupIterations = 10;
  /// EMA weight of the newest HPWL sample.
  double hpwlSmoothing = 0.25;
  /// Steplength multiplier applied on rollback (cool restart).
  double alphaResetScale = 0.1;
  /// Wall-clock watchdog for one placement stage; 0 disables it.
  double timeBudgetSeconds = 0.0;
};

enum class HealthEvent {
  kOk = 0,
  kNonFinite,  ///< NaN/Inf in positions, HPWL, overflow or gradient norm
  kDiverged,   ///< finite but blowing up per the ratio/margin thresholds
  kTimeout,    ///< stage wall-clock budget exhausted
};

const char* healthEventName(HealthEvent e);

class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig cfg);

  /// Classifies one iteration. `positions` is the full variable vector of
  /// the optimizer (scanned for NaN/Inf); `elapsedSeconds` is stage time.
  HealthEvent observe(int iter, double hpwl, double overflow,
                      std::span<const double> positions, double gradNorm,
                      double elapsedSeconds);

  /// True on iterations where the caller should refresh its checkpoint.
  [[nodiscard]] bool shouldCheckpoint(int iter) const;

  /// Re-anchors the smoothed statistics after the caller rolled back to a
  /// checkpoint taken at (hpwl, overflow).
  void resetAfterRollback(double hpwl, double overflow);

  [[nodiscard]] double smoothedHpwl() const { return smoothedHpwl_; }
  [[nodiscard]] double bestOverflow() const { return bestOverflow_; }

 private:
  HealthConfig cfg_;
  double smoothedHpwl_ = -1.0;  // <0 = unseeded
  double bestOverflow_ = -1.0;
};

/// True when every element of `v` is finite.
bool allFinite(std::span<const double> v);

}  // namespace ep
