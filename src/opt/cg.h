// Conjugate-gradient nonlinear optimizer with Armijo backtracking line
// search. This is the optimizer class of the prior nonlinear placers the
// paper compares against (APlace / NTUplace3-style); Sec. V-A quantifies
// line search as >60% of their runtime, which bench_ablation_linesearch
// reproduces via the lineSearchSeconds() counter.
#pragma once

#include <span>
#include <vector>

#include "opt/nesterov.h"  // GradFn / ProjectionFn

namespace ep {

struct CgConfig {
  double armijoC = 1e-4;          ///< sufficient-decrease constant
  double shrink = 0.5;            ///< step shrink factor per trial
  int maxTrials = 30;             ///< cap on line-search trials
  double growth = 2.0;            ///< first trial = growth * last accepted
  double initialStep = 1.0;       ///< first iteration trial step
  int restartInterval = 50;       ///< periodic steepest-descent restart
};

class CgOptimizer {
 public:
  CgOptimizer(std::size_t dim, GradFn fn, CgConfig cfg = {},
              ProjectionFn projection = {});

  void initialize(std::span<const double> v0);

  struct StepInfo {
    double alpha = 0.0;
    int trials = 0;          ///< line-search evaluations this iteration
    double objective = 0.0;  ///< f at the accepted point
    double gradNorm = 0.0;
  };

  /// One Polak-Ribiere+ iteration with Armijo line search.
  StepInfo step();

  [[nodiscard]] std::span<const double> solution() const { return x_; }
  [[nodiscard]] long evalCount() const { return evals_; }
  /// Wall time spent inside line-search evaluations (Sec. V-A experiment).
  [[nodiscard]] double lineSearchSeconds() const { return lineSearchSec_; }
  [[nodiscard]] double totalSeconds() const { return totalSec_; }

 private:
  double evaluate(std::span<const double> v, std::span<double> grad);

  std::size_t dim_;
  GradFn fn_;
  CgConfig cfg_;
  ProjectionFn project_;

  std::vector<double> x_, grad_, prevGrad_, dir_, trial_, trialGrad_;
  double f_ = 0.0;
  double lastStep_ = 0.0;
  int iter_ = 0;
  long evals_ = 0;
  double lineSearchSec_ = 0.0;
  double totalSec_ = 0.0;
};

}  // namespace ep
