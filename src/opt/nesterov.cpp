#include "opt/nesterov.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/parallel.h"
#include "util/stats.h"

namespace ep {

NesterovOptimizer::NesterovOptimizer(std::size_t dim, GradFn fn,
                                     NesterovConfig cfg,
                                     ProjectionFn projection,
                                     ThreadPool* pool)
    : dim_(dim),
      fn_(std::move(fn)),
      cfg_(cfg),
      project_(std::move(projection)),
      pool_(pool),
      u_(dim),
      cur_(dim),
      prev_(dim),
      curGrad_(dim),
      prevGrad_(dim),
      uNext_(dim),
      vNext_(dim),
      gradNext_(dim) {}

double NesterovOptimizer::evaluate(std::span<const double> v,
                                   std::span<double> grad) {
  ++evals_;
  return fn_(v, grad);
}

template <typename Body>
void NesterovOptimizer::forRange(Body&& body) {
  if (pool_ != nullptr) {
    pool_->parallelFor(dim_,
                       [&](std::size_t, std::size_t i0, std::size_t i1) {
                         body(i0, i1);
                       });
  } else {
    body(std::size_t{0}, dim_);
  }
}

void NesterovOptimizer::initialize(std::span<const double> v0) {
  assert(v0.size() == dim_);
  std::copy(v0.begin(), v0.end(), cur_.begin());
  std::copy(v0.begin(), v0.end(), u_.begin());
  evaluate(cur_, curGrad_);
  // Fictitious previous iterate: a small gradient step backward in time so
  // that the first Lipschitz prediction has a (position, gradient) pair.
  double gmax = 0.0;
  for (double g : curGrad_) gmax = std::max(gmax, std::abs(g));
  const double s = gmax > 0.0 ? cfg_.bootstrapMove / gmax : 0.0;
  forRange([&](std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      prev_[i] = cur_[i] - s * curGrad_[i];
    }
  });
  if (project_) project_(prev_);
  evaluate(prev_, prevGrad_);
  a_ = 1.0;
  lastAlpha_ = 0.0;
  iter_ = 0;
}

NesterovOptimizer::Snapshot NesterovOptimizer::snapshot() const {
  return {u_, cur_, prev_, curGrad_, prevGrad_, a_, lastAlpha_, iter_};
}

void NesterovOptimizer::snapshotInto(Snapshot& s) const {
  s.u = u_;
  s.cur = cur_;
  s.prev = prev_;
  s.curGrad = curGrad_;
  s.prevGrad = prevGrad_;
  s.a = a_;
  s.lastAlpha = lastAlpha_;
  s.iter = iter_;
}

void NesterovOptimizer::restore(const Snapshot& s) {
  assert(s.u.size() == dim_);
  u_ = s.u;
  cur_ = s.cur;
  prev_ = s.prev;
  curGrad_ = s.curGrad;
  prevGrad_ = s.prevGrad;
  a_ = s.a;
  lastAlpha_ = s.lastAlpha;
  iter_ = s.iter;
}

void NesterovOptimizer::coolRestart(double alphaScale) {
  a_ = 1.0;
  if (std::isfinite(lastAlpha_) && lastAlpha_ > 0.0) {
    lastAlpha_ *= alphaScale;
  } else {
    lastAlpha_ = cfg_.bootstrapMove;
  }
  // Collapse the fictitious previous pair onto the current iterate so the
  // next Lipschitz prediction falls back to lastAlpha_ instead of a ratio
  // polluted by whatever state preceded the rollback.
  prev_ = cur_;
  prevGrad_ = curGrad_;
}

NesterovOptimizer::StepInfo NesterovOptimizer::step() {
  StepInfo info;

  const double dv = dist2(cur_, prev_);
  const double dg = dist2(curGrad_, prevGrad_);
  double alpha = (dg > 0.0 && dv > 0.0) ? dv / dg
                 : (lastAlpha_ > 0.0 ? lastAlpha_ : cfg_.bootstrapMove);
  // Guardrail: a NaN/Inf gradient pair poisons the Lipschitz ratio; fall
  // back to the last accepted steplength rather than propagating NaN into
  // every coordinate.
  if (!std::isfinite(alpha) || alpha <= 0.0) {
    alpha = (std::isfinite(lastAlpha_) && lastAlpha_ > 0.0) ? lastAlpha_
                                                            : cfg_.bootstrapMove;
  }

  const double aNext = (1.0 + std::sqrt(4.0 * a_ * a_ + 1.0)) * 0.5;
  const double coef = cfg_.enableMomentum ? (a_ - 1.0) / aNext : 0.0;

  double objective = 0.0;
  // Per-coordinate updates are element-wise, so running them on the pool is
  // bit-identical to the serial loops for any thread count.
  for (int bt = 0;; ++bt) {
    forRange([&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        uNext_[i] = cur_[i] - alpha * curGrad_[i];
      }
    });
    if (project_) project_(uNext_);
    forRange([&](std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        vNext_[i] = uNext_[i] + coef * (uNext_[i] - u_[i]);
      }
    });
    if (project_) project_(vNext_);

    objective = evaluate(vNext_, gradNext_);

    if (!cfg_.enableBacktracking || bt >= cfg_.maxBacktracks) {
      info.backtracks = bt;
      break;
    }
    const double ddv = dist2(vNext_, cur_);
    const double ddg = dist2(gradNext_, curGrad_);
    if (ddg <= 0.0 || ddv <= 0.0) {  // flat or zero move: accept
      info.backtracks = bt;
      break;
    }
    const double alphaRef = ddv / ddg;
    if (!std::isfinite(alphaRef)) {  // poisoned gradient: nothing to refine
      info.backtracks = bt;
      break;
    }
    // Backtrack only when the reference says the step was a genuine
    // overestimate; a reference at or above the current step cannot shrink
    // it (re-taking the same step would loop forever on e.g. an exact
    // quadratic where prediction is already tight).
    if (alphaRef >= alpha || alpha <= cfg_.backtrackEps * alphaRef) {
      info.backtracks = bt;
      break;
    }
    alpha = alphaRef;
    ++backtracks_;
  }

  // Accept: shift the iterate history; the gradient at the accepted
  // lookahead point is reused next iteration.
  std::swap(u_, uNext_);
  std::swap(prev_, cur_);
  std::swap(cur_, vNext_);
  std::swap(prevGrad_, curGrad_);
  std::swap(curGrad_, gradNext_);
  a_ = aNext;
  lastAlpha_ = alpha;
  ++iter_;

  info.alpha = alpha;
  info.objective = objective;
  info.gradNorm = norm2(curGrad_);
  return info;
}

}  // namespace ep
