// Nesterov's method with Lipschitz-constant steplength prediction and
// backtracking — Algorithms 1 and 2 of the paper.
//
// Two iterates u (output) and v (lookahead) advance together:
//   u_{k+1} = v_k - alpha_k * gradPre(v_k)
//   a_{k+1} = (1 + sqrt(4 a_k^2 + 1)) / 2
//   v_{k+1} = u_{k+1} + (a_k - 1)(u_{k+1} - u_k)/a_{k+1}
//
// The steplength is the inverse of the predicted Lipschitz constant
// (Eq. 10): alpha_k = ||v_k - v_{k-1}|| / ||grad(v_k) - grad(v_{k-1})||,
// refined by backtracking (Alg. 2): the candidate v_{k+1} produces a
// *reference* steplength from the (v_{k+1}, v_k) gradient pair; while the
// predicted step exceeds eps * reference, the step is re-taken with the
// reference value. The gradient evaluated at the accepted v_{k+1} is cached
// and reused as grad(v_k) of the next iteration, so a pass on the first
// check costs nothing extra (Sec. V-C).
//
// The evaluation callback returns the (optionally preconditioned) gradient;
// preconditioning (Sec. V-D) is the caller's concern — this class only sees
// the final descent vector. An optional projection keeps iterates feasible
// (the placer clamps object centers into the core region).
#pragma once

#include <functional>
#include <span>
#include <vector>

namespace ep {

class ThreadPool;

/// Evaluate the objective at `v`, writing the (preconditioned) gradient into
/// `grad`; returns the objective value (used for reporting only — the
/// optimizer itself is value-free, as in the paper).
using GradFn =
    std::function<double(std::span<const double> v, std::span<double> grad)>;

/// In-place projection of a candidate iterate onto the feasible box.
using ProjectionFn = std::function<void(std::span<double> v)>;

struct NesterovConfig {
  /// epsilon of Alg. 2; < 1 encourages early return (paper uses 0.95).
  double backtrackEps = 0.95;
  /// Safety cap on the Alg. 2 loop (paper measures ~1.04 backtracks/iter;
  /// the cap bounds worst-case gradient evaluations per iteration).
  int maxBacktracks = 3;
  /// Disable to reproduce the "no backtracking" ablation (Sec. V-C).
  bool enableBacktracking = true;
  /// Disable to degrade the method to plain (projected) gradient descent
  /// with Lipschitz steplength — the momentum ablation.
  bool enableMomentum = true;
  /// Bootstrap: the fictitious previous iterate is one small gradient step
  /// away, scaled so the largest coordinate move equals this value.
  double bootstrapMove = 0.1;
};

class NesterovOptimizer {
 public:
  /// `pool` (optional, borrowed) runs the element-wise iterate updates on
  /// its threads; nullptr runs them serially — bit-identical either way by
  /// the determinism contract. The caller's context owns the pool and
  /// outlives the optimizer.
  NesterovOptimizer(std::size_t dim, GradFn fn, NesterovConfig cfg = {},
                    ProjectionFn projection = {}, ThreadPool* pool = nullptr);

  /// Set the start point; evaluates the gradient twice (v0 and the
  /// bootstrap point) to seed the Lipschitz prediction.
  void initialize(std::span<const double> v0);

  struct StepInfo {
    double alpha = 0.0;       ///< accepted steplength
    int backtracks = 0;       ///< Alg. 2 re-takes in this iteration
    double objective = 0.0;   ///< f at the new lookahead point
    double gradNorm = 0.0;    ///< ||gradPre(v_{k+1})||
  };

  /// One accepted iteration of Algorithm 1.
  StepInfo step();

  /// Full optimizer state for checkpoint/rollback recovery: both iterates,
  /// the fictitious previous pair, the cached gradients and the momentum /
  /// steplength scalars. Restoring a snapshot resumes exactly where it was
  /// taken.
  struct Snapshot {
    std::vector<double> u, cur, prev;
    std::vector<double> curGrad, prevGrad;
    double a = 1.0;
    double lastAlpha = 0.0;
    int iter = 0;
  };
  [[nodiscard]] Snapshot snapshot() const;
  /// snapshot() into an existing Snapshot: vector assignment reuses the
  /// destination's capacity, so refreshing a same-dimension checkpoint
  /// performs no heap allocation (the Nesterov-loop zero-alloc contract).
  void snapshotInto(Snapshot& s) const;
  void restore(const Snapshot& s);

  /// Post-rollback cool restart: drops the accumulated momentum (a_k back
  /// to 1) and scales the remembered steplength down so the re-run leaves
  /// the checkpoint cautiously instead of re-taking the diverging step.
  void coolRestart(double alphaScale);

  /// Current output solution u_k.
  [[nodiscard]] std::span<const double> solution() const { return u_; }
  /// Current lookahead iterate v_k (where gradients are evaluated).
  [[nodiscard]] std::span<const double> lookahead() const { return cur_; }
  /// Gradient evaluations so far (for the runtime experiments).
  [[nodiscard]] long evalCount() const { return evals_; }
  /// Total backtracks so far.
  [[nodiscard]] long backtrackCount() const { return backtracks_; }
  [[nodiscard]] int iteration() const { return iter_; }

 private:
  double evaluate(std::span<const double> v, std::span<double> grad);

  /// Runs body(i0, i1) over [0, dim) — on the pool when one was given,
  /// inline otherwise.
  template <typename Body>
  void forRange(Body&& body);

  std::size_t dim_;
  GradFn fn_;
  NesterovConfig cfg_;
  ProjectionFn project_;
  ThreadPool* pool_ = nullptr;

  std::vector<double> u_, cur_, prev_;
  std::vector<double> curGrad_, prevGrad_;
  std::vector<double> uNext_, vNext_, gradNext_;
  double a_ = 1.0;
  double lastAlpha_ = 0.0;
  long evals_ = 0;
  long backtracks_ = 0;
  int iter_ = 0;
};

}  // namespace ep
