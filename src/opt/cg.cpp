#include "opt/cg.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/stats.h"
#include "util/timer.h"

namespace ep {

CgOptimizer::CgOptimizer(std::size_t dim, GradFn fn, CgConfig cfg,
                         ProjectionFn projection)
    : dim_(dim),
      fn_(std::move(fn)),
      cfg_(cfg),
      project_(std::move(projection)),
      x_(dim),
      grad_(dim),
      prevGrad_(dim),
      dir_(dim),
      trial_(dim),
      trialGrad_(dim) {}

double CgOptimizer::evaluate(std::span<const double> v,
                             std::span<double> grad) {
  ++evals_;
  return fn_(v, grad);
}

void CgOptimizer::initialize(std::span<const double> v0) {
  assert(v0.size() == dim_);
  std::copy(v0.begin(), v0.end(), x_.begin());
  if (project_) project_(x_);
  f_ = evaluate(x_, grad_);
  for (std::size_t i = 0; i < dim_; ++i) dir_[i] = -grad_[i];
  lastStep_ = cfg_.initialStep;
  iter_ = 0;
}

CgOptimizer::StepInfo CgOptimizer::step() {
  Timer total;
  StepInfo info;

  // Direction must be a descent direction; otherwise restart.
  double gd = dot(grad_, dir_);
  if (gd >= 0.0 || (cfg_.restartInterval > 0 && iter_ > 0 &&
                    iter_ % cfg_.restartInterval == 0)) {
    for (std::size_t i = 0; i < dim_; ++i) dir_[i] = -grad_[i];
    gd = dot(grad_, dir_);
  }

  // Armijo backtracking line search along dir_.
  Timer ls;
  double t = std::max(lastStep_ * cfg_.growth, 1e-12);
  double fTrial = f_;
  int trials = 0;
  bool accepted = false;
  while (trials < cfg_.maxTrials) {
    for (std::size_t i = 0; i < dim_; ++i) trial_[i] = x_[i] + t * dir_[i];
    if (project_) project_(trial_);
    fTrial = evaluate(trial_, trialGrad_);
    ++trials;
    if (fTrial <= f_ + cfg_.armijoC * t * gd) {
      accepted = true;
      break;
    }
    t *= cfg_.shrink;
  }
  lineSearchSec_ += ls.seconds();

  if (!accepted) {
    // Stalled: fall back to a tiny steepest-descent nudge so progress (and
    // termination at the caller) remains well defined.
    const double gn = norm2(grad_);
    const double tiny = gn > 0.0 ? 1e-6 / gn : 0.0;
    for (std::size_t i = 0; i < dim_; ++i) trial_[i] = x_[i] - tiny * grad_[i];
    if (project_) project_(trial_);
    fTrial = evaluate(trial_, trialGrad_);
    ++trials;
    t = tiny;
  }

  // Polak-Ribiere+ update.
  std::swap(prevGrad_, grad_);
  std::swap(grad_, trialGrad_);
  std::swap(x_, trial_);
  f_ = fTrial;
  lastStep_ = t;

  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < dim_; ++i) {
    num += grad_[i] * (grad_[i] - prevGrad_[i]);
    den += prevGrad_[i] * prevGrad_[i];
  }
  const double beta = den > 0.0 ? std::max(0.0, num / den) : 0.0;
  for (std::size_t i = 0; i < dim_; ++i) dir_[i] = -grad_[i] + beta * dir_[i];

  ++iter_;
  totalSec_ += total.seconds();
  info.alpha = t;
  info.trials = trials;
  info.objective = f_;
  info.gradNorm = norm2(grad_);
  return info;
}

}  // namespace ep
