#include "opt/health.h"

#include <cmath>

namespace ep {

const char* healthEventName(HealthEvent e) {
  switch (e) {
    case HealthEvent::kOk:
      return "ok";
    case HealthEvent::kNonFinite:
      return "non-finite";
    case HealthEvent::kDiverged:
      return "diverged";
    case HealthEvent::kTimeout:
      return "timeout";
  }
  return "unknown";
}

bool allFinite(std::span<const double> v) {
  for (const double x : v) {
    if (!std::isfinite(x)) return false;
  }
  return true;
}

HealthMonitor::HealthMonitor(HealthConfig cfg) : cfg_(cfg) {}

bool HealthMonitor::shouldCheckpoint(int iter) const {
  if (!cfg_.enabled) return false;
  const int every = cfg_.checkpointEvery > 0 ? cfg_.checkpointEvery : 1;
  return iter % every == 0;
}

void HealthMonitor::resetAfterRollback(double hpwl, double overflow) {
  smoothedHpwl_ = hpwl;
  // Keep bestOverflow_: the rollback target was at least that good, and a
  // repeat offender must not ratchet the divergence threshold upward.
  if (bestOverflow_ < 0.0 || overflow < bestOverflow_) bestOverflow_ = overflow;
}

HealthEvent HealthMonitor::observe(int iter, double hpwl, double overflow,
                                   std::span<const double> positions,
                                   double gradNorm, double elapsedSeconds) {
  if (!cfg_.enabled) return HealthEvent::kOk;

  // The watchdog outranks everything: even a healthy run must stop cleanly
  // when its budget expires.
  if (cfg_.timeBudgetSeconds > 0.0 && elapsedSeconds > cfg_.timeBudgetSeconds) {
    return HealthEvent::kTimeout;
  }

  if (!std::isfinite(hpwl) || !std::isfinite(overflow) ||
      !std::isfinite(gradNorm) || !allFinite(positions)) {
    return HealthEvent::kNonFinite;
  }

  const bool warm = iter >= cfg_.warmupIterations;
  if (warm && smoothedHpwl_ > 0.0 &&
      hpwl > cfg_.hpwlBlowupRatio * smoothedHpwl_) {
    return HealthEvent::kDiverged;
  }
  if (warm && bestOverflow_ >= 0.0 &&
      overflow > bestOverflow_ + cfg_.overflowBlowupMargin) {
    return HealthEvent::kDiverged;
  }

  // Healthy: fold the sample into the smoothed statistics.
  smoothedHpwl_ = smoothedHpwl_ < 0.0
                      ? hpwl
                      : (1.0 - cfg_.hpwlSmoothing) * smoothedHpwl_ +
                            cfg_.hpwlSmoothing * hpwl;
  if (bestOverflow_ < 0.0 || overflow < bestOverflow_) bestOverflow_ = overflow;
  return HealthEvent::kOk;
}

}  // namespace ep
