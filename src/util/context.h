// RuntimeContext: the explicit runtime bundle that replaced every process
// global in the placer.
//
// One context = one isolated placer runtime. It owns:
//   * a deterministic fixed-partition ThreadPool (per-session thread cap),
//   * a FaultInjector (faults armed here never fire in another context),
//   * the root Rng stream (seed material for stochastic components),
//   * a LogSink (per-session prefix + severity filter),
//   * a StatsRegistry (named counters/gauges for telemetry),
//   * an optional wall-clock deadline shared by every stage watchdog,
//   * a cooperative cancel token: any thread may requestCancel(), long
//     loops (the Nesterov iteration, stage watchdogs) poll cancelled()
//     alongside deadlineExceeded() and stop at the next safe point with a
//     typed kCancelled status — positions stay finite, snapshots intact.
//
// Ownership rules (see docs/ARCHITECTURE.md, "Runtime context & session"):
// a context outlives everything it is handed to; engines and stage
// functions borrow it by pointer/reference and never store it past their
// own lifetime. Library entry points take a trailing
// `RuntimeContext* ctx = nullptr`, where nullptr resolves to
// processDefault() — a lazily created hardware-sized context for
// single-tenant embeddings and tools that don't care about isolation.
// Anything that runs two flows in one process must pass explicit contexts
// (PlacerSession does this for you).
#pragma once

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <utility>

#include "util/fault_injector.h"
#include "util/log.h"
#include "util/memory_budget.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/timer.h"

namespace ep {

/// Thread-safe named metric store. Writers are hot-ish paths (per stage,
/// per recovery, per snapshot — never per iteration of an inner kernel),
/// so a single mutex is fine.
class StatsRegistry {
 public:
  /// Adds `delta` to the named counter (creating it at 0).
  void add(const std::string& name, double delta) {
    std::lock_guard<std::mutex> lock(mu_);
    values_[name] += delta;
  }
  /// Overwrites the named gauge.
  void set(const std::string& name, double value) {
    std::lock_guard<std::mutex> lock(mu_);
    values_[name] = value;
  }
  /// Current value, or 0 when the metric was never touched.
  [[nodiscard]] double value(const std::string& name) const {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = values_.find(name);
    return it == values_.end() ? 0.0 : it->second;
  }
  /// Copy of the whole registry (for reports / JSON dumps).
  [[nodiscard]] std::map<std::string, double> snapshot() const {
    std::lock_guard<std::mutex> lock(mu_);
    return values_;
  }
  void clear() {
    std::lock_guard<std::mutex> lock(mu_);
    values_.clear();
  }

 private:
  mutable std::mutex mu_;
  std::map<std::string, double> values_;
};

struct RuntimeOptions {
  /// Pool size; <= 0 selects hardware concurrency.
  int threads = 0;
  /// Root RNG seed. Components derive their own streams from explicit
  /// seeds, so this only feeds nextSeed() consumers.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  /// Log line prefix identifying this context's output (session name).
  std::string logPrefix;
  LogLevel logLevel = LogLevel::kWarn;
  bool logTimestamps = true;
  /// Wall-clock budget in seconds from context construction; <= 0 means no
  /// deadline. Stage watchdogs clamp their own budgets to what remains.
  double wallBudgetSeconds = 0.0;
  /// Memory cap in bytes for this context's big allocations (arena growth,
  /// view/CSR construction, snapshot buffers, bin grid); 0 = unlimited.
  /// Breaches surface as kResourceExhausted, never as bad_alloc aborts.
  std::size_t memBudgetBytes = 0;
};

class RuntimeContext {
 public:
  RuntimeContext() : RuntimeContext(RuntimeOptions{}) {}
  explicit RuntimeContext(RuntimeOptions opt);
  /// Shorthand for tests/benches that only care about the thread cap.
  explicit RuntimeContext(int threads);
  RuntimeContext(const RuntimeContext&) = delete;
  RuntimeContext& operator=(const RuntimeContext&) = delete;

  [[nodiscard]] ThreadPool& pool() { return pool_; }
  [[nodiscard]] FaultInjector& faults() { return faults_; }
  [[nodiscard]] Rng& rng() { return rng_; }
  [[nodiscard]] LogSink& log() { return *sink_; }
  [[nodiscard]] const LogSink& log() const { return *sink_; }
  [[nodiscard]] StatsRegistry& stats() { return stats_; }
  [[nodiscard]] const StatsRegistry& stats() const { return stats_; }
  [[nodiscard]] MemoryBudget& memory() { return memory_; }
  [[nodiscard]] const MemoryBudget& memory() const { return memory_; }

  /// Fresh 64-bit seed from the root stream (setup-time use only; the root
  /// Rng is not synchronized).
  [[nodiscard]] std::uint64_t nextSeed() { return rng_.next(); }

  /// The root seed this context was constructed with (recorded in run
  /// records so a baseline is reproducible from the record alone).
  [[nodiscard]] std::uint64_t seed() const { return opt_.seed; }
  /// Worker-thread cap the pool was built with.
  [[nodiscard]] int threadCount() const { return pool_.threads(); }

  /// Seconds since construction.
  [[nodiscard]] double elapsedSeconds() const { return clock_.seconds(); }
  /// Seconds until the wall-clock deadline; +inf when no budget is set.
  [[nodiscard]] double remainingSeconds() const {
    if (wallBudgetSeconds_ <= 0.0) {
      return std::numeric_limits<double>::infinity();
    }
    return wallBudgetSeconds_ - clock_.seconds();
  }
  [[nodiscard]] bool deadlineExceeded() const {
    return remainingSeconds() <= 0.0;
  }
  /// Re-arms the deadline relative to *now* (<= 0 clears it).
  void setWallBudget(double seconds) {
    wallBudgetSeconds_ = seconds;
    clock_.reset();
  }

  /// Requests cooperative cancellation. Safe from any thread (the serving
  /// layer calls it from its control plane while the flow runs); the first
  /// caller's reason wins. Idempotent.
  void requestCancel(const std::string& reason = "cancel requested") {
    {
      std::lock_guard<std::mutex> lock(cancelMu_);
      if (cancelReason_.empty()) cancelReason_ = reason;
    }
    cancelRequested_.store(true, std::memory_order_release);
  }
  /// Cheap poll for long-running loops (one relaxed atomic load).
  [[nodiscard]] bool cancelled() const {
    return cancelRequested_.load(std::memory_order_acquire);
  }
  /// Why requestCancel() was called; empty while not cancelled.
  [[nodiscard]] std::string cancelReason() const {
    std::lock_guard<std::mutex> lock(cancelMu_);
    return cancelReason_;
  }
  /// Re-arms the token for context reuse (tests, pooled runtimes). Only
  /// from single-threaded setup — never while a flow is in flight.
  void clearCancel() {
    cancelRequested_.store(false, std::memory_order_release);
    std::lock_guard<std::mutex> lock(cancelMu_);
    cancelReason_.clear();
  }

  /// The shared fallback context: hardware-sized pool, unprefixed default
  /// log sink, no deadline. Created on first use; ep::compat can set its
  /// thread count before that point. Single-tenant convenience only —
  /// concurrent sessions must own their contexts.
  static RuntimeContext& processDefault();

 private:
  struct DefaultTag {};
  RuntimeContext(DefaultTag, RuntimeOptions opt);

  RuntimeOptions opt_;
  FaultInjector faults_;  // before pool_: the pool points at it
  ThreadPool pool_;
  Rng rng_;
  LogSink ownSink_;
  LogSink* sink_ = &ownSink_;  // processDefault aliases defaultLogSink()
  StatsRegistry stats_;
  MemoryBudget memory_;
  Timer clock_;
  double wallBudgetSeconds_ = 0.0;
  std::atomic<bool> cancelRequested_{false};
  mutable std::mutex cancelMu_;
  std::string cancelReason_;
};

/// nullptr-tolerant resolver used by library entry points:
/// `RuntimeContext& rc = resolveContext(ctx);`
inline RuntimeContext& resolveContext(RuntimeContext* ctx) {
  return ctx != nullptr ? *ctx : RuntimeContext::processDefault();
}

namespace detail {
/// Pre-materialization hook for the ep::compat shim: requests that
/// processDefault() be built with `threads` workers. Returns false (and
/// changes nothing) once the default context exists.
bool requestProcessDefaultThreads(int threads);
}  // namespace detail

}  // namespace ep
