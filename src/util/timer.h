// Wall-clock timing and a named accumulator used for the paper's runtime
// breakdown experiments (Fig. 7 reports per-stage percentages).
#pragma once

#include <chrono>
#include <map>
#include <string>

namespace ep {

/// Simple stopwatch measuring wall time in seconds.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void reset() { start_ = Clock::now(); }
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates labeled durations; the flow reports stage shares from it.
class TimeBreakdown {
 public:
  void add(const std::string& label, double seconds) {
    seconds_[label] += seconds;
  }
  [[nodiscard]] double get(const std::string& label) const {
    const auto it = seconds_.find(label);
    return it == seconds_.end() ? 0.0 : it->second;
  }
  [[nodiscard]] double total() const {
    double t = 0.0;
    for (const auto& [_, s] : seconds_) t += s;
    return t;
  }
  [[nodiscard]] const std::map<std::string, double>& entries() const {
    return seconds_;
  }
  void clear() { seconds_.clear(); }

 private:
  std::map<std::string, double> seconds_;
};

/// RAII helper: adds the elapsed time to a breakdown on destruction.
class ScopedTimer {
 public:
  ScopedTimer(TimeBreakdown& sink, std::string label)
      : sink_(sink), label_(std::move(label)) {}
  ~ScopedTimer() { sink_.add(label_, timer_.seconds()); }
  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

 private:
  TimeBreakdown& sink_;
  std::string label_;
  Timer timer_;
};

}  // namespace ep
