// Structured error layer for the placement flow.
//
// Library entry points that can fail (parsing, validation, the flow itself)
// return ep::Status or ep::StatusOr<T> instead of throwing or returning bare
// strings, so callers can branch on a stable error-code taxonomy:
//   kInvalidInput          malformed instance or file content
//   kNumericalDivergence   the optimizer blew up and recovery was exhausted
//   kTimeout               a wall-clock or iteration budget expired
//   kIo                    a file could not be opened / written
//   kInternal              an invariant broke inside the engine (e.g. a
//                          worker task of the thread pool threw)
// The CLI maps each code to a distinct process exit code (see
// docs/ROBUSTNESS.md).
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ep {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidInput,
  kNumericalDivergence,
  kTimeout,
  kIo,
  kInternal,
};

/// Stable human-readable name of a code ("Ok", "InvalidInput", ...).
const char* statusCodeName(StatusCode code);

class Status {
 public:
  Status() = default;  ///< OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status okStatus() { return {}; }
  static Status invalidInput(std::string msg) {
    return {StatusCode::kInvalidInput, std::move(msg)};
  }
  static Status numericalDivergence(std::string msg) {
    return {StatusCode::kNumericalDivergence, std::move(msg)};
  }
  static Status timeout(std::string msg) {
    return {StatusCode::kTimeout, std::move(msg)};
  }
  static Status ioError(std::string msg) {
    return {StatusCode::kIo, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  /// "InvalidInput: nodes.nodes:12: bad token" (or "Ok").
  [[nodiscard]] std::string toString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or a non-OK Status. Accessing the value of a failed
/// StatusOr is a programming error (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(implicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() {
    assert(value_.has_value());
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    assert(value_.has_value());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ep
