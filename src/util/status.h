// Structured error layer for the placement flow.
//
// Library entry points that can fail (parsing, validation, the flow itself)
// return ep::Status or ep::StatusOr<T> instead of throwing or returning bare
// strings, so callers can branch on a stable error-code taxonomy:
//   kInvalidInput          malformed instance, file or request content
//   kNumericalDivergence   the optimizer blew up and recovery was exhausted
//   kTimeout               a wall-clock or iteration budget expired
//   kIo                    a file could not be opened / written
//   kInternal              an invariant broke inside the engine (e.g. a
//                          worker task of the thread pool threw)
//   kCancelled             cooperative cancellation was requested on the
//                          RuntimeContext and the work stopped at a safe point
//   kResourceExhausted     a bounded resource (admission queue, memory cap)
//                          is full; retry later — nothing was corrupted
//   kUnavailable           the service is not taking work (shutting down,
//                          draining, or admission fault-injected)
// Every kind maps to one documented process exit code / daemon wire code via
// statusExitCode() (docs/ROBUSTNESS.md, docs/SERVING.md); unknown kinds map
// to the generic failure code 1 instead of collapsing into kInternal.
#pragma once

#include <cassert>
#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>

namespace ep {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidInput,
  kNumericalDivergence,
  kTimeout,
  kIo,
  kInternal,
  kCancelled,
  kResourceExhausted,
  kUnavailable,
};

/// Stable human-readable name of a code ("Ok", "InvalidInput", ...).
const char* statusCodeName(StatusCode code);

/// Reverse of statusCodeName: parses a wire-format code name into *out.
/// Returns false (and leaves *out alone) on anything unknown, so clients
/// surface foreign codes instead of mislabeling them.
bool statusCodeFromName(std::string_view name, StatusCode* out);

/// The documented process exit code / daemon wire code of each kind:
///   Ok=0, InvalidInput=2, Io=3, NumericalDivergence=4, Timeout=5,
///   Internal=7, Cancelled=8, ResourceExhausted=9, Unavailable=10.
/// (1 is the generic usage/unknown failure, 6 is the CLI's "placed but not
/// legal" — neither belongs to a status kind.) Unknown/future kinds return 1
/// rather than masquerading as Internal.
int statusExitCode(StatusCode code);

class Status {
 public:
  Status() = default;  ///< OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status okStatus() { return {}; }
  static Status invalidInput(std::string msg) {
    return {StatusCode::kInvalidInput, std::move(msg)};
  }
  static Status numericalDivergence(std::string msg) {
    return {StatusCode::kNumericalDivergence, std::move(msg)};
  }
  static Status timeout(std::string msg) {
    return {StatusCode::kTimeout, std::move(msg)};
  }
  static Status ioError(std::string msg) {
    return {StatusCode::kIo, std::move(msg)};
  }
  static Status internal(std::string msg) {
    return {StatusCode::kInternal, std::move(msg)};
  }
  static Status cancelled(std::string msg) {
    return {StatusCode::kCancelled, std::move(msg)};
  }
  static Status resourceExhausted(std::string msg) {
    return {StatusCode::kResourceExhausted, std::move(msg)};
  }
  static Status unavailable(std::string msg) {
    return {StatusCode::kUnavailable, std::move(msg)};
  }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  /// "InvalidInput: nodes.nodes:12: bad token" (or "Ok").
  [[nodiscard]] std::string toString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value or a non-OK Status. Accessing the value of a failed
/// StatusOr is a programming error (asserted in debug builds).
template <typename T>
class StatusOr {
 public:
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(implicit)
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(implicit)
    assert(!status_.ok() && "OK StatusOr must carry a value");
  }

  [[nodiscard]] bool ok() const { return status_.ok(); }
  [[nodiscard]] const Status& status() const { return status_; }

  [[nodiscard]] T& value() {
    assert(value_.has_value());
    return *value_;
  }
  [[nodiscard]] const T& value() const {
    assert(value_.has_value());
    return *value_;
  }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace ep
