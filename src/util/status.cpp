#include "util/status.h"

namespace ep {

const char* statusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidInput:
      return "InvalidInput";
    case StatusCode::kNumericalDivergence:
      return "NumericalDivergence";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kIo:
      return "Io";
    case StatusCode::kInternal:
      return "Internal";
  }
  return "Unknown";
}

std::string Status::toString() const {
  if (ok()) return "Ok";
  std::string s = statusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace ep
