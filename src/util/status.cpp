#include "util/status.h"

namespace ep {

const char* statusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "Ok";
    case StatusCode::kInvalidInput:
      return "InvalidInput";
    case StatusCode::kNumericalDivergence:
      return "NumericalDivergence";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kIo:
      return "Io";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kCancelled:
      return "Cancelled";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

bool statusCodeFromName(std::string_view name, StatusCode* out) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,        StatusCode::kInvalidInput,
      StatusCode::kNumericalDivergence, StatusCode::kTimeout,
      StatusCode::kIo,        StatusCode::kInternal,
      StatusCode::kCancelled, StatusCode::kResourceExhausted,
      StatusCode::kUnavailable,
  };
  for (const StatusCode c : kAll) {
    if (name == statusCodeName(c)) {
      *out = c;
      return true;
    }
  }
  return false;
}

int statusExitCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return 0;
    case StatusCode::kInvalidInput:
      return 2;
    case StatusCode::kIo:
      return 3;
    case StatusCode::kNumericalDivergence:
      return 4;
    case StatusCode::kTimeout:
      return 5;
    case StatusCode::kInternal:
      return 7;
    case StatusCode::kCancelled:
      return 8;
    case StatusCode::kResourceExhausted:
      return 9;
    case StatusCode::kUnavailable:
      return 10;
  }
  return 1;  // unknown kinds are a generic failure, never Internal
}

std::string Status::toString() const {
  if (ok()) return "Ok";
  std::string s = statusCodeName(code_);
  if (!message_.empty()) {
    s += ": ";
    s += message_;
  }
  return s;
}

}  // namespace ep
