// Deprecated compatibility shims, kept for one release after the context
// refactor removed the process-global runtime. New code should construct an
// ep::RuntimeContext (or an ep::PlacerSession) and pass it down instead.
#pragma once

namespace ep::compat {

/// Pre-refactor spelling of "size the process-wide pool". Now it only
/// configures the pool that RuntimeContext::processDefault() will be built
/// with, and only if the default context has not materialized yet. The
/// historical API was racy when two threads configured the pool while work
/// was in flight; the shim closes that race with std::call_once — the first
/// caller wins, later calls (and calls after the default context exists)
/// are ignored with a warning.
[[deprecated(
    "construct an ep::RuntimeContext with RuntimeOptions::threads "
    "instead")]] void
setGlobalThreads(int threads);

}  // namespace ep::compat
