#include "util/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/fault_injector.h"
#include "util/io.h"
#include "util/log.h"

namespace ep {

namespace {

constexpr char kMagic[8] = {'E', 'P', 'S', 'N', 'A', 'P', 'S', 'H'};
constexpr std::uint32_t kVersion = 1;

Status ioError(const std::string& what, const std::string& path) {
  return Status::ioError(what + " " + path + ": " + std::strerror(errno));
}

Status badSnapshot(const std::string& path, const std::string& why) {
  return Status::invalidInput("snapshot " + path + ": " + why);
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> data, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1U) ? 0xEDB88320U ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFU;
  for (const std::uint8_t b : data) {
    c = table[(c ^ b) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

void ByteWriter::u32(std::uint32_t v) {
  for (int i = 0; i < 4; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::u64(std::uint64_t v) {
  for (int i = 0; i < 8; ++i) buf_.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}

void ByteWriter::f64(double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof bits);
  u64(bits);
}

void ByteWriter::str(const std::string& s) {
  u32(static_cast<std::uint32_t>(s.size()));
  buf_.insert(buf_.end(), s.begin(), s.end());
}

void ByteWriter::doubles(std::span<const double> v) {
  u64(v.size());
  for (const double d : v) f64(d);
}

bool ByteReader::take(std::size_t n, const std::uint8_t** out) {
  if (fail_ || data_.size() - pos_ < n) {
    fail_ = true;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

std::uint8_t ByteReader::u8() {
  const std::uint8_t* p = nullptr;
  return take(1, &p) ? *p : 0;
}

std::uint32_t ByteReader::u32() {
  const std::uint8_t* p = nullptr;
  if (!take(4, &p)) return 0;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

std::uint64_t ByteReader::u64() {
  const std::uint8_t* p = nullptr;
  if (!take(8, &p)) return 0;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(p[i]) << (8 * i);
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v = 0.0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

std::string ByteReader::str() {
  const std::uint32_t n = u32();
  if (fail_ || remaining() < n) {
    fail_ = true;
    return {};
  }
  const std::uint8_t* p = nullptr;
  take(n, &p);
  return {reinterpret_cast<const char*>(p), n};
}

std::vector<double> ByteReader::doubles() {
  const std::uint64_t n = u64();
  // Bound against the remaining bytes before allocating: a corrupt count
  // must not turn into a multi-gigabyte allocation.
  if (fail_ || remaining() / sizeof(double) < n) {
    fail_ = true;
    return {};
  }
  std::vector<double> v(static_cast<std::size_t>(n));
  for (auto& d : v) d = f64();
  return v;
}

Status writeSnapshotFile(const std::string& path, const SnapshotData& snap,
                         FaultInjector* faults) {
  // Assemble the whole file in memory; sections are small (positions +
  // optimizer vectors), and a single write keeps the tmp file consistent.
  std::vector<std::uint8_t> file(kMagic, kMagic + sizeof kMagic);
  {
    ByteWriter head;
    head.u32(kVersion);
    head.u32(static_cast<std::uint32_t>(snap.sections.size()));
    const auto& h = head.bytes();
    file.insert(file.end(), h.begin(), h.end());
  }
  for (const auto& [name, payload] : snap.sections) {
    ByteWriter sec;
    sec.str(name);
    sec.u64(payload.size());
    sec.u32(crc32(payload));
    const auto& s = sec.bytes();
    file.insert(file.end(), s.begin(), s.end());
    file.insert(file.end(), payload.begin(), payload.end());
  }

  // Fault site "snapshot.write": flip one bit (kNaN/kSpike) or truncate the
  // serialized stream (kTruncate) so readers' rejection paths are testable.
  if (faults != nullptr && faults->active()) {
    if (const FaultSpec* f = faults->fire("snapshot.write")) {
      if (f->kind == FaultKind::kTruncate) {
        file.resize(file.size() / 2);
      } else {
        faults->corruptBytes(file, *f);
      }
    }
  }

  // The tmp+fsync+rename recipe (and the io.* fault sites / retry policy
  // that make it testable) lives in ep::io.
  return io::writeFileDurably(path, file.data(), file.size(), faults);
}

StatusOr<SnapshotData> readSnapshotFile(const std::string& path) {
  std::FILE* in = std::fopen(path.c_str(), "rb");
  if (in == nullptr) return ioError("cannot open", path);
  std::vector<std::uint8_t> file;
  std::uint8_t buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, in)) > 0) {
    file.insert(file.end(), buf, buf + n);
  }
  const bool readErr = std::ferror(in) != 0;
  std::fclose(in);
  if (readErr) return ioError("cannot read", path);

  if (file.size() < sizeof kMagic ||
      std::memcmp(file.data(), kMagic, sizeof kMagic) != 0) {
    return badSnapshot(path, "bad magic (not a snapshot file)");
  }
  ByteReader r(std::span<const std::uint8_t>(file).subspan(sizeof kMagic));
  const std::uint32_t version = r.u32();
  if (r.ok() && version != kVersion) {
    return badSnapshot(path,
                       "unsupported version " + std::to_string(version));
  }
  const std::uint32_t count = r.u32();
  SnapshotData snap;
  for (std::uint32_t i = 0; r.ok() && i < count; ++i) {
    const std::string name = r.str();
    const std::uint64_t len = r.u64();
    const std::uint32_t crc = r.u32();
    if (!r.ok() || r.remaining() < len) {
      return badSnapshot(path, "truncated section '" + name + "'");
    }
    std::vector<std::uint8_t> payload(static_cast<std::size_t>(len));
    for (auto& b : payload) b = r.u8();
    if (crc32(payload) != crc) {
      return badSnapshot(path, "CRC mismatch in section '" + name +
                                   "' (corrupt or bit-flipped)");
    }
    snap.add(name, std::move(payload));
  }
  if (!r.ok()) return badSnapshot(path, "truncated file");
  if (snap.sections.size() != count) {
    return badSnapshot(path, "duplicate section names");
  }
  return snap;
}

}  // namespace ep
