#include "util/rng.h"

#include <cmath>
#include <numbers>

namespace ep {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

constexpr std::uint64_t rotl(std::uint64_t v, int k) {
  return (v << k) | (v >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : s_) s = splitmix64(sm);
  // All-zero state is invalid for xoshiro; splitmix64 of any seed cannot
  // produce four zeros, but guard anyway.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

std::uint64_t Rng::next() {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa -> [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  // Lemire's nearly-divisionless bounded draw, with rejection to stay
  // unbiased for any n.
  if (n == 0) return 0;
  const std::uint64_t threshold = (0 - n) % n;
  for (;;) {
    const std::uint64_t r = next();
    const unsigned __int128 m = static_cast<unsigned __int128>(r) * n;
    if (static_cast<std::uint64_t>(m) >= threshold) {
      return static_cast<std::uint64_t>(m >> 64);
    }
  }
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) {
  return lo + static_cast<std::int64_t>(
                  below(static_cast<std::uint64_t>(hi - lo) + 1));
}

double Rng::gaussian() {
  // Box-Muller; draw until u1 is nonzero so log() is finite.
  double u1 = 0.0;
  do {
    u1 = uniform();
  } while (u1 <= 0.0);
  const double u2 = uniform();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

}  // namespace ep
