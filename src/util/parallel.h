// Deterministic fixed-partition thread pool for the placement hot paths.
//
// Design goals, in priority order:
//
//  1. *Determinism.* Every parallel construct here is bit-deterministic:
//     results are a pure function of the input, never of the thread count
//     or of scheduling. parallelFor splits [0, n) into contiguous,
//     statically computed ranges, so it is safe exactly when every index
//     writes disjoint outputs (element-wise kernels) or when the output
//     partitioning itself is index-based (scatter kernels that partition
//     the *output* bins, see BinGrid::stampAll). deterministicReduce maps
//     every index into its own slot in parallel and then folds the slots
//     serially in index order — the identical floating-point operation
//     sequence as the plain serial loop, for any thread count.
//
//  2. *Serial equivalence.* With --threads 1 (or n below the grain) the
//     pool runs the same code inline on the caller; combined with (1),
//     `--threads N` reproduces the single-thread results bit-exactly.
//
//  3. *Typed failure.* A task that throws does not std::terminate the
//     process: exceptions are captured per partition and the first one (in
//     partition order, hence deterministically) is rethrown on the calling
//     thread, where the flow boundary converts it to ep::Status
//     (StatusCode::kInternal). The "parallel.task" fault site injects such
//     a throw for the robustness suite.
//
// There is no process-global pool: each RuntimeContext owns one, sized at
// construction (CLI --threads / SessionOptions::threads). Concurrent
// sessions therefore never share scheduling state, and by the determinism
// contract their per-session thread caps cannot change results.
#pragma once

#include <cstddef>
#include <memory>
#include <span>

#include "util/status.h"

namespace ep {

class FaultInjector;

/// Serial left fold of `v` in index order (the combine step of
/// deterministicReduce, exposed for per-item partial arrays that are filled
/// by other parallel phases).
double orderedSum(std::span<const double> v);

class ThreadPool {
 public:
  /// `threads` <= 0 selects std::thread::hardware_concurrency().
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threads() const { return nThreads_; }

  /// Below this many indices parallelFor runs inline on the caller: the
  /// dispatch latency dwarfs the work, and (by the determinism contract)
  /// the results are identical either way.
  static constexpr std::size_t kGrain = 2048;

  /// Runs fn(partition, begin, end) over a fixed contiguous split of
  /// [0, n): partition p of P covers [p*n/P, (p+1)*n/P). The caller
  /// executes partition 0; blocks until every partition finished. The
  /// first captured task exception (lowest partition index) is rethrown.
  /// `grain` is the dispatch threshold: below it the loop runs inline
  /// (kGrain suits element-wise work; pass 1 when each index is heavy,
  /// e.g. a whole FFT row).
  template <typename F>
  void parallelFor(std::size_t n, F&& fn, std::size_t grain = kGrain) {
    run(n, [](void* ctx, std::size_t part, std::size_t b, std::size_t e) {
      (*static_cast<std::remove_reference_t<F>*>(ctx))(part, b, e);
    }, &fn, grain);
  }

  /// parallelFor with task exceptions converted to Status (kInternal)
  /// instead of rethrown. Used at subsystem boundaries that already speak
  /// Status; hot inner loops use parallelFor and rely on the flow-level
  /// catch.
  template <typename F>
  Status tryParallelFor(std::size_t n, F&& fn) {
    try {
      parallelFor(n, std::forward<F>(fn));
    } catch (const std::exception& e) {
      return Status::internal(std::string("parallel task failed: ") +
                              e.what());
    }
    return Status::okStatus();
  }

  /// Deterministic sum-reduction: slots[i] = f(i) computed in parallel,
  /// then folded serially in index order. `slots.size()` must be >= n.
  /// Bit-identical to `for (i) acc += f(i)` for any thread count.
  template <typename F>
  double deterministicReduce(std::size_t n, std::span<double> slots, F&& f) {
    parallelFor(n, [&](std::size_t, std::size_t b, std::size_t e) {
      for (std::size_t i = b; i < e; ++i) slots[i] = f(i);
    });
    return orderedSum(slots.subspan(0, n));
  }

  /// Wires the "parallel.task" fault site to `inj` (nullptr disables the
  /// site). Called by the owning RuntimeContext during construction; not
  /// safe while parallel work is in flight.
  void setFaultInjector(FaultInjector* inj) { inj_ = inj; }

 private:
  using RawFn = void (*)(void* ctx, std::size_t part, std::size_t begin,
                         std::size_t end);
  void run(std::size_t n, RawFn fn, void* ctx, std::size_t grain);

  struct Impl;
  std::unique_ptr<Impl> impl_;
  FaultInjector* inj_ = nullptr;
  int nThreads_ = 1;
};

}  // namespace ep
