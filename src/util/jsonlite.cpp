#include "util/jsonlite.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace ep {

void JsonValue::set(std::string key, JsonValue value) {
  kind_ = Kind::kObject;
  for (auto& [k, v] : obj_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  obj_.emplace_back(std::move(key), std::move(value));
}

std::string JsonValue::getString(std::string_view key, std::string def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isString() ? v->asString() : std::move(def);
}

double JsonValue::getNumber(std::string_view key, double def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isNumber() ? v->asNumber() : def;
}

bool JsonValue::getBool(std::string_view key, bool def) const {
  const JsonValue* v = find(key);
  return v != nullptr && v->isBool() ? v->asBool() : def;
}

namespace {

/// Recursive-descent parser over a bounded string_view. Every advance is
/// bounds-checked; errors carry the byte offset for fuzzer triage.
struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::size_t maxDepth;

  explicit Parser(std::string_view t, std::size_t depth)
      : text(t), maxDepth(depth) {}

  [[nodiscard]] Status fail(const std::string& what) const {
    return Status::invalidInput("json: " + what + " at byte " +
                                std::to_string(pos));
  }

  [[nodiscard]] bool atEnd() const { return pos >= text.size(); }
  [[nodiscard]] char peek() const { return text[pos]; }

  void skipWs() {
    while (!atEnd()) {
      const char c = text[pos];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos;
    }
  }

  bool consume(char c) {
    if (atEnd() || text[pos] != c) return false;
    ++pos;
    return true;
  }

  bool consumeWord(std::string_view w) {
    if (text.substr(pos, w.size()) != w) return false;
    pos += w.size();
    return true;
  }

  Status parseValue(JsonValue& out, std::size_t depth) {
    if (depth > maxDepth) return fail("nesting too deep");
    skipWs();
    if (atEnd()) return fail("unexpected end of input");
    const char c = peek();
    if (c == '{') return parseObject(out, depth);
    if (c == '[') return parseArray(out, depth);
    if (c == '"') {
      std::string s;
      const Status st = parseString(s);
      if (!st.ok()) return st;
      out = JsonValue::str(std::move(s));
      return Status::okStatus();
    }
    if (consumeWord("null")) {
      out = JsonValue::null();
      return Status::okStatus();
    }
    if (consumeWord("true")) {
      out = JsonValue::boolean(true);
      return Status::okStatus();
    }
    if (consumeWord("false")) {
      out = JsonValue::boolean(false);
      return Status::okStatus();
    }
    if (c == '-' || (c >= '0' && c <= '9')) return parseNumber(out);
    return fail("unexpected character");
  }

  Status parseNumber(JsonValue& out) {
    const std::size_t start = pos;
    if (consume('-')) {
      // sign handled; digits follow
    }
    if (atEnd() || peek() < '0' || peek() > '9') return fail("bad number");
    if (peek() == '0') {
      ++pos;  // JSON forbids leading zeros: 0 stands alone before ./e
      if (!atEnd() && peek() >= '0' && peek() <= '9') {
        return fail("leading zero");
      }
    } else {
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (consume('.')) {
      if (atEnd() || peek() < '0' || peek() > '9') return fail("bad number");
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos;
    }
    if (!atEnd() && (peek() == 'e' || peek() == 'E')) {
      ++pos;
      if (!atEnd() && (peek() == '+' || peek() == '-')) ++pos;
      if (atEnd() || peek() < '0' || peek() > '9') return fail("bad number");
      while (!atEnd() && peek() >= '0' && peek() <= '9') ++pos;
    }
    // The slice is a valid JSON number grammar-wise; strtod cannot overrun
    // because we pass a NUL-terminated copy of just the slice.
    const std::string slice(text.substr(start, pos - start));
    const double v = std::strtod(slice.c_str(), nullptr);
    if (!std::isfinite(v)) return fail("number out of range");
    out = JsonValue::number(v);
    return Status::okStatus();
  }

  static void appendUtf8(std::string& s, unsigned cp) {
    if (cp < 0x80) {
      s += static_cast<char>(cp);
    } else if (cp < 0x800) {
      s += static_cast<char>(0xC0 | (cp >> 6));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else if (cp < 0x10000) {
      s += static_cast<char>(0xE0 | (cp >> 12));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    } else {
      s += static_cast<char>(0xF0 | (cp >> 18));
      s += static_cast<char>(0x80 | ((cp >> 12) & 0x3F));
      s += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
      s += static_cast<char>(0x80 | (cp & 0x3F));
    }
  }

  Status parseHex4(unsigned& out) {
    out = 0;
    for (int i = 0; i < 4; ++i) {
      if (atEnd()) return fail("truncated \\u escape");
      const char c = text[pos++];
      unsigned d = 0;
      if (c >= '0' && c <= '9') {
        d = static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        d = static_cast<unsigned>(c - 'a') + 10;
      } else if (c >= 'A' && c <= 'F') {
        d = static_cast<unsigned>(c - 'A') + 10;
      } else {
        return fail("bad \\u escape");
      }
      out = (out << 4) | d;
    }
    return Status::okStatus();
  }

  Status parseString(std::string& out) {
    if (!consume('"')) return fail("expected string");
    out.clear();
    while (true) {
      if (atEnd()) return fail("unterminated string");
      const char c = text[pos++];
      if (c == '"') return Status::okStatus();
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("raw control character in string");
      }
      if (c != '\\') {
        out += c;
        continue;
      }
      if (atEnd()) return fail("truncated escape");
      const char e = text[pos++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          unsigned cp = 0;
          Status st = parseHex4(cp);
          if (!st.ok()) return st;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // Surrogate pair: require the low half immediately after.
            if (!consume('\\') || !consume('u')) {
              return fail("lone high surrogate");
            }
            unsigned lo = 0;
            st = parseHex4(lo);
            if (!st.ok()) return st;
            if (lo < 0xDC00 || lo > 0xDFFF) return fail("bad low surrogate");
            cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("lone low surrogate");
          }
          appendUtf8(out, cp);
          break;
        }
        default:
          return fail("unknown escape");
      }
    }
  }

  Status parseArray(JsonValue& out, std::size_t depth) {
    consume('[');
    out = JsonValue::array();
    skipWs();
    if (consume(']')) return Status::okStatus();
    while (true) {
      JsonValue elem;
      const Status st = parseValue(elem, depth + 1);
      if (!st.ok()) return st;
      out.push(std::move(elem));
      skipWs();
      if (consume(']')) return Status::okStatus();
      if (!consume(',')) return fail("expected ',' or ']'");
    }
  }

  Status parseObject(JsonValue& out, std::size_t depth) {
    consume('{');
    out = JsonValue::object();
    skipWs();
    if (consume('}')) return Status::okStatus();
    while (true) {
      skipWs();
      std::string key;
      Status st = parseString(key);
      if (!st.ok()) return st;
      skipWs();
      if (!consume(':')) return fail("expected ':'");
      JsonValue val;
      st = parseValue(val, depth + 1);
      if (!st.ok()) return st;
      out.set(std::move(key), std::move(val));
      skipWs();
      if (consume('}')) return Status::okStatus();
      if (!consume(',')) return fail("expected ',' or '}'");
    }
  }
};

void writeString(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    const auto u = static_cast<unsigned char>(c);
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (u < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", u);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void writeNumber(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
  char buf[40];
  // Integral doubles (job ids, counters) print exactly; everything else
  // gets a round-trippable 17-digit form.
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  out += buf;
}

void writeValue(std::string& out, const JsonValue& v) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      out += "null";
      break;
    case JsonValue::Kind::kBool:
      out += v.asBool() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber:
      writeNumber(out, v.asNumber());
      break;
    case JsonValue::Kind::kString:
      writeString(out, v.asString());
      break;
    case JsonValue::Kind::kArray: {
      out += '[';
      bool first = true;
      for (const auto& e : v.items()) {
        if (!first) out += ',';
        first = false;
        writeValue(out, e);
      }
      out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, e] : v.members()) {
        if (!first) out += ',';
        first = false;
        writeString(out, k);
        out += ':';
        writeValue(out, e);
      }
      out += '}';
      break;
    }
  }
}

}  // namespace

StatusOr<JsonValue> parseJson(std::string_view text, const JsonLimits& lim) {
  Parser p(text, lim.maxDepth);
  JsonValue v;
  const Status st = p.parseValue(v, 0);
  if (!st.ok()) return st;
  p.skipWs();
  if (!p.atEnd()) return p.fail("trailing garbage");
  return v;
}

std::string writeJson(const JsonValue& v) {
  std::string out;
  writeValue(out, v);
  return out;
}

}  // namespace ep
