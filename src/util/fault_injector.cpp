#include "util/fault_injector.h"

#include <limits>

#include "util/log.h"

namespace ep {

FaultInjector& FaultInjector::instance() {
  static FaultInjector inj;
  return inj;
}

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  sites_[site] = Armed{spec, 0, 0};
}

void FaultInjector::disarm(const std::string& site) { sites_.erase(site); }

void FaultInjector::reset() {
  sites_.clear();
  rng_.reseed(0xfa17ED5EEDULL);
}

void FaultInjector::reseed(std::uint64_t seed) { rng_.reseed(seed); }

const FaultSpec* FaultInjector::fire(const std::string& site) {
  const auto it = sites_.find(site);
  if (it == sites_.end()) return nullptr;
  Armed& a = it->second;
  const long tick = a.tick++;
  if (tick < a.spec.atTick) return nullptr;
  if (a.spec.count >= 0 && a.fired >= a.spec.count) return nullptr;
  ++a.fired;
  logDebug("fault injector: %s fires at pass %ld", site.c_str(), tick);
  return &a.spec;
}

void FaultInjector::corrupt(std::span<double> data, const FaultSpec& spec) {
  if (data.empty()) return;
  const std::size_t idx =
      static_cast<std::size_t>(rng_.below(static_cast<std::uint64_t>(data.size())));
  switch (spec.kind) {
    case FaultKind::kNaN:
      data[idx] = std::numeric_limits<double>::quiet_NaN();
      break;
    case FaultKind::kSpike:
      data[idx] = (data[idx] == 0.0 ? 1.0 : data[idx]) * spec.magnitude;
      break;
    case FaultKind::kTruncate:
      break;  // stream-site semantics; nothing to corrupt in a buffer
  }
}

void FaultInjector::corruptBytes(std::span<std::uint8_t> data,
                                 const FaultSpec& spec) {
  if (data.empty() || spec.kind == FaultKind::kTruncate) return;
  const std::size_t idx = static_cast<std::size_t>(
      rng_.below(static_cast<std::uint64_t>(data.size())));
  data[idx] ^= static_cast<std::uint8_t>(1U << rng_.below(8));
}

long FaultInjector::fireCount(const std::string& site) const {
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

std::span<const char* const> knownFaultSites() {
  static constexpr const char* kSites[] = {
      "nesterov.grad",     "fft.forward", "bookshelf.line",
      "legalize.displace", "detail.swap", "snapshot.write",
  };
  return kSites;
}

}  // namespace ep
