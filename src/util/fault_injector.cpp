#include "util/fault_injector.h"

#include <limits>

#include "util/log.h"

namespace ep {

void FaultInjector::arm(const std::string& site, FaultSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_[site] = Armed{spec, 0, 0};
  armed_.store(true, std::memory_order_relaxed);
}

void FaultInjector::disarm(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.erase(site);
  armed_.store(!sites_.empty(), std::memory_order_relaxed);
}

void FaultInjector::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  sites_.clear();
  armed_.store(false, std::memory_order_relaxed);
  rng_.reseed(0xfa17ED5EEDULL);
}

void FaultInjector::reseed(std::uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.reseed(seed);
}

const FaultSpec* FaultInjector::fire(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  if (it == sites_.end()) return nullptr;
  Armed& a = it->second;
  const long tick = a.tick++;
  if (tick < a.spec.atTick) return nullptr;
  if (a.spec.count >= 0 && a.fired >= a.spec.count) return nullptr;
  ++a.fired;
  logDebug("fault injector: %s fires at pass %ld", site.c_str(), tick);
  return &a.spec;
}

void FaultInjector::corrupt(std::span<double> data, const FaultSpec& spec) {
  if (data.empty()) return;
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t idx =
      static_cast<std::size_t>(rng_.below(static_cast<std::uint64_t>(data.size())));
  switch (spec.kind) {
    case FaultKind::kNaN:
      data[idx] = std::numeric_limits<double>::quiet_NaN();
      break;
    case FaultKind::kSpike:
      data[idx] = (data[idx] == 0.0 ? 1.0 : data[idx]) * spec.magnitude;
      break;
    case FaultKind::kTruncate:
    case FaultKind::kError:
      break;  // stream/error-site semantics; nothing to corrupt in a buffer
  }
}

void FaultInjector::corruptBytes(std::span<std::uint8_t> data,
                                 const FaultSpec& spec) {
  if (data.empty() || spec.kind == FaultKind::kTruncate ||
      spec.kind == FaultKind::kError) {
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  const std::size_t idx = static_cast<std::size_t>(
      rng_.below(static_cast<std::uint64_t>(data.size())));
  data[idx] ^= static_cast<std::uint8_t>(1U << rng_.below(8));
}

long FaultInjector::fireCount(const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.fired;
}

std::span<const char* const> knownFaultSites() {
  static constexpr const char* kSites[] = {
      "nesterov.grad",     "fft.forward",   "bookshelf.line",
      "legalize.displace", "detail.swap",   "snapshot.write",
      "parallel.task",     "serve.request", "serve.accept",
      "io.write",          "io.fsync",      "io.rename",
      "io.enospc",
  };
  return kSites;
}

}  // namespace ep
