// Deterministic pseudo-random number generation (xoshiro256**).
//
// Every stochastic component in the placer (filler seeding, simulated
// annealing, benchmark generation) draws from an explicitly seeded Rng so
// that runs are bit-reproducible across platforms — std::mt19937's
// distributions are not guaranteed identical across standard libraries,
// which breaks golden tests.
#pragma once

#include <cstdint>
#include <vector>

namespace ep {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initialize the state from a 64-bit seed via SplitMix64 expansion.
  void reseed(std::uint64_t seed);

  /// Next raw 64-bit value.
  std::uint64_t next();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n > 0.
  std::uint64_t below(std::uint64_t n);

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t range(std::int64_t lo, std::int64_t hi);

  /// Standard normal via Box-Muller (deterministic, no cached spare).
  double gaussian();

  /// Bernoulli draw with probability p of true.
  bool chance(double p) { return uniform() < p; }

  /// Raw engine state, for durable checkpoints (util/snapshot): saving and
  /// later restoring the four words resumes the stream bit-exactly.
  void saveState(std::uint64_t out[4]) const {
    for (int i = 0; i < 4; ++i) out[i] = s_[i];
  }
  void loadState(const std::uint64_t in[4]) {
    for (int i = 0; i < 4; ++i) s_[i] = in[i];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      const std::size_t j = static_cast<std::size_t>(below(i));
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t s_[4] = {};
};

}  // namespace ep
