#include "util/csv.h"

#include <unistd.h>

#include "util/log.h"

namespace ep {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(std::fopen(path.c_str(), "w")),
      path_(path),
      columns_(header.size()) {
  if (out_ == nullptr) {
    logWarn("CsvWriter: cannot open %s", path.c_str());
    return;
  }
  row(header);
}

CsvWriter::~CsvWriter() {
  if (out_ == nullptr) return;
  // A trace that could not be made durable is exactly the artifact someone
  // will trust after a crash — say so instead of closing silently.
  if (std::fflush(out_) != 0 || ::fsync(fileno(out_)) != 0) {
    logWarn("CsvWriter: could not sync %s on close; trace may be incomplete",
            path_.c_str());
  }
  std::fclose(out_);
}

bool CsvWriter::writable() {
  if (out_ != nullptr && !failed_ && std::ferror(out_) == 0) return true;
  if (!warnedDrop_) {
    warnedDrop_ = true;
    logWarn("CsvWriter: %s is not writable, dropping all rows", path_.c_str());
  }
  return false;
}

void CsvWriter::endRow() {
  if (std::fputc('\n', out_) == EOF || std::fflush(out_) != 0) {
    failed_ = true;  // writable() warns once on the next row
  }
}

void CsvWriter::row(const std::vector<double>& cells) {
  if (!writable()) return;
  if (cells.size() != columns_) {
    logWarn("CsvWriter: row has %zu cells, header has %zu", cells.size(),
            columns_);
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (std::fprintf(out_, "%s%.6g", i ? "," : "", cells[i]) < 0) {
      failed_ = true;
    }
  }
  endRow();
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!writable()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (std::fprintf(out_, "%s%s", i ? "," : "", cells[i].c_str()) < 0) {
      failed_ = true;
    }
  }
  endRow();
}

}  // namespace ep
