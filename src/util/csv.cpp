#include "util/csv.h"

#include <unistd.h>

#include "util/log.h"

namespace ep {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(std::fopen(path.c_str(), "w")),
      path_(path),
      columns_(header.size()) {
  if (out_ == nullptr) {
    logWarn("CsvWriter: cannot open %s", path.c_str());
    return;
  }
  row(header);
}

CsvWriter::~CsvWriter() {
  if (out_ == nullptr) return;
  std::fflush(out_);
  ::fsync(fileno(out_));
  std::fclose(out_);
}

bool CsvWriter::writable() {
  if (out_ != nullptr && std::ferror(out_) == 0) return true;
  if (!warnedDrop_) {
    warnedDrop_ = true;
    logWarn("CsvWriter: %s is not writable, dropping all rows", path_.c_str());
  }
  return false;
}

void CsvWriter::endRow() {
  std::fputc('\n', out_);
  std::fflush(out_);
}

void CsvWriter::row(const std::vector<double>& cells) {
  if (!writable()) return;
  if (cells.size() != columns_) {
    logWarn("CsvWriter: row has %zu cells, header has %zu", cells.size(),
            columns_);
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::fprintf(out_, "%s%.6g", i ? "," : "", cells[i]);
  }
  endRow();
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!writable()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    std::fprintf(out_, "%s%s", i ? "," : "", cells[i].c_str());
  }
  endRow();
}

}  // namespace ep
