#include "util/csv.h"

#include <cstdio>

#include "util/log.h"

namespace ep {

CsvWriter::CsvWriter(const std::string& path,
                     const std::vector<std::string>& header)
    : out_(path), path_(path), columns_(header.size()) {
  if (!out_) {
    logWarn("CsvWriter: cannot open %s", path.c_str());
    return;
  }
  row(header);
}

bool CsvWriter::writable() {
  if (out_) return true;
  if (!warnedDrop_) {
    warnedDrop_ = true;
    logWarn("CsvWriter: %s is not writable, dropping all rows", path_.c_str());
  }
  return false;
}

void CsvWriter::row(const std::vector<double>& cells) {
  if (!writable()) return;
  if (cells.size() != columns_) {
    logWarn("CsvWriter: row has %zu cells, header has %zu", cells.size(),
            columns_);
  }
  for (std::size_t i = 0; i < cells.size(); ++i) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", cells[i]);
    out_ << (i ? "," : "") << buf;
  }
  out_ << '\n';
}

void CsvWriter::row(const std::vector<std::string>& cells) {
  if (!writable()) return;
  for (std::size_t i = 0; i < cells.size(); ++i) {
    out_ << (i ? "," : "") << cells[i];
  }
  out_ << '\n';
}

}  // namespace ep
