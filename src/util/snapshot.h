// Durable, versioned binary snapshots for crash-safe checkpoint/resume.
//
// A snapshot file is a flat container of named byte sections:
//
//   offset  size  field
//   0       8     magic "EPSNAPSH"
//   8       4     format version (little-endian u32, currently 1)
//   12      4     section count (u32)
//   per section:
//           4     name length (u32)
//           n     name bytes
//           8     payload length (u64)
//           4     CRC32 of the payload
//           m     payload bytes
//
// Every multi-byte integer is little-endian. Readers verify the magic, the
// version, every length against the remaining file size, and every
// section's CRC32 — a truncated or bit-flipped file is rejected with a
// typed ep::Status instead of being deserialized into garbage. Writers are
// crash-safe: the file is assembled in memory, written to "<path>.tmp",
// flushed and fsync'd, then atomically renamed over <path>, so a SIGKILL at
// any instant leaves either the previous snapshot or the complete new one,
// never a torn file. The "snapshot.write" fault site corrupts the
// serialized bytes (bit flip) or truncates the file to exercise the reader's
// rejection paths deterministically.
//
// ByteWriter/ByteReader are the primitive codec used to build section
// payloads (doubles are serialized as their IEEE-754 bit patterns, so a
// restored optimizer state is bit-exact).
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

#include "util/status.h"

namespace ep {

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention).
std::uint32_t crc32(std::span<const std::uint8_t> data,
                    std::uint32_t seed = 0);

/// Append-only little-endian serializer for section payloads.
class ByteWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(v); }
  void u32(std::uint32_t v);
  void u64(std::uint64_t v);
  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void f64(double v);  ///< IEEE-754 bit pattern, bit-exact round trip
  void str(const std::string& s);               ///< u32 length + bytes
  void doubles(std::span<const double> v);      ///< u64 count + payload
  [[nodiscard]] const std::vector<std::uint8_t>& bytes() const {
    return buf_;
  }
  [[nodiscard]] std::vector<std::uint8_t> take() { return std::move(buf_); }

 private:
  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked little-endian deserializer. Reads past the end set the
/// fail flag and return zero values; callers check ok() once at the end
/// instead of wrapping every get.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  double f64();
  std::string str();
  std::vector<double> doubles();

  [[nodiscard]] bool ok() const { return !fail_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  bool take(std::size_t n, const std::uint8_t** out);

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool fail_ = false;
};

/// An in-memory snapshot: named sections of opaque bytes.
struct SnapshotData {
  std::map<std::string, std::vector<std::uint8_t>> sections;

  void add(const std::string& name, std::vector<std::uint8_t> payload) {
    sections[name] = std::move(payload);
  }
  /// Section payload or nullptr when absent.
  [[nodiscard]] const std::vector<std::uint8_t>* find(
      const std::string& name) const {
    const auto it = sections.find(name);
    return it == sections.end() ? nullptr : &it->second;
  }
};

class FaultInjector;

/// Serializes `snap` and atomically replaces `path` (tmp + fsync + rename).
/// Returns kIo when the file cannot be created, written, or renamed.
/// `faults` (optional) wires the "snapshot.write" site for the robustness
/// suites; production callers pass their context's injector.
Status writeSnapshotFile(const std::string& path, const SnapshotData& snap,
                         FaultInjector* faults = nullptr);

/// Loads and verifies a snapshot file. Returns kIo when the file cannot be
/// read and kInvalidInput when the magic/version/lengths/CRCs do not check
/// out (truncation, bit flips, foreign files).
StatusOr<SnapshotData> readSnapshotFile(const std::string& path);

}  // namespace ep
