#include "util/context.h"

#include <atomic>

namespace ep {

namespace {

// Thread count requested by ep::compat::setGlobalThreads before the default
// context materializes; 0 = hardware concurrency.
std::atomic<int> g_requestedDefaultThreads{0};
std::atomic<bool> g_defaultMaterialized{false};

}  // namespace

RuntimeContext::RuntimeContext(RuntimeOptions opt)
    : opt_(std::move(opt)),
      pool_(opt_.threads),
      rng_(opt_.seed),
      ownSink_(opt_.logPrefix, opt_.logLevel),
      wallBudgetSeconds_(opt_.wallBudgetSeconds) {
  ownSink_.setTimestamps(opt_.logTimestamps);
  pool_.setFaultInjector(&faults_);
  memory_.setLimit(opt_.memBudgetBytes);
}

RuntimeContext::RuntimeContext(int threads)
    : RuntimeContext(RuntimeOptions{.threads = threads}) {}

RuntimeContext::RuntimeContext(DefaultTag, RuntimeOptions opt)
    : RuntimeContext(std::move(opt)) {
  // The process-default context logs through the process-default sink, so
  // legacy setLogLevel()/logInfo() callers and context-threaded code that
  // happens to run on the default context see one coherent verbosity knob.
  sink_ = &defaultLogSink();
}

RuntimeContext& RuntimeContext::processDefault() {
  static RuntimeContext ctx = [] {
    g_defaultMaterialized.store(true, std::memory_order_release);
    RuntimeOptions opt;
    opt.threads = g_requestedDefaultThreads.load(std::memory_order_acquire);
    return RuntimeContext(DefaultTag{}, std::move(opt));
  }();
  return ctx;
}

namespace detail {

bool requestProcessDefaultThreads(int threads) {
  if (g_defaultMaterialized.load(std::memory_order_acquire)) return false;
  g_requestedDefaultThreads.store(threads, std::memory_order_release);
  return true;
}

}  // namespace detail

}  // namespace ep
