#include "util/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "util/fault_injector.h"
#include "util/log.h"

namespace ep::io {

namespace {

constexpr const char* kNoSpaceTag = "(ENOSPC)";

Status ioError(const std::string& what, const std::string& path, int err) {
  return Status::ioError(what + " " + path + ": " + std::strerror(err) +
                         (err == ENOSPC || err == EDQUOT
                              ? std::string(" ") + kNoSpaceTag
                              : std::string()));
}

/// Checks the error-kind fault sites for one attempt. Returns 0 when no
/// site fires, otherwise the errno the attempt should fail with.
/// `stage` selects which site is consulted.
int injectedErrno(FaultInjector* faults, const char* site) {
  if (faults == nullptr || !faults->active()) return 0;
  const FaultSpec* f = faults->fire(site);
  if (f == nullptr) return 0;
  return std::strcmp(site, "io.enospc") == 0 ? ENOSPC : EIO;
}

/// One full tmp+write+fsync+rename attempt. Returns OK or a typed kIo
/// status; guarantees the tmp file is gone on failure.
Status writeOnce(const std::string& path, const void* data, std::size_t n,
                 FaultInjector* faults) {
  // "io.enospc" fails the attempt before any bytes move, modelling a full
  // disk: persistent, recognized by isNoSpace(), never retried.
  if (const int err = injectedErrno(faults, "io.enospc")) {
    return ioError("cannot write", path, err);
  }

  const std::string tmp = path + ".tmp";
  std::FILE* out = std::fopen(tmp.c_str(), "wb");
  if (out == nullptr) return ioError("cannot create", tmp, errno);

  bool wrote = true;
  int err = 0;
  if (const int ie = injectedErrno(faults, "io.write")) {
    wrote = false;
    err = ie;  // synthetic short write
  } else if (std::fwrite(data, 1, n, out) != n) {
    wrote = false;
    err = errno != 0 ? errno : EIO;
  }
  if (wrote && std::fflush(out) != 0) {
    wrote = false;
    err = errno != 0 ? errno : EIO;
  }
  if (wrote) {
    if (const int ie = injectedErrno(faults, "io.fsync")) {
      wrote = false;
      err = ie;
    } else if (::fsync(fileno(out)) != 0) {
      wrote = false;
      err = errno != 0 ? errno : EIO;
    }
  }
  if (std::fclose(out) != 0 && wrote) {
    wrote = false;
    err = errno != 0 ? errno : EIO;
  }
  if (!wrote) {
    std::remove(tmp.c_str());
    return ioError("cannot write", tmp, err);
  }

  if (const int ie = injectedErrno(faults, "io.rename")) {
    std::remove(tmp.c_str());
    return ioError("cannot rename into place", path, ie);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    const int renameErr = errno != 0 ? errno : EIO;
    std::remove(tmp.c_str());
    return ioError("cannot rename into place", path, renameErr);
  }
  syncParentDir(path);
  return {};
}

}  // namespace

Status writeFileDurably(const std::string& path, const void* data,
                        std::size_t n, FaultInjector* faults,
                        const RetryPolicy& retry) {
  const int attempts = retry.maxAttempts < 1 ? 1 : retry.maxAttempts;
  Status last;
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      // Deterministic exponential backoff: 1x, 2x, 4x, ... the base.
      ::usleep(static_cast<useconds_t>(retry.backoffMicros)
               << (attempt - 1));
      logDebug("io: retrying write of %s (attempt %d/%d): %s", path.c_str(),
               attempt + 1, attempts, last.message().c_str());
    }
    last = writeOnce(path, data, n, faults);
    if (last.ok()) return last;
    // A full disk will not empty itself inside our backoff window;
    // surface it immediately so the caller can degrade.
    if (isNoSpace(last)) return last;
  }
  return last;
}

Status writeFileDurably(const std::string& path, const std::string& text,
                        FaultInjector* faults, const RetryPolicy& retry) {
  return writeFileDurably(path, text.data(), text.size(), faults, retry);
}

void syncParentDir(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::string dir =
      slash == std::string::npos ? "." : path.substr(0, slash);
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd >= 0) {
    ::fsync(fd);
    ::close(fd);
  }
}

bool isNoSpace(const Status& s) {
  return s.code() == StatusCode::kIo &&
         s.message().find(kNoSpaceTag) != std::string::npos;
}

}  // namespace ep::io
