#include "util/log.h"

#include <cstdio>
#include <ctime>

#include <chrono>

namespace ep {
namespace {

// Formats "HH:MM:SS.mmm" (local time) into buf; returns buf.
const char* formatTimestamp(char (&buf)[16]) {
  const auto now = std::chrono::system_clock::now();
  const std::time_t secs = std::chrono::system_clock::to_time_t(now);
  const auto ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      now.time_since_epoch())
                      .count() %
                  1000;
  std::tm tm{};
  localtime_r(&secs, &tm);
  std::snprintf(buf, sizeof(buf), "%02d:%02d:%02d.%03d", tm.tm_hour,
                tm.tm_min, tm.tm_sec, static_cast<int>(ms));
  return buf;
}

}  // namespace

const char* logLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

bool parseLogLevel(std::string_view text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn" || text == "warning") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else if (text == "off" || text == "none") {
    *out = LogLevel::kOff;
  } else {
    return false;
  }
  return true;
}

void LogSink::write(LogLevel level, std::string_view msg) const {
  if (!enabled(level)) return;
  char ts[16] = "";
  const bool withTs = timestamps();
  if (withTs) formatTimestamp(ts);
  // Single fprintf per line so concurrent sessions never interleave
  // characters mid-line.
  if (withTs && !prefix_.empty()) {
    std::fprintf(stderr, "[%s] [%s] [%s] %.*s\n", ts, prefix_.c_str(),
                 logLevelName(level), static_cast<int>(msg.size()),
                 msg.data());
  } else if (withTs) {
    std::fprintf(stderr, "[%s] [%s] %.*s\n", ts, logLevelName(level),
                 static_cast<int>(msg.size()), msg.data());
  } else if (!prefix_.empty()) {
    std::fprintf(stderr, "[%s] [%s] %.*s\n", prefix_.c_str(),
                 logLevelName(level), static_cast<int>(msg.size()),
                 msg.data());
  } else {
    std::fprintf(stderr, "[%s] %.*s\n", logLevelName(level),
                 static_cast<int>(msg.size()), msg.data());
  }
}

void LogSink::vlogf(LogLevel level, const char* fmt, va_list args) const {
  if (!enabled(level)) return;
  char buf[1024];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  write(level, buf);
}

#define EP_DEFINE_SINK_LOG(Name, Level)            \
  void LogSink::Name(const char* fmt, ...) const { \
    va_list args;                                  \
    va_start(args, fmt);                           \
    vlogf(Level, fmt, args);                       \
    va_end(args);                                  \
  }

EP_DEFINE_SINK_LOG(debug, LogLevel::kDebug)
EP_DEFINE_SINK_LOG(info, LogLevel::kInfo)
EP_DEFINE_SINK_LOG(warn, LogLevel::kWarn)
EP_DEFINE_SINK_LOG(error, LogLevel::kError)

#undef EP_DEFINE_SINK_LOG

LogSink& defaultLogSink() {
  static LogSink sink;
  return sink;
}

void setLogLevel(LogLevel level) { defaultLogSink().setLevel(level); }
LogLevel logLevel() { return defaultLogSink().level(); }

void logLine(LogLevel level, std::string_view msg) {
  defaultLogSink().write(level, msg);
}

#define EP_DEFINE_LOG(Name, Level)            \
  void Name(const char* fmt, ...) {           \
    va_list args;                             \
    va_start(args, fmt);                      \
    defaultLogSink().vlogf(Level, fmt, args); \
    va_end(args);                             \
  }

EP_DEFINE_LOG(logDebug, LogLevel::kDebug)
EP_DEFINE_LOG(logInfo, LogLevel::kInfo)
EP_DEFINE_LOG(logWarn, LogLevel::kWarn)
EP_DEFINE_LOG(logError, LogLevel::kError)

#undef EP_DEFINE_LOG

}  // namespace ep
