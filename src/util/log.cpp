#include "util/log.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>

namespace ep {
namespace {

std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* levelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
    case LogLevel::kOff:
      return "off";
  }
  return "?";
}

void vlog(LogLevel level, const char* fmt, va_list args) {
  if (level < g_level.load()) return;
  char buf[1024];
  std::vsnprintf(buf, sizeof buf, fmt, args);
  std::fprintf(stderr, "[%s] %s\n", levelName(level), buf);
}

}  // namespace

void setLogLevel(LogLevel level) { g_level.store(level); }
LogLevel logLevel() { return g_level.load(); }

void logLine(LogLevel level, std::string_view msg) {
  if (level < g_level.load()) return;
  std::fprintf(stderr, "[%s] %.*s\n", levelName(level),
               static_cast<int>(msg.size()), msg.data());
}

#define EP_DEFINE_LOG(Name, Level)          \
  void Name(const char* fmt, ...) {         \
    va_list args;                           \
    va_start(args, fmt);                    \
    vlog(Level, fmt, args);                 \
    va_end(args);                           \
  }

EP_DEFINE_LOG(logDebug, LogLevel::kDebug)
EP_DEFINE_LOG(logInfo, LogLevel::kInfo)
EP_DEFINE_LOG(logWarn, LogLevel::kWarn)
EP_DEFINE_LOG(logError, LogLevel::kError)

#undef EP_DEFINE_LOG

}  // namespace ep
