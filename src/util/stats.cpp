#include "util/stats.h"

#include <cmath>
#include <limits>

namespace ep {

double norm2(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += x * x;
  return std::sqrt(s);
}

double dist2(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s);
}

double norm1(std::span<const double> v) {
  double s = 0.0;
  for (double x : v) s += std::abs(x);
  return s;
}

double dot(std::span<const double> a, std::span<const double> b) {
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

void Summary::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Summary::variance() const {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double Summary::stddev() const { return std::sqrt(variance()); }

double geomean(std::span<const double> v) {
  if (v.empty()) return 0.0;
  double logsum = 0.0;
  for (double x : v) {
    if (x <= 0.0) return 0.0;
    logsum += std::log(x);
  }
  return std::exp(logsum / static_cast<double>(v.size()));
}

}  // namespace ep
