// Minimal leveled logger. The placer is a library first: logging defaults to
// warnings only and callers (examples, benches) opt into verbosity.
// printf-style formatting (GCC 12 on this toolchain lacks <format>).
#pragma once

#include <string_view>

namespace ep {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Process-wide minimum level; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit one line to stderr as "[level] message" when enabled.
void logLine(LogLevel level, std::string_view msg);

/// printf-style logging; format errors are caught at compile time.
void logDebug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logWarn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logError(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ep
