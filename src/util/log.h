// Leveled logging with isolated sinks. The placer is a library first:
// logging defaults to warnings only and callers (examples, benches,
// sessions) opt into verbosity.
//
// Two layers:
//   * LogSink — an independent sink with its own minimum level, an optional
//     per-session prefix (so concurrent PlacerSessions in one process emit
//     distinguishable, non-interleaved lines) and wall-clock timestamps.
//     A RuntimeContext owns one; nothing about a sink is process-global.
//   * the free logDebug/logInfo/logWarn/logError functions — the legacy
//     surface, now routed through defaultLogSink(). Context-threaded code
//     should prefer ctx.log().info(...) so its output carries the session
//     prefix and honors the session's filter.
//
// printf-style formatting (GCC 12 on this toolchain lacks <format>). Each
// line is emitted with a single fprintf call, so concurrent sessions never
// interleave characters mid-line.
#pragma once

#include <atomic>
#include <cstdarg>
#include <string>
#include <string_view>

namespace ep {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// "debug" / "info" / "warn" / "error" / "off".
const char* logLevelName(LogLevel level);

/// Parses a --log-level style name ("debug", "info", "warn", "error",
/// "off"); returns false (and leaves *out alone) on anything else.
bool parseLogLevel(std::string_view text, LogLevel* out);

/// One logging destination (stderr) with its own level filter, prefix and
/// timestamp switch. Level and timestamps are atomics so worker threads may
/// log while another thread adjusts verbosity; the prefix must be set
/// during single-threaded setup (session construction) only.
class LogSink {
 public:
  LogSink() = default;
  explicit LogSink(std::string prefix, LogLevel level = LogLevel::kWarn)
      : level_(level), prefix_(std::move(prefix)) {}
  LogSink(const LogSink&) = delete;
  LogSink& operator=(const LogSink&) = delete;

  void setLevel(LogLevel level) {
    level_.store(level, std::memory_order_relaxed);
  }
  [[nodiscard]] LogLevel level() const {
    return level_.load(std::memory_order_relaxed);
  }
  /// Setup-time only (not synchronized against concurrent logging).
  void setPrefix(std::string prefix) { prefix_ = std::move(prefix); }
  [[nodiscard]] const std::string& prefix() const { return prefix_; }
  void setTimestamps(bool on) {
    timestamps_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool timestamps() const {
    return timestamps_.load(std::memory_order_relaxed);
  }

  [[nodiscard]] bool enabled(LogLevel level) const {
    return level >= this->level() && level != LogLevel::kOff;
  }

  /// One line: "[HH:MM:SS.mmm] [prefix] [level] message".
  void write(LogLevel level, std::string_view msg) const;
  void vlogf(LogLevel level, const char* fmt, va_list args) const;

  // printf-style per-level entry points; format errors caught at compile
  // time.
  void debug(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));
  void info(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));
  void warn(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));
  void error(const char* fmt, ...) const __attribute__((format(printf, 2, 3)));

 private:
  std::atomic<LogLevel> level_{LogLevel::kWarn};
  std::atomic<bool> timestamps_{true};
  std::string prefix_;
};

/// The sink behind the free functions below (and behind code that runs
/// without a RuntimeContext). Unprefixed.
LogSink& defaultLogSink();

/// Minimum level of the default sink; messages below it are dropped.
void setLogLevel(LogLevel level);
LogLevel logLevel();

/// Emit one line through the default sink.
void logLine(LogLevel level, std::string_view msg);

/// printf-style logging through the default sink.
void logDebug(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logInfo(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logWarn(const char* fmt, ...) __attribute__((format(printf, 1, 2)));
void logError(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace ep
