// Overflow-checked index/size arithmetic for the scaling path.
//
// The flat SoA core indexes objects, nets and pins with std::int32_t (half
// the memory traffic of 64-bit indices on the hot kernels). That is a
// contract, not an accident: 2^31-1 pins is comfortably above the 1M-cell /
// 4M-pin regime this repo targets, but the boundary must be *checked*, not
// assumed — a silently wrapped index is a heap corruption. Every layer that
// converts a size_t count into the 32-bit index space goes through these
// helpers; capacity planning (model/capacity.h) rejects oversized instances
// with a typed kInvalidInput before any array is sized.
#pragma once

#include <cstdint>
#include <cstddef>
#include <limits>

namespace ep {

/// Largest count representable in the 32-bit index space.
inline constexpr std::size_t kMaxIndex32 =
    static_cast<std::size_t>(std::numeric_limits<std::int32_t>::max());

/// True when a size_t count fits the 32-bit index space.
[[nodiscard]] constexpr bool fitsIndex32(std::size_t v) {
  return v <= kMaxIndex32;
}

/// Checked narrowing cast: false (and *out untouched) on overflow.
[[nodiscard]] inline bool checkedIndex32(std::size_t v, std::int32_t* out) {
  if (!fitsIndex32(v)) return false;
  *out = static_cast<std::int32_t>(v);
  return true;
}

/// Checked size_t multiply: false on overflow (byte-count arithmetic for
/// capacity plans and grid allocations).
[[nodiscard]] inline bool checkedMulSize(std::size_t a, std::size_t b,
                                         std::size_t* out) {
  if (a != 0 && b > std::numeric_limits<std::size_t>::max() / a) return false;
  *out = a * b;
  return true;
}

/// Checked size_t add: false on overflow.
[[nodiscard]] inline bool checkedAddSize(std::size_t a, std::size_t b,
                                         std::size_t* out) {
  if (b > std::numeric_limits<std::size_t>::max() - a) return false;
  *out = a + b;
  return true;
}

}  // namespace ep
