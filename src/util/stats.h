// Small numeric helpers: vector norms used by the Lipschitz estimate, and a
// running summary used by tests and benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace ep {

/// Euclidean norm of a vector.
double norm2(std::span<const double> v);

/// Euclidean distance between two equally sized vectors.
double dist2(std::span<const double> a, std::span<const double> b);

/// L1 norm.
double norm1(std::span<const double> v);

/// Dot product.
double dot(std::span<const double> a, std::span<const double> b);

/// Welford-style running summary of a scalar stream.
class Summary {
 public:
  void add(double x);
  [[nodiscard]] std::size_t count() const { return n_; }
  [[nodiscard]] double mean() const { return n_ ? mean_ : 0.0; }
  [[nodiscard]] double variance() const;
  [[nodiscard]] double stddev() const;
  [[nodiscard]] double min() const { return min_; }
  [[nodiscard]] double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Geometric mean of positive values; returns 0 for an empty input.
double geomean(std::span<const double> v);

}  // namespace ep
