// Deterministic fault injection for robustness tests and benches.
//
// Production code is instrumented at a few named *sites*; when a site is
// armed, the Nth pass through it corrupts data in a seeded, reproducible
// way. Sites currently wired in (the authoritative list is
// knownFaultSites(), which the chaos suite sweeps):
//   "nesterov.grad"     gradient buffer of the global placer (NaN / spike)
//   "fft.forward"       forward FFT output (NaN / spike)
//   "bookshelf.line"    Bookshelf line scanner (truncate = premature EOF)
//   "legalize.displace" Abacus clumping result (NaN / displaced cell)
//   "detail.swap"       detail-placement result (NaN / displaced cell)
//   "snapshot.write"    serialized snapshot bytes (bit flip / truncation)
//   "parallel.task"     a ThreadPool worker task throws; the pool must
//                       propagate it as ep::Status, not std::terminate
//   "serve.request"     one raw request line of the placement daemon (bit
//                       flip / truncation before parsing; typed rejection)
//   "serve.accept"      job admission in the daemon (firing rejects the
//                       submit with kUnavailable; neighbors unaffected)
//   "io.write"          ep::io durable write reports a short write (EIO)
//   "io.fsync"          ep::io fsync fails (EIO); transient, retried
//   "io.rename"         ep::io rename-into-place fails (EIO); retried
//   "io.enospc"         ep::io attempt fails with ENOSPC — persistent,
//                       never retried; isNoSpace() recognizes it and the
//                       supervisor degrades to snapshot-less mode
// The io.* sites take FaultKind::kError: the site returns a typed error
// instead of corrupting data. Arm with count=1 to fail one attempt (the
// retry succeeds) or count=-1 to exhaust the retry policy.
// With no armed sites the hot-path cost is one branch on an atomic bool, so
// the instrumentation stays in release builds. fire/corrupt are serialized
// by an internal mutex because instrumented kernels (e.g. fft.forward) now
// run on pool workers; which concurrent pass fires first is scheduling-
// dependent, so chaos tests assert typed degradation, not exact trajectories.
// Arm/disarm/reset still only from single-threaded test setup.
//
// There is no process-wide injector: each RuntimeContext owns one, and the
// kernels reach it through the context (or a FaultInjector* threaded down
// their constructors). Arming a fault in one session can therefore never
// fire in another session of the same process.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <span>
#include <string>

#include "util/rng.h"

namespace ep {

enum class FaultKind : std::uint8_t {
  kNaN,       ///< overwrite one entry with a quiet NaN
  kSpike,     ///< multiply one entry by `magnitude`
  kTruncate,  ///< report EOF / cut the stream short (stream sites only)
  kError,     ///< the site returns a typed error; no data is corrupted
              ///< (io.* sites, admission rejections)
};

struct FaultSpec {
  FaultKind kind = FaultKind::kNaN;
  long atTick = 0;         ///< first site pass (0-based) that fires
  int count = 1;           ///< number of firing passes; -1 = every pass on
  double magnitude = 1e9;  ///< spike multiplier
};

class FaultInjector {
 public:
  FaultInjector() = default;
  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  void arm(const std::string& site, FaultSpec spec);
  void disarm(const std::string& site);
  /// Disarms every site and resets tick/fire counters and the RNG.
  void reset();
  void reseed(std::uint64_t seed);

  /// Cheap hot-path guard: true when any site is armed.
  [[nodiscard]] bool active() const {
    return armed_.load(std::memory_order_relaxed);
  }

  /// Advances `site`'s pass counter; returns the spec if this pass fires,
  /// nullptr otherwise (including when the site is not armed).
  const FaultSpec* fire(const std::string& site);

  /// Corrupts one seeded-random entry of `data` per the spec (kNaN/kSpike).
  void corrupt(std::span<double> data, const FaultSpec& spec);

  /// Byte-stream variant: kNaN/kSpike flip one seeded-random bit of `data`;
  /// kTruncate is the caller's concern (drop the tail of the stream).
  void corruptBytes(std::span<std::uint8_t> data, const FaultSpec& spec);

  /// Total number of times `site` has fired since arm/reset.
  [[nodiscard]] long fireCount(const std::string& site) const;

 private:
  struct Armed {
    FaultSpec spec;
    long tick = 0;   // passes seen
    long fired = 0;  // passes that fired
  };
  mutable std::mutex mu_;  // serializes fire/corrupt from pool workers
  std::atomic<bool> armed_{false};
  std::map<std::string, Armed> sites_;
  Rng rng_{0xfa17ED5EEDULL};
};

/// Every fault site compiled into the tree. The chaos suite
/// (tests/test_chaos.cpp, ctest -L chaos) arms each one in turn and asserts
/// the flow degrades with a typed Status instead of crashing; keep this list
/// in sync when instrumenting a new site.
std::span<const char* const> knownFaultSites();

}  // namespace ep
