// ep::io — checked, fault-injectable durable file I/O.
//
// Every durability guarantee the repo advertises (journal-before-ack,
// CRC snapshots, fsync'd CSV traces, stats dumps) bottoms out in the same
// recipe: write a tmp file, flush, fsync, rename into place, fsync the
// parent directory. This layer owns that recipe once, with three
// properties the inlined copies lacked:
//
//   * every syscall result is checked and surfaces as a typed Status
//     (kIo) naming the path and errno — no silent truncation;
//   * transient failures (EIO-class write/fsync/rename errors) are
//     retried a bounded, deterministic number of times with exponential
//     backoff; persistent no-space failures are recognized as such
//     (isNoSpace) and never retried, so callers can degrade instead of
//     spinning against a full disk;
//   * four FaultInjector sites make every failure mode reachable from
//     tests without touching the filesystem:
//       "io.write"   fwrite reports a short write (synthetic EIO)
//       "io.fsync"   fsync fails (synthetic EIO)
//       "io.rename"  rename into place fails (synthetic EIO)
//       "io.enospc"  the attempt fails with ENOSPC — persistent, not
//                    retried, recognized by isNoSpace()
//     All four use FaultKind::kError (the site returns a typed error;
//     no data is corrupted). A count=1 spec fails exactly one attempt,
//     proving the retry path; count=-1 exhausts the policy and yields
//     the final typed kIo.
//
// Adopters: snapshot.cpp, serve/journal.cpp, the daemon's stats/result
// writers, and CsvWriter's error surfacing. See docs/ROBUSTNESS.md,
// "Storage-fault containment".
#pragma once

#include <cstddef>
#include <string>

#include "util/status.h"

namespace ep {

class FaultInjector;

namespace io {

/// Bounded deterministic retry for transient storage errors. Attempt k
/// (0-based) sleeps backoffMicros << (k-1) before retrying, so the default
/// policy waits 100us then 200us — enough to step over a transient EIO in
/// tests and real life without turning a dead disk into a hang.
struct RetryPolicy {
  int maxAttempts = 3;     ///< total attempts (>= 1)
  int backoffMicros = 100; ///< base backoff before the first retry
};

/// Atomically and durably replaces `path` with `n` bytes: tmp file +
/// checked fwrite + fflush + fsync + rename + parent-directory fsync.
/// Transient failures are retried per `retry`; no-space failures are not.
/// On any failure the tmp file is removed and `path` is untouched (the
/// previous contents, if any, survive).
Status writeFileDurably(const std::string& path, const void* data,
                        std::size_t n, FaultInjector* faults = nullptr,
                        const RetryPolicy& retry = {});

/// Convenience overload for text payloads (journal/result/stats JSON).
Status writeFileDurably(const std::string& path, const std::string& text,
                        FaultInjector* faults = nullptr,
                        const RetryPolicy& retry = {});

/// fsync the directory containing `path` so a completed rename survives
/// power loss. Best-effort by design: some filesystems reject directory
/// fsync, and the rename itself already happened.
void syncParentDir(const std::string& path);

/// True when `s` is the persistent out-of-space class of I/O failure
/// (ENOSPC/EDQUOT, or the injected "io.enospc" fault). The supervisor uses
/// this to stop checkpointing instead of retrying forever.
[[nodiscard]] bool isNoSpace(const Status& s);

}  // namespace io
}  // namespace ep
