// ep::RunRecord — one structured, machine-readable record per placement.
//
// The paper's headline claims are quantitative (HPWL, overflow trajectory,
// per-stage runtime), so every supervised run emits one JSON document
// capturing what actually happened: netlist fingerprint, seed, thread
// count, per-stage {wall_ms, iterations, HPWL, overflow, retries,
// recoveries, rollbacks, snapshots}, final quality metrics, the context
// stats-registry dump, arena growth events and peak accounted bytes.
// Records are written durably via ep::io (CLI --record-out), attached to
// serve job outcomes, and accumulated under bench_results/ by bench and
// loadgen runs.
//
// On top of the record sits the regression gate (compareRunRecords +
// tools/eplace_regress + ctest -L regression): deterministic fields —
// HPWL bits, iterations, overflow, retry/rollback counts at fixed
// seed/threads, which are bit-stable by the PR 3 determinism contract —
// must match a committed baseline exactly; wall-clock fields are compared
// as the median of N candidate runs against an upper percentage band, so
// scheduler noise cannot flake the gate while a real 2x slowdown fails it.
// Resource figures (peak_bytes, arena growth) are recorded but not gated;
// they move legitimately with unrelated refactors.
//
// This header is layer-pure: util only (jsonlite + io + status). The
// builder that knows about PlacementDB/FlowResult lives in the eplace
// layer (supervisor.h: buildRunRecord).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/jsonlite.h"
#include "util/status.h"

namespace ep {

class FaultInjector;

/// IEEE-754 bit pattern as "0x%016x" — the exact-compare form for doubles.
/// JSON numbers round-trip through %.17g, but the hex form makes bit
/// equality auditable in diffs and independent of printf/strtod quality.
std::string hexBits64(std::uint64_t bits);
bool parseHexBits64(const std::string& s, std::uint64_t* out);

/// Doubles <-> bit patterns for the *_bits record fields.
std::uint64_t doubleBits(double v);
double bitsToDouble(std::uint64_t bits);

struct StageRecord {
  std::string stage;            ///< "mIP", "mGP", "mLG", "cGP", "cDP"
  bool ran = false;             ///< false: skipped (kept for schema shape)
  double wallMs = 0.0;          ///< stage wall time, milliseconds (noisy)
  long iterations = 0;          ///< optimizer iterations (0 for non-GP)
  double hpwl = 0.0;            ///< HPWL after the stage
  std::uint64_t hpwlBits = 0;   ///< bit pattern of `hpwl`
  double overflow = 0.0;        ///< density overflow after the stage
  int retries = 0;              ///< supervisor re-attempts (attempts - 1)
  int recoveries = 0;           ///< in-stage numerical recoveries
  int rollbacks = 0;            ///< result-discard restores
  int snapshots = 0;            ///< boundary snapshots written after stage
};

struct RunRecord {
  static constexpr int kSchemaVersion = 1;

  int schemaVersion = kSchemaVersion;
  std::string name;             ///< design / job name
  std::uint64_t fingerprint = 0;  ///< netlistFingerprint() of the input
  std::uint64_t seed = 0;
  int threads = 1;
  bool supervised = false;
  std::vector<StageRecord> stages;

  // Final quality.
  double finalHpwl = 0.0;
  std::uint64_t finalHpwlBits = 0;
  double finalScaledHpwl = 0.0;
  double finalOverflow = 0.0;
  bool legal = false;

  // Wall clock + resources (recorded, not gated).
  double totalSeconds = 0.0;
  std::uint64_t peakBytes = 0;
  long arenaGrowthEvents = 0;
  int snapshotsWritten = 0;

  std::string status = "Ok";    ///< StatusCode wire name
  /// Context stats-registry dump (sorted by key; deterministic order).
  std::vector<std::pair<std::string, double>> stats;
};

/// Serialization. toJson always emits every schema field (skipped stages
/// included), so fromJson can be strict: a missing or unknown field is a
/// typed kInvalidInput naming the field — schema drift is caught at parse
/// time, before the gate ever compares values.
JsonValue runRecordToJson(const RunRecord& rec);
Status runRecordFromJson(const JsonValue& v, RunRecord* out);
std::string writeRunRecord(const RunRecord& rec);
StatusOr<RunRecord> parseRunRecord(std::string_view text);

/// Durable file forms (tmp + fsync + rename via ep::io).
Status writeRunRecordFile(const std::string& path, const RunRecord& rec,
                          FaultInjector* faults = nullptr);
StatusOr<RunRecord> readRunRecordFile(const std::string& path);

/// Retention policy for accumulated record directories (bench_results/):
/// keeps at most `maxFiles` files named `<tool>_*.json` in `dir`, deleting
/// the excess oldest-first. "Oldest" is the lexicographically smallest
/// file *name* — the bench tools embed sortable keys (thread count, sweep
/// size) in the name — never filesystem mtime, so rotation is
/// deterministic across machines and clock skew. Files of other tools are
/// untouched. Returns the number of files removed; a missing `dir` or
/// `maxFiles == 0` (unlimited) is a no-op.
std::size_t pruneRecordFiles(const std::string& dir, const std::string& tool,
                             std::size_t maxFiles);

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

struct RegressPolicy {
  /// Upper band for wall-clock fields: median(candidates) must be
  /// <= baseline * (1 + wallBandFrac). One-sided — getting faster passes.
  double wallBandFrac = 0.50;
  /// Compare wall-clock fields at all. Off for cross-machine runs where
  /// only the deterministic quality fields are meaningful.
  bool checkWall = true;
  /// Wall measurements below this floor (ms) are pure scheduler noise and
  /// are never gated.
  double minWallMs = 20.0;
};

struct RegressDiff {
  std::string field;      ///< e.g. "stages[mGP].hpwl_bits"
  std::string baseline;   ///< rendered baseline value
  std::string candidate;  ///< rendered candidate value
  bool fatal = true;      ///< false: informational only
};

struct RegressResult {
  bool pass = true;
  std::vector<RegressDiff> diffs;
  /// Human-readable field-level report, one line per diff.
  [[nodiscard]] std::string summary() const;
};

/// Diffs candidate records against a baseline. Preconditions (fingerprint,
/// seed, threads, schema version, stage list) must match or the result is
/// an immediate fatal "incomparable" diff. Deterministic fields must be
/// identical across *all* candidates and equal to the baseline bit-for-bit;
/// wall-clock fields compare median(candidates) against the banded
/// baseline. `candidates` must be non-empty.
RegressResult compareRunRecords(const RunRecord& baseline,
                                const std::vector<RunRecord>& candidates,
                                const RegressPolicy& policy = {});

}  // namespace ep
