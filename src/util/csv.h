// Tiny CSV emitter. Benches dump per-iteration traces (Fig. 2 / Fig. 3
// series) as CSV so they can be re-plotted outside the repo.
#pragma once

#include <fstream>
#include <string>
#include <vector>

namespace ep {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Check ok() before
  /// writing rows; construction never throws.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  /// Writes one row; numeric cells are formatted with %.6g. Rows written
  /// while the stream is bad are dropped, with a single warning naming the
  /// path (not one per row — traces can be hundreds of rows long).
  void row(const std::vector<double>& cells);
  void row(const std::vector<std::string>& cells);

 private:
  bool writable();

  std::ofstream out_;
  std::string path_;
  std::size_t columns_ = 0;
  bool warnedDrop_ = false;
};

}  // namespace ep
