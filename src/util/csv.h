// Tiny CSV emitter. Benches dump per-iteration traces (Fig. 2 / Fig. 3
// series) as CSV so they can be re-plotted outside the repo.
//
// Traces are exactly the artifact one wants to inspect after a run died, so
// the writer is crash-durable: every row is flushed to the OS as it is
// written (a SIGKILL mid-run loses at most the row being formatted), and
// the destructor fsyncs before closing so a clean exit survives power loss.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

namespace ep {

class CsvWriter {
 public:
  /// Opens `path` for writing and emits the header row. Check ok() before
  /// writing rows; construction never throws.
  CsvWriter(const std::string& path, const std::vector<std::string>& header);
  ~CsvWriter();
  CsvWriter(const CsvWriter&) = delete;
  CsvWriter& operator=(const CsvWriter&) = delete;

  [[nodiscard]] bool ok() const { return out_ != nullptr; }

  /// True while the stream has accepted every byte so far. Goes false —
  /// stickily — on the first failed write/flush, so a caller can tell a
  /// complete trace from a silently truncated one even though row() never
  /// returns a status.
  [[nodiscard]] bool healthy() const { return out_ != nullptr && !failed_; }

  /// Writes one row; numeric cells are formatted with %.6g. Rows written
  /// while the stream is bad are dropped, with a single warning naming the
  /// path (not one per row — traces can be hundreds of rows long). Each row
  /// is flushed so the file is complete up to the last row even after a
  /// SIGKILL.
  void row(const std::vector<double>& cells);
  void row(const std::vector<std::string>& cells);

 private:
  bool writable();
  void endRow();

  std::FILE* out_ = nullptr;
  std::string path_;
  std::size_t columns_ = 0;
  bool warnedDrop_ = false;
  bool failed_ = false;  // sticky: a write/flush/fsync error occurred
};

}  // namespace ep
