// MemoryBudget: per-context accounting and capping of placer memory.
//
// One budget lives on each RuntimeContext; big allocators (ScratchArena
// growth, PlacementView/CSR construction, snapshot serialization buffers,
// the bin grid) *charge* it before allocating and *release* on teardown.
// The charge-before-allocate order is load-bearing: a rejected charge
// leaves both the accounting and the process heap exactly where they were,
// so a degraded retry (coarser bin grid, reduced checkpoint retention) can
// succeed within the remaining headroom instead of inheriting a
// poisoned counter.
//
// A zero limit (the default) disables enforcement but keeps the
// used/peak accounting, so peak-bytes reporting works even for
// unbudgeted jobs. All operations are single relaxed atomics (plus a
// CAS loop on a new high-water mark), cheap enough for per-growth-event
// call sites; nothing here runs per kernel iteration.
//
// Breaches surface either as `tryCharge() == false` (call sites that can
// return a Status directly) or as MemoryBudgetExceeded from
// chargeOrThrow() (call sites buried under allocation-free kernel APIs,
// e.g. ScratchArena::borrow). The FlowSupervisor catches the exception
// at stage boundaries and converts it to kResourceExhausted — a budget
// breach is a typed, per-job outcome, never a process abort.
#pragma once

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <string>

namespace ep {

/// Thrown by chargeOrThrow() when a charge would exceed the limit. Carries
/// the sizes so the handler can log a useful message and the admission
/// estimator can be tuned against reality.
class MemoryBudgetExceeded : public std::runtime_error {
 public:
  MemoryBudgetExceeded(std::size_t requested, std::size_t used,
                       std::size_t limit)
      : std::runtime_error("memory budget exceeded: requested " +
                           std::to_string(requested) + " B with " +
                           std::to_string(used) + " B charged of " +
                           std::to_string(limit) + " B limit"),
        requestedBytes(requested),
        usedBytes(used),
        limitBytes(limit) {}

  std::size_t requestedBytes;
  std::size_t usedBytes;
  std::size_t limitBytes;
};

class MemoryBudget {
 public:
  MemoryBudget() = default;
  MemoryBudget(const MemoryBudget&) = delete;
  MemoryBudget& operator=(const MemoryBudget&) = delete;

  /// Byte cap; 0 disables enforcement (accounting stays on).
  void setLimit(std::size_t bytes) {
    limit_.store(bytes, std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t limitBytes() const {
    return limit_.load(std::memory_order_relaxed);
  }
  /// True when a cap is set and charges can be rejected.
  [[nodiscard]] bool limited() const { return limitBytes() != 0; }

  /// Reserves `n` bytes against the budget. Returns false (leaving the
  /// accounting unchanged) when the charge would exceed a nonzero limit.
  /// Call *before* allocating, so a rejection costs nothing.
  [[nodiscard]] bool tryCharge(std::size_t n) {
    const std::size_t prev = used_.fetch_add(n, std::memory_order_relaxed);
    const std::size_t now = prev + n;
    const std::size_t limit = limit_.load(std::memory_order_relaxed);
    if (limit != 0 && now > limit) {
      used_.fetch_sub(n, std::memory_order_relaxed);
      return false;
    }
    std::size_t peak = peak_.load(std::memory_order_relaxed);
    while (now > peak &&
           !peak_.compare_exchange_weak(peak, now,
                                        std::memory_order_relaxed)) {
    }
    return true;
  }

  /// tryCharge() or throw MemoryBudgetExceeded. For call sites whose API
  /// has no Status channel (arena growth inside kernels).
  void chargeOrThrow(std::size_t n) {
    if (!tryCharge(n)) {
      throw MemoryBudgetExceeded(n, usedBytes(), limitBytes());
    }
  }

  /// Returns `n` bytes to the budget (clamped at zero so a conservative
  /// over-release can never wrap the counter).
  void release(std::size_t n) {
    std::size_t cur = used_.load(std::memory_order_relaxed);
    while (true) {
      const std::size_t next = cur >= n ? cur - n : 0;
      if (used_.compare_exchange_weak(cur, next,
                                      std::memory_order_relaxed)) {
        return;
      }
    }
  }

  [[nodiscard]] std::size_t usedBytes() const {
    return used_.load(std::memory_order_relaxed);
  }
  /// High-water mark of usedBytes() since construction/reset().
  [[nodiscard]] std::size_t peakBytes() const {
    return peak_.load(std::memory_order_relaxed);
  }

  /// Clears used/peak (keeps the limit). Single-threaded setup only.
  void reset() {
    used_.store(0, std::memory_order_relaxed);
    peak_.store(0, std::memory_order_relaxed);
  }

 private:
  std::atomic<std::size_t> limit_{0};
  std::atomic<std::size_t> used_{0};
  std::atomic<std::size_t> peak_{0};
};

/// RAII charge for scoped buffers (snapshot serialization, transient
/// assembly). Charges in the constructor — check ok() before allocating —
/// and releases in the destructor.
class ScopedCharge {
 public:
  ScopedCharge(MemoryBudget& budget, std::size_t bytes)
      : budget_(&budget), bytes_(bytes), ok_(budget.tryCharge(bytes)) {}
  ~ScopedCharge() {
    if (ok_) budget_->release(bytes_);
  }
  ScopedCharge(const ScopedCharge&) = delete;
  ScopedCharge& operator=(const ScopedCharge&) = delete;

  /// False when the charge was rejected (nothing is held; destructor is a
  /// no-op). Call sites translate this into kResourceExhausted.
  [[nodiscard]] bool ok() const { return ok_; }

 private:
  MemoryBudget* budget_;
  std::size_t bytes_;
  bool ok_;
};

}  // namespace ep
