// Basic planar geometry used throughout the placer: points, rectangles and
// the interval arithmetic that density stamping and legality checking need.
#pragma once

#include <algorithm>
#include <cmath>
#include <ostream>

namespace ep {

/// A point (or 2-vector) in placement coordinates. Placement coordinates are
/// double precision throughout global placement; legalization snaps to sites.
struct Point {
  double x = 0.0;
  double y = 0.0;

  constexpr Point() = default;
  constexpr Point(double px, double py) : x(px), y(py) {}

  constexpr Point operator+(const Point& o) const { return {x + o.x, y + o.y}; }
  constexpr Point operator-(const Point& o) const { return {x - o.x, y - o.y}; }
  constexpr Point operator*(double s) const { return {x * s, y * s}; }
  constexpr Point& operator+=(const Point& o) {
    x += o.x;
    y += o.y;
    return *this;
  }
  constexpr Point& operator-=(const Point& o) {
    x -= o.x;
    y -= o.y;
    return *this;
  }
  constexpr bool operator==(const Point& o) const = default;

  [[nodiscard]] double norm() const { return std::hypot(x, y); }
};

/// Axis-aligned rectangle given by its lower-left (lx,ly) and upper-right
/// (hx,hy) corners. An empty rectangle has hx<=lx or hy<=ly.
struct Rect {
  double lx = 0.0;
  double ly = 0.0;
  double hx = 0.0;
  double hy = 0.0;

  constexpr Rect() = default;
  constexpr Rect(double l, double b, double r, double t)
      : lx(l), ly(b), hx(r), hy(t) {}

  [[nodiscard]] constexpr double width() const { return hx - lx; }
  [[nodiscard]] constexpr double height() const { return hy - ly; }
  [[nodiscard]] constexpr double area() const {
    return std::max(0.0, width()) * std::max(0.0, height());
  }
  [[nodiscard]] constexpr Point center() const {
    return {(lx + hx) * 0.5, (ly + hy) * 0.5};
  }
  [[nodiscard]] constexpr bool empty() const { return hx <= lx || hy <= ly; }

  [[nodiscard]] constexpr bool contains(const Point& p) const {
    return p.x >= lx && p.x <= hx && p.y >= ly && p.y <= hy;
  }
  /// True when `r` lies entirely inside this rectangle (closed comparison).
  [[nodiscard]] constexpr bool contains(const Rect& r) const {
    return r.lx >= lx && r.hx <= hx && r.ly >= ly && r.hy <= hy;
  }
  [[nodiscard]] constexpr bool overlaps(const Rect& r) const {
    return r.lx < hx && r.hx > lx && r.ly < hy && r.hy > ly;
  }

  [[nodiscard]] constexpr Rect intersect(const Rect& r) const {
    return {std::max(lx, r.lx), std::max(ly, r.ly), std::min(hx, r.hx),
            std::min(hy, r.hy)};
  }
  /// Area of the intersection with `r` (zero when disjoint).
  [[nodiscard]] constexpr double overlapArea(const Rect& r) const {
    const double w = std::min(hx, r.hx) - std::max(lx, r.lx);
    const double h = std::min(hy, r.hy) - std::max(ly, r.ly);
    return (w > 0.0 && h > 0.0) ? w * h : 0.0;
  }

  [[nodiscard]] constexpr Rect expanded(double d) const {
    return {lx - d, ly - d, hx + d, hy + d};
  }
  constexpr bool operator==(const Rect& o) const = default;
};

/// Overlap length of two 1-D closed intervals; zero when disjoint.
constexpr double intervalOverlap(double lo1, double hi1, double lo2,
                                 double hi2) {
  return std::max(0.0, std::min(hi1, hi2) - std::max(lo1, lo2));
}

/// Clamp a rectangle of size (w,h) so it lies inside `region`, returning the
/// clamped lower-left corner. If the object is larger than the region it is
/// pinned to the region's lower-left.
inline Point clampLowerLeft(double lx, double ly, double w, double h,
                            const Rect& region) {
  const double cx =
      std::clamp(lx, region.lx, std::max(region.lx, region.hx - w));
  const double cy =
      std::clamp(ly, region.ly, std::max(region.ly, region.hy - h));
  return {cx, cy};
}

inline std::ostream& operator<<(std::ostream& os, const Point& p) {
  return os << "(" << p.x << "," << p.y << ")";
}
inline std::ostream& operator<<(std::ostream& os, const Rect& r) {
  return os << "[" << r.lx << "," << r.ly << " " << r.hx << "," << r.hy << "]";
}

}  // namespace ep
