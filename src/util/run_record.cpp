#include "util/run_record.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <system_error>

#include "util/io.h"

namespace ep {

std::string hexBits64(std::uint64_t bits) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

bool parseHexBits64(const std::string& s, std::uint64_t* out) {
  // Only the canonical writer form is accepted: "0x" + exactly 16 hex
  // digits. Anything shorter is ambiguous about which field got truncated.
  if (s.size() != 18 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X')) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    std::uint64_t d = 0;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

std::uint64_t doubleBits(double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof bits == sizeof v);
  std::memcpy(&bits, &v, sizeof bits);
  return bits;
}

double bitsToDouble(std::uint64_t bits) {
  double v = 0;
  std::memcpy(&v, &bits, sizeof v);
  return v;
}

namespace {

JsonValue num(double v) { return JsonValue::number(v); }

/// Strict-object helper: every expected key must be present and no other
/// key may appear, so a renamed/dropped/added field is a parse error (the
/// schema-drift arm of the regression gate).
Status checkKeys(const JsonValue& v, const char* what,
                 const std::vector<std::string_view>& expected) {
  for (const std::string_view key : expected) {
    if (v.find(key) == nullptr) {
      return Status::invalidInput(std::string(what) + ": missing field \"" +
                                  std::string(key) + "\"");
    }
  }
  for (const auto& [k, unused] : v.members()) {
    (void)unused;
    if (std::find(expected.begin(), expected.end(), k) == expected.end()) {
      return Status::invalidInput(std::string(what) + ": unknown field \"" +
                                  k + "\"");
    }
  }
  return Status::okStatus();
}

Status needNumber(const JsonValue& v, const char* what, std::string_view key,
                  double* out) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->isNumber()) {
    return Status::invalidInput(std::string(what) + "." + std::string(key) +
                                " must be a number");
  }
  *out = f->asNumber();
  return Status::okStatus();
}

Status needBool(const JsonValue& v, const char* what, std::string_view key,
                bool* out) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->isBool()) {
    return Status::invalidInput(std::string(what) + "." + std::string(key) +
                                " must be a bool");
  }
  *out = f->asBool();
  return Status::okStatus();
}

Status needString(const JsonValue& v, const char* what, std::string_view key,
                  std::string* out) {
  const JsonValue* f = v.find(key);
  if (f == nullptr || !f->isString()) {
    return Status::invalidInput(std::string(what) + "." + std::string(key) +
                                " must be a string");
  }
  *out = f->asString();
  return Status::okStatus();
}

Status needBits(const JsonValue& v, const char* what, std::string_view key,
                std::uint64_t* out) {
  std::string s;
  Status st = needString(v, what, key, &s);
  if (!st.ok()) return st;
  if (!parseHexBits64(s, out)) {
    return Status::invalidInput(std::string(what) + "." + std::string(key) +
                                " is not a 0x… bit pattern");
  }
  return Status::okStatus();
}

JsonValue stageToJson(const StageRecord& s) {
  JsonValue v = JsonValue::object();
  v.set("stage", JsonValue::str(s.stage));
  v.set("ran", JsonValue::boolean(s.ran));
  v.set("wall_ms", num(s.wallMs));
  v.set("iterations", num(static_cast<double>(s.iterations)));
  v.set("hpwl", num(s.hpwl));
  v.set("hpwl_bits", JsonValue::str(hexBits64(s.hpwlBits)));
  v.set("overflow", num(s.overflow));
  v.set("retries", num(s.retries));
  v.set("recoveries", num(s.recoveries));
  v.set("rollbacks", num(s.rollbacks));
  v.set("snapshots", num(s.snapshots));
  return v;
}

Status stageFromJson(const JsonValue& v, StageRecord* out) {
  if (!v.isObject()) {
    return Status::invalidInput("record.stages entry must be an object");
  }
  Status st = checkKeys(v, "record.stage",
                        {"stage", "ran", "wall_ms", "iterations", "hpwl",
                         "hpwl_bits", "overflow", "retries", "recoveries",
                         "rollbacks", "snapshots"});
  if (!st.ok()) return st;
  *out = StageRecord{};
  double d = 0;
  if (!(st = needString(v, "stage", "stage", &out->stage)).ok()) return st;
  if (!(st = needBool(v, "stage", "ran", &out->ran)).ok()) return st;
  if (!(st = needNumber(v, "stage", "wall_ms", &out->wallMs)).ok()) return st;
  if (!(st = needNumber(v, "stage", "iterations", &d)).ok()) return st;
  out->iterations = static_cast<long>(d);
  if (!(st = needNumber(v, "stage", "hpwl", &out->hpwl)).ok()) return st;
  if (!(st = needBits(v, "stage", "hpwl_bits", &out->hpwlBits)).ok()) {
    return st;
  }
  if (!(st = needNumber(v, "stage", "overflow", &out->overflow)).ok()) {
    return st;
  }
  if (!(st = needNumber(v, "stage", "retries", &d)).ok()) return st;
  out->retries = static_cast<int>(d);
  if (!(st = needNumber(v, "stage", "recoveries", &d)).ok()) return st;
  out->recoveries = static_cast<int>(d);
  if (!(st = needNumber(v, "stage", "rollbacks", &d)).ok()) return st;
  out->rollbacks = static_cast<int>(d);
  if (!(st = needNumber(v, "stage", "snapshots", &d)).ok()) return st;
  out->snapshots = static_cast<int>(d);
  return Status::okStatus();
}

std::string renderNumber(double v) {
  char buf[40];
  if (v == std::floor(v) && std::fabs(v) < 9.007199254740992e15) {
    std::snprintf(buf, sizeof buf, "%.0f", v);
  } else {
    std::snprintf(buf, sizeof buf, "%.17g", v);
  }
  return buf;
}

}  // namespace

JsonValue runRecordToJson(const RunRecord& rec) {
  JsonValue v = JsonValue::object();
  v.set("schema_version", num(rec.schemaVersion));
  v.set("name", JsonValue::str(rec.name));
  v.set("fingerprint", JsonValue::str(hexBits64(rec.fingerprint)));
  v.set("seed", num(static_cast<double>(rec.seed)));
  v.set("threads", num(rec.threads));
  v.set("supervised", JsonValue::boolean(rec.supervised));

  JsonValue stages = JsonValue::array();
  for (const StageRecord& s : rec.stages) stages.push(stageToJson(s));
  v.set("stages", std::move(stages));

  JsonValue fin = JsonValue::object();
  fin.set("hpwl", num(rec.finalHpwl));
  fin.set("hpwl_bits", JsonValue::str(hexBits64(rec.finalHpwlBits)));
  fin.set("scaled_hpwl", num(rec.finalScaledHpwl));
  fin.set("overflow", num(rec.finalOverflow));
  fin.set("legal", JsonValue::boolean(rec.legal));
  v.set("final", std::move(fin));

  JsonValue wall = JsonValue::object();
  wall.set("total_seconds", num(rec.totalSeconds));
  v.set("wall", std::move(wall));

  JsonValue res = JsonValue::object();
  res.set("peak_bytes", num(static_cast<double>(rec.peakBytes)));
  res.set("arena_growth_events", num(static_cast<double>(rec.arenaGrowthEvents)));
  res.set("snapshots_written", num(rec.snapshotsWritten));
  v.set("resources", std::move(res));

  JsonValue stats = JsonValue::object();
  for (const auto& [k, val] : rec.stats) stats.set(k, num(val));
  v.set("stats", std::move(stats));

  v.set("status", JsonValue::str(rec.status));
  return v;
}

Status runRecordFromJson(const JsonValue& v, RunRecord* out) {
  if (!v.isObject()) {
    return Status::invalidInput("record must be a JSON object");
  }
  Status st = checkKeys(v, "record",
                        {"schema_version", "name", "fingerprint", "seed",
                         "threads", "supervised", "stages", "final", "wall",
                         "resources", "stats", "status"});
  if (!st.ok()) return st;
  *out = RunRecord{};
  double d = 0;
  if (!(st = needNumber(v, "record", "schema_version", &d)).ok()) return st;
  out->schemaVersion = static_cast<int>(d);
  if (out->schemaVersion != RunRecord::kSchemaVersion) {
    return Status::invalidInput(
        "record.schema_version " + std::to_string(out->schemaVersion) +
        " unsupported (expected " + std::to_string(RunRecord::kSchemaVersion) +
        ")");
  }
  if (!(st = needString(v, "record", "name", &out->name)).ok()) return st;
  if (!(st = needBits(v, "record", "fingerprint", &out->fingerprint)).ok()) {
    return st;
  }
  if (!(st = needNumber(v, "record", "seed", &d)).ok()) return st;
  out->seed = static_cast<std::uint64_t>(d);
  if (!(st = needNumber(v, "record", "threads", &d)).ok()) return st;
  out->threads = static_cast<int>(d);
  if (!(st = needBool(v, "record", "supervised", &out->supervised)).ok()) {
    return st;
  }

  const JsonValue* stages = v.find("stages");
  if (stages == nullptr || !stages->isArray()) {
    return Status::invalidInput("record.stages must be an array");
  }
  for (const JsonValue& e : stages->items()) {
    StageRecord sr;
    st = stageFromJson(e, &sr);
    if (!st.ok()) return st;
    out->stages.push_back(std::move(sr));
  }

  const JsonValue* fin = v.find("final");
  if (fin == nullptr || !fin->isObject()) {
    return Status::invalidInput("record.final must be an object");
  }
  st = checkKeys(*fin, "record.final",
                 {"hpwl", "hpwl_bits", "scaled_hpwl", "overflow", "legal"});
  if (!st.ok()) return st;
  if (!(st = needNumber(*fin, "final", "hpwl", &out->finalHpwl)).ok()) {
    return st;
  }
  if (!(st = needBits(*fin, "final", "hpwl_bits", &out->finalHpwlBits)).ok()) {
    return st;
  }
  if (!(st = needNumber(*fin, "final", "scaled_hpwl", &out->finalScaledHpwl))
           .ok()) {
    return st;
  }
  if (!(st = needNumber(*fin, "final", "overflow", &out->finalOverflow)).ok()) {
    return st;
  }
  if (!(st = needBool(*fin, "final", "legal", &out->legal)).ok()) return st;

  const JsonValue* wall = v.find("wall");
  if (wall == nullptr || !wall->isObject()) {
    return Status::invalidInput("record.wall must be an object");
  }
  st = checkKeys(*wall, "record.wall", {"total_seconds"});
  if (!st.ok()) return st;
  if (!(st = needNumber(*wall, "wall", "total_seconds", &out->totalSeconds))
           .ok()) {
    return st;
  }

  const JsonValue* res = v.find("resources");
  if (res == nullptr || !res->isObject()) {
    return Status::invalidInput("record.resources must be an object");
  }
  st = checkKeys(*res, "record.resources",
                 {"peak_bytes", "arena_growth_events", "snapshots_written"});
  if (!st.ok()) return st;
  if (!(st = needNumber(*res, "resources", "peak_bytes", &d)).ok()) return st;
  out->peakBytes = static_cast<std::uint64_t>(d);
  if (!(st = needNumber(*res, "resources", "arena_growth_events", &d)).ok()) {
    return st;
  }
  out->arenaGrowthEvents = static_cast<long>(d);
  if (!(st = needNumber(*res, "resources", "snapshots_written", &d)).ok()) {
    return st;
  }
  out->snapshotsWritten = static_cast<int>(d);

  const JsonValue* stats = v.find("stats");
  if (stats == nullptr || !stats->isObject()) {
    return Status::invalidInput("record.stats must be an object");
  }
  for (const auto& [k, val] : stats->members()) {
    if (!val.isNumber()) {
      return Status::invalidInput("record.stats." + k + " must be a number");
    }
    out->stats.emplace_back(k, val.asNumber());
  }

  if (!(st = needString(v, "record", "status", &out->status)).ok()) return st;
  return Status::okStatus();
}

std::string writeRunRecord(const RunRecord& rec) {
  return writeJson(runRecordToJson(rec));
}

StatusOr<RunRecord> parseRunRecord(std::string_view text) {
  StatusOr<JsonValue> v = parseJson(text);
  if (!v.ok()) return v.status();
  RunRecord rec;
  const Status st = runRecordFromJson(*v, &rec);
  if (!st.ok()) return st;
  return rec;
}

Status writeRunRecordFile(const std::string& path, const RunRecord& rec,
                          FaultInjector* faults) {
  return io::writeFileDurably(path, writeRunRecord(rec) + "\n", faults);
}

StatusOr<RunRecord> readRunRecordFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status::ioError("cannot open run record " + path);
  }
  std::string text;
  char buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) text.append(buf, n);
  const bool readErr = std::ferror(f) != 0;
  std::fclose(f);
  if (readErr) return Status::ioError("read failed for run record " + path);
  StatusOr<RunRecord> rec = parseRunRecord(text);
  if (!rec.ok()) {
    return Status(rec.status().code(), path + ": " + rec.status().message());
  }
  return rec;
}

std::size_t pruneRecordFiles(const std::string& dir, const std::string& tool,
                             std::size_t maxFiles) {
  if (maxFiles == 0) return 0;
  namespace fs = std::filesystem;
  std::error_code ec;
  if (!fs::is_directory(dir, ec)) return 0;
  const std::string prefix = tool + "_";
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (ec) break;
    if (!entry.is_regular_file(ec)) continue;
    const std::string name = entry.path().filename().string();
    if (name.size() > prefix.size() + 5 &&
        name.compare(0, prefix.size(), prefix) == 0 &&
        name.compare(name.size() - 5, 5, ".json") == 0) {
      names.push_back(name);
    }
  }
  if (names.size() <= maxFiles) return 0;
  std::sort(names.begin(), names.end());
  std::size_t removed = 0;
  const std::size_t excess = names.size() - maxFiles;
  for (std::size_t i = 0; i < excess; ++i) {
    if (fs::remove(fs::path(dir) / names[i], ec) && !ec) ++removed;
  }
  return removed;
}

// ---------------------------------------------------------------------------
// Regression gate
// ---------------------------------------------------------------------------

namespace {

struct Gate {
  const RegressPolicy& policy;
  RegressResult out;

  void diff(std::string field, std::string base, std::string cand,
            bool fatal = true) {
    if (fatal) out.pass = false;
    out.diffs.push_back(
        {std::move(field), std::move(base), std::move(cand), fatal});
  }

  /// Bit-exact double compare rendered as value plus bit pattern, so a
  /// last-ulp drift is visible in the report.
  void exactDouble(const std::string& field, double base, double cand) {
    if (doubleBits(base) == doubleBits(cand)) return;
    diff(field, renderNumber(base) + " (" + hexBits64(doubleBits(base)) + ")",
         renderNumber(cand) + " (" + hexBits64(doubleBits(cand)) + ")");
  }

  void exactInt(const std::string& field, long base, long cand) {
    if (base == cand) return;
    diff(field, std::to_string(base), std::to_string(cand));
  }

  void exactBits(const std::string& field, std::uint64_t base,
                 std::uint64_t cand) {
    if (base == cand) return;
    diff(field,
         hexBits64(base) + " (" + renderNumber(bitsToDouble(base)) + ")",
         hexBits64(cand) + " (" + renderNumber(bitsToDouble(cand)) + ")");
  }

  void exactStr(const std::string& field, const std::string& base,
                const std::string& cand) {
    if (base == cand) return;
    diff(field, base, cand);
  }

  void exactBool(const std::string& field, bool base, bool cand) {
    if (base == cand) return;
    diff(field, base ? "true" : "false", cand ? "true" : "false");
  }

  /// Wall-clock gate: median candidate against the banded baseline.
  /// One-sided (faster always passes) and floored below minWallMs.
  void wall(const std::string& field, double baseMs, double medianMs) {
    if (!policy.checkWall) return;
    if (baseMs < policy.minWallMs) return;
    const double limit = baseMs * (1.0 + policy.wallBandFrac);
    if (medianMs <= limit) return;
    char msg[96];
    std::snprintf(msg, sizeof msg, "%.3f (limit %.3f)", medianMs, limit);
    diff(field, renderNumber(baseMs), msg);
  }
};

double median(std::vector<double> v) {
  std::sort(v.begin(), v.end());
  const std::size_t n = v.size();
  return n % 2 == 1 ? v[n / 2] : 0.5 * (v[n / 2 - 1] + v[n / 2]);
}

/// Compares every deterministic (non-wall) field of two records. `where`
/// prefixes the field names, so the same walk serves both baseline-vs-
/// candidate and candidate-vs-candidate consistency checks.
void compareDeterministic(Gate& g, const std::string& where,
                          const RunRecord& base, const RunRecord& cand) {
  g.exactStr(where + "status", base.status, cand.status);
  g.exactBits(where + "final.hpwl_bits", base.finalHpwlBits,
              cand.finalHpwlBits);
  g.exactDouble(where + "final.scaled_hpwl", base.finalScaledHpwl,
                cand.finalScaledHpwl);
  g.exactDouble(where + "final.overflow", base.finalOverflow,
                cand.finalOverflow);
  g.exactBool(where + "final.legal", base.legal, cand.legal);
  const std::size_t n = std::min(base.stages.size(), cand.stages.size());
  for (std::size_t i = 0; i < n; ++i) {
    const StageRecord& b = base.stages[i];
    const StageRecord& c = cand.stages[i];
    const std::string p = where + "stages[" + b.stage + "].";
    g.exactBool(p + "ran", b.ran, c.ran);
    g.exactInt(p + "iterations", b.iterations, c.iterations);
    g.exactBits(p + "hpwl_bits", b.hpwlBits, c.hpwlBits);
    g.exactDouble(p + "overflow", b.overflow, c.overflow);
    g.exactInt(p + "retries", b.retries, c.retries);
    g.exactInt(p + "recoveries", b.recoveries, c.recoveries);
    g.exactInt(p + "rollbacks", b.rollbacks, c.rollbacks);
  }
}

}  // namespace

std::string RegressResult::summary() const {
  std::string s;
  if (pass) {
    s = diffs.empty() ? "PASS: all gated fields match\n"
                      : "PASS (with informational diffs):\n";
  } else {
    s = "FAIL: " + std::to_string(diffs.size()) + " field diff(s)\n";
  }
  for (const RegressDiff& d : diffs) {
    s += "  ";
    s += d.fatal ? "[fail] " : "[info] ";
    s += d.field + ": baseline=" + d.baseline + " candidate=" + d.candidate +
         "\n";
  }
  return s;
}

RegressResult compareRunRecords(const RunRecord& baseline,
                                const std::vector<RunRecord>& candidates,
                                const RegressPolicy& policy) {
  Gate g{policy, {}};
  if (candidates.empty()) {
    g.diff("candidates", "1+ record(s)", "0 records");
    return std::move(g.out);
  }

  // Preconditions: a record from a different input/configuration is not a
  // regression, it is incomparable — fail loudly before any value check.
  const RunRecord& first = candidates.front();
  g.exactInt("schema_version", baseline.schemaVersion, first.schemaVersion);
  g.exactBits("fingerprint", baseline.fingerprint, first.fingerprint);
  g.exactInt("seed", static_cast<long>(baseline.seed),
             static_cast<long>(first.seed));
  g.exactInt("threads", baseline.threads, first.threads);
  g.exactBool("supervised", baseline.supervised, first.supervised);
  g.exactInt("stages.count", static_cast<long>(baseline.stages.size()),
             static_cast<long>(first.stages.size()));
  const std::size_t nStages =
      std::min(baseline.stages.size(), first.stages.size());
  for (std::size_t i = 0; i < nStages; ++i) {
    g.exactStr("stages[" + std::to_string(i) + "].stage",
               baseline.stages[i].stage, first.stages[i].stage);
  }
  if (!g.out.pass) return std::move(g.out);

  // Determinism contract: every candidate identical to the first, then the
  // first identical to the baseline. A candidate-vs-candidate mismatch is
  // a determinism break, reported with its own prefix.
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    compareDeterministic(g, "run[" + std::to_string(i) + "] vs run[0]: ",
                         first, candidates[i]);
  }
  compareDeterministic(g, "", baseline, first);

  // Wall clock: median across candidates against the banded baseline.
  for (std::size_t i = 0; i < nStages; ++i) {
    std::vector<double> walls;
    walls.reserve(candidates.size());
    for (const RunRecord& c : candidates) walls.push_back(c.stages[i].wallMs);
    g.wall("stages[" + baseline.stages[i].stage + "].wall_ms",
           baseline.stages[i].wallMs, median(walls));
  }
  {
    std::vector<double> totals;
    totals.reserve(candidates.size());
    for (const RunRecord& c : candidates) {
      totals.push_back(c.totalSeconds * 1000.0);
    }
    g.wall("wall.total_seconds(ms)", baseline.totalSeconds * 1000.0,
           median(totals));
  }
  return std::move(g.out);
}

}  // namespace ep
