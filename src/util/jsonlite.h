// Minimal JSON codec shared by the serve wire protocol, the job journal,
// run records and the bench/loadgen report writers.
//
// Scope: exactly what newline-delimited protocols and small report files
// need — null/bool/number/string/array/object, strict parsing with bounded
// depth, and deterministic serialization (object members keep insertion
// order, so a journal entry round-trips byte-identically). This is NOT a
// general-purpose JSON library: no streaming, no comments, no BOM handling,
// numbers are IEEE doubles. Malformed input is rejected with a typed
// kInvalidInput status and a byte offset, never with UB or unbounded
// recursion — the protocol fuzzer (tests/test_serve.cpp) hammers this
// parser with corrupted and adversarial lines.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/status.h"

namespace ep {

class JsonValue {
 public:
  enum class Kind : unsigned char {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
  };

  JsonValue() = default;

  static JsonValue null() { return JsonValue(); }
  static JsonValue boolean(bool b) {
    JsonValue v;
    v.kind_ = Kind::kBool;
    v.bool_ = b;
    return v;
  }
  static JsonValue number(double n) {
    JsonValue v;
    v.kind_ = Kind::kNumber;
    v.num_ = n;
    return v;
  }
  static JsonValue str(std::string s) {
    JsonValue v;
    v.kind_ = Kind::kString;
    v.str_ = std::move(s);
    return v;
  }
  static JsonValue array() {
    JsonValue v;
    v.kind_ = Kind::kArray;
    return v;
  }
  static JsonValue object() {
    JsonValue v;
    v.kind_ = Kind::kObject;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool isNull() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool isBool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool isNumber() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool isString() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool isArray() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool isObject() const { return kind_ == Kind::kObject; }

  /// Value accessors return the neutral element on kind mismatch; protocol
  /// handlers validate kinds explicitly before trusting a field.
  [[nodiscard]] bool asBool() const { return isBool() && bool_; }
  [[nodiscard]] double asNumber() const { return isNumber() ? num_ : 0.0; }
  [[nodiscard]] const std::string& asString() const { return str_; }

  [[nodiscard]] const std::vector<JsonValue>& items() const { return arr_; }
  [[nodiscard]] const std::vector<std::pair<std::string, JsonValue>>&
  members() const {
    return obj_;
  }

  /// Object lookup; nullptr when absent or not an object.
  [[nodiscard]] const JsonValue* find(std::string_view key) const {
    for (const auto& [k, v] : obj_) {
      if (k == key) return &v;
    }
    return nullptr;
  }

  /// Appends/overwrites an object member (insertion order preserved).
  void set(std::string key, JsonValue value);
  /// Appends an array element.
  void push(JsonValue value) { arr_.push_back(std::move(value)); }

  // Typed member helpers with defaults (object receivers only).
  [[nodiscard]] std::string getString(std::string_view key,
                                      std::string def = "") const;
  [[nodiscard]] double getNumber(std::string_view key, double def = 0) const;
  [[nodiscard]] bool getBool(std::string_view key, bool def = false) const;

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string str_;
  std::vector<JsonValue> arr_;
  std::vector<std::pair<std::string, JsonValue>> obj_;
};

struct JsonLimits {
  /// Maximum container nesting; deeper input is rejected (kInvalidInput)
  /// instead of recursing without bound on attacker-controlled lines.
  std::size_t maxDepth = 16;
};

/// Parses one complete JSON value; trailing non-whitespace is an error.
StatusOr<JsonValue> parseJson(std::string_view text,
                              const JsonLimits& limits = {});

/// Compact single-line serialization (no trailing newline). Doubles that
/// are integral in [-2^53, 2^53] print without an exponent/fraction, so
/// ids round-trip exactly; non-finite numbers serialize as null.
std::string writeJson(const JsonValue& v);

}  // namespace ep
