#include "util/parallel.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/fault_injector.h"

namespace ep {

namespace {

int hardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

struct ThreadPool::Impl {
  // One persistent worker per partition 1..P-1; the caller runs partition 0.
  std::vector<std::thread> workers;

  std::mutex mu;
  std::condition_variable wake;
  std::condition_variable done;
  std::uint64_t epoch = 0;  // bumped per job; workers run each epoch once
  bool stop = false;

  // Current job (valid while pending > 0).
  RawFn fn = nullptr;
  void* ctx = nullptr;
  std::size_t n = 0;
  std::size_t parts = 1;
  std::size_t throwPart = SIZE_MAX;  // fault injection: partition that throws
  int pending = 0;
  std::vector<std::exception_ptr> errors;

  void execute(std::size_t part) {
    const std::size_t b = part * n / parts;
    const std::size_t e = (part + 1) * n / parts;
    try {
      if (part == throwPart) {
        throw std::runtime_error("injected fault: parallel.task");
      }
      if (b < e) fn(ctx, part, b, e);
    } catch (...) {
      errors[part] = std::current_exception();
    }
  }

  void workerLoop(std::size_t part) {
    std::uint64_t seen = 0;
    for (;;) {
      {
        std::unique_lock<std::mutex> lock(mu);
        wake.wait(lock, [&] { return stop || epoch != seen; });
        if (stop) return;
        seen = epoch;
        if (part >= parts) {  // not needed for this job
          if (--pending == 0) done.notify_one();
          continue;
        }
      }
      execute(part);
      {
        std::lock_guard<std::mutex> lock(mu);
        if (--pending == 0) done.notify_one();
      }
    }
  }
};

ThreadPool::ThreadPool(int threads) : impl_(std::make_unique<Impl>()) {
  nThreads_ = threads <= 0 ? hardwareThreads() : threads;
  impl_->errors.resize(static_cast<std::size_t>(nThreads_));
  for (int p = 1; p < nThreads_; ++p) {
    impl_->workers.emplace_back(
        [this, p] { impl_->workerLoop(static_cast<std::size_t>(p)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(impl_->mu);
    impl_->stop = true;
  }
  impl_->wake.notify_all();
  for (auto& w : impl_->workers) w.join();
}

void ThreadPool::run(std::size_t n, RawFn fn, void* ctx, std::size_t grain) {
  // The fault site is evaluated on the orchestrating thread (the injector
  // is not thread-safe); when it fires, the *last* partition's task throws,
  // so the capture-and-rethrow path is exercised on a genuine worker thread
  // whenever more than one partition runs.
  std::size_t throwPart = SIZE_MAX;
  if (inj_ != nullptr && inj_->active()) {
    if (inj_->fire("parallel.task") != nullptr) {
      throwPart = static_cast<std::size_t>(nThreads_) - 1;
    }
  }

  if (nThreads_ == 1 || n < grain || n == 0) {
    // Inline: identical results by the determinism contract. The injected
    // throw still propagates (from the caller's own partition).
    Impl& im = *impl_;
    im.fn = fn;
    im.ctx = ctx;
    im.n = n;
    im.parts = 1;
    im.throwPart = throwPart == SIZE_MAX ? SIZE_MAX : 0;
    im.errors[0] = nullptr;
    im.execute(0);
    if (im.errors[0]) std::rethrow_exception(im.errors[0]);
    return;
  }

  Impl& im = *impl_;
  {
    std::lock_guard<std::mutex> lock(im.mu);
    im.fn = fn;
    im.ctx = ctx;
    im.n = n;
    im.parts = static_cast<std::size_t>(nThreads_);
    im.throwPart = throwPart;
    im.pending = nThreads_ - 1;
    for (auto& e : im.errors) e = nullptr;
    ++im.epoch;
  }
  im.wake.notify_all();
  im.execute(0);  // caller participates as partition 0
  {
    std::unique_lock<std::mutex> lock(im.mu);
    im.done.wait(lock, [&] { return im.pending == 0; });
  }
  for (auto& e : im.errors) {  // lowest partition wins, deterministically
    if (e) std::rethrow_exception(e);
  }
}

double orderedSum(std::span<const double> v) {
  double acc = 0.0;
  for (const double x : v) acc += x;
  return acc;
}

}  // namespace ep
