#include "util/compat.h"

#include <mutex>

#include "util/context.h"
#include "util/log.h"

namespace ep::compat {

namespace {
std::once_flag g_setThreadsOnce;
}  // namespace

void setGlobalThreads(int threads) {
  bool first = false;
  std::call_once(g_setThreadsOnce, [&] {
    first = true;
    if (!detail::requestProcessDefaultThreads(threads)) {
      logWarn(
          "compat::setGlobalThreads(%d) ignored: the default context "
          "already exists; pass RuntimeOptions::threads instead",
          threads);
    }
  });
  if (!first) {
    logWarn(
        "compat::setGlobalThreads(%d) ignored: the thread count is fixed "
        "by the first call; pass RuntimeOptions::threads instead",
        threads);
  }
}

}  // namespace ep::compat
