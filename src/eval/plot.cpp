#include "eval/plot.h"

#include <algorithm>
#include <cstdio>
#include <vector>

#include "util/context.h"

namespace ep {

namespace {

struct Rgb {
  unsigned char r, g, b;
};

constexpr Rgb kWhite{255, 255, 255};
constexpr Rgb kRed{220, 40, 40};
constexpr Rgb kBlue{60, 80, 220};
constexpr Rgb kBlack{20, 20, 20};
constexpr Rgb kGray{170, 170, 170};

class Canvas {
 public:
  Canvas(int w, int h, const Rect& world)
      : w_(w), h_(h), world_(world), px_(static_cast<std::size_t>(w) * h, kWhite) {}

  void fillRect(const Rect& r, Rgb c) {
    int x0, y0, x1, y1;
    toPixels(r, x0, y0, x1, y1);
    for (int y = y0; y <= y1; ++y) {
      for (int x = x0; x <= x1; ++x) set(x, y, c);
    }
  }

  void outlineRect(const Rect& r, Rgb c) {
    int x0, y0, x1, y1;
    toPixels(r, x0, y0, x1, y1);
    for (int x = x0; x <= x1; ++x) {
      set(x, y0, c);
      set(x, y1, c);
    }
    for (int y = y0; y <= y1; ++y) {
      set(x0, y, c);
      set(x1, y, c);
    }
  }

  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (!f) return false;
    std::fprintf(f, "P6\n%d %d\n255\n", w_, h_);
    std::fwrite(px_.data(), sizeof(Rgb), px_.size(), f);
    std::fclose(f);
    return true;
  }

 private:
  void toPixels(const Rect& r, int& x0, int& y0, int& x1, int& y1) const {
    const double sx = static_cast<double>(w_ - 1) / world_.width();
    const double sy = static_cast<double>(h_ - 1) / world_.height();
    x0 = std::clamp(static_cast<int>((r.lx - world_.lx) * sx), 0, w_ - 1);
    x1 = std::clamp(static_cast<int>((r.hx - world_.lx) * sx), 0, w_ - 1);
    // y axis flipped: world bottom -> image bottom row.
    y1 = std::clamp(h_ - 1 - static_cast<int>((r.ly - world_.ly) * sy), 0,
                    h_ - 1);
    y0 = std::clamp(h_ - 1 - static_cast<int>((r.hy - world_.ly) * sy), 0,
                    h_ - 1);
  }

  void set(int x, int y, Rgb c) {
    if (x < 0 || y < 0 || x >= w_ || y >= h_) return;
    px_[static_cast<std::size_t>(y) * w_ + x] = c;
  }

  int w_, h_;
  Rect world_;
  std::vector<Rgb> px_;
};

}  // namespace

bool plotScalarMap(std::span<const double> map, std::size_t nx,
                   std::size_t ny, const std::string& path, int scale,
                   RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  if (map.size() != nx * ny || nx == 0 || ny == 0) {
    rc.log().warn("plotScalarMap: bad map shape for %s (%zu values, %zux%zu)",
                  path.c_str(), map.size(), nx, ny);
    return false;
  }
  double lo = map[0], hi = map[0];
  for (double v : map) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  const double span = hi - lo > 0.0 ? hi - lo : 1.0;
  const int w = static_cast<int>(nx) * scale;
  const int h = static_cast<int>(ny) * scale;
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (!f) {
    rc.log().warn("plotScalarMap: cannot open %s for writing", path.c_str());
    return false;
  }
  std::fprintf(f, "P6\n%d %d\n255\n", w, h);
  std::vector<Rgb> row(static_cast<std::size_t>(w));
  for (int py = h - 1; py >= 0; --py) {  // flip so +y is up
    const std::size_t iy = static_cast<std::size_t>(py) / scale;
    for (int px = 0; px < w; ++px) {
      const std::size_t ix = static_cast<std::size_t>(px) / scale;
      const double t = (map[iy * nx + ix] - lo) / span;  // 0..1
      // Diverging blue -> white -> red.
      Rgb c;
      if (t < 0.5) {
        const double u = t * 2.0;
        c = {static_cast<unsigned char>(60 + 195 * u),
             static_cast<unsigned char>(80 + 175 * u),
             static_cast<unsigned char>(220 + 35 * u)};
      } else {
        const double u = (t - 0.5) * 2.0;
        c = {static_cast<unsigned char>(255),
             static_cast<unsigned char>(255 - 215 * u),
             static_cast<unsigned char>(255 - 215 * u)};
      }
      row[static_cast<std::size_t>(px)] = c;
    }
    std::fwrite(row.data(), sizeof(Rgb), row.size(), f);
  }
  std::fclose(f);
  return true;
}

bool plotLayout(const PlacementDB& db, const std::string& path,
                const PlotOptions& opts, std::span<const double> fillerCx,
                std::span<const double> fillerCy,
                std::span<const double> fillerW,
                std::span<const double> fillerH, RuntimeContext* ctx) {
  const double aspect = db.region.height() / db.region.width();
  const int w = opts.width;
  const int h = std::max(16, static_cast<int>(w * aspect));
  Canvas canvas(w, h, db.region);

  if (opts.drawFixed) {
    for (const auto& o : db.objects) {
      if (o.fixed) canvas.fillRect(o.rect(), kGray);
    }
  }
  for (std::size_t i = 0; i < fillerCx.size(); ++i) {
    const Rect r{fillerCx[i] - fillerW[i] * 0.5, fillerCy[i] - fillerH[i] * 0.5,
                 fillerCx[i] + fillerW[i] * 0.5,
                 fillerCy[i] + fillerH[i] * 0.5};
    canvas.fillRect(r, kBlue);
  }
  for (const auto& o : db.objects) {
    if (o.fixed) continue;
    if (o.kind == ObjKind::kStdCell) canvas.fillRect(o.rect(), kRed);
  }
  for (const auto& o : db.objects) {
    if (!o.fixed && o.kind == ObjKind::kMacro) {
      canvas.outlineRect(o.rect(), kBlack);
    }
  }
  canvas.outlineRect(db.region, kBlack);
  if (!canvas.write(path)) {
    resolveContext(ctx).log().warn("plotLayout: cannot write %s",
                                   path.c_str());
    return false;
  }
  return true;
}

}  // namespace ep
