#include "eval/metrics.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "density/bingrid.h"
#include "wirelength/wl.h"

namespace ep {

namespace {

/// Stamp exact footprints of a subset into area maps. Flags and areas come
/// from the view's SoA arrays; rects come from the live object positions
/// (metrics run mid-flow, when the view's movable copies may be stale).
void stampObjects(const PlacementDB& db, const BinGrid& grid, bool movable,
                  std::vector<double>& map) {
  const PlacementView& pv = db.view();
  const auto fixedMask = pv.fixedMask();
  const auto area = pv.area();
  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    if ((fixedMask[i] != 0) == movable) continue;
    grid.stamp(db.objects[i].rect(), area[i], map);
  }
}

BinGrid defaultGrid(const PlacementDB& db, std::size_t nx, std::size_t ny) {
  if (nx == 0 || ny == 0) {
    // Overflow-style metrics use the coarse grid rule; see bingrid.h.
    const std::size_t m =
        BinGrid::chooseOverflowResolution(db.objects.size());
    nx = ny = m;
  }
  return {db.region, nx, ny};
}

}  // namespace

DensityReport densityOverflow(const PlacementDB& db, std::size_t nx,
                              std::size_t ny) {
  const BinGrid grid = defaultGrid(db, nx, ny);
  std::vector<double> mov(grid.numBins(), 0.0), fix(grid.numBins(), 0.0);
  stampObjects(db, grid, true, mov);
  stampObjects(db, grid, false, fix);
  const double binArea = grid.binArea();
  const double total = db.totalMovableArea();
  DensityReport rep;
  double over = 0.0;
  for (std::size_t b = 0; b < mov.size(); ++b) {
    const double capacity =
        db.targetDensity * std::max(0.0, binArea - fix[b]);
    over += std::max(0.0, mov[b] - capacity);
    rep.maxDensity = std::max(rep.maxDensity, (mov[b] + fix[b]) / binArea);
  }
  rep.overflow = total > 0.0 ? over / total : 0.0;
  return rep;
}

double scaledHpwl(const PlacementDB& db) {
  const double w = hpwl(db);
  if (db.targetDensity >= 1.0) return w;
  const BinGrid grid = defaultGrid(db, 0, 0);
  std::vector<double> mov(grid.numBins(), 0.0), fix(grid.numBins(), 0.0);
  stampObjects(db, grid, true, mov);
  stampObjects(db, grid, false, fix);
  const double binArea = grid.binArea();
  double over = 0.0, capacity = 0.0;
  for (std::size_t b = 0; b < mov.size(); ++b) {
    const double cap = db.targetDensity * std::max(0.0, binArea - fix[b]);
    over += std::max(0.0, mov[b] - cap);
    capacity += cap;
  }
  const double tauAvgPercent = capacity > 0.0 ? 100.0 * over / capacity : 0.0;
  return w * (1.0 + 0.01 * tauAvgPercent);
}

double gridOverlapArea(const PlacementDB& db, bool includeFixed,
                       std::size_t nx, std::size_t ny) {
  if (nx == 0 || ny == 0) {
    const std::size_t m =
        std::min<std::size_t>(1024, 2 * BinGrid::chooseResolution(
                                            db.objects.size()));
    nx = ny = m;
  }
  const BinGrid grid(db.region, nx, ny);
  std::vector<double> map(grid.numBins(), 0.0);
  const PlacementView& pv = db.view();
  const auto fixedMask = pv.fixedMask();
  const auto area = pv.area();
  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    if (fixedMask[i] != 0 && !includeFixed) continue;
    grid.stamp(db.objects[i].rect(), area[i], map);
  }
  const double binArea = grid.binArea();
  double over = 0.0;
  for (double a : map) over += std::max(0.0, a - binArea);
  return over;
}

double pairwiseOverlapArea(const PlacementDB& db,
                           std::span<const std::int32_t> indices) {
  std::vector<std::int32_t> order(indices.begin(), indices.end());
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return db.objects[static_cast<std::size_t>(a)].lx <
           db.objects[static_cast<std::size_t>(b)].lx;
  });
  double total = 0.0;
  for (std::size_t i = 0; i < order.size(); ++i) {
    const Rect ri = db.objects[static_cast<std::size_t>(order[i])].rect();
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      const Rect rj = db.objects[static_cast<std::size_t>(order[j])].rect();
      if (rj.lx >= ri.hx) break;  // sweep cut-off
      total += ri.overlapArea(rj);
    }
  }
  return total;
}

double macroCellCoverArea(const PlacementDB& db) {
  // Sweep std cells against macros: sort macros by lx, for each cell scan
  // candidate macros. Cell counts dominate, so index macros only. Kind
  // flags come from the view's SoA arrays, rects from live positions.
  const auto kinds = db.view().kind();
  std::vector<const Object*> macros;
  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    if (kinds[i] == static_cast<std::uint8_t>(ObjKind::kMacro)) {
      macros.push_back(&db.objects[i]);
    }
  }
  std::sort(macros.begin(), macros.end(),
            [](const Object* a, const Object* b) { return a->lx < b->lx; });
  std::vector<double> macroLx(macros.size());
  for (std::size_t i = 0; i < macros.size(); ++i) macroLx[i] = macros[i]->lx;

  double total = 0.0;
  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    if (kinds[i] != static_cast<std::uint8_t>(ObjKind::kStdCell)) continue;
    const auto& o = db.objects[i];
    const Rect rc = o.rect();
    // Macros with lx < rc.hx can overlap; iterate those and cut when the
    // macro is entirely to the left for every candidate — macros are few,
    // so a linear scan over the candidates is fine.
    const auto end = std::upper_bound(macroLx.begin(), macroLx.end(), rc.hx) -
                     macroLx.begin();
    for (std::ptrdiff_t m = 0; m < end; ++m) {
      total += rc.overlapArea(macros[static_cast<std::size_t>(m)]->rect());
    }
  }
  return total;
}

LegalityReport checkLegality(const PlacementDB& db, double tol) {
  LegalityReport rep;
  std::ostringstream issue;

  auto note = [&](const std::string& s) {
    if (rep.firstIssue.empty()) rep.firstIssue = s;
  };

  const PlacementView& pv = db.view();
  const auto fixedMask = pv.fixedMask();
  const auto kinds = pv.kind();

  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    const auto& o = db.objects[i];
    if (fixedMask[i] != 0) continue;
    const Rect r = o.rect();
    if (r.lx < db.region.lx - tol || r.hx > db.region.hx + tol ||
        r.ly < db.region.ly - tol || r.hy > db.region.hy + tol) {
      ++rep.outOfRegion;
      note("object " + o.name + " out of region");
    }
  }

  if (!db.rows.empty()) {
    for (std::size_t i = 0; i < db.objects.size(); ++i) {
      const auto& o = db.objects[i];
      if (fixedMask[i] != 0 ||
          kinds[i] != static_cast<std::uint8_t>(ObjKind::kStdCell)) {
        continue;
      }
      bool onRow = false;
      for (const auto& row : db.rows) {
        if (std::abs(o.ly - row.ly) <= tol) {
          onRow = true;
          if (o.lx < row.lx - tol || o.lx + o.w > row.hx() + tol) {
            ++rep.outOfRegion;
            note("cell " + o.name + " outside row span");
          }
          const double site = (o.lx - row.lx) / row.siteWidth;
          if (std::abs(site - std::round(site)) > 1e-4) {
            ++rep.offSite;
            note("cell " + o.name + " off site grid");
          }
          break;
        }
      }
      if (!onRow) {
        ++rep.offRow;
        note("cell " + o.name + " not aligned to any row");
      }
    }
  }

  // Pairwise overlap among all objects via x-sweep.
  std::vector<std::int32_t> order(db.objects.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    order[i] = static_cast<std::int32_t>(i);
  }
  std::sort(order.begin(), order.end(), [&](std::int32_t a, std::int32_t b) {
    return db.objects[static_cast<std::size_t>(a)].lx <
           db.objects[static_cast<std::size_t>(b)].lx;
  });
  for (std::size_t i = 0; i < order.size(); ++i) {
    const auto& oi = db.objects[static_cast<std::size_t>(order[i])];
    const Rect ri = oi.rect();
    for (std::size_t j = i + 1; j < order.size(); ++j) {
      const auto& oj = db.objects[static_cast<std::size_t>(order[j])];
      if (oj.lx >= ri.hx - tol) break;
      if (fixedMask[static_cast<std::size_t>(order[i])] != 0 &&
          fixedMask[static_cast<std::size_t>(order[j])] != 0) {
        continue;
      }
      const Rect rj = oj.rect();
      // Shrink by tol so abutting objects do not count as overlapping.
      if (ri.overlapArea(rj) > tol * (ri.width() + rj.width())) {
        ++rep.overlaps;
        note("objects " + oi.name + " and " + oj.name + " overlap");
      }
    }
  }

  rep.legal = rep.outOfRegion == 0 && rep.offRow == 0 && rep.offSite == 0 &&
              rep.overlaps == 0;
  return rep;
}

}  // namespace ep
