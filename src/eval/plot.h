// Layout snapshot rendering to PPM (P6) images, used by the figure benches
// (Fig. 3 mGP progression, Fig. 5 macro legalization, Fig. 6 cGP). Colors
// follow the paper: standard cells red, macros black outlines, fillers blue,
// fixed objects gray.
#pragma once

#include <span>
#include <string>

#include "model/netlist.h"

namespace ep {

class RuntimeContext;

struct PlotOptions {
  int width = 512;   ///< image width in pixels; height follows aspect ratio
  bool drawFixed = true;
};

/// Renders the DB layout. `fillers` optionally adds filler rectangles
/// (center/size quadruples are taken from the spans, all sized like the
/// ChargeView the placer maintains). Returns false when the file cannot be
/// written (also logged as a warning through `ctx`'s sink).
bool plotLayout(const PlacementDB& db, const std::string& path,
                const PlotOptions& opts = {},
                std::span<const double> fillerCx = {},
                std::span<const double> fillerCy = {},
                std::span<const double> fillerW = {},
                std::span<const double> fillerH = {},
                RuntimeContext* ctx = nullptr);

/// Renders a scalar bin map (density rho, potential psi, field magnitude)
/// as a blue->white->red heatmap, one pixel block per bin, normalized to
/// the map's own [min, max]. Row-major nx*ny, index iy*nx+ix.
bool plotScalarMap(std::span<const double> map, std::size_t nx,
                   std::size_t ny, const std::string& path, int scale = 4,
                   RuntimeContext* ctx = nullptr);

}  // namespace ep
