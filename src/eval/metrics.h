// Evaluation metrics matching the contest scripts' semantics:
//  * density overflow tau (ISPD 2005/2006 style, movable area beyond
//    rho_t-scaled free bin capacity, normalized by total movable area);
//  * scaled HPWL (ISPD 2006: sHPWL = HPWL * (1 + 0.01 * tau_avg%), where
//    tau_avg% is the percent overflow relative to total bin capacity — see
//    DESIGN.md for the exact form we standardize on);
//  * object overlap (the OVLP series of Figs. 2/3): grid-based total
//    overlapping area (exact pairwise overlap of a million-cell snapshot is
//    quadratic; the grid form is the standard proxy and is exact in the
//    limit of fine bins);
//  * exact pairwise overlap for small subsets (macros, Fig. 5);
//  * row/site legality checking for final layouts.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/netlist.h"

namespace ep {

struct DensityReport {
  double overflow = 0.0;    ///< tau in [0, ~1]
  double maxDensity = 0.0;  ///< max bin occupancy (incl. fixed)
};

/// Exact-footprint density overflow of the movable objects in `db` against
/// rho_t-scaled free capacity. nx/ny default to the ePlace grid rule.
DensityReport densityOverflow(const PlacementDB& db, std::size_t nx = 0,
                              std::size_t ny = 0);

/// ISPD-2006 scaled HPWL. For rho_t >= 1 this equals plain HPWL.
double scaledHpwl(const PlacementDB& db);

/// Grid-based total overlap area among the given objects (movables by
/// default): sum over fine bins of max(0, stamped area - bin area).
double gridOverlapArea(const PlacementDB& db, bool includeFixed = false,
                       std::size_t nx = 0, std::size_t ny = 0);

/// Exact total pairwise overlap area among the objects with the given
/// indices (sweep over x). Quadratic in the worst case — intended for
/// macro sets.
double pairwiseOverlapArea(const PlacementDB& db,
                           std::span<const std::int32_t> indices);

/// Total standard-cell area covered by macros — the D(v) term of the mLG
/// cost (Eq. 14).
double macroCellCoverArea(const PlacementDB& db);

struct LegalityReport {
  bool legal = false;
  int outOfRegion = 0;
  int offRow = 0;
  int offSite = 0;
  int overlaps = 0;
  std::string firstIssue;
};

/// Checks the final layout: every movable inside the region; every movable
/// standard cell bottom-aligned to a row and left-aligned to a site; no two
/// placed objects (movable-movable or movable-fixed) overlapping.
LegalityReport checkLegality(const PlacementDB& db, double tol = 1e-6);

}  // namespace ep
