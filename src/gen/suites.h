// The three experiment suites of Section VII, as laptop-scale synthetic
// mirrors of ISPD 2005 [13], ISPD 2006 [12] and MMS [21]. Circuit names,
// relative sizes, target densities and macro counts track the paper's
// Tables I-III; absolute cell counts are scaled down ~175x so the full
// reproduction runs on one core (see DESIGN.md substitution table).
#pragma once

#include <vector>

#include "gen/generator.h"

namespace ep {

/// 8 standard-cell circuits, rho_t = 1.0, fixed macro blocks (Table I).
std::vector<GenSpec> ispd2005Suite();

/// 8 standard-cell circuits with benchmark-specific rho_t < 1 (Table II).
std::vector<GenSpec> ispd2006Suite();

/// 16 mixed-size circuits: the same netlist statistics with macros freed
/// and fixed IO blocks inserted (Table III).
std::vector<GenSpec> mmsSuite();

/// Scale sweep for the multilevel V-cycle and the streaming front-end
/// (docs/SCALING.md): standard-cell circuits "scale_1k" .. "scale_500k"
/// spanning 1k-500k cells at ISPD-2005-like statistics. The 100k+ entries
/// back the `scale` ctest lane and the cells_vs_seconds benchmark rows.
std::vector<GenSpec> scaleSuite();

/// Convenience: find a spec by name in any suite (e.g. "mms_adaptec1s" for
/// the Fig. 2/3/5/6 experiments). Aborts if unknown.
GenSpec suiteSpec(const std::string& name);

}  // namespace ep
