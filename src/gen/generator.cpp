#include "gen/generator.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/log.h"
#include "util/rng.h"

namespace ep {

namespace {

/// Sample a net degree: 2 + geometric tail with the requested mean, capped.
std::size_t sampleDegree(Rng& rng, double avgDegree) {
  const double extraMean = std::max(0.0, avgDegree - 2.0);
  if (extraMean <= 0.0) return 2;
  const double p = 1.0 / (1.0 + extraMean);
  double u = rng.uniform();
  if (u <= 0.0) u = 1e-12;
  const auto extra =
      static_cast<std::size_t>(std::log(u) / std::log(1.0 - p));
  return 2 + std::min<std::size_t>(extra, 14);
}

double snap(double v, double pitch) {
  return std::round(v / pitch) * pitch;
}

}  // namespace

PlacementDB generateCircuit(const GenSpec& spec) {
  PlacementDB db;
  db.name = spec.name;
  db.targetDensity = spec.targetDensity;
  Rng rng(spec.seed);

  // Size the big arrays up front (the 100k+ scale suite would otherwise
  // spend its time in vector regrowth; same contract as the capacity plan
  // in the Bookshelf reader).
  db.objects.reserve(spec.numCells + spec.numMovableMacros +
                     spec.numFixedMacros + spec.numIo);

  // ---- Standard cells ----
  double cellArea = 0.0;
  for (std::size_t i = 0; i < spec.numCells; ++i) {
    Object o;
    o.name = "c" + std::to_string(i);
    o.kind = ObjKind::kStdCell;
    const double u = rng.uniform();
    const double sites = u < 0.45 ? 1 : u < 0.75 ? 2 : u < 0.9 ? 3 : 4;
    o.w = sites * spec.siteWidth;
    o.h = spec.rowHeight;
    cellArea += o.area();
    db.objects.push_back(std::move(o));
  }

  // ---- Movable macros (MMS style) ----
  const std::size_t firstMovMacro = db.objects.size();
  double movMacroArea = 0.0;
  if (spec.numMovableMacros > 0 && spec.macroAreaFraction > 0.0 &&
      spec.macroAreaFraction < 1.0) {
    const double totalMacroArea =
        cellArea * spec.macroAreaFraction / (1.0 - spec.macroAreaFraction);
    const double perMacro =
        totalMacroArea / static_cast<double>(spec.numMovableMacros);
    for (std::size_t i = 0; i < spec.numMovableMacros; ++i) {
      Object o;
      o.name = "m" + std::to_string(i);
      o.kind = ObjKind::kMacro;
      const double aspect = rng.uniform(0.5, 2.0);
      // Area jitter +-40% around the even share.
      const double area = perMacro * rng.uniform(0.6, 1.4);
      double h = std::sqrt(area * aspect);
      double w = area / h;
      o.h = std::max(2.0 * spec.rowHeight, snap(h, spec.rowHeight));
      o.w = std::max(2.0 * spec.siteWidth, snap(w, spec.siteWidth));
      movMacroArea += o.area();
      db.objects.push_back(std::move(o));
    }
  }
  const double movableArea = cellArea + movMacroArea;

  // ---- Region sizing ----
  double fixedMacroAreaEst = 0.0;
  std::vector<std::pair<double, double>> fixedDims;
  for (std::size_t i = 0; i < spec.numFixedMacros; ++i) {
    const double aspect = rng.uniform(0.5, 2.0);
    const double area =
        movableArea * 0.25 / std::max<std::size_t>(1, spec.numFixedMacros) *
        rng.uniform(0.5, 1.5);
    double h = std::max(2.0 * spec.rowHeight,
                        snap(std::sqrt(area * aspect), spec.rowHeight));
    double w = std::max(2.0 * spec.siteWidth, snap(area / h, spec.siteWidth));
    fixedDims.emplace_back(w, h);
    fixedMacroAreaEst += w * h;
  }

  const double coreArea =
      movableArea / (spec.utilization * spec.targetDensity) +
      fixedMacroAreaEst;
  double side = std::sqrt(coreArea);
  const double regionW = snap(std::max(side, 8.0 * spec.siteWidth),
                              spec.siteWidth);
  const double regionH =
      snap(std::max(coreArea / regionW, 4.0 * spec.rowHeight), spec.rowHeight);
  db.region = {0.0, 0.0, regionW, regionH};

  // ---- Rows ----
  const auto numRows = static_cast<std::size_t>(regionH / spec.rowHeight);
  const auto sitesPerRow = static_cast<std::int32_t>(regionW / spec.siteWidth);
  db.rows.reserve(numRows);
  for (std::size_t r = 0; r < numRows; ++r) {
    db.rows.push_back({0.0, static_cast<double>(r) * spec.rowHeight,
                       spec.rowHeight, spec.siteWidth, sitesPerRow});
  }

  // ---- Fixed macros (ISPD 2005-style blocks) ----
  const std::size_t firstFixedMacro = db.objects.size();
  for (std::size_t i = 0; i < fixedDims.size(); ++i) {
    Object o;
    o.name = "fm" + std::to_string(i);
    o.kind = ObjKind::kMacro;
    o.fixed = true;
    o.w = fixedDims[i].first;
    o.h = fixedDims[i].second;
    // Rejection sampling for a non-overlapping snapped spot.
    bool placed = false;
    for (int attempt = 0; attempt < 200 && !placed; ++attempt) {
      const double lx = snap(rng.uniform(0.0, regionW - o.w), spec.siteWidth);
      const double ly = snap(rng.uniform(0.0, regionH - o.h), spec.rowHeight);
      const Rect cand{lx, ly, lx + o.w, ly + o.h};
      placed = true;
      for (std::size_t j = firstFixedMacro; j < db.objects.size(); ++j) {
        if (db.objects[j].rect().expanded(spec.siteWidth).overlaps(cand)) {
          placed = false;
          break;
        }
      }
      if (placed) {
        o.lx = lx;
        o.ly = ly;
      }
    }
    if (!placed) {
      logWarn("generateCircuit: dropped fixed macro %zu (no room)", i);
      continue;
    }
    db.objects.push_back(std::move(o));
  }

  // ---- IO pads on the periphery ----
  const std::size_t firstIo = db.objects.size();
  for (std::size_t i = 0; i < spec.numIo; ++i) {
    Object o;
    o.name = "io" + std::to_string(i);
    o.kind = ObjKind::kIo;
    o.fixed = true;
    o.w = spec.siteWidth;
    o.h = spec.rowHeight;
    const double t = static_cast<double>(i) / static_cast<double>(spec.numIo);
    const double perim = t * 4.0;
    double lx = 0.0, ly = 0.0;
    if (perim < 1.0) {  // bottom edge
      lx = perim * (regionW - o.w);
      ly = 0.0;
    } else if (perim < 2.0) {  // right edge
      lx = regionW - o.w;
      ly = (perim - 1.0) * (regionH - o.h);
    } else if (perim < 3.0) {  // top edge
      lx = (3.0 - perim) * (regionW - o.w);
      ly = regionH - o.h;
    } else {  // left edge
      lx = 0.0;
      ly = (4.0 - perim) * (regionH - o.h);
    }
    o.lx = snap(lx, spec.siteWidth);
    o.ly = snap(ly, spec.rowHeight);
    db.objects.push_back(std::move(o));
  }

  // ---- Natural positions (latent structure for the netlist) ----
  const std::size_t numClusters =
      std::max<std::size_t>(4, spec.numCells / 64);
  std::vector<Point> centers(numClusters);
  for (auto& c : centers) {
    c = {rng.uniform(0.05 * regionW, 0.95 * regionW),
         rng.uniform(0.05 * regionH, 0.95 * regionH)};
  }
  std::vector<std::size_t> clusterOf(db.objects.size(), 0);
  std::vector<std::vector<std::int32_t>> members(numClusters);
  const double sigmaX = regionW / std::sqrt(static_cast<double>(numClusters));
  const double sigmaY = regionH / std::sqrt(static_cast<double>(numClusters));
  auto placeNatural = [&](std::size_t idx) {
    auto& o = db.objects[idx];
    const std::size_t c = rng.below(numClusters);
    clusterOf[idx] = c;
    members[c].push_back(static_cast<std::int32_t>(idx));
    const double cx = std::clamp(centers[c].x + rng.gaussian() * sigmaX * 0.5,
                                 o.w * 0.5, regionW - o.w * 0.5);
    const double cy = std::clamp(centers[c].y + rng.gaussian() * sigmaY * 0.5,
                                 o.h * 0.5, regionH - o.h * 0.5);
    o.setCenter(cx, cy);
  };
  for (std::size_t i = 0; i < spec.numCells; ++i) placeNatural(i);
  for (std::size_t i = firstMovMacro; i < firstFixedMacro; ++i) {
    placeNatural(i);
  }

  // ---- Nets ----
  // Candidate pools: movables (macros weighted up so they attract nets the
  // way real hard blocks do), plus fixed macros with small probability.
  std::vector<std::int32_t> pool;
  pool.reserve(spec.numCells + 4 * (firstFixedMacro - firstMovMacro));
  for (std::size_t i = 0; i < spec.numCells; ++i) {
    pool.push_back(static_cast<std::int32_t>(i));
  }
  for (std::size_t i = firstMovMacro; i < firstFixedMacro; ++i) {
    for (int k = 0; k < 4; ++k) pool.push_back(static_cast<std::int32_t>(i));
  }
  const std::size_t numIoPlaced = db.objects.size() - firstIo;
  const auto numNets = static_cast<std::size_t>(
      spec.netsPerCell * static_cast<double>(spec.numCells));

  auto pinOffset = [&](const Object& o, double& ox, double& oy) {
    ox = rng.uniform(-o.w * 0.25, o.w * 0.25);
    oy = rng.uniform(-o.h * 0.25, o.h * 0.25);
  };

  db.nets.reserve(numNets);
  std::vector<std::int32_t> picked;
  picked.reserve(18);  // degree cap 16 + optional IO pad
  for (std::size_t n = 0; n < numNets; ++n) {
    const std::size_t degree = sampleDegree(rng, spec.avgNetDegree);
    picked.clear();
    const auto seedObj =
        pool[static_cast<std::size_t>(rng.below(pool.size()))];
    picked.push_back(seedObj);
    const std::size_t cl = clusterOf[static_cast<std::size_t>(seedObj)];
    while (picked.size() < degree) {
      std::int32_t cand;
      if (rng.chance(spec.locality) && !members[cl].empty()) {
        cand = members[cl][static_cast<std::size_t>(
            rng.below(members[cl].size()))];
      } else {
        cand = pool[static_cast<std::size_t>(rng.below(pool.size()))];
      }
      if (std::find(picked.begin(), picked.end(), cand) == picked.end()) {
        picked.push_back(cand);
      } else if (members[cl].size() + 2 < degree) {
        break;  // tiny cluster cannot fill the net; accept short net
      }
    }
    // Optionally route the net to an IO pad.
    if (numIoPlaced > 0 && rng.chance(spec.ioNetFraction)) {
      picked.push_back(static_cast<std::int32_t>(
          firstIo + rng.below(numIoPlaced)));
    }
    if (picked.size() < 2) continue;
    Net net;
    net.name = "n" + std::to_string(db.nets.size());
    net.pins.reserve(picked.size());
    for (auto objIdx : picked) {
      PinRef pin;
      pin.obj = objIdx;
      // First pin drives the net; the rest are sinks (timing graph).
      pin.dir = net.pins.empty() ? PinDir::kOutput : PinDir::kInput;
      pinOffset(db.objects[static_cast<std::size_t>(objIdx)], pin.ox, pin.oy);
      net.pins.push_back(pin);
    }
    db.nets.push_back(std::move(net));
  }

  // ---- Connect any floating movable so the QP system is anchored ----
  std::vector<int> degreeOfObj(db.objects.size(), 0);
  for (const auto& net : db.nets) {
    for (const auto& pin : net.pins) {
      ++degreeOfObj[static_cast<std::size_t>(pin.obj)];
    }
  }
  for (std::size_t i = 0; i < firstFixedMacro; ++i) {
    if (degreeOfObj[i] != 0) continue;
    const std::size_t cl = clusterOf[i];
    std::int32_t mate = members[cl].front();
    if (mate == static_cast<std::int32_t>(i) && members[cl].size() > 1) {
      mate = members[cl][1];
    }
    if (mate == static_cast<std::int32_t>(i)) {
      // Lone cluster member: tie it to an arbitrary pool object instead.
      mate = pool[static_cast<std::size_t>(rng.below(pool.size()))];
      if (mate == static_cast<std::int32_t>(i)) continue;
    }
    Net net;
    net.name = "n" + std::to_string(db.nets.size());
    PinRef a, b;
    a.obj = static_cast<std::int32_t>(i);
    a.dir = PinDir::kOutput;
    b.obj = mate;
    b.dir = PinDir::kInput;
    net.pins = {a, b};
    db.nets.push_back(std::move(net));
  }

  db.finalize();
  const Status issue = db.validate();
  if (!issue.ok()) {
    logError("generateCircuit(%s): invalid instance: %s", spec.name.c_str(),
             issue.message().c_str());
  }
  assert(issue.ok());
  return db;
}

}  // namespace ep
