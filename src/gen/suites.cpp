#include "gen/suites.h"

#include <cstdlib>

#include "util/log.h"

namespace ep {

namespace {

/// FNV-1a of the name: distinct deterministic seed per circuit.
std::uint64_t nameSeed(const std::string& name) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

GenSpec base(const std::string& name, std::size_t cells, double rhoT,
             double utilization) {
  GenSpec s;
  s.name = name;
  s.numCells = cells;
  s.targetDensity = rhoT;
  s.utilization = utilization;
  s.numIo = 96;
  s.seed = nameSeed(name);
  return s;
}

}  // namespace

std::vector<GenSpec> ispd2005Suite() {
  // Cell counts scale the paper's 211K..2177K range down to 1.2K..5K.
  struct Row {
    const char* name;
    std::size_t cells;
    std::size_t fixedMacros;
    double util;
  };
  const Row rows[] = {
      {"ispd05_adaptec1s", 1200, 8, 0.70},  {"ispd05_adaptec2s", 1450, 10, 0.65},
      {"ispd05_adaptec3s", 2550, 12, 0.62}, {"ispd05_adaptec4s", 2800, 12, 0.55},
      {"ispd05_bigblue1s", 1570, 8, 0.68},  {"ispd05_bigblue2s", 3150, 14, 0.60},
      {"ispd05_bigblue3s", 4000, 16, 0.65}, {"ispd05_bigblue4s", 5000, 16, 0.55},
  };
  std::vector<GenSpec> suite;
  for (const auto& r : rows) {
    GenSpec s = base(r.name, r.cells, 1.0, r.util);
    s.numFixedMacros = r.fixedMacros;
    suite.push_back(s);
  }
  return suite;
}

std::vector<GenSpec> ispd2006Suite() {
  struct Row {
    const char* name;
    std::size_t cells;
    double rhoT;
    double util;
  };
  // rho_t values are the official per-benchmark bounds (Table II).
  const Row rows[] = {
      {"ispd06_adaptec5s", 2000, 0.5, 0.35}, {"ispd06_newblue1s", 1000, 0.8, 0.55},
      {"ispd06_newblue2s", 1200, 0.9, 0.60}, {"ispd06_newblue3s", 1300, 0.8, 0.55},
      {"ispd06_newblue4s", 1600, 0.5, 0.35}, {"ispd06_newblue5s", 2600, 0.5, 0.35},
      {"ispd06_newblue6s", 2700, 0.8, 0.55}, {"ispd06_newblue7s", 4000, 0.8, 0.55},
  };
  std::vector<GenSpec> suite;
  for (const auto& r : rows) {
    GenSpec s = base(r.name, r.cells, r.rhoT, r.util);
    s.numFixedMacros = 6;
    suite.push_back(s);
  }
  return suite;
}

std::vector<GenSpec> mmsSuite() {
  struct Row {
    const char* name;
    std::size_t cells;
    std::size_t macros;  // movable (Table III "# Mac" scaled ~1/8, capped)
    double rhoT;
    double util;
  };
  const Row rows[] = {
      {"mms_adaptec1s", 1200, 8, 1.0, 0.70},
      {"mms_adaptec2s", 1450, 16, 1.0, 0.65},
      {"mms_adaptec3s", 2550, 8, 1.0, 0.62},
      {"mms_adaptec4s", 2800, 9, 1.0, 0.55},
      {"mms_bigblue1s", 1570, 4, 1.0, 0.68},
      {"mms_bigblue2s", 3150, 60, 1.0, 0.60},
      {"mms_bigblue3s", 4000, 80, 1.0, 0.65},
      {"mms_bigblue4s", 5000, 25, 1.0, 0.55},
      {"mms_adaptec5s", 2000, 10, 0.5, 0.35},
      {"mms_newblue1s", 1000, 8, 0.8, 0.55},
      {"mms_newblue2s", 1200, 80, 0.9, 0.60},
      {"mms_newblue3s", 1300, 6, 0.8, 0.55},
      {"mms_newblue4s", 1600, 10, 0.5, 0.35},
      {"mms_newblue5s", 2600, 11, 0.5, 0.35},
      {"mms_newblue6s", 2700, 9, 0.8, 0.55},
      {"mms_newblue7s", 4000, 20, 0.8, 0.55},
  };
  std::vector<GenSpec> suite;
  for (const auto& r : rows) {
    GenSpec s = base(r.name, r.cells, r.rhoT, r.util);
    s.numMovableMacros = r.macros;
    s.macroAreaFraction = 0.30;
    s.numFixedMacros = 0;  // MMS: macros freed, only fixed IO blocks remain
    s.numIo = 128;
    suite.push_back(s);
  }
  return suite;
}

std::vector<GenSpec> scaleSuite() {
  struct Row {
    const char* name;
    std::size_t cells;
  };
  const Row rows[] = {
      {"scale_1k", 1000},    {"scale_5k", 5000},    {"scale_10k", 10000},
      {"scale_25k", 25000},  {"scale_50k", 50000},  {"scale_100k", 100000},
      {"scale_200k", 200000}, {"scale_500k", 500000},
  };
  std::vector<GenSpec> suite;
  for (const auto& r : rows) {
    GenSpec s = base(r.name, r.cells, 1.0, 0.70);
    s.numFixedMacros = 8;
    // Pad count grows with the perimeter, as in the real contest designs.
    s.numIo = r.cells >= 100000 ? 512 : r.cells >= 10000 ? 256 : 96;
    suite.push_back(s);
  }
  return suite;
}

GenSpec suiteSpec(const std::string& name) {
  for (const auto& suite :
       {ispd2005Suite(), ispd2006Suite(), mmsSuite(), scaleSuite()}) {
    for (const auto& s : suite) {
      if (s.name == name) return s;
    }
  }
  logError("suiteSpec: unknown circuit '%s'", name.c_str());
  std::abort();
}

}  // namespace ep
