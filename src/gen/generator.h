// Synthetic ISPD-like benchmark generator.
//
// The real ISPD 2005/2006 and MMS contest circuits are not redistributable
// inside this repository, so the experiment suites run on deterministic
// synthetic instances that preserve the statistics the placement algorithms
// react to: hypergraph sparsity (mean net degree ~3.5 with a geometric
// tail), locality (clustered "natural" netlist structure so good placements
// exist and quality differences are measurable), whitespace/utilization,
// benchmark-specific target densities, a mix of fixed blocks + boundary IO
// pads (ISPD 2005/2006 style) or movable macros + fixed IO blocks (MMS
// style). The Bookshelf reader in src/bookshelf accepts the genuine
// benchmarks when available.
#pragma once

#include <cstdint>
#include <string>

#include "model/netlist.h"

namespace ep {

struct GenSpec {
  std::string name = "synthetic";
  std::size_t numCells = 2000;   ///< movable standard cells
  std::size_t numMovableMacros = 0;
  std::size_t numFixedMacros = 0;
  std::size_t numIo = 64;        ///< fixed periphery pads
  double netsPerCell = 1.1;
  double avgNetDegree = 3.5;     ///< >= 2; geometric tail, capped at 16
  double utilization = 0.7;      ///< movable area / (rho_t * free area)
  double targetDensity = 1.0;    ///< rho_t
  double macroAreaFraction = 0.3; ///< movable area share in macros (MMS)
  double locality = 0.75;        ///< fraction of pins drawn cluster-locally
  double ioNetFraction = 0.08;   ///< nets that include an IO pad
  double rowHeight = 1.0;
  double siteWidth = 1.0;
  std::uint64_t seed = 1;
};

/// Builds a finalized, validated PlacementDB. Deterministic per spec.
/// Movable objects start at their "natural" (generator-latent) positions;
/// callers normally run mIP first anyway.
PlacementDB generateCircuit(const GenSpec& spec);

}  // namespace ep
