// The eDensity electrostatic density system (Sec. IV of the paper).
//
// Every object is a charge q_i equal to its area. The bin-level charge
// density rho feeds the spectral Poisson solver; the resulting potential
// psi and field xi = grad psi give
//
//   N(v)        = sum_i q_i psi_i          (total potential energy, Eq. 5)
//   dN/dx_i     = q_i xi_x(i)              (density gradient)
//
// Note on the paper's factor 2 (Eq. 8): lambda_0 is normalized from the
// gradient-norm ratio at the first iteration, so any constant multiplier on
// the density gradient is absorbed by lambda; we use q_i * xi like the
// public implementations of this method do.
//
// Implementation details that matter for fidelity:
//  * Local smoothing: an object narrower (shorter) than sqrt(2) bins is
//    inflated to sqrt(2)*dx (dy) with its charge density scaled down so the
//    total charge is conserved. This keeps rho resolvable on the grid.
//  * Fixed objects are stamped once, with occupancy clamped at 1 and scaled
//    by the target density rho_t, so that the electrostatic equilibrium is
//    "movables uniformly at rho_t in the free space" (zero field there).
//  * Density overflow tau (the mGP stop criterion and gamma driver) uses
//    *exact* footprints of movable objects only — fillers excluded — against
//    per-bin capacity rho_t * (binArea - fixedArea), matching the contest
//    evaluation semantics.
#pragma once

#include <span>
#include <vector>

#include "density/bingrid.h"
#include "fft/poisson.h"
#include "model/netlist.h"

namespace ep {

/// Structure-of-arrays view over the charges the optimizer moves
/// (movable cells and macros, optionally followed by fillers).
struct ChargeView {
  std::span<const double> cx;  ///< center x
  std::span<const double> cy;  ///< center y
  std::span<const double> w;   ///< width
  std::span<const double> h;   ///< height

  [[nodiscard]] std::size_t size() const { return cx.size(); }
};

class ElectroDensity {
 public:
  /// With `arena` non-null the per-bin maps are borrowed from it under
  /// "den." keys, so a cGP-stage engine reuses the mGP stage's
  /// allocations. At most one ElectroDensity may lease those keys at a
  /// time (see placement_view.h); pass nullptr for owned storage.
  /// `faults` (optional, borrowed) reaches the spectral solver's
  /// "fft.forward" fault site.
  ElectroDensity(const Rect& region, std::size_t nx, std::size_t ny,
                 double targetDensity, ScratchArena* arena = nullptr,
                 FaultInjector* faults = nullptr);

  /// Stamp the fixed objects of `db` into the base maps, reading the
  /// view's SoA geometry (db must be finalize()d; fixed positions are
  /// always fresh by the view contract). Call once.
  void stampFixed(const PlacementDB& db);

  /// Additionally stamp movable-but-not-optimized charges (e.g. standard
  /// cells pinned during the filler-only placement of Sec. VI-B) into the
  /// static base map. Raw smoothed occupancy, no rho_t scaling: these
  /// objects already sit near the target density. Cumulative until
  /// clearStatic().
  void stampStaticCharges(const ChargeView& charges);
  void clearStatic();

  /// Stamp the movable charges and solve the Poisson system. After this,
  /// energy(), gradient() and the field accessors are valid for `charges`.
  /// With a pool the scatter, the spectral solve and the per-bin maps run
  /// on the pool's threads; results are bit-identical for any thread count
  /// (deterministic scatter: BinGrid::stampAll).
  void update(const ChargeView& charges, ThreadPool* pool = nullptr);

  /// Total potential energy of the movable charges, N(v).
  [[nodiscard]] double energy() const { return energy_; }

  /// Density gradient dN/d(cx,cy) for every charge: the charge times the
  /// field averaged over its (smoothed) footprint. Output spans must have
  /// charges.size() entries.
  void gradient(const ChargeView& charges, std::span<double> gx,
                std::span<double> gy, ThreadPool* pool = nullptr) const;

  /// Exact-footprint density overflow tau of the given movable-only view
  /// (Sec. III: mGP terminates at tau <= 10%).
  [[nodiscard]] double overflow(const ChargeView& movablesOnly,
                                ThreadPool* pool = nullptr) const;

  [[nodiscard]] const BinGrid& grid() const { return grid_; }
  [[nodiscard]] double targetDensity() const { return rhoT_; }
  /// Current total charge density per bin (occupancy units, incl. fixed).
  [[nodiscard]] std::span<const double> density() const { return rho_; }
  [[nodiscard]] std::span<const double> potential() const {
    return solver_.psi();
  }
  [[nodiscard]] std::span<const double> fieldX() const {
    return solver_.fieldX();
  }
  [[nodiscard]] std::span<const double> fieldY() const {
    return solver_.fieldY();
  }

 private:
  /// Smoothed footprint of a charge: inflated dims + conserved charge.
  struct Footprint {
    Rect r;
    double scale;  // charge density multiplier so that area*scale == q
  };
  [[nodiscard]] Footprint smoothed(double cx, double cy, double w,
                                   double h) const;

  /// Zero-filled per-bin buffer: from the arena ("den." keys) when one
  /// was given, otherwise from owned storage.
  std::span<double> buf(ScratchArena* arena, const char* key, std::size_t n);

  BinGrid grid_;
  BinGrid ovfGrid_;  // coarser grid for the overflow metric (see bingrid.h)
  double rhoT_;
  PoissonSolver solver_;
  // Backing store for the maps below when no arena was supplied. Inner
  // heap buffers are pointer-stable under outer growth, so spans hold.
  std::vector<std::vector<double>> own_;
  std::span<double> fixedSolver_;  // rho_t-scaled fixed occupancy
  std::span<double> fixedExact_;   // exact fixed area per overflow bin
  std::span<double> staticCharge_; // pinned-movable charge (area) per bin
  std::span<double> movCharge_;    // stamped movable charge (area) per bin
  std::span<double> rho_;          // total occupancy fed to the solver
  std::span<double> ovfScratch_;   // per-overflow-bin movable area scratch
  double energy_ = 0.0;
};

}  // namespace ep
