// Uniform bin decomposition of the placement region (the B of Eq. 2).
//
// The grid resolution is a power of two per axis so the spectral solver can
// use the radix-2 FFT; following the paper the bin count tracks the object
// count (flat high-resolution grid, no coarsening).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "util/geometry.h"
#include "util/parallel.h"

namespace ep {

class BinGrid {
 public:
  BinGrid() = default;
  BinGrid(const Rect& region, std::size_t nx, std::size_t ny);

  /// Power-of-two resolution m with m*m >= numObjects, clamped to [32, 512].
  /// This is the *solver* grid (paper: flat high-resolution density grid).
  static std::size_t chooseResolution(std::size_t numObjects);

  /// Power-of-two resolution for the density-overflow metric, m*m >=
  /// numObjects/8, clamped to [16, 256]. Overflow bins must hold several
  /// objects: with one object per bin, a single cell straddling a bin
  /// boundary at rho_t < 1 overflows irreducibly and tau <= 10% becomes
  /// unreachable (the contest scripts use coarse bins for the same reason).
  static std::size_t chooseOverflowResolution(std::size_t numObjects);

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }
  [[nodiscard]] std::size_t numBins() const { return nx_ * ny_; }
  [[nodiscard]] double dx() const { return dx_; }
  [[nodiscard]] double dy() const { return dy_; }
  [[nodiscard]] double binArea() const { return dx_ * dy_; }
  [[nodiscard]] const Rect& region() const { return region_; }

  /// Bin index containing coordinate x (clamped to the grid).
  [[nodiscard]] std::size_t binX(double x) const;
  [[nodiscard]] std::size_t binY(double y) const;

  [[nodiscard]] Rect binRect(std::size_t ix, std::size_t iy) const {
    return {region_.lx + static_cast<double>(ix) * dx_,
            region_.ly + static_cast<double>(iy) * dy_,
            region_.lx + static_cast<double>(ix + 1) * dx_,
            region_.ly + static_cast<double>(iy + 1) * dy_};
  }

  /// Accumulate `amount` (an area) spread over the rectangle `r` clipped to
  /// the region, distributed into `map` proportionally to overlap. `r` must
  /// have positive area. Used for exact-footprint stamping.
  void stamp(const Rect& r, double amount, std::span<double> map) const;

  /// stamp() restricted to bin rows [rowBegin, rowEnd): only the slice of
  /// `r`'s footprint falling in those rows is accumulated. Stamping every
  /// object against complementary row bands reproduces stamp() exactly.
  void stampRows(const Rect& r, double amount, std::span<double> map,
                 std::size_t rowBegin, std::size_t rowEnd) const;

  /// Deterministic parallel scatter of `n` rectangles into `map`.
  /// `objFn(i, &r, &amount)` yields object i's footprint. The *output* is
  /// partitioned: each thread owns a contiguous band of bin rows and scans
  /// all objects, stamping only the slice inside its band. Every bin thus
  /// accumulates contributions in object index order whatever the thread
  /// count — bit-identical to the serial `for (i) stamp(...)` loop. The
  /// extra per-thread object scan is cheap (a y-interval test) next to the
  /// overlap arithmetic it skips. `pool == nullptr` runs serially.
  template <typename ObjFn>
  void stampAll(std::size_t n, ObjFn&& objFn, std::span<double> map,
                ThreadPool* pool) const {
    if (pool == nullptr || pool->threads() == 1 || n < 64) {
      for (std::size_t i = 0; i < n; ++i) {
        Rect r;
        double amount = 0.0;
        objFn(i, &r, &amount);
        stamp(r, amount, map);
      }
      return;
    }
    pool->parallelFor(
        ny_,
        [&](std::size_t, std::size_t rowBegin, std::size_t rowEnd) {
          for (std::size_t i = 0; i < n; ++i) {
            Rect r;
            double amount = 0.0;
            objFn(i, &r, &amount);
            stampRows(r, amount, map, rowBegin, rowEnd);
          }
        },
        1);
  }

 private:
  Rect region_;
  std::size_t nx_ = 0, ny_ = 0;
  double dx_ = 0.0, dy_ = 0.0;
};

}  // namespace ep
