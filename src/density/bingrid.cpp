#include "density/bingrid.h"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "fft/fft.h"
#include "util/checked_math.h"

namespace ep {

BinGrid::BinGrid(const Rect& region, std::size_t nx, std::size_t ny)
    : region_(region), nx_(nx), ny_(ny) {
  assert(!region.empty());
  assert(nx > 0 && ny > 0);
  // numBins() and the map indexing (iy * nx + ix) are size_t throughout,
  // but a caller-supplied resolution must not wrap the bin count itself
  // (32-bit overflow audit, util/checked_math.h).
  std::size_t bins = 0;
  if (!checkedMulSize(nx, ny, &bins) || !fitsIndex32(bins)) {
    throw std::length_error("BinGrid: bin count overflows the index space");
  }
  dx_ = region.width() / static_cast<double>(nx);
  dy_ = region.height() / static_cast<double>(ny);
}

std::size_t BinGrid::chooseResolution(std::size_t numObjects) {
  std::size_t m = 32;
  while (m < 512 && m * m < numObjects) m <<= 1;
  return m;
}

std::size_t BinGrid::chooseOverflowResolution(std::size_t numObjects) {
  std::size_t m = 16;
  while (m < 256 && m * m < numObjects / 8) m <<= 1;
  return m;
}

std::size_t BinGrid::binX(double x) const {
  const double t = (x - region_.lx) / dx_;
  const auto i = static_cast<std::ptrdiff_t>(t);
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(nx_) - 1));
}

std::size_t BinGrid::binY(double y) const {
  const double t = (y - region_.ly) / dy_;
  const auto i = static_cast<std::ptrdiff_t>(t);
  return static_cast<std::size_t>(
      std::clamp<std::ptrdiff_t>(i, 0, static_cast<std::ptrdiff_t>(ny_) - 1));
}

void BinGrid::stamp(const Rect& r, double amount, std::span<double> map) const {
  stampRows(r, amount, map, 0, ny_);
}

void BinGrid::stampRows(const Rect& r, double amount, std::span<double> map,
                        std::size_t rowBegin, std::size_t rowEnd) const {
  const Rect c = r.intersect(region_);
  if (c.empty()) return;
  const double scale = amount / r.area();
  const std::size_t x0 = binX(c.lx), x1 = binX(c.hx - 1e-12 * dx_);
  std::size_t y0 = binY(c.ly), y1 = binY(c.hy - 1e-12 * dy_);
  // Clip the footprint's row span to this band; the per-bin arithmetic is
  // unchanged, so banded stamping composes to exactly stamp().
  y0 = std::max(y0, rowBegin);
  if (y1 >= rowEnd) {
    if (rowEnd == 0) return;
    y1 = rowEnd - 1;
  }
  if (y0 > y1) return;
  // First/middle/last x split: only the boundary bins need the overlap
  // clamp — every interior bin is fully covered, so its contribution is a
  // constant (scale * oy * dx_) and the inner loop is a vectorizable
  // constant-add sweep. The per-bin expression depends only on (r, bin),
  // never on the row band, so banded stamping still composes to stamp().
  const double bxFirst = region_.lx + static_cast<double>(x0) * dx_;
  const double bxLast = region_.lx + static_cast<double>(x1) * dx_;
  const double oxFirst = intervalOverlap(c.lx, c.hx, bxFirst, bxFirst + dx_);
  const double oxLast = intervalOverlap(c.lx, c.hx, bxLast, bxLast + dx_);
  for (std::size_t iy = y0; iy <= y1; ++iy) {
    const double by0 = region_.ly + static_cast<double>(iy) * dy_;
    const double oy = intervalOverlap(c.ly, c.hy, by0, by0 + dy_);
    const double soy = scale * oy;
    double* row = map.data() + iy * nx_;
    if (x0 == x1) {
      row[x0] += soy * oxFirst;
      continue;
    }
    row[x0] += soy * oxFirst;
    const double mid = soy * dx_;
    for (std::size_t ix = x0 + 1; ix < x1; ++ix) row[ix] += mid;
    row[x1] += soy * oxLast;
  }
}

}  // namespace ep
