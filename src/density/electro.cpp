#include "density/electro.h"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace ep {

namespace {
constexpr double kSqrt2 = 1.4142135623730951;
}

std::span<double> ElectroDensity::buf(ScratchArena* arena, const char* key,
                                      std::size_t n) {
  std::span<double> s = arena != nullptr
                            ? arena->doubles(key, n)
                            : std::span<double>(own_.emplace_back(n));
  std::fill(s.begin(), s.end(), 0.0);
  return s;
}

ElectroDensity::ElectroDensity(const Rect& region, std::size_t nx,
                               std::size_t ny, double targetDensity,
                               ScratchArena* arena, FaultInjector* faults)
    : grid_(region, nx, ny),
      ovfGrid_(region, std::max<std::size_t>(16, nx / 4),
               std::max<std::size_t>(16, ny / 4)),
      rhoT_(targetDensity),
      solver_(nx, ny, grid_.dx(), grid_.dy(), arena, faults) {
  fixedSolver_ = buf(arena, "den.fixedSolver", nx * ny);
  fixedExact_ = buf(arena, "den.fixedExact", ovfGrid_.numBins());
  staticCharge_ = buf(arena, "den.staticCharge", nx * ny);
  movCharge_ = buf(arena, "den.movCharge", nx * ny);
  rho_ = buf(arena, "den.rho", nx * ny);
  ovfScratch_ = buf(arena, "den.ovfScratch", ovfGrid_.numBins());
}

void ElectroDensity::stampFixed(const PlacementDB& db) {
  const PlacementView& pv = db.view();
  assert(pv.built());
  std::fill(fixedExact_.begin(), fixedExact_.end(), 0.0);
  std::vector<double> fixedFine(grid_.numBins(), 0.0);
  const auto lx = pv.lx(), ly = pv.ly(), w = pv.w(), h = pv.h();
  const auto fixedMask = pv.fixedMask();
  for (std::size_t i = 0; i < pv.numObjects(); ++i) {
    if (fixedMask[i] == 0) continue;
    const Rect r{lx[i], ly[i], lx[i] + w[i], ly[i] + h[i]};
    const Rect clipped = r.intersect(grid_.region());
    if (clipped.empty()) continue;
    grid_.stamp(r, r.area(), fixedFine);
    ovfGrid_.stamp(r, r.area(), fixedExact_);
  }
  // Solver map: occupancy clamped at 1, scaled by rho_t (see header).
  const double binArea = grid_.binArea();
  for (std::size_t b = 0; b < fixedFine.size(); ++b) {
    fixedSolver_[b] = rhoT_ * std::min(1.0, fixedFine[b] / binArea);
  }
}

void ElectroDensity::stampStaticCharges(const ChargeView& charges) {
  for (std::size_t i = 0; i < charges.size(); ++i) {
    const Footprint f =
        smoothed(charges.cx[i], charges.cy[i], charges.w[i], charges.h[i]);
    grid_.stamp(f.r, f.r.area() * f.scale, staticCharge_);
  }
}

void ElectroDensity::clearStatic() {
  std::fill(staticCharge_.begin(), staticCharge_.end(), 0.0);
}

ElectroDensity::Footprint ElectroDensity::smoothed(double cx, double cy,
                                                   double w, double h) const {
  const double minW = kSqrt2 * grid_.dx();
  const double minH = kSqrt2 * grid_.dy();
  const double sw = std::max(w, minW);
  const double sh = std::max(h, minH);
  const double scale = (w * h) / (sw * sh);
  return {Rect{cx - sw * 0.5, cy - sh * 0.5, cx + sw * 0.5, cy + sh * 0.5},
          scale};
}

void ElectroDensity::update(const ChargeView& charges, ThreadPool* pool) {
  std::fill(movCharge_.begin(), movCharge_.end(), 0.0);
  // stampAll spreads each (area * scale) == q_i over its smoothed rect,
  // bin rows partitioned across threads (deterministic scatter).
  grid_.stampAll(
      charges.size(),
      [&](std::size_t i, Rect* r, double* amount) {
        const Footprint f =
            smoothed(charges.cx[i], charges.cy[i], charges.w[i], charges.h[i]);
        *r = f.r;
        *amount = f.r.area() * f.scale;
      },
      movCharge_, pool);
  const double invBinArea = 1.0 / grid_.binArea();
  auto mix = [&](std::size_t, std::size_t b0, std::size_t b1) {
    for (std::size_t b = b0; b < b1; ++b) {
      rho_[b] =
          fixedSolver_[b] + (movCharge_[b] + staticCharge_[b]) * invBinArea;
    }
  };
  if (pool != nullptr) {
    pool->parallelFor(rho_.size(), mix);
  } else {
    mix(0, 0, rho_.size());
  }
  solver_.solve(rho_, pool);
  // N(v) = sum_i q_i psi_i evaluated bin-wise from the stamped charge.
  double e = 0.0;
  const auto psi = solver_.psi();
  const double inv = invBinArea;
  for (std::size_t b = 0; b < rho_.size(); ++b) {
    e += movCharge_[b] * inv * psi[b];
  }
  energy_ = e;
}

void ElectroDensity::gradient(const ChargeView& charges, std::span<double> gx,
                              std::span<double> gy, ThreadPool* pool) const {
  assert(gx.size() == charges.size() && gy.size() == charges.size());
  const auto ex = solver_.fieldX();
  const auto ey = solver_.fieldY();
  const Rect& region = grid_.region();
  const std::size_t nx = grid_.nx();
  const double dx = grid_.dx(), dy = grid_.dy();
  // Pure gather: charge i reads the field under its own footprint and
  // writes gx[i]/gy[i] only, so any partition gives identical results.
  // Like stampRows, the x-bins split first/middle/last: interior bins are
  // fully covered (ox == dx), so their field contribution is a plain
  // vectorizable sum scaled once per row.
  auto work = [&](std::size_t, std::size_t i0, std::size_t i1) {
    for (std::size_t i = i0; i < i1; ++i) {
      const Footprint f =
          smoothed(charges.cx[i], charges.cy[i], charges.w[i], charges.h[i]);
      const Rect c = f.r.intersect(region);
      double fx = 0.0, fy = 0.0;
      if (!c.empty()) {
        const std::size_t x0 = grid_.binX(c.lx);
        const std::size_t x1 = grid_.binX(c.hx - 1e-12 * dx);
        const std::size_t y0 = grid_.binY(c.ly);
        const std::size_t y1 = grid_.binY(c.hy - 1e-12 * dy);
        const double bxFirst = region.lx + static_cast<double>(x0) * dx;
        const double bxLast = region.lx + static_cast<double>(x1) * dx;
        const double oxF = intervalOverlap(c.lx, c.hx, bxFirst, bxFirst + dx);
        const double oxL = intervalOverlap(c.lx, c.hx, bxLast, bxLast + dx);
        for (std::size_t iy = y0; iy <= y1; ++iy) {
          const double by0 = region.ly + static_cast<double>(iy) * dy;
          const double oy = intervalOverlap(c.ly, c.hy, by0, by0 + dy);
          const double soy = f.scale * oy;
          const double* exRow = ex.data() + iy * nx;
          const double* eyRow = ey.data() + iy * nx;
          if (x0 == x1) {
            const double charge = soy * oxF;
            fx += charge * exRow[x0];
            fy += charge * eyRow[x0];
            continue;
          }
          double sx = 0.0, sy = 0.0;
          for (std::size_t ix = x0 + 1; ix < x1; ++ix) {
            sx += exRow[ix];
            sy += eyRow[ix];
          }
          fx += soy * (oxF * exRow[x0] + dx * sx + oxL * exRow[x1]);
          fy += soy * (oxF * eyRow[x0] + dx * sy + oxL * eyRow[x1]);
        }
      }
      gx[i] = fx;
      gy[i] = fy;
    }
  };
  if (pool != nullptr) {
    pool->parallelFor(charges.size(), work, 256);
  } else {
    work(0, 0, charges.size());
  }
}

double ElectroDensity::overflow(const ChargeView& movablesOnly,
                                ThreadPool* pool) const {
  // Per-iteration call on the Nesterov hot path: reuse the member scratch
  // instead of allocating a fresh per-bin vector every time.
  const std::span<double> area = ovfScratch_;
  std::fill(area.begin(), area.end(), 0.0);
  ovfGrid_.stampAll(
      movablesOnly.size(),
      [&](std::size_t i, Rect* r, double* amount) {
        const double w = movablesOnly.w[i], h = movablesOnly.h[i];
        *r = Rect{movablesOnly.cx[i] - w * 0.5, movablesOnly.cy[i] - h * 0.5,
                  movablesOnly.cx[i] + w * 0.5, movablesOnly.cy[i] + h * 0.5};
        *amount = r->area();
      },
      area, pool);
  double totalMovable = 0.0;
  for (std::size_t i = 0; i < movablesOnly.size(); ++i) {
    totalMovable += movablesOnly.w[i] * movablesOnly.h[i];
  }
  if (totalMovable <= 0.0) return 0.0;
  const double binArea = ovfGrid_.binArea();
  double over = 0.0;
  for (std::size_t b = 0; b < area.size(); ++b) {
    const double capacity =
        rhoT_ * std::max(0.0, binArea - fixedExact_[b]);
    over += std::max(0.0, area[b] - capacity);
  }
  return over / totalMovable;
}

}  // namespace ep
