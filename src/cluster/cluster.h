// Multilevel clustering (coarsening/uncoarsening) for the V-cycle flow.
//
// Production analytic placers (NTUplace, mPL, RePlAce) reach million-cell
// designs by running the expensive global-placement engine on a coarsened
// hypergraph and progressively uncoarsening. This module provides that
// layer for ePlace:
//
//   * buildClusterLadder() — deterministic best-choice coarsening. Each
//     level matches movable standard cells to their highest-affinity
//     unmatched neighbor (affinity = sum of w_e/(|e|-1) over shared nets,
//     the classic clique-model score) and collapses matched pairs into
//     clusters whose area is the exact sum of the member areas. Fixed
//     objects, IO pads and movable macros pass through 1:1, so the fixed
//     charge seen by the density model is identical at every level. Nets
//     are rewired to clusters; pins that collapse onto the same cluster
//     are merged (cluster pins sit at the cluster center, offset 0 — the
//     members will be re-seeded there on uncoarsening) and nets left with
//     fewer than two distinct endpoints are dropped.
//   * uncoarsenPositions() — seeds level k-1 positions from the level-k
//     placement: every pass-through object copies its coarse position
//     bit-exactly, every multi-member cluster places its members at the
//     cluster center.
//
// The coarsening is serial by construction, so its output is bit-identical
// at any thread count — the determinism contract every kernel in this repo
// already honors. See docs/SCALING.md for the V-cycle picture.
#pragma once

#include <cstdint>
#include <vector>

#include "model/netlist.h"
#include "util/status.h"

namespace ep {

class RuntimeContext;

struct ClusterConfig {
  /// Ladder depth cap (levels actually built also depend on the ratio and
  /// floor below).
  std::size_t maxLevels = 6;
  /// Stop adding levels once a level shrinks the movable count by less
  /// than this factor (clusters/fine >= stopRatio means matching has
  /// saturated and further levels buy nothing).
  double stopRatio = 0.75;
  /// Never coarsen below this many movable objects — the coarsest level
  /// must stay large enough for the density model to be meaningful.
  std::size_t minMovable = 3000;
  /// Nets above this degree are skipped when scoring (a huge net connects
  /// everything to everything and carries no locality signal).
  std::size_t maxScoreNetDegree = 16;
  /// Cluster area cap in multiples of the mean movable area at that level;
  /// keeps one cluster from swallowing a neighborhood.
  double maxClusterAreaFactor = 24.0;
};

/// One coarsening step. `coarse` is a fully finalized PlacementDB built
/// from the fine level (the flat instance for levels[0], the previous
/// level's `coarse` otherwise).
struct ClusterLevel {
  PlacementDB coarse;
  /// fine object id -> coarse object id (every fine object maps exactly
  /// once: movables to their cluster, pass-throughs to their copy).
  std::vector<std::int32_t> fineToCoarse;
  /// Members CSR over coarse object ids: fine ids merged into coarse
  /// object c are members[memberStart[c] .. memberStart[c+1]).
  std::vector<std::int32_t> memberStart;
  std::vector<std::int32_t> members;
  std::size_t fineObjects = 0;
  std::size_t fineMovable = 0;
  std::size_t fineNets = 0;
};

/// The coarsening ladder: levels[0] is built from the flat instance,
/// levels.back() is the coarsest. Empty when the instance was already at
/// or below the coarsening floor.
struct ClusterLadder {
  std::vector<ClusterLevel> levels;
  [[nodiscard]] bool empty() const { return levels.empty(); }
  [[nodiscard]] std::size_t depth() const { return levels.size(); }
};

/// Builds the ladder from a finalized, sanitized instance. Deterministic:
/// depends only on `db` and `cfg`, never on thread count or wall clock.
/// `ctx` supplies the log sink and stats registry (nullptr = process
/// default). Fails with kInvalidInput when `db` is not finalized/valid.
StatusOr<ClusterLadder> buildClusterLadder(const PlacementDB& db,
                                           const ClusterConfig& cfg = {},
                                           RuntimeContext* ctx = nullptr);

/// Seeds fine-level positions from the coarse placement of `level`:
/// single-member coarse objects copy their position bit-exactly, clusters
/// place every member at the cluster center. `fine` must be the instance
/// the level was built from (object count is checked).
Status uncoarsenPositions(const ClusterLevel& level, PlacementDB& fine);

}  // namespace ep
