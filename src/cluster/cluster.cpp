#include "cluster/cluster.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "util/context.h"
#include "util/log.h"

namespace ep {

namespace {

/// True for objects the matcher may merge: movable standard cells. Fixed
/// objects, IO pads and movable macros pass through 1:1 (macros go to mLG,
/// fixed charge must stay bit-identical per level).
bool clusterable(const Object& o) {
  return !o.fixed && o.kind == ObjKind::kStdCell;
}

/// Cluster dims for a merged area: height snapped to the row pitch (so the
/// coarse instance still looks like a standard-cell design to the density
/// model), width chosen as area/height so the area is conserved exactly up
/// to one rounding.
void clusterDims(double area, double rowH, double* w, double* h) {
  double hh = std::sqrt(area);
  if (rowH > 0.0) {
    hh = std::max(rowH, std::round(hh / rowH) * rowH);
  }
  *h = hh;
  *w = area / hh;
}

/// One best-choice matching pass over the fine instance. Returns the
/// coarsening level, or an empty optional-equivalent via matched count so
/// the caller can stop when matching saturates.
ClusterLevel buildOneLevel(const PlacementDB& fine, const ClusterConfig& cfg,
                           int levelIndex, std::size_t* mergedOut) {
  const PlacementView& pv = fine.view();
  const auto objNetStart = pv.objNetStart();
  const auto objNetIds = pv.objNetIds();
  const auto netPinStart = pv.netPinStart();
  const auto pinObj = pv.pinObj();
  const auto netWeight = pv.netWeight();
  const std::size_t nObj = fine.objects.size();

  const double totalArea = fine.totalMovableArea();
  const std::size_t nMov = std::max<std::size_t>(1, fine.numMovable());
  const double areaCap =
      cfg.maxClusterAreaFactor * (totalArea / static_cast<double>(nMov));

  // --- best-choice matching (serial, index order => deterministic) --------
  std::vector<std::int32_t> mate(nObj, -1);
  std::vector<double> score(nObj, 0.0);
  std::vector<std::int32_t> touched;
  touched.reserve(64);
  std::size_t merged = 0;
  for (std::size_t i = 0; i < nObj; ++i) {
    const auto ii = static_cast<std::int32_t>(i);
    if (mate[i] != -1 || !clusterable(fine.objects[i])) continue;
    const std::size_t nb = static_cast<std::size_t>(objNetStart[i]);
    const std::size_t ne = static_cast<std::size_t>(objNetStart[i + 1]);
    touched.clear();
    for (std::size_t k = nb; k < ne; ++k) {
      const auto net = static_cast<std::size_t>(objNetIds[k]);
      const std::size_t pb = static_cast<std::size_t>(netPinStart[net]);
      const std::size_t pe = static_cast<std::size_t>(netPinStart[net + 1]);
      const std::size_t deg = pe - pb;
      if (deg < 2 || deg > cfg.maxScoreNetDegree) continue;
      const double s = netWeight[net] / static_cast<double>(deg - 1);
      for (std::size_t p = pb; p < pe; ++p) {
        const std::int32_t j = pinObj[p];
        if (j == ii) continue;
        const auto ju = static_cast<std::size_t>(j);
        if (mate[ju] != -1 || !clusterable(fine.objects[ju])) continue;
        if (score[ju] == 0.0) touched.push_back(j);
        score[ju] += s;
      }
    }
    // Highest affinity wins; ties break to the smallest index so the
    // result is independent of the touch order.
    std::int32_t best = -1;
    double bestScore = 0.0;
    for (const std::int32_t j : touched) {
      const auto ju = static_cast<std::size_t>(j);
      const double sj = score[ju];
      if (sj > bestScore || (sj == bestScore && best != -1 && j < best)) {
        if (fine.objects[i].area() + fine.objects[ju].area() <= areaCap) {
          best = j;
          bestScore = sj;
        }
      }
      score[ju] = 0.0;
    }
    if (best != -1) {
      mate[i] = best;
      mate[static_cast<std::size_t>(best)] = ii;
      ++merged;
    }
  }
  *mergedOut = merged;

  ClusterLevel lvl;
  lvl.fineObjects = nObj;
  lvl.fineMovable = fine.numMovable();
  lvl.fineNets = fine.nets.size();
  if (merged == 0) return lvl;  // matching saturated; caller stops

  // --- assemble the coarse instance --------------------------------------
  PlacementDB& cdb = lvl.coarse;
  cdb.name = fine.name + "_L" + std::to_string(levelIndex);
  cdb.region = fine.region;
  cdb.targetDensity = fine.targetDensity;
  cdb.rows = fine.rows;
  const double rowH = fine.rows.empty() ? 0.0 : fine.rows.front().height;

  lvl.fineToCoarse.assign(nObj, -1);
  lvl.memberStart.reserve(nObj - merged + 1);
  lvl.members.reserve(nObj);
  cdb.objects.reserve(nObj - merged);
  lvl.memberStart.push_back(0);
  for (std::size_t i = 0; i < nObj; ++i) {
    const std::int32_t m = mate[i];
    if (m != -1 && static_cast<std::size_t>(m) < i) continue;  // second half
    const auto cid = static_cast<std::int32_t>(cdb.objects.size());
    lvl.fineToCoarse[i] = cid;
    lvl.members.push_back(static_cast<std::int32_t>(i));
    const Object& a = fine.objects[i];
    if (m == -1) {
      cdb.objects.push_back(a);  // pass-through, bit-identical geometry
    } else {
      const auto mu = static_cast<std::size_t>(m);
      lvl.fineToCoarse[mu] = cid;
      lvl.members.push_back(m);
      const Object& b = fine.objects[mu];
      Object c;
      c.name = "cl" + std::to_string(levelIndex) + "_" + std::to_string(cid);
      c.kind = ObjKind::kStdCell;
      c.fixed = false;
      const double area = a.area() + b.area();
      clusterDims(area, rowH, &c.w, &c.h);
      const Point ca = a.center();
      const Point cb = b.center();
      const double wa = a.area() / area;
      const double wb = b.area() / area;
      c.setCenter(wa * ca.x + wb * cb.x, wa * ca.y + wb * cb.y);
      cdb.objects.push_back(std::move(c));
    }
    lvl.memberStart.push_back(static_cast<std::int32_t>(lvl.members.size()));
  }

  // Rewire nets: pins collapse onto coarse endpoints; duplicates on the
  // same endpoint merge (first pin wins, cluster pins move to the center);
  // nets left with < 2 distinct endpoints no longer exert force and drop.
  cdb.nets.reserve(fine.nets.size());
  std::vector<std::int32_t> seenAt(cdb.objects.size(), -1);
  for (std::size_t n = 0; n < fine.nets.size(); ++n) {
    const Net& fn = fine.nets[n];
    Net cn;
    cn.name = fn.name;
    cn.weight = fn.weight;
    cn.pins.reserve(fn.pins.size());
    for (const PinRef& p : fn.pins) {
      const std::int32_t cid = lvl.fineToCoarse[static_cast<std::size_t>(p.obj)];
      if (seenAt[static_cast<std::size_t>(cid)] == static_cast<std::int32_t>(n)) {
        continue;  // second pin on the same coarse object
      }
      seenAt[static_cast<std::size_t>(cid)] = static_cast<std::int32_t>(n);
      PinRef cp = p;
      cp.obj = cid;
      const bool mergedObj =
          lvl.memberStart[static_cast<std::size_t>(cid) + 1] -
              lvl.memberStart[static_cast<std::size_t>(cid)] >
          1;
      if (mergedObj) {
        cp.ox = 0.0;  // cluster pins sit at the cluster center
        cp.oy = 0.0;
      }
      cn.pins.push_back(cp);
    }
    if (cn.pins.size() >= 2) cdb.nets.push_back(std::move(cn));
  }
  cdb.finalize();
  return lvl;
}

}  // namespace

StatusOr<ClusterLadder> buildClusterLadder(const PlacementDB& db,
                                           const ClusterConfig& cfg,
                                           RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  if (const Status v = db.validate(); !v.ok()) {
    return Status::invalidInput("buildClusterLadder: " + v.message());
  }
  ClusterLadder ladder;
  const PlacementDB* fine = &db;
  for (std::size_t level = 0; level < cfg.maxLevels; ++level) {
    if (fine->numMovable() <= cfg.minMovable) break;
    std::size_t merged = 0;
    ClusterLevel lvl =
        buildOneLevel(*fine, cfg, static_cast<int>(level), &merged);
    if (merged == 0) break;
    const std::size_t fineMov = lvl.fineMovable;
    const std::size_t coarseMov = lvl.coarse.numMovable();
    rc.log().info(
        "cluster: level %zu: %zu -> %zu movable (%zu merges), %zu -> %zu nets",
        level, fineMov, coarseMov, merged, lvl.fineNets,
        lvl.coarse.nets.size());
    rc.stats().add("cluster.levels", 1.0);
    rc.stats().add("cluster.merges", static_cast<double>(merged));
    ladder.levels.push_back(std::move(lvl));
    fine = &ladder.levels.back().coarse;
    if (static_cast<double>(coarseMov) >=
        cfg.stopRatio * static_cast<double>(fineMov)) {
      break;  // diminishing returns
    }
  }
  return ladder;
}

Status uncoarsenPositions(const ClusterLevel& level, PlacementDB& fine) {
  if (fine.objects.size() != level.fineObjects) {
    return Status::invalidInput(
        "uncoarsenPositions: fine instance has " +
        std::to_string(fine.objects.size()) + " objects, level was built on " +
        std::to_string(level.fineObjects));
  }
  const PlacementDB& coarse = level.coarse;
  PlacementView& pv = fine.view();
  for (std::size_t c = 0; c < coarse.objects.size(); ++c) {
    const Object& co = coarse.objects[c];
    const auto mb = static_cast<std::size_t>(level.memberStart[c]);
    const auto me = static_cast<std::size_t>(level.memberStart[c + 1]);
    if (me - mb == 1) {
      // Pass-through: copy the lower-left corner bit-exactly (same dims).
      const auto f = static_cast<std::size_t>(level.members[mb]);
      fine.objects[f].lx = co.lx;
      fine.objects[f].ly = co.ly;
      pv.setPosition(level.members[mb], co.lx, co.ly);
    } else {
      const Point ctr = co.center();
      for (std::size_t k = mb; k < me; ++k) {
        const auto f = static_cast<std::size_t>(level.members[k]);
        fine.objects[f].setCenter(ctr.x, ctr.y);
        pv.setPosition(level.members[k], fine.objects[f].lx,
                       fine.objects[f].ly);
      }
    }
  }
  return Status::okStatus();
}

}  // namespace ep
