// Bookshelf (UCLA / ISPD contest) format reader and writer.
//
// Supports the subset the ISPD 2005/2006 and MMS suites use:
//   .aux    file list,   .nodes  objects (+terminal flag),
//   .nets   hyperedges with pin offsets from node centers,
//   .pl     placements (+/FIXED),      .scl  core rows,
//   .wts    net weights (optional).
//
// The paper's benchmarks are distributed in exactly this format, so the
// genuine circuits can be run through this repo unmodified; the bundled
// experiments use the synthetic generator (see src/gen) which round-trips
// through this module in the tests.
//
// All failures come back as a typed ep::Status — kIo for unopenable files,
// kInvalidInput for malformed content — with "file:line:" locations on
// parse errors. Truncated files are detected against the declared
// NumNodes/NumNets/NumPins/NetDegree counts; a corrupt file never crashes
// the reader.
#pragma once

#include <string>

#include "model/netlist.h"
#include "util/status.h"

namespace ep {

class RuntimeContext;

/// Reads `<aux>` (path to the .aux file) and fills `db` (finalized).
/// Object kinds: terminals with row-sized height stay kIo, larger ones are
/// kMacro; movable objects taller than one row are kMacro.
/// `ctx` supplies the log sink and the "bookshelf.line" fault site;
/// nullptr resolves to the process-default context.
Status readBookshelf(const std::string& auxPath, PlacementDB& db,
                     RuntimeContext* ctx = nullptr);

/// Writes db as `<dir>/<base>.{aux,nodes,nets,pl,scl,wts}`.
Status writeBookshelf(const std::string& dir, const std::string& base,
                      const PlacementDB& db, RuntimeContext* ctx = nullptr);

}  // namespace ep
