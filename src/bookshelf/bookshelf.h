// Bookshelf (UCLA / ISPD contest) format reader and writer.
//
// Supports the subset the ISPD 2005/2006 and MMS suites use:
//   .aux    file list,   .nodes  objects (+terminal flag),
//   .nets   hyperedges with pin offsets from node centers,
//   .pl     placements (+/FIXED),      .scl  core rows,
//   .wts    net weights (optional).
//
// The paper's benchmarks are distributed in exactly this format, so the
// genuine circuits can be run through this repo unmodified; the bundled
// experiments use the synthetic generator (see src/gen) which round-trips
// through this module in the tests.
//
// All failures come back as a typed ep::Status — kIo for unopenable files,
// kInvalidInput for malformed content — with "file:line:" locations on
// parse errors. Truncated files are detected against the declared
// NumNodes/NumNets/NumPins/NetDegree counts; a corrupt file never crashes
// the reader.
//
// The reader is a streaming two-pass front-end (docs/SCALING.md): a cheap
// counting pass (scanBookshelfCounts — declared header counts when present,
// a line count otherwise) feeds a capacity plan (model/capacity.h) that is
// charged against the RuntimeContext MemoryBudget *before* any model array
// is sized, then the fill pass assembles into exactly-reserved vectors. On
// 100k+ instances peak memory is O(cells) with zero vector regrowth, and a
// design that cannot fit a budgeted job is rejected up front with a typed
// kResourceExhausted.
#pragma once

#include <string>

#include "model/netlist.h"
#include "util/status.h"

namespace ep {

class RuntimeContext;

/// Instance counts discovered by the counting pass. `declared` is true
/// when every count came from a header (NumNodes/NumNets/NumPins/NumRows);
/// false means at least one was recovered by counting lines (header-less
/// or nonstandard file). Counts are advisory for reservation — the fill
/// pass still validates the declared counts against reality.
struct BookshelfCounts {
  std::size_t objects = 0;
  std::size_t nets = 0;
  std::size_t pins = 0;
  std::size_t rows = 0;
  bool declared = false;
};

/// Counting pass: resolves the .aux file list and reads just far enough
/// into .nodes/.nets/.scl to learn the instance counts (header-less files
/// are counted line by line). Never touches the fault injector — the
/// durable-I/O fault sites fire only on the fill pass — and allocates O(1)
/// beyond a line buffer. kIo when a listed file cannot be opened.
/// Serving uses this for capacity-estimated admission of Bookshelf jobs.
StatusOr<BookshelfCounts> scanBookshelfCounts(const std::string& auxPath,
                                              RuntimeContext* ctx = nullptr);

/// Reads `<aux>` (path to the .aux file) and fills `db` (finalized).
/// Object kinds: terminals with row-sized height stay kIo, larger ones are
/// kMacro; movable objects taller than one row are kMacro.
/// Runs the counting pass first and charges the resulting capacity plan
/// against `ctx`'s MemoryBudget for the duration of assembly
/// (kResourceExhausted when the instance cannot fit a budgeted job;
/// kInvalidInput when counts exceed the 32-bit index space).
/// `ctx` supplies the log sink and the "bookshelf.line" fault site;
/// nullptr resolves to the process-default context.
Status readBookshelf(const std::string& auxPath, PlacementDB& db,
                     RuntimeContext* ctx = nullptr);

/// Writes db as `<dir>/<base>.{aux,nodes,nets,pl,scl,wts}`.
Status writeBookshelf(const std::string& dir, const std::string& base,
                      const PlacementDB& db, RuntimeContext* ctx = nullptr);

}  // namespace ep
