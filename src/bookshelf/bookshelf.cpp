#include "bookshelf/bookshelf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "util/context.h"
#include "util/fault_injector.h"
#include "util/log.h"

namespace ep {

namespace {

std::string dirOf(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? std::string(".") : path.substr(0, pos);
}

/// Line-oriented scanner: skips comments (#...) and blanks, tracks the
/// 1-based line number for error locations, and implements the
/// "bookshelf.line" fault site (kTruncate = premature EOF).
class LineScanner {
 public:
  LineScanner(std::istream& in, std::string file, RuntimeContext& rc)
      : in_(in), file_(std::move(file)), rc_(rc) {}

  bool next(std::string& line) {
    FaultInjector& inj = rc_.faults();
    while (std::getline(in_, line)) {
      ++lineNo_;
      if (inj.active()) {
        if (const FaultSpec* f = inj.fire("bookshelf.line")) {
          if (f->kind == FaultKind::kTruncate) return false;
          // NaN/spike on a text stream degrade to garbling the line.
          line = line.substr(0, line.size() / 2);
        }
      }
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const auto b = line.find_first_not_of(" \t\r\n");
      if (b == std::string::npos) continue;
      const auto e = line.find_last_not_of(" \t\r\n");
      line = line.substr(b, e - b + 1);
      if (!line.empty()) return true;
    }
    return false;
  }

  [[nodiscard]] int line() const { return lineNo_; }
  [[nodiscard]] const std::string& file() const { return file_; }

  /// "file:line: msg" as an InvalidInput status.
  [[nodiscard]] Status fail(const std::string& msg) const {
    std::ostringstream os;
    os << file_ << ":" << lineNo_ << ": " << msg;
    rc_.log().warn("bookshelf: %s", os.str().c_str());
    return Status::invalidInput(os.str());
  }

 private:
  std::istream& in_;
  std::string file_;
  RuntimeContext& rc_;
  int lineNo_ = 0;
};

Status ioFail(RuntimeContext& rc, const std::string& msg) {
  rc.log().warn("bookshelf: %s", msg.c_str());
  return Status::ioError(msg);
}

/// Splits "Key : v1 v2" into tokens with ':' treated as whitespace.
std::vector<std::string> tokens(const std::string& line) {
  std::string s = line;
  std::replace(s.begin(), s.end(), ':', ' ');
  std::istringstream iss(s);
  std::vector<std::string> out;
  std::string t;
  while (iss >> t) out.push_back(t);
  return out;
}

/// strtod with a full-consumption check — "12abc" and "abc" both fail.
bool parseNum(const std::string& tok, double& out) {
  if (tok.empty()) return false;
  char* end = nullptr;
  out = std::strtod(tok.c_str(), &end);
  return end == tok.c_str() + tok.size() && std::isfinite(out);
}

bool parseCount(const std::string& tok, long& out) {
  double d = 0.0;
  if (!parseNum(tok, d) || d < 0.0 || d != std::floor(d)) return false;
  out = static_cast<long>(d);
  return true;
}

Status readBookshelfImpl(const std::string& auxPath, PlacementDB& db,
                         RuntimeContext& rc) {
  std::ifstream aux(auxPath);
  if (!aux) return ioFail(rc, "cannot open " + auxPath);
  std::string nodesFile, netsFile, plFile, sclFile, wtsFile;
  std::string line;
  {
    LineScanner sc(aux, auxPath, rc);
    while (sc.next(line)) {
      for (const auto& t : tokens(line)) {
        auto ends = [&](const char* suffix) {
          return t.size() > std::strlen(suffix) &&
                 t.compare(t.size() - std::strlen(suffix), std::string::npos,
                           suffix) == 0;
        };
        if (ends(".nodes")) nodesFile = t;
        if (ends(".nets")) netsFile = t;
        if (ends(".pl")) plFile = t;
        if (ends(".scl")) sclFile = t;
        if (ends(".wts")) wtsFile = t;
      }
    }
  }
  if (nodesFile.empty() || netsFile.empty() || plFile.empty()) {
    rc.log().warn("bookshelf: %s lists no nodes/nets/pl", auxPath.c_str());
    return Status::invalidInput(auxPath + " lists no nodes/nets/pl");
  }
  const std::string dir = dirOf(auxPath) + "/";

  db = PlacementDB{};
  {
    const auto slash = auxPath.find_last_of('/');
    std::string basename =
        slash == std::string::npos ? auxPath : auxPath.substr(slash + 1);
    const auto dot = basename.find_last_of('.');
    db.name = dot == std::string::npos ? basename : basename.substr(0, dot);
  }

  std::unordered_map<std::string, std::int32_t> nameToObj;

  // ---- .nodes ----
  {
    std::ifstream in(dir + nodesFile);
    if (!in) return ioFail(rc, "cannot open " + nodesFile);
    LineScanner sc(in, nodesFile, rc);
    long declared = -1;
    while (sc.next(line)) {
      const auto t = tokens(line);
      if (t.empty() || t[0] == "UCLA" || t[0] == "NumTerminals") continue;
      if (t[0] == "NumNodes") {
        if (t.size() < 2 || !parseCount(t[1], declared)) {
          return sc.fail("bad NumNodes count");
        }
        continue;
      }
      if (t.size() < 3) return sc.fail("truncated nodes line: " + line);
      Object o;
      o.name = t[0];
      if (!parseNum(t[1], o.w) || !parseNum(t[2], o.h)) {
        return sc.fail("non-numeric node dims: " + line);
      }
      o.fixed = t.size() > 3 && (t[3] == "terminal" || t[3] == "terminal_NI");
      if (nameToObj.count(o.name) != 0) {
        return sc.fail("duplicate node " + o.name);
      }
      nameToObj[o.name] = static_cast<std::int32_t>(db.objects.size());
      db.objects.push_back(std::move(o));
    }
    if (declared >= 0 && declared != static_cast<long>(db.objects.size())) {
      return sc.fail("NumNodes declares " + std::to_string(declared) +
                     " but file has " + std::to_string(db.objects.size()) +
                     " (truncated file?)");
    }
  }

  // ---- .nets ----
  {
    std::ifstream in(dir + netsFile);
    if (!in) return ioFail(rc, "cannot open " + netsFile);
    LineScanner sc(in, netsFile, rc);
    Net* cur = nullptr;
    std::size_t remaining = 0;
    long declaredNets = -1, declaredPins = -1;
    std::size_t totalPins = 0;
    auto netComplete = [&]() -> bool { return cur == nullptr || remaining == 0; };
    while (sc.next(line)) {
      const auto t = tokens(line);
      if (t.empty() || t[0] == "UCLA") continue;
      if (t[0] == "NumNets") {
        if (t.size() < 2 || !parseCount(t[1], declaredNets)) {
          return sc.fail("bad NumNets count");
        }
        continue;
      }
      if (t[0] == "NumPins") {
        if (t.size() < 2 || !parseCount(t[1], declaredPins)) {
          return sc.fail("bad NumPins count");
        }
        continue;
      }
      if (t[0] == "NetDegree") {
        if (!netComplete()) {
          return sc.fail("net " + db.nets.back().name + " expects " +
                         std::to_string(db.nets.back().pins.size() + remaining) +
                         " pins, got " +
                         std::to_string(db.nets.back().pins.size()));
        }
        long degree = 0;
        if (t.size() < 2 || !parseCount(t[1], degree)) {
          return sc.fail("bad NetDegree: " + line);
        }
        if (degree == 0) return sc.fail("net with zero pins: " + line);
        Net net;
        net.name = t.size() > 2 ? t[2] : ("net" + std::to_string(db.nets.size()));
        remaining = static_cast<std::size_t>(degree);
        db.nets.push_back(std::move(net));
        cur = &db.nets.back();
        continue;
      }
      if (cur == nullptr || remaining == 0) {
        return sc.fail("pin line outside a net: " + line);
      }
      const auto it = nameToObj.find(t[0]);
      if (it == nameToObj.end()) {
        return sc.fail("unknown node in net: " + t[0]);
      }
      PinRef pin;
      pin.obj = it->second;
      // "name I : ox oy" — direction token optional, offsets optional.
      std::size_t k = 1;
      if (k < t.size() && (t[k] == "I" || t[k] == "O" || t[k] == "B")) {
        pin.dir = t[k] == "I"   ? PinDir::kInput
                  : t[k] == "O" ? PinDir::kOutput
                                : PinDir::kUnknown;
        ++k;
      }
      if (k + 1 < t.size()) {
        if (!parseNum(t[k], pin.ox) || !parseNum(t[k + 1], pin.oy)) {
          return sc.fail("non-numeric pin offset: " + line);
        }
      }
      cur->pins.push_back(pin);
      ++totalPins;
      --remaining;
    }
    if (!netComplete()) {
      return sc.fail("net " + db.nets.back().name + " expects " +
                     std::to_string(db.nets.back().pins.size() + remaining) +
                     " pins, got " +
                     std::to_string(db.nets.back().pins.size()) +
                     " (truncated file?)");
    }
    if (declaredNets >= 0 && declaredNets != static_cast<long>(db.nets.size())) {
      return sc.fail("NumNets declares " + std::to_string(declaredNets) +
                     " but file has " + std::to_string(db.nets.size()));
    }
    if (declaredPins >= 0 && declaredPins != static_cast<long>(totalPins)) {
      return sc.fail("NumPins declares " + std::to_string(declaredPins) +
                     " but file has " + std::to_string(totalPins));
    }
  }

  // ---- .wts (optional) ----
  if (!wtsFile.empty()) {
    std::ifstream in(dir + wtsFile);
    if (in) {
      LineScanner sc(in, wtsFile, rc);
      std::unordered_map<std::string, std::size_t> netIdx;
      for (std::size_t i = 0; i < db.nets.size(); ++i) {
        netIdx[db.nets[i].name] = i;
      }
      while (sc.next(line)) {
        const auto t = tokens(line);
        if (t.size() >= 2) {
          const auto it = netIdx.find(t[0]);
          if (it == netIdx.end()) continue;
          double w = 0.0;
          if (!parseNum(t[1], w)) {
            return sc.fail("non-numeric net weight: " + line);
          }
          db.nets[it->second].weight = w;
        }
      }
    }
  }

  // ---- .pl ----
  {
    std::ifstream in(dir + plFile);
    if (!in) return ioFail(rc, "cannot open " + plFile);
    LineScanner sc(in, plFile, rc);
    while (sc.next(line)) {
      const auto t = tokens(line);
      if (t.empty() || t[0] == "UCLA") continue;
      if (t.size() < 3) continue;
      const auto it = nameToObj.find(t[0]);
      if (it == nameToObj.end()) continue;
      auto& o = db.objects[static_cast<std::size_t>(it->second)];
      if (!parseNum(t[1], o.lx) || !parseNum(t[2], o.ly)) {
        return sc.fail("non-numeric coordinates: " + line);
      }
      for (const auto& tok : t) {
        if (tok == "/FIXED" || tok == "FIXED") o.fixed = true;
      }
    }
  }

  // ---- .scl ----
  double rowMinX = std::numeric_limits<double>::max(), rowMaxX = -rowMinX;
  double rowMinY = rowMinX, rowMaxY = -rowMinX;
  if (!sclFile.empty()) {
    std::ifstream in(dir + sclFile);
    if (!in) return ioFail(rc, "cannot open " + sclFile);
    LineScanner sc(in, sclFile, rc);
    Row row;
    bool inRow = false;
    auto rowNum = [&](const std::string& tok, double& out) -> bool {
      return parseNum(tok, out);
    };
    while (sc.next(line)) {
      const auto t = tokens(line);
      if (t.empty()) continue;
      if (t[0] == "CoreRow") {
        row = Row{};
        inRow = true;
      } else if (inRow && t[0] == "Coordinate" && t.size() > 1) {
        if (!rowNum(t[1], row.ly)) return sc.fail("bad Coordinate: " + line);
      } else if (inRow && t[0] == "Height" && t.size() > 1) {
        if (!rowNum(t[1], row.height)) return sc.fail("bad Height: " + line);
      } else if (inRow && t[0] == "Sitewidth" && t.size() > 1) {
        if (!rowNum(t[1], row.siteWidth)) {
          return sc.fail("bad Sitewidth: " + line);
        }
      } else if (inRow && t[0] == "SubrowOrigin" && t.size() > 1) {
        if (!rowNum(t[1], row.lx)) return sc.fail("bad SubrowOrigin: " + line);
        for (std::size_t k = 2; k + 1 < t.size(); ++k) {
          if (t[k] == "NumSites") {
            long sites = 0;
            if (!parseCount(t[k + 1], sites)) {
              return sc.fail("bad NumSites: " + line);
            }
            row.numSites = static_cast<std::int32_t>(sites);
          }
        }
      } else if (t[0] == "End" && inRow) {
        if (row.height > 0.0 && row.numSites > 0) {
          db.rows.push_back(row);
          rowMinX = std::min(rowMinX, row.lx);
          rowMaxX = std::max(rowMaxX, row.hx());
          rowMinY = std::min(rowMinY, row.ly);
          rowMaxY = std::max(rowMaxY, row.ly + row.height);
        }
        inRow = false;
      }
    }
  }

  // Region: bounding box of rows, else of all objects.
  if (!db.rows.empty()) {
    db.region = {rowMinX, rowMinY, rowMaxX, rowMaxY};
  } else {
    Rect r{1e30, 1e30, -1e30, -1e30};
    for (const auto& o : db.objects) {
      r.lx = std::min(r.lx, o.lx);
      r.ly = std::min(r.ly, o.ly);
      r.hx = std::max(r.hx, o.lx + o.w);
      r.hy = std::max(r.hy, o.ly + o.h);
    }
    db.region = r;
  }

  // Classify kinds: movable multi-row objects are macros; fixed row-sized
  // objects are IO pads, larger fixed ones macros.
  const double rowH = db.rows.empty() ? 0.0 : db.rows.front().height;
  for (auto& o : db.objects) {
    if (rowH > 0.0 && o.h > rowH * 1.5) {
      o.kind = ObjKind::kMacro;
    } else {
      o.kind = o.fixed ? ObjKind::kIo : ObjKind::kStdCell;
    }
  }

  db.finalize();
  const Status issue = db.validate();
  if (!issue.ok()) {
    rc.log().warn("bookshelf: invalid instance: %s", issue.message().c_str());
    return Status::invalidInput(auxPath + ": invalid instance: " +
                                issue.message());
  }
  return {};
}

}  // namespace

Status readBookshelf(const std::string& auxPath, PlacementDB& db,
                     RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  // The parser itself is exception-free; the catch is a last-resort seam so
  // a freak allocation failure on a corrupt file surfaces as a status, not
  // a crash.
  try {
    return readBookshelfImpl(auxPath, db, rc);
  } catch (const std::exception& e) {
    rc.log().warn("bookshelf: parse error in %s: %s", auxPath.c_str(),
                  e.what());
    return Status::invalidInput(std::string("parse error in ") + auxPath +
                                ": " + e.what());
  }
}

Status writeBookshelf(const std::string& dir, const std::string& base,
                      const PlacementDB& db, RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  const std::string prefix = dir + "/" + base;

  {
    std::ofstream out(prefix + ".aux");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".aux");
    out << "RowBasedPlacement : " << base << ".nodes " << base << ".nets "
        << base << ".wts " << base << ".pl " << base << ".scl\n";
  }
  {
    std::ofstream out(prefix + ".nodes");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".nodes");
    out << std::setprecision(15);
    out << "UCLA nodes 1.0\n\n";
    std::size_t terminals = 0;
    for (const auto& o : db.objects) terminals += o.fixed ? 1 : 0;
    out << "NumNodes : " << db.objects.size() << "\n";
    out << "NumTerminals : " << terminals << "\n";
    for (const auto& o : db.objects) {
      out << "    " << o.name << " " << o.w << " " << o.h
          << (o.fixed ? " terminal" : "") << "\n";
    }
  }
  {
    std::ofstream out(prefix + ".nets");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".nets");
    out << std::setprecision(15);
    out << "UCLA nets 1.0\n\n";
    std::size_t pins = 0;
    for (const auto& n : db.nets) pins += n.pins.size();
    out << "NumNets : " << db.nets.size() << "\n";
    out << "NumPins : " << pins << "\n";
    for (const auto& n : db.nets) {
      out << "NetDegree : " << n.pins.size() << "  " << n.name << "\n";
      for (const auto& p : n.pins) {
        const char* dir2 = p.dir == PinDir::kInput    ? "I"
                           : p.dir == PinDir::kOutput ? "O"
                                                      : "B";
        out << "    " << db.objects[static_cast<std::size_t>(p.obj)].name
            << " " << dir2 << " : " << p.ox << " " << p.oy << "\n";
      }
    }
  }
  {
    std::ofstream out(prefix + ".wts");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".wts");
    out << std::setprecision(15);
    out << "UCLA wts 1.0\n\n";
    for (const auto& n : db.nets) {
      if (n.weight != 1.0) out << n.name << " " << n.weight << "\n";
    }
  }
  {
    std::ofstream out(prefix + ".pl");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".pl");
    out << std::setprecision(15);
    out << "UCLA pl 1.0\n\n";
    for (const auto& o : db.objects) {
      out << o.name << " " << o.lx << " " << o.ly << " : N"
          << (o.fixed ? " /FIXED" : "") << "\n";
    }
  }
  {
    std::ofstream out(prefix + ".scl");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".scl");
    out << std::setprecision(15);
    out << "UCLA scl 1.0\n\n";
    out << "NumRows : " << db.rows.size() << "\n";
    for (const auto& r : db.rows) {
      out << "CoreRow Horizontal\n";
      out << "  Coordinate : " << r.ly << "\n";
      out << "  Height : " << r.height << "\n";
      out << "  Sitewidth : " << r.siteWidth << "\n";
      out << "  Sitespacing : " << r.siteWidth << "\n";
      out << "  Siteorient : 1\n";
      out << "  Sitesymmetry : 1\n";
      out << "  SubrowOrigin : " << r.lx << "  NumSites : " << r.numSites
          << "\n";
      out << "End\n";
    }
  }
  return {};
}

}  // namespace ep
