#include "bookshelf/bookshelf.h"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <string_view>
#include <unordered_map>

#include "model/capacity.h"
#include "util/context.h"
#include "util/fault_injector.h"
#include "util/log.h"
#include "util/memory_budget.h"

namespace ep {

namespace {

std::string dirOf(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? std::string(".") : path.substr(0, pos);
}

/// Line-oriented scanner: skips comments (#...) and blanks, tracks the
/// 1-based line number for error locations, and implements the
/// "bookshelf.line" fault site (kTruncate = premature EOF).
class LineScanner {
 public:
  LineScanner(std::istream& in, std::string file, RuntimeContext& rc)
      : in_(in), file_(std::move(file)), rc_(rc) {}

  bool next(std::string& line) {
    FaultInjector& inj = rc_.faults();
    while (std::getline(in_, line)) {
      ++lineNo_;
      if (inj.active()) {
        if (const FaultSpec* f = inj.fire("bookshelf.line")) {
          if (f->kind == FaultKind::kTruncate) return false;
          // NaN/spike on a text stream degrade to garbling the line.
          line = line.substr(0, line.size() / 2);
        }
      }
      const auto hash = line.find('#');
      if (hash != std::string::npos) line.erase(hash);
      const auto b = line.find_first_not_of(" \t\r\n");
      if (b == std::string::npos) continue;
      const auto e = line.find_last_not_of(" \t\r\n");
      line = line.substr(b, e - b + 1);
      if (!line.empty()) return true;
    }
    return false;
  }

  [[nodiscard]] int line() const { return lineNo_; }
  [[nodiscard]] const std::string& file() const { return file_; }

  /// "file:line: msg" as an InvalidInput status.
  [[nodiscard]] Status fail(const std::string& msg) const {
    std::ostringstream os;
    os << file_ << ":" << lineNo_ << ": " << msg;
    rc_.log().warn("bookshelf: %s", os.str().c_str());
    return Status::invalidInput(os.str());
  }

 private:
  std::istream& in_;
  std::string file_;
  RuntimeContext& rc_;
  int lineNo_ = 0;
};

Status ioFail(RuntimeContext& rc, const std::string& msg) {
  rc.log().warn("bookshelf: %s", msg.c_str());
  return Status::ioError(msg);
}

/// Splits "Key : v1 v2" into tokens with ':' treated as whitespace.
/// Zero-allocation: the views alias the caller's line buffer (valid until
/// the next LineScanner::next), and `out` is reused across lines — at
/// 100k+ cells the per-line istringstream of the old tokenizer dominated
/// parse time.
void splitTokens(std::string_view line, std::vector<std::string_view>& out) {
  out.clear();
  const auto isDelim = [](char c) {
    return c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ':';
  };
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && isDelim(line[i])) ++i;
    const std::size_t b = i;
    while (i < line.size() && !isDelim(line[i])) ++i;
    if (i > b) out.push_back(line.substr(b, i - b));
  }
}

/// from_chars with a full-consumption check — "12abc" and "abc" both fail.
/// (strtod was the other per-line hot spot: it walks the locale and
/// requires a NUL-terminated copy.)
bool parseNum(std::string_view tok, double& out) {
  if (!tok.empty() && tok.front() == '+') tok.remove_prefix(1);
  if (tok.empty()) return false;
  const char* b = tok.data();
  const char* e = b + tok.size();
  const auto [p, ec] = std::from_chars(b, e, out);
  return ec == std::errc() && p == e && std::isfinite(out);
}

bool parseCount(std::string_view tok, long& out) {
  double d = 0.0;
  if (!parseNum(tok, d) || d < 0.0 || d != std::floor(d)) return false;
  out = static_cast<long>(d);
  return true;
}

/// Heterogeneous-lookup name map: find(string_view) without a temporary
/// std::string per pin line.
struct SvHash {
  using is_transparent = void;
  std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct SvEq {
  using is_transparent = void;
  bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};
using NameMap = std::unordered_map<std::string, std::int32_t, SvHash, SvEq>;

/// The resolved .aux file list.
struct AuxFiles {
  std::string dir;
  std::string nodes, nets, pl, scl, wts;
};

Status resolveAux(const std::string& auxPath, AuxFiles& files,
                  RuntimeContext& rc) {
  std::ifstream aux(auxPath);
  if (!aux) return ioFail(rc, "cannot open " + auxPath);
  std::string line;
  std::vector<std::string_view> t;
  // Plain getline, not LineScanner: the counting pass must never consume
  // "bookshelf.line" fault events — those belong to the fill pass, and the
  // injector's event sequence has to match a non-counting read exactly.
  while (std::getline(aux, line)) {
    std::string_view sv(line);
    if (const auto hash = sv.find('#'); hash != std::string_view::npos) {
      sv = sv.substr(0, hash);
    }
    splitTokens(sv, t);
    for (const auto tok : t) {
      auto ends = [&](std::string_view suffix) {
        return tok.size() > suffix.size() &&
               tok.substr(tok.size() - suffix.size()) == suffix;
      };
      if (ends(".nodes")) files.nodes = std::string(tok);
      if (ends(".nets")) files.nets = std::string(tok);
      if (ends(".pl")) files.pl = std::string(tok);
      if (ends(".scl")) files.scl = std::string(tok);
      if (ends(".wts")) files.wts = std::string(tok);
    }
  }
  if (files.nodes.empty() || files.nets.empty() || files.pl.empty()) {
    rc.log().warn("bookshelf: %s lists no nodes/nets/pl", auxPath.c_str());
    return Status::invalidInput(auxPath + " lists no nodes/nets/pl");
  }
  files.dir = dirOf(auxPath) + "/";
  return {};
}

/// Counting pass over one file: returns the declared header count when
/// `headerKey` is found, otherwise counts data lines accepted by
/// `isData(t)`. Plain getline (no fault sites — counting is advisory and
/// must not consume injector events meant for the fill pass).
template <typename IsData>
Status countFile(const std::string& path, std::string_view headerKey,
                 IsData&& isData, std::size_t* count, bool* declared,
                 RuntimeContext& rc) {
  std::ifstream in(path);
  if (!in) return ioFail(rc, "cannot open " + path);
  std::string line;
  std::vector<std::string_view> t;
  std::size_t counted = 0;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    std::string_view sv(line);
    if (hash != std::string_view::npos) sv = sv.substr(0, hash);
    splitTokens(sv, t);
    if (t.empty()) continue;
    if (t[0] == headerKey) {
      long v = 0;
      if (t.size() >= 2 && parseCount(t[1], v)) {
        *count = static_cast<std::size_t>(v);
        *declared = true;
        return {};  // headers precede data; stop reading
      }
      // Malformed header: fall through to counting; the fill pass will
      // report the precise file:line error.
    }
    if (isData(t)) ++counted;
  }
  *count = counted;
  *declared = false;
  return {};
}

/// .nets needs two counts (nets + pins) in one pass; stop early only when
/// both headers have been seen.
Status countNetsFile(const std::string& path, std::size_t* nets,
                     std::size_t* pins, bool* declared, RuntimeContext& rc) {
  std::ifstream in(path);
  if (!in) return ioFail(rc, "cannot open " + path);
  std::string line;
  std::vector<std::string_view> t;
  std::size_t countedNets = 0;
  std::size_t countedPins = 0;
  long declaredNets = -1;
  long declaredPins = -1;
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    std::string_view sv(line);
    if (hash != std::string_view::npos) sv = sv.substr(0, hash);
    splitTokens(sv, t);
    if (t.empty()) continue;
    if (t[0] == "NumNets" && t.size() >= 2) {
      parseCount(t[1], declaredNets);
    } else if (t[0] == "NumPins" && t.size() >= 2) {
      parseCount(t[1], declaredPins);
    } else if (t[0] == "NetDegree") {
      ++countedNets;
    } else if (t[0] != "UCLA") {
      ++countedPins;
    }
    if (declaredNets >= 0 && declaredPins >= 0) {
      *nets = static_cast<std::size_t>(declaredNets);
      *pins = static_cast<std::size_t>(declaredPins);
      *declared = true;
      return {};
    }
  }
  *nets = declaredNets >= 0 ? static_cast<std::size_t>(declaredNets)
                            : countedNets;
  *pins = declaredPins >= 0 ? static_cast<std::size_t>(declaredPins)
                            : countedPins;
  *declared = false;
  return {};
}

StatusOr<BookshelfCounts> scanCounts(const AuxFiles& files,
                                     RuntimeContext& rc) {
  BookshelfCounts counts;
  bool declNodes = false;
  bool declNets = false;
  bool declRows = true;  // no .scl => nothing to count
  const Status sn = countFile(
      files.dir + files.nodes, "NumNodes",
      [](const std::vector<std::string_view>& t) {
        return t[0] != "UCLA" && t[0] != "NumTerminals";
      },
      &counts.objects, &declNodes, rc);
  if (!sn.ok()) return sn;
  const Status se = countNetsFile(files.dir + files.nets, &counts.nets,
                                  &counts.pins, &declNets, rc);
  if (!se.ok()) return se;
  if (!files.scl.empty()) {
    declRows = false;
    const Status sr = countFile(
        files.dir + files.scl, "NumRows",
        [](const std::vector<std::string_view>& t) {
          return t[0] == "CoreRow";
        },
        &counts.rows, &declRows, rc);
    if (!sr.ok()) return sr;
  }
  counts.declared = declNodes && declNets && declRows;
  return counts;
}

StatusOr<BookshelfCounts> scanBookshelfCountsImpl(const std::string& auxPath,
                                                  RuntimeContext& rc) {
  AuxFiles files;
  if (const Status s = resolveAux(auxPath, files, rc); !s.ok()) return s;
  return scanCounts(files, rc);
}

Status readBookshelfImpl(const std::string& auxPath, PlacementDB& db,
                         RuntimeContext& rc) {
  std::ifstream aux(auxPath);
  if (!aux) return ioFail(rc, "cannot open " + auxPath);
  AuxFiles files;
  std::string line;
  std::vector<std::string_view> t;
  {
    // LineScanner (not resolveAux) so the aux file participates in the
    // "bookshelf.line" fault site exactly as it always has.
    LineScanner sc(aux, auxPath, rc);
    while (sc.next(line)) {
      splitTokens(line, t);
      for (const auto tok : t) {
        auto ends = [&](std::string_view suffix) {
          return tok.size() > suffix.size() &&
                 tok.substr(tok.size() - suffix.size()) == suffix;
        };
        if (ends(".nodes")) files.nodes = std::string(tok);
        if (ends(".nets")) files.nets = std::string(tok);
        if (ends(".pl")) files.pl = std::string(tok);
        if (ends(".scl")) files.scl = std::string(tok);
        if (ends(".wts")) files.wts = std::string(tok);
      }
    }
  }
  if (files.nodes.empty() || files.nets.empty() || files.pl.empty()) {
    rc.log().warn("bookshelf: %s lists no nodes/nets/pl", auxPath.c_str());
    return Status::invalidInput(auxPath + " lists no nodes/nets/pl");
  }
  files.dir = dirOf(auxPath) + "/";
  const std::string& dir = files.dir;
  const std::string& nodesFile = files.nodes;
  const std::string& netsFile = files.nets;
  const std::string& plFile = files.pl;
  const std::string& sclFile = files.scl;
  const std::string& wtsFile = files.wts;

  // ---- counting pass -> capacity plan -> budget charge ----
  // The plan is charged for the duration of assembly only (ScopedCharge):
  // the session/serving layer owns the persistent footprint accounting, but
  // an instance that cannot even fit its structural arrays is rejected here
  // before any array is sized.
  const auto countsOr = scanCounts(files, rc);
  if (!countsOr.ok()) return countsOr.status();
  const auto planOr = planCapacity({countsOr->objects, countsOr->nets,
                                    countsOr->pins, countsOr->rows});
  if (!planOr.ok()) {
    rc.log().warn("bookshelf: %s: %s", auxPath.c_str(),
                  planOr.status().message().c_str());
    return Status::invalidInput(auxPath + ": " + planOr.status().message());
  }
  const CapacityPlan& plan = *planOr;
  ScopedCharge assemblyCharge(rc.memory(), plan.totalBytes());
  if (!assemblyCharge.ok()) {
    rc.log().warn("bookshelf: %s needs ~%zu bytes, over the memory budget",
                  auxPath.c_str(), plan.totalBytes());
    return Status::resourceExhausted(
        auxPath + ": instance needs ~" + std::to_string(plan.totalBytes()) +
        " bytes of model memory, over the budget");
  }

  db = PlacementDB{};
  reserveCapacity(db, plan);
  {
    const auto slash = auxPath.find_last_of('/');
    std::string basename =
        slash == std::string::npos ? auxPath : auxPath.substr(slash + 1);
    const auto dot = basename.find_last_of('.');
    db.name = dot == std::string::npos ? basename : basename.substr(0, dot);
  }

  NameMap nameToObj;
  nameToObj.reserve(countsOr->objects);

  // ---- .nodes ----
  {
    std::ifstream in(dir + nodesFile);
    if (!in) return ioFail(rc, "cannot open " + nodesFile);
    LineScanner sc(in, nodesFile, rc);
    long declared = -1;
    while (sc.next(line)) {
      splitTokens(line, t);
      if (t.empty() || t[0] == "UCLA" || t[0] == "NumTerminals") continue;
      if (t[0] == "NumNodes") {
        if (t.size() < 2 || !parseCount(t[1], declared)) {
          return sc.fail("bad NumNodes count");
        }
        continue;
      }
      if (t.size() < 3) return sc.fail("truncated nodes line: " + line);
      Object o;
      o.name = std::string(t[0]);
      if (!parseNum(t[1], o.w) || !parseNum(t[2], o.h)) {
        return sc.fail("non-numeric node dims: " + line);
      }
      o.fixed = t.size() > 3 && (t[3] == "terminal" || t[3] == "terminal_NI");
      if (nameToObj.find(std::string_view(o.name)) != nameToObj.end()) {
        return sc.fail("duplicate node " + o.name);
      }
      nameToObj[o.name] = static_cast<std::int32_t>(db.objects.size());
      db.objects.push_back(std::move(o));
    }
    if (declared >= 0 && declared != static_cast<long>(db.objects.size())) {
      return sc.fail("NumNodes declares " + std::to_string(declared) +
                     " but file has " + std::to_string(db.objects.size()) +
                     " (truncated file?)");
    }
  }

  // ---- .nets ----
  {
    std::ifstream in(dir + netsFile);
    if (!in) return ioFail(rc, "cannot open " + netsFile);
    LineScanner sc(in, netsFile, rc);
    Net* cur = nullptr;
    std::size_t remaining = 0;
    long declaredNets = -1, declaredPins = -1;
    std::size_t totalPins = 0;
    auto netComplete = [&]() -> bool { return cur == nullptr || remaining == 0; };
    while (sc.next(line)) {
      splitTokens(line, t);
      if (t.empty() || t[0] == "UCLA") continue;
      if (t[0] == "NumNets") {
        if (t.size() < 2 || !parseCount(t[1], declaredNets)) {
          return sc.fail("bad NumNets count");
        }
        continue;
      }
      if (t[0] == "NumPins") {
        if (t.size() < 2 || !parseCount(t[1], declaredPins)) {
          return sc.fail("bad NumPins count");
        }
        continue;
      }
      if (t[0] == "NetDegree") {
        if (!netComplete()) {
          return sc.fail("net " + db.nets.back().name + " expects " +
                         std::to_string(db.nets.back().pins.size() + remaining) +
                         " pins, got " +
                         std::to_string(db.nets.back().pins.size()));
        }
        long degree = 0;
        if (t.size() < 2 || !parseCount(t[1], degree)) {
          return sc.fail("bad NetDegree: " + line);
        }
        if (degree == 0) return sc.fail("net with zero pins: " + line);
        Net net;
        net.name = t.size() > 2 ? std::string(t[2])
                                : ("net" + std::to_string(db.nets.size()));
        remaining = static_cast<std::size_t>(degree);
        net.pins.reserve(remaining);  // sole per-net allocation
        db.nets.push_back(std::move(net));
        cur = &db.nets.back();
        continue;
      }
      if (cur == nullptr || remaining == 0) {
        return sc.fail("pin line outside a net: " + line);
      }
      const auto it = nameToObj.find(t[0]);
      if (it == nameToObj.end()) {
        return sc.fail("unknown node in net: " + std::string(t[0]));
      }
      PinRef pin;
      pin.obj = it->second;
      // "name I : ox oy" — direction token optional, offsets optional.
      std::size_t k = 1;
      if (k < t.size() && (t[k] == "I" || t[k] == "O" || t[k] == "B")) {
        pin.dir = t[k] == "I"   ? PinDir::kInput
                  : t[k] == "O" ? PinDir::kOutput
                                : PinDir::kUnknown;
        ++k;
      }
      if (k + 1 < t.size()) {
        if (!parseNum(t[k], pin.ox) || !parseNum(t[k + 1], pin.oy)) {
          return sc.fail("non-numeric pin offset: " + line);
        }
      }
      cur->pins.push_back(pin);
      ++totalPins;
      --remaining;
    }
    if (!netComplete()) {
      return sc.fail("net " + db.nets.back().name + " expects " +
                     std::to_string(db.nets.back().pins.size() + remaining) +
                     " pins, got " +
                     std::to_string(db.nets.back().pins.size()) +
                     " (truncated file?)");
    }
    if (declaredNets >= 0 && declaredNets != static_cast<long>(db.nets.size())) {
      return sc.fail("NumNets declares " + std::to_string(declaredNets) +
                     " but file has " + std::to_string(db.nets.size()));
    }
    if (declaredPins >= 0 && declaredPins != static_cast<long>(totalPins)) {
      return sc.fail("NumPins declares " + std::to_string(declaredPins) +
                     " but file has " + std::to_string(totalPins));
    }
  }

  // ---- .wts (optional) ----
  if (!wtsFile.empty()) {
    std::ifstream in(dir + wtsFile);
    if (in) {
      LineScanner sc(in, wtsFile, rc);
      std::unordered_map<std::string, std::size_t, SvHash, SvEq> netIdx;
      netIdx.reserve(db.nets.size());
      for (std::size_t i = 0; i < db.nets.size(); ++i) {
        netIdx[db.nets[i].name] = i;
      }
      while (sc.next(line)) {
        splitTokens(line, t);
        if (t.size() >= 2) {
          const auto it = netIdx.find(t[0]);
          if (it == netIdx.end()) continue;
          double w = 0.0;
          if (!parseNum(t[1], w)) {
            return sc.fail("non-numeric net weight: " + line);
          }
          db.nets[it->second].weight = w;
        }
      }
    }
  }

  // ---- .pl ----
  {
    std::ifstream in(dir + plFile);
    if (!in) return ioFail(rc, "cannot open " + plFile);
    LineScanner sc(in, plFile, rc);
    while (sc.next(line)) {
      splitTokens(line, t);
      if (t.empty() || t[0] == "UCLA") continue;
      if (t.size() < 3) continue;
      const auto it = nameToObj.find(t[0]);
      if (it == nameToObj.end()) continue;
      auto& o = db.objects[static_cast<std::size_t>(it->second)];
      if (!parseNum(t[1], o.lx) || !parseNum(t[2], o.ly)) {
        return sc.fail("non-numeric coordinates: " + line);
      }
      for (const auto& tok : t) {
        if (tok == "/FIXED" || tok == "FIXED") o.fixed = true;
      }
    }
  }

  // ---- .scl ----
  double rowMinX = std::numeric_limits<double>::max(), rowMaxX = -rowMinX;
  double rowMinY = rowMinX, rowMaxY = -rowMinX;
  if (!sclFile.empty()) {
    std::ifstream in(dir + sclFile);
    if (!in) return ioFail(rc, "cannot open " + sclFile);
    LineScanner sc(in, sclFile, rc);
    Row row;
    bool inRow = false;
    auto rowNum = [&](std::string_view tok, double& out) -> bool {
      return parseNum(tok, out);
    };
    while (sc.next(line)) {
      splitTokens(line, t);
      if (t.empty()) continue;
      if (t[0] == "CoreRow") {
        row = Row{};
        inRow = true;
      } else if (inRow && t[0] == "Coordinate" && t.size() > 1) {
        if (!rowNum(t[1], row.ly)) return sc.fail("bad Coordinate: " + line);
      } else if (inRow && t[0] == "Height" && t.size() > 1) {
        if (!rowNum(t[1], row.height)) return sc.fail("bad Height: " + line);
      } else if (inRow && t[0] == "Sitewidth" && t.size() > 1) {
        if (!rowNum(t[1], row.siteWidth)) {
          return sc.fail("bad Sitewidth: " + line);
        }
      } else if (inRow && t[0] == "SubrowOrigin" && t.size() > 1) {
        if (!rowNum(t[1], row.lx)) return sc.fail("bad SubrowOrigin: " + line);
        for (std::size_t k = 2; k + 1 < t.size(); ++k) {
          if (t[k] == "NumSites") {
            long sites = 0;
            if (!parseCount(t[k + 1], sites)) {
              return sc.fail("bad NumSites: " + line);
            }
            row.numSites = static_cast<std::int32_t>(sites);
          }
        }
      } else if (t[0] == "End" && inRow) {
        if (row.height > 0.0 && row.numSites > 0) {
          db.rows.push_back(row);
          rowMinX = std::min(rowMinX, row.lx);
          rowMaxX = std::max(rowMaxX, row.hx());
          rowMinY = std::min(rowMinY, row.ly);
          rowMaxY = std::max(rowMaxY, row.ly + row.height);
        }
        inRow = false;
      }
    }
  }

  // Region: bounding box of rows, else of all objects.
  if (!db.rows.empty()) {
    db.region = {rowMinX, rowMinY, rowMaxX, rowMaxY};
  } else {
    Rect r{1e30, 1e30, -1e30, -1e30};
    for (const auto& o : db.objects) {
      r.lx = std::min(r.lx, o.lx);
      r.ly = std::min(r.ly, o.ly);
      r.hx = std::max(r.hx, o.lx + o.w);
      r.hy = std::max(r.hy, o.ly + o.h);
    }
    db.region = r;
  }

  // Classify kinds: movable multi-row objects are macros; fixed row-sized
  // objects are IO pads, larger fixed ones macros.
  const double rowH = db.rows.empty() ? 0.0 : db.rows.front().height;
  for (auto& o : db.objects) {
    if (rowH > 0.0 && o.h > rowH * 1.5) {
      o.kind = ObjKind::kMacro;
    } else {
      o.kind = o.fixed ? ObjKind::kIo : ObjKind::kStdCell;
    }
  }

  db.finalize();
  const Status issue = db.validate();
  if (!issue.ok()) {
    rc.log().warn("bookshelf: invalid instance: %s", issue.message().c_str());
    return Status::invalidInput(auxPath + ": invalid instance: " +
                                issue.message());
  }
  return {};
}

}  // namespace

StatusOr<BookshelfCounts> scanBookshelfCounts(const std::string& auxPath,
                                              RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  try {
    return scanBookshelfCountsImpl(auxPath, rc);
  } catch (const std::exception& e) {
    rc.log().warn("bookshelf: count scan failed in %s: %s", auxPath.c_str(),
                  e.what());
    return Status::invalidInput(std::string("count scan failed in ") +
                                auxPath + ": " + e.what());
  }
}

Status readBookshelf(const std::string& auxPath, PlacementDB& db,
                     RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  // The parser itself is exception-free; the catch is a last-resort seam so
  // a freak allocation failure on a corrupt file surfaces as a status, not
  // a crash.
  try {
    return readBookshelfImpl(auxPath, db, rc);
  } catch (const std::exception& e) {
    rc.log().warn("bookshelf: parse error in %s: %s", auxPath.c_str(),
                  e.what());
    return Status::invalidInput(std::string("parse error in ") + auxPath +
                                ": " + e.what());
  }
}

Status writeBookshelf(const std::string& dir, const std::string& base,
                      const PlacementDB& db, RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  const std::string prefix = dir + "/" + base;

  {
    std::ofstream out(prefix + ".aux");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".aux");
    out << "RowBasedPlacement : " << base << ".nodes " << base << ".nets "
        << base << ".wts " << base << ".pl " << base << ".scl\n";
  }
  {
    std::ofstream out(prefix + ".nodes");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".nodes");
    out << std::setprecision(15);
    out << "UCLA nodes 1.0\n\n";
    std::size_t terminals = 0;
    for (const auto& o : db.objects) terminals += o.fixed ? 1 : 0;
    out << "NumNodes : " << db.objects.size() << "\n";
    out << "NumTerminals : " << terminals << "\n";
    for (const auto& o : db.objects) {
      out << "    " << o.name << " " << o.w << " " << o.h
          << (o.fixed ? " terminal" : "") << "\n";
    }
  }
  {
    std::ofstream out(prefix + ".nets");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".nets");
    out << std::setprecision(15);
    out << "UCLA nets 1.0\n\n";
    std::size_t pins = 0;
    for (const auto& n : db.nets) pins += n.pins.size();
    out << "NumNets : " << db.nets.size() << "\n";
    out << "NumPins : " << pins << "\n";
    for (const auto& n : db.nets) {
      out << "NetDegree : " << n.pins.size() << "  " << n.name << "\n";
      for (const auto& p : n.pins) {
        const char* dir2 = p.dir == PinDir::kInput    ? "I"
                           : p.dir == PinDir::kOutput ? "O"
                                                      : "B";
        out << "    " << db.objects[static_cast<std::size_t>(p.obj)].name
            << " " << dir2 << " : " << p.ox << " " << p.oy << "\n";
      }
    }
  }
  {
    std::ofstream out(prefix + ".wts");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".wts");
    out << std::setprecision(15);
    out << "UCLA wts 1.0\n\n";
    for (const auto& n : db.nets) {
      if (n.weight != 1.0) out << n.name << " " << n.weight << "\n";
    }
  }
  {
    std::ofstream out(prefix + ".pl");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".pl");
    out << std::setprecision(15);
    out << "UCLA pl 1.0\n\n";
    for (const auto& o : db.objects) {
      out << o.name << " " << o.lx << " " << o.ly << " : N"
          << (o.fixed ? " /FIXED" : "") << "\n";
    }
  }
  {
    std::ofstream out(prefix + ".scl");
    if (!out) return ioFail(rc, "cannot write " + prefix + ".scl");
    out << std::setprecision(15);
    out << "UCLA scl 1.0\n\n";
    out << "NumRows : " << db.rows.size() << "\n";
    for (const auto& r : db.rows) {
      out << "CoreRow Horizontal\n";
      out << "  Coordinate : " << r.ly << "\n";
      out << "  Height : " << r.height << "\n";
      out << "  Sitewidth : " << r.siteWidth << "\n";
      out << "  Sitespacing : " << r.siteWidth << "\n";
      out << "  Siteorient : 1\n";
      out << "  Sitesymmetry : 1\n";
      out << "  SubrowOrigin : " << r.lx << "  NumSites : " << r.numSites
          << "\n";
      out << "End\n";
    }
  }
  return {};
}

}  // namespace ep
