#include "bookshelf/bookshelf.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <unordered_map>

#include "util/log.h"

namespace ep {

namespace {

std::string dirOf(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? std::string(".") : path.substr(0, pos);
}

/// Reads the next meaningful line: comments (#...) and blanks skipped.
bool nextLine(std::istream& in, std::string& line) {
  while (std::getline(in, line)) {
    const auto hash = line.find('#');
    if (hash != std::string::npos) line.erase(hash);
    // Trim.
    const auto b = line.find_first_not_of(" \t\r\n");
    if (b == std::string::npos) continue;
    const auto e = line.find_last_not_of(" \t\r\n");
    line = line.substr(b, e - b + 1);
    if (!line.empty()) return true;
  }
  return false;
}

/// Splits "Key : v1 v2" into tokens with ':' treated as whitespace.
std::vector<std::string> tokens(const std::string& line) {
  std::string s = line;
  std::replace(s.begin(), s.end(), ':', ' ');
  std::istringstream iss(s);
  std::vector<std::string> out;
  std::string t;
  while (iss >> t) out.push_back(t);
  return out;
}

BookshelfResult fail(const std::string& msg) {
  logWarn("bookshelf: %s", msg.c_str());
  return {false, msg};
}

}  // namespace

namespace {

BookshelfResult readBookshelfImpl(const std::string& auxPath,
                                  PlacementDB& db) {
  std::ifstream aux(auxPath);
  if (!aux) return fail("cannot open " + auxPath);
  std::string nodesFile, netsFile, plFile, sclFile, wtsFile;
  std::string line;
  while (nextLine(aux, line)) {
    for (const auto& t : tokens(line)) {
      auto ends = [&](const char* suffix) {
        return t.size() > std::strlen(suffix) &&
               t.compare(t.size() - std::strlen(suffix), std::string::npos,
                         suffix) == 0;
      };
      if (ends(".nodes")) nodesFile = t;
      if (ends(".nets")) netsFile = t;
      if (ends(".pl")) plFile = t;
      if (ends(".scl")) sclFile = t;
      if (ends(".wts")) wtsFile = t;
    }
  }
  if (nodesFile.empty() || netsFile.empty() || plFile.empty()) {
    return fail("aux file lists no nodes/nets/pl");
  }
  const std::string dir = dirOf(auxPath) + "/";

  db = PlacementDB{};
  {
    const auto slash = auxPath.find_last_of('/');
    std::string basename =
        slash == std::string::npos ? auxPath : auxPath.substr(slash + 1);
    const auto dot = basename.find_last_of('.');
    db.name = dot == std::string::npos ? basename : basename.substr(0, dot);
  }

  std::unordered_map<std::string, std::int32_t> nameToObj;

  // ---- .nodes ----
  {
    std::ifstream in(dir + nodesFile);
    if (!in) return fail("cannot open " + nodesFile);
    while (nextLine(in, line)) {
      const auto t = tokens(line);
      if (t.empty() || t[0] == "UCLA" || t[0] == "NumNodes" ||
          t[0] == "NumTerminals") {
        continue;
      }
      if (t.size() < 3) return fail("bad nodes line: " + line);
      Object o;
      o.name = t[0];
      o.w = std::stod(t[1]);
      o.h = std::stod(t[2]);
      o.fixed = t.size() > 3 && (t[3] == "terminal" || t[3] == "terminal_NI");
      nameToObj[o.name] = static_cast<std::int32_t>(db.objects.size());
      db.objects.push_back(std::move(o));
    }
  }

  // ---- .nets ----
  {
    std::ifstream in(dir + netsFile);
    if (!in) return fail("cannot open " + netsFile);
    Net* cur = nullptr;
    std::size_t remaining = 0;
    while (nextLine(in, line)) {
      const auto t = tokens(line);
      if (t.empty() || t[0] == "UCLA" || t[0] == "NumNets" ||
          t[0] == "NumPins") {
        continue;
      }
      if (t[0] == "NetDegree") {
        Net net;
        net.name = t.size() > 2 ? t[2] : ("net" + std::to_string(db.nets.size()));
        remaining = static_cast<std::size_t>(std::stoul(t[1]));
        db.nets.push_back(std::move(net));
        cur = &db.nets.back();
        continue;
      }
      if (cur == nullptr || remaining == 0) {
        return fail("pin line outside a net: " + line);
      }
      const auto it = nameToObj.find(t[0]);
      if (it == nameToObj.end()) return fail("unknown node in net: " + t[0]);
      PinRef pin;
      pin.obj = it->second;
      // "name I : ox oy" — direction token optional, offsets optional.
      std::size_t k = 1;
      if (k < t.size() && (t[k] == "I" || t[k] == "O" || t[k] == "B")) {
        pin.dir = t[k] == "I"   ? PinDir::kInput
                  : t[k] == "O" ? PinDir::kOutput
                                : PinDir::kUnknown;
        ++k;
      }
      if (k + 1 < t.size()) {
        pin.ox = std::stod(t[k]);
        pin.oy = std::stod(t[k + 1]);
      }
      cur->pins.push_back(pin);
      --remaining;
    }
  }

  // ---- .wts (optional) ----
  if (!wtsFile.empty()) {
    std::ifstream in(dir + wtsFile);
    if (in) {
      std::unordered_map<std::string, std::size_t> netIdx;
      for (std::size_t i = 0; i < db.nets.size(); ++i) {
        netIdx[db.nets[i].name] = i;
      }
      while (nextLine(in, line)) {
        const auto t = tokens(line);
        if (t.size() >= 2) {
          const auto it = netIdx.find(t[0]);
          if (it != netIdx.end()) {
            db.nets[it->second].weight = std::stod(t[1]);
          }
        }
      }
    }
  }

  // ---- .pl ----
  {
    std::ifstream in(dir + plFile);
    if (!in) return fail("cannot open " + plFile);
    while (nextLine(in, line)) {
      const auto t = tokens(line);
      if (t.empty() || t[0] == "UCLA") continue;
      if (t.size() < 3) continue;
      const auto it = nameToObj.find(t[0]);
      if (it == nameToObj.end()) continue;
      auto& o = db.objects[static_cast<std::size_t>(it->second)];
      o.lx = std::stod(t[1]);
      o.ly = std::stod(t[2]);
      for (const auto& tok : t) {
        if (tok == "/FIXED" || tok == "FIXED") o.fixed = true;
      }
    }
  }

  // ---- .scl ----
  double rowMinX = std::numeric_limits<double>::max(), rowMaxX = -rowMinX;
  double rowMinY = rowMinX, rowMaxY = -rowMinX;
  if (!sclFile.empty()) {
    std::ifstream in(dir + sclFile);
    if (!in) return fail("cannot open " + sclFile);
    Row row;
    bool inRow = false;
    while (nextLine(in, line)) {
      const auto t = tokens(line);
      if (t.empty()) continue;
      if (t[0] == "CoreRow") {
        row = Row{};
        inRow = true;
      } else if (inRow && t[0] == "Coordinate" && t.size() > 1) {
        row.ly = std::stod(t[1]);
      } else if (inRow && t[0] == "Height" && t.size() > 1) {
        row.height = std::stod(t[1]);
      } else if (inRow && t[0] == "Sitewidth" && t.size() > 1) {
        row.siteWidth = std::stod(t[1]);
      } else if (inRow && t[0] == "SubrowOrigin" && t.size() > 1) {
        row.lx = std::stod(t[1]);
        for (std::size_t k = 2; k + 1 < t.size(); ++k) {
          if (t[k] == "NumSites") {
            row.numSites = static_cast<std::int32_t>(std::stol(t[k + 1]));
          }
        }
      } else if (t[0] == "End" && inRow) {
        if (row.height > 0.0 && row.numSites > 0) {
          db.rows.push_back(row);
          rowMinX = std::min(rowMinX, row.lx);
          rowMaxX = std::max(rowMaxX, row.hx());
          rowMinY = std::min(rowMinY, row.ly);
          rowMaxY = std::max(rowMaxY, row.ly + row.height);
        }
        inRow = false;
      }
    }
  }

  // Region: bounding box of rows, else of all objects.
  if (!db.rows.empty()) {
    db.region = {rowMinX, rowMinY, rowMaxX, rowMaxY};
  } else {
    Rect r{1e30, 1e30, -1e30, -1e30};
    for (const auto& o : db.objects) {
      r.lx = std::min(r.lx, o.lx);
      r.ly = std::min(r.ly, o.ly);
      r.hx = std::max(r.hx, o.lx + o.w);
      r.hy = std::max(r.hy, o.ly + o.h);
    }
    db.region = r;
  }

  // Classify kinds: movable multi-row objects are macros; fixed row-sized
  // objects are IO pads, larger fixed ones macros.
  const double rowH = db.rows.empty() ? 0.0 : db.rows.front().height;
  for (auto& o : db.objects) {
    if (rowH > 0.0 && o.h > rowH * 1.5) {
      o.kind = ObjKind::kMacro;
    } else {
      o.kind = o.fixed ? ObjKind::kIo : ObjKind::kStdCell;
    }
  }

  db.finalize();
  const std::string issue = db.validate();
  if (!issue.empty()) return fail("invalid instance: " + issue);
  return {true, {}};
}

}  // namespace

BookshelfResult readBookshelf(const std::string& auxPath, PlacementDB& db) {
  // stod/stoul throw on malformed numeric tokens; surface that as a parse
  // error instead of crashing on a corrupt file.
  try {
    return readBookshelfImpl(auxPath, db);
  } catch (const std::exception& e) {
    return fail(std::string("parse error in ") + auxPath + ": " + e.what());
  }
}

BookshelfResult writeBookshelf(const std::string& dir, const std::string& base,
                               const PlacementDB& db) {
  const std::string prefix = dir + "/" + base;

  {
    std::ofstream out(prefix + ".aux");
    if (!out) return fail("cannot write " + prefix + ".aux");
    out << "RowBasedPlacement : " << base << ".nodes " << base << ".nets "
        << base << ".wts " << base << ".pl " << base << ".scl\n";
  }
  {
    std::ofstream out(prefix + ".nodes");
    out << std::setprecision(15);
    out << "UCLA nodes 1.0\n\n";
    std::size_t terminals = 0;
    for (const auto& o : db.objects) terminals += o.fixed ? 1 : 0;
    out << "NumNodes : " << db.objects.size() << "\n";
    out << "NumTerminals : " << terminals << "\n";
    for (const auto& o : db.objects) {
      out << "    " << o.name << " " << o.w << " " << o.h
          << (o.fixed ? " terminal" : "") << "\n";
    }
  }
  {
    std::ofstream out(prefix + ".nets");
    out << std::setprecision(15);
    out << "UCLA nets 1.0\n\n";
    std::size_t pins = 0;
    for (const auto& n : db.nets) pins += n.pins.size();
    out << "NumNets : " << db.nets.size() << "\n";
    out << "NumPins : " << pins << "\n";
    for (const auto& n : db.nets) {
      out << "NetDegree : " << n.pins.size() << "  " << n.name << "\n";
      for (const auto& p : n.pins) {
        const char* dir = p.dir == PinDir::kInput    ? "I"
                          : p.dir == PinDir::kOutput ? "O"
                                                     : "B";
        out << "    " << db.objects[static_cast<std::size_t>(p.obj)].name
            << " " << dir << " : " << p.ox << " " << p.oy << "\n";
      }
    }
  }
  {
    std::ofstream out(prefix + ".wts");
    out << std::setprecision(15);
    out << "UCLA wts 1.0\n\n";
    for (const auto& n : db.nets) {
      if (n.weight != 1.0) out << n.name << " " << n.weight << "\n";
    }
  }
  {
    std::ofstream out(prefix + ".pl");
    out << std::setprecision(15);
    out << "UCLA pl 1.0\n\n";
    for (const auto& o : db.objects) {
      out << o.name << " " << o.lx << " " << o.ly << " : N"
          << (o.fixed ? " /FIXED" : "") << "\n";
    }
  }
  {
    std::ofstream out(prefix + ".scl");
    out << std::setprecision(15);
    out << "UCLA scl 1.0\n\n";
    out << "NumRows : " << db.rows.size() << "\n";
    for (const auto& r : db.rows) {
      out << "CoreRow Horizontal\n";
      out << "  Coordinate : " << r.ly << "\n";
      out << "  Height : " << r.height << "\n";
      out << "  Sitewidth : " << r.siteWidth << "\n";
      out << "  Sitespacing : " << r.siteWidth << "\n";
      out << "  Siteorient : 1\n";
      out << "  Sitesymmetry : 1\n";
      out << "  SubrowOrigin : " << r.lx << "  NumSites : " << r.numSites
          << "\n";
      out << "End\n";
    }
  }
  return {true, {}};
}

}  // namespace ep
