// Filler cells (Sec. III): unconnected charges that populate whitespace so
// the electrostatic equilibrium spreads real cells at the target density
// instead of letting them drift into all free space. Fillers take part in
// density (they are charges) but carry no nets and are excluded from the
// overflow metric.
#pragma once

#include <cstdint>
#include <vector>

#include "model/netlist.h"

namespace ep {

class RuntimeContext;

struct FillerSet {
  std::vector<double> cx, cy;  // centers
  double w = 0.0, h = 0.0;     // uniform filler dims

  [[nodiscard]] std::size_t size() const { return cx.size(); }
  [[nodiscard]] double totalArea() const {
    return static_cast<double>(size()) * w * h;
  }
};

/// Creates fillers for the instance: total filler area equals
/// rho_t * freeArea - movableArea (clamped at zero); each filler is a square
/// sized from the average area of the middle 80% of movable cells; positions
/// are uniform random inside the region (deterministic per seed).
FillerSet makeFillers(const PlacementDB& db, std::uint64_t seed,
                      RuntimeContext* ctx = nullptr);

}  // namespace ep
