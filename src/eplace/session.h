// PlacerSession — the embedding facade over the whole placer, and the
// concurrent multi-session batch API built on top of it.
//
// A session bundles one RuntimeContext (thread pool, fault injector, log
// sink, stats, deadline) with one PlacementDB and the flow configuration,
// exposing the load -> place -> inspect lifecycle as three calls. Because
// every kernel layer threads the context explicitly (no process globals),
// any number of sessions can run in the same process at once: each one
// logs under its own prefix, schedules work on its own pool, and keeps its
// armed faults to itself. Determinism is per-session — results are
// bit-identical whether sessions run sequentially or concurrently, and for
// any per-session thread cap (docs/PERFORMANCE.md).
//
// runPlacerBatch() places N circuits with at most K sessions in flight,
// work-stealing jobs from a shared queue and splitting a total thread
// budget across the active sessions. The CLI exposes it as
// `eplace_cli --batch <manifest> --sessions K`.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eplace/flow.h"
#include "eplace/supervisor.h"
#include "util/context.h"
#include "util/status.h"

namespace ep {

struct SessionOptions {
  /// Session name: log-line prefix and the default snapshot subdirectory
  /// under BatchOptions::snapshotRoot.
  std::string name;
  /// Worker threads for this session's pool; <= 0 = hardware concurrency.
  /// Results are bit-identical for any value (determinism contract).
  int threads = 0;
  /// Root RNG seed for RuntimeContext::nextSeed() consumers.
  std::uint64_t seed = 0x9e3779b97f4a7c15ULL;
  LogLevel logLevel = LogLevel::kWarn;
  bool logTimestamps = true;
  /// Wall-clock budget for the whole session; <= 0 = unbounded. Stage
  /// watchdogs clamp their own budgets to what remains.
  double wallBudgetSeconds = 0.0;
  /// Memory cap in MiB for the session's big allocations (view/CSR build,
  /// arena growth, snapshot buffers, bin grid); 0 = unlimited. A breach is
  /// a typed kResourceExhausted outcome — the supervisor first degrades
  /// (coarser bin grid, reduced checkpoint retention), then fails cleanly.
  std::size_t memBudgetMb = 0;
  /// Run under the FlowSupervisor (per-stage retries, fallbacks, durable
  /// snapshots) instead of the plain checked flow.
  bool supervised = false;
  FlowConfig flow;
  SupervisorConfig sup;  ///< used only when `supervised`
};

/// One placer runtime: owns the context and the instance, runs the flow.
/// Not thread-safe itself (one driver thread per session); safe to run any
/// number of sessions on different threads concurrently.
class PlacerSession {
 public:
  explicit PlacerSession(SessionOptions opt = {});
  PlacerSession(const PlacerSession&) = delete;
  PlacerSession& operator=(const PlacerSession&) = delete;

  /// Loads a Bookshelf instance (`<design>.aux`) into the session.
  Status load(const std::string& auxPath);
  /// Adopts an already-built instance instead (takes ownership). The DB is
  /// finalized here if the caller has not done so.
  Status adopt(PlacementDB db);

  /// Runs the (supervised) flow on the loaded instance. Degradation is
  /// reported in FlowResult::status exactly as with runEplaceFlow.
  StatusOr<FlowResult> place();

  [[nodiscard]] PlacementDB& db() { return db_; }
  [[nodiscard]] const PlacementDB& db() const { return db_; }
  /// Last successful place() result; nullptr before that.
  [[nodiscard]] const FlowResult* result() const {
    return hasResult_ ? &result_ : nullptr;
  }
  /// Per-stage story of the last supervised place().
  [[nodiscard]] const SupervisorReport& report() const { return report_; }
  /// Structured run record of the last successful place(); nullptr before
  /// that. Serialize with writeRunRecord()/writeRunRecordFile().
  [[nodiscard]] const RunRecord* record() const {
    return hasResult_ ? &record_ : nullptr;
  }
  /// The session's runtime (arm faults, read stats, adjust log level).
  [[nodiscard]] RuntimeContext& context() { return ctx_; }
  [[nodiscard]] const SessionOptions& options() const { return opt_; }

 private:
  SessionOptions opt_;
  RuntimeContext ctx_;
  PlacementDB db_;
  bool loaded_ = false;
  bool hasResult_ = false;
  FlowResult result_;
  SupervisorReport report_;
  RunRecord record_;
};

// --- concurrent batch ------------------------------------------------------

struct BatchItem {
  std::string auxPath;
  /// Session name; empty derives it from the aux file stem.
  std::string name;
};

struct BatchOptions {
  /// Sessions in flight at once (the work-stealing slot count). Jobs beyond
  /// this queue up and are claimed as slots free.
  int maxConcurrentSessions = 2;
  /// Total worker threads split evenly across the concurrent sessions
  /// (each gets max(1, total/K)); <= 0 keeps `session.threads` per session.
  /// Either way results are bit-identical to a sequential run.
  int totalThreads = 0;
  /// Template for every session; `name`, `threads` and the snapshot
  /// directory are overridden per item.
  SessionOptions session;
  /// When set, each session checkpoints under `<snapshotRoot>/<name>`
  /// (implies supervised); keeps concurrent snapshot streams collision-free.
  std::string snapshotRoot;
};

struct BatchItemResult {
  std::string name;
  Status status;    ///< load/validate failures; OK covers degraded flows
  FlowResult flow;  ///< valid when status.ok()
  RunRecord record;  ///< valid when status.ok()
  double seconds = 0.0;
};

struct BatchResult {
  std::vector<BatchItemResult> items;  ///< one per input, input order
  double totalSeconds = 0.0;
  [[nodiscard]] bool allOk() const {
    for (const auto& r : items) {
      if (!r.status.ok()) return false;
    }
    return true;
  }
};

/// Places every item with at most `maxConcurrentSessions` sessions in
/// flight. Results land in input order regardless of completion order.
BatchResult runPlacerBatch(const std::vector<BatchItem>& items,
                           const BatchOptions& opt = {});

}  // namespace ep
