#include "eplace/session.h"

#include <algorithm>
#include <atomic>
#include <thread>

#include "bookshelf/bookshelf.h"
#include "util/timer.h"

namespace ep {

namespace {

RuntimeOptions toRuntimeOptions(const SessionOptions& opt) {
  RuntimeOptions ro;
  ro.threads = opt.threads;
  ro.seed = opt.seed;
  ro.logPrefix = opt.name;
  ro.logLevel = opt.logLevel;
  ro.logTimestamps = opt.logTimestamps;
  ro.wallBudgetSeconds = opt.wallBudgetSeconds;
  ro.memBudgetBytes = opt.memBudgetMb << 20;
  return ro;
}

/// "designs/adaptec1.aux" -> "adaptec1".
std::string stemOf(const std::string& path) {
  const auto slash = path.find_last_of('/');
  const std::size_t begin = slash == std::string::npos ? 0 : slash + 1;
  auto dot = path.find_last_of('.');
  if (dot == std::string::npos || dot < begin) dot = path.size();
  return path.substr(begin, dot - begin);
}

}  // namespace

PlacerSession::PlacerSession(SessionOptions opt)
    : opt_(std::move(opt)), ctx_(toRuntimeOptions(opt_)) {}

Status PlacerSession::load(const std::string& auxPath) {
  db_ = PlacementDB{};
  loaded_ = false;
  hasResult_ = false;
  const Status s = readBookshelf(auxPath, db_, &ctx_);
  if (!s.ok()) return s;
  loaded_ = true;
  ctx_.log().info("session: loaded %s (%zu objects, %zu nets)",
                  db_.name.c_str(), db_.objects.size(), db_.nets.size());
  return Status::okStatus();
}

Status PlacerSession::adopt(PlacementDB db) {
  db_ = std::move(db);
  hasResult_ = false;
  if (!db_.view().built()) db_.finalize();
  loaded_ = true;
  return Status::okStatus();
}

StatusOr<FlowResult> PlacerSession::place() {
  if (!loaded_) {
    return Status::invalidInput("no instance loaded; call load() or adopt()");
  }
  // Memory governance: the view/CSR arrays are the session's O(cells+pins)
  // base cost — charge them up front so an oversized instance fails here
  // with a typed status instead of OOMing mid-flow — and meter all arena
  // growth (kernel scratch, GP state, density maps) through the context
  // budget for the duration of the run. Accounting runs even without a
  // limit so peak-bytes reporting works for unbudgeted jobs.
  MemoryBudget& mb = ctx_.memory();
  db_.view().arena().setBudget(&mb);
  ScopedCharge base(mb, db_.view().footprintBytes());
  if (mb.limited() && !base.ok()) {
    return Status::resourceExhausted(
        "memory budget " + std::to_string(mb.limitBytes()) +
        " B cannot hold the placement view (" +
        std::to_string(db_.view().footprintBytes()) + " B)");
  }
  report_ = SupervisorReport{};
  StatusOr<FlowResult> run = [&]() -> StatusOr<FlowResult> {
    try {
      return opt_.supervised
                 ? runSupervisedFlow(db_, opt_.flow, opt_.sup, &report_, &ctx_)
                 : runEplaceFlowChecked(db_, opt_.flow, &ctx_);
    } catch (const MemoryBudgetExceeded& e) {
      // The supervised path converts breaches itself (with degradation
      // first); this is the unsupervised flow's backstop — typed, never
      // an abort.
      return Status::resourceExhausted(e.what());
    }
  }();
  if (run.ok()) {
    result_ = *run;
    record_ = buildRunRecord(db_, result_,
                             opt_.supervised ? &report_ : nullptr, &ctx_,
                             opt_.supervised);
    hasResult_ = true;
  }
  return run;
}

BatchResult runPlacerBatch(const std::vector<BatchItem>& items,
                           const BatchOptions& opt) {
  BatchResult batch;
  batch.items.resize(items.size());
  if (items.empty()) return batch;

  const int slots = std::min<int>(std::max(1, opt.maxConcurrentSessions),
                                  static_cast<int>(items.size()));
  const int threadsPer =
      opt.totalThreads > 0 ? std::max(1, opt.totalThreads / slots)
                           : opt.session.threads;

  Timer wall;
  // Job-level work stealing: each slot claims the next unplaced item. The
  // fixed-partition pools inside a session cannot rebalance across
  // sessions, but the determinism contract makes the per-session thread
  // cap result-invariant, so an even static split costs nothing in
  // correctness and the job queue evens out wall-clock.
  std::atomic<std::size_t> next{0};
  auto worker = [&] {
    for (;;) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= items.size()) return;
      const BatchItem& item = items[i];
      BatchItemResult& out = batch.items[i];
      out.name = item.name.empty() ? stemOf(item.auxPath) : item.name;
      Timer t;
      SessionOptions so = opt.session;
      so.name = out.name;
      so.threads = threadsPer;
      if (!opt.snapshotRoot.empty()) {
        so.supervised = true;
        so.sup.snapshotDir = opt.snapshotRoot + "/" + out.name;
        if (!so.sup.resumeDir.empty()) {
          so.sup.resumeDir = opt.snapshotRoot + "/" + out.name;
        }
      }
      try {
        PlacerSession session(so);
        out.status = session.load(item.auxPath);
        if (out.status.ok()) {
          StatusOr<FlowResult> run = session.place();
          if (run.ok()) {
            out.flow = *run;
            out.record = *session.record();
          } else {
            out.status = run.status();
          }
        }
      } catch (const std::exception& e) {
        out.status = Status::internal(std::string("session aborted: ") +
                                      e.what());
      }
      out.seconds = t.seconds();
    }
  };

  if (slots == 1) {
    worker();  // degenerate batch: no extra thread, easier to debug
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(slots));
    for (int s = 0; s < slots; ++s) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  batch.totalSeconds = wall.seconds();
  return batch;
}

}  // namespace ep
