#include "eplace/global_placer.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "density/electro.h"
#include "util/context.h"
#include "util/fault_injector.h"
#include "util/log.h"
#include "util/parallel.h"
#include "util/stats.h"
#include "wirelength/wl.h"

namespace ep {

namespace {

/// Grid resolution per config / auto rule.
std::size_t gridDim(std::size_t cfgDim, std::size_t numObjects) {
  return cfgDim != 0 ? cfgDim : BinGrid::chooseResolution(numObjects);
}

/// Memory-budget charge for the bin grid and its spectral solver,
/// constructed BEFORE ElectroDensity so a breach throws (surfacing as
/// kResourceExhausted at the stage boundary, where the supervisor retries
/// with a coarser grid) without the grid ever allocating. ~8 double planes
/// at grid resolution: density/potential/field maps plus DCT workspaces.
class GridBudgetCharge {
 public:
  GridBudgetCharge(MemoryBudget& mb, std::size_t nx, std::size_t ny)
      : mb_(mb), bytes_(nx * ny * sizeof(double) * 8) {
    mb_.chargeOrThrow(bytes_);
  }
  ~GridBudgetCharge() { mb_.release(bytes_); }
  GridBudgetCharge(const GridBudgetCharge&) = delete;
  GridBudgetCharge& operator=(const GridBudgetCharge&) = delete;

 private:
  MemoryBudget& mb_;
  std::size_t bytes_;
};

}  // namespace

// Internal arrays shared by the main run and the filler-only run. All
// per-var buffers are borrowed from the view's ScratchArena ("gp." keys):
// the mGP engine warms the capacities and the cGP / filler-only engines
// built afterwards reuse those allocations instead of rebuilding them.
struct GlobalPlacer::Engine {
  RuntimeContext& rc;
  PlacementDB& db;
  const GpConfig& cfg;
  FillerSet& fillers;
  TimeBreakdown& breakdown;

  std::size_t nCells = 0;    // optimized movable objects
  std::size_t nFillers = 0;
  std::size_t nVars = 0;     // nCells + nFillers

  std::span<double> w, h, q;               // per-var dims and charge
  std::span<const std::int32_t> objToVar;  // db object -> var (< nCells)
  std::span<double> wlPrecond;             // |E_i| per var (0 for fillers)
  std::span<double> loX, hiX, loY, hiY;    // projection box per var

  GridBudgetCharge gridCharge;  // before density: charge precedes allocation
  ElectroDensity density;
  WlEvaluator wlEval;

  // All hot loops below run on the context's pool; every kernel is
  // deterministic (bit-identical results for any thread count — see
  // docs/PERFORMANCE.md).
  ThreadPool* pool = nullptr;

  // Scratch gradient buffers.
  std::span<double> gxW, gyW, gxD, gyD;

  double gammaX = 1.0, gammaY = 1.0;
  double lambda = 0.0;
  double smoothWl = 0.0;  // last W~ value

  Engine(RuntimeContext& rcIn, PlacementDB& dbIn,
         const std::vector<std::int32_t>& movables, const GpConfig& cfgIn,
         FillerSet& fillersIn, TimeBreakdown& bd)
      : rc(rcIn),
        db(dbIn),
        cfg(cfgIn),
        fillers(fillersIn),
        breakdown(bd),
        gridCharge(rcIn.memory(),
                   gridDim(cfgIn.gridNx, movables.size() + fillersIn.size()),
                   gridDim(cfgIn.gridNy, movables.size() + fillersIn.size())),
        density(dbIn.region,
                gridDim(cfgIn.gridNx, movables.size() + fillersIn.size()),
                gridDim(cfgIn.gridNy, movables.size() + fillersIn.size()),
                dbIn.targetDensity, &dbIn.view().arena(), &rcIn.faults()),
        pool(&rcIn.pool()) {
    PlacementView& pv = db.view();
    assert(pv.built());
    // Stage boundary: whatever moved objects since the last finalize
    // (earlier stages, supervisor restores, jitter retries) is synced into
    // the view so its fixed-object geometry is fresh for the kernels.
    pv.syncPositionsFromDb(db);

    nCells = movables.size();
    nFillers = fillers.size();
    nVars = nCells + nFillers;
    ScratchArena& arena = pv.arena();
    w = arena.doubles("gp.w", nVars);
    h = arena.doubles("gp.h", nVars);
    q = arena.doubles("gp.q", nVars);
    wlPrecond = arena.doubles("gp.wlPrecond", nVars);
    std::fill(wlPrecond.begin(), wlPrecond.end(), 0.0);
    loX = arena.doubles("gp.loX", nVars);
    hiX = arena.doubles("gp.hiX", nVars);
    loY = arena.doubles("gp.loY", nVars);
    hiY = arena.doubles("gp.hiY", nVars);

    // The obj -> var map is the view's movable remap whenever this run
    // optimizes exactly the canonical movable set (the common case); only
    // a subset run (e.g. filler-only, nCells == 0) builds its own.
    const auto vMov = pv.movable();
    const bool canonical =
        movables.size() == vMov.size() &&
        std::equal(movables.begin(), movables.end(), vMov.begin());
    if (canonical) {
      objToVar = pv.objToMovable();
    } else {
      auto o2v = arena.ints("gp.objToVar", db.objects.size());
      std::fill(o2v.begin(), o2v.end(), -1);
      for (std::size_t v = 0; v < nCells; ++v) {
        o2v[static_cast<std::size_t>(movables[v])] =
            static_cast<std::int32_t>(v);
      }
      objToVar = o2v;
    }
    const auto ow = pv.w();
    const auto oh = pv.h();
    const auto oarea = pv.area();
    for (std::size_t v = 0; v < nCells; ++v) {
      const auto obj = static_cast<std::size_t>(movables[v]);
      w[v] = ow[obj];
      h[v] = oh[obj];
      q[v] = oarea[obj];
      wlPrecond[v] = static_cast<double>(pv.degreeOf(movables[v]));
    }
    for (std::size_t k = 0; k < nFillers; ++k) {
      const std::size_t v = nCells + k;
      w[v] = fillers.w;
      h[v] = fillers.h;
      q[v] = fillers.w * fillers.h;
    }
    const Rect& r = db.region;
    for (std::size_t v = 0; v < nVars; ++v) {
      loX[v] = r.lx + w[v] * 0.5;
      hiX[v] = std::max(loX[v], r.hx - w[v] * 0.5);
      loY[v] = r.ly + h[v] * 0.5;
      hiY[v] = std::max(loY[v], r.hy - h[v] * 0.5);
    }
    gxW = arena.doubles("gp.gxW", nVars);
    gyW = arena.doubles("gp.gyW", nVars);
    gxD = arena.doubles("gp.gxD", nVars);
    gyD = arena.doubles("gp.gyD", nVars);
    density.stampFixed(db);
    wlEval = WlEvaluator(db, objToVar, nVars);
  }

  [[nodiscard]] ChargeView allCharges(std::span<const double> x,
                                      std::span<const double> y) const {
    return {x.subspan(0, nVars), y.subspan(0, nVars), w, h};
  }
  [[nodiscard]] ChargeView cellCharges(std::span<const double> x,
                                       std::span<const double> y) const {
    return {x.subspan(0, nCells), y.subspan(0, nCells),
            std::span<const double>(w).subspan(0, nCells),
            std::span<const double>(h).subspan(0, nCells)};
  }

  /// Objective + preconditioned gradient; `v` is [x..., y...].
  double evalGrad(std::span<const double> v, std::span<double> grad) {
    const auto x = v.subspan(0, nVars);
    const auto y = v.subspan(nVars, nVars);
    {
      ScopedTimer t(breakdown, "density");
      density.update(allCharges(x, y), pool);
      density.gradient(allCharges(x, y), gxD, gyD, pool);
    }
    double wl = 0.0;
    {
      ScopedTimer t(breakdown, "wirelength");
      const VarView view{&db, objToVar, x, y};
      wl = wlEval.waGrad(view, gammaX, gammaY, gxW, gyW, pool);
    }
    smoothWl = wl;
    auto assemble = [&](std::size_t, std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        const double pre = cfg.enablePreconditioner
                               ? std::max(1.0, wlPrecond[i] + lambda * q[i])
                               : 1.0;
        grad[i] = (gxW[i] + lambda * gxD[i]) / pre;
        grad[nVars + i] = (gyW[i] + lambda * gyD[i]) / pre;
      }
    };
    pool->parallelFor(nVars, assemble);
    // Fault site "nesterov.grad": corrupts the assembled gradient so the
    // health monitor's rollback-and-recover path can be exercised.
    FaultInjector& inj = rc.faults();
    if (inj.active()) {
      if (const FaultSpec* f = inj.fire("nesterov.grad")) {
        inj.corrupt(grad, *f);
      }
    }
    return wl + lambda * density.energy();
  }

  void project(std::span<double> v) const {
    pool->parallelFor(nVars, [&](std::size_t, std::size_t i0, std::size_t i1) {
      for (std::size_t i = i0; i < i1; ++i) {
        v[i] = std::clamp(v[i], loX[i], hiX[i]);
        v[nVars + i] = std::clamp(v[nVars + i], loY[i], hiY[i]);
      }
    });
  }

  /// Initial lambda: ratio of L1 gradient norms (wirelength over density)
  /// at the start point, per FFTPL/ePlace.
  double initialLambda(std::span<const double> v) {
    const auto x = v.subspan(0, nVars);
    const auto y = v.subspan(nVars, nVars);
    density.update(allCharges(x, y), pool);
    density.gradient(allCharges(x, y), gxD, gyD, pool);
    const VarView view{&db, objToVar, x, y};
    wlEval.waGrad(view, gammaX, gammaY, gxW, gyW, pool);
    const double wlNorm = norm1(gxW) + norm1(gyW);
    const double dNorm = norm1(gxD) + norm1(gyD);
    return dNorm > 0.0 ? wlNorm / dNorm : 1.0;
  }

  /// Exact HPWL at the given variable values.
  double exactHpwl(std::span<const double> v) {
    const VarView view{&db, objToVar, v.subspan(0, nVars),
                       v.subspan(nVars, nVars)};
    return wlEval.hpwl(view, pool);
  }

  double overflow(std::span<const double> v) const {
    return density.overflow(
        cellCharges(v.subspan(0, nVars), v.subspan(nVars, nVars)), pool);
  }

  void updateGamma(double tau) {
    gammaX = waGammaSchedule(density.grid().dx(), tau);
    gammaY = waGammaSchedule(density.grid().dy(), tau);
  }

  /// Collect the start vector from the view (cells) and the filler set
  /// into the arena (stage-entry reuse; valid until the next run starts).
  [[nodiscard]] std::span<const double> startVector(
      const std::vector<std::int32_t>& movables) const {
    const PlacementView& pv = db.view();
    auto v = pv.arena().doubles("gp.v0", 2 * nVars);
    const auto lx = pv.lx(), ly = pv.ly(), ow = pv.w(), oh = pv.h();
    for (std::size_t i = 0; i < nCells; ++i) {
      const auto obj = static_cast<std::size_t>(movables[i]);
      v[i] = lx[obj] + ow[obj] * 0.5;
      v[nVars + i] = ly[obj] + oh[obj] * 0.5;
    }
    for (std::size_t k = 0; k < nFillers; ++k) {
      v[nCells + k] = fillers.cx[k];
      v[nVars + nCells + k] = fillers.cy[k];
    }
    return v;
  }

  void writeBack(std::span<const double> v,
                 const std::vector<std::int32_t>& movables) {
    for (std::size_t i = 0; i < nCells; ++i) {
      auto& o = db.objects[static_cast<std::size_t>(movables[i])];
      o.setCenter(v[i], v[nVars + i]);
    }
    for (std::size_t k = 0; k < nFillers; ++k) {
      fillers.cx[k] = v[nCells + k];
      fillers.cy[k] = v[nVars + nCells + k];
    }
  }
};

GlobalPlacer::GlobalPlacer(PlacementDB& db,
                           std::vector<std::int32_t> movables, GpConfig cfg,
                           RuntimeContext* ctx)
    : ctx_(resolveContext(ctx)),
      db_(db),
      movables_(std::move(movables)),
      cfg_(cfg) {}

void GlobalPlacer::makeFillersFromDb() {
  fillers_ = makeFillers(db_, cfg_.fillerSeed, &ctx_);
}

void GlobalPlacer::setFillers(FillerSet fillers) {
  fillers_ = std::move(fillers);
}

void GlobalPlacer::runFillerOnly(int iterations) {
  if (fillers_.size() == 0 || iterations <= 0) return;
  // Dedicated engine: no movable cells, all real objects static charges.
  std::vector<std::int32_t> none;
  Engine eng(ctx_, db_, none, cfg_, fillers_, breakdown_);
  // Pin every movable object as a static charge, gathered from the view
  // (the engine constructor just synced it) via arena buffers.
  const PlacementView& pv = db_.view();
  const auto mov = pv.movable();
  const auto lx = pv.lx(), ly = pv.ly(), ow = pv.w(), oh = pv.h();
  auto cx = pv.arena().doubles("gp.static.cx", mov.size());
  auto cy = pv.arena().doubles("gp.static.cy", mov.size());
  auto cw = pv.arena().doubles("gp.static.w", mov.size());
  auto ch = pv.arena().doubles("gp.static.h", mov.size());
  for (std::size_t k = 0; k < mov.size(); ++k) {
    const auto obj = static_cast<std::size_t>(mov[k]);
    cx[k] = lx[obj] + ow[obj] * 0.5;
    cy[k] = ly[obj] + oh[obj] * 0.5;
    cw[k] = ow[obj];
    ch[k] = oh[obj];
  }
  eng.density.stampStaticCharges({cx, cy, cw, ch});
  eng.lambda = 1.0;  // density force only; wirelength plays no role

  NesterovConfig ncfg = cfg_.nesterov;
  ncfg.enableBacktracking = cfg_.enableBacktracking;
  ncfg.enableMomentum = cfg_.enableMomentum;
  ncfg.bootstrapMove = 0.1 * eng.density.grid().dx();
  NesterovOptimizer opt(
      2 * eng.nVars,
      [&eng](std::span<const double> v, std::span<double> g) {
        return eng.evalGrad(v, g);
      },
      ncfg, [&eng](std::span<double> v) { eng.project(v); }, &ctx_.pool());
  const auto v0 = eng.startVector(none);
  opt.initialize(v0);
  for (int k = 0; k < iterations && !ctx_.cancelled(); ++k) opt.step();
  if (!allFinite(opt.solution())) {
    // Fillers are an optimizer-internal device; a blown-up prelude must not
    // poison cGP. Keep the (finite) input distribution instead.
    ctx_.log().warn(
        "filler-only placement went non-finite; keeping input positions");
    return;
  }
  eng.writeBack(opt.solution(), none);
  ctx_.log().info("filler-only placement: %d iterations over %zu fillers",
                  iterations, fillers_.size());
}

GpResult GlobalPlacer::run(TraceFn trace, const GpRunControl& ctl) {
  GpResult result;
  Engine eng(ctx_, db_, movables_, cfg_, fillers_, breakdown_);
  if (eng.nVars == 0) return result;

  NesterovConfig ncfg = cfg_.nesterov;
  ncfg.enableBacktracking = cfg_.enableBacktracking;
  ncfg.enableMomentum = cfg_.enableMomentum;
  ncfg.bootstrapMove = 0.1 * eng.density.grid().dx();
  NesterovOptimizer opt(
      2 * eng.nVars,
      [&eng](std::span<const double> v, std::span<double> g) {
        return eng.evalGrad(v, g);
      },
      ncfg, [&eng](std::span<double> v) { eng.project(v); }, &ctx_.pool());

  // The stage watchdog honors both the configured budget and the context's
  // session-wide wall-clock deadline, whichever expires first.
  HealthConfig health = cfg_.health;
  const double remaining = ctx_.remainingSeconds();
  if (std::isfinite(remaining)) {
    const double rem = std::max(1e-3, remaining);
    health.timeBudgetSeconds = health.timeBudgetSeconds > 0.0
                                   ? std::min(health.timeBudgetSeconds, rem)
                                   : rem;
  }
  HealthMonitor monitor(health);
  double prevHpwl = 0.0;
  double refHpwl = 0.0;
  double startTau = 0.0;
  int startIter = 0;
  if (ctl.resume != nullptr) {
    // Warm start from a saved checkpoint: restore the optimizer and the
    // schedule scalars and continue the exact trajectory.
    const GpCheckpointState& rs = *ctl.resume;
    if (rs.opt.u.size() != 2 * eng.nVars) {
      result.status = Status::invalidInput(
          "checkpoint dimension " + std::to_string(rs.opt.u.size()) +
          " does not match engine dimension " +
          std::to_string(2 * eng.nVars));
      ctx_.log().warn("GP: %s", result.status.message().c_str());
      return result;
    }
    if (!allFinite(rs.opt.u) || !allFinite(rs.opt.cur)) {
      result.status =
          Status::invalidInput("checkpoint holds non-finite positions");
      ctx_.log().warn("GP: %s", result.status.message().c_str());
      return result;
    }
    opt.restore(rs.opt);
    eng.lambda = rs.lambda;
    eng.updateGamma(rs.tau);
    prevHpwl = rs.prevHpwl;
    refHpwl = rs.refHpwl;
    startTau = rs.tau;
    startIter = rs.iter;
    monitor.resetAfterRollback(prevHpwl, rs.tau);
    ctx_.log().info(
        "GP: resuming from checkpoint at iter %d (HPWL %.4g, tau %.3f)",
        startIter, prevHpwl, rs.tau);
  } else {
    const auto v0 = eng.startVector(movables_);
    if (!allFinite(v0)) {
      result.status = Status::invalidInput(
          "non-finite start positions; run PlacementDB::sanitize() first");
      ctx_.log().warn("GP: %s", result.status.message().c_str());
      return result;
    }
    startTau = eng.overflow(v0);
    eng.updateGamma(startTau);
    eng.lambda = cfg_.initialLambda.value_or(eng.initialLambda(v0));
    opt.initialize(v0);
    prevHpwl = eng.exactHpwl(v0);
    refHpwl = prevHpwl;
  }
  const double refDelta =
      std::max(1e-12, cfg_.refHpwlDeltaFrac * std::max(refHpwl, 1.0));

  // Best-so-far checkpoint for rollback recovery. The start state is a
  // valid (if poor) fallback: its positions are finite by the scan above
  // even if an injected fault already poisoned the bootstrap gradients.
  struct Checkpoint {
    NesterovOptimizer::Snapshot snap;
    double lambda = 0.0;
    double tau = 0.0;
    double hpwl = 0.0;
    int iter = 0;
  };
  Checkpoint best;
  opt.snapshotInto(best.snap);
  best.lambda = eng.lambda;
  best.tau = startTau;
  best.hpwl = prevHpwl;
  best.iter = startIter;

  Timer wall;
  int recoveries = 0;

  int iter = startIter;
  for (; iter < cfg_.maxIterations; ++iter) {
    // Cooperative cancellation: polled alongside the health watchdog so a
    // cancel lands within one iteration. The best-so-far (or current, when
    // finite) state is returned exactly like a watchdog timeout — durable
    // mid-stage snapshots written before the cancel stay valid, so a
    // preempted job resumes the same trajectory bit-exactly.
    if (ctx_.cancelled()) {
      result.status = Status::cancelled(
          "stage cancelled (" + ctx_.cancelReason() +
          "); best-so-far returned");
      if (!allFinite(opt.solution())) {
        opt.restore(best.snap);
        eng.lambda = best.lambda;
      }
      ctx_.log().warn("GP: cancelled at iter %d (%s)", iter,
                      ctx_.cancelReason().c_str());
      break;
    }
    const auto info = opt.step();

    double curHpwl, tau;
    {
      ScopedTimer t(breakdown_, "other");
      curHpwl = eng.exactHpwl(opt.solution());
      tau = eng.overflow(opt.solution());
    }

    const HealthEvent ev = monitor.observe(iter, curHpwl, tau, opt.solution(),
                                           info.gradNorm, wall.seconds());
    if (ev == HealthEvent::kTimeout) {
      result.timedOut = true;
      result.status = Status::timeout(
          "stage exceeded its wall-clock budget; best-so-far returned");
      // The current state passed its last health check only if finite —
      // otherwise hand back the checkpoint.
      if (!allFinite(opt.solution())) {
        opt.restore(best.snap);
        eng.lambda = best.lambda;
      }
      ctx_.log().warn("GP: watchdog fired at iter %d after %.2fs", iter,
                      wall.seconds());
      ++iter;
      break;
    }
    if (ev == HealthEvent::kNonFinite || ev == HealthEvent::kDiverged) {
      if (recoveries >= cfg_.health.maxRecoveries) {
        // Graceful degradation: return the best checkpoint with a typed
        // error instead of NaN positions or an infinite retry loop.
        opt.restore(best.snap);
        eng.lambda = best.lambda;
        result.status = Status::numericalDivergence(
            std::string(healthEventName(ev)) + " at iter " +
            std::to_string(iter) + "; recovery budget (" +
            std::to_string(cfg_.health.maxRecoveries) +
            ") exhausted, returning checkpoint from iter " +
            std::to_string(best.iter));
        ctx_.log().warn("GP: %s", result.status.message().c_str());
        ++iter;
        break;
      }
      ++recoveries;
      ctx_.log().warn(
          "GP: %s at iter %d (HPWL %.4g, tau %.3f); rollback to iter %d, "
          "recovery %d/%d",
          healthEventName(ev), iter, curHpwl, tau, best.iter, recoveries,
          cfg_.health.maxRecoveries);
      opt.restore(best.snap);
      opt.coolRestart(cfg_.health.alphaResetScale);
      eng.lambda = best.lambda;
      eng.updateGamma(best.tau);
      monitor.resetAfterRollback(best.hpwl, best.tau);
      prevHpwl = best.hpwl;
      continue;  // this iteration produced no usable metrics
    }

    {
      ScopedTimer t(breakdown_, "other");
      eng.updateGamma(tau);

      // Penalty schedule: aggressive while HPWL holds, relaxed when it
      // degrades (RePlAce-style mu).
      const double dHpwl = curHpwl - prevHpwl;
      double mu = dHpwl < 0.0
                      ? cfg_.lambdaMultMax
                      : std::pow(cfg_.lambdaMultMax, 1.0 - dHpwl / refDelta);
      mu = std::clamp(mu, cfg_.lambdaMultMin, cfg_.lambdaMultMax);
      eng.lambda *= mu;
      prevHpwl = curHpwl;
    }

    // Refresh the checkpoint on the configured cadence whenever spreading
    // has not regressed: overflow is the progress metric of the stage.
    if (monitor.shouldCheckpoint(iter) && tau <= best.tau) {
      // snapshotInto reuses the checkpoint's capacity: refreshing the
      // best-so-far state allocates nothing in steady state.
      opt.snapshotInto(best.snap);
      best.lambda = eng.lambda;
      best.tau = tau;
      best.hpwl = curHpwl;
      best.iter = iter;
    }

    // Durable-checkpoint hook: hand out the state a resumed run needs to
    // continue from iteration iter+1 bit-exactly.
    if (ctl.saveEvery > 0 && ctl.save && (iter + 1) % ctl.saveEvery == 0) {
      ctl.save(GpCheckpointState{opt.snapshot(), eng.lambda, tau, prevHpwl,
                                 refHpwl, iter + 1});
    }

    if (trace) {
      // Sync positions so the callback can snapshot the live layout
      // (Fig. 2 / Fig. 3 benches plot from the DB mid-run).
      eng.writeBack(opt.solution(), movables_);
      trace(GpIterTrace{iter, curHpwl, tau, eng.lambda, eng.gammaX,
                        info.alpha, info.backtracks, eng.density.energy()});
    }

    if (tau <= cfg_.targetOverflow && iter >= cfg_.minIterations) {
      result.converged = true;
      ++iter;
      break;
    }
  }

  eng.writeBack(opt.solution(), movables_);
  lambda_ = eng.lambda;
  result.iterations = iter;
  result.recoveries = recoveries;
  result.finalHpwl = eng.exactHpwl(opt.solution());
  result.finalOverflow = eng.overflow(opt.solution());
  result.finalLambda = eng.lambda;
  result.gradEvals = opt.evalCount();
  result.backtracks = opt.backtrackCount();
  ctx_.stats().add("gp.iterations", static_cast<double>(iter));
  ctx_.stats().add("gp.gradEvals", static_cast<double>(result.gradEvals));
  ctx_.stats().add("gp.recoveries", static_cast<double>(recoveries));
  ctx_.log().info(
      "GP: %d iters, HPWL %.4g, overflow %.3f, converged=%d, "
      "recoveries=%d, status=%s",
      iter, result.finalHpwl, result.finalOverflow, result.converged ? 1 : 0,
      recoveries, statusCodeName(result.status.code()));
  return result;
}

}  // namespace ep
