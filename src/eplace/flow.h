// The complete ePlace flow (Fig. 1 of the paper):
//
//   mIP  quadratic wirelength-only initial placement
//   mGP  mixed-size global placement (Nesterov + eDensity, all movables +
//        fillers)
//   mLG  annealing macro legalization (mixed-size designs only)
//   cGP  standard-cell global placement with macros fixed: filler-only
//        redistribution, lambda rewound by 1.1^-m, then the same engine
//   cDP  legalization + detail placement of standard cells
//
// Standard-cell designs (no movable macros) skip mLG and cGP, exactly as
// the paper runs ISPD 2005/2006 ("with mLG and cGP disabled").
#pragma once

#include <functional>
#include <string>

#include "eplace/global_placer.h"
#include "eval/metrics.h"
#include "legal/detail.h"
#include "legal/legalize.h"
#include "legal/mlg.h"
#include "model/netlist.h"
#include "qp/initial_place.h"
#include "util/status.h"
#include "util/timer.h"

namespace ep {

class RuntimeContext;

struct FlowConfig {
  InitialPlaceConfig ip;
  GpConfig gp;  ///< used by mGP and (with rewound lambda) cGP
  MlgConfig mlg;
  DetailConfig detail;
  int fillerOnlyIterations = 20;  ///< Sec. VI-B
  int cgpBufferDivisor = 10;      ///< m = mGP iterations / 10
  bool enableFillerOnly = true;   ///< Sec. VI-B ablation switch
  bool runDetail = true;
  /// Per-iteration hook for the global placement stages; `stage` is "mGP"
  /// or "cGP" (the filler-only prelude moves no real objects and is not
  /// traced). The DB holds live positions during the call.
  std::function<void(const std::string& stage, const GpIterTrace&)> gpTrace;
};

struct StageMetrics {
  double hpwl = 0.0;
  double overflow = 0.0;
  double seconds = 0.0;
  int iterations = 0;
  bool ran = false;
};

/// One coarse level of the multilevel V-cycle (supervised flow only):
/// "mGP@L<level>" rows in the run record. Level indices count down toward
/// the flat netlist — the coarsest level has the highest index, level 0 is
/// the last clustered level before flat mGP refinement.
struct LevelMetrics {
  int level = 0;
  std::size_t clusters = 0;  ///< movable objects in the clustered instance
  StageMetrics metrics;
};

struct FlowResult {
  StageMetrics mip, mgp, mlg, cgp, cdp;
  /// Coarse V-cycle levels run before flat mGP, coarsest first. Empty for
  /// flat (non-multilevel) runs, so existing records are unchanged.
  std::vector<LevelMetrics> mgpLevels;
  double finalHpwl = 0.0;
  double finalScaledHpwl = 0.0;
  LegalityReport legality;
  GpResult mgpResult, cgpResult;
  MlgResult mlgResult;
  LegalizeResult legalizeResult;
  DetailResult detailResult;
  TimeBreakdown stageSeconds;  ///< "mIP"/"mGP"/"mLG"/"cGP"/"cDP" (Fig. 7)
  TimeBreakdown mgpInner;      ///< "density"/"wirelength"/"other" (Fig. 7)
  double totalSeconds = 0.0;
  /// OK for a clean run. kNumericalDivergence / kTimeout when a placement
  /// stage degraded gracefully (the first failing stage wins); the result
  /// then holds that stage's best-checkpoint placement, finite and inside
  /// the region, carried through the remaining stages.
  Status status;
};

/// Runs the flow on `db` in place and returns every stage's metrics.
/// Mixed-size behaviour (mLG + cGP) activates automatically when the design
/// has movable macros. The mGP filler set is reused by cGP per the paper.
/// Assumes a valid, finalized db (see runEplaceFlowChecked for the
/// validating entry point); degradation status is in FlowResult::status.
/// `ctx` supplies the thread pool, fault injector, log sink and deadline
/// for every stage; nullptr uses the process-default context.
FlowResult runEplaceFlow(PlacementDB& db, const FlowConfig& cfg = {},
                         RuntimeContext* ctx = nullptr);

/// Validating entry point: sanitizes the instance (clamping stranded fixed
/// pads, recentering non-finite movables), validates it, then runs the
/// flow. Returns kInvalidInput without placing anything when the instance
/// is structurally unusable; otherwise the FlowResult (whose `status`
/// reports any in-flight degradation, see above).
StatusOr<FlowResult> runEplaceFlowChecked(PlacementDB& db,
                                          const FlowConfig& cfg = {},
                                          RuntimeContext* ctx = nullptr);

// ---------------------------------------------------------------------------
// Stage-level decomposition. runEplaceFlow drives these in order; the
// FlowSupervisor (eplace/supervisor.h) drives the same functions but wraps
// each call with wall-clock budgets, bounded retries, fallbacks, and
// inter-stage invariant gates, and threads GpRunControl through the GP
// stages for durable checkpoint/resume. Keeping one implementation per
// stage guarantees the supervised flow cannot drift from the plain one.
// ---------------------------------------------------------------------------

/// Mutable state threaded through the stage functions. `ctx` is borrowed
/// (never owned) and may be nullptr, meaning the process-default context.
struct FlowState {
  FlowConfig cfg;
  FlowResult res;
  FillerSet fillers;  ///< mGP filler set, reused by cGP (Sec. VI-B)
  bool mixedSize = false;
  RuntimeContext* ctx = nullptr;
  Timer total;
};

/// Metrics snapshot of the current DB state, as recorded per stage.
StageMetrics flowStageMetrics(const PlacementDB& db, double seconds,
                              int iterations);

void flowStageMip(PlacementDB& db, FlowState& st);
void flowStageMgp(PlacementDB& db, FlowState& st, const GpRunControl& ctl = {});
void flowStageMlg(PlacementDB& db, FlowState& st);
/// Freezes movable macros (mLG's output) for the rest of the flow.
void flowFreezeMacros(PlacementDB& db);
void flowStageCgp(PlacementDB& db, FlowState& st, const GpRunControl& ctl = {});
void flowStageCdp(PlacementDB& db, FlowState& st);
/// Final metrics / legality / status aggregation plus the summary log line.
void flowFinish(PlacementDB& db, FlowState& st);

}  // namespace ep
