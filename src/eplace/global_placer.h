// The ePlace global placement engine (Sec. V): Nesterov's method over the
// composite cost f(v) = W~(v) + lambda N(v), with
//   * weighted-average wirelength smoothing, gamma scheduled from the
//     density overflow tau (sharpening as spreading progresses);
//   * eDensity electrostatic penalty with spectral gradients;
//   * the approximated diagonal preconditioner |E_i| + lambda q_i (Eq. 12/13);
//   * penalty factor lambda normalized from the first-iteration gradient
//     ratio and multiplied per iteration by mu in [0.75, 1.1] driven by the
//     HPWL delta (aggressive while wirelength is stable, relaxed when it
//     degrades);
//   * termination at overflow tau <= 10% (configurable) or the iteration cap.
//
// The same engine runs both placement phases: mGP optimizes all movables
// (macros + cells + fillers); cGP re-runs it with macros fixed, after a
// filler-only placement redistributes fillers around the legalized macros
// (Sec. VI-B).
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "eplace/filler.h"
#include "model/netlist.h"
#include "opt/health.h"
#include "opt/nesterov.h"
#include "util/status.h"
#include "util/timer.h"

namespace ep {

class RuntimeContext;

struct GpConfig {
  double targetOverflow = 0.10;  ///< mGP stop criterion (Sec. III)
  int maxIterations = 3000;      ///< paper's cap (Sec. V-D)
  int minIterations = 20;
  std::size_t gridNx = 0;  ///< 0 = auto (power of two tracking object count)
  std::size_t gridNy = 0;
  bool enablePreconditioner = true;  ///< Sec. V-D ablation switch
  bool enableBacktracking = true;    ///< Sec. V-C ablation switch
  bool enableMomentum = true;        ///< degrade to gradient descent
  /// lambda multiplier bounds and the HPWL delta (relative to initial HPWL)
  /// that maps to mu = 1.0.
  double lambdaMultMax = 1.1;
  double lambdaMultMin = 0.95;
  double refHpwlDeltaFrac = 1e-2;
  /// Override the initial lambda (cGP uses lambda_mGP * 1.1^-m, Sec. VI-B).
  std::optional<double> initialLambda;
  std::uint64_t fillerSeed = 7;
  NesterovConfig nesterov;
  /// Numerical health monitoring, checkpoint/rollback recovery and the
  /// per-stage wall-clock watchdog (docs/ROBUSTNESS.md).
  HealthConfig health;
};

/// Per-iteration trace record (drives Fig. 2 / Fig. 3 benches).
struct GpIterTrace {
  int iter = 0;
  double hpwl = 0.0;
  double overflow = 0.0;
  double lambda = 0.0;
  double gamma = 0.0;
  double alpha = 0.0;
  int backtracks = 0;
  double energy = 0.0;  ///< N(v)
};

struct GpResult {
  int iterations = 0;
  double finalOverflow = 0.0;
  double finalHpwl = 0.0;
  double finalLambda = 0.0;
  bool converged = false;  ///< reached target overflow within the cap
  long gradEvals = 0;
  long backtracks = 0;
  /// OK on a normal run (including graceful target miss at the iteration
  /// cap); kNumericalDivergence when the recovery budget was exhausted and
  /// the best checkpoint was returned; kTimeout when the stage watchdog
  /// fired (best-so-far state returned).
  Status status;
  int recoveries = 0;      ///< rollback-and-recover events that succeeded
  bool timedOut = false;   ///< stage wall-clock budget expired
};

/// Mid-stage checkpoint of a GP run: the optimizer snapshot plus the
/// schedule scalars (lambda, the HPWL samples driving mu, the overflow
/// anchoring gamma). Restoring one and rerunning continues the exact
/// iteration trajectory — this is what the FlowSupervisor serializes into
/// durable snapshots (util/snapshot, docs/ROBUSTNESS.md).
struct GpCheckpointState {
  NesterovOptimizer::Snapshot opt;
  double lambda = 0.0;
  double tau = 0.0;       ///< overflow at the checkpoint (gamma schedule)
  double prevHpwl = 0.0;  ///< last HPWL sample (mu schedule)
  double refHpwl = 0.0;   ///< stage-start HPWL anchoring refHpwlDeltaFrac
  int iter = 0;           ///< next iteration index to run
};

/// Optional checkpoint plumbing for run(): a periodic save callback and/or
/// a state to resume from instead of a cold initialize. Default-constructed
/// control is a no-op, so existing callers are unaffected.
struct GpRunControl {
  int saveEvery = 0;  ///< iterations between save() calls; 0 = never
  std::function<void(const GpCheckpointState&)> save;
  /// When set, the run restores this state (dimensions must match the
  /// engine: same movable set and filler count) and continues from
  /// `resume->iter` bit-exactly.
  const GpCheckpointState* resume = nullptr;
};

class GlobalPlacer {
 public:
  using TraceFn = std::function<void(const GpIterTrace&)>;

  /// `movables`: DB object ids this phase optimizes (others stay put and are
  /// treated as fixed charges if their `fixed` flag is set in the DB; a
  /// non-fixed object excluded from `movables` would neither move nor repel,
  /// so phases must keep flags consistent — the Flow does).
  ///
  /// `ctx` supplies the thread pool, fault injector, log sink, stats
  /// registry and wall-clock deadline; nullptr uses the process-default
  /// context. The context must outlive the placer (borrowed, not owned).
  GlobalPlacer(PlacementDB& db, std::vector<std::int32_t> movables,
               GpConfig cfg, RuntimeContext* ctx = nullptr);

  /// Create fillers from the DB whitespace budget (mGP) …
  void makeFillersFromDb();
  /// … or adopt an existing set (cGP reuses mGP's fillers).
  void setFillers(FillerSet fillers);
  [[nodiscard]] const FillerSet& fillers() const { return fillers_; }

  /// Filler-only placement (Sec. VI-B): cells pinned, fillers spread by the
  /// density force alone for a fixed number of iterations.
  void runFillerOnly(int iterations);

  /// Run the Nesterov loop until the overflow target or iteration cap.
  /// `ctl` optionally saves periodic checkpoints and/or resumes from one.
  GpResult run(TraceFn trace = {}, const GpRunControl& ctl = {});

  [[nodiscard]] double lambda() const { return lambda_; }
  /// Stage-internal runtime split (Fig. 7: density vs wirelength vs other).
  [[nodiscard]] const TimeBreakdown& breakdown() const { return breakdown_; }

 private:
  struct Engine;  // internal arrays + callbacks, built per run
  RuntimeContext& ctx_;
  PlacementDB& db_;
  std::vector<std::int32_t> movables_;
  GpConfig cfg_;
  FillerSet fillers_;
  double lambda_ = 0.0;
  TimeBreakdown breakdown_;
};

}  // namespace ep
