// FlowSupervisor — crash-safe, self-healing execution of the ePlace flow.
//
// Production runs of the mixed-size pipeline (mIP -> mGP -> mLG -> cGP ->
// cDP) are long enough that a crash, an OOM kill, or one misbehaving stage
// must not cost the whole run. The supervisor drives the SAME stage
// functions as runEplaceFlow (eplace/flow.h) but wraps each one with:
//
//   * durable checkpoints — versioned, CRC-protected snapshots
//     (util/snapshot.h) written atomically at every stage boundary and,
//     inside the GP stages, every `saveEvery` iterations. A killed run
//     restarts with `resumeDir` set and continues from the newest valid
//     snapshot; a mid-GP snapshot resumes the exact iteration trajectory
//     bit-exactly. Corrupt (truncated / bit-flipped) snapshots are detected
//     by checksum and skipped in favor of the previous good one.
//   * per-stage wall-clock budgets — GP stages get the remaining budget as
//     their internal watchdog; mLG/cDP are checked between attempts.
//   * bounded retries with perturbed parameters — relaxed target overflow
//     and re-seeded fillers for GP stages, a re-seeded annealer with more
//     outer iterations for mLG, jittered cell positions for legalization.
//   * fallbacks — greedy Tetris-only legalization when the Abacus-style
//     legalizer fails its gate or budget; detail placement is rolled back
//     (cDP "skipped") when it regresses HPWL or breaks legality.
//   * inter-stage invariant gates — all movables finite and in-core after
//     every stage; zero macro overlap after mLG; full row/site/overlap
//     legality after legalization and detail; HPWL-regression caps. A gate
//     failure rolls the DB back to the stage-entry (or snapshot) state
//     instead of letting corruption propagate silently.
//
// Per-stage outcomes (attempts, fallbacks, time, status) are collected in a
// SupervisorReport and summarized at flow end. Policy and format details:
// docs/ROBUSTNESS.md.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "eplace/flow.h"
#include "util/run_record.h"
#include "util/status.h"

namespace ep {

/// Stage cursor persisted in snapshots: the next stage a resumed run
/// executes. kDone snapshots hold the finished placement.
enum class FlowStage : std::uint8_t {
  kMip = 0,
  kMgp,
  kMlg,
  kCgp,
  kCdp,
  kDone,
};

const char* flowStageName(FlowStage s);

struct StagePolicy {
  int maxAttempts = 2;           ///< first try + retries
  double timeBudgetSeconds = 0;  ///< whole-stage wall budget; 0 = unbounded
};

/// One streaming progress notification from the supervisor. The serving
/// layer forwards these to watchers as NDJSON events; a CLI could render a
/// progress bar from them. Emitted synchronously on the supervisor's driver
/// thread — handlers must be cheap and must not throw.
struct SupervisorEvent {
  enum class Kind : std::uint8_t {
    kStageStart,   ///< about to run `stage`
    kStageFinish,  ///< `stage` accepted (attempts/seconds/status populated)
    kSnapshot,     ///< durable snapshot `snapshotSeq` written toward `stage`
    kResume,       ///< run restored from a snapshot; `stage` is the cursor
    kSnapshotFailed,  ///< a checkpoint could not be written (`status` says
                      ///< why); the run continues un-checkpointed and
                      ///< retries at the next interval unless the failure
                      ///< is persistent (ENOSPC), which degrades the run
                      ///< to snapshot-less mode
  };
  Kind kind = Kind::kStageStart;
  FlowStage stage = FlowStage::kMip;
  int attempts = 0;      ///< attempts consumed (finish events)
  double seconds = 0.0;  ///< stage wall seconds (finish events)
  Status status;         ///< accepted stage outcome (finish events)
  bool fellBack = false;
  int snapshotSeq = -1;  ///< file sequence number (snapshot events)
};

/// "stage_start" / "stage_finish" / "snapshot" / "resume" /
/// "snapshot_failed".
const char* supervisorEventKindName(SupervisorEvent::Kind k);

using SupervisorProgressFn = std::function<void(const SupervisorEvent&)>;

/// Multilevel V-cycle (docs/SCALING.md). When enabled and the design has at
/// least `minMovable` movables, the supervisor builds a cluster ladder
/// (src/cluster) after mIP and replaces the single flat mGP with
/// mGP@Lk -> uncoarsen -> mGP@Lk-1 -> ... -> uncoarsen -> flat mGP. Coarse
/// levels are cheap seeds: capped iterations, relaxed overflow target, and
/// a per-level finite-in-core gate that rolls a diverged level back to its
/// uncoarsened seed instead of propagating garbage. Clustering is serial
/// and the coarse GP runs use the same thread-count-deterministic kernels,
/// so the full V-cycle stays bit-identical at any thread count, and the
/// snapshot stream carries the active level for bit-exact kill-9 resume
/// mid-ladder.
struct MultilevelConfig {
  bool enabled = false;
  /// Engage threshold: below this many movables the flat path wins.
  std::size_t minMovable = 10000;
  ClusterConfig cluster;
  /// Iteration cap per coarse level (a seed, not a final placement).
  int levelMaxIterations = 300;
  /// Overflow target for coarse levels (floored at GpConfig::targetOverflow).
  double levelTargetOverflow = 0.25;
};

struct SupervisorConfig {
  StagePolicy mip{1, 0.0};  ///< deterministic; a retry would not differ
  StagePolicy mgp{2, 0.0};
  StagePolicy mlg{3, 0.0};
  StagePolicy cgp{2, 0.0};
  StagePolicy cdp{2, 0.0};
  /// Directory for durable snapshots; empty disables checkpointing.
  std::string snapshotDir;
  /// Resume from the newest valid snapshot in this directory (then keep
  /// checkpointing into `snapshotDir`). Empty = fresh run.
  std::string resumeDir;
  /// GP iterations between mid-stage snapshots (0 = boundaries only).
  int saveEvery = 0;
  /// Snapshot files retained in the directory (ring; oldest pruned).
  int keepSnapshots = 4;
  /// Added to GpConfig::targetOverflow per GP retry (relaxed density goal).
  double overflowRetryRelax = 0.05;
  /// Legalized HPWL may be at most this multiple of the pre-legal HPWL.
  double legalizeHpwlCap = 2.0;
  /// Detail placement may not end above (1 + this) x post-legalize HPWL.
  double detailRegressionTol = 1e-9;
  bool allowFallbacks = true;
  std::uint64_t perturbSeed = 0x5EEDCAFEULL;  ///< retry-jitter RNG stream
  /// Streaming progress hook (stage boundaries, snapshots, resume). Empty =
  /// no notifications. See SupervisorEvent for the callback contract.
  SupervisorProgressFn onProgress;
  /// Multilevel V-cycle for large designs (off by default).
  MultilevelConfig multilevel;
};

/// Outcome of one supervised stage (one row of the end-of-flow report).
struct StageReport {
  FlowStage stage = FlowStage::kMip;
  int attempts = 0;
  bool fellBack = false;  ///< fallback path produced the accepted result
  bool skipped = false;   ///< stage result discarded or stage not run
  bool resumed = false;   ///< satisfied from a snapshot, not executed
  double seconds = 0.0;
  Status status;  ///< final accepted outcome (OK even after retries)
  std::string note;
};

struct SupervisorReport {
  std::vector<StageReport> stages;
  int snapshotsWritten = 0;
  int snapshotsRejected = 0;  ///< corrupt/mismatched files skipped on resume
  bool resumed = false;
  FlowStage resumeStage = FlowStage::kMip;
  /// Human-readable per-stage table (logged at flow end, printed by the CLI).
  [[nodiscard]] std::string summary() const;
};

/// Runs the supervised flow on `db` in place. Sanitizes and validates first
/// (kInvalidInput without placing anything when the instance is unusable);
/// any in-flight degradation lands in FlowResult::status exactly as with
/// runEplaceFlow, with the per-stage story in `*report` when non-null.
/// `ctx` supplies the thread pool, fault injector, log sink and deadline
/// for every stage (its injector also drives the "snapshot.write" site);
/// nullptr uses the process-default context.
StatusOr<FlowResult> runSupervisedFlow(PlacementDB& db, const FlowConfig& cfg,
                                       const SupervisorConfig& sup = {},
                                       SupervisorReport* report = nullptr,
                                       RuntimeContext* ctx = nullptr);

/// Assembles the structured run record (util/run_record.h) for a finished
/// flow: per-stage metrics from `res`, retry counts from `report` (pass
/// nullptr for an unsupervised run), recovery/rollback/snapshot counters
/// and the stats dump from `ctx`'s registry, fingerprint/seed/threads from
/// the input and context. Lives here — not in util — because it reads
/// PlacementDB and FlowResult, which the util layer must not know about.
RunRecord buildRunRecord(const PlacementDB& db, const FlowResult& res,
                         const SupervisorReport* report = nullptr,
                         RuntimeContext* ctx = nullptr,
                         bool supervised = true);

}  // namespace ep
