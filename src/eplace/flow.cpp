#include "eplace/flow.h"

#include <cmath>

#include "util/context.h"
#include "util/log.h"
#include "wirelength/wl.h"

namespace ep {

StageMetrics flowStageMetrics(const PlacementDB& db, double seconds,
                              int iterations) {
  StageMetrics m;
  m.hpwl = hpwl(db);
  m.overflow = densityOverflow(db).overflow;
  m.seconds = seconds;
  m.iterations = iterations;
  m.ran = true;
  return m;
}

namespace {

StageMetrics stageSnapshot(const PlacementDB& db, double seconds, int iters) {
  return flowStageMetrics(db, seconds, iters);
}

}  // namespace

void flowStageMip(PlacementDB& db, FlowState& st) {
  Timer t;
  const auto ip = quadraticInitialPlace(db, st.cfg.ip, st.ctx);
  st.res.stageSeconds.add("mIP", t.seconds());
  st.res.mip = stageSnapshot(db, t.seconds(), st.cfg.ip.outerIterations);
}

void flowStageMgp(PlacementDB& db, FlowState& st, const GpRunControl& ctl) {
  Timer t;
  GlobalPlacer mgp(db, db.movable(), st.cfg.gp, st.ctx);
  if (ctl.resume != nullptr && st.fillers.size() > 0) {
    // Resumed mid-mGP: the checkpoint carries the filler set (positions are
    // inside the optimizer state; dims/count must match the engine).
    mgp.setFillers(st.fillers);
  } else {
    mgp.makeFillersFromDb();
    // Publish the set before run(): mid-stage save hooks serialize
    // st.fillers, and a resume needs matching filler dims/count.
    st.fillers = mgp.fillers();
  }
  GlobalPlacer::TraceFn trace;
  if (st.cfg.gpTrace) {
    trace = [&st](const GpIterTrace& it) { st.cfg.gpTrace("mGP", it); };
  }
  st.res.mgpResult = mgp.run(trace, ctl);
  st.fillers = mgp.fillers();
  st.res.mgpInner = mgp.breakdown();
  const double stageTotal = t.seconds();
  st.res.mgpInner.add("other", stageTotal - st.res.mgpInner.get("density") -
                                   st.res.mgpInner.get("wirelength") -
                                   st.res.mgpInner.get("other"));
  st.res.stageSeconds.add("mGP", stageTotal);
  st.res.mgp = stageSnapshot(db, stageTotal, st.res.mgpResult.iterations);
}

void flowStageMlg(PlacementDB& db, FlowState& st) {
  Timer t;
  st.res.mlgResult = legalizeMacros(db, st.cfg.mlg, st.ctx);
  st.res.stageSeconds.add("mLG", t.seconds());
  st.res.mlg = stageSnapshot(db, t.seconds(), st.res.mlgResult.outerIterations);
}

void flowFreezeMacros(PlacementDB& db) {
  for (auto& o : db.objects) {
    if (o.kind == ObjKind::kMacro) o.fixed = true;
  }
  db.finalize();
}

void flowStageCgp(PlacementDB& db, FlowState& st, const GpRunControl& ctl) {
  Timer t;
  GpConfig gpc = st.cfg.gp;
  const int m = std::max(1, st.res.mgpResult.iterations /
                                std::max(1, st.cfg.cgpBufferDivisor));
  gpc.initialLambda = st.res.mgpResult.finalLambda *
                      std::pow(gpc.lambdaMultMax, -static_cast<double>(m));
  GlobalPlacer cgp(db, db.movable(), gpc, st.ctx);
  cgp.setFillers(st.fillers);
  if (st.cfg.enableFillerOnly && ctl.resume == nullptr) {
    cgp.runFillerOnly(st.cfg.fillerOnlyIterations);
  }
  GlobalPlacer::TraceFn trace;
  if (st.cfg.gpTrace) {
    trace = [&st](const GpIterTrace& it) { st.cfg.gpTrace("cGP", it); };
  }
  st.res.cgpResult = cgp.run(trace, ctl);
  st.fillers = cgp.fillers();
  st.res.stageSeconds.add("cGP", t.seconds());
  st.res.cgp = stageSnapshot(db, t.seconds(), st.res.cgpResult.iterations);
}

void flowStageCdp(PlacementDB& db, FlowState& st) {
  Timer t;
  st.res.legalizeResult = legalizeCells(db, st.ctx);
  st.res.detailResult = detailPlace(db, st.cfg.detail, st.ctx);
  st.res.stageSeconds.add("cDP", t.seconds());
  st.res.cdp = stageSnapshot(db, t.seconds(), st.res.detailResult.passes);
}

void flowFinish(PlacementDB& db, FlowState& st) {
  FlowResult& res = st.res;
  res.finalHpwl = hpwl(db);
  res.finalScaledHpwl = scaledHpwl(db);
  res.legality = checkLegality(db);
  res.totalSeconds = st.total.seconds();
  // First failing placement stage wins; later stages ran on its
  // best-checkpoint placement, so their metrics are still meaningful.
  if (res.status.ok()) {
    if (!res.mgpResult.status.ok()) {
      res.status = res.mgpResult.status;
    } else if (!res.cgpResult.status.ok()) {
      res.status = res.cgpResult.status;
    }
  }
  RuntimeContext& rc = resolveContext(st.ctx);
  rc.stats().set("flow.finalHpwl", res.finalHpwl);
  rc.stats().set("flow.totalSeconds", res.totalSeconds);
  rc.log().info(
      "flow done: HPWL %.4g (scaled %.4g), legal=%d, status=%s, %.2fs",
      res.finalHpwl, res.finalScaledHpwl, res.legality.legal ? 1 : 0,
      statusCodeName(res.status.code()), res.totalSeconds);
}

FlowResult runEplaceFlow(PlacementDB& db, const FlowConfig& cfg,
                         RuntimeContext* ctx) {
  FlowState st;
  st.cfg = cfg;
  st.ctx = ctx;

  flowStageMip(db, st);
  st.mixedSize = db.numMovableMacros() > 0;
  flowStageMgp(db, st);
  if (st.mixedSize) {
    flowStageMlg(db, st);
    flowFreezeMacros(db);
    flowStageCgp(db, st);
  }
  if (cfg.runDetail) flowStageCdp(db, st);
  flowFinish(db, st);
  return st.res;
}

StatusOr<FlowResult> runEplaceFlowChecked(PlacementDB& db,
                                          const FlowConfig& cfg,
                                          RuntimeContext* ctx) {
  int repaired = 0;
  const Status s = db.sanitize(&repaired);
  if (!s.ok()) return s;
  if (repaired > 0) {
    resolveContext(ctx).log().warn(
        "flow: sanitize repaired %d object position(s)", repaired);
  }
  const Status v = db.validate();
  if (!v.ok()) return v;
  // Exception boundary: a throwing hot-path task (e.g. a worker on the
  // thread pool, see ThreadPool) surfaces here as a typed status instead of
  // std::terminate-ing the process.
  try {
    return runEplaceFlow(db, cfg, ctx);
  } catch (const std::exception& e) {
    return Status::internal(std::string("flow aborted by exception: ") +
                            e.what());
  }
}

}  // namespace ep
