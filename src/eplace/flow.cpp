#include "eplace/flow.h"

#include <cmath>

#include "util/log.h"
#include "wirelength/wl.h"

namespace ep {

namespace {

StageMetrics stageSnapshot(const PlacementDB& db, double seconds, int iters) {
  StageMetrics m;
  m.hpwl = hpwl(db);
  m.overflow = densityOverflow(db).overflow;
  m.seconds = seconds;
  m.iterations = iters;
  m.ran = true;
  return m;
}

}  // namespace

FlowResult runEplaceFlow(PlacementDB& db, const FlowConfig& cfg) {
  FlowResult res;
  Timer total;

  // ---- mIP ----
  {
    Timer t;
    const auto ip = quadraticInitialPlace(db, cfg.ip);
    res.stageSeconds.add("mIP", t.seconds());
    res.mip = stageSnapshot(db, t.seconds(), cfg.ip.outerIterations);
  }

  const bool mixedSize = db.numMovableMacros() > 0;

  // ---- mGP ----
  FillerSet fillersFromMgp;
  {
    Timer t;
    GlobalPlacer mgp(db, db.movable(), cfg.gp);
    mgp.makeFillersFromDb();
    GlobalPlacer::TraceFn trace;
    if (cfg.gpTrace) {
      trace = [&cfg](const GpIterTrace& it) { cfg.gpTrace("mGP", it); };
    }
    res.mgpResult = mgp.run(trace);
    fillersFromMgp = mgp.fillers();
    res.mgpInner = mgp.breakdown();
    const double stageTotal = t.seconds();
    res.mgpInner.add("other", stageTotal - res.mgpInner.get("density") -
                                  res.mgpInner.get("wirelength") -
                                  res.mgpInner.get("other"));
    res.stageSeconds.add("mGP", stageTotal);
    res.mgp = stageSnapshot(db, stageTotal, res.mgpResult.iterations);
  }

  if (mixedSize) {
    // ---- mLG ---- (fillers removed, standard cells fixed implicitly: the
    // annealer only moves macros)
    {
      Timer t;
      res.mlgResult = legalizeMacros(db, cfg.mlg);
      res.stageSeconds.add("mLG", t.seconds());
      res.mlg = stageSnapshot(db, t.seconds(), res.mlgResult.outerIterations);
    }

    // Freeze macros for the remainder of the flow.
    for (auto& o : db.objects) {
      if (o.kind == ObjKind::kMacro) o.fixed = true;
    }
    db.finalize();

    // ---- cGP ----
    {
      Timer t;
      GpConfig gpc = cfg.gp;
      const int m =
          std::max(1, res.mgpResult.iterations / std::max(1, cfg.cgpBufferDivisor));
      gpc.initialLambda = res.mgpResult.finalLambda *
                          std::pow(gpc.lambdaMultMax, -static_cast<double>(m));
      GlobalPlacer cgp(db, db.movable(), gpc);
      cgp.setFillers(fillersFromMgp);
      if (cfg.enableFillerOnly) cgp.runFillerOnly(cfg.fillerOnlyIterations);
      GlobalPlacer::TraceFn trace;
      if (cfg.gpTrace) {
        trace = [&cfg](const GpIterTrace& it) { cfg.gpTrace("cGP", it); };
      }
      res.cgpResult = cgp.run(trace);
      res.stageSeconds.add("cGP", t.seconds());
      res.cgp = stageSnapshot(db, t.seconds(), res.cgpResult.iterations);
    }
  }

  // ---- cDP ----
  if (cfg.runDetail) {
    Timer t;
    res.legalizeResult = legalizeCells(db);
    res.detailResult = detailPlace(db, cfg.detail);
    res.stageSeconds.add("cDP", t.seconds());
    res.cdp = stageSnapshot(db, t.seconds(), res.detailResult.passes);
  }

  res.finalHpwl = hpwl(db);
  res.finalScaledHpwl = scaledHpwl(db);
  res.legality = checkLegality(db);
  res.totalSeconds = total.seconds();
  // First failing placement stage wins; later stages ran on its
  // best-checkpoint placement, so their metrics are still meaningful.
  if (!res.mgpResult.status.ok()) {
    res.status = res.mgpResult.status;
  } else if (!res.cgpResult.status.ok()) {
    res.status = res.cgpResult.status;
  }
  logInfo("flow done: HPWL %.4g (scaled %.4g), legal=%d, status=%s, %.2fs",
          res.finalHpwl, res.finalScaledHpwl, res.legality.legal ? 1 : 0,
          statusCodeName(res.status.code()), res.totalSeconds);
  return res;
}

StatusOr<FlowResult> runEplaceFlowChecked(PlacementDB& db,
                                          const FlowConfig& cfg) {
  int repaired = 0;
  const Status s = db.sanitize(&repaired);
  if (!s.ok()) return s;
  if (repaired > 0) {
    logWarn("flow: sanitize repaired %d object position(s)", repaired);
  }
  const Status v = db.validate();
  if (!v.ok()) return v;
  return runEplaceFlow(db, cfg);
}

}  // namespace ep
