#include "eplace/filler.h"

#include <algorithm>
#include <cmath>

#include "util/context.h"
#include "util/log.h"
#include "util/rng.h"

namespace ep {

FillerSet makeFillers(const PlacementDB& db, std::uint64_t seed,
                      RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  FillerSet fillers;

  const double movableArea = db.totalMovableArea();
  const double budget = db.targetDensity * db.freeArea() - movableArea;
  if (budget <= 0.0) {
    rc.log().warn("makeFillers: no whitespace budget (utilization too high)");
    return fillers;
  }

  if (db.numMovable() == 0) return fillers;

  // Middle-80% average cell area (macros excluded from the sizing sample so
  // a few huge blocks do not inflate fillers).
  std::vector<double> areas;
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    if (o.kind == ObjKind::kStdCell) areas.push_back(o.area());
  }
  if (areas.empty()) {
    for (auto i : db.movable()) {
      areas.push_back(db.objects[static_cast<std::size_t>(i)].area());
    }
  }
  std::sort(areas.begin(), areas.end());
  const std::size_t lo = areas.size() / 10;
  const std::size_t hi = areas.size() - areas.size() / 10;
  double sum = 0.0;
  for (std::size_t k = lo; k < hi; ++k) sum += areas[k];
  const double avg = sum / static_cast<double>(std::max<std::size_t>(1, hi - lo));
  if (avg <= 0.0) return fillers;
  const double dim = std::sqrt(avg);

  fillers.w = dim;
  fillers.h = dim;
  const auto count = static_cast<std::size_t>(budget / (dim * dim));
  fillers.cx.resize(count);
  fillers.cy.resize(count);
  Rng rng(seed);
  const Rect& r = db.region;
  for (std::size_t k = 0; k < count; ++k) {
    fillers.cx[k] = rng.uniform(r.lx + dim * 0.5, r.hx - dim * 0.5);
    fillers.cy[k] = rng.uniform(r.ly + dim * 0.5, r.hy - dim * 0.5);
  }
  rc.log().info("makeFillers: %zu fillers of %.3g x %.3g (budget %.4g)",
                count, dim, dim, budget);
  return fillers;
}

}  // namespace ep
