#include "eplace/supervisor.h"

#include <dirent.h>
#include <sys/stat.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "density/bingrid.h"
#include "util/context.h"
#include "util/io.h"
#include "util/log.h"
#include "util/memory_budget.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/snapshot.h"
#include "wirelength/wl.h"

namespace ep {

const char* flowStageName(FlowStage s) {
  switch (s) {
    case FlowStage::kMip: return "mIP";
    case FlowStage::kMgp: return "mGP";
    case FlowStage::kMlg: return "mLG";
    case FlowStage::kCgp: return "cGP";
    case FlowStage::kCdp: return "cDP";
    case FlowStage::kDone: return "done";
  }
  return "?";
}

const char* supervisorEventKindName(SupervisorEvent::Kind k) {
  switch (k) {
    case SupervisorEvent::Kind::kStageStart: return "stage_start";
    case SupervisorEvent::Kind::kStageFinish: return "stage_finish";
    case SupervisorEvent::Kind::kSnapshot: return "snapshot";
    case SupervisorEvent::Kind::kResume: return "resume";
    case SupervisorEvent::Kind::kSnapshotFailed: return "snapshot_failed";
  }
  return "?";
}

namespace {

constexpr const char* kSnapPrefix = "snap_";
constexpr const char* kSnapSuffix = ".epsnap";

std::string snapFileName(int seq) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%s%06d%s", kSnapPrefix, seq, kSnapSuffix);
  return buf;
}

/// Sequence number encoded in a snapshot file name, or -1.
int snapSeqOf(const std::string& name) {
  const std::size_t plen = std::string(kSnapPrefix).size();
  const std::size_t slen = std::string(kSnapSuffix).size();
  if (name.size() <= plen + slen) return -1;
  if (name.compare(0, plen, kSnapPrefix) != 0) return -1;
  if (name.compare(name.size() - slen, slen, kSnapSuffix) != 0) return -1;
  int seq = 0;
  for (std::size_t i = plen; i < name.size() - slen; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return -1;
    seq = seq * 10 + (c - '0');
  }
  return seq;
}

/// Snapshot files in `dir`, sorted by ascending sequence number.
std::vector<std::string> listSnapshotFiles(const std::string& dir) {
  std::vector<std::string> files;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return files;
  while (const dirent* e = ::readdir(d)) {
    if (snapSeqOf(e->d_name) >= 0) files.emplace_back(e->d_name);
  }
  ::closedir(d);
  std::sort(files.begin(), files.end(), [](const auto& a, const auto& b) {
    return snapSeqOf(a) < snapSeqOf(b);
  });
  return files;
}

void makeDirs(const std::string& path) {
  std::string cur;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!cur.empty() && cur != "/") ::mkdir(cur.c_str(), 0755);
    }
    if (i < path.size()) cur += path[i];
  }
}

/// Serialize positions straight from the view's SoA arrays (layout: all
/// objects, interleaved lx,ly — the checkpoint wire format). Syncs the
/// view first so movable entries are current at this stage boundary.
std::vector<double> capturePositions(PlacementDB& db) {
  PlacementView& pv = db.view();
  pv.syncPositionsFromDb(db);
  const auto lx = pv.lx();
  const auto ly = pv.ly();
  std::vector<double> pos;
  pos.reserve(lx.size() * 2);
  for (std::size_t i = 0; i < lx.size(); ++i) {
    pos.push_back(lx[i]);
    pos.push_back(ly[i]);
  }
  return pos;
}

void restorePositions(PlacementDB& db, const std::vector<double>& pos) {
  PlacementView& pv = db.view();
  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    db.objects[i].lx = pos[2 * i];
    db.objects[i].ly = pos[2 * i + 1];
    pv.setPosition(static_cast<std::int32_t>(i), pos[2 * i], pos[2 * i + 1]);
  }
}

/// Invariant gate shared by every stage: all movables finite and inside the
/// core region (both GP phases and mIP clamp into the region, so any
/// violation means corruption, not normal slack).
bool movablesFiniteInCore(const PlacementDB& db) {
  const double tol =
      1e-6 * std::max(1.0, std::max(db.region.width(), db.region.height()));
  const Rect bounds = db.region.expanded(tol);
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    if (!std::isfinite(o.lx) || !std::isfinite(o.ly)) return false;
    if (!bounds.contains(o.rect())) return false;
  }
  return true;
}

void appendNote(StageReport& rep, const std::string& note) {
  if (!rep.note.empty()) rep.note += "; ";
  rep.note += note;
}

// --- snapshot payload codec ------------------------------------------------

void putMetrics(ByteWriter& w, const StageMetrics& m) {
  w.f64(m.hpwl);
  w.f64(m.overflow);
  w.f64(m.seconds);
  w.i32(m.iterations);
  w.u8(m.ran ? 1 : 0);
}

StageMetrics getMetrics(ByteReader& r) {
  StageMetrics m;
  m.hpwl = r.f64();
  m.overflow = r.f64();
  m.seconds = r.f64();
  m.iterations = r.i32();
  m.ran = r.u8() != 0;
  return m;
}

/// Everything a resumed run needs to continue from where a snapshot was
/// taken: the stage cursor, positions, the reused filler set, the
/// supervisor's jitter RNG stream, restored per-stage metrics, and (for
/// mid-GP snapshots) the full optimizer checkpoint.
struct ResumeData {
  FlowStage next = FlowStage::kMip;
  bool mixedSize = false;
  bool macrosFrozen = false;
  int mgpIterations = 0;
  double mgpFinalLambda = 0.0;
  StatusCode mgpStatus = StatusCode::kOk;
  StatusCode cgpStatus = StatusCode::kOk;
  StageMetrics mip, mgp, mlg, cgp, cdp;
  std::vector<double> positions;
  FillerSet fillers;
  std::uint64_t rng[4] = {};
  bool hasGp = false;
  GpCheckpointState gp;
  /// Multilevel cursor: the ladder level the run was inside (-1 = flat
  /// mGP or not in mGP). When >= 0 the "mlevel" section carries that
  /// level's positions (and fillers for mid-level optimizer snapshots);
  /// the ladder itself is rebuilt deterministically, never serialized.
  int mgpLevel = -1;
  std::vector<double> levelPositions;
  FillerSet levelFillers;
};

SnapshotData buildSnapshot(PlacementDB& db, const FlowState& st,
                           FlowStage next, bool macrosFrozen,
                           const Rng& jitter, const GpCheckpointState* gp,
                           int poolThreads, int mgpLevel,
                           PlacementDB* levelDb,
                           const FillerSet* levelFillers) {
  SnapshotData snap;
  {
    ByteWriter w;
    w.str(db.name);
    w.u64(db.objects.size());
    w.u64(db.nets.size());
    w.u8(static_cast<std::uint8_t>(next));
    w.u8(st.mixedSize ? 1 : 0);
    w.u8(macrosFrozen ? 1 : 0);
    w.i32(st.res.mgpResult.iterations);
    w.f64(st.res.mgpResult.finalLambda);
    w.u8(static_cast<std::uint8_t>(st.res.mgpResult.status.code()));
    w.u8(static_cast<std::uint8_t>(st.res.cgpResult.status.code()));
    putMetrics(w, st.res.mip);
    putMetrics(w, st.res.mgp);
    putMetrics(w, st.res.mlg);
    putMetrics(w, st.res.cgp);
    putMetrics(w, st.res.cdp);
    w.i32(mgpLevel);  // trailing field; absent in pre-multilevel snapshots
    snap.add("meta", w.take());
  }
  if (mgpLevel >= 0 && levelDb != nullptr) {
    ByteWriter w;
    w.i32(mgpLevel);
    w.doubles(capturePositions(*levelDb));
    w.f64(levelFillers->w);
    w.f64(levelFillers->h);
    w.doubles(levelFillers->cx);
    w.doubles(levelFillers->cy);
    snap.add("mlevel", w.take());
  }
  {
    ByteWriter w;
    w.doubles(capturePositions(db));
    snap.add("positions", w.take());
  }
  {
    ByteWriter w;
    w.f64(st.fillers.w);
    w.f64(st.fillers.h);
    w.doubles(st.fillers.cx);
    w.doubles(st.fillers.cy);
    snap.add("fillers", w.take());
  }
  {
    ByteWriter w;
    std::uint64_t s[4];
    jitter.saveState(s);
    for (const auto word : s) w.u64(word);
    snap.add("rng", w.take());
  }
  {
    // Environment provenance. The thread count does not affect results
    // (every kernel is thread-count deterministic) so readers ignore this
    // section; it is recorded for forensics on traces from other machines.
    ByteWriter w;
    w.i32(poolThreads);
    snap.add("env", w.take());
  }
  if (gp != nullptr) {
    ByteWriter w;
    w.doubles(gp->opt.u);
    w.doubles(gp->opt.cur);
    w.doubles(gp->opt.prev);
    w.doubles(gp->opt.curGrad);
    w.doubles(gp->opt.prevGrad);
    w.f64(gp->opt.a);
    w.f64(gp->opt.lastAlpha);
    w.i32(gp->opt.iter);
    w.f64(gp->lambda);
    w.f64(gp->tau);
    w.f64(gp->prevHpwl);
    w.f64(gp->refHpwl);
    w.i32(gp->iter);
    snap.add("optimizer", w.take());
  }
  return snap;
}

Status decodeSnapshot(const SnapshotData& snap, const PlacementDB& db,
                      ResumeData& rd) {
  const auto* meta = snap.find("meta");
  if (meta == nullptr) return Status::invalidInput("snapshot has no meta");
  {
    ByteReader r(*meta);
    const std::string name = r.str();
    const std::uint64_t nObj = r.u64();
    const std::uint64_t nNets = r.u64();
    const std::uint8_t next = r.u8();
    rd.mixedSize = r.u8() != 0;
    rd.macrosFrozen = r.u8() != 0;
    rd.mgpIterations = r.i32();
    rd.mgpFinalLambda = r.f64();
    rd.mgpStatus = static_cast<StatusCode>(r.u8());
    rd.cgpStatus = static_cast<StatusCode>(r.u8());
    rd.mip = getMetrics(r);
    rd.mgp = getMetrics(r);
    rd.mlg = getMetrics(r);
    rd.cgp = getMetrics(r);
    rd.cdp = getMetrics(r);
    // Pre-multilevel snapshots end here; treat the missing field as "flat".
    rd.mgpLevel = r.remaining() >= sizeof(std::int32_t) ? r.i32() : -1;
    if (!r.ok()) return Status::invalidInput("snapshot meta truncated");
    if (next > static_cast<std::uint8_t>(FlowStage::kDone)) {
      return Status::invalidInput("snapshot stage cursor out of range");
    }
    rd.next = static_cast<FlowStage>(next);
    if (name != db.name || nObj != db.objects.size() ||
        nNets != db.nets.size()) {
      return Status::invalidInput("snapshot is for a different instance");
    }
  }
  const auto* positions = snap.find("positions");
  if (positions == nullptr) {
    return Status::invalidInput("snapshot has no positions");
  }
  {
    ByteReader r(*positions);
    rd.positions = r.doubles();
    if (!r.ok() || rd.positions.size() != 2 * db.objects.size()) {
      return Status::invalidInput("snapshot positions malformed");
    }
    for (auto i : db.movable()) {
      const auto k = static_cast<std::size_t>(i);
      if (!std::isfinite(rd.positions[2 * k]) ||
          !std::isfinite(rd.positions[2 * k + 1])) {
        return Status::invalidInput("snapshot positions non-finite");
      }
    }
  }
  const auto* fillers = snap.find("fillers");
  if (fillers == nullptr) return Status::invalidInput("snapshot has no fillers");
  {
    ByteReader r(*fillers);
    rd.fillers.w = r.f64();
    rd.fillers.h = r.f64();
    rd.fillers.cx = r.doubles();
    rd.fillers.cy = r.doubles();
    if (!r.ok() || rd.fillers.cx.size() != rd.fillers.cy.size()) {
      return Status::invalidInput("snapshot fillers malformed");
    }
  }
  const auto* rng = snap.find("rng");
  if (rng == nullptr) return Status::invalidInput("snapshot has no rng");
  {
    ByteReader r(*rng);
    for (auto& word : rd.rng) word = r.u64();
    if (!r.ok()) return Status::invalidInput("snapshot rng malformed");
  }
  if (rd.mgpLevel >= 0) {
    const auto* ml = snap.find("mlevel");
    if (ml == nullptr) {
      return Status::invalidInput("snapshot level cursor without mlevel");
    }
    ByteReader r(*ml);
    const std::int32_t lvl = r.i32();
    rd.levelPositions = r.doubles();
    rd.levelFillers.w = r.f64();
    rd.levelFillers.h = r.f64();
    rd.levelFillers.cx = r.doubles();
    rd.levelFillers.cy = r.doubles();
    if (!r.ok() || lvl != rd.mgpLevel || rd.levelPositions.empty() ||
        rd.levelFillers.cx.size() != rd.levelFillers.cy.size()) {
      return Status::invalidInput("snapshot mlevel section malformed");
    }
    for (const double v : rd.levelPositions) {
      if (!std::isfinite(v)) {
        return Status::invalidInput("snapshot level positions non-finite");
      }
    }
  }
  if (const auto* opt = snap.find("optimizer")) {
    ByteReader r(*opt);
    rd.gp.opt.u = r.doubles();
    rd.gp.opt.cur = r.doubles();
    rd.gp.opt.prev = r.doubles();
    rd.gp.opt.curGrad = r.doubles();
    rd.gp.opt.prevGrad = r.doubles();
    rd.gp.opt.a = r.f64();
    rd.gp.opt.lastAlpha = r.f64();
    rd.gp.opt.iter = r.i32();
    rd.gp.lambda = r.f64();
    rd.gp.tau = r.f64();
    rd.gp.prevHpwl = r.f64();
    rd.gp.refHpwl = r.f64();
    rd.gp.iter = r.i32();
    const std::size_t n = rd.gp.opt.u.size();
    if (!r.ok() || n == 0 || rd.gp.opt.cur.size() != n ||
        rd.gp.opt.prev.size() != n || rd.gp.opt.curGrad.size() != n ||
        rd.gp.opt.prevGrad.size() != n) {
      return Status::invalidInput("snapshot optimizer state malformed");
    }
    rd.hasGp = true;
  }
  return Status::okStatus();
}

// --- the supervisor itself -------------------------------------------------

struct Supervisor {
  RuntimeContext& rc;
  PlacementDB& db;
  const SupervisorConfig& sup;
  SupervisorReport& report;
  FlowState st;
  Rng jitter;
  bool macrosFrozen = false;
  int nextSeq = 0;
  /// Mid-GP checkpoint restored from a snapshot; consumed by the first
  /// attempt of the stage it belongs to.
  GpCheckpointState resumeGp;
  bool hasResumeGp = false;
  FlowStage resumeGpStage = FlowStage::kMgp;
  /// Multilevel V-cycle state. The ladder is rebuilt deterministically on
  /// resume (coarsening depends only on the netlist, geometry, and the
  /// restored positions), so it is never serialized.
  ClusterLadder ladder;
  bool ladderBuilt = false;
  int resumeGpLevel = -1;  ///< ladder level owning resumeGp (-1 = flat mGP)
  int resumeLevel = -1;    ///< ladder level to continue at (-1 = none)
  std::vector<double> resumeLevelPositions;
  FillerSet resumeLevelFillers;
  /// Level currently running/checkpointing (drives the "mlevel" section).
  int curLevel = -1;
  PlacementDB* curLevelDb = nullptr;
  FillerSet curLevelFillers;
  /// Checkpoint retention; starts at sup.keepSnapshots and is reduced to 1
  /// when a memory-budget retry needs headroom (degraded retention).
  int keepSnapshots;
  /// Consecutive checkpoint write failures; 3 in a row (or one persistent
  /// ENOSPC) degrades the run to snapshot-less mode.
  int snapFailures = 0;
  bool snapshotsDisabled = false;
  /// A GP stage exhausted its budget-degradation ladder: stop the flow
  /// cleanly instead of re-breaching in the next stage.
  bool memAborted = false;

  Supervisor(RuntimeContext& rcIn, PlacementDB& database,
             const FlowConfig& cfg, const SupervisorConfig& supervision,
             SupervisorReport& rep)
      : rc(rcIn),
        db(database),
        sup(supervision),
        report(rep),
        jitter(sup.perturbSeed),
        keepSnapshots(supervision.keepSnapshots) {
    st.cfg = cfg;
    st.ctx = &rc;
  }

  void emit(const SupervisorEvent& ev) {
    if (sup.onProgress) sup.onProgress(ev);
  }

  /// A stage may continue only while its own budget, the context's
  /// session-wide deadline, and the cancel token all have slack. A
  /// cancelled context stops retries exactly like an exhausted budget.
  [[nodiscard]] bool budgetLeft(const StagePolicy& pol, const Timer& t) const {
    if (rc.cancelled() || rc.deadlineExceeded()) return false;
    return pol.timeBudgetSeconds <= 0.0 || t.seconds() < pol.timeBudgetSeconds;
  }

  /// Serialization cost of the next checkpoint, charged against the memory
  /// budget while the buffers are live. Dominated by positions + optimizer
  /// vectors; the 4 KiB pad covers headers/CRCs/filler metadata.
  [[nodiscard]] std::size_t snapshotBytesEstimate(
      const GpCheckpointState* gp) const {
    std::size_t b = 2 * db.objects.size() * sizeof(double) +
                    2 * st.fillers.cx.size() * sizeof(double) + 4096;
    if (gp != nullptr) b += 5 * gp->opt.u.size() * sizeof(double);
    if (curLevelDb != nullptr) {
      b += 2 * curLevelDb->objects.size() * sizeof(double) +
           2 * curLevelFillers.cx.size() * sizeof(double);
    }
    return b;
  }

  /// Degrades the run to snapshot-less mode: checkpoints stop, the run
  /// itself continues (and stays resumable from whatever was written).
  void disableSnapshots(const std::string& why) {
    if (snapshotsDisabled) return;
    snapshotsDisabled = true;
    rc.stats().add("supervisor.snapshotsDisabled", 1.0);
    rc.log().warn(
        "supervisor: degrading to snapshot-less mode (%s); the run "
        "continues un-checkpointed",
        why.c_str());
  }

  void saveSnapshot(FlowStage next, const GpCheckpointState* gp) {
    if (sup.snapshotDir.empty() || snapshotsDisabled) return;
    // The serialization buffers are a real allocation spike on big
    // instances; meter them so a tightly budgeted job is not OOM-killed by
    // its own checkpoints. An unpayable checkpoint is permanent (the state
    // only grows), so degrade immediately instead of failing every interval.
    ScopedCharge charge(rc.memory(), snapshotBytesEstimate(gp));
    if (rc.memory().limited() && !charge.ok()) {
      disableSnapshots("memory budget cannot hold checkpoint buffers");
      SupervisorEvent ev;
      ev.kind = SupervisorEvent::Kind::kSnapshotFailed;
      ev.stage = next;
      ev.status = Status::resourceExhausted(
          "checkpoint skipped: memory budget exhausted");
      emit(ev);
      return;
    }
    const SnapshotData snap =
        buildSnapshot(db, st, next, macrosFrozen, jitter, gp,
                      rc.pool().threads(), curLevel, curLevelDb,
                      &curLevelFillers);
    const std::string path = sup.snapshotDir + "/" + snapFileName(nextSeq);
    const Status s = writeSnapshotFile(path, snap, &rc.faults());
    if (!s.ok()) {
      // A failing checkpoint must never fail the placement itself: emit a
      // recovery event, keep running un-checkpointed, and retry at the
      // next interval — unless the failure is persistent (a full disk
      // stays full, and three consecutive failures are treated the same),
      // in which case stop trying.
      ++snapFailures;
      rc.stats().add("supervisor.snapshotFailures", 1.0);
      rc.log().warn("supervisor: snapshot write failed: %s",
                    s.toString().c_str());
      SupervisorEvent ev;
      ev.kind = SupervisorEvent::Kind::kSnapshotFailed;
      ev.stage = next;
      ev.status = s;
      emit(ev);
      if (io::isNoSpace(s)) {
        disableSnapshots("no space on the snapshot device");
      } else if (snapFailures >= 3) {
        disableSnapshots("3 consecutive snapshot write failures");
      }
      return;
    }
    snapFailures = 0;
    bumpStage(next, "snapshots", 1.0);
    SupervisorEvent ev;
    ev.kind = SupervisorEvent::Kind::kSnapshot;
    ev.stage = next;
    ev.snapshotSeq = nextSeq;
    emit(ev);
    ++nextSeq;
    ++report.snapshotsWritten;
    prune();
  }

  void prune() {
    auto files = listSnapshotFiles(sup.snapshotDir);
    const int keep = std::max(1, keepSnapshots);
    while (static_cast<int>(files.size()) > keep) {
      std::remove((sup.snapshotDir + "/" + files.front()).c_str());
      files.erase(files.begin());
    }
  }

  bool tryResume(ResumeData& rd) {
    const auto files = listSnapshotFiles(sup.resumeDir);
    for (auto it = files.rbegin(); it != files.rend(); ++it) {
      const std::string path = sup.resumeDir + "/" + *it;
      const auto sr = readSnapshotFile(path);
      if (!sr.ok()) {
        ++report.snapshotsRejected;
        rc.log().warn("supervisor: rejected snapshot %s: %s", it->c_str(),
                      sr.status().toString().c_str());
        continue;
      }
      rd = ResumeData{};
      const Status ds = decodeSnapshot(*sr, db, rd);
      if (!ds.ok()) {
        ++report.snapshotsRejected;
        rc.log().warn("supervisor: rejected snapshot %s: %s", it->c_str(),
                      ds.toString().c_str());
        continue;
      }
      rc.log().info("supervisor: resuming at %s from %s%s",
                    flowStageName(rd.next), it->c_str(),
                    rd.hasGp ? " (mid-stage optimizer state)" : "");
      return true;
    }
    if (!files.empty()) {
      rc.log().warn("supervisor: no usable snapshot in %s; starting fresh",
                    sup.resumeDir.c_str());
    }
    return false;
  }

  /// Restores everything a snapshot carries and emits `resumed` report rows
  /// for the stages the snapshot already covers.
  void applyResume(const ResumeData& rd) {
    restorePositions(db, rd.positions);
    st.mixedSize = rd.mixedSize;
    st.fillers = rd.fillers;
    jitter.loadState(rd.rng);
    if (rd.macrosFrozen) {
      flowFreezeMacros(db);
      macrosFrozen = true;
    }
    st.res.mip = rd.mip;
    st.res.mgp = rd.mgp;
    st.res.mlg = rd.mlg;
    st.res.cgp = rd.cgp;
    st.res.cdp = rd.cdp;
    st.res.mgpResult.iterations = rd.mgpIterations;
    st.res.mgpResult.finalLambda = rd.mgpFinalLambda;
    if (rd.mgpStatus != StatusCode::kOk) {
      st.res.mgpResult.status = Status(rd.mgpStatus, "restored from snapshot");
    }
    if (rd.cgpStatus != StatusCode::kOk) {
      st.res.cgpResult.status = Status(rd.cgpStatus, "restored from snapshot");
    }
    const struct {
      FlowStage stage;
      const StageMetrics& m;
      const char* label;
    } done[] = {{FlowStage::kMip, rd.mip, "mIP"},
                {FlowStage::kMgp, rd.mgp, "mGP"},
                {FlowStage::kMlg, rd.mlg, "mLG"},
                {FlowStage::kCgp, rd.cgp, "cGP"},
                {FlowStage::kCdp, rd.cdp, "cDP"}};
    for (const auto& d : done) {
      if (!d.m.ran) continue;
      st.res.stageSeconds.add(d.label, d.m.seconds);
      StageReport rep;
      rep.stage = d.stage;
      rep.resumed = true;
      rep.seconds = d.m.seconds;
      rep.note = "restored from snapshot";
      report.stages.push_back(rep);
    }
    resumeLevel = rd.mgpLevel;
    resumeLevelPositions = rd.levelPositions;
    resumeLevelFillers = rd.levelFillers;
    if (rd.hasGp) {
      resumeGp = rd.gp;
      hasResumeGp = true;
      resumeGpStage = rd.next;
      resumeGpLevel = rd.mgpLevel;
    }
    report.resumed = true;
    report.resumeStage = rd.next;
    SupervisorEvent ev;
    ev.kind = SupervisorEvent::Kind::kResume;
    ev.stage = rd.next;
    emit(ev);
  }

  // --- stages --------------------------------------------------------------

  void runMip() {
    StageReport rep;
    rep.stage = FlowStage::kMip;
    Timer t;
    const auto entry = capturePositions(db);
    rep.attempts = 1;
    flowStageMip(db, st);
    if (!movablesFiniteInCore(db)) {
      restorePositions(db, entry);
      bumpStage(FlowStage::kMip, "rollbacks", 1.0);
      rep.status = Status::numericalDivergence(
          "mIP left non-finite or out-of-core positions");
      appendNote(rep, "result discarded; mGP starts from input positions");
    }
    rep.seconds = t.seconds();
    finishStage(rep);
  }

  [[nodiscard]] bool multilevelEngaged() const {
    return sup.multilevel.enabled &&
           db.movable().size() >= sup.multilevel.minMovable;
  }

  /// One coarse level of the V-cycle: GP on the clustered instance with a
  /// capped schedule. A coarse level is only a seed for the next-finer
  /// level, so failures are recoverable — a diverged level rolls back to
  /// its uncoarsened entry positions and the ladder continues. Returns
  /// false on a memory-budget breach (the ladder is abandoned; the flat
  /// stage's degradation ladder owns that failure mode).
  bool runOneCoarseLevel(int k) {
    PlacementDB& ldb = ladder.levels[static_cast<std::size_t>(k)].coarse;
    Timer t;
    const auto entry = capturePositions(ldb);
    GpConfig gcfg = st.cfg.gp;
    gcfg.maxIterations = std::max(1, sup.multilevel.levelMaxIterations);
    gcfg.targetOverflow =
        std::max(gcfg.targetOverflow, sup.multilevel.levelTargetOverflow);
    GlobalPlacer gp(ldb, ldb.movable(), gcfg, &rc);
    GpRunControl ctl;
    const bool resumeHere = hasResumeGp &&
                            resumeGpStage == FlowStage::kMgp &&
                            resumeGpLevel == k;
    if (resumeHere && resumeLevelFillers.size() > 0) {
      gp.setFillers(resumeLevelFillers);
      ctl.resume = &resumeGp;
    } else {
      gp.makeFillersFromDb();
    }
    curLevel = k;
    curLevelDb = &ldb;
    curLevelFillers = gp.fillers();
    if (sup.saveEvery > 0 && !sup.snapshotDir.empty()) {
      ctl.saveEvery = sup.saveEvery;
      ctl.save = [this](const GpCheckpointState& cp) {
        saveSnapshot(FlowStage::kMgp, &cp);
      };
    }
    GlobalPlacer::TraceFn trace;
    if (st.cfg.gpTrace) {
      const std::string label = "mGP@L" + std::to_string(k);
      trace = [this, label](const GpIterTrace& it) {
        st.cfg.gpTrace(label, it);
      };
    }
    GpResult r;
    bool memBreach = false;
    try {
      r = gp.run(trace, ctl);
    } catch (const MemoryBudgetExceeded& e) {
      memBreach = true;
      rc.stats().add("supervisor.memBreaches", 1.0);
      rc.log().warn("supervisor: mGP@L%d memory budget breach (%s); "
                    "abandoning coarse levels",
                    k, e.what());
    }
    if (resumeHere) hasResumeGp = false;
    curLevel = -1;
    curLevelDb = nullptr;
    if (memBreach || !movablesFiniteInCore(ldb)) {
      restorePositions(ldb, entry);
      if (!memBreach) {
        bumpStage(FlowStage::kMgp, "rollbacks", 1.0);
        rc.log().warn("supervisor: mGP@L%d failed the finite/in-core gate; "
                      "level rolled back to its seed",
                      k);
      }
    }
    LevelMetrics lm;
    lm.level = k;
    lm.clusters = ldb.movable().size();
    lm.metrics = flowStageMetrics(ldb, t.seconds(), r.iterations);
    st.res.mgpLevels.push_back(lm);
    st.res.stageSeconds.add("mGP", t.seconds());
    rc.log().info(
        "supervisor: mGP@L%d: %zu clusters, %d iter(s), overflow %.3f, "
        "HPWL %.4g, %.2fs",
        k, lm.clusters, lm.metrics.iterations, lm.metrics.overflow,
        lm.metrics.hpwl, lm.metrics.seconds);
    return !memBreach;
  }

  /// The coarse half of the V-cycle, run before flat mGP: coarsest level
  /// first, each level seeding the next-finer instance via uncoarsening,
  /// with a boundary snapshot per level so a killed run resumes mid-ladder
  /// bit-exactly.
  void runCoarseLevels() {
    if (!multilevelEngaged()) return;
    if (!ladderBuilt) {
      auto lr = buildClusterLadder(db, sup.multilevel.cluster, &rc);
      if (!lr.ok()) {
        rc.log().warn("supervisor: clustering failed (%s); flat mGP only",
                      lr.status().toString().c_str());
        return;
      }
      ladder = std::move(*lr);
      ladderBuilt = true;
    }
    if (ladder.empty()) return;
    const int depth = static_cast<int>(ladder.depth());
    int start = depth - 1;
    if (resumeLevel >= 0) {
      // Continue at the snapshot's level when its shape matches the
      // deterministically rebuilt ladder; otherwise restart the ladder from
      // the top — correct either way, coarse levels are only seeds.
      PlacementDB* ldb = resumeLevel < depth
                             ? &ladder.levels[static_cast<std::size_t>(
                                                  resumeLevel)]
                                    .coarse
                             : nullptr;
      if (ldb != nullptr &&
          resumeLevelPositions.size() == 2 * ldb->objects.size()) {
        restorePositions(*ldb, resumeLevelPositions);
        start = resumeLevel;
      } else {
        rc.log().warn(
            "supervisor: snapshot level %d does not match the rebuilt "
            "ladder; restarting coarse levels",
            resumeLevel);
        if (resumeGpLevel >= 0) hasResumeGp = false;
      }
      resumeLevel = -1;
    }
    bumpStage(FlowStage::kMgp, "levels", static_cast<double>(start + 1));
    for (int k = start; k >= 0; --k) {
      if (rc.cancelled()) return;  // the flat stage reports the cancel
      if (!runOneCoarseLevel(k)) return;
      if (rc.cancelled()) return;
      PlacementDB& fine =
          k == 0 ? db : ladder.levels[static_cast<std::size_t>(k - 1)].coarse;
      const Status us =
          uncoarsenPositions(ladder.levels[static_cast<std::size_t>(k)], fine);
      if (!us.ok()) {
        // Unreachable for a ladder built from this db; bail to flat mGP.
        rc.log().warn("supervisor: uncoarsen failed at L%d: %s", k,
                      us.toString().c_str());
        return;
      }
      // Boundary snapshot: the cursor stays kMgp; the mlevel section moves
      // to the next-finer level (absent once the ladder is done, so a
      // resume lands in flat mGP on the fully uncoarsened positions).
      if (k > 0) {
        curLevel = k - 1;
        curLevelDb = &fine;
        curLevelFillers = FillerSet{};
        saveSnapshot(FlowStage::kMgp, nullptr);
        curLevel = -1;
        curLevelDb = nullptr;
      } else {
        saveSnapshot(FlowStage::kMgp, nullptr);
      }
    }
  }

  void runGpStage(FlowStage stage) {
    const bool isMgp = stage == FlowStage::kMgp;
    const StagePolicy& pol = isMgp ? sup.mgp : sup.cgp;
    StageReport rep;
    rep.stage = stage;
    Timer t;
    const auto entry = capturePositions(db);
    const GpConfig baseGp = st.cfg.gp;
    const FillerSet entryFillers = st.fillers;
    bool accepted = false;
    bool memBreach = false;
    for (int attempt = 0; attempt < std::max(1, pol.maxAttempts); ++attempt) {
      if (attempt > 0) {
        restorePositions(db, entry);
        st.fillers = entryFillers;
        if (memBreach) {
          // Budget-breach retry: halve the bin-grid resolution (the grid
          // and its spectral workspaces are the dominant non-linear cost)
          // and drop checkpoint retention to one file so the retry has the
          // headroom the failed attempt lacked. The charge-before-allocate
          // contract means the breach left no stray bytes charged.
          const std::size_t n = db.movable().size() + st.fillers.cx.size();
          const std::size_t curNx = st.cfg.gp.gridNx != 0
                                        ? st.cfg.gp.gridNx
                                        : BinGrid::chooseResolution(n);
          const std::size_t curNy = st.cfg.gp.gridNy != 0
                                        ? st.cfg.gp.gridNy
                                        : BinGrid::chooseResolution(n);
          st.cfg.gp.gridNx = std::max<std::size_t>(32, curNx / 2);
          st.cfg.gp.gridNy = std::max<std::size_t>(32, curNy / 2);
          keepSnapshots = 1;
          appendNote(rep, "memory retry with coarser bin grid");
          rc.log().warn(
              "supervisor: %s memory budget breach; retrying with %zux%zu "
              "bin grid and reduced checkpoint retention",
              flowStageName(stage), st.cfg.gp.gridNx, st.cfg.gp.gridNy);
        } else {
          // Perturbed retry: relaxed density goal, re-seeded fillers.
          st.cfg.gp.targetOverflow =
              baseGp.targetOverflow +
              static_cast<double>(attempt) * sup.overflowRetryRelax;
          st.cfg.gp.fillerSeed =
              baseGp.fillerSeed + 7919ULL * static_cast<std::uint64_t>(attempt);
          appendNote(rep, "retry with relaxed target overflow");
        }
      }
      if (pol.timeBudgetSeconds > 0.0) {
        st.cfg.gp.health.timeBudgetSeconds =
            std::max(1e-3, pol.timeBudgetSeconds - t.seconds());
      }
      GpRunControl ctl;
      if (attempt == 0 && hasResumeGp && resumeGpStage == stage &&
          resumeGpLevel < 0) {
        // A checkpoint belonging to a coarse ladder level is consumed by
        // runOneCoarseLevel, never by the flat stage.
        ctl.resume = &resumeGp;
        rep.resumed = true;  // mid-stage continuation, still executed
      }
      if (sup.saveEvery > 0 && !sup.snapshotDir.empty()) {
        ctl.saveEvery = sup.saveEvery;
        ctl.save = [this, stage](const GpCheckpointState& gp) {
          saveSnapshot(stage, &gp);
        };
      }
      ++rep.attempts;
      memBreach = false;
      try {
        if (isMgp) {
          flowStageMgp(db, st, ctl);
        } else {
          flowStageCgp(db, st, ctl);
        }
      } catch (const MemoryBudgetExceeded& e) {
        memBreach = true;
        rep.status = Status::resourceExhausted(e.what());
        rc.stats().add("supervisor.memBreaches", 1.0);
        if (!budgetLeft(pol, t)) break;
        continue;
      }
      const GpResult& r = isMgp ? st.res.mgpResult : st.res.cgpResult;
      const bool gate = movablesFiniteInCore(db);
      rep.status = r.status;
      if (gate && r.status.ok()) {
        accepted = true;
        break;
      }
      if (gate && (attempt + 1 >= pol.maxAttempts || !budgetLeft(pol, t))) {
        // Out of retries (or time) but the placement is usable: keep the
        // degraded result; flowFinish reports the stage status.
        accepted = true;
        appendNote(rep, "accepted degraded result");
        break;
      }
      if (!gate && !budgetLeft(pol, t)) break;
    }
    st.cfg.gp = baseGp;
    if (hasResumeGp && resumeGpStage == stage) hasResumeGp = false;
    if (accepted) {
      const GpResult& fin = isMgp ? st.res.mgpResult : st.res.cgpResult;
      bumpStage(stage, "recoveries", static_cast<double>(fin.recoveries));
    }
    if (!accepted) {
      restorePositions(db, entry);
      st.fillers = entryFillers;
      bumpStage(stage, "rollbacks", 1.0);
      if (memBreach) {
        // Every rung of the degradation ladder re-breached: fail this run
        // cleanly with a typed status (positions restored, nothing
        // corrupted) and stop the flow — later stages would breach too.
        memAborted = true;
        appendNote(rep, "rolled back; memory budget exhausted on every grid");
      } else {
        rep.status = Status::numericalDivergence(
            std::string(flowStageName(stage)) +
            " failed the finite/in-core invariant gate on every attempt");
        appendNote(rep, "rolled back to stage-entry positions");
      }
      if (st.res.status.ok()) st.res.status = rep.status;
    }
    rep.seconds = t.seconds();
    finishStage(rep);
  }

  void runMlg() {
    StageReport rep;
    rep.stage = FlowStage::kMlg;
    Timer t;
    const auto entry = capturePositions(db);
    const MlgConfig base = st.cfg.mlg;
    bool legal = false;
    for (int attempt = 0; attempt < std::max(1, sup.mlg.maxAttempts);
         ++attempt) {
      if (attempt > 0) {
        restorePositions(db, entry);
        // Perturbed retry: re-seeded annealer with a longer schedule.
        st.cfg.mlg.seed =
            base.seed + 7919ULL * static_cast<std::uint64_t>(attempt);
        st.cfg.mlg.maxOuterIterations =
            base.maxOuterIterations + attempt * (base.maxOuterIterations / 2);
        appendNote(rep, "retry with re-seeded annealer");
      }
      ++rep.attempts;
      flowStageMlg(db, st);
      legal = st.res.mlgResult.legal && movablesFiniteInCore(db);
      if (legal || !budgetLeft(sup.mlg, t)) break;
    }
    st.cfg.mlg = base;
    if (!legal) {
      // Keep the best annealed layout (less overlap than stage entry) but
      // record the violated invariant. A cancel that cut the retries short
      // is labeled as such, not as divergence.
      rep.status = rc.cancelled()
                       ? Status::cancelled("mLG cancelled (" +
                                           rc.cancelReason() + ")")
                       : Status::numericalDivergence(
                             "mLG left macro overlap after every attempt");
      appendNote(rep, "macro overlap remains");
      if (st.res.status.ok()) st.res.status = rep.status;
    }
    rep.seconds = t.seconds();
    finishStage(rep);
  }

  /// Nudges movable standard cells before a legalization retry so the
  /// Tetris packing order (sorted by x) differs from the failed attempt.
  void jitterStdCells() {
    const double pitch = db.rows.empty() ? 1.0 : db.rows.front().siteWidth;
    for (auto i : db.movable()) {
      auto& o = db.objects[static_cast<std::size_t>(i)];
      if (o.kind != ObjKind::kStdCell) continue;
      const double nx = o.lx + jitter.uniform(-2.0, 2.0) * pitch;
      const Point p = clampLowerLeft(nx, o.ly, o.w, o.h, db.region);
      o.lx = p.x;
      o.ly = p.y;
    }
  }

  [[nodiscard]] bool legalGateOk(double preHpwl) const {
    if (!movablesFiniteInCore(db)) return false;
    if (!checkLegality(db).legal) return false;
    const double h = hpwl(db);
    if (!std::isfinite(h)) return false;
    return preHpwl <= 0.0 || h <= preHpwl * sup.legalizeHpwlCap;
  }

  void runCdp() {
    StageReport rep;
    rep.stage = FlowStage::kCdp;
    Timer t;
    const auto entry = capturePositions(db);
    const double preHpwl = hpwl(db);
    bool legalOk = false;
    for (int attempt = 0;
         attempt < std::max(1, sup.cdp.maxAttempts) && !legalOk; ++attempt) {
      if (attempt > 0) {
        restorePositions(db, entry);
        jitterStdCells();
        appendNote(rep, "retry with jittered cells");
      }
      ++rep.attempts;
      st.res.legalizeResult = legalizeCells(db, &rc);
      legalOk = legalGateOk(preHpwl);
      if (!legalOk && !budgetLeft(sup.cdp, t)) break;
    }
    if (!legalOk && sup.allowFallbacks) {
      restorePositions(db, entry);
      ++rep.attempts;
      rep.fellBack = true;
      st.res.legalizeResult = greedyLegalizeCells(db, &rc);
      legalOk = legalGateOk(preHpwl);
      appendNote(rep, legalOk ? "greedy fallback legalizer"
                              : "greedy fallback also failed");
    }
    if (!legalOk) {
      restorePositions(db, entry);
      bumpStage(FlowStage::kCdp, "rollbacks", 1.0);
      rep.status = rc.cancelled()
                       ? Status::cancelled("cDP cancelled (" +
                                           rc.cancelReason() + ")")
                       : Status::numericalDivergence(
                             "legalization failed the legality/HPWL gate on "
                             "every path");
      appendNote(rep, "kept global placement result");
      if (st.res.status.ok()) st.res.status = rep.status;
    } else {
      const auto postLegal = capturePositions(db);
      const double postLegalHpwl = hpwl(db);
      st.res.detailResult = detailPlace(db, st.cfg.detail, &rc);
      const double after = hpwl(db);
      const bool detailOk =
          std::isfinite(after) &&
          after <= postLegalHpwl * (1.0 + sup.detailRegressionTol) &&
          checkLegality(db).legal && movablesFiniteInCore(db);
      if (!detailOk) {
        // Skip-cDP fallback: the legalized placement is the deliverable.
        restorePositions(db, postLegal);
        bumpStage(FlowStage::kCdp, "rollbacks", 1.0);
        rep.fellBack = true;
        appendNote(rep, "detail placement rolled back (regressed or illegal)");
      }
    }
    st.res.stageSeconds.add("cDP", t.seconds());
    st.res.cdp = flowStageMetrics(db, t.seconds(), st.res.detailResult.passes);
    rep.seconds = t.seconds();
    finishStage(rep);
  }

  /// Per-stage named counter: "flow.<stage>.<what>". RunRecord reads these
  /// from the stats registry instead of re-plumbing every count through
  /// return values.
  void bumpStage(FlowStage s, const char* what, double v) {
    rc.stats().add(std::string("flow.") + flowStageName(s) + "." + what, v);
  }

  void finishStage(StageReport rep) {
    if (!rep.status.ok()) {
      rc.log().warn("supervisor: stage %s degraded: %s",
                    flowStageName(rep.stage), rep.status.toString().c_str());
    }
    rc.stats().add("supervisor.attempts", static_cast<double>(rep.attempts));
    if (rep.fellBack) rc.stats().add("supervisor.fallbacks", 1.0);
    bumpStage(rep.stage, "retries",
              static_cast<double>(std::max(0, rep.attempts - 1)));
    SupervisorEvent ev;
    ev.kind = SupervisorEvent::Kind::kStageFinish;
    ev.stage = rep.stage;
    ev.attempts = rep.attempts;
    ev.seconds = rep.seconds;
    ev.status = rep.status;
    ev.fellBack = rep.fellBack;
    emit(ev);
    report.stages.push_back(std::move(rep));
  }

  StatusOr<FlowResult> run() {
    if (!sup.snapshotDir.empty()) {
      makeDirs(sup.snapshotDir);
      const auto existing = listSnapshotFiles(sup.snapshotDir);
      if (!existing.empty()) nextSeq = snapSeqOf(existing.back()) + 1;
    }
    FlowStage next = FlowStage::kMip;
    if (!sup.resumeDir.empty()) {
      ResumeData rd;
      if (tryResume(rd)) {
        applyResume(rd);
        next = rd.next;
      }
    }
    while (next != FlowStage::kDone) {
      if (rc.cancelled()) {
        if (st.res.status.ok()) {
          st.res.status = Status::cancelled("flow cancelled before " +
                                            std::string(flowStageName(next)) +
                                            " (" + rc.cancelReason() + ")");
        }
        rc.log().warn("supervisor: cancelled before %s (%s)",
                      flowStageName(next), rc.cancelReason().c_str());
        break;
      }
      {
        SupervisorEvent ev;
        ev.kind = SupervisorEvent::Kind::kStageStart;
        ev.stage = next;
        emit(ev);
      }
      switch (next) {
        case FlowStage::kMip:
          runMip();
          st.mixedSize = db.numMovableMacros() > 0;
          next = FlowStage::kMgp;
          break;
        case FlowStage::kMgp:
          runCoarseLevels();
          if (!rc.cancelled()) runGpStage(FlowStage::kMgp);
          next = st.mixedSize ? FlowStage::kMlg
                 : st.cfg.runDetail ? FlowStage::kCdp
                                    : FlowStage::kDone;
          break;
        case FlowStage::kMlg:
          runMlg();
          flowFreezeMacros(db);
          macrosFrozen = true;
          next = FlowStage::kCgp;
          break;
        case FlowStage::kCgp:
          runGpStage(FlowStage::kCgp);
          next = st.cfg.runDetail ? FlowStage::kCdp : FlowStage::kDone;
          break;
        case FlowStage::kCdp:
          runCdp();
          next = FlowStage::kDone;
          break;
        case FlowStage::kDone:
          break;
      }
      if (memAborted) {
        // The degradation ladder (coarser grids, reduced retention) could
        // not fit the budget; every later stage would re-breach, so end
        // the flow with the typed kResourceExhausted already recorded.
        rc.log().warn("supervisor: stopping flow after memory budget "
                      "exhaustion in %s",
                      flowStageName(report.stages.back().stage));
        break;
      }
      if (rc.cancelled()) {
        // Do NOT write the boundary snapshot: the durable stream keeps the
        // last pre-cancel (mid-stage) snapshot, so a resumed run replays the
        // remaining iterations of the interrupted stage bit-exactly instead
        // of accepting its truncated result as a stage boundary.
        if (st.res.status.ok()) {
          st.res.status =
              Status::cancelled("flow cancelled (" + rc.cancelReason() + ")");
        }
        break;
      }
      saveSnapshot(next, nullptr);
    }
    flowFinish(db, st);
    rc.stats().add("supervisor.snapshotsWritten",
                   static_cast<double>(report.snapshotsWritten));
    rc.log().info("%s", report.summary().c_str());
    return st.res;
  }
};

}  // namespace

std::string SupervisorReport::summary() const {
  std::string out;
  char line[256];
  std::snprintf(line, sizeof line,
                "supervisor: %d snapshot(s) written, %d rejected%s\n",
                snapshotsWritten, snapshotsRejected,
                resumed ? ", resumed run" : "");
  out += line;
  out += "  stage  att  time(s)  outcome   note\n";
  for (const auto& r : stages) {
    const char* outcome = "ok";
    if (r.resumed && r.attempts == 0) {
      outcome = "resumed";
    } else if (r.skipped) {
      outcome = "skipped";
    } else if (!r.status.ok()) {
      outcome = statusCodeName(r.status.code());
    } else if (r.fellBack) {
      outcome = "fallback";
    }
    std::snprintf(line, sizeof line, "  %-5s  %3d  %7.2f  %-8s  %s\n",
                  flowStageName(r.stage), r.attempts, r.seconds, outcome,
                  r.note.c_str());
    out += line;
  }
  if (!out.empty() && out.back() == '\n') out.pop_back();
  return out;
}

StatusOr<FlowResult> runSupervisedFlow(PlacementDB& db, const FlowConfig& cfg,
                                       const SupervisorConfig& sup,
                                       SupervisorReport* report,
                                       RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  SupervisorReport local;
  SupervisorReport& rep = report != nullptr ? *report : local;
  rep = SupervisorReport{};
  int repaired = 0;
  const Status s = db.sanitize(&repaired);
  if (!s.ok()) return s;
  if (repaired > 0) {
    rc.log().warn("flow: sanitize repaired %d object position(s)", repaired);
  }
  const Status v = db.validate();
  if (!v.ok()) return v;
  Supervisor sv(rc, db, cfg, sup, rep);
  // Exception boundary: a throwing hot-path task (e.g. a worker on the
  // thread pool) surfaces as a typed status instead of std::terminate.
  try {
    return sv.run();
  } catch (const MemoryBudgetExceeded& e) {
    // A breach outside the GP degradation ladder (view rebuild, legalizer
    // scratch) is still a typed per-job outcome, never an abort.
    return Status::resourceExhausted(e.what());
  } catch (const std::exception& e) {
    return Status::internal(std::string("flow aborted by exception: ") +
                            e.what());
  }
}

RunRecord buildRunRecord(const PlacementDB& db, const FlowResult& res,
                         const SupervisorReport* report, RuntimeContext* ctx,
                         bool supervised) {
  RuntimeContext& rc = resolveContext(ctx);
  RunRecord rec;
  rec.name = db.name;
  rec.fingerprint = netlistFingerprint(db);
  rec.seed = rc.seed();
  rec.threads = rc.threadCount();
  rec.supervised = supervised;

  // Coarse V-cycle rows ("mGP@L<k>", coarsest first) precede the flat
  // stage rows. Flat runs emit none, so existing records and regression
  // baselines are byte-for-byte unaffected.
  for (const LevelMetrics& lm : res.mgpLevels) {
    StageRecord sr;
    sr.stage = "mGP@L" + std::to_string(lm.level);
    sr.ran = lm.metrics.ran;
    sr.wallMs = lm.metrics.seconds * 1000.0;
    sr.iterations = lm.metrics.iterations;
    sr.hpwl = lm.metrics.hpwl;
    sr.hpwlBits = doubleBits(lm.metrics.hpwl);
    sr.overflow = lm.metrics.overflow;
    rec.stages.push_back(std::move(sr));
  }

  const struct {
    FlowStage stage;
    const StageMetrics& m;
    int recoveries;
  } rows[] = {
      {FlowStage::kMip, res.mip, 0},
      {FlowStage::kMgp, res.mgp, res.mgpResult.recoveries},
      {FlowStage::kMlg, res.mlg, 0},
      {FlowStage::kCgp, res.cgp, res.cgpResult.recoveries},
      {FlowStage::kCdp, res.cdp, 0},
  };
  for (const auto& row : rows) {
    StageRecord sr;
    sr.stage = flowStageName(row.stage);
    sr.ran = row.m.ran;
    sr.wallMs = row.m.seconds * 1000.0;
    sr.iterations = row.m.iterations;
    sr.hpwl = row.m.hpwl;
    sr.hpwlBits = doubleBits(row.m.hpwl);
    sr.overflow = row.m.overflow;
    sr.recoveries = row.recoveries;
    if (report != nullptr) {
      for (const StageReport& rep : report->stages) {
        if (rep.stage != row.stage) continue;
        sr.retries += std::max(0, rep.attempts - 1);
      }
    }
    const std::string prefix = std::string("flow.") + sr.stage + ".";
    sr.rollbacks = static_cast<int>(rc.stats().value(prefix + "rollbacks"));
    sr.snapshots = static_cast<int>(rc.stats().value(prefix + "snapshots"));
    rec.stages.push_back(std::move(sr));
  }

  rec.finalHpwl = res.finalHpwl;
  rec.finalHpwlBits = doubleBits(res.finalHpwl);
  rec.finalScaledHpwl = res.finalScaledHpwl;
  for (const auto& row : rows) {
    if (row.m.ran) rec.finalOverflow = row.m.overflow;
  }
  rec.legal = res.legality.legal;
  rec.totalSeconds = res.totalSeconds;
  rec.peakBytes = rc.memory().peakBytes();
  rec.arenaGrowthEvents = db.view().arena().growthEvents();
  rec.snapshotsWritten = report != nullptr ? report->snapshotsWritten : 0;
  rec.status = statusCodeName(res.status.code());
  for (const auto& [k, v] : rc.stats().snapshot()) rec.stats.emplace_back(k, v);
  return rec;
}

}  // namespace ep
