#include "serve/queue.h"

#include <string>

namespace ep::serve {

Status AdmissionQueue::tryPush(std::uint64_t id, int priority) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return Status::unavailable("queue closed");
    if (byPriority_.size() >= capacity_) {
      return Status::resourceExhausted(
          "admission queue full (" + std::to_string(capacity_) +
          " queued); retry later");
    }
    const Key key{-static_cast<long long>(priority), nextSeq_++};
    byPriority_.emplace(key, id);
    byId_.emplace(id, key);
  }
  cv_.notify_one();
  return Status::okStatus();
}

void AdmissionQueue::pushRecovered(std::uint64_t id, int priority) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    const Key key{-static_cast<long long>(priority), nextSeq_++};
    byPriority_.emplace(key, id);
    byId_.emplace(id, key);
  }
  cv_.notify_one();
}

bool AdmissionQueue::pop(std::uint64_t* id) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return closed_ || !byPriority_.empty(); });
  if (closed_) return false;
  const auto it = byPriority_.begin();
  *id = it->second;
  byId_.erase(it->second);
  byPriority_.erase(it);
  return true;
}

bool AdmissionQueue::tryErase(std::uint64_t id) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = byId_.find(id);
  if (it == byId_.end()) return false;
  byPriority_.erase(it->second);
  byId_.erase(it);
  return true;
}

void AdmissionQueue::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

std::size_t AdmissionQueue::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return byPriority_.size();
}

}  // namespace ep::serve
