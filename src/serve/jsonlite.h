// Compatibility shim: the JSON codec moved to util/jsonlite.h so run
// records, bench reports and the regression gate can share it without
// linking the serve layer. Serve code keeps using ep::serve::JsonValue
// via these aliases; new code should include util/jsonlite.h directly.
#pragma once

#include "util/jsonlite.h"

namespace ep::serve {

using ep::JsonLimits;
using ep::JsonValue;
using ep::parseJson;
using ep::writeJson;

}  // namespace ep::serve
