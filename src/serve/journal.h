// Durable job journal for crash-resume of the placement daemon.
//
// Layout under one state root (ServeOptions::root):
//
//   <root>/jobs/job_<id>.json      accepted-but-unfinished JobSpec
//   <root>/results/job_<id>.json   terminal JobOutcome
//   <root>/snaps/job_<id>/         FlowSupervisor snapshot stream
//
// Invariant: a job's journal entry is written (and fsync'd) BEFORE its
// submit is acknowledged, and removed only after its result file exists (or
// the client cancelled it). A daemon killed at ANY instant therefore leaves
// every acknowledged-but-unfinished job as jobs/ entry + snapshot stream;
// recoverPending() replays those on restart, and mid-stage snapshots make
// the rerun finish bit-exactly where the killed run would have. Files are
// single-line JSON written tmp -> fsync -> rename (the snapshot container's
// crash-safety recipe) so a torn write leaves the previous state, never a
// half-parsed entry.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/protocol.h"
#include "util/status.h"

namespace ep {

class FaultInjector;

namespace serve {

class JobStore {
 public:
  explicit JobStore(std::string root) : root_(std::move(root)) {}

  /// Creates the directory tree; call once before any other method.
  Status init();

  /// Routes journal/result writes through the injector's io.* sites (the
  /// daemon passes its own context's injector), so storage faults on the
  /// durability path are testable. nullptr (default) disables injection.
  void setFaults(FaultInjector* faults) { faults_ = faults; }

  [[nodiscard]] const std::string& root() const { return root_; }
  [[nodiscard]] std::string snapshotDirFor(std::uint64_t id) const;

  /// Durably records an accepted job (fsync'd before the caller acks).
  Status writePending(std::uint64_t id, const JobSpec& spec);
  void removePending(std::uint64_t id);

  Status writeResult(const JobOutcome& outcome);
  [[nodiscard]] bool hasResult(std::uint64_t id) const;
  StatusOr<JobOutcome> readResult(std::uint64_t id) const;

  struct PendingJob {
    std::uint64_t id = 0;
    JobSpec spec;
  };
  /// Journal entries without a result file, ascending id. Unreadable
  /// entries are dropped with a count in *corrupt (never fatal: one bad
  /// journal record must not block daemon startup).
  std::vector<PendingJob> recoverPending(int* corrupt = nullptr) const;

  /// Highest id seen anywhere in the store (0 when empty); the daemon
  /// starts allocating at maxJobId()+1 so recovered and new jobs never
  /// collide.
  [[nodiscard]] std::uint64_t maxJobId() const;

 private:
  std::string root_;
  FaultInjector* faults_ = nullptr;  // not owned
};

}  // namespace serve
}  // namespace ep
