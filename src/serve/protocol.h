// eplace_serve wire protocol: newline-delimited JSON over a local socket.
//
// Every request is ONE line (one JSON object, '\n'-terminated) and gets
// exactly one response line, except `watch`, which streams zero or more
// `{"event":...}` lines before its final response. Success responses are
// `{"ok":true, ...}`; failures are
// `{"ok":false,"error":"<StatusCode name>","code":<exit code>,
//   "message":"..."}` using the shared ep::Status taxonomy
// (util/status.h), so a client can map any daemon error onto the same exit
// codes the CLI uses. The full protocol reference lives in docs/SERVING.md.
//
// Requests:
//   {"op":"ping"}
//   {"op":"submit","job":{...JobSpec...}}        -> {"ok":true,"id":N}
//   {"op":"cancel","id":N}
//   {"op":"result","id":N}        non-blocking state/outcome probe
//   {"op":"wait","id":N,"timeout":sec}           -> outcome (blocks)
//   {"op":"watch","id":N}         streams progress events, then outcome
//   {"op":"stats"}                daemon counters snapshot
//   {"op":"shutdown"}             graceful drain, then exit
//
// This header also defines the journal schema: a queued job's JobSpec and a
// finished job's JobOutcome serialize through the same functions for the
// wire and for the durable job journal, so crash recovery replays exactly
// what the client submitted. HPWL travels as both a double and its IEEE-754
// bit pattern ("hpwl_bits", hex string) — the loadgen compares bit patterns
// to prove neighbor isolation, where an approximate compare would hide
// cross-job interference.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/jsonlite.h"
#include "util/fault_injector.h"
#include "util/status.h"

namespace ep::serve {

/// Inline synthetic-circuit job payload (gen/generator.h subset). Jobs may
/// alternatively name a Bookshelf .aux file readable by the daemon.
struct GenJobSpec {
  std::uint64_t numCells = 800;
  std::uint64_t numMovableMacros = 0;
  std::uint64_t seed = 1;
};

/// One fault to arm on the job's own session context before placing.
struct InjectSpec {
  std::string site;
  FaultSpec spec;
};

struct JobSpec {
  std::string name;     ///< session/log name; defaults to "job_<id>"
  std::string auxPath;  ///< Bookshelf input; empty = use `gen`
  bool hasGen = false;
  GenJobSpec gen;
  int priority = 0;  ///< higher runs first; FIFO within a priority
  /// Wall-clock budget for the job (RuntimeContext deadline); <= 0 = none.
  double deadlineSeconds = 0.0;
  int threads = 1;  ///< session pool size (results identical for any value)
  /// GP iterations between durable mid-stage snapshots; 0 = daemon default.
  int saveEvery = 0;
  int gpMaxIterations = 0;  ///< 0 = flow default
  bool runDetail = true;
  /// Memory cap in MiB for the job's session (view/CSR build, arena
  /// growth, snapshot buffers, bin grid); 0 = unlimited. Gen jobs whose
  /// admission-time capacity estimate exceeds the cap are rejected
  /// kResourceExhausted at submit; a mid-run breach fails the job alone
  /// with the same typed status.
  std::uint64_t memBudgetMb = 0;
  std::vector<InjectSpec> injections;
};

/// Terminal record of one job, returned on the wire and persisted in the
/// results journal.
struct JobOutcome {
  std::uint64_t id = 0;
  std::string name;
  Status status;
  double finalHpwl = 0.0;
  std::uint64_t hpwlBits = 0;  ///< IEEE-754 pattern of finalHpwl
  bool legal = false;
  double wallSeconds = 0.0;       ///< place() wall time
  double queueWaitSeconds = 0.0;  ///< admission -> dispatch
  int retries = 0;     ///< supervisor attempts beyond the first, all stages
  int recoveries = 0;  ///< GP divergence rollbacks (mGP + cGP)
  bool resumed = false;  ///< continued from a durable snapshot
  /// High-water mark of the session's budget-metered bytes (view/CSR +
  /// arena + checkpoints + bin grid); reported even for uncapped jobs.
  std::uint64_t peakBytes = 0;
  /// Structured run record (util/run_record.h) of the completed placement,
  /// as JSON; null when the job never produced a placement. Round-trips
  /// through the result message and the results journal, so watch clients
  /// and `result` pollers both see it.
  JsonValue record;
};

struct Request {
  enum class Op : unsigned char {
    kPing,
    kSubmit,
    kCancel,
    kResult,
    kWait,
    kWatch,
    kStats,
    kShutdown,
  };
  Op op = Op::kPing;
  std::uint64_t id = 0;       ///< cancel/result/wait/watch target
  double timeoutSeconds = 0;  ///< wait bound; <= 0 = no bound
  JobSpec job;                ///< submit payload
};

/// Parses one request line. Enforces `maxBytes` (0 = unlimited) before
/// parsing so an oversized line is rejected in O(1); every failure is a
/// typed kInvalidInput, never a crash — this function is the fuzzer's
/// primary target.
StatusOr<Request> parseRequestLine(std::string_view line,
                                   std::size_t maxBytes = 0);

Status jobSpecFromJson(const JsonValue& v, JobSpec* out);
JsonValue jobSpecToJson(const JobSpec& spec);

JsonValue outcomeToJson(const JobOutcome& out);
Status outcomeFromJson(const JsonValue& v, JobOutcome* out);

/// `{"ok":true}` (callers add fields).
JsonValue okResponse();
/// `{"ok":false,"error":...,"code":...,"message":...}` from a Status.
JsonValue errorResponse(const Status& s);
/// Reverses errorResponse on the client: OK for `{"ok":true,...}`.
Status statusFromResponse(const JsonValue& v);

/// "0x"-prefixed lowercase hex of a 64-bit pattern (and its inverse).
std::string hexBits(std::uint64_t bits);
bool parseHexBits(const std::string& s, std::uint64_t* out);

}  // namespace ep::serve
