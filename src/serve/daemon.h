// ServeDaemon — fault-isolated placement service over a local socket.
//
// One daemon = one listening AF_UNIX socket + one durable state root. The
// acceptor thread hands each connection to its own reader thread speaking
// the NDJSON protocol (serve/protocol.h); accepted jobs flow through a
// bounded AdmissionQueue (full queue -> typed kResourceExhausted, the
// acceptor NEVER blocks) into a fixed pool of job workers. Every job runs
// in its own PlacerSession — its own RuntimeContext, thread pool, fault
// injector, log prefix and stats — so a poisoned or cancelled job fails
// with a typed status while its neighbors produce results bit-identical to
// solo runs.
//
// Durability contract (see serve/journal.h and docs/SERVING.md): a submit
// is acknowledged only after the job spec is fsync'd into the journal, and
// the journal entry is removed only after the result file exists. Jobs
// checkpoint through the FlowSupervisor into per-job snapshot directories,
// so a daemon killed with SIGKILL mid-batch restarts, re-admits every
// unfinished job, resumes each from its newest valid snapshot, and
// finishes them bit-exactly. Graceful shutdown stops admission, lets
// running jobs drain for ServeOptions::drainSeconds, then cooperatively
// cancels the stragglers as "preempted" — their journals survive, so the
// next start resumes them instead of losing them.
//
// Fault sites owned by this layer (armed on the DAEMON context):
//   "serve.request"  corrupts/truncates one raw request line before parsing
//   "serve.accept"   rejects one admission with kUnavailable
// The journal and stats writers additionally honor the shared durable-I/O
// sites "io.write"/"io.fsync"/"io.rename"/"io.enospc" (util/io.h): a
// journal write failure rejects that one submit with kUnavailable. All of
// these degrade a single request; the daemon itself never crashes on them.
//
// Resource governance: a job may carry mem_budget_mb (JobSpec). Gen jobs
// are capacity-checked at admission (estimated bytes from the cell count
// vs the cap -> kResourceExhausted at submit); every budgeted job is also
// enforced mid-run by its session's MemoryBudget, failing alone with
// kResourceExhausted while neighbors stay bit-identical. Outcomes report
// the session's peak metered bytes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/log.h"
#include "util/status.h"

namespace ep {
class RuntimeContext;
}

namespace ep::serve {

struct ServeOptions {
  /// AF_UNIX socket path (must fit sun_path, ~100 bytes; keep it short).
  std::string socketPath;
  /// Durable state root: journal, results, snapshots, stats dump.
  std::string root;
  int workers = 2;        ///< concurrent placement jobs
  int queueCapacity = 64; ///< admission bound (beyond-running backlog)
  std::size_t maxRequestBytes = 64 * 1024;  ///< request line cap
  int jobThreads = 1;     ///< per-job session pool size
  /// Graceful-shutdown drain budget before running jobs are preempted
  /// (checkpointed + cancelled, resumed by the next start).
  double drainSeconds = 30.0;
  /// Mid-stage snapshot cadence (GP iterations) when a job does not set
  /// its own save_every.
  int defaultSaveEvery = 25;
  LogLevel logLevel = LogLevel::kWarn;
  bool logTimestamps = true;
};

class ServeDaemon {
 public:
  explicit ServeDaemon(ServeOptions opt);
  ServeDaemon(const ServeDaemon&) = delete;
  ServeDaemon& operator=(const ServeDaemon&) = delete;
  /// Joins everything (equivalent to requestShutdown() + wait()).
  ~ServeDaemon();

  /// Recovers the journal, binds the socket, starts acceptor + workers.
  /// kInvalidInput / kIo on an unusable configuration; the daemon is
  /// serving when this returns OK.
  Status start();

  /// Begins graceful shutdown (async-signal-UNSAFE; signal handlers set a
  /// flag and call this from the main thread). Idempotent.
  void requestShutdown();

  /// True once shutdown has been requested (signal, wire, or API).
  [[nodiscard]] bool stopping() const;

  /// Blocks until shutdown completes: admission closed, running jobs
  /// drained or preempted at the drain deadline, stats dumped to
  /// <root>/serve_stats.json.
  void wait();

  /// Daemon-level runtime: arm "serve.request"/"serve.accept" faults here,
  /// read the serve.* stats counters, adjust logging. Valid for the
  /// daemon's lifetime.
  [[nodiscard]] RuntimeContext& context();

  /// Jobs re-admitted from the journal by start().
  [[nodiscard]] int recoveredJobs() const;
  [[nodiscard]] const ServeOptions& options() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

}  // namespace ep::serve
