// ServeClient — blocking NDJSON client for the eplace_serve daemon.
//
// One client = one connection; requests on a connection are sequential
// (the protocol pairs each request line with one response line). Used by
// eplace_loadgen, the serve tests, and the serve_roundtrip bench row.
// callRaw() sends an arbitrary byte line — the protocol fuzzer uses it to
// deliver malformed input that the typed helpers could never produce.
#pragma once

#include <cstdint>
#include <string>

#include "serve/protocol.h"
#include "util/status.h"

namespace ep::serve {

class ServeClient {
 public:
  ServeClient() = default;
  ServeClient(const ServeClient&) = delete;
  ServeClient& operator=(const ServeClient&) = delete;
  ~ServeClient() { close(); }

  /// Connects, retrying until the socket accepts or `timeoutSeconds`
  /// passes (covers the race against a daemon that is still binding).
  Status connect(const std::string& socketPath, double timeoutSeconds = 5.0);
  void close();
  [[nodiscard]] bool connected() const { return fd_ >= 0; }

  /// One request -> one response. kIo on transport loss, kTimeout when no
  /// response line arrives in time.
  StatusOr<JsonValue> call(const JsonValue& request,
                           double timeoutSeconds = 60.0);
  /// Sends `line` verbatim (newline appended) and returns the raw response
  /// line. For protocol tests; does not interpret the response.
  StatusOr<std::string> callRaw(const std::string& line,
                                double timeoutSeconds = 60.0);
  /// Reads one already-in-flight line (watch event streams).
  StatusOr<std::string> readLine(double timeoutSeconds = 60.0);

  // Typed conveniences (each = one call()).
  Status ping();
  StatusOr<std::uint64_t> submit(const JobSpec& spec);
  Status cancel(std::uint64_t id);
  /// Blocks until the job is terminal; daemon-side wait + client timeout.
  StatusOr<JobOutcome> wait(std::uint64_t id, double timeoutSeconds = 600.0);
  StatusOr<JsonValue> stats();
  Status shutdownDaemon();

 private:
  int fd_ = -1;
  std::string rxBuf_;
};

}  // namespace ep::serve
