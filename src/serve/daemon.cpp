#include "serve/daemon.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <bit>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstring>
#include <map>
#include <mutex>
#include <thread>
#include <utility>
#include <vector>

#include "bookshelf/bookshelf.h"
#include "density/bingrid.h"
#include "eplace/session.h"
#include "model/capacity.h"
#include "gen/generator.h"
#include "serve/journal.h"
#include "serve/queue.h"
#include "util/context.h"
#include "util/io.h"

namespace ep::serve {

namespace {

constexpr int kPollMillis = 100;

/// write() the whole line + '\n'; MSG_NOSIGNAL so a vanished client gives
/// EPIPE instead of killing the daemon.
bool sendLine(int fd, const std::string& line) {
  std::string buf = line;
  buf += '\n';
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n =
        ::send(fd, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return false;
    }
    off += static_cast<std::size_t>(n);
  }
  return true;
}

bool sendJson(int fd, const JsonValue& v) { return sendLine(fd, writeJson(v)); }

/// Admission-time capacity estimate (bytes) for an instance of n objects.
/// Deliberately conservative-but-loose: linear terms only, sized to catch
/// order-of-magnitude mismatches, not to shave the last MiB.
std::size_t estimateInstanceBytes(std::size_t n) {
  // View geometry + CSR (~28 doubles/object at average pin degree ~4) plus
  // Nesterov state and arena scratch over movables + fillers (~2x objects).
  const std::size_t perObject = 40 * sizeof(double);
  const std::size_t m = BinGrid::chooseResolution(2 * n);
  const std::size_t grid = m * m * sizeof(double) * 8;  // density planes
  return n * perObject + grid + (std::size_t{1} << 20);  // +1 MiB fixed
}

/// A gen job names its cell count in the spec, so the daemon can reject a
/// job whose mem_budget_mb cannot possibly hold the placement state at
/// submit instead of burning a worker slot on a guaranteed mid-run breach.
std::size_t estimateJobBytes(const GenJobSpec& gen) {
  return estimateInstanceBytes(
      static_cast<std::size_t>(gen.numCells + gen.numMovableMacros));
}

/// Aux (Bookshelf) jobs learn their size from the counting pass
/// (scanBookshelfCounts): headers only, O(1) memory, no fault-injection
/// sites consumed, cheap enough for the submit path. The structural
/// capacity plan (model/capacity.h) prices the parsed instance; the
/// optimizer terms come from the same model as gen jobs. Returns 0 when
/// the scan or plan fails — the job is admitted and fails at load with
/// the real typed error, exactly as an unbudgeted submit would.
std::size_t estimateAuxJobBytes(const std::string& auxPath,
                                RuntimeContext& ctx) {
  const auto counts = scanBookshelfCounts(auxPath, &ctx);
  if (!counts.ok()) return 0;
  const auto plan = planCapacity(
      {counts->objects, counts->nets, counts->pins, counts->rows});
  if (!plan.ok()) return 0;
  return plan->totalBytes() + estimateInstanceBytes(counts->objects);
}

enum class JobState : unsigned char { kQueued, kRunning, kDone };

struct JobRecord {
  std::uint64_t id = 0;
  JobSpec spec;
  JobState state = JobState::kQueued;
  bool recovered = false;        ///< re-admitted from the journal
  bool preempted = false;        ///< shutdown drain hit; journal retained
  bool cancelRequested = false;  ///< client cancel seen
  double enqueuedAt = 0.0;       ///< daemon clock seconds
  RuntimeContext* ctx = nullptr; ///< live only while running
  JobOutcome outcome;            ///< valid once kDone
  std::vector<std::string> events;  ///< serialized watcher lines
};

}  // namespace

struct ServeDaemon::Impl {
  ServeOptions opt;
  RuntimeContext ctx;
  JobStore store;
  AdmissionQueue queue;

  std::atomic<bool> stopping{false};
  std::atomic<bool> started{false};
  std::atomic<bool> finished{false};
  int listenFd = -1;

  std::mutex mu;  ///< guards jobs, nextId; cv broadcasts every change
  std::condition_variable cv;
  std::map<std::uint64_t, JobRecord> jobs;
  std::uint64_t nextId = 1;
  int recovered = 0;

  std::thread acceptor;
  std::vector<std::thread> workers;
  std::mutex connMu;
  std::vector<std::thread> conns;

  explicit Impl(ServeOptions o)
      : opt(std::move(o)),
        ctx([&] {
          RuntimeOptions ro;
          ro.threads = 1;  // the daemon itself never runs kernels
          ro.logPrefix = "serve";
          ro.logLevel = opt.logLevel;
          ro.logTimestamps = opt.logTimestamps;
          return ro;
        }()),
        store(opt.root),
        queue(static_cast<std::size_t>(std::max(1, opt.queueCapacity))) {
    // Journal/result writes go through the daemon context's io.* fault
    // sites, so storage-fault containment on the durability path is
    // testable end to end.
    store.setFaults(&ctx.faults());
  }

  // --- job table helpers ---------------------------------------------------

  void addEventLocked(JobRecord& r, const char* what, const JsonValue* extra) {
    JsonValue ev = JsonValue::object();
    ev.set("event", JsonValue::str(what));
    ev.set("id", JsonValue::number(static_cast<double>(r.id)));
    if (extra != nullptr) {
      for (const auto& [k, v] : extra->members()) ev.set(k, v);
    }
    r.events.push_back(writeJson(ev));
  }

  void addEvent(std::uint64_t id, const char* what,
                const JsonValue* extra = nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu);
      const auto it = jobs.find(id);
      if (it == jobs.end()) return;
      addEventLocked(it->second, what, extra);
    }
    cv.notify_all();
  }

  /// Moves a record to kDone and records its outcome in the stats registry
  /// (satellite: per-job telemetry, dumped on shutdown).
  void finishJob(std::uint64_t id, JobOutcome outcome) {
    {
      std::lock_guard<std::mutex> lock(mu);
      const auto it = jobs.find(id);
      if (it == jobs.end()) return;
      JobRecord& r = it->second;
      r.state = JobState::kDone;
      r.ctx = nullptr;
      r.outcome = outcome;
      JsonValue extra = JsonValue::object();
      extra.set("status",
                JsonValue::str(statusCodeName(outcome.status.code())));
      addEventLocked(r, "done", &extra);
    }
    cv.notify_all();
    StatsRegistry& st = ctx.stats();
    switch (outcome.status.code()) {
      case StatusCode::kOk:
        st.add("serve.jobs.done.ok", 1);
        break;
      case StatusCode::kCancelled:
        st.add("serve.jobs.done.cancelled", 1);
        break;
      default:
        st.add("serve.jobs.done.failed", 1);
        break;
    }
    st.add("serve.jobs.wallSeconds", outcome.wallSeconds);
    st.add("serve.jobs.queueWaitSeconds", outcome.queueWaitSeconds);
    st.add("serve.jobs.retries", outcome.retries);
    st.add("serve.jobs.recoveries", outcome.recoveries);
    if (outcome.resumed) st.add("serve.jobs.resumedRuns", 1);
    st.add("serve.jobs.peakBytes",
           static_cast<double>(outcome.peakBytes));
    if (outcome.status.code() == StatusCode::kResourceExhausted) {
      st.add("serve.jobs.done.resourceExhausted", 1);
    }
  }

  // --- the job worker ------------------------------------------------------

  void workerLoop() {
    std::uint64_t id = 0;
    while (queue.pop(&id)) runJob(id);
  }

  void runJob(std::uint64_t id) {
    JobSpec spec;
    bool recoveredJob = false;
    bool cancelledEarly = false;
    double queueWait = 0.0;
    {
      std::lock_guard<std::mutex> lock(mu);
      const auto it = jobs.find(id);
      if (it == jobs.end()) return;
      JobRecord& r = it->second;
      if (r.preempted) return;  // shutdown already journaled this for resume
      spec = r.spec;
      recoveredJob = r.recovered;
      queueWait = std::max(0.0, ctx.elapsedSeconds() - r.enqueuedAt);
      // A cancel can land between queue.pop() and this claim; honor it
      // without spinning up a session.
      cancelledEarly = r.cancelRequested;
      if (!cancelledEarly) r.state = JobState::kRunning;
    }
    if (spec.name.empty()) {
      spec.name = "job_" + std::to_string(id);
    }
    if (cancelledEarly) {
      JobOutcome out;
      out.id = id;
      out.name = spec.name;
      out.status = Status::cancelled("cancelled before dispatch");
      out.queueWaitSeconds = queueWait;
      (void)store.writeResult(out);
      store.removePending(id);
      finishJob(id, out);
      return;
    }
    addEvent(id, "started");

    SessionOptions so;
    so.name = spec.name;
    so.threads = spec.threads;
    so.logLevel = opt.logLevel;
    so.logTimestamps = opt.logTimestamps;
    so.wallBudgetSeconds = spec.deadlineSeconds;
    so.memBudgetMb = static_cast<std::size_t>(spec.memBudgetMb);
    so.supervised = true;
    so.sup.snapshotDir = store.snapshotDirFor(id);
    if (recoveredJob) so.sup.resumeDir = so.sup.snapshotDir;
    so.sup.saveEvery =
        spec.saveEvery > 0 ? spec.saveEvery : opt.defaultSaveEvery;
    so.sup.onProgress = [this, id](const SupervisorEvent& ev) {
      JsonValue extra = JsonValue::object();
      extra.set("stage", JsonValue::str(flowStageName(ev.stage)));
      if (ev.kind == SupervisorEvent::Kind::kStageFinish) {
        extra.set("attempts", JsonValue::number(ev.attempts));
        extra.set("seconds", JsonValue::number(ev.seconds));
        extra.set("status",
                  JsonValue::str(statusCodeName(ev.status.code())));
        if (ev.fellBack) extra.set("fell_back", JsonValue::boolean(true));
      }
      if (ev.kind == SupervisorEvent::Kind::kSnapshot) {
        extra.set("seq", JsonValue::number(ev.snapshotSeq));
      }
      addEvent(id, supervisorEventKindName(ev.kind), &extra);
    };
    if (spec.gpMaxIterations > 0) {
      so.flow.gp.maxIterations = spec.gpMaxIterations;
    }
    so.flow.runDetail = spec.runDetail;

    Timer wall;
    PlacerSession session(so);
    {
      std::lock_guard<std::mutex> lock(mu);
      const auto it = jobs.find(id);
      if (it != jobs.end()) {
        it->second.ctx = &session.context();
        // Cancel raced session construction: arm the token now so the flow
        // stops at its first safe point.
        if (it->second.cancelRequested) {
          session.context().requestCancel("cancelled by client");
        }
      }
    }
    for (const InjectSpec& inj : spec.injections) {
      session.context().faults().arm(inj.site, inj.spec);
    }

    JobOutcome out;
    out.id = id;
    out.name = spec.name;
    out.queueWaitSeconds = queueWait;
    Status loadStatus;
    if (!spec.auxPath.empty()) {
      loadStatus = session.load(spec.auxPath);
    } else {
      GenSpec gs;
      gs.name = spec.name;
      gs.numCells = static_cast<std::size_t>(spec.gen.numCells);
      gs.numMovableMacros =
          static_cast<std::size_t>(spec.gen.numMovableMacros);
      gs.seed = spec.gen.seed;
      loadStatus = session.adopt(generateCircuit(gs));
    }
    if (!loadStatus.ok()) {
      out.status = loadStatus;
    } else {
      const StatusOr<FlowResult> res = session.place();
      if (!res.ok()) {
        out.status = res.status();
      } else {
        out.status = res->status;
        out.finalHpwl = res->finalHpwl;
        out.hpwlBits = std::bit_cast<std::uint64_t>(res->finalHpwl);
        out.legal = res->legality.legal;
        out.recoveries =
            res->mgpResult.recoveries + res->cgpResult.recoveries;
        if (session.record() != nullptr) {
          out.record = runRecordToJson(*session.record());
        }
      }
      for (const StageReport& sr : session.report().stages) {
        out.retries += std::max(0, sr.attempts - 1);
      }
      out.resumed = session.report().resumed;
    }
    out.peakBytes = session.context().memory().peakBytes();
    out.wallSeconds = wall.seconds();

    bool preempted = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      const auto it = jobs.find(id);
      if (it != jobs.end()) {
        it->second.ctx = nullptr;
        preempted = it->second.preempted;
      }
    }
    if (preempted && out.status.code() == StatusCode::kCancelled) {
      // Shutdown preemption: no result, journal retained — the next start
      // re-admits this job and its snapshot stream finishes it bit-exactly.
      ctx.stats().add("serve.jobs.preempted", 1);
      ctx.log().info("job %llu preempted at shutdown; will resume",
                     static_cast<unsigned long long>(id));
      finishJob(id, out);
      return;
    }
    const Status wr = store.writeResult(out);
    if (!wr.ok()) {
      ctx.log().error("job %llu result write failed: %s",
                      static_cast<unsigned long long>(id),
                      wr.toString().c_str());
    } else {
      store.removePending(id);
    }
    finishJob(id, out);
  }

  // --- request handling ----------------------------------------------------

  JsonValue handleSubmit(JobSpec spec) {
    if (stopping.load()) {
      ctx.stats().add("serve.jobs.rejected.unavailable", 1);
      return errorResponse(Status::unavailable("daemon is shutting down"));
    }
    if (ctx.faults().fire("serve.accept") != nullptr) {
      ctx.stats().add("serve.faults.accept", 1);
      ctx.stats().add("serve.jobs.rejected.unavailable", 1);
      return errorResponse(
          Status::unavailable("admission fault injected (serve.accept)"));
    }
    // Capacity check at admission: a gen job's size is known from its
    // spec, an aux job's from the Bookshelf counting pass, so an
    // impossible mem_budget_mb is a submit-time rejection, not a
    // worker-slot-burning mid-run breach.
    if (spec.memBudgetMb > 0) {
      const std::size_t need = spec.auxPath.empty()
                                   ? estimateJobBytes(spec.gen)
                                   : estimateAuxJobBytes(spec.auxPath, ctx);
      const std::size_t cap =
          static_cast<std::size_t>(spec.memBudgetMb) << 20;
      if (need > cap) {
        ctx.stats().add("serve.jobs.rejected.mem", 1);
        return errorResponse(Status::resourceExhausted(
            "job needs an estimated " +
            std::to_string((need + (1 << 20) - 1) >> 20) +
            " MiB but mem_budget_mb grants " +
            std::to_string(spec.memBudgetMb) +
            " MiB; raise the budget or shrink the job"));
      }
    }
    std::uint64_t id = 0;
    {
      std::lock_guard<std::mutex> lock(mu);
      id = nextId++;
      JobRecord r;
      r.id = id;
      if (spec.name.empty()) spec.name = "job_" + std::to_string(id);
      r.spec = spec;
      r.enqueuedAt = ctx.elapsedSeconds();
      JobRecord& slot = jobs.emplace(id, std::move(r)).first->second;
      addEventLocked(slot, "queued", nullptr);
    }
    // Journal BEFORE ack: an acknowledged job survives any crash. A
    // failed journal write (disk fault, ENOSPC) rejects THIS submit with
    // kUnavailable — the durability invariant is never weakened to "maybe
    // journaled" — while the daemon itself stays healthy for retries.
    const Status js = store.writePending(id, spec);
    if (!js.ok()) {
      {
        std::lock_guard<std::mutex> lock(mu);
        jobs.erase(id);
      }
      ctx.stats().add("serve.jobs.rejected.journal", 1);
      ctx.log().error("journal write failed for submit: %s",
                      js.toString().c_str());
      return errorResponse(Status::unavailable(
          "journal write failed (" + js.message() + "); submit again"));
    }
    const Status qs = queue.tryPush(id, spec.priority);
    if (!qs.ok()) {
      store.removePending(id);
      {
        std::lock_guard<std::mutex> lock(mu);
        jobs.erase(id);
      }
      ctx.stats().add("serve.jobs.rejected.full", 1);
      return errorResponse(qs);
    }
    ctx.stats().add("serve.jobs.accepted", 1);
    JsonValue resp = okResponse();
    resp.set("id", JsonValue::number(static_cast<double>(id)));
    resp.set("queued", JsonValue::number(static_cast<double>(queue.size())));
    return resp;
  }

  JsonValue handleCancel(std::uint64_t id) {
    ctx.stats().add("serve.cancel.requests", 1);
    bool eraseFromQueue = false;
    double queueWait = 0.0;
    std::string name;
    {
      std::lock_guard<std::mutex> lock(mu);
      const auto it = jobs.find(id);
      if (it == jobs.end()) {
        return errorResponse(
            Status::invalidInput("unknown job id " + std::to_string(id)));
      }
      JobRecord& r = it->second;
      if (r.state == JobState::kDone) {
        JsonValue resp = okResponse();
        resp.set("state", JsonValue::str("done"));
        resp.set("cancelled", JsonValue::boolean(false));
        return resp;
      }
      r.cancelRequested = true;
      if (r.state == JobState::kQueued) {
        eraseFromQueue = true;
        queueWait = std::max(0.0, ctx.elapsedSeconds() - r.enqueuedAt);
        name = r.spec.name.empty() ? "job_" + std::to_string(id)
                                   : r.spec.name;
      } else if (r.ctx != nullptr) {
        r.ctx->requestCancel("cancelled by client");
      }
    }
    cv.notify_all();
    if (eraseFromQueue && queue.tryErase(id)) {
      // Still queued: terminal immediately, no session ever starts.
      JobOutcome out;
      out.id = id;
      out.name = name;
      out.status = Status::cancelled("cancelled while queued");
      out.queueWaitSeconds = queueWait;
      (void)store.writeResult(out);
      store.removePending(id);
      finishJob(id, out);
    }
    // If tryErase lost the race the worker sees cancelRequested at claim
    // time (or the context token mid-flow) and finishes it as cancelled.
    JsonValue resp = okResponse();
    resp.set("cancelled", JsonValue::boolean(true));
    return resp;
  }

  JsonValue handleResult(std::uint64_t id) {
    {
      std::lock_guard<std::mutex> lock(mu);
      const auto it = jobs.find(id);
      if (it != jobs.end()) {
        const JobRecord& r = it->second;
        if (r.state == JobState::kDone) {
          JsonValue resp = okResponse();
          resp.set("state", JsonValue::str("done"));
          resp.set("result", outcomeToJson(r.outcome));
          return resp;
        }
        JsonValue resp = okResponse();
        resp.set("state", JsonValue::str(r.state == JobState::kQueued
                                             ? "queued"
                                             : "running"));
        return resp;
      }
    }
    // Not in this daemon's table: maybe a previous run finished it.
    const StatusOr<JobOutcome> prev = store.readResult(id);
    if (prev.ok()) {
      JsonValue resp = okResponse();
      resp.set("state", JsonValue::str("done"));
      resp.set("result", outcomeToJson(*prev));
      return resp;
    }
    return errorResponse(
        Status::invalidInput("unknown job id " + std::to_string(id)));
  }

  JsonValue handleWait(std::uint64_t id, double timeoutSeconds) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration<double>(timeoutSeconds > 0 ? timeoutSeconds
                                                         : 3600.0);
    std::unique_lock<std::mutex> lock(mu);
    const auto it = jobs.find(id);
    if (it == jobs.end()) {
      lock.unlock();
      return handleResult(id);  // finished in a previous daemon run?
    }
    while (it->second.state != JobState::kDone) {
      if (stopping.load()) {
        return errorResponse(
            Status::unavailable("daemon is shutting down"));
      }
      if (cv.wait_until(lock, deadline) == std::cv_status::timeout) {
        return errorResponse(Status::timeout(
            "job " + std::to_string(id) + " not finished within the wait "
            "timeout"));
      }
    }
    JsonValue resp = okResponse();
    resp.set("state", JsonValue::str("done"));
    resp.set("result", outcomeToJson(it->second.outcome));
    return resp;
  }

  /// Streams buffered + live progress events, then the final result line.
  /// Returns false when the client went away.
  bool handleWatch(int fd, std::uint64_t id) {
    std::size_t cursor = 0;
    while (true) {
      std::vector<std::string> fresh;
      bool done = false;
      JsonValue closing;
      {
        std::unique_lock<std::mutex> lock(mu);
        const auto it = jobs.find(id);
        if (it == jobs.end()) {
          lock.unlock();
          return sendJson(fd, handleResult(id));
        }
        cv.wait_for(lock, std::chrono::milliseconds(kPollMillis), [&] {
          return it->second.events.size() > cursor ||
                 it->second.state == JobState::kDone || stopping.load();
        });
        const JobRecord& r = it->second;
        fresh.assign(r.events.begin() + static_cast<long>(cursor),
                     r.events.end());
        cursor = r.events.size();
        if (r.state == JobState::kDone) {
          done = true;
          closing = okResponse();
          closing.set("state", JsonValue::str("done"));
          closing.set("result", outcomeToJson(r.outcome));
        } else if (stopping.load()) {
          done = true;
          closing = errorResponse(
              Status::unavailable("daemon is shutting down"));
        }
      }
      for (const std::string& line : fresh) {
        if (!sendLine(fd, line)) return false;
      }
      if (done) return sendJson(fd, closing);
    }
  }

  JsonValue handleStats() {
    JsonValue resp = okResponse();
    resp.set("queue_depth",
             JsonValue::number(static_cast<double>(queue.size())));
    resp.set("queue_capacity",
             JsonValue::number(static_cast<double>(queue.capacity())));
    resp.set("workers", JsonValue::number(opt.workers));
    resp.set("recovered", JsonValue::number(recovered));
    resp.set("uptime_seconds", JsonValue::number(ctx.elapsedSeconds()));
    JsonValue counters = JsonValue::object();
    for (const auto& [name, value] : ctx.stats().snapshot()) {
      counters.set(name, JsonValue::number(value));
    }
    resp.set("counters", std::move(counters));
    return resp;
  }

  /// One request line -> one response (watch streams first). Returns false
  /// when the connection should close.
  bool handleLine(int fd, std::string line) {
    // The serve.request fault corrupts the raw line BEFORE parsing: a bit
    // flip or truncation must yield a typed rejection, never a crash.
    if (ctx.faults().active()) {
      if (const FaultSpec* spec = ctx.faults().fire("serve.request")) {
        ctx.stats().add("serve.faults.request", 1);
        if (spec->kind == FaultKind::kTruncate) {
          line.resize(line.size() / 2);
        } else if (!line.empty()) {
          ctx.faults().corruptBytes(
              std::span<std::uint8_t>(
                  reinterpret_cast<std::uint8_t*>(line.data()), line.size()),
              *spec);
        }
      }
    }
    const StatusOr<Request> parsed =
        parseRequestLine(line, opt.maxRequestBytes);
    if (!parsed.ok()) {
      ctx.stats().add("serve.requests.rejected", 1);
      return sendJson(fd, errorResponse(parsed.status()));
    }
    ctx.stats().add("serve.requests.accepted", 1);
    const Request& req = *parsed;
    switch (req.op) {
      case Request::Op::kPing: {
        JsonValue resp = okResponse();
        resp.set("pong", JsonValue::boolean(true));
        return sendJson(fd, resp);
      }
      case Request::Op::kSubmit:
        return sendJson(fd, handleSubmit(req.job));
      case Request::Op::kCancel:
        return sendJson(fd, handleCancel(req.id));
      case Request::Op::kResult:
        return sendJson(fd, handleResult(req.id));
      case Request::Op::kWait:
        return sendJson(fd, handleWait(req.id, req.timeoutSeconds));
      case Request::Op::kWatch:
        return handleWatch(fd, req.id);
      case Request::Op::kStats:
        return sendJson(fd, handleStats());
      case Request::Op::kShutdown: {
        sendJson(fd, okResponse());
        ctx.log().info("shutdown requested over the wire");
        requestShutdownImpl();
        return false;
      }
    }
    return false;
  }

  void connectionLoop(int fd) {
    std::string buf;
    char chunk[4096];
    while (!stopping.load()) {
      pollfd pfd{fd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, kPollMillis);
      if (pr < 0 && errno != EINTR) break;
      if (pr <= 0) continue;
      const ssize_t n = ::recv(fd, chunk, sizeof chunk, 0);
      if (n == 0) break;  // client closed
      if (n < 0) {
        if (errno == EINTR || errno == EAGAIN) continue;
        break;
      }
      buf.append(chunk, static_cast<std::size_t>(n));
      // Oversized line with no newline yet: framing is unrecoverable, so
      // reject once and drop the connection.
      if (buf.size() > opt.maxRequestBytes &&
          buf.find('\n') == std::string::npos) {
        ctx.stats().add("serve.requests.rejected", 1);
        sendJson(fd, errorResponse(Status::invalidInput(
                         "request line exceeds " +
                         std::to_string(opt.maxRequestBytes) + " bytes")));
        break;
      }
      bool keep = true;
      std::size_t start = 0;
      while (keep) {
        const std::size_t nl = buf.find('\n', start);
        if (nl == std::string::npos) break;
        std::string line = buf.substr(start, nl - start);
        if (!line.empty() && line.back() == '\r') line.pop_back();
        start = nl + 1;
        if (line.empty()) continue;
        keep = handleLine(fd, std::move(line));
      }
      buf.erase(0, start);
      if (!keep) break;
    }
    ::close(fd);
  }

  void acceptLoop() {
    while (!stopping.load()) {
      pollfd pfd{listenFd, POLLIN, 0};
      const int pr = ::poll(&pfd, 1, kPollMillis);
      if (pr < 0 && errno != EINTR) break;
      if (pr <= 0) continue;
      const int fd = ::accept(listenFd, nullptr, nullptr);
      if (fd < 0) continue;
      std::lock_guard<std::mutex> lock(connMu);
      conns.emplace_back([this, fd] { connectionLoop(fd); });
    }
  }

  // --- lifecycle -----------------------------------------------------------

  Status start() {
    Status s = store.init();
    if (!s.ok()) return s;
    // Re-admit every acknowledged-but-unfinished job from the journal.
    int corrupt = 0;
    const auto pending = store.recoverPending(&corrupt);
    if (corrupt > 0) {
      ctx.log().warn("job journal: %d unreadable entr%s skipped", corrupt,
                     corrupt == 1 ? "y" : "ies");
    }
    nextId = store.maxJobId() + 1;
    for (const JobStore::PendingJob& p : pending) {
      JobRecord r;
      r.id = p.id;
      r.spec = p.spec;
      r.recovered = true;
      r.enqueuedAt = ctx.elapsedSeconds();
      {
        std::lock_guard<std::mutex> lock(mu);
        JobRecord& slot = jobs.emplace(p.id, std::move(r)).first->second;
        addEventLocked(slot, "recovered", nullptr);
      }
      queue.pushRecovered(p.id, p.spec.priority);
      ++recovered;
    }
    if (recovered > 0) {
      ctx.stats().add("serve.jobs.recovered", recovered);
      ctx.log().info("recovered %d unfinished job(s) from the journal",
                     recovered);
    }

    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (opt.socketPath.empty() ||
        opt.socketPath.size() >= sizeof(addr.sun_path)) {
      return Status::invalidInput("socket path empty or longer than " +
                                  std::to_string(sizeof(addr.sun_path) - 1) +
                                  " bytes");
    }
    std::memcpy(addr.sun_path, opt.socketPath.c_str(),
                opt.socketPath.size() + 1);
    ::unlink(opt.socketPath.c_str());  // stale socket from a crashed run
    listenFd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (listenFd < 0) return Status::ioError("socket() failed");
    if (::bind(listenFd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) !=
        0) {
      ::close(listenFd);
      listenFd = -1;
      return Status::ioError("cannot bind " + opt.socketPath);
    }
    if (::listen(listenFd, 64) != 0) {
      ::close(listenFd);
      listenFd = -1;
      return Status::ioError("cannot listen on " + opt.socketPath);
    }
    const int nWorkers = std::max(1, opt.workers);
    workers.reserve(static_cast<std::size_t>(nWorkers));
    for (int i = 0; i < nWorkers; ++i) {
      workers.emplace_back([this] { workerLoop(); });
    }
    acceptor = std::thread([this] { acceptLoop(); });
    started.store(true);
    ctx.log().info("serving on %s (root %s, %d worker(s), queue cap %zu)",
                   opt.socketPath.c_str(), opt.root.c_str(), nWorkers,
                   queue.capacity());
    return Status::okStatus();
  }

  void requestShutdownImpl() {
    if (stopping.exchange(true)) return;
    cv.notify_all();
  }

  [[nodiscard]] int runningCountLocked() const {
    int n = 0;
    for (const auto& [id, r] : jobs) {
      if (r.state == JobState::kRunning) ++n;
    }
    return n;
  }

  void waitImpl() {
    if (!started.load() || finished.exchange(true)) return;
    // Block until someone asks us to stop, then run the drain protocol.
    {
      std::unique_lock<std::mutex> lock(mu);
      cv.wait(lock, [this] { return stopping.load(); });
    }
    if (acceptor.joinable()) acceptor.join();
    {
      std::lock_guard<std::mutex> lock(connMu);
      for (std::thread& t : conns) {
        if (t.joinable()) t.join();
      }
      conns.clear();
    }
    // Stop dispatch. Jobs still queued stay journaled (no result file), so
    // the next start re-admits them; mark their records preempted so
    // in-process waiters get a typed answer. One lock for the whole sweep:
    // a worker claiming concurrently either beat us (state kRunning, it
    // drains below) or sees `preempted` at claim time and leaves the job
    // for the next start.
    queue.close();
    int preemptedQueued = 0;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (auto& [id, r] : jobs) {
        if (r.state != JobState::kQueued) continue;
        r.preempted = true;
        r.state = JobState::kDone;
        r.outcome.id = id;
        r.outcome.name = r.spec.name;
        r.outcome.status =
            Status::cancelled("preempted by shutdown while queued; the next "
                              "daemon start resumes this job");
        JsonValue extra = JsonValue::object();
        extra.set("status", JsonValue::str("Cancelled"));
        addEventLocked(r, "done", &extra);
        ++preemptedQueued;
      }
    }
    cv.notify_all();
    if (preemptedQueued > 0) {
      ctx.stats().add("serve.jobs.preempted", preemptedQueued);
    }
    // Drain window for running jobs.
    const Timer drain;
    while (drain.seconds() < std::max(0.0, opt.drainSeconds)) {
      {
        std::lock_guard<std::mutex> lock(mu);
        if (runningCountLocked() == 0) break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    // Past the deadline: checkpoint-and-abort. The cancel token stops each
    // flow at its next safe point; journals survive for resume.
    {
      std::lock_guard<std::mutex> lock(mu);
      for (auto& [id, r] : jobs) {
        if (r.state != JobState::kRunning) continue;
        r.preempted = true;
        if (r.ctx != nullptr) {
          r.ctx->requestCancel("preempted by shutdown drain deadline");
        }
        ctx.log().warn("job %llu preempted at the drain deadline",
                       static_cast<unsigned long long>(id));
      }
    }
    for (std::thread& t : workers) {
      if (t.joinable()) t.join();
    }
    workers.clear();
    if (listenFd >= 0) {
      ::close(listenFd);
      listenFd = -1;
    }
    ::unlink(opt.socketPath.c_str());
    dumpStats();
  }

  void dumpStats() {
    JsonValue v = JsonValue::object();
    v.set("uptime_seconds", JsonValue::number(ctx.elapsedSeconds()));
    for (const auto& [name, value] : ctx.stats().snapshot()) {
      v.set(name, JsonValue::number(value));
    }
    const std::string path = opt.root + "/serve_stats.json";
    const Status ws =
        io::writeFileDurably(path, writeJson(v) + "\n", &ctx.faults());
    if (!ws.ok()) {
      ctx.log().warn("stats dump to %s failed: %s", path.c_str(),
                     ws.toString().c_str());
    }
    ctx.log().info("shutdown: %.0f accepted, %.0f ok, %.0f failed, %.0f "
                   "cancelled, %.0f preempted, %.0f rejected-full",
                   ctx.stats().value("serve.jobs.accepted"),
                   ctx.stats().value("serve.jobs.done.ok"),
                   ctx.stats().value("serve.jobs.done.failed"),
                   ctx.stats().value("serve.jobs.done.cancelled"),
                   ctx.stats().value("serve.jobs.preempted"),
                   ctx.stats().value("serve.jobs.rejected.full"));
  }
};

ServeDaemon::ServeDaemon(ServeOptions opt)
    : impl_(std::make_unique<Impl>(std::move(opt))) {}

ServeDaemon::~ServeDaemon() {
  requestShutdown();
  wait();
}

Status ServeDaemon::start() { return impl_->start(); }

void ServeDaemon::requestShutdown() { impl_->requestShutdownImpl(); }

bool ServeDaemon::stopping() const { return impl_->stopping.load(); }

void ServeDaemon::wait() { impl_->waitImpl(); }

RuntimeContext& ServeDaemon::context() { return impl_->ctx; }

int ServeDaemon::recoveredJobs() const { return impl_->recovered; }

const ServeOptions& ServeDaemon::options() const { return impl_->opt; }

}  // namespace ep::serve
