#include "serve/client.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace ep::serve {

Status ServeClient::connect(const std::string& socketPath,
                            double timeoutSeconds) {
  close();
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (socketPath.empty() || socketPath.size() >= sizeof(addr.sun_path)) {
    return Status::invalidInput("socket path empty or too long");
  }
  std::memcpy(addr.sun_path, socketPath.c_str(), socketPath.size() + 1);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeoutSeconds);
  while (true) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) return Status::ioError("socket() failed");
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr),
                  sizeof addr) == 0) {
      fd_ = fd;
      return Status::okStatus();
    }
    ::close(fd);
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::unavailable("cannot connect to " + socketPath + ": " +
                                 std::strerror(errno));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void ServeClient::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  rxBuf_.clear();
}

StatusOr<std::string> ServeClient::readLine(double timeoutSeconds) {
  if (fd_ < 0) return Status::unavailable("not connected");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(timeoutSeconds);
  while (true) {
    const std::size_t nl = rxBuf_.find('\n');
    if (nl != std::string::npos) {
      std::string line = rxBuf_.substr(0, nl);
      rxBuf_.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return line;
    }
    const auto left = deadline - std::chrono::steady_clock::now();
    if (left <= std::chrono::steady_clock::duration::zero()) {
      return Status::timeout("no response line within the timeout");
    }
    const int waitMs = static_cast<int>(std::min<long long>(
        200,
        std::chrono::duration_cast<std::chrono::milliseconds>(left).count() +
            1));
    pollfd pfd{fd_, POLLIN, 0};
    const int pr = ::poll(&pfd, 1, waitMs);
    if (pr < 0 && errno != EINTR) {
      return Status::ioError("poll failed on daemon connection");
    }
    if (pr <= 0) continue;
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
    if (n == 0) return Status::ioError("daemon closed the connection");
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN) continue;
      return Status::ioError("recv failed on daemon connection");
    }
    rxBuf_.append(chunk, static_cast<std::size_t>(n));
  }
}

StatusOr<std::string> ServeClient::callRaw(const std::string& line,
                                           double timeoutSeconds) {
  if (fd_ < 0) return Status::unavailable("not connected");
  std::string buf = line;
  buf += '\n';
  std::size_t off = 0;
  while (off < buf.size()) {
    const ssize_t n =
        ::send(fd_, buf.data() + off, buf.size() - off, MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && (errno == EINTR || errno == EAGAIN)) continue;
      return Status::ioError("send failed on daemon connection");
    }
    off += static_cast<std::size_t>(n);
  }
  return readLine(timeoutSeconds);
}

StatusOr<JsonValue> ServeClient::call(const JsonValue& request,
                                      double timeoutSeconds) {
  const StatusOr<std::string> raw =
      callRaw(writeJson(request), timeoutSeconds);
  if (!raw.ok()) return raw.status();
  StatusOr<JsonValue> parsed = parseJson(*raw);
  if (!parsed.ok()) {
    return Status::internal("daemon sent unparseable response: " +
                            parsed.status().message());
  }
  return parsed;
}

Status ServeClient::ping() {
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str("ping"));
  const StatusOr<JsonValue> resp = call(req, 5.0);
  if (!resp.ok()) return resp.status();
  return statusFromResponse(*resp);
}

StatusOr<std::uint64_t> ServeClient::submit(const JobSpec& spec) {
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str("submit"));
  req.set("job", jobSpecToJson(spec));
  const StatusOr<JsonValue> resp = call(req);
  if (!resp.ok()) return resp.status();
  const Status s = statusFromResponse(*resp);
  if (!s.ok()) return s;
  const double id = resp->getNumber("id", 0.0);
  if (id < 1) return Status::internal("submit response carries no job id");
  return static_cast<std::uint64_t>(id);
}

Status ServeClient::cancel(std::uint64_t id) {
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str("cancel"));
  req.set("id", JsonValue::number(static_cast<double>(id)));
  const StatusOr<JsonValue> resp = call(req);
  if (!resp.ok()) return resp.status();
  return statusFromResponse(*resp);
}

StatusOr<JobOutcome> ServeClient::wait(std::uint64_t id,
                                       double timeoutSeconds) {
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str("wait"));
  req.set("id", JsonValue::number(static_cast<double>(id)));
  req.set("timeout", JsonValue::number(timeoutSeconds));
  // Client-side slack past the daemon-side bound so the daemon's typed
  // kTimeout wins over a transport timeout.
  const StatusOr<JsonValue> resp = call(req, timeoutSeconds + 10.0);
  if (!resp.ok()) return resp.status();
  const Status s = statusFromResponse(*resp);
  if (!s.ok()) return s;
  const JsonValue* result = resp->find("result");
  if (result == nullptr) {
    return Status::internal("wait response carries no result");
  }
  JobOutcome out;
  const Status ps = outcomeFromJson(*result, &out);
  if (!ps.ok()) return ps;
  return out;
}

StatusOr<JsonValue> ServeClient::stats() {
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str("stats"));
  const StatusOr<JsonValue> resp = call(req, 10.0);
  if (!resp.ok()) return resp.status();
  const Status s = statusFromResponse(*resp);
  if (!s.ok()) return s;
  return resp;
}

Status ServeClient::shutdownDaemon() {
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str("shutdown"));
  const StatusOr<JsonValue> resp = call(req, 10.0);
  if (!resp.ok()) return resp.status();
  return statusFromResponse(*resp);
}

}  // namespace ep::serve
