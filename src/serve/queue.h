// Bounded priority admission queue for the placement daemon.
//
// The backpressure contract (docs/SERVING.md): admission NEVER blocks the
// caller. tryPush() on a full queue returns kResourceExhausted immediately
// — the acceptor thread turns that into a typed wire rejection, the client
// retries later. Only the worker side blocks (pop() waits for work).
// Ordering is priority-descending, FIFO within a priority (a submission
// sequence number breaks ties), so two equal-priority jobs run in admission
// order regardless of map internals. Crash-recovered jobs re-enter through
// pushRecovered(), which bypasses the capacity check: jobs that were
// already admitted before the crash must not be bounced by a full queue on
// restart.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <utility>

#include "util/status.h"

namespace ep::serve {

class AdmissionQueue {
 public:
  explicit AdmissionQueue(std::size_t capacity) : capacity_(capacity) {}
  AdmissionQueue(const AdmissionQueue&) = delete;
  AdmissionQueue& operator=(const AdmissionQueue&) = delete;

  /// Non-blocking admission; kResourceExhausted when full, kUnavailable
  /// after close().
  Status tryPush(std::uint64_t id, int priority);

  /// Capacity-exempt admission for journal recovery (still rejected after
  /// close()).
  void pushRecovered(std::uint64_t id, int priority);

  /// Blocks for the highest-priority job. Returns false when the queue is
  /// closed (remaining entries stay queued — the daemon journals them as
  /// preempted so a restart re-admits them).
  bool pop(std::uint64_t* id);

  /// Removes a still-queued job (client cancel); false when not queued.
  bool tryErase(std::uint64_t id);

  /// Stops admission and wakes every blocked pop().
  void close();

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

 private:
  /// (-priority, seq): map order = priority desc, then admission order.
  using Key = std::pair<long long, std::uint64_t>;

  const std::size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  bool closed_ = false;
  std::uint64_t nextSeq_ = 0;
  std::map<Key, std::uint64_t> byPriority_;
  std::map<std::uint64_t, Key> byId_;
};

}  // namespace ep::serve
