#include "serve/journal.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

#include "util/io.h"

namespace ep::serve {

namespace {

constexpr const char* kJobPrefix = "job_";
constexpr const char* kJsonSuffix = ".json";

void makeDirs(const std::string& path) {
  std::string cur;
  for (std::size_t i = 0; i <= path.size(); ++i) {
    if (i == path.size() || path[i] == '/') {
      if (!cur.empty() && cur != "/") ::mkdir(cur.c_str(), 0755);
    }
    if (i < path.size()) cur += path[i];
  }
}

std::string jobFileName(std::uint64_t id) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%s%llu%s", kJobPrefix,
                static_cast<unsigned long long>(id), kJsonSuffix);
  return buf;
}

/// Id encoded in "job_<id>.json", or 0 on any mismatch (ids start at 1).
std::uint64_t jobIdOf(const std::string& name) {
  const std::size_t plen = std::string(kJobPrefix).size();
  const std::size_t slen = std::string(kJsonSuffix).size();
  if (name.size() <= plen + slen) return 0;
  if (name.compare(0, plen, kJobPrefix) != 0) return 0;
  if (name.compare(name.size() - slen, slen, kJsonSuffix) != 0) return 0;
  std::uint64_t id = 0;
  for (std::size_t i = plen; i < name.size() - slen; ++i) {
    const char c = name[i];
    if (c < '0' || c > '9') return 0;
    id = id * 10 + static_cast<std::uint64_t>(c - '0');
  }
  return id;
}

std::vector<std::uint64_t> listJobIds(const std::string& dir) {
  std::vector<std::uint64_t> ids;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return ids;
  while (const dirent* e = ::readdir(d)) {
    const std::uint64_t id = jobIdOf(e->d_name);
    if (id > 0) ids.push_back(id);
  }
  ::closedir(d);
  std::sort(ids.begin(), ids.end());
  return ids;
}

StatusOr<JsonValue> readJsonFile(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f.good()) return Status::ioError("cannot open " + path);
  std::ostringstream buf;
  buf << f.rdbuf();
  return parseJson(buf.str());
}

bool fileExists(const std::string& path) {
  struct stat st {};
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

Status JobStore::init() {
  makeDirs(root_ + "/jobs");
  makeDirs(root_ + "/results");
  makeDirs(root_ + "/snaps");
  if (!fileExists(root_ + "/jobs")) {
    return Status::ioError("cannot create job store under " + root_);
  }
  return Status::okStatus();
}

std::string JobStore::snapshotDirFor(std::uint64_t id) const {
  char buf[32];
  std::snprintf(buf, sizeof buf, "/snaps/job_%llu",
                static_cast<unsigned long long>(id));
  return root_ + buf;
}

Status JobStore::writePending(std::uint64_t id, const JobSpec& spec) {
  JsonValue v = jobSpecToJson(spec);
  v.set("id", JsonValue::number(static_cast<double>(id)));
  // ep::io owns the tmp -> fsync -> rename -> parent-fsync recipe plus
  // bounded retry; transient storage hiccups never bounce an admission.
  return io::writeFileDurably(root_ + "/jobs/" + jobFileName(id),
                              writeJson(v) + "\n", faults_);
}

void JobStore::removePending(std::uint64_t id) {
  std::remove((root_ + "/jobs/" + jobFileName(id)).c_str());
}

Status JobStore::writeResult(const JobOutcome& outcome) {
  return io::writeFileDurably(root_ + "/results/" + jobFileName(outcome.id),
                              writeJson(outcomeToJson(outcome)) + "\n",
                              faults_);
}

bool JobStore::hasResult(std::uint64_t id) const {
  return fileExists(root_ + "/results/" + jobFileName(id));
}

StatusOr<JobOutcome> JobStore::readResult(std::uint64_t id) const {
  const auto v = readJsonFile(root_ + "/results/" + jobFileName(id));
  if (!v.ok()) return v.status();
  JobOutcome out;
  const Status s = outcomeFromJson(*v, &out);
  if (!s.ok()) return s;
  return out;
}

std::vector<JobStore::PendingJob> JobStore::recoverPending(
    int* corrupt) const {
  std::vector<PendingJob> pending;
  int bad = 0;
  for (const std::uint64_t id : listJobIds(root_ + "/jobs")) {
    if (hasResult(id)) continue;  // finished; journal removal raced the kill
    const auto v = readJsonFile(root_ + "/jobs/" + jobFileName(id));
    if (!v.ok()) {
      ++bad;
      continue;
    }
    PendingJob p;
    p.id = id;
    if (!jobSpecFromJson(*v, &p.spec).ok()) {
      ++bad;
      continue;
    }
    pending.push_back(std::move(p));
  }
  if (corrupt != nullptr) *corrupt = bad;
  return pending;
}

std::uint64_t JobStore::maxJobId() const {
  std::uint64_t mx = 0;
  for (const char* sub : {"/jobs", "/results"}) {
    const auto ids = listJobIds(root_ + sub);
    if (!ids.empty()) mx = std::max(mx, ids.back());
  }
  return mx;
}

}  // namespace ep::serve
