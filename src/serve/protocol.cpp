#include "serve/protocol.h"

#include <cstdio>
#include <cstdlib>

namespace ep::serve {

namespace {

/// Non-negative integral JSON number -> u64 (ids, counts, seeds). Rejects
/// negatives, fractions, and values past 2^53 (not exactly representable).
bool toU64(const JsonValue& v, std::uint64_t* out) {
  if (!v.isNumber()) return false;
  const double d = v.asNumber();
  if (d < 0 || d != static_cast<double>(static_cast<std::uint64_t>(d)) ||
      d > 9.007199254740992e15) {
    return false;
  }
  *out = static_cast<std::uint64_t>(d);
  return true;
}

bool faultKindFromName(const std::string& name, FaultKind* out) {
  if (name == "nan") {
    *out = FaultKind::kNaN;
  } else if (name == "spike") {
    *out = FaultKind::kSpike;
  } else if (name == "trunc") {
    *out = FaultKind::kTruncate;
  } else if (name == "error") {
    *out = FaultKind::kError;
  } else {
    return false;
  }
  return true;
}

const char* faultKindName(FaultKind k) {
  switch (k) {
    case FaultKind::kNaN: return "nan";
    case FaultKind::kSpike: return "spike";
    case FaultKind::kTruncate: return "trunc";
    case FaultKind::kError: return "error";
  }
  return "nan";
}

}  // namespace

std::string hexBits(std::uint64_t bits) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "0x%016llx",
                static_cast<unsigned long long>(bits));
  return buf;
}

bool parseHexBits(const std::string& s, std::uint64_t* out) {
  if (s.size() < 3 || s[0] != '0' || (s[1] != 'x' && s[1] != 'X')) {
    return false;
  }
  std::uint64_t v = 0;
  for (std::size_t i = 2; i < s.size(); ++i) {
    const char c = s[i];
    std::uint64_t d = 0;
    if (c >= '0' && c <= '9') {
      d = static_cast<std::uint64_t>(c - '0');
    } else if (c >= 'a' && c <= 'f') {
      d = static_cast<std::uint64_t>(c - 'a') + 10;
    } else if (c >= 'A' && c <= 'F') {
      d = static_cast<std::uint64_t>(c - 'A') + 10;
    } else {
      return false;
    }
    if (i > 2 + 15) return false;  // more than 16 hex digits
    v = (v << 4) | d;
  }
  *out = v;
  return true;
}

Status jobSpecFromJson(const JsonValue& v, JobSpec* out) {
  if (!v.isObject()) return Status::invalidInput("job must be an object");
  *out = JobSpec{};
  out->name = v.getString("name");
  out->auxPath = v.getString("aux");
  if (const JsonValue* gen = v.find("gen")) {
    if (!gen->isObject()) {
      return Status::invalidInput("job.gen must be an object");
    }
    out->hasGen = true;
    std::uint64_t u = 0;
    if (const JsonValue* c = gen->find("cells")) {
      if (!toU64(*c, &u) || u == 0 || u > 2'000'000) {
        return Status::invalidInput("job.gen.cells out of range");
      }
      out->gen.numCells = u;
    }
    if (const JsonValue* m = gen->find("macros")) {
      if (!toU64(*m, &u) || u > 1000) {
        return Status::invalidInput("job.gen.macros out of range");
      }
      out->gen.numMovableMacros = u;
    }
    if (const JsonValue* s = gen->find("seed")) {
      if (!toU64(*s, &u)) {
        return Status::invalidInput("job.gen.seed must be a non-negative "
                                    "integer");
      }
      out->gen.seed = u;
    }
  }
  if (out->auxPath.empty() && !out->hasGen) {
    return Status::invalidInput("job needs either \"aux\" or \"gen\"");
  }
  if (!out->auxPath.empty() && out->hasGen) {
    return Status::invalidInput("job has both \"aux\" and \"gen\"");
  }
  if (const JsonValue* p = v.find("priority")) {
    if (!p->isNumber()) return Status::invalidInput("priority not a number");
    const double d = p->asNumber();
    if (d < -1000 || d > 1000 || d != static_cast<double>(static_cast<int>(d))) {
      return Status::invalidInput("priority out of range");
    }
    out->priority = static_cast<int>(d);
  }
  out->deadlineSeconds = v.getNumber("deadline", 0.0);
  if (out->deadlineSeconds < 0) {
    return Status::invalidInput("deadline must be >= 0");
  }
  const double threads = v.getNumber("threads", 1.0);
  if (threads < 1 || threads > 256) {
    return Status::invalidInput("threads out of range");
  }
  out->threads = static_cast<int>(threads);
  const double saveEvery = v.getNumber("save_every", 0.0);
  if (saveEvery < 0 || saveEvery > 1e6) {
    return Status::invalidInput("save_every out of range");
  }
  out->saveEvery = static_cast<int>(saveEvery);
  const double gpIters = v.getNumber("gp_max_iterations", 0.0);
  if (gpIters < 0 || gpIters > 1e6) {
    return Status::invalidInput("gp_max_iterations out of range");
  }
  out->gpMaxIterations = static_cast<int>(gpIters);
  out->runDetail = v.getBool("run_detail", true);
  if (const JsonValue* mb = v.find("mem_budget_mb")) {
    std::uint64_t u = 0;
    if (!toU64(*mb, &u) || u > 1'000'000) {
      return Status::invalidInput("mem_budget_mb out of range");
    }
    out->memBudgetMb = u;
  }
  if (const JsonValue* inj = v.find("inject")) {
    if (!inj->isArray()) return Status::invalidInput("inject must be a list");
    for (const JsonValue& e : inj->items()) {
      if (!e.isObject()) {
        return Status::invalidInput("inject entry must be an object");
      }
      InjectSpec is;
      is.site = e.getString("site");
      if (is.site.empty()) {
        return Status::invalidInput("inject entry needs a site");
      }
      if (!faultKindFromName(e.getString("kind", "nan"), &is.spec.kind)) {
        return Status::invalidInput(
            "inject kind must be nan|spike|trunc|error");
      }
      is.spec.atTick = static_cast<long>(e.getNumber("tick", 0.0));
      is.spec.count = static_cast<int>(e.getNumber("count", 1.0));
      if (const JsonValue* mag = e.find("magnitude")) {
        is.spec.magnitude = mag->asNumber();
      }
      out->injections.push_back(std::move(is));
    }
  }
  return Status::okStatus();
}

JsonValue jobSpecToJson(const JobSpec& spec) {
  JsonValue v = JsonValue::object();
  if (!spec.name.empty()) v.set("name", JsonValue::str(spec.name));
  if (!spec.auxPath.empty()) v.set("aux", JsonValue::str(spec.auxPath));
  if (spec.hasGen) {
    JsonValue gen = JsonValue::object();
    gen.set("cells", JsonValue::number(static_cast<double>(spec.gen.numCells)));
    gen.set("macros",
            JsonValue::number(static_cast<double>(spec.gen.numMovableMacros)));
    gen.set("seed", JsonValue::number(static_cast<double>(spec.gen.seed)));
    v.set("gen", std::move(gen));
  }
  v.set("priority", JsonValue::number(spec.priority));
  if (spec.deadlineSeconds > 0) {
    v.set("deadline", JsonValue::number(spec.deadlineSeconds));
  }
  v.set("threads", JsonValue::number(spec.threads));
  if (spec.saveEvery > 0) {
    v.set("save_every", JsonValue::number(spec.saveEvery));
  }
  if (spec.gpMaxIterations > 0) {
    v.set("gp_max_iterations", JsonValue::number(spec.gpMaxIterations));
  }
  if (!spec.runDetail) v.set("run_detail", JsonValue::boolean(false));
  if (spec.memBudgetMb > 0) {
    v.set("mem_budget_mb",
          JsonValue::number(static_cast<double>(spec.memBudgetMb)));
  }
  if (!spec.injections.empty()) {
    JsonValue arr = JsonValue::array();
    for (const InjectSpec& is : spec.injections) {
      JsonValue e = JsonValue::object();
      e.set("site", JsonValue::str(is.site));
      e.set("kind", JsonValue::str(faultKindName(is.spec.kind)));
      e.set("tick", JsonValue::number(static_cast<double>(is.spec.atTick)));
      e.set("count", JsonValue::number(is.spec.count));
      e.set("magnitude", JsonValue::number(is.spec.magnitude));
      arr.push(std::move(e));
    }
    v.set("inject", std::move(arr));
  }
  return v;
}

JsonValue outcomeToJson(const JobOutcome& out) {
  JsonValue v = JsonValue::object();
  v.set("id", JsonValue::number(static_cast<double>(out.id)));
  v.set("name", JsonValue::str(out.name));
  v.set("status", JsonValue::str(statusCodeName(out.status.code())));
  if (!out.status.ok()) {
    v.set("status_message", JsonValue::str(out.status.message()));
  }
  v.set("hpwl", JsonValue::number(out.finalHpwl));
  v.set("hpwl_bits", JsonValue::str(hexBits(out.hpwlBits)));
  v.set("legal", JsonValue::boolean(out.legal));
  v.set("wall_seconds", JsonValue::number(out.wallSeconds));
  v.set("queue_wait_seconds", JsonValue::number(out.queueWaitSeconds));
  v.set("retries", JsonValue::number(out.retries));
  v.set("recoveries", JsonValue::number(out.recoveries));
  v.set("resumed", JsonValue::boolean(out.resumed));
  if (out.peakBytes > 0) {
    v.set("peak_bytes", JsonValue::number(static_cast<double>(out.peakBytes)));
  }
  if (!out.record.isNull()) v.set("record", out.record);
  return v;
}

Status outcomeFromJson(const JsonValue& v, JobOutcome* out) {
  if (!v.isObject()) return Status::invalidInput("outcome must be an object");
  *out = JobOutcome{};
  const JsonValue* id = v.find("id");
  if (id == nullptr || !toU64(*id, &out->id)) {
    return Status::invalidInput("outcome.id missing or malformed");
  }
  out->name = v.getString("name");
  StatusCode code = StatusCode::kOk;
  if (!statusCodeFromName(v.getString("status", "Ok"), &code)) {
    return Status::invalidInput("outcome.status unknown");
  }
  out->status = code == StatusCode::kOk
                    ? Status::okStatus()
                    : Status(code, v.getString("status_message"));
  out->finalHpwl = v.getNumber("hpwl", 0.0);
  if (!parseHexBits(v.getString("hpwl_bits", "0x0"), &out->hpwlBits)) {
    return Status::invalidInput("outcome.hpwl_bits malformed");
  }
  out->legal = v.getBool("legal", false);
  out->wallSeconds = v.getNumber("wall_seconds", 0.0);
  out->queueWaitSeconds = v.getNumber("queue_wait_seconds", 0.0);
  out->retries = static_cast<int>(v.getNumber("retries", 0.0));
  out->recoveries = static_cast<int>(v.getNumber("recoveries", 0.0));
  out->resumed = v.getBool("resumed", false);
  if (const JsonValue* pb = v.find("peak_bytes")) {
    if (!toU64(*pb, &out->peakBytes)) {
      return Status::invalidInput("outcome.peak_bytes malformed");
    }
  }
  if (const JsonValue* rec = v.find("record")) {
    if (!rec->isObject()) {
      return Status::invalidInput("outcome.record must be an object");
    }
    out->record = *rec;
  }
  return Status::okStatus();
}

StatusOr<Request> parseRequestLine(std::string_view line,
                                   std::size_t maxBytes) {
  if (maxBytes > 0 && line.size() > maxBytes) {
    return Status::invalidInput("request line exceeds " +
                                std::to_string(maxBytes) + " bytes");
  }
  const StatusOr<JsonValue> parsed = parseJson(line);
  if (!parsed.ok()) return parsed.status();
  const JsonValue& v = *parsed;
  if (!v.isObject()) {
    return Status::invalidInput("request must be a JSON object");
  }
  Request req;
  const std::string op = v.getString("op");
  const bool needsId =
      op == "cancel" || op == "result" || op == "wait" || op == "watch";
  if (op == "ping") {
    req.op = Request::Op::kPing;
  } else if (op == "submit") {
    req.op = Request::Op::kSubmit;
  } else if (op == "cancel") {
    req.op = Request::Op::kCancel;
  } else if (op == "result") {
    req.op = Request::Op::kResult;
  } else if (op == "wait") {
    req.op = Request::Op::kWait;
  } else if (op == "watch") {
    req.op = Request::Op::kWatch;
  } else if (op == "stats") {
    req.op = Request::Op::kStats;
  } else if (op == "shutdown") {
    req.op = Request::Op::kShutdown;
  } else {
    return Status::invalidInput(op.empty() ? "request has no \"op\""
                                           : "unknown op \"" + op + "\"");
  }
  if (needsId) {
    const JsonValue* id = v.find("id");
    if (id == nullptr || !toU64(*id, &req.id)) {
      return Status::invalidInput("\"" + op +
                                  "\" needs a non-negative integer \"id\"");
    }
  }
  if (req.op == Request::Op::kWait) {
    req.timeoutSeconds = v.getNumber("timeout", 0.0);
    if (req.timeoutSeconds < 0) {
      return Status::invalidInput("wait timeout must be >= 0");
    }
  }
  if (req.op == Request::Op::kSubmit) {
    const JsonValue* job = v.find("job");
    if (job == nullptr) {
      return Status::invalidInput("submit needs a \"job\" object");
    }
    const Status s = jobSpecFromJson(*job, &req.job);
    if (!s.ok()) return s;
  }
  return req;
}

JsonValue okResponse() {
  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue::boolean(true));
  return v;
}

JsonValue errorResponse(const Status& s) {
  JsonValue v = JsonValue::object();
  v.set("ok", JsonValue::boolean(false));
  v.set("error", JsonValue::str(statusCodeName(s.code())));
  v.set("code", JsonValue::number(statusExitCode(s.code())));
  v.set("message", JsonValue::str(s.message()));
  return v;
}

Status statusFromResponse(const JsonValue& v) {
  if (!v.isObject()) {
    return Status::invalidInput("response is not a JSON object");
  }
  if (v.getBool("ok", false)) return Status::okStatus();
  StatusCode code = StatusCode::kInternal;
  if (!statusCodeFromName(v.getString("error"), &code)) {
    return Status::invalidInput("response carries no recognizable error: " +
                                writeJson(v));
  }
  return Status(code, v.getString("message"));
}

}  // namespace ep::serve
