#include "baseline/quadratic.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "eval/metrics.h"
#include "qp/b2b.h"
#include "qp/sparse.h"
#include "util/context.h"
#include "util/log.h"
#include "util/rng.h"
#include "wirelength/wl.h"

namespace ep {

namespace {

/// Per-band inverse-CDF remap of one axis. `pos` is the coordinate being
/// spread, `other` selects the band. Returns the spreading targets.
std::vector<double> spreadAxis(const PlacementDB& db,
                               const std::vector<std::int32_t>& movable,
                               const std::vector<double>& pos,
                               const std::vector<double>& other, bool axisX,
                               std::size_t bands, std::size_t bins) {
  const Rect& r = db.region;
  const double lo = axisX ? r.lx : r.ly;
  const double hi = axisX ? r.hx : r.hy;
  const double bandLo = axisX ? r.ly : r.lx;
  const double bandHi = axisX ? r.hy : r.hx;
  const double binW = (hi - lo) / static_cast<double>(bins);
  const double bandW = (bandHi - bandLo) / static_cast<double>(bands);

  // Free capacity per (band, bin): band area minus fixed overlap, scaled by
  // the target density. Fixed rects come from the view's SoA arrays.
  const PlacementView& pv = db.view();
  const auto fixedMask = pv.fixedMask();
  const auto vlx = pv.lx();
  const auto vly = pv.ly();
  const auto vw = pv.w();
  const auto vh = pv.h();
  std::vector<double> cap(bands * bins, 0.0);
  for (std::size_t b = 0; b < bands; ++b) {
    for (std::size_t i = 0; i < bins; ++i) {
      Rect cell;
      if (axisX) {
        cell = {lo + i * binW, bandLo + b * bandW, lo + (i + 1) * binW,
                bandLo + (b + 1) * bandW};
      } else {
        cell = {bandLo + b * bandW, lo + i * binW, bandLo + (b + 1) * bandW,
                lo + (i + 1) * binW};
      }
      double fixedArea = 0.0;
      for (std::size_t k = 0; k < pv.numObjects(); ++k) {
        if (fixedMask[k] == 0) continue;
        const Rect r{vlx[k], vly[k], vlx[k] + vw[k], vly[k] + vh[k]};
        fixedArea += r.overlapArea(cell);
      }
      cap[b * bins + i] =
          db.targetDensity * std::max(0.0, cell.area() - fixedArea);
    }
  }

  // Group movables into bands.
  std::vector<std::vector<std::size_t>> byBand(bands);
  for (std::size_t k = 0; k < movable.size(); ++k) {
    auto b = static_cast<std::size_t>((other[k] - bandLo) / bandW);
    b = std::min(b, bands - 1);
    byBand[b].push_back(k);
  }

  std::vector<double> target = pos;
  for (std::size_t b = 0; b < bands; ++b) {
    auto& cells = byBand[b];
    if (cells.empty()) continue;
    std::sort(cells.begin(), cells.end(),
              [&](std::size_t i, std::size_t j) { return pos[i] < pos[j]; });
    const auto objArea = pv.area();
    double areaTotal = 0.0;
    for (auto k : cells) {
      areaTotal += objArea[static_cast<std::size_t>(movable[k])];
    }
    double capTotal = 0.0;
    for (std::size_t i = 0; i < bins; ++i) capTotal += cap[b * bins + i];
    if (capTotal <= 0.0 || areaTotal <= 0.0) continue;

    // Walk the capacity CDF.
    std::size_t bin = 0;
    double capBefore = 0.0;
    double areaCum = 0.0;
    for (auto k : cells) {
      const double a = objArea[static_cast<std::size_t>(movable[k])];
      const double want = (areaCum + 0.5 * a) / areaTotal * capTotal;
      areaCum += a;
      while (bin + 1 < bins && capBefore + cap[b * bins + bin] < want) {
        capBefore += cap[b * bins + bin];
        ++bin;
      }
      const double inBin = cap[b * bins + bin] > 0.0
                               ? (want - capBefore) / cap[b * bins + bin]
                               : 0.5;
      target[k] = lo + (static_cast<double>(bin) +
                        std::clamp(inBin, 0.0, 1.0)) *
                           binW;
    }
  }
  return target;
}

}  // namespace

QuadraticPlaceResult quadraticPlace(PlacementDB& db,
                                    const QuadraticPlaceConfig& cfg,
                                    RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  QuadraticPlaceResult res;
  const auto& movable = db.movable();
  const auto n = static_cast<std::int32_t>(movable.size());
  if (n == 0) return res;

  // Stage boundary: refresh view positions so spreadAxis stamps current
  // fixed rects, and reuse the view's canonical movable remap.
  db.view().syncPositionsFromDb(db);
  const std::span<const std::int32_t> objToVar = db.view().objToMovable();
  const std::span<const double> objArea = db.view().area();

  // Seed like mIP: center with jitter.
  Rng rng(cfg.seed);
  const Point c = db.region.center();
  std::vector<double> x(static_cast<std::size_t>(n)),
      y(static_cast<std::size_t>(n));
  for (std::int32_t v = 0; v < n; ++v) {
    x[static_cast<std::size_t>(v)] =
        c.x + rng.uniform(-1e-3, 1e-3) * db.region.width();
    y[static_cast<std::size_t>(v)] =
        c.y + rng.uniform(-1e-3, 1e-3) * db.region.height();
  }

  std::vector<double> tx, ty;  // anchors (empty in the first iteration)
  double anchorW = cfg.anchorWeight0;

  auto writeBack = [&] {
    for (std::int32_t v = 0; v < n; ++v) {
      auto& o = db.objects[static_cast<std::size_t>(
          movable[static_cast<std::size_t>(v)])];
      const double cx = std::clamp(x[static_cast<std::size_t>(v)],
                                   db.region.lx + o.w * 0.5,
                                   std::max(db.region.lx + o.w * 0.5,
                                            db.region.hx - o.w * 0.5));
      const double cy = std::clamp(y[static_cast<std::size_t>(v)],
                                   db.region.ly + o.h * 0.5,
                                   std::max(db.region.ly + o.h * 0.5,
                                            db.region.hy - o.h * 0.5));
      o.setCenter(cx, cy);
    }
  };

  for (int iter = 0; iter < cfg.maxIterations; ++iter) {
    res.iterations = iter + 1;
    for (Axis axis : {Axis::kX, Axis::kY}) {
      auto& pos = axis == Axis::kX ? x : y;
      auto& anchors = axis == Axis::kX ? tx : ty;
      CooBuilder builder(n);
      std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);
      buildB2B(db, axis, objToVar, pos, builder, rhs);
      if (!anchors.empty()) {
        for (std::int32_t v = 0; v < n; ++v) {
          // Anchor strength scales with cell area so macros spread too.
          const double w =
              anchorW *
              std::max(1.0, objArea[static_cast<std::size_t>(
                                movable[static_cast<std::size_t>(v)])]);
          builder.addDiag(v, w);
          rhs[static_cast<std::size_t>(v)] +=
              w * anchors[static_cast<std::size_t>(v)];
        }
      } else {
        // Weak center anchor keeps the first solve non-singular even when a
        // connected component lacks fixed pins.
        for (std::int32_t v = 0; v < n; ++v) {
          builder.addDiag(v, 1e-6);
          rhs[static_cast<std::size_t>(v)] +=
              1e-6 * (axis == Axis::kX ? c.x : c.y);
        }
      }
      const Csr A = builder.build();
      cgSolve(A, rhs, pos, cfg.cgMaxIterations, 1e-6);
    }
    writeBack();

    const auto rep = densityOverflow(db);
    res.finalOverflow = rep.overflow;
    if (rep.overflow <= cfg.targetOverflow) break;

    tx = spreadAxis(db, movable, x, y, true, cfg.bandsX, cfg.binsPerBand);
    ty = spreadAxis(db, movable, y, x, false, cfg.bandsY, cfg.binsPerBand);
    for (std::size_t k = 0; k < tx.size(); ++k) {
      tx[k] = x[k] + cfg.spreadDamping * (tx[k] - x[k]);
      ty[k] = y[k] + cfg.spreadDamping * (ty[k] - y[k]);
    }
    anchorW *= cfg.anchorGrowth;
  }

  writeBack();
  res.hpwl = hpwl(db);
  rc.log().info("quadraticPlace: %d iters, overflow %.3f, HPWL %.4g",
                res.iterations, res.finalOverflow, res.hpwl);
  return res;
}

}  // namespace ep
