#include "baseline/fm.h"

#include <algorithm>
#include <cassert>
#include <set>

#include "util/rng.h"

namespace ep {

int cutSize(const FmProblem& p, std::span<const std::int8_t> side) {
  int cut = 0;
  for (const auto& net : p.nets) {
    bool has0 = false, has1 = false;
    for (auto v : net) {
      (side[static_cast<std::size_t>(v)] == 0 ? has0 : has1) = true;
    }
    cut += (has0 && has1) ? 1 : 0;
  }
  return cut;
}

FmResult fmPartition(const FmProblem& p, std::uint64_t seed, int maxPasses) {
  const std::size_t n = p.areas.size();
  FmResult res;
  res.side.assign(n, 0);

  double totalArea = 0.0;
  for (double a : p.areas) totalArea += a;
  const double targetA0 = p.targetFraction * totalArea;
  const double tolArea = p.tolerance * totalArea;

  // Vertex -> incident nets (CSR).
  std::vector<std::int32_t> vnStart(n + 1, 0);
  for (const auto& net : p.nets) {
    for (auto v : net) ++vnStart[static_cast<std::size_t>(v) + 1];
  }
  for (std::size_t i = 1; i <= n; ++i) vnStart[i] += vnStart[i - 1];
  std::vector<std::int32_t> vnIds(static_cast<std::size_t>(vnStart[n]));
  {
    auto cursor = vnStart;
    for (std::size_t e = 0; e < p.nets.size(); ++e) {
      for (auto v : p.nets[e]) {
        vnIds[static_cast<std::size_t>(cursor[static_cast<std::size_t>(v)]++)] =
            static_cast<std::int32_t>(e);
      }
    }
  }

  const bool hasLocks = !p.locked.empty();
  auto isLocked = [&](std::size_t v) {
    return hasLocks && p.locked[v] >= 0;
  };

  // Deterministic balanced seed: locked vertices as given; free vertices
  // shuffled then greedily assigned to the side with the larger deficit.
  Rng rng(seed);
  double a0 = 0.0;
  std::vector<std::int32_t> freeVerts;
  for (std::size_t v = 0; v < n; ++v) {
    if (isLocked(v)) {
      res.side[v] = p.locked[v];
      if (res.side[v] == 0) a0 += p.areas[v];
    } else {
      freeVerts.push_back(static_cast<std::int32_t>(v));
    }
  }
  rng.shuffle(freeVerts);
  for (auto vi : freeVerts) {
    const auto v = static_cast<std::size_t>(vi);
    const double deficit0 = targetA0 - a0;
    const double deficit1 = (totalArea - targetA0) - /* a1 */ 0.0;
    (void)deficit1;
    if (deficit0 > 0.0) {
      res.side[v] = 0;
      a0 += p.areas[v];
    } else {
      res.side[v] = 1;
    }
  }
  res.initialCut = cutSize(p, res.side);

  // Per-net side counts.
  std::vector<std::int32_t> cnt0(p.nets.size()), cnt1(p.nets.size());
  auto recount = [&] {
    std::fill(cnt0.begin(), cnt0.end(), 0);
    std::fill(cnt1.begin(), cnt1.end(), 0);
    for (std::size_t e = 0; e < p.nets.size(); ++e) {
      for (auto v : p.nets[e]) {
        (res.side[static_cast<std::size_t>(v)] == 0 ? cnt0[e] : cnt1[e])++;
      }
    }
  };

  std::vector<int> gain(n, 0);
  std::vector<char> unlocked(n, 0);
  // Ordered candidate set: (-gain, vertex) so begin() is the best gain.
  std::set<std::pair<int, std::int32_t>> bucket;

  auto computeGain = [&](std::size_t v) {
    int g = 0;
    const auto from = res.side[v];
    for (auto k = vnStart[v]; k < vnStart[v + 1]; ++k) {
      const auto e = static_cast<std::size_t>(vnIds[static_cast<std::size_t>(k)]);
      const int cf = from == 0 ? cnt0[e] : cnt1[e];
      const int ct = from == 0 ? cnt1[e] : cnt0[e];
      if (cf == 1) ++g;
      if (ct == 0) --g;
    }
    return g;
  };

  auto bucketUpdate = [&](std::size_t v, int newGain) {
    if (!unlocked[v]) return;
    bucket.erase({-gain[v], static_cast<std::int32_t>(v)});
    gain[v] = newGain;
    bucket.insert({-newGain, static_cast<std::int32_t>(v)});
  };

  int curCut = res.initialCut;
  for (int pass = 0; pass < maxPasses; ++pass) {
    ++res.passes;
    recount();
    bucket.clear();
    for (std::size_t v = 0; v < n; ++v) {
      unlocked[v] = isLocked(v) ? 0 : 1;
      if (unlocked[v]) {
        gain[v] = computeGain(v);
        bucket.insert({-gain[v], static_cast<std::int32_t>(v)});
      }
    }

    std::vector<std::int32_t> moveOrder;
    std::vector<int> cutAfterMove;
    int runningCut = curCut;
    int bestCut = curCut;
    std::size_t bestPrefix = 0;

    while (!bucket.empty()) {
      // Best-gain vertex whose move keeps balance.
      auto it = bucket.begin();
      std::size_t chosen = n;
      for (; it != bucket.end(); ++it) {
        const auto v = static_cast<std::size_t>(it->second);
        const double newA0 =
            res.side[v] == 0 ? a0 - p.areas[v] : a0 + p.areas[v];
        if (std::abs(newA0 - targetA0) <= tolArea) {
          chosen = v;
          break;
        }
      }
      if (chosen == n) break;

      const int g = gain[chosen];
      bucket.erase(it);
      unlocked[chosen] = 0;

      const auto from = res.side[chosen];
      const auto to = static_cast<std::int8_t>(1 - from);

      // Textbook FM incremental gain updates on critical nets.
      for (auto k = vnStart[chosen]; k < vnStart[chosen + 1]; ++k) {
        const auto e =
            static_cast<std::size_t>(vnIds[static_cast<std::size_t>(k)]);
        auto& cf = from == 0 ? cnt0[e] : cnt1[e];
        auto& ct = from == 0 ? cnt1[e] : cnt0[e];
        if (ct == 0) {
          for (auto u : p.nets[e]) {
            const auto uu = static_cast<std::size_t>(u);
            if (unlocked[uu]) bucketUpdate(uu, gain[uu] + 1);
          }
        } else if (ct == 1) {
          for (auto u : p.nets[e]) {
            const auto uu = static_cast<std::size_t>(u);
            if (unlocked[uu] && res.side[uu] == to) {
              bucketUpdate(uu, gain[uu] - 1);
            }
          }
        }
        --cf;
        ++ct;
        if (cf == 0) {
          for (auto u : p.nets[e]) {
            const auto uu = static_cast<std::size_t>(u);
            if (unlocked[uu]) bucketUpdate(uu, gain[uu] - 1);
          }
        } else if (cf == 1) {
          for (auto u : p.nets[e]) {
            const auto uu = static_cast<std::size_t>(u);
            if (unlocked[uu] && res.side[uu] == from) {
              bucketUpdate(uu, gain[uu] + 1);
            }
          }
        }
      }

      res.side[chosen] = to;
      a0 += (to == 0) ? p.areas[chosen] : -p.areas[chosen];
      runningCut -= g;
      moveOrder.push_back(static_cast<std::int32_t>(chosen));
      cutAfterMove.push_back(runningCut);
      if (runningCut < bestCut) {
        bestCut = runningCut;
        bestPrefix = moveOrder.size();
      }
    }

    // Roll back the moves past the best prefix.
    for (std::size_t k = moveOrder.size(); k-- > bestPrefix;) {
      const auto v = static_cast<std::size_t>(moveOrder[k]);
      const auto cur = res.side[v];
      res.side[v] = static_cast<std::int8_t>(1 - cur);
      a0 += (res.side[v] == 0) ? p.areas[v] : -p.areas[v];
    }

    if (bestCut >= curCut) {
      curCut = bestCut;
      break;  // no improvement this pass
    }
    curCut = bestCut;
  }

  res.finalCut = cutSize(p, res.side);
  assert(res.finalCut == curCut);
  return res;
}

}  // namespace ep
