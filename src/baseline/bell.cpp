#include "baseline/bell.h"

#include <algorithm>
#include <cmath>

#include "density/bingrid.h"
#include "eval/metrics.h"
#include "opt/cg.h"
#include "opt/nesterov.h"
#include "util/context.h"
#include "util/log.h"
#include "util/timer.h"
#include "util/rng.h"
#include "util/stats.h"
#include "wirelength/wl.h"

namespace ep {

namespace {

/// Naylor bell kernel on normalized distance and its derivative w.r.t. d.
double bell(double d, double r) {
  const double ad = std::abs(d);
  if (ad <= r * 0.5) return 1.0 - 2.0 * ad * ad / (r * r);
  if (ad <= r) {
    const double t = ad - r;
    return 2.0 * t * t / (r * r);
  }
  return 0.0;
}
double bellDeriv(double d, double r) {
  const double s = d < 0.0 ? -1.0 : 1.0;
  const double ad = std::abs(d);
  if (ad <= r * 0.5) return s * (-4.0 * ad / (r * r));
  if (ad <= r) return s * (4.0 * (ad - r) / (r * r));
  return 0.0;
}

struct BellEngine {
  const PlacementDB& db;
  const std::vector<std::int32_t>& movable;
  // Geometry comes from the shared SoA view: dims/areas are contiguous
  // reads instead of strided Object loads.
  std::span<const double> objW, objH, objArea;
  BinGrid grid;
  std::vector<double> targetArea;  // T_b
  std::vector<double> density;     // D_b
  std::vector<double> normC;       // per-object normalization
  std::vector<std::int32_t> objToVar;
  double gammaX, gammaY;
  double mu = 0.0;
  std::vector<double> gxW, gyW;

  BellEngine(const PlacementDB& dbIn, std::size_t nx, std::size_t ny,
             double gammaFactor)
      : db(dbIn),
        movable(dbIn.movable()),
        objW(dbIn.view().w()),
        objH(dbIn.view().h()),
        objArea(dbIn.view().area()),
        grid(dbIn.region, nx, ny) {
    const PlacementView& pv = db.view();
    const auto fixedMask = pv.fixedMask();
    const auto lx = pv.lx();
    const auto ly = pv.ly();
    targetArea.assign(grid.numBins(), 0.0);
    std::vector<double> fixedArea(grid.numBins(), 0.0);
    for (std::size_t i = 0; i < pv.numObjects(); ++i) {
      if (fixedMask[i] == 0) continue;
      const Rect r{lx[i], ly[i], lx[i] + objW[i], ly[i] + objH[i]};
      grid.stamp(r, objArea[i], fixedArea);
    }
    // Equality target: movable area distributed uniformly over free space.
    double freeTotal = 0.0;
    for (std::size_t b = 0; b < fixedArea.size(); ++b) {
      freeTotal += std::max(0.0, grid.binArea() - fixedArea[b]);
    }
    const double movTotal = db.totalMovableArea();
    for (std::size_t b = 0; b < fixedArea.size(); ++b) {
      const double free = std::max(0.0, grid.binArea() - fixedArea[b]);
      targetArea[b] = freeTotal > 0.0 ? movTotal * free / freeTotal : 0.0;
    }
    density.assign(grid.numBins(), 0.0);
    normC.assign(movable.size(), 0.0);
    objToVar.assign(db.objects.size(), -1);
    for (std::size_t v = 0; v < movable.size(); ++v) {
      objToVar[static_cast<std::size_t>(movable[v])] =
          static_cast<std::int32_t>(v);
    }
    gammaX = gammaFactor * grid.dx();
    gammaY = gammaFactor * grid.dy();
    gxW.resize(movable.size());
    gyW.resize(movable.size());
  }

  /// radius of influence per axis for an object.
  void radii(std::int32_t obj, double& rx, double& ry) const {
    rx = objW[static_cast<std::size_t>(obj)] * 0.5 + 2.0 * grid.dx();
    ry = objH[static_cast<std::size_t>(obj)] * 0.5 + 2.0 * grid.dy();
  }

  template <typename Fn>
  void forBins(double cx, double cy, double rx, double ry, Fn&& fn) const {
    const Rect& reg = grid.region();
    const std::size_t x0 = grid.binX(cx - rx), x1 = grid.binX(cx + rx);
    const std::size_t y0 = grid.binY(cy - ry), y1 = grid.binY(cy + ry);
    for (std::size_t iy = y0; iy <= y1; ++iy) {
      const double by = reg.ly + (static_cast<double>(iy) + 0.5) * grid.dy();
      for (std::size_t ix = x0; ix <= x1; ++ix) {
        const double bx =
            reg.lx + (static_cast<double>(ix) + 0.5) * grid.dx();
        fn(iy * grid.nx() + ix, cx - bx, cy - by);
      }
    }
  }

  double evalGrad(std::span<const double> v, std::span<double> grad) {
    const std::size_t n = movable.size();
    const auto x = v.subspan(0, n);
    const auto y = v.subspan(n, n);

    // Pass 1: stamp bell density and per-object normalization.
    std::fill(density.begin(), density.end(), 0.0);
    for (std::size_t i = 0; i < n; ++i) {
      double rx, ry;
      radii(movable[i], rx, ry);
      double sum = 0.0;
      forBins(x[i], y[i], rx, ry, [&](std::size_t, double dx, double dy) {
        sum += bell(dx, rx) * bell(dy, ry);
      });
      normC[i] = sum > 0.0
                     ? objArea[static_cast<std::size_t>(movable[i])] / sum
                     : 0.0;
      forBins(x[i], y[i], rx, ry, [&](std::size_t b, double dx, double dy) {
        density[b] += normC[i] * bell(dx, rx) * bell(dy, ry);
      });
    }
    double penalty = 0.0;
    for (std::size_t b = 0; b < density.size(); ++b) {
      const double d = density[b] - targetArea[b];
      penalty += d * d;
    }

    // Wirelength (LSE) and gradient.
    const VarView view{&db, objToVar, x, y};
    const double wl = lseWirelengthGrad(view, gammaX, gammaY, gxW, gyW);

    // Pass 2: density gradient.
    for (std::size_t i = 0; i < n; ++i) {
      double rx, ry;
      radii(movable[i], rx, ry);
      double gx = 0.0, gy = 0.0;
      forBins(x[i], y[i], rx, ry, [&](std::size_t b, double dx, double dy) {
        const double resid = 2.0 * (density[b] - targetArea[b]) * normC[i];
        gx += resid * bellDeriv(dx, rx) * bell(dy, ry);
        gy += resid * bell(dx, rx) * bellDeriv(dy, ry);
      });
      grad[i] = gxW[i] + mu * gx;
      grad[n + i] = gyW[i] + mu * gy;
    }
    return wl + mu * penalty;
  }
};

}  // namespace

BellPlaceResult bellPlace(PlacementDB& db, const BellPlaceConfig& cfg,
                          RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  BellPlaceResult res;
  const auto& movable = db.movable();
  const std::size_t n = movable.size();
  if (n == 0) return res;

  const std::size_t m = BinGrid::chooseResolution(n);
  // Baseline entry point is a stage boundary: refresh the view's position
  // arrays so the fixed-object stamp below reads current coordinates.
  db.view().syncPositionsFromDb(db);
  BellEngine eng(db, cfg.gridNx ? cfg.gridNx : m, cfg.gridNy ? cfg.gridNy : m,
                 cfg.gammaFactor);

  // Start: center with jitter (same convention as the other engines).
  Rng rng(cfg.seed);
  const Point c = db.region.center();
  std::vector<double> v(2 * n);
  for (std::size_t i = 0; i < n; ++i) {
    v[i] = c.x + rng.uniform(-1e-2, 1e-2) * db.region.width();
    v[n + i] = c.y + rng.uniform(-1e-2, 1e-2) * db.region.height();
  }

  // Projection: clamp centers into the region.
  std::vector<double> loX(n), hiX(n), loY(n), hiY(n);
  for (std::size_t i = 0; i < n; ++i) {
    const double ow = eng.objW[static_cast<std::size_t>(movable[i])];
    const double oh = eng.objH[static_cast<std::size_t>(movable[i])];
    loX[i] = db.region.lx + ow * 0.5;
    hiX[i] = std::max(loX[i], db.region.hx - ow * 0.5);
    loY[i] = db.region.ly + oh * 0.5;
    hiY[i] = std::max(loY[i], db.region.hy - oh * 0.5);
  }
  auto project = [&](std::span<double> vv) {
    for (std::size_t i = 0; i < n; ++i) {
      vv[i] = std::clamp(vv[i], loX[i], hiX[i]);
      vv[n + i] = std::clamp(vv[n + i], loY[i], hiY[i]);
    }
  };

  // mu normalization from the gradient ratio at the start.
  {
    std::vector<double> g(2 * n);
    eng.mu = 0.0;
    eng.evalGrad(v, g);
    // g currently holds only the wirelength part (mu = 0); evaluate the
    // density part separately via a unit-mu call with zeroed wirelength by
    // differencing.
    std::vector<double> g1(2 * n);
    eng.mu = 1.0;
    eng.evalGrad(v, g1);
    double wlNorm = norm1(g);
    double dNorm = 0.0;
    for (std::size_t i = 0; i < 2 * n; ++i) dNorm += std::abs(g1[i] - g[i]);
    eng.mu = dNorm > 0.0 ? wlNorm / dNorm : 1.0;
  }

  auto writeBack = [&](std::span<const double> sol) {
    for (std::size_t i = 0; i < n; ++i) {
      db.objects[static_cast<std::size_t>(movable[i])].setCenter(sol[i],
                                                                 sol[n + i]);
    }
  };

  auto evalFn = [&eng](std::span<const double> vv, std::span<double> g) {
    return eng.evalGrad(vv, g);
  };

  if (cfg.useNesterov) {
    NesterovConfig ncfg;
    ncfg.bootstrapMove = 0.1 * eng.grid.dx();
    NesterovOptimizer opt(2 * n, evalFn, ncfg, project, &rc.pool());
    Timer total;
    opt.initialize(v);
    for (int outer = 0; outer < cfg.maxOuterIterations; ++outer) {
      res.outerIterations = outer + 1;
      for (int k = 0; k < cfg.cgIterationsPerOuter; ++k) opt.step();
      writeBack(opt.solution());
      const auto rep = densityOverflow(db);
      res.finalOverflow = rep.overflow;
      if (rep.overflow <= cfg.targetOverflow) break;
      eng.mu *= cfg.penaltyGrowth;
    }
    writeBack(opt.solution());
    res.hpwl = hpwl(db);
    res.gradEvals = opt.evalCount();
    res.lineSearchSeconds = 0.0;  // no line search in Nesterov mode
    res.optimizerSeconds = total.seconds();
    rc.log().info("bellPlace[nesterov]: %d outers, overflow %.3f, HPWL %.4g",
                  res.outerIterations, res.finalOverflow, res.hpwl);
    return res;
  }

  CgConfig cgCfg;
  cgCfg.initialStep = 0.1 * db.region.width();
  CgOptimizer opt(2 * n, evalFn, cgCfg, project);
  opt.initialize(v);

  for (int outer = 0; outer < cfg.maxOuterIterations; ++outer) {
    res.outerIterations = outer + 1;
    for (int k = 0; k < cfg.cgIterationsPerOuter; ++k) opt.step();
    writeBack(opt.solution());
    const auto rep = densityOverflow(db);
    res.finalOverflow = rep.overflow;
    if (rep.overflow <= cfg.targetOverflow) break;
    eng.mu *= cfg.penaltyGrowth;
  }

  writeBack(opt.solution());
  res.hpwl = hpwl(db);
  res.gradEvals = opt.evalCount();
  res.lineSearchSeconds = opt.lineSearchSeconds();
  res.optimizerSeconds = opt.totalSeconds();
  rc.log().info("bellPlace: %d outers, overflow %.3f, HPWL %.4g, %ld evals",
                res.outerIterations, res.finalOverflow, res.hpwl,
                res.gradEvals);
  return res;
}

}  // namespace ep
