// Bell-shape nonlinear placer — the APlace/NTUplace3-category baseline.
// Log-sum-exp wirelength plus the classic bell-shaped (Naylor) density
// penalty sum_b (D_b - T_b)^2, minimized by conjugate gradient with Armijo
// line search (the optimizer whose line-search cost Sec. V-A measures at
// >60% of runtime). Flat netlist — the clustering of the original tools is
// out of scope and only accelerates them, it does not change the comparison
// direction.
#pragma once

#include <cstdint>

#include "model/netlist.h"

namespace ep {

class RuntimeContext;

struct BellPlaceConfig {
  int maxOuterIterations = 12;
  int cgIterationsPerOuter = 60;
  double penaltyGrowth = 2.0;
  double targetOverflow = 0.10;
  std::size_t gridNx = 0;  ///< 0 = auto
  std::size_t gridNy = 0;
  double gammaFactor = 1.0;  ///< LSE gamma = factor * bin dimension
  /// Swap the optimizer under the *same* cost function: false = CG with
  /// Armijo line search (the prior-art configuration), true = Nesterov with
  /// Lipschitz steplength. Isolates the paper's optimizer contribution from
  /// its density-model contribution (see bench_ablation_optimizer).
  bool useNesterov = false;
  std::uint64_t seed = 17;
};

struct BellPlaceResult {
  int outerIterations = 0;
  double finalOverflow = 0.0;
  double hpwl = 0.0;
  long gradEvals = 0;
  double lineSearchSeconds = 0.0;  ///< Sec. V-A experiment
  double optimizerSeconds = 0.0;
};

/// Globally places all movables of `db` (cells and macros alike).
BellPlaceResult bellPlace(PlacementDB& db, const BellPlaceConfig& cfg = {},
                          RuntimeContext* ctx = nullptr);

}  // namespace ep
