// Recursive min-cut bisection placer (the Capo-category baseline of the
// paper's tables). Splits the region along its longer axis with
// area-proportional FM bipartitioning and terminal propagation, recursing
// until a few cells remain per region; leaves are placed at their region
// centers. Produces a *global* placement — the bench harness runs the same
// legalization/detail finish on every placer for fair table rows.
#pragma once

#include <cstdint>

#include "model/netlist.h"

namespace ep {

class RuntimeContext;

struct MinCutConfig {
  std::size_t leafCells = 8;     ///< stop recursion at this many objects
  double balanceTolerance = 0.15;
  int fmPasses = 6;
  std::uint64_t seed = 31;
};

struct MinCutResult {
  int partitions = 0;  ///< FM invocations
  int maxDepth = 0;
  double hpwl = 0.0;   ///< after placement
};

/// Places all movable objects of `db` (cells and macros alike). Overlap is
/// expected at leaf granularity; legalize afterwards.
MinCutResult minCutPlace(PlacementDB& db, const MinCutConfig& cfg = {},
                         RuntimeContext* ctx = nullptr);

}  // namespace ep
