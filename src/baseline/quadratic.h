// Quadratic placer with iterative spreading — the FastPlace/ComPLx-category
// baseline of the paper's tables. Alternates:
//   1. B2B quadratic wirelength solve with anchor pseudo-springs toward the
//      previous spreading targets (weight grows each iteration),
//   2. 1-D area-equalization spreading per axis (inverse-CDF remapping of
//      cell coordinates against the free-capacity profile, computed in
//      bands along the other axis).
// Stops when the density overflow reaches the target or the iteration cap.
#pragma once

#include <cstdint>

#include "model/netlist.h"

namespace ep {

class RuntimeContext;

struct QuadraticPlaceConfig {
  int maxIterations = 30;
  double targetOverflow = 0.10;
  double anchorWeight0 = 0.01;  ///< initial pseudo-spring weight
  double anchorGrowth = 1.2;
  /// Fraction of the inverse-CDF displacement applied per iteration
  /// (FastPlace-style damped cell shifting; 1.0 = jump to the target).
  double spreadDamping = 0.6;
  std::size_t bandsX = 16;      ///< spreading bands along y when moving x
  std::size_t bandsY = 16;
  std::size_t binsPerBand = 32;
  int cgMaxIterations = 200;
  std::uint64_t seed = 5;
};

struct QuadraticPlaceResult {
  int iterations = 0;
  double finalOverflow = 0.0;
  double hpwl = 0.0;
};

/// Globally places all movables of `db` (cells and macros alike).
QuadraticPlaceResult quadraticPlace(PlacementDB& db,
                                    const QuadraticPlaceConfig& cfg = {},
                                    RuntimeContext* ctx = nullptr);

}  // namespace ep
