// Fiduccia–Mattheyses hypergraph bipartitioning with gain buckets — the
// engine of the min-cut baseline placer (the Capo-category representative in
// Tables I-III). Standalone and unit-tested: vertices carry areas, nets are
// hyperedges, balance is enforced against a target left-side fraction, and
// vertices may be pre-locked to a side (terminal propagation).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ep {

struct FmProblem {
  /// Vertex areas; vertex count = weights.size().
  std::vector<double> areas;
  /// Hyperedges as vertex-id lists (ids < areas.size()).
  std::vector<std::vector<std::int32_t>> nets;
  /// Desired fraction of total area on side 0.
  double targetFraction = 0.5;
  /// Allowed deviation of the side-0 area fraction from the target.
  double tolerance = 0.1;
  /// Optional: -1 free, 0/1 locked to that side. Empty = all free.
  std::vector<std::int8_t> locked;
};

struct FmResult {
  std::vector<std::int8_t> side;  ///< 0/1 per vertex
  int initialCut = 0;
  int finalCut = 0;
  int passes = 0;
};

/// Runs FM from a deterministic balanced seed (or the provided sides for
/// pre-locked vertices). Complexity O(passes * pins).
FmResult fmPartition(const FmProblem& problem, std::uint64_t seed = 1,
                     int maxPasses = 8);

/// Cut size (number of nets spanning both sides) of a given assignment.
int cutSize(const FmProblem& problem, std::span<const std::int8_t> side);

}  // namespace ep
