#include "baseline/mincut.h"

#include <algorithm>
#include <cmath>
#include <deque>

#include "baseline/fm.h"
#include "util/context.h"
#include "util/log.h"
#include "util/rng.h"
#include "wirelength/wl.h"

namespace ep {

namespace {

double freeCapacity(const PlacementDB& db, const Rect& r) {
  const PlacementView& pv = db.view();
  const auto fixedMask = pv.fixedMask();
  const auto lx = pv.lx();
  const auto ly = pv.ly();
  const auto w = pv.w();
  const auto h = pv.h();
  double fixedArea = 0.0;
  for (std::size_t i = 0; i < pv.numObjects(); ++i) {
    if (fixedMask[i] == 0) continue;
    const Rect o{lx[i], ly[i], lx[i] + w[i], ly[i] + h[i]};
    fixedArea += o.overlapArea(r);
  }
  return std::max(0.0, r.area() - fixedArea);
}

}  // namespace

MinCutResult minCutPlace(PlacementDB& db, const MinCutConfig& cfg,
                         RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  MinCutResult res;
  Rng rng(cfg.seed);

  // Stage boundary: refresh the view so freeCapacity() stamps current
  // fixed rects; topology spans below (CSRs, areas) are finalize()-stable.
  const PlacementView& pv = db.view();
  db.view().syncPositionsFromDb(db);
  const auto objArea = pv.area();
  const auto netPinStart = pv.netPinStart();
  const auto pinObj = pv.pinObj();
  const auto pinOx = pv.pinOx();
  const auto pinOy = pv.pinOy();

  struct Task {
    Rect region;
    std::vector<std::int32_t> objs;
    int depth;
  };
  std::deque<Task> queue;
  queue.push_back({db.region, db.movable(), 0});

  // Net-visited stamp to deduplicate nets per task.
  std::vector<std::int32_t> netStamp(db.nets.size(), -1);
  std::int32_t stamp = 0;

  while (!queue.empty()) {
    Task task = std::move(queue.front());
    queue.pop_front();
    res.maxDepth = std::max(res.maxDepth, task.depth);

    if (task.objs.size() <= cfg.leafCells || task.region.width() < 2.0 ||
        task.region.height() < 2.0) {
      // Leaf: spread objects on a small grid inside the region.
      const auto cols = static_cast<std::size_t>(
          std::ceil(std::sqrt(static_cast<double>(task.objs.size()))));
      for (std::size_t k = 0; k < task.objs.size(); ++k) {
        auto& o = db.objects[static_cast<std::size_t>(task.objs[k])];
        const std::size_t cx = k % cols, cy = k / cols;
        const double fx = (static_cast<double>(cx) + 0.5) /
                          static_cast<double>(cols);
        const double fy = (static_cast<double>(cy) + 0.5) /
                          static_cast<double>((task.objs.size() + cols - 1) / cols);
        const double px = task.region.lx + fx * task.region.width();
        const double py = task.region.ly + fy * task.region.height();
        o.setCenter(std::clamp(px, db.region.lx + o.w * 0.5,
                               db.region.hx - o.w * 0.5),
                    std::clamp(py, db.region.ly + o.h * 0.5,
                               db.region.hy - o.h * 0.5));
      }
      continue;
    }

    // Split the longer axis at the midpoint.
    const bool splitX = task.region.width() >= task.region.height();
    Rect a = task.region, b = task.region;
    double cut;
    if (splitX) {
      cut = task.region.center().x;
      a.hx = cut;
      b.lx = cut;
    } else {
      cut = task.region.center().y;
      a.hy = cut;
      b.ly = cut;
    }

    // FM problem with a virtual locked terminal per side for propagation.
    FmProblem fm;
    const std::size_t nLocal = task.objs.size();
    fm.areas.resize(nLocal + 2);
    // Local id lookup via a dense map over db objects, reused across tasks.
    static thread_local std::vector<std::int32_t> lookup;
    lookup.assign(db.objects.size(), -1);
    for (std::size_t k = 0; k < nLocal; ++k) {
      lookup[static_cast<std::size_t>(task.objs[k])] =
          static_cast<std::int32_t>(k);
      fm.areas[k] = objArea[static_cast<std::size_t>(task.objs[k])];
    }
    const auto term0 = static_cast<std::int32_t>(nLocal);
    const auto term1 = static_cast<std::int32_t>(nLocal + 1);
    fm.areas[static_cast<std::size_t>(term0)] = 0.0;
    fm.areas[static_cast<std::size_t>(term1)] = 0.0;
    fm.locked.assign(nLocal + 2, -1);
    fm.locked[static_cast<std::size_t>(term0)] = 0;
    fm.locked[static_cast<std::size_t>(term1)] = 1;

    ++stamp;
    for (auto objId : task.objs) {
      for (auto netId : db.netsOf(objId)) {
        if (netStamp[static_cast<std::size_t>(netId)] == stamp) continue;
        netStamp[static_cast<std::size_t>(netId)] = stamp;
        std::vector<std::int32_t> verts;
        double extCoordSum = 0.0;
        int extCount = 0;
        const auto p0 = static_cast<std::size_t>(
            netPinStart[static_cast<std::size_t>(netId)]);
        const auto p1 = static_cast<std::size_t>(
            netPinStart[static_cast<std::size_t>(netId) + 1]);
        for (std::size_t pid = p0; pid < p1; ++pid) {
          const auto obj = pinObj[pid];
          const auto local = lookup[static_cast<std::size_t>(obj)];
          if (local >= 0) {
            if (std::find(verts.begin(), verts.end(), local) == verts.end()) {
              verts.push_back(local);
            }
          } else {
            // External pin: live object center + the view's pin offset
            // (bit-identical to db.pinPos on the AoS pin).
            const Point c =
                db.objects[static_cast<std::size_t>(obj)].center();
            extCoordSum += splitX ? c.x + pinOx[pid] : c.y + pinOy[pid];
            ++extCount;
          }
        }
        if (verts.empty()) continue;
        if (extCount > 0) {
          const double mean = extCoordSum / extCount;
          verts.push_back(mean < cut ? term0 : term1);
        }
        if (verts.size() >= 2) fm.nets.push_back(std::move(verts));
      }
    }

    fm.targetFraction =
        freeCapacity(db, a) /
        std::max(1e-9, freeCapacity(db, a) + freeCapacity(db, b));
    fm.tolerance = cfg.balanceTolerance;

    const FmResult part = fmPartition(fm, rng.next(), cfg.fmPasses);
    ++res.partitions;

    Task ta{a, {}, task.depth + 1}, tb{b, {}, task.depth + 1};
    for (std::size_t k = 0; k < nLocal; ++k) {
      auto& o = db.objects[static_cast<std::size_t>(task.objs[k])];
      if (part.side[k] == 0) {
        ta.objs.push_back(task.objs[k]);
        o.setCenter(a.center().x, a.center().y);
      } else {
        tb.objs.push_back(task.objs[k]);
        o.setCenter(b.center().x, b.center().y);
      }
    }
    if (!ta.objs.empty()) queue.push_back(std::move(ta));
    if (!tb.objs.empty()) queue.push_back(std::move(tb));
  }

  res.hpwl = hpwl(db);
  rc.log().info("minCutPlace: %d partitions, depth %d, HPWL %.4g",
                res.partitions, res.maxDepth, res.hpwl);
  return res;
}

}  // namespace ep
