#include "route/routability.h"

#include <algorithm>
#include <cmath>

#include "eplace/global_placer.h"
#include "eval/metrics.h"
#include "legal/detail.h"
#include "legal/legalize.h"
#include "util/log.h"
#include "wirelength/wl.h"

namespace ep {

RoutabilityResult routabilityDrivenRefine(PlacementDB& db,
                                          const RoutabilityConfig& cfg) {
  RoutabilityResult res;
  res.hpwlBefore = hpwl(db);
  {
    const CongestionMap m0 = estimateRudy(db);
    res.hotspotBefore = m0.hotspot;
    res.peakBefore = m0.peak;
  }

  // True widths of the movable standard cells (restored every round).
  std::vector<std::pair<std::int32_t, double>> trueW;
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    if (o.kind == ObjKind::kStdCell) trueW.emplace_back(i, o.w);
  }
  if (trueW.empty()) {
    res.hotspotAfter = res.hotspotBefore;
    res.peakAfter = res.peakBefore;
    res.hpwlAfter = res.hpwlBefore;
    res.legal = checkLegality(db).legal;
    return res;
  }

  double prevScore = res.hotspotBefore;
  for (int round = 0; round < cfg.maxRounds; ++round) {
    const CongestionMap rudy = estimateRudy(db);
    if (round > 0) {
      const double improvement = (prevScore - rudy.hotspot) / prevScore;
      if (improvement < cfg.minImprovement) break;
      prevScore = rudy.hotspot;
    }

    // Inflate hotspot cells (width only: height is the row pitch).
    const double threshold = cfg.hotspotFactor * rudy.mean;
    std::size_t inflated = 0;
    for (const auto& [idx, w] : trueW) {
      auto& o = db.objects[static_cast<std::size_t>(idx)];
      const Point c = o.center();
      const double demand = rudy.at(c.x, c.y);
      double factor = 1.0;
      if (demand > threshold && rudy.mean > 0.0) {
        factor = std::min(
            2.0, 1.0 + cfg.inflation * (demand / rudy.mean - cfg.hotspotFactor));
        ++inflated;
      }
      o.w = w * factor;
      o.setCenter(c.x, c.y);
    }
    logInfo("routability round %d: hotspot %.4g, %zu cells inflated", round,
            rudy.hotspot, inflated);
    if (inflated == 0) {
      // Restore and stop: nothing to do.
      for (const auto& [idx, w] : trueW) {
        auto& o = db.objects[static_cast<std::size_t>(idx)];
        const Point c = o.center();
        o.w = w;
        o.setCenter(c.x, c.y);
      }
      break;
    }

    // Re-place with the inflated footprints.
    GlobalPlacer gp(db, db.movable(), cfg.flow.gp);
    gp.makeFillersFromDb();
    gp.run();

    // Restore true sizes around the new centers, then legalize.
    for (const auto& [idx, w] : trueW) {
      auto& o = db.objects[static_cast<std::size_t>(idx)];
      const Point c = o.center();
      o.w = w;
      o.setCenter(c.x, c.y);
    }
    legalizeCells(db);
    detailPlace(db, cfg.flow.detail);
    ++res.rounds;
  }

  const CongestionMap m1 = estimateRudy(db);
  res.hotspotAfter = m1.hotspot;
  res.peakAfter = m1.peak;
  res.hpwlAfter = hpwl(db);
  res.legal = checkLegality(db).legal;
  logInfo("routability: hotspot %.4g -> %.4g, HPWL %.4g -> %.4g (%d rounds)",
          res.hotspotBefore, res.hotspotAfter, res.hpwlBefore, res.hpwlAfter,
          res.rounds);
  return res;
}

}  // namespace ep
