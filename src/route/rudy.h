// RUDY routing-demand estimation (Spindler & Johannes, "Fast and Accurate
// Routing Demand Estimation for Efficient Routability-driven Placement",
// DATE 2007) — the standard congestion proxy in placement.
//
// Each net spreads a uniform wire density of (w + h) / (w * h) over its
// bounding box (w, h = box dims): the expected wirelength of the net per
// unit area of its box. Summing over nets gives a per-bin demand map whose
// peaks predict routing hotspots. This powers the routability extension
// (the paper lists routability as future work, Sec. VIII).
#pragma once

#include <cstddef>
#include <vector>

#include "density/bingrid.h"
#include "model/netlist.h"

namespace ep {

struct CongestionMap {
  BinGrid grid;
  /// Demand per bin in wirelength-per-area units.
  std::vector<double> demand;
  double mean = 0.0;
  double peak = 0.0;
  /// Mean of the top 2% densest bins — the standard hotspot score.
  double hotspot = 0.0;

  /// Demand at the bin containing (x, y).
  [[nodiscard]] double at(double x, double y) const {
    return demand[grid.binY(y) * grid.nx() + grid.binX(x)];
  }
};

/// Builds the RUDY map for the current placement. nx/ny default to the
/// overflow-grid rule.
CongestionMap estimateRudy(const PlacementDB& db, std::size_t nx = 0,
                           std::size_t ny = 0);

}  // namespace ep
