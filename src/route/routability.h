// Routability-driven placement — the extension the paper's conclusion
// names as future work. The standard recipe (used by RePlAce's routability
// mode): estimate congestion with RUDY, *inflate* cells that sit in
// hotspots so the density force thins them out, re-run global placement
// with the inflated footprints, then restore true sizes and legalize.
#pragma once

#include "eplace/flow.h"
#include "model/netlist.h"
#include "route/rudy.h"

namespace ep {

struct RoutabilityConfig {
  int maxRounds = 2;
  /// Bins with demand above `threshold * mean` are hotspots.
  double hotspotFactor = 1.5;
  /// Cell area inflation per unit of relative excess demand (capped 2x).
  double inflation = 0.5;
  /// Stop when the hotspot score improves less than this fraction.
  double minImprovement = 0.02;
  FlowConfig flow;  ///< settings for the re-placement rounds
};

struct RoutabilityResult {
  double hotspotBefore = 0.0;
  double hotspotAfter = 0.0;
  double peakBefore = 0.0;
  double peakAfter = 0.0;
  double hpwlBefore = 0.0;
  double hpwlAfter = 0.0;
  int rounds = 0;
  bool legal = false;
};

/// Takes a *placed* (post-flow) design and trades wirelength for routing
/// hotspot relief. Standard cells only; macros stay fixed. The layout is
/// legalized again before returning.
RoutabilityResult routabilityDrivenRefine(PlacementDB& db,
                                          const RoutabilityConfig& cfg = {});

}  // namespace ep
