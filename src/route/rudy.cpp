#include "route/rudy.h"

#include <algorithm>
#include <limits>

#include "wirelength/wl.h"

namespace ep {

CongestionMap estimateRudy(const PlacementDB& db, std::size_t nx,
                           std::size_t ny) {
  if (nx == 0 || ny == 0) {
    nx = ny = BinGrid::chooseOverflowResolution(db.objects.size());
  }
  CongestionMap map{BinGrid(db.region, nx, ny), {}, 0.0, 0.0, 0.0};
  map.demand.assign(map.grid.numBins(), 0.0);

  for (const auto& net : db.nets) {
    if (net.pins.size() < 2) continue;
    double lx = std::numeric_limits<double>::max(), hx = -lx;
    double ly = lx, hy = -lx;
    for (const auto& pin : net.pins) {
      const Point p = db.pinPos(pin);
      lx = std::min(lx, p.x);
      hx = std::max(hx, p.x);
      ly = std::min(ly, p.y);
      hy = std::max(hy, p.y);
    }
    // Degenerate boxes get a minimum extent of one bin so a dense knot of
    // coincident pins still registers demand.
    const double w = std::max(hx - lx, map.grid.dx());
    const double h = std::max(hy - ly, map.grid.dy());
    const Rect box{lx, ly, lx + w, ly + h};
    // RUDY density: expected wirelength (w + h) spread over the box. The
    // stamp() helper distributes `amount` proportionally to overlap, so
    // passing (w + h) yields demand with wirelength units per bin.
    map.grid.stamp(box, net.weight * (w + h), map.demand);
  }
  // Normalize to per-area units and compute the summary scores.
  const double invBinArea = 1.0 / map.grid.binArea();
  for (auto& d : map.demand) d *= invBinArea;

  std::vector<double> sorted = map.demand;
  std::sort(sorted.begin(), sorted.end());
  double sum = 0.0;
  for (double d : sorted) sum += d;
  map.mean = sum / static_cast<double>(sorted.size());
  map.peak = sorted.back();
  const std::size_t topCount =
      std::max<std::size_t>(1, sorted.size() / 50);  // top 2%
  double topSum = 0.0;
  for (std::size_t i = sorted.size() - topCount; i < sorted.size(); ++i) {
    topSum += sorted[i];
  }
  map.hotspot = topSum / static_cast<double>(topCount);
  return map;
}

}  // namespace ep
