#include "fft/poisson.h"

#include <algorithm>
#include <cassert>
#include <numbers>

#include "model/placement_view.h"

namespace ep {

PoissonSolver::PoissonSolver(std::size_t nx, std::size_t ny, double dx,
                             double dy, ScratchArena* arena,
                             FaultInjector* faults)
    : nx_(nx),
      ny_(ny),
      planX_(nx, arena, faults),
      planY_(ny, arena, faults),
      wx_(nx),
      wy_(ny) {
  assert(isPowerOfTwo(nx) && isPowerOfTwo(ny));
  const double widthX = static_cast<double>(nx) * dx;
  const double widthY = static_cast<double>(ny) * dy;
  for (std::size_t u = 0; u < nx; ++u) {
    wx_[u] = std::numbers::pi * static_cast<double>(u) / widthX;
  }
  for (std::size_t v = 0; v < ny; ++v) {
    wy_[v] = std::numbers::pi * static_cast<double>(v) / widthY;
  }

  auto lease = [&](const char* key, std::size_t count) -> std::span<double> {
    if (arena != nullptr) return arena->doubles(key, count);
    own_.emplace_back(count);
    return own_.back();
  };
  pre_ = lease("fft.pre", nx * ny);
  coeff_ = lease("fft.coeff", nx * ny);
  psi_ = lease("fft.psi", nx * ny);
  ex_ = lease("fft.ex", nx * ny);
  ey_ = lease("fft.ey", nx * ny);

  // One multiply per bin replaces the per-solve normalization loop and the
  // 1/(w_u^2 + w_v^2) division: pre_uv folds the DCT orthogonality factor
  // (2/N per axis, halved at the zero frequency) into the Poisson kernel.
  const double sx = 2.0 / static_cast<double>(nx);
  const double sy = 2.0 / static_cast<double>(ny);
  for (std::size_t v = 0; v < ny; ++v) {
    const double fy = (v == 0) ? sy * 0.5 : sy;
    for (std::size_t u = 0; u < nx; ++u) {
      const double fx = (u == 0) ? sx * 0.5 : sx;
      const double w2 = wx_[u] * wx_[u] + wy_[v] * wy_[v];
      pre_[v * nx + u] = (u == 0 && v == 0) ? 0.0 : fx * fy / w2;
    }
  }
  // Zero the outputs so accessors are defined before the first solve.
  std::fill(psi_.begin(), psi_.end(), 0.0);
  std::fill(ex_.begin(), ex_.end(), 0.0);
  std::fill(ey_.begin(), ey_.end(), 0.0);
}

void PoissonSolver::solve(std::span<const double> rho, ThreadPool* pool) {
  assert(rho.size() == nx_ * ny_);
  const std::size_t nx = nx_, ny = ny_;

  // Analysis: raw DCT-II both axes.
  std::copy(rho.begin(), rho.end(), coeff_.begin());
  spectral2d(coeff_, nx, ny, planX_, planY_, TrigOp::kDct2, TrigOp::kDct2,
             pool, &ws_);

  // Potential spectrum: psi_uv = a_uv / (w_u^2 + w_v^2) with the DCT
  // normalization and the a_00 removal baked into pre_.
  for (std::size_t b = 0; b < nx * ny; ++b) {
    psi_[b] = coeff_[b] * pre_[b];
  }

  // Field x: -psi_uv * w_u paired with sin(w_u x); sineSynthesis stores the
  // coefficient of frequency u at slot u-1, and frequency nx is absent.
  for (std::size_t v = 0; v < ny; ++v) {
    double* exRow = ex_.data() + v * nx;
    const double* psiRow = psi_.data() + v * nx;
    for (std::size_t u = 1; u < nx; ++u) {
      exRow[u - 1] = -psiRow[u] * wx_[u];
    }
    exRow[nx - 1] = 0.0;
  }
  // Field y likewise along the y axis (per-output-row contiguous writes
  // with a constant w_v so the copies vectorize).
  for (std::size_t v = 1; v < ny; ++v) {
    double* eyRow = ey_.data() + (v - 1) * nx;
    const double* psiRow = psi_.data() + v * nx;
    const double wv = -wy_[v];
    for (std::size_t u = 0; u < nx; ++u) {
      eyRow[u] = psiRow[u] * wv;
    }
  }
  std::fill(ey_.begin() + static_cast<std::ptrdiff_t>((ny - 1) * nx),
            ey_.end(), 0.0);

  // Synthesis: the potential alone, then both field components batched
  // pairwise into single complex transforms (fft/plan.h).
  spectral2d(psi_, nx, ny, planX_, planY_, TrigOp::kCosSynth,
             TrigOp::kCosSynth, pool, &ws_);
  spectralFieldSynthesis2d(ex_, ey_, nx, ny, planX_, planY_, pool, &ws_);
}

}  // namespace ep
