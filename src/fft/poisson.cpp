#include "fft/poisson.h"

#include <cassert>
#include <numbers>

namespace ep {

PoissonSolver::PoissonSolver(std::size_t nx, std::size_t ny, double dx,
                             double dy, FaultInjector* faults)
    : nx_(nx),
      ny_(ny),
      dctX_(nx, faults),
      dctY_(ny, faults),
      wx_(nx),
      wy_(ny),
      coeff_(nx * ny),
      psi_(nx * ny),
      ex_(nx * ny),
      ey_(nx * ny) {
  assert(isPowerOfTwo(nx) && isPowerOfTwo(ny));
  const double widthX = static_cast<double>(nx) * dx;
  const double widthY = static_cast<double>(ny) * dy;
  for (std::size_t u = 0; u < nx; ++u) {
    wx_[u] = std::numbers::pi * static_cast<double>(u) / widthX;
  }
  for (std::size_t v = 0; v < ny; ++v) {
    wy_[v] = std::numbers::pi * static_cast<double>(v) / widthY;
  }
}

void PoissonSolver::solve(std::span<const double> rho, ThreadPool* pool) {
  assert(rho.size() == nx_ * ny_);
  const std::size_t nx = nx_, ny = ny_;

  // Analysis: raw DCT-II both axes, then orthogonality normalization
  // (2/N per axis, halved for the zero frequency).
  std::copy(rho.begin(), rho.end(), coeff_.begin());
  transform2d(coeff_, nx, ny, dctX_, dctY_, TrigOp::kDct2, TrigOp::kDct2,
              pool, &ws_);
  const double sx = 2.0 / static_cast<double>(nx);
  const double sy = 2.0 / static_cast<double>(ny);
  for (std::size_t v = 0; v < ny; ++v) {
    const double fy = (v == 0) ? sy * 0.5 : sy;
    for (std::size_t u = 0; u < nx; ++u) {
      const double fx = (u == 0) ? sx * 0.5 : sx;
      coeff_[v * nx + u] *= fx * fy;
    }
  }
  coeff_[0] = 0.0;  // zero-frequency removal (Eq. 6, third line)

  // Potential: psi_uv = a_uv / (w_u^2 + w_v^2).
  for (std::size_t v = 0; v < ny; ++v) {
    for (std::size_t u = 0; u < nx; ++u) {
      if (u == 0 && v == 0) {
        psi_[0] = 0.0;
        continue;
      }
      const double w2 = wx_[u] * wx_[u] + wy_[v] * wy_[v];
      psi_[v * nx + u] = coeff_[v * nx + u] / w2;
    }
  }

  // Field x: -psi_uv * w_u paired with sin(w_u x); sineSynthesis stores the
  // coefficient of frequency u at slot u-1, and frequency nx is absent.
  for (std::size_t v = 0; v < ny; ++v) {
    for (std::size_t u = 1; u < nx; ++u) {
      ex_[v * nx + (u - 1)] = -psi_[v * nx + u] * wx_[u];
    }
    ex_[v * nx + (nx - 1)] = 0.0;
  }
  // Field y likewise along the y axis.
  for (std::size_t u = 0; u < nx; ++u) {
    for (std::size_t v = 1; v < ny; ++v) {
      ey_[(v - 1) * nx + u] = -psi_[v * nx + u] * wy_[v];
    }
    ey_[(ny - 1) * nx + u] = 0.0;
  }

  transform2d(psi_, nx, ny, dctX_, dctY_, TrigOp::kCosSynth, TrigOp::kCosSynth,
              pool, &ws_);
  transform2d(ex_, nx, ny, dctX_, dctY_, TrigOp::kSinSynth, TrigOp::kCosSynth,
              pool, &ws_);
  transform2d(ey_, nx, ny, dctX_, dctY_, TrigOp::kCosSynth, TrigOp::kSinSynth,
              pool, &ws_);
}

}  // namespace ep
