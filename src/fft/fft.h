// Iterative radix-2 complex FFT with cached twiddle factors.
//
// The paper solves the density Poisson equation spectrally (Sec. IV,
// O(n log n) via FFT). FFTW is not a dependency of this repo; this module is
// the from-scratch replacement. Sizes are powers of two — the density grid
// is chosen as a power of two precisely so radix-2 suffices.
#pragma once

#include <complex>
#include <cstddef>
#include <span>
#include <vector>

namespace ep {

class FaultInjector;

using Complex = std::complex<double>;

/// FFT plan for a fixed power-of-two size. Reusable and cheap to apply; the
/// constructor precomputes the bit-reversal permutation and twiddle table.
class Fft {
 public:
  /// `n` must be a power of two and >= 1. `faults` (optional, borrowed)
  /// wires the "fft.forward" site; the owning context outlives the plan.
  explicit Fft(std::size_t n, FaultInjector* faults = nullptr);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// In-place forward DFT: X_k = sum_n x_n e^{-2 pi i n k / N}.
  void forward(std::span<Complex> data) const;

  /// In-place inverse DFT including the 1/N factor.
  void inverse(std::span<Complex> data) const;

 private:
  void transform(std::span<Complex> data, bool invert) const;

  std::size_t n_;
  FaultInjector* faults_ = nullptr;
  std::vector<std::size_t> bitrev_;
  std::vector<Complex> twiddle_;  // e^{-2 pi i k / N}, k in [0, N/2)
};

/// True when v is a power of two (and nonzero).
constexpr bool isPowerOfTwo(std::size_t v) { return v != 0 && (v & (v - 1)) == 0; }

/// Smallest power of two >= v (v >= 1).
std::size_t nextPowerOfTwo(std::size_t v);

}  // namespace ep
