#include "fft/dct.h"

#include <cassert>
#include <numbers>

namespace ep {

Dct::Dct(std::size_t n) : n_(n), fft_(n), buf_(n), phase_(n), tmp_(n) {
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -std::numbers::pi * static_cast<double>(k) /
                       (2.0 * static_cast<double>(n));
    phase_[k] = {std::cos(ang), std::sin(ang)};
  }
}

void Dct::dct2(std::span<double> x) {
  assert(x.size() == n_);
  const std::size_t n = n_;
  // Makhoul even/odd reindexing: v = [x0, x2, ..., x_{N-2}, x_{N-1}, ..., x3, x1].
  for (std::size_t i = 0; i < n / 2; ++i) {
    buf_[i] = {x[2 * i], 0.0};
    buf_[n - 1 - i] = {x[2 * i + 1], 0.0};
  }
  if (n == 1) buf_[0] = {x[0], 0.0};
  fft_.forward(buf_);
  // C_k = Re(e^{-i pi k/(2N)} V_k).
  for (std::size_t k = 0; k < n; ++k) {
    x[k] = (phase_[k] * buf_[k]).real();
  }
}

void Dct::idct2(std::span<double> x) {
  assert(x.size() == n_);
  const std::size_t n = n_;
  if (n == 1) return;  // dct2 of size 1 is the identity.
  // Reconstruct V_k = e^{i pi k/(2N)} (C_k - i C_{N-k}), V_0 = C_0.
  buf_[0] = {x[0], 0.0};
  for (std::size_t k = 1; k < n; ++k) {
    const Complex p{x[k], -x[n - k]};
    buf_[k] = std::conj(phase_[k]) * p;
  }
  fft_.inverse(buf_);
  // Undo the even/odd permutation.
  for (std::size_t i = 0; i < n / 2; ++i) {
    x[2 * i] = buf_[i].real();
    x[2 * i + 1] = buf_[n - 1 - i].real();
  }
}

void Dct::cosineSynthesis(std::span<double> c) {
  assert(c.size() == n_);
  // y = (N/2) * idct2(c with the DC term doubled); see header for why.
  c[0] *= 2.0;
  idct2(c);
  const double scale = static_cast<double>(n_) * 0.5;
  for (auto& v : c) v *= scale;
}

void Dct::sineSynthesis(std::span<double> s) {
  assert(s.size() == n_);
  const std::size_t n = n_;
  // sineSynthesis(s)_n = (-1)^n * cosineSynthesis(reverse(s))_n.
  for (std::size_t i = 0; i < n; ++i) tmp_[i] = s[n - 1 - i];
  for (std::size_t i = 0; i < n; ++i) s[i] = tmp_[i];
  cosineSynthesis(s);
  for (std::size_t i = 1; i < n; i += 2) s[i] = -s[i];
}

namespace {

void apply(Dct& d, TrigOp op, std::span<double> v) {
  switch (op) {
    case TrigOp::kDct2:
      d.dct2(v);
      break;
    case TrigOp::kIdct2:
      d.idct2(v);
      break;
    case TrigOp::kCosSynth:
      d.cosineSynthesis(v);
      break;
    case TrigOp::kSinSynth:
      d.sineSynthesis(v);
      break;
  }
}

}  // namespace

void transform2d(std::span<double> grid, std::size_t nx, std::size_t ny,
                 Dct& dctX, Dct& dctY, TrigOp opX, TrigOp opY) {
  assert(grid.size() == nx * ny);
  assert(dctX.size() == nx && dctY.size() == ny);
  // Rows (x direction, contiguous).
  for (std::size_t iy = 0; iy < ny; ++iy) {
    apply(dctX, opX, grid.subspan(iy * nx, nx));
  }
  // Columns (y direction, strided gather/scatter).
  std::vector<double> col(ny);
  for (std::size_t ix = 0; ix < nx; ++ix) {
    for (std::size_t iy = 0; iy < ny; ++iy) col[iy] = grid[iy * nx + ix];
    apply(dctY, opY, col);
    for (std::size_t iy = 0; iy < ny; ++iy) grid[iy * nx + ix] = col[iy];
  }
}

}  // namespace ep
