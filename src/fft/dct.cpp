#include "fft/dct.h"

#include <cassert>
#include <numbers>

namespace ep {

Dct::Dct(std::size_t n, FaultInjector* faults)
    : n_(n), fft_(n, faults), phase_(n) {
  scratch_.resize(n);
  for (std::size_t k = 0; k < n; ++k) {
    const double ang = -std::numbers::pi * static_cast<double>(k) /
                       (2.0 * static_cast<double>(n));
    phase_[k] = {std::cos(ang), std::sin(ang)};
  }
}

void Dct::dct2(std::span<double> x, DctScratch& s) const {
  assert(x.size() == n_);
  const std::size_t n = n_;
  s.resize(n);
  auto& buf = s.buf;
  // Makhoul even/odd reindexing: v = [x0, x2, ..., x_{N-2}, x_{N-1}, ..., x3, x1].
  for (std::size_t i = 0; i < n / 2; ++i) {
    buf[i] = {x[2 * i], 0.0};
    buf[n - 1 - i] = {x[2 * i + 1], 0.0};
  }
  if (n == 1) buf[0] = {x[0], 0.0};
  fft_.forward(buf);
  // C_k = Re(e^{-i pi k/(2N)} V_k).
  for (std::size_t k = 0; k < n; ++k) {
    x[k] = (phase_[k] * buf[k]).real();
  }
}

void Dct::idct2(std::span<double> x, DctScratch& s) const {
  assert(x.size() == n_);
  const std::size_t n = n_;
  if (n == 1) return;  // dct2 of size 1 is the identity.
  s.resize(n);
  auto& buf = s.buf;
  // Reconstruct V_k = e^{i pi k/(2N)} (C_k - i C_{N-k}), V_0 = C_0.
  buf[0] = {x[0], 0.0};
  for (std::size_t k = 1; k < n; ++k) {
    const Complex p{x[k], -x[n - k]};
    buf[k] = std::conj(phase_[k]) * p;
  }
  fft_.inverse(buf);
  // Undo the even/odd permutation.
  for (std::size_t i = 0; i < n / 2; ++i) {
    x[2 * i] = buf[i].real();
    x[2 * i + 1] = buf[n - 1 - i].real();
  }
}

void Dct::cosineSynthesis(std::span<double> c, DctScratch& s) const {
  assert(c.size() == n_);
  // y = (N/2) * idct2(c with the DC term doubled); see header for why.
  c[0] *= 2.0;
  idct2(c, s);
  const double scale = static_cast<double>(n_) * 0.5;
  for (auto& v : c) v *= scale;
}

void Dct::sineSynthesis(std::span<double> s, DctScratch& scratch) const {
  assert(s.size() == n_);
  const std::size_t n = n_;
  scratch.resize(n);
  auto& tmp = scratch.tmp;
  // sineSynthesis(s)_n = (-1)^n * cosineSynthesis(reverse(s))_n.
  for (std::size_t i = 0; i < n; ++i) tmp[i] = s[n - 1 - i];
  for (std::size_t i = 0; i < n; ++i) s[i] = tmp[i];
  cosineSynthesis(s, scratch);
  for (std::size_t i = 1; i < n; i += 2) s[i] = -s[i];
}

namespace {

void apply(const Dct& d, TrigOp op, std::span<double> v, DctScratch& s) {
  switch (op) {
    case TrigOp::kDct2:
      d.dct2(v, s);
      break;
    case TrigOp::kIdct2:
      d.idct2(v, s);
      break;
    case TrigOp::kCosSynth:
      d.cosineSynthesis(v, s);
      break;
    case TrigOp::kSinSynth:
      d.sineSynthesis(v, s);
      break;
  }
}

}  // namespace

void transform2d(std::span<double> grid, std::size_t nx, std::size_t ny,
                 const Dct& dctX, const Dct& dctY, TrigOp opX, TrigOp opY,
                 ThreadPool* pool, Transform2dWorkspace* ws) {
  assert(grid.size() == nx * ny);
  assert(dctX.size() == nx && dctY.size() == ny);
  Transform2dWorkspace local;
  if (ws == nullptr) ws = &local;
  const std::size_t nt =
      pool != nullptr ? static_cast<std::size_t>(pool->threads()) : 1;
  if (ws->perThread.size() < nt) ws->perThread.resize(nt);

  // Rows (x direction, contiguous). Each row is an independent 1-D
  // transform; batches of rows go to distinct threads.
  auto rows = [&](std::size_t part, std::size_t b, std::size_t e) {
    auto& pt = ws->perThread[part];
    for (std::size_t iy = b; iy < e; ++iy) {
      apply(dctX, opX, grid.subspan(iy * nx, nx), pt.sx);
    }
  };
  // Columns (y direction, strided gather/scatter through a dense buffer).
  auto cols = [&](std::size_t part, std::size_t b, std::size_t e) {
    auto& pt = ws->perThread[part];
    pt.col.resize(ny);
    for (std::size_t ix = b; ix < e; ++ix) {
      for (std::size_t iy = 0; iy < ny; ++iy) pt.col[iy] = grid[iy * nx + ix];
      apply(dctY, opY, pt.col, pt.sy);
      for (std::size_t iy = 0; iy < ny; ++iy) grid[iy * nx + ix] = pt.col[iy];
    }
  };
  if (pool != nullptr) {
    // Each index carries a whole O(n log n) row/column transform, so
    // dispatch even for small index counts (grain 1).
    pool->parallelFor(ny, rows, 1);
    pool->parallelFor(nx, cols, 1);
  } else {
    rows(0, 0, ny);
    cols(0, 0, nx);
  }
}

}  // namespace ep
