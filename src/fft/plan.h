// SpectralPlan — the planned, real-input transform pipeline behind the
// spectral Poisson solver (the hot half of `density_update`).
//
// The reference transforms in dct.h run every real row/column through a
// full-length *complex* radix-2 FFT: 4x the necessary arithmetic for real
// data, with std::complex butterflies (NaN-fixup branches, strided twiddle
// loads) and a per-butterfly invert branch. This plan precomputes, once per
// grid size,
//
//   * stage-contiguous split re/im twiddle tables (forward and inverse),
//   * the bit-reverse permutations for the half-length and full-length
//     complex FFTs,
//   * the Makhoul real-FFT unpack twiddles t_k = e^{-i pi k / M},
//   * the DCT-II post/pre-processing weights p_k = e^{-i pi k / (2N)} and
//     the combined u_k = p_k * e^{-2 pi i k / N},
//
// and evaluates each transform as
//
//   dct2: Makhoul permute -> pack even/odd into ONE complex sequence of
//         length M = N/2 -> FFT_M -> O(N) unpack folding the DCT phase
//         (C_k = Re(w), C_{N-k} = -Im(w) with w = p_k V_k);
//   idct2 / cosineSynthesis / sineSynthesis: the exact adjoint pipeline
//         through a half-length inverse FFT, with the synthesis scaling
//         (N/2, DC doubling, DST reversal and sign flips) folded into the
//         O(N) spectral pre-pass;
//   synthesisPair: TWO same-length syntheses — the field components
//         dPsi/dx and dPsi/dy of Eq. (6) — batched into ONE full-length
//         complex inverse FFT (Q_k = V^a_k + i V^b_k, both sequences fall
//         out as Re/Im), so the pair costs the same as a single
//         complex transform.
//
// All butterflies are split re/im double arrays with unit-stride twiddle
// loads — no std::complex, no branches in the inner loops — so the
// autovectorizer fires on them (see docs/PERFORMANCE.md).
//
// Table storage is leased from the keyed ScratchArena under
// "fft.<n>.<table>" keys: plans of equal size share identical (read-only)
// tables across stages and axes, a cGP-stage solver reuses the mGP
// allocations, growth is MemoryBudget-charged, and steady-state transforms
// allocate nothing. With a null arena the plan owns its tables (tests,
// micro-benches).
//
// Numerical contract: results agree with the dct.h reference to ~1 ulp
// (scaled); they are NOT bit-identical to it — the golden regeneration for
// that one-time switch is recorded in EXPERIMENTS.md. Determinism contract:
// a transform's arithmetic depends only on its input, never on thread
// count or partitioning (tests/test_kernel_properties.cpp pins both).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "fft/dct.h"  // TrigOp + the reference Dct the parity tests pin against

namespace ep {

class ScratchArena;

/// Per-call scratch for SpectralPlan transforms. A plan is shared read-only
/// across threads; each thread supplies its own scratch so independent
/// rows/columns transform concurrently. Buffers grow on first use (warm-up)
/// and are reused afterwards.
struct SpectralScratch {
  std::vector<double> re, im;    // packed complex work, length n
  std::vector<double> re2, im2;  // spectrum staging: two (n/2 + 1) lanes
  std::vector<double> tmp;       // real staging, length n

  void resize(std::size_t n) {
    if (re.size() < n) {
      re.resize(n);
      im.resize(n);
      re2.resize(n + 2);
      im2.resize(n + 2);
      tmp.resize(n);
    }
  }
};

class SpectralPlan {
 public:
  /// `n` must be a power of two >= 1. Tables are leased from `arena` under
  /// "fft.<n>." keys when non-null, otherwise owned. `faults` (optional,
  /// borrowed) wires the "fft.forward" site into the dct2 analysis path,
  /// mirroring the reference Fft plan.
  explicit SpectralPlan(std::size_t n, ScratchArena* arena = nullptr,
                        FaultInjector* faults = nullptr);

  [[nodiscard]] std::size_t size() const { return n_; }

  /// Transforms matching the dct.h semantics (see that header for the
  /// exact sums). All are in-place on `x` (size n) and re-entrant.
  void dct2(std::span<double> x, SpectralScratch& s) const;
  void idct2(std::span<double> x, SpectralScratch& s) const;
  void cosineSynthesis(std::span<double> c, SpectralScratch& s) const;
  void sineSynthesis(std::span<double> sv, SpectralScratch& s) const;

  /// Apply the transform selected by `op` (any TrigOp).
  void apply(TrigOp op, std::span<double> x, SpectralScratch& s) const;

  /// Batched pair synthesis: a <- synth(a) under opA and b <- synth(b)
  /// under opB in ONE full-length complex inverse FFT. opA/opB must each
  /// be kCosSynth or kSinSynth. Bit-identical to applying the two single
  /// syntheses? No — same math, different (fixed) FP schedule; identical
  /// for any thread count and pinned against the singles by the kernel
  /// property suite.
  void synthesisPair(std::span<double> a, TrigOp opA, std::span<double> b,
                     TrigOp opB, SpectralScratch& s) const;

 private:
  // Spectral pre-pass of the inverse pipeline: build the Hermitian
  // spectrum V (vRe/vIm, slots 0..M) from coefficients `x` under `op`
  // (kIdct2 = plain inverse, kCosSynth/kSinSynth = scaled synthesis).
  // `norm` is the inverse-FFT normalization the caller will NOT apply
  // (the IFFT cores here are unscaled), folded into the weights.
  void buildSpectrum(TrigOp op, std::span<const double> x, double* vRe,
                     double* vIm, double norm) const;
  // Inverse tail shared by idct2/cos/sin: V -> half-length IFFT -> Makhoul
  // un-permute into x (negating odd slots when `sine`).
  void inverseFromSpectrum(std::span<double> x, bool sine,
                           SpectralScratch& s) const;

  std::size_t n_ = 0;  // transform length N
  std::size_t m_ = 0;  // half length M = N/2 (0 when N == 1)
  FaultInjector* faults_ = nullptr;

  // Owned fallback storage when no arena is supplied; spans below point
  // either here or into the arena.
  std::vector<std::vector<double>> ownD_;
  std::vector<std::vector<std::int32_t>> ownI_;

  std::span<const std::int32_t> bitrevM_;  // size M
  std::span<const std::int32_t> bitrevN_;  // size N (pair path)
  // Stage-contiguous butterfly twiddles, shared by every FFT size <= N:
  // stage `len` occupies [len/2 - 1, len - 1) with w_k = e^{-+2 pi i k/len}.
  std::span<const double> stRe_;    // cos, size N-1
  std::span<const double> stImF_;   // forward: -sin
  std::span<const double> stImI_;   // inverse: +sin
  std::span<const double> tRe_, tIm_;  // t_k = e^{-i pi k / M}, size M
  std::span<const double> pRe_, pIm_;  // p_k = e^{-i pi k / (2N)}, size M+1
  std::span<const double> uRe_, uIm_;  // u_k = p_k t_k = e^{-5 i pi k / (2N)}
};

/// 2-D separable transform on a row-major nx*ny grid through SpectralPlan
/// (the planned counterpart of dct.h transform2d, same partitioning and
/// thread-count-determinism contract). `planX` must have size nx, `planY`
/// size ny.
struct Spectral2dWorkspace {
  struct PerThread {
    SpectralScratch s;
    std::vector<double> colA, colB;
  };
  std::vector<PerThread> perThread;
};

void spectral2d(std::span<double> grid, std::size_t nx, std::size_t ny,
                const SpectralPlan& planX, const SpectralPlan& planY,
                TrigOp opX, TrigOp opY, ThreadPool* pool = nullptr,
                Spectral2dWorkspace* ws = nullptr);

/// The batched field synthesis of Eq. (6): ex <- sinSynth_x . cosSynth_y,
/// ey <- cosSynth_x . sinSynth_y, with the (ex, ey) row (and then column)
/// pairs fused into single full-length complex transforms via
/// SpectralPlan::synthesisPair. Same row/column partitioning contract as
/// spectral2d.
void spectralFieldSynthesis2d(std::span<double> ex, std::span<double> ey,
                              std::size_t nx, std::size_t ny,
                              const SpectralPlan& planX,
                              const SpectralPlan& planY,
                              ThreadPool* pool = nullptr,
                              Spectral2dWorkspace* ws = nullptr);

}  // namespace ep
