// Real trigonometric transforms built on the complex FFT (Makhoul's N-point
// reindexing). These are the primitives of the spectral Poisson solver:
//
//   dct2(x)_k            = sum_n x_n cos(pi (2n+1) k / (2N))         (analysis)
//   idct2                = exact inverse of dct2
//   cosineSynthesis(c)_n = sum_k c_k cos(pi k (2n+1) / (2N))
//                          (all terms full weight, including k = 0)
//   sineSynthesis(s)_n   = sum_k s_k sin(pi (k+1) (2n+1) / (2N))
//                          (s_k is the coefficient of frequency k+1)
//
// The synthesis pair evaluates a Neumann cosine series and its x-derivative
// (a sine series) at bin centers — exactly what Eq. (6) of the paper needs.
// All sizes must be powers of two. A Dct object owns scratch buffers and an
// Fft plan so repeated application allocates nothing.
#pragma once

#include <span>
#include <vector>

#include "fft/fft.h"
#include "util/parallel.h"

namespace ep {

/// Per-call scratch for the Dct transforms. A Dct plan (tables) is shared
/// read-only across threads; each thread supplies its own scratch so
/// independent rows/columns can be transformed concurrently.
struct DctScratch {
  std::vector<Complex> buf;
  std::vector<double> tmp;

  void resize(std::size_t n) {
    buf.resize(n);
    tmp.resize(n);
  }
};

class Dct {
 public:
  /// `faults` (optional, borrowed) is forwarded to the Fft plan's
  /// "fft.forward" site.
  explicit Dct(std::size_t n, FaultInjector* faults = nullptr);

  [[nodiscard]] std::size_t size() const { return n_; }

  // Convenience single-threaded forms using the plan's own scratch.
  void dct2(std::span<double> x) { dct2(x, scratch_); }
  void idct2(std::span<double> x) { idct2(x, scratch_); }
  void cosineSynthesis(std::span<double> c) { cosineSynthesis(c, scratch_); }
  void sineSynthesis(std::span<double> s) { sineSynthesis(s, scratch_); }

  // Re-entrant forms: const plan + caller scratch, safe to call from many
  // threads with distinct scratch objects.
  void dct2(std::span<double> x, DctScratch& s) const;
  void idct2(std::span<double> x, DctScratch& s) const;
  void cosineSynthesis(std::span<double> c, DctScratch& s) const;
  void sineSynthesis(std::span<double> s, DctScratch& scratch) const;

 private:
  std::size_t n_;
  Fft fft_;
  std::vector<Complex> phase_;  // e^{-i pi k / (2N)}
  DctScratch scratch_;
};

/// Apply a 1-D transform (a Dct member) along both axes of a row-major
/// nx*ny grid (index = iy*nx + ix). `dctX` must have size nx, `dctY` size ny.
/// `op` selects the member function to apply.
enum class TrigOp { kDct2, kIdct2, kCosSynth, kSinSynth };

/// Reusable per-thread scratch for transform2d (sized lazily per call).
struct Transform2dWorkspace {
  struct PerThread {
    DctScratch sx, sy;
    std::vector<double> col;
  };
  std::vector<PerThread> perThread;
};

/// 2-D separable transform. Rows (and then columns) are independent, so
/// with a pool they are dispatched as fixed contiguous batches — each row/
/// column is transformed by exactly one thread with the same arithmetic as
/// the serial loop, hence the result is bit-identical for any thread count.
/// `pool == nullptr` runs serially; `ws` may be null (scratch is then
/// allocated per call).
void transform2d(std::span<double> grid, std::size_t nx, std::size_t ny,
                 const Dct& dctX, const Dct& dctY, TrigOp opX, TrigOp opY,
                 ThreadPool* pool = nullptr,
                 Transform2dWorkspace* ws = nullptr);

}  // namespace ep
