// Real trigonometric transforms built on the complex FFT (Makhoul's N-point
// reindexing). These are the primitives of the spectral Poisson solver:
//
//   dct2(x)_k            = sum_n x_n cos(pi (2n+1) k / (2N))         (analysis)
//   idct2                = exact inverse of dct2
//   cosineSynthesis(c)_n = sum_k c_k cos(pi k (2n+1) / (2N))
//                          (all terms full weight, including k = 0)
//   sineSynthesis(s)_n   = sum_k s_k sin(pi (k+1) (2n+1) / (2N))
//                          (s_k is the coefficient of frequency k+1)
//
// The synthesis pair evaluates a Neumann cosine series and its x-derivative
// (a sine series) at bin centers — exactly what Eq. (6) of the paper needs.
// All sizes must be powers of two. A Dct object owns scratch buffers and an
// Fft plan so repeated application allocates nothing.
#pragma once

#include <span>
#include <vector>

#include "fft/fft.h"

namespace ep {

class Dct {
 public:
  explicit Dct(std::size_t n);

  [[nodiscard]] std::size_t size() const { return n_; }

  void dct2(std::span<double> x);
  void idct2(std::span<double> x);
  void cosineSynthesis(std::span<double> c);
  void sineSynthesis(std::span<double> s);

 private:
  std::size_t n_;
  Fft fft_;
  std::vector<Complex> buf_;
  std::vector<Complex> phase_;  // e^{-i pi k / (2N)}
  std::vector<double> tmp_;
};

/// Apply a 1-D transform (a Dct member) along both axes of a row-major
/// nx*ny grid (index = iy*nx + ix). `dctX` must have size nx, `dctY` size ny.
/// `op` selects the member function to apply.
enum class TrigOp { kDct2, kIdct2, kCosSynth, kSinSynth };

void transform2d(std::span<double> grid, std::size_t nx, std::size_t ny,
                 Dct& dctX, Dct& dctY, TrigOp opX, TrigOp opY);

}  // namespace ep
