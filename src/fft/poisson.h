// Spectral solver for the placement Poisson problem, Eq. (6) of the paper:
//
//   div grad psi(x,y) = -rho(x,y)      on R = [0, nx*dx] x [0, ny*dy]
//   n . grad psi = 0                   on dR (Neumann)
//   integral of rho = integral of psi = 0   (zero-frequency removal)
//
// With Neumann walls the natural basis is the half-sample cosine family
// cos(w_u x), w_u = pi u / W, evaluated at bin centers — exactly the DCT-II
// grid. Writing rho = sum a_uv cos(w_u x) cos(w_v y) gives
//
//   psi   = sum  a_uv / (w_u^2 + w_v^2) cos(w_u x) cos(w_v y)
//   dpsi/dx = sum -a_uv w_u / (w_u^2 + w_v^2) sin(w_u x) cos(w_v y)
//
// a_00 is dropped per the paper so that the equilibrium couples to an even
// charge distribution inside R. The transforms run through SpectralPlan
// (half-length real FFTs; the two field components share one complex
// inverse per row/column pair — see fft/plan.h), so a solve costs the
// equivalent of ~two complex 2-D FFTs instead of the reference's four.
// The DCT orthogonality normalization and the 1/(w_u^2+w_v^2) kernel are
// folded into one precomputed per-bin multiply.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "fft/plan.h"

namespace ep {

class PoissonSolver {
 public:
  /// Grid of nx*ny bins (each a power of two) of physical size dx*dy.
  /// With `arena` non-null every persistent buffer (plan tables, spectral
  /// coefficient/field grids) is leased from it under "fft." keys — zero
  /// allocations per solve after construction, growth charged to the
  /// arena's MemoryBudget. Like the "den." maps, at most one solver may
  /// lease those keys at a time. `faults` (optional, borrowed) reaches
  /// the plans' "fft.forward" fault site; pass the owning context's
  /// injector.
  PoissonSolver(std::size_t nx, std::size_t ny, double dx, double dy,
                ScratchArena* arena = nullptr,
                FaultInjector* faults = nullptr);

  /// Solve for the density grid `rho` (row-major, index iy*nx+ix).
  /// After the call psi(), fieldX(), fieldY() hold the potential and its
  /// gradient (xi = grad psi) sampled at bin centers. With a pool the
  /// row/column transform batches run concurrently; results are
  /// bit-identical for any thread count (see spectral2d).
  void solve(std::span<const double> rho, ThreadPool* pool = nullptr);

  [[nodiscard]] std::span<const double> psi() const { return psi_; }
  [[nodiscard]] std::span<const double> fieldX() const { return ex_; }
  [[nodiscard]] std::span<const double> fieldY() const { return ey_; }

  [[nodiscard]] std::size_t nx() const { return nx_; }
  [[nodiscard]] std::size_t ny() const { return ny_; }

 private:
  std::size_t nx_, ny_;
  SpectralPlan planX_, planY_;
  std::vector<double> wx_, wy_;  // angular frequencies w_u, w_v
  // Owned fallback for the spans below when no arena was supplied. Inner
  // heap buffers are pointer-stable under outer growth, so spans hold.
  std::vector<std::vector<double>> own_;
  std::span<double> pre_;    // fx*fy / (w_u^2 + w_v^2), slot 0 == 0
  std::span<double> coeff_;  // a_uv scratch
  std::span<double> psi_, ex_, ey_;
  Spectral2dWorkspace ws_;  // per-thread transform scratch
};

}  // namespace ep
