#include "fft/fft.h"

#include <cassert>
#include <limits>
#include <numbers>

#include "util/fault_injector.h"

namespace ep {

std::size_t nextPowerOfTwo(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

Fft::Fft(std::size_t n, FaultInjector* faults) : n_(n), faults_(faults) {
  assert(isPowerOfTwo(n));
  bitrev_.resize(n);
  std::size_t bits = 0;
  while ((std::size_t{1} << bits) < n) ++bits;
  for (std::size_t i = 0; i < n; ++i) {
    std::size_t r = 0;
    for (std::size_t b = 0; b < bits; ++b) {
      if (i & (std::size_t{1} << b)) r |= std::size_t{1} << (bits - 1 - b);
    }
    bitrev_[i] = r;
  }
  twiddle_.resize(n / 2);
  for (std::size_t k = 0; k < n / 2; ++k) {
    const double ang =
        -2.0 * std::numbers::pi * static_cast<double>(k) / static_cast<double>(n);
    twiddle_[k] = {std::cos(ang), std::sin(ang)};
  }
}

void Fft::transform(std::span<Complex> data, bool invert) const {
  assert(data.size() == n_);
  for (std::size_t i = 0; i < n_; ++i) {
    const std::size_t j = bitrev_[i];
    if (i < j) std::swap(data[i], data[j]);
  }
  for (std::size_t len = 2; len <= n_; len <<= 1) {
    const std::size_t stride = n_ / len;
    const std::size_t half = len / 2;
    for (std::size_t start = 0; start < n_; start += len) {
      for (std::size_t k = 0; k < half; ++k) {
        Complex w = twiddle_[k * stride];
        if (invert) w = std::conj(w);
        const Complex u = data[start + k];
        const Complex t = data[start + k + half] * w;
        data[start + k] = u + t;
        data[start + k + half] = u - t;
      }
    }
  }
  if (invert) {
    const double inv = 1.0 / static_cast<double>(n_);
    for (auto& x : data) x *= inv;
  }
}

void Fft::forward(std::span<Complex> data) const {
  transform(data, false);
  // Fault site "fft.forward": corrupts one spectral coefficient so the
  // recovery paths downstream of the Poisson solver can be exercised.
  if (faults_ != nullptr && faults_->active() && !data.empty()) {
    if (const FaultSpec* f = faults_->fire("fft.forward")) {
      const std::size_t mid = data.size() / 2;
      data[mid] = f->kind == FaultKind::kSpike
                      ? data[mid] * f->magnitude
                      : Complex{std::numeric_limits<double>::quiet_NaN(),
                                std::numeric_limits<double>::quiet_NaN()};
    }
  }
}
void Fft::inverse(std::span<Complex> data) const { transform(data, true); }

}  // namespace ep
