#include "fft/plan.h"

#include <cassert>
#include <cmath>
#include <limits>
#include <numbers>
#include <string>

#include "model/placement_view.h"
#include "util/fault_injector.h"

namespace ep {

namespace {

// Iterative radix-2 DIT on split re/im arrays. The twiddle tables are
// stage-contiguous: stage `len` reads `len/2` entries starting at index
// `len/2 - 1`, with w_k = e^{-+2 pi i k / len} — independent of the FFT
// size, so one (N-1)-entry table serves every power-of-two size <= N
// (the half-length analysis FFT and the full-length pair FFT share it).
// No scaling: inverse normalization is folded into the spectral pre-pass.
void fftCore(double* re, double* im, std::size_t n,
             const std::int32_t* brev, const double* twRe,
             const double* twIm) {
  for (std::size_t i = 0; i < n; ++i) {
    const auto j = static_cast<std::size_t>(brev[i]);
    if (i < j) {
      std::swap(re[i], re[j]);
      std::swap(im[i], im[j]);
    }
  }
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    const double* __restrict wr = twRe + (half - 1);
    const double* __restrict wi = twIm + (half - 1);
    for (std::size_t start = 0; start < n; start += len) {
      double* __restrict ar = re + start;
      double* __restrict ai = im + start;
      double* __restrict br = re + start + half;
      double* __restrict bi = im + start + half;
      // No loop-carried dependence: ar/ai and br/bi cover disjoint
      // half-ranges of re/im and the twiddles are read-only, but gcc
      // cannot prove it through the outer loops — assert it so the
      // split-array butterfly vectorizes.
#pragma GCC ivdep
      for (std::size_t k = 0; k < half; ++k) {
        const double tr = br[k] * wr[k] - bi[k] * wi[k];
        const double ti = br[k] * wi[k] + bi[k] * wr[k];
        const double ur = ar[k];
        const double ui = ai[k];
        ar[k] = ur + tr;
        ai[k] = ui + ti;
        br[k] = ur - tr;
        bi[k] = ui - ti;
      }
    }
  }
}

}  // namespace

SpectralPlan::SpectralPlan(std::size_t n, ScratchArena* arena,
                           FaultInjector* faults)
    : n_(n), m_(n / 2), faults_(faults) {
  assert(isPowerOfTwo(n));
  if (n < 2) return;  // every transform of size 1 is the identity
  const std::size_t m = m_;
  const std::string prefix = "fft." + std::to_string(n) + ".";

  // Lease a table from the arena (keyed, so same-size plans share storage
  // and re-derive identical contents) or fall back to owned storage.
  // ownD_/ownI_ are vectors-of-vectors: push_back moves inner vectors but
  // their heap buffers — and thus the spans — stay valid.
  auto leaseD = [&](const char* name, std::size_t count) -> std::span<double> {
    if (arena != nullptr) return arena->doubles(prefix + name, count);
    ownD_.emplace_back(count);
    return ownD_.back();
  };
  auto leaseI = [&](const char* name,
                    std::size_t count) -> std::span<std::int32_t> {
    if (arena != nullptr) return arena->ints(prefix + name, count);
    ownI_.emplace_back(count);
    return ownI_.back();
  };

  auto fillBitrev = [](std::span<std::int32_t> out) {
    const std::size_t count = out.size();
    std::size_t bits = 0;
    while ((std::size_t{1} << bits) < count) ++bits;
    for (std::size_t i = 0; i < count; ++i) {
      std::size_t r = 0;
      for (std::size_t b = 0; b < bits; ++b) {
        if ((i & (std::size_t{1} << b)) != 0) {
          r |= std::size_t{1} << (bits - 1 - b);
        }
      }
      out[i] = static_cast<std::int32_t>(r);
    }
  };
  auto brM = leaseI("brM", m);
  auto brN = leaseI("brN", n);
  fillBitrev(brM);
  fillBitrev(brN);
  bitrevM_ = brM;
  bitrevN_ = brN;

  auto stC = leaseD("stC", n - 1);
  auto stSF = leaseD("stSF", n - 1);
  auto stSI = leaseD("stSI", n - 1);
  for (std::size_t len = 2; len <= n; len <<= 1) {
    const std::size_t half = len >> 1;
    for (std::size_t k = 0; k < half; ++k) {
      const double ang = 2.0 * std::numbers::pi * static_cast<double>(k) /
                         static_cast<double>(len);
      stC[half - 1 + k] = std::cos(ang);
      stSF[half - 1 + k] = -std::sin(ang);
      stSI[half - 1 + k] = std::sin(ang);
    }
  }
  stRe_ = stC;
  stImF_ = stSF;
  stImI_ = stSI;

  // Real-FFT unpack twiddles t_k = e^{-2 pi i k / N} = e^{-i pi k / M}.
  auto tR = leaseD("tRe", m);
  auto tI = leaseD("tIm", m);
  for (std::size_t k = 0; k < m; ++k) {
    const double ang =
        std::numbers::pi * static_cast<double>(k) / static_cast<double>(m);
    tR[k] = std::cos(ang);
    tI[k] = -std::sin(ang);
  }
  tRe_ = tR;
  tIm_ = tI;

  // DCT-II phase p_k = e^{-i pi k / (2N)} and the combined post-twiddle
  // u_k = p_k * t_k = e^{-i 5 pi k / (2N)} (one table lookup folds the
  // Makhoul recombination and the DCT phase into a single complex MAC).
  auto pR = leaseD("pRe", m + 1);
  auto pI = leaseD("pIm", m + 1);
  auto uR = leaseD("uRe", m);
  auto uI = leaseD("uIm", m);
  for (std::size_t k = 0; k <= m; ++k) {
    const double ang = std::numbers::pi * static_cast<double>(k) /
                       (2.0 * static_cast<double>(n));
    pR[k] = std::cos(ang);
    pI[k] = -std::sin(ang);
  }
  for (std::size_t k = 0; k < m; ++k) {
    const double ang = 5.0 * std::numbers::pi * static_cast<double>(k) /
                       (2.0 * static_cast<double>(n));
    uR[k] = std::cos(ang);
    uI[k] = -std::sin(ang);
  }
  pRe_ = pR;
  pIm_ = pI;
  uRe_ = uR;
  uIm_ = uI;
}

void SpectralPlan::dct2(std::span<double> x, SpectralScratch& s) const {
  assert(x.size() == n_);
  const std::size_t n = n_;
  const std::size_t m = m_;
  if (n < 2) {
    // Size-1 DCT is the identity; keep the fault site live like Fft does.
    if (faults_ != nullptr && faults_->active() && !x.empty()) {
      if (const FaultSpec* f = faults_->fire("fft.forward")) {
        x[0] = f->kind == FaultKind::kSpike
                   ? x[0] * f->magnitude
                   : std::numeric_limits<double>::quiet_NaN();
      }
    }
    return;
  }
  s.resize(n);
  double* re = s.re.data();
  double* im = s.im.data();
  // Makhoul permute v[i] = x[2i], v[N-1-i] = x[2i+1] fused with the
  // even/odd complex packing z[j] = v[2j] + i v[2j+1]: both halves of the
  // packed sequence read x at a fixed stride, no staging pass.
  if (m == 1) {
    re[0] = x[0];
    im[0] = x[1];
  } else {
    const std::size_t h = m / 2;
    for (std::size_t j = 0; j < h; ++j) {
      re[j] = x[4 * j];
      im[j] = x[4 * j + 2];
    }
    for (std::size_t j = h; j < m; ++j) {
      re[j] = x[2 * n - 4 * j - 1];
      im[j] = x[2 * n - 4 * j - 3];
    }
  }
  fftCore(re, im, m, bitrevM_.data(), stRe_.data(), stImF_.data());
  // Fault site "fft.forward": corrupts one spectral coefficient so the
  // recovery paths downstream of the Poisson solver can be exercised.
  if (faults_ != nullptr && faults_->active()) {
    if (const FaultSpec* f = faults_->fire("fft.forward")) {
      const std::size_t mid = m / 2;
      if (f->kind == FaultKind::kSpike) {
        re[mid] *= f->magnitude;
        im[mid] *= f->magnitude;
      } else {
        re[mid] = std::numeric_limits<double>::quiet_NaN();
        im[mid] = std::numeric_limits<double>::quiet_NaN();
      }
    }
  }
  // Hermitian unpack fused with the DCT phase:
  //   Fe_k = (Z_k + conj(Z_{M-k}))/2, Fo_k = (Z_k - conj(Z_{M-k}))/(2i),
  //   w    = p_k Fe_k + u_k Fo_k  =>  C_k = Re w, C_{N-k} = -Im w.
  x[0] = re[0] + im[0];
  x[m] = (re[0] - im[0]) * pRe_[m];
  const double* pr = pRe_.data();
  const double* pi = pIm_.data();
  const double* ur = uRe_.data();
  const double* ui = uIm_.data();
  for (std::size_t k = 1; k < m; ++k) {
    const double zr = re[k];
    const double zi = im[k];
    const double yr = re[m - k];
    const double yi = im[m - k];
    const double fer = 0.5 * (zr + yr);
    const double fei = 0.5 * (zi - yi);
    const double forr = 0.5 * (zi + yi);
    const double foi = 0.5 * (yr - zr);
    const double wr = pr[k] * fer - pi[k] * fei + ur[k] * forr - ui[k] * foi;
    const double wi = pr[k] * fei + pi[k] * fer + ur[k] * foi + ui[k] * forr;
    x[k] = wr;
    x[n - k] = -wi;
  }
}

void SpectralPlan::buildSpectrum(TrigOp op, std::span<const double> x,
                                 double* vRe, double* vIm,
                                 double norm) const {
  const std::size_t n = n_;
  const std::size_t m = m_;
  // Hermitian spectrum V_k = w_ac * conj(p_k) (c_k - i c_{N-k}) for
  // k = 1..M, V_0 = w_dc * c_0, with the synthesis scaling (DC doubling,
  // N/2 amplitude) and the inverse-FFT normalization `norm` folded into
  // the weights, and the DST's input reversal folded into the read index.
  double dcW = norm;
  double acW = norm;
  bool rev = false;
  switch (op) {
    case TrigOp::kIdct2:
      break;
    case TrigOp::kSinSynth:
      rev = true;
      [[fallthrough]];
    case TrigOp::kCosSynth:
      dcW = static_cast<double>(n) * norm;
      acW = 0.5 * static_cast<double>(n) * norm;
      break;
    case TrigOp::kDct2:
      assert(false && "buildSpectrum is the inverse-path pre-pass");
      break;
  }
  const double* px = x.data();
  const double* pr = pRe_.data();
  const double* pi = pIm_.data();
  vRe[0] = dcW * (rev ? px[n - 1] : px[0]);
  vIm[0] = 0.0;
  if (rev) {
    for (std::size_t k = 1; k <= m; ++k) {
      const double cr = acW * px[n - 1 - k];
      const double cc = -acW * px[k - 1];
      vRe[k] = pr[k] * cr + pi[k] * cc;
      vIm[k] = pr[k] * cc - pi[k] * cr;
    }
  } else {
    for (std::size_t k = 1; k <= m; ++k) {
      const double cr = acW * px[k];
      const double cc = -acW * px[n - k];
      vRe[k] = pr[k] * cr + pi[k] * cc;
      vIm[k] = pr[k] * cc - pi[k] * cr;
    }
  }
}

void SpectralPlan::inverseFromSpectrum(std::span<double> x, bool sine,
                                       SpectralScratch& s) const {
  const std::size_t m = m_;
  double* zr = s.re.data();
  double* zi = s.im.data();
  const double* vr = s.re2.data();
  const double* vi = s.im2.data();
  const double* tr = tRe_.data();
  const double* ti = tIm_.data();
  // Inverse packing: Z_k = Fe_k + i Fo_k with
  //   Fe_k = (V_k + conj(V_{M-k}))/2, Fo_k = conj(t_k) (V_k - conj(V_{M-k}))/2.
  for (std::size_t k = 0; k < m; ++k) {
    const double ar = vr[k];
    const double ai = vi[k];
    const double br = vr[m - k];
    const double bi = -vi[m - k];
    const double fer = 0.5 * (ar + br);
    const double fei = 0.5 * (ai + bi);
    const double dr = 0.5 * (ar - br);
    const double di = 0.5 * (ai - bi);
    const double forr = tr[k] * dr + ti[k] * di;
    const double foi = tr[k] * di - ti[k] * dr;
    zr[k] = fer - foi;
    zi[k] = fei + forr;
  }
  fftCore(zr, zi, m, bitrevM_.data(), stRe_.data(), stImI_.data());
  // Un-permute v[2j] = Re z_j, v[2j+1] = Im z_j through the inverse
  // Makhoul map x[2i] = v[i], x[2i+1] = v[N-1-i]; the DST's (-1)^n output
  // sign lands exactly on the odd slots, so it folds into the scatter.
  const double sg = sine ? -1.0 : 1.0;
  if (m == 1) {
    x[0] = zr[0];
    x[1] = sg * zi[0];
    return;
  }
  const std::size_t h = m / 2;
  for (std::size_t j = 0; j < h; ++j) {
    x[4 * j] = zr[j];
    x[4 * j + 2] = zi[j];
    x[4 * j + 1] = sg * zi[m - 1 - j];
    x[4 * j + 3] = sg * zr[m - 1 - j];
  }
}

void SpectralPlan::idct2(std::span<double> x, SpectralScratch& s) const {
  assert(x.size() == n_);
  if (n_ < 2) return;
  s.resize(n_);
  buildSpectrum(TrigOp::kIdct2, x, s.re2.data(), s.im2.data(),
                1.0 / static_cast<double>(m_));
  inverseFromSpectrum(x, false, s);
}

void SpectralPlan::cosineSynthesis(std::span<double> c,
                                   SpectralScratch& s) const {
  assert(c.size() == n_);
  if (n_ < 2) return;
  s.resize(n_);
  // (N/2) * (1/M) == 1: the synthesis amplitude exactly cancels the
  // half-length inverse normalization, so the spectrum needs no scaling.
  buildSpectrum(TrigOp::kCosSynth, c, s.re2.data(), s.im2.data(),
                1.0 / static_cast<double>(m_));
  inverseFromSpectrum(c, false, s);
}

void SpectralPlan::sineSynthesis(std::span<double> sv,
                                 SpectralScratch& s) const {
  assert(sv.size() == n_);
  if (n_ < 2) return;
  s.resize(n_);
  buildSpectrum(TrigOp::kSinSynth, sv, s.re2.data(), s.im2.data(),
                1.0 / static_cast<double>(m_));
  inverseFromSpectrum(sv, true, s);
}

void SpectralPlan::apply(TrigOp op, std::span<double> x,
                         SpectralScratch& s) const {
  switch (op) {
    case TrigOp::kDct2:
      dct2(x, s);
      break;
    case TrigOp::kIdct2:
      idct2(x, s);
      break;
    case TrigOp::kCosSynth:
      cosineSynthesis(x, s);
      break;
    case TrigOp::kSinSynth:
      sineSynthesis(x, s);
      break;
  }
}

void SpectralPlan::synthesisPair(std::span<double> a, TrigOp opA,
                                 std::span<double> b, TrigOp opB,
                                 SpectralScratch& s) const {
  assert(a.size() == n_ && b.size() == n_);
  assert(opA == TrigOp::kCosSynth || opA == TrigOp::kSinSynth);
  assert(opB == TrigOp::kCosSynth || opB == TrigOp::kSinSynth);
  const std::size_t n = n_;
  const std::size_t m = m_;
  if (n < 2) return;
  s.resize(n);
  // Two Hermitian spectra, each in slots 0..M (re2/im2 hold both lanes).
  double* aRe = s.re2.data();
  double* aIm = s.im2.data();
  double* bRe = aRe + (m + 1);
  double* bIm = aIm + (m + 1);
  // Full-length inverse carries 1/N, so the synthesis weights become
  // dc = 1, ac = 1/2 (vs dc = 2, ac = 1 on the half-length path).
  const double norm = 1.0 / static_cast<double>(n);
  buildSpectrum(opA, a, aRe, aIm, norm);
  buildSpectrum(opB, b, bRe, bIm, norm);
  // Q_k = V^a_k + i V^b_k; both sequences are recovered from one complex
  // inverse FFT as Re/Im because each V alone would synthesize to a real
  // signal. Upper half via Hermitian symmetry V_{N-k} = conj(V_k).
  double* qr = s.re.data();
  double* qi = s.im.data();
  for (std::size_t k = 0; k <= m; ++k) {
    qr[k] = aRe[k] - bIm[k];
    qi[k] = aIm[k] + bRe[k];
  }
  for (std::size_t k = m + 1; k < n; ++k) {
    const std::size_t j = n - k;
    qr[k] = aRe[j] + bIm[j];
    qi[k] = bRe[j] - aIm[j];
  }
  fftCore(qr, qi, n, bitrevN_.data(), stRe_.data(), stImI_.data());
  // buf^a = Re q, buf^b = Im q; un-permute both, folding each op's DST
  // sign into its odd (2i+1) slots.
  const double sA = opA == TrigOp::kSinSynth ? -1.0 : 1.0;
  const double sB = opB == TrigOp::kSinSynth ? -1.0 : 1.0;
  for (std::size_t i = 0; i < m; ++i) {
    a[2 * i] = qr[i];
    a[2 * i + 1] = sA * qr[n - 1 - i];
    b[2 * i] = qi[i];
    b[2 * i + 1] = sB * qi[n - 1 - i];
  }
}

namespace {

std::size_t poolThreads(ThreadPool* pool) {
  return pool != nullptr ? static_cast<std::size_t>(pool->threads()) : 1;
}

}  // namespace

void spectral2d(std::span<double> grid, std::size_t nx, std::size_t ny,
                const SpectralPlan& planX, const SpectralPlan& planY,
                TrigOp opX, TrigOp opY, ThreadPool* pool,
                Spectral2dWorkspace* ws) {
  assert(grid.size() == nx * ny);
  assert(planX.size() == nx && planY.size() == ny);
  Spectral2dWorkspace local;
  if (ws == nullptr) ws = &local;
  const std::size_t nt = poolThreads(pool);
  if (ws->perThread.size() < nt) ws->perThread.resize(nt);

  // Rows (x direction, contiguous). Each row is an independent 1-D
  // transform; batches of rows go to distinct threads, and per-row
  // arithmetic never depends on the batch — bit-identical at any thread
  // count (same contract as dct.h transform2d).
  auto rows = [&](std::size_t part, std::size_t b, std::size_t e) {
    auto& pt = ws->perThread[part];
    for (std::size_t iy = b; iy < e; ++iy) {
      planX.apply(opX, grid.subspan(iy * nx, nx), pt.s);
    }
  };
  // Columns (y direction, strided gather/scatter through a dense buffer).
  auto cols = [&](std::size_t part, std::size_t b, std::size_t e) {
    auto& pt = ws->perThread[part];
    pt.colA.resize(ny);
    for (std::size_t ix = b; ix < e; ++ix) {
      for (std::size_t iy = 0; iy < ny; ++iy) {
        pt.colA[iy] = grid[iy * nx + ix];
      }
      planY.apply(opY, pt.colA, pt.s);
      for (std::size_t iy = 0; iy < ny; ++iy) {
        grid[iy * nx + ix] = pt.colA[iy];
      }
    }
  };
  if (pool != nullptr) {
    pool->parallelFor(ny, rows, 1);
    pool->parallelFor(nx, cols, 1);
  } else {
    rows(0, 0, ny);
    cols(0, 0, nx);
  }
}

void spectralFieldSynthesis2d(std::span<double> ex, std::span<double> ey,
                              std::size_t nx, std::size_t ny,
                              const SpectralPlan& planX,
                              const SpectralPlan& planY, ThreadPool* pool,
                              Spectral2dWorkspace* ws) {
  assert(ex.size() == nx * ny && ey.size() == nx * ny);
  assert(planX.size() == nx && planY.size() == ny);
  Spectral2dWorkspace local;
  if (ws == nullptr) ws = &local;
  const std::size_t nt = poolThreads(pool);
  if (ws->perThread.size() < nt) ws->perThread.resize(nt);

  // Pairing is by grid index (ex row iy with ey row iy), never by
  // partition, so the fused transforms keep the thread-count-determinism
  // contract. The row pass is a barrier before the column pass, which is
  // exactly the ordering the separable transform needs.
  auto rows = [&](std::size_t part, std::size_t b, std::size_t e) {
    auto& pt = ws->perThread[part];
    for (std::size_t iy = b; iy < e; ++iy) {
      planX.synthesisPair(ex.subspan(iy * nx, nx), TrigOp::kSinSynth,
                          ey.subspan(iy * nx, nx), TrigOp::kCosSynth, pt.s);
    }
  };
  auto cols = [&](std::size_t part, std::size_t b, std::size_t e) {
    auto& pt = ws->perThread[part];
    pt.colA.resize(ny);
    pt.colB.resize(ny);
    for (std::size_t ix = b; ix < e; ++ix) {
      for (std::size_t iy = 0; iy < ny; ++iy) {
        pt.colA[iy] = ex[iy * nx + ix];
        pt.colB[iy] = ey[iy * nx + ix];
      }
      planY.synthesisPair(pt.colA, TrigOp::kCosSynth, pt.colB,
                          TrigOp::kSinSynth, pt.s);
      for (std::size_t iy = 0; iy < ny; ++iy) {
        ex[iy * nx + ix] = pt.colA[iy];
        ey[iy * nx + ix] = pt.colB[iy];
      }
    }
  };
  if (pool != nullptr) {
    pool->parallelFor(ny, rows, 1);
    pool->parallelFor(nx, cols, 1);
  } else {
    rows(0, 0, ny);
    cols(0, 0, nx);
  }
}

}  // namespace ep
