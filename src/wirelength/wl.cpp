#include "wirelength/wl.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace ep {

double netHpwl(const PlacementDB& db, const Net& net) {
  if (net.pins.empty()) return 0.0;
  double lx = std::numeric_limits<double>::max(), hx = -lx;
  double ly = lx, hy = -lx;
  for (const auto& pin : net.pins) {
    const Point p = db.pinPos(pin);
    lx = std::min(lx, p.x);
    hx = std::max(hx, p.x);
    ly = std::min(ly, p.y);
    hy = std::max(hy, p.y);
  }
  return (hx - lx) + (hy - ly);
}

double hpwl(const PlacementDB& db) {
  double total = 0.0;
  for (const auto& net : db.nets) total += net.weight * netHpwl(db, net);
  return total;
}

double hpwl(const VarView& view) {
  double total = 0.0;
  for (const auto& net : view.db->nets) {
    if (net.pins.empty()) continue;
    double lx = std::numeric_limits<double>::max(), hx = -lx;
    double ly = lx, hy = -lx;
    for (const auto& pin : net.pins) {
      const Point p = view.pinPos(pin);
      lx = std::min(lx, p.x);
      hx = std::max(hx, p.x);
      ly = std::min(ly, p.y);
      hy = std::max(hy, p.y);
    }
    total += net.weight * ((hx - lx) + (hy - ly));
  }
  return total;
}

namespace {

/// One axis of one net under the WA model. Computes the smooth extent
/// (maxWA - minWA) and accumulates d(extent)/d(coordinate) into grad[] for
/// movable pins. Stabilized: exp arguments are shifted by the axis max/min.
struct WaAxis {
  double sumExpPlus = 0.0, sumXExpPlus = 0.0;
  double sumExpMinus = 0.0, sumXExpMinus = 0.0;
  double maxC = -std::numeric_limits<double>::max();
  double minC = std::numeric_limits<double>::max();
  double invGamma = 0.0;

  void prepare(std::span<const double> coords, double gamma) {
    invGamma = 1.0 / gamma;
    for (double c : coords) {
      maxC = std::max(maxC, c);
      minC = std::min(minC, c);
    }
    for (double c : coords) {
      const double ep = std::exp((c - maxC) * invGamma);
      const double em = std::exp((minC - c) * invGamma);
      sumExpPlus += ep;
      sumXExpPlus += c * ep;
      sumExpMinus += em;
      sumXExpMinus += c * em;
    }
  }
  [[nodiscard]] double waMax() const { return sumXExpPlus / sumExpPlus; }
  [[nodiscard]] double waMin() const { return sumXExpMinus / sumExpMinus; }
  [[nodiscard]] double extent() const { return waMax() - waMin(); }
  /// d(extent)/dc for a pin at coordinate c.
  [[nodiscard]] double grad(double c) const {
    const double ep = std::exp((c - maxC) * invGamma);
    const double em = std::exp((minC - c) * invGamma);
    const double dMax = ep * (1.0 + (c - waMax()) * invGamma) / sumExpPlus;
    const double dMin = em * (1.0 - (c - waMin()) * invGamma) / sumExpMinus;
    return dMax - dMin;
  }
};

/// One axis of one net under the LSE model:
/// extent = gamma * (log sum e^{c/g} + log sum e^{-c/g}).
struct LseAxis {
  double sumExpPlus = 0.0, sumExpMinus = 0.0;
  double maxC = -std::numeric_limits<double>::max();
  double minC = std::numeric_limits<double>::max();
  double gamma = 0.0, invGamma = 0.0;

  void prepare(std::span<const double> coords, double g) {
    gamma = g;
    invGamma = 1.0 / g;
    for (double c : coords) {
      maxC = std::max(maxC, c);
      minC = std::min(minC, c);
    }
    for (double c : coords) {
      sumExpPlus += std::exp((c - maxC) * invGamma);
      sumExpMinus += std::exp((minC - c) * invGamma);
    }
  }
  [[nodiscard]] double extent() const {
    return gamma * (std::log(sumExpPlus) + std::log(sumExpMinus)) +
           (maxC - minC);
  }
  [[nodiscard]] double grad(double c) const {
    const double ep = std::exp((c - maxC) * invGamma) / sumExpPlus;
    const double em = std::exp((minC - c) * invGamma) / sumExpMinus;
    return ep - em;
  }
};

template <typename Axis>
double smoothWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                            std::span<double> gx, std::span<double> gy) {
  std::fill(gx.begin(), gx.end(), 0.0);
  std::fill(gy.begin(), gy.end(), 0.0);
  double total = 0.0;
  std::vector<double> px, py;
  for (const auto& net : view.db->nets) {
    if (net.pins.size() < 2) continue;
    px.clear();
    py.clear();
    for (const auto& pin : net.pins) {
      const Point p = view.pinPos(pin);
      px.push_back(p.x);
      py.push_back(p.y);
    }
    Axis ax, ay;
    ax.prepare(px, gammaX);
    ay.prepare(py, gammaY);
    total += net.weight * (ax.extent() + ay.extent());
    for (std::size_t k = 0; k < net.pins.size(); ++k) {
      const auto v = view.objToVar[static_cast<std::size_t>(net.pins[k].obj)];
      if (v < 0) continue;
      gx[static_cast<std::size_t>(v)] += net.weight * ax.grad(px[k]);
      gy[static_cast<std::size_t>(v)] += net.weight * ay.grad(py[k]);
    }
  }
  return total;
}

}  // namespace

double waWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                        std::span<double> gx, std::span<double> gy) {
  return smoothWirelengthGrad<WaAxis>(view, gammaX, gammaY, gx, gy);
}

double lseWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                         std::span<double> gx, std::span<double> gy) {
  return smoothWirelengthGrad<LseAxis>(view, gammaX, gammaY, gx, gy);
}

double waGammaSchedule(double binDim, double overflow) {
  const double t = std::clamp(overflow, 0.0, 1.0);
  return 8.0 * binDim * std::pow(10.0, (20.0 * t - 11.0) / 9.0);
}

WlEvaluator::WlEvaluator(const PlacementDB& db,
                         std::span<const std::int32_t> objToVar,
                         std::size_t numVars)
    : db_(&db) {
  const std::size_t nNets = db.nets.size();
  slotOffset_.assign(nNets + 1, 0);
  for (std::size_t n = 0; n < nNets; ++n) {
    slotOffset_[n + 1] = slotOffset_[n] + db.nets[n].pins.size();
  }
  pinGx_.assign(slotOffset_[nNets], 0.0);
  pinGy_.assign(slotOffset_[nNets], 0.0);
  perNet_.assign(nNets, 0.0);

  std::vector<std::size_t> counts(numVars, 0);
  for (std::size_t n = 0; n < nNets; ++n) {
    const auto& net = db.nets[n];
    if (net.pins.size() < 2) continue;
    for (const auto& pin : net.pins) {
      const auto v = objToVar[static_cast<std::size_t>(pin.obj)];
      if (v >= 0) ++counts[static_cast<std::size_t>(v)];
    }
  }
  varOffset_.assign(numVars + 1, 0);
  for (std::size_t v = 0; v < numVars; ++v) {
    varOffset_[v + 1] = varOffset_[v] + counts[v];
  }
  varSlots_.assign(varOffset_[numVars], 0);
  std::vector<std::size_t> cursor(varOffset_.begin(), varOffset_.end() - 1);
  // Filling in net-major order leaves each variable's slot list sorted by
  // (net, pin) — the accumulation order of the serial gradient loop.
  for (std::size_t n = 0; n < nNets; ++n) {
    const auto& net = db.nets[n];
    if (net.pins.size() < 2) continue;
    for (std::size_t k = 0; k < net.pins.size(); ++k) {
      const auto v = objToVar[static_cast<std::size_t>(net.pins[k].obj)];
      if (v < 0) continue;
      varSlots_[cursor[static_cast<std::size_t>(v)]++] = slotOffset_[n] + k;
    }
  }
}

double WlEvaluator::waGrad(const VarView& view, double gammaX, double gammaY,
                           std::span<double> gx, std::span<double> gy,
                           ThreadPool* pool) {
  assert(db_ != nullptr && view.db == db_);
  assert(gx.size() + 1 == varOffset_.size() && gy.size() == gx.size());
  const auto& nets = db_->nets;
  auto perNet = [&](std::size_t, std::size_t n0, std::size_t n1) {
    std::vector<double> px, py;
    for (std::size_t n = n0; n < n1; ++n) {
      const auto& net = nets[n];
      if (net.pins.size() < 2) {
        perNet_[n] = 0.0;
        continue;
      }
      px.clear();
      py.clear();
      for (const auto& pin : net.pins) {
        const Point p = view.pinPos(pin);
        px.push_back(p.x);
        py.push_back(p.y);
      }
      WaAxis ax, ay;
      ax.prepare(px, gammaX);
      ay.prepare(py, gammaY);
      perNet_[n] = net.weight * (ax.extent() + ay.extent());
      const std::size_t base = slotOffset_[n];
      for (std::size_t k = 0; k < net.pins.size(); ++k) {
        pinGx_[base + k] = net.weight * ax.grad(px[k]);
        pinGy_[base + k] = net.weight * ay.grad(py[k]);
      }
    }
  };
  auto gather = [&](std::size_t, std::size_t v0, std::size_t v1) {
    for (std::size_t v = v0; v < v1; ++v) {
      double sx = 0.0, sy = 0.0;
      for (std::size_t s = varOffset_[v]; s < varOffset_[v + 1]; ++s) {
        sx += pinGx_[varSlots_[s]];
        sy += pinGy_[varSlots_[s]];
      }
      gx[v] = sx;
      gy[v] = sy;
    }
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->parallelFor(nets.size(), perNet, 64);
    pool->parallelFor(gx.size(), gather, 512);
  } else {
    perNet(0, 0, nets.size());
    gather(0, 0, gx.size());
  }
  double total = 0.0;
  for (std::size_t n = 0; n < nets.size(); ++n) {
    if (nets[n].pins.size() < 2) continue;
    total += perNet_[n];
  }
  return total;
}

double WlEvaluator::hpwl(const VarView& view, ThreadPool* pool) {
  assert(db_ != nullptr && view.db == db_);
  const auto& nets = db_->nets;
  auto perNet = [&](std::size_t, std::size_t n0, std::size_t n1) {
    for (std::size_t n = n0; n < n1; ++n) {
      const auto& net = nets[n];
      if (net.pins.empty()) {
        perNet_[n] = 0.0;
        continue;
      }
      double lx = std::numeric_limits<double>::max(), hx = -lx;
      double ly = lx, hy = -lx;
      for (const auto& pin : net.pins) {
        const Point p = view.pinPos(pin);
        lx = std::min(lx, p.x);
        hx = std::max(hx, p.x);
        ly = std::min(ly, p.y);
        hy = std::max(hy, p.y);
      }
      perNet_[n] = net.weight * ((hx - lx) + (hy - ly));
    }
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->parallelFor(nets.size(), perNet, 64);
  } else {
    perNet(0, 0, nets.size());
  }
  double total = 0.0;
  for (std::size_t n = 0; n < nets.size(); ++n) {
    if (nets[n].pins.empty()) continue;
    total += perNet_[n];
  }
  return total;
}

}  // namespace ep
