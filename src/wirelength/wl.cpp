#include "wirelength/wl.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace ep {

double netHpwl(const PlacementDB& db, const Net& net) {
  if (net.pins.empty()) return 0.0;
  double lx = std::numeric_limits<double>::max(), hx = -lx;
  double ly = lx, hy = -lx;
  for (const auto& pin : net.pins) {
    const Point p = db.pinPos(pin);
    lx = std::min(lx, p.x);
    hx = std::max(hx, p.x);
    ly = std::min(ly, p.y);
    hy = std::max(hy, p.y);
  }
  return (hx - lx) + (hy - ly);
}

double hpwl(const PlacementDB& db) {
  double total = 0.0;
  for (const auto& net : db.nets) total += net.weight * netHpwl(db, net);
  return total;
}

double hpwl(const VarView& view) {
  double total = 0.0;
  for (const auto& net : view.db->nets) {
    if (net.pins.empty()) continue;
    double lx = std::numeric_limits<double>::max(), hx = -lx;
    double ly = lx, hy = -lx;
    for (const auto& pin : net.pins) {
      const Point p = view.pinPos(pin);
      lx = std::min(lx, p.x);
      hx = std::max(hx, p.x);
      ly = std::min(ly, p.y);
      hy = std::max(hy, p.y);
    }
    total += net.weight * ((hx - lx) + (hy - ly));
  }
  return total;
}

namespace {

/// One axis of one net under the WA model. Computes the smooth extent
/// (maxWA - minWA) and accumulates d(extent)/d(coordinate) into grad[] for
/// movable pins. Stabilized: exp arguments are shifted by the axis max/min.
struct WaAxis {
  double sumExpPlus = 0.0, sumXExpPlus = 0.0;
  double sumExpMinus = 0.0, sumXExpMinus = 0.0;
  double maxC = -std::numeric_limits<double>::max();
  double minC = std::numeric_limits<double>::max();
  double invGamma = 0.0;

  void prepare(std::span<const double> coords, double gamma) {
    invGamma = 1.0 / gamma;
    for (double c : coords) {
      maxC = std::max(maxC, c);
      minC = std::min(minC, c);
    }
    for (double c : coords) {
      const double ep = std::exp((c - maxC) * invGamma);
      const double em = std::exp((minC - c) * invGamma);
      sumExpPlus += ep;
      sumXExpPlus += c * ep;
      sumExpMinus += em;
      sumXExpMinus += c * em;
    }
  }
  [[nodiscard]] double waMax() const { return sumXExpPlus / sumExpPlus; }
  [[nodiscard]] double waMin() const { return sumXExpMinus / sumExpMinus; }
  [[nodiscard]] double extent() const { return waMax() - waMin(); }
  /// d(extent)/dc for a pin at coordinate c.
  [[nodiscard]] double grad(double c) const {
    const double ep = std::exp((c - maxC) * invGamma);
    const double em = std::exp((minC - c) * invGamma);
    const double dMax = ep * (1.0 + (c - waMax()) * invGamma) / sumExpPlus;
    const double dMin = em * (1.0 - (c - waMin()) * invGamma) / sumExpMinus;
    return dMax - dMin;
  }
};

/// One axis of one net under the LSE model:
/// extent = gamma * (log sum e^{c/g} + log sum e^{-c/g}).
struct LseAxis {
  double sumExpPlus = 0.0, sumExpMinus = 0.0;
  double maxC = -std::numeric_limits<double>::max();
  double minC = std::numeric_limits<double>::max();
  double gamma = 0.0, invGamma = 0.0;

  void prepare(std::span<const double> coords, double g) {
    gamma = g;
    invGamma = 1.0 / g;
    for (double c : coords) {
      maxC = std::max(maxC, c);
      minC = std::min(minC, c);
    }
    for (double c : coords) {
      sumExpPlus += std::exp((c - maxC) * invGamma);
      sumExpMinus += std::exp((minC - c) * invGamma);
    }
  }
  [[nodiscard]] double extent() const {
    return gamma * (std::log(sumExpPlus) + std::log(sumExpMinus)) +
           (maxC - minC);
  }
  [[nodiscard]] double grad(double c) const {
    const double ep = std::exp((c - maxC) * invGamma) / sumExpPlus;
    const double em = std::exp((minC - c) * invGamma) / sumExpMinus;
    return ep - em;
  }
};

template <typename Axis>
double smoothWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                            std::span<double> gx, std::span<double> gy) {
  std::fill(gx.begin(), gx.end(), 0.0);
  std::fill(gy.begin(), gy.end(), 0.0);
  double total = 0.0;
  std::vector<double> px, py;
  for (const auto& net : view.db->nets) {
    if (net.pins.size() < 2) continue;
    px.clear();
    py.clear();
    for (const auto& pin : net.pins) {
      const Point p = view.pinPos(pin);
      px.push_back(p.x);
      py.push_back(p.y);
    }
    Axis ax, ay;
    ax.prepare(px, gammaX);
    ay.prepare(py, gammaY);
    total += net.weight * (ax.extent() + ay.extent());
    for (std::size_t k = 0; k < net.pins.size(); ++k) {
      const auto v = view.objToVar[static_cast<std::size_t>(net.pins[k].obj)];
      if (v < 0) continue;
      gx[static_cast<std::size_t>(v)] += net.weight * ax.grad(px[k]);
      gy[static_cast<std::size_t>(v)] += net.weight * ay.grad(py[k]);
    }
  }
  return total;
}

}  // namespace

double waWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                        std::span<double> gx, std::span<double> gy) {
  return smoothWirelengthGrad<WaAxis>(view, gammaX, gammaY, gx, gy);
}

double lseWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                         std::span<double> gx, std::span<double> gy) {
  return smoothWirelengthGrad<LseAxis>(view, gammaX, gammaY, gx, gy);
}

double waGammaSchedule(double binDim, double overflow) {
  const double t = std::clamp(overflow, 0.0, 1.0);
  return 8.0 * binDim * std::pow(10.0, (20.0 * t - 11.0) / 9.0);
}

WlEvaluator::WlEvaluator(const PlacementDB& db,
                         std::span<const std::int32_t> objToVar,
                         std::size_t numVars)
    : db_(&db) {
  const PlacementView& pv = db.view();
  assert(pv.built());
  netPinStart_ = pv.netPinStart();
  pinObj_ = pv.pinObj();
  pinOx_ = pv.pinOx();
  pinOy_ = pv.pinOy();
  netWeight_ = pv.netWeight();
  objLx_ = pv.lx();
  objLy_ = pv.ly();
  objW_ = pv.w();
  objH_ = pv.h();
  maxNetDegree_ = pv.maxNetDegree();

  ScratchArena& arena = pv.arena();
  pinGx_ = arena.doubles("wl.pinGx", pv.numPins());
  pinGy_ = arena.doubles("wl.pinGy", pv.numPins());
  perNet_ = arena.doubles("wl.perNet", pv.numNets());

  // Var -> pin-slot incidence. Each variable maps to at most one object,
  // and that object's objPinIds list is ascending global pin ids — i.e.
  // (net, pin) order, the accumulation order of the serial gradient loop.
  // Pins of nets with < 2 pins carry no gradient and are filtered out.
  const auto objPinStart = pv.objPinStart();
  const auto objPinIds = pv.objPinIds();
  const auto pinNet = pv.pinNet();
  const std::size_t nObj = pv.numObjects();
  auto liveDegree = [&](std::int32_t pid) {
    const auto n = static_cast<std::size_t>(pinNet[static_cast<std::size_t>(pid)]);
    return netPinStart_[n + 1] - netPinStart_[n];
  };
  varOffset_ = arena.ints("wl.varOffset", numVars + 1);
  std::fill(varOffset_.begin(), varOffset_.end(), 0);
  for (std::size_t i = 0; i < nObj; ++i) {
    const auto v = objToVar[i];
    if (v < 0) continue;
    std::int32_t c = 0;
    for (auto s = objPinStart[i]; s < objPinStart[i + 1]; ++s) {
      if (liveDegree(objPinIds[static_cast<std::size_t>(s)]) >= 2) ++c;
    }
    varOffset_[static_cast<std::size_t>(v) + 1] = c;
  }
  for (std::size_t v = 1; v <= numVars; ++v) varOffset_[v] += varOffset_[v - 1];
  varSlots_ = arena.ints(
      "wl.varSlots", static_cast<std::size_t>(varOffset_[numVars]));
  for (std::size_t i = 0; i < nObj; ++i) {
    const auto v = objToVar[i];
    if (v < 0) continue;
    auto at = static_cast<std::size_t>(varOffset_[static_cast<std::size_t>(v)]);
    for (auto s = objPinStart[i]; s < objPinStart[i + 1]; ++s) {
      const auto pid = objPinIds[static_cast<std::size_t>(s)];
      if (liveDegree(pid) >= 2) varSlots_[at++] = pid;
    }
  }
}

void WlEvaluator::ensureScratch(std::size_t parts) {
  if (scratch_.size() < parts) scratch_.resize(parts);
  const auto cap = static_cast<std::size_t>(maxNetDegree_);
  for (std::size_t t = 0; t < parts; ++t) {
    if (scratch_[t].px.capacity() < cap) {
      scratch_[t].px.reserve(cap);
      scratch_[t].py.reserve(cap);
    }
  }
}

double WlEvaluator::waGrad(const VarView& view, double gammaX, double gammaY,
                           std::span<double> gx, std::span<double> gy,
                           ThreadPool* pool) {
  assert(db_ != nullptr && view.db == db_);
  assert(gx.size() + 1 == varOffset_.size() && gy.size() == gx.size());
  const std::size_t nNets = perNet_.size();
  const bool par = pool != nullptr && pool->threads() > 1;
  ensureScratch(par ? static_cast<std::size_t>(pool->threads()) : 1);
  auto perNet = [&](std::size_t part, std::size_t n0, std::size_t n1) {
    auto& px = scratch_[part].px;
    auto& py = scratch_[part].py;
    for (std::size_t n = n0; n < n1; ++n) {
      const auto pb = static_cast<std::size_t>(netPinStart_[n]);
      const auto pe = static_cast<std::size_t>(netPinStart_[n + 1]);
      if (pe - pb < 2) {
        perNet_[n] = 0.0;
        continue;
      }
      px.clear();
      py.clear();
      for (std::size_t pid = pb; pid < pe; ++pid) {
        const Point p = pinPosition(view, pid);
        px.push_back(p.x);
        py.push_back(p.y);
      }
      WaAxis ax, ay;
      ax.prepare(px, gammaX);
      ay.prepare(py, gammaY);
      perNet_[n] = netWeight_[n] * (ax.extent() + ay.extent());
      for (std::size_t k = 0; k < pe - pb; ++k) {
        pinGx_[pb + k] = netWeight_[n] * ax.grad(px[k]);
        pinGy_[pb + k] = netWeight_[n] * ay.grad(py[k]);
      }
    }
  };
  auto gather = [&](std::size_t, std::size_t v0, std::size_t v1) {
    for (std::size_t v = v0; v < v1; ++v) {
      double sx = 0.0, sy = 0.0;
      const auto s0 = static_cast<std::size_t>(varOffset_[v]);
      const auto s1 = static_cast<std::size_t>(varOffset_[v + 1]);
      for (std::size_t s = s0; s < s1; ++s) {
        const auto slot = static_cast<std::size_t>(varSlots_[s]);
        sx += pinGx_[slot];
        sy += pinGy_[slot];
      }
      gx[v] = sx;
      gy[v] = sy;
    }
  };
  if (par) {
    pool->parallelFor(nNets, perNet, 64);
    pool->parallelFor(gx.size(), gather, 512);
  } else {
    perNet(0, 0, nNets);
    gather(0, 0, gx.size());
  }
  double total = 0.0;
  for (std::size_t n = 0; n < nNets; ++n) {
    if (netPinStart_[n + 1] - netPinStart_[n] < 2) continue;
    total += perNet_[n];
  }
  return total;
}

double WlEvaluator::hpwl(const VarView& view, ThreadPool* pool) {
  assert(db_ != nullptr && view.db == db_);
  const std::size_t nNets = perNet_.size();
  auto perNet = [&](std::size_t, std::size_t n0, std::size_t n1) {
    for (std::size_t n = n0; n < n1; ++n) {
      const auto pb = static_cast<std::size_t>(netPinStart_[n]);
      const auto pe = static_cast<std::size_t>(netPinStart_[n + 1]);
      if (pe == pb) {
        perNet_[n] = 0.0;
        continue;
      }
      double lx = std::numeric_limits<double>::max(), hx = -lx;
      double ly = lx, hy = -lx;
      for (std::size_t pid = pb; pid < pe; ++pid) {
        const Point p = pinPosition(view, pid);
        lx = std::min(lx, p.x);
        hx = std::max(hx, p.x);
        ly = std::min(ly, p.y);
        hy = std::max(hy, p.y);
      }
      perNet_[n] = netWeight_[n] * ((hx - lx) + (hy - ly));
    }
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->parallelFor(nNets, perNet, 64);
  } else {
    perNet(0, 0, nNets);
  }
  double total = 0.0;
  for (std::size_t n = 0; n < nNets; ++n) {
    if (netPinStart_[n + 1] == netPinStart_[n]) continue;
    total += perNet_[n];
  }
  return total;
}

}  // namespace ep
