#include "wirelength/wl.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <vector>

namespace ep {

double netHpwl(const PlacementDB& db, const Net& net) {
  if (net.pins.empty()) return 0.0;
  double lx = std::numeric_limits<double>::max(), hx = -lx;
  double ly = lx, hy = -lx;
  for (const auto& pin : net.pins) {
    const Point p = db.pinPos(pin);
    lx = std::min(lx, p.x);
    hx = std::max(hx, p.x);
    ly = std::min(ly, p.y);
    hy = std::max(hy, p.y);
  }
  return (hx - lx) + (hy - ly);
}

double hpwl(const PlacementDB& db) {
  double total = 0.0;
  for (const auto& net : db.nets) total += net.weight * netHpwl(db, net);
  return total;
}

double hpwl(const VarView& view) {
  double total = 0.0;
  for (const auto& net : view.db->nets) {
    if (net.pins.empty()) continue;
    double lx = std::numeric_limits<double>::max(), hx = -lx;
    double ly = lx, hy = -lx;
    for (const auto& pin : net.pins) {
      const Point p = view.pinPos(pin);
      lx = std::min(lx, p.x);
      hx = std::max(hx, p.x);
      ly = std::min(ly, p.y);
      hy = std::max(hy, p.y);
    }
    total += net.weight * ((hx - lx) + (hy - ly));
  }
  return total;
}

namespace {

/// One axis of one net under the WA model. Computes the smooth extent
/// (maxWA - minWA) and the per-pin d(extent)/d(coordinate). Stabilized:
/// exp arguments are shifted by the axis max/min.
///
/// This is the hot kernel of `wa_gradient`: prepare() caches the two
/// exponentials per pin (the reference recomputed them in grad()) and
/// hoists the weighted means and reciprocal partition sums once per net
/// (the reference divided by them per pin), so grad() is a handful of
/// branch-free multiply-adds. Both the serial free functions and
/// WlEvaluator run exactly this code, which is what keeps them
/// bit-identical to each other at any thread count.
struct WaAxis {
  double invGamma = 0.0;
  double wMax = 0.0, wMin = 0.0;        // weighted-average max/min
  double invSumP = 0.0, invSumM = 0.0;  // reciprocal partition sums

  /// Pass over the n coordinates: min/max shift, then the exp sums, with
  /// e^{(c-max)/g} cached in expP[] and e^{(min-c)/g} in expM[].
  void prepare(const double* c, std::size_t n, double gamma, double* expP,
               double* expM) {
    invGamma = 1.0 / gamma;
    double mx = -std::numeric_limits<double>::max();
    double mn = std::numeric_limits<double>::max();
    for (std::size_t i = 0; i < n; ++i) {
      mx = std::max(mx, c[i]);
      mn = std::min(mn, c[i]);
    }
    double sp = 0.0, sxp = 0.0, sm = 0.0, sxm = 0.0;
    const double span = (mx - mn) * invGamma;
    if (span < 700.0) {
      // Narrow net (the common case): e^{(min-c)/g} = K / e^{(c-max)/g}
      // with K = e^{(min-max)/g}, turning two libm exps per pin into one
      // exp and one divide. K >= DBL_MIN here, so the quotient cannot
      // blow up, and the extreme pins still get exactly ep = K, em = 1
      // and ep = 1, em = K (K/K == 1.0 in IEEE).
      const double K = std::exp(-span);
      for (std::size_t i = 0; i < n; ++i) {
        const double ep = std::exp((c[i] - mx) * invGamma);
        const double em = K / ep;
        expP[i] = ep;
        expM[i] = em;
        sp += ep;
        sxp += c[i] * ep;
        sm += em;
        sxm += c[i] * em;
      }
    } else {
      // Wide net under a sharp gamma: K would underflow, keep both exps.
      for (std::size_t i = 0; i < n; ++i) {
        const double ep = std::exp((c[i] - mx) * invGamma);
        const double em = std::exp((mn - c[i]) * invGamma);
        expP[i] = ep;
        expM[i] = em;
        sp += ep;
        sxp += c[i] * ep;
        sm += em;
        sxm += c[i] * em;
      }
    }
    wMax = sxp / sp;
    wMin = sxm / sm;
    invSumP = 1.0 / sp;
    invSumM = 1.0 / sm;
  }
  [[nodiscard]] double extent() const { return wMax - wMin; }
  /// d(extent)/dc for a pin at coordinate c with its cached exponentials.
  [[nodiscard]] double grad(double c, double ep, double em) const {
    const double dMax = ep * (1.0 + (c - wMax) * invGamma) * invSumP;
    const double dMin = em * (1.0 - (c - wMin) * invGamma) * invSumM;
    return dMax - dMin;
  }
};

/// One axis of one net under the LSE model:
/// extent = gamma * (log sum e^{c/g} + log sum e^{-c/g}).
struct LseAxis {
  double sumExpPlus = 0.0, sumExpMinus = 0.0;
  double maxC = -std::numeric_limits<double>::max();
  double minC = std::numeric_limits<double>::max();
  double gamma = 0.0, invGamma = 0.0;

  void prepare(std::span<const double> coords, double g) {
    gamma = g;
    invGamma = 1.0 / g;
    for (double c : coords) {
      maxC = std::max(maxC, c);
      minC = std::min(minC, c);
    }
    for (double c : coords) {
      sumExpPlus += std::exp((c - maxC) * invGamma);
      sumExpMinus += std::exp((minC - c) * invGamma);
    }
  }
  [[nodiscard]] double extent() const {
    return gamma * (std::log(sumExpPlus) + std::log(sumExpMinus)) +
           (maxC - minC);
  }
  [[nodiscard]] double grad(double c) const {
    const double ep = std::exp((c - maxC) * invGamma) / sumExpPlus;
    const double em = std::exp((minC - c) * invGamma) / sumExpMinus;
    return ep - em;
  }
};

template <typename Axis>
double smoothWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                            std::span<double> gx, std::span<double> gy) {
  std::fill(gx.begin(), gx.end(), 0.0);
  std::fill(gy.begin(), gy.end(), 0.0);
  double total = 0.0;
  std::vector<double> px, py;
  for (const auto& net : view.db->nets) {
    if (net.pins.size() < 2) continue;
    px.clear();
    py.clear();
    for (const auto& pin : net.pins) {
      const Point p = view.pinPos(pin);
      px.push_back(p.x);
      py.push_back(p.y);
    }
    Axis ax, ay;
    ax.prepare(px, gammaX);
    ay.prepare(py, gammaY);
    total += net.weight * (ax.extent() + ay.extent());
    for (std::size_t k = 0; k < net.pins.size(); ++k) {
      const auto v = view.objToVar[static_cast<std::size_t>(net.pins[k].obj)];
      if (v < 0) continue;
      gx[static_cast<std::size_t>(v)] += net.weight * ax.grad(px[k]);
      gy[static_cast<std::size_t>(v)] += net.weight * ay.grad(py[k]);
    }
  }
  return total;
}

}  // namespace

double waWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                        std::span<double> gx, std::span<double> gy) {
  std::fill(gx.begin(), gx.end(), 0.0);
  std::fill(gy.begin(), gy.end(), 0.0);
  double total = 0.0;
  std::vector<double> px, py, epx, emx, epy, emy;
  for (const auto& net : view.db->nets) {
    const std::size_t deg = net.pins.size();
    if (deg < 2) continue;
    px.clear();
    py.clear();
    for (const auto& pin : net.pins) {
      const Point p = view.pinPos(pin);
      px.push_back(p.x);
      py.push_back(p.y);
    }
    if (epx.size() < deg) {
      epx.resize(deg);
      emx.resize(deg);
      epy.resize(deg);
      emy.resize(deg);
    }
    WaAxis ax, ay;
    ax.prepare(px.data(), deg, gammaX, epx.data(), emx.data());
    ay.prepare(py.data(), deg, gammaY, epy.data(), emy.data());
    total += net.weight * (ax.extent() + ay.extent());
    for (std::size_t k = 0; k < deg; ++k) {
      const auto v = view.objToVar[static_cast<std::size_t>(net.pins[k].obj)];
      if (v < 0) continue;
      gx[static_cast<std::size_t>(v)] +=
          net.weight * ax.grad(px[k], epx[k], emx[k]);
      gy[static_cast<std::size_t>(v)] +=
          net.weight * ay.grad(py[k], epy[k], emy[k]);
    }
  }
  return total;
}

double lseWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                         std::span<double> gx, std::span<double> gy) {
  return smoothWirelengthGrad<LseAxis>(view, gammaX, gammaY, gx, gy);
}

double waGammaSchedule(double binDim, double overflow) {
  const double t = std::clamp(overflow, 0.0, 1.0);
  return 8.0 * binDim * std::pow(10.0, (20.0 * t - 11.0) / 9.0);
}

WlEvaluator::WlEvaluator(const PlacementDB& db,
                         std::span<const std::int32_t> objToVar,
                         std::size_t numVars)
    : db_(&db) {
  const PlacementView& pv = db.view();
  assert(pv.built());
  netPinStart_ = pv.netPinStart();
  pinObj_ = pv.pinObj();
  pinOx_ = pv.pinOx();
  pinOy_ = pv.pinOy();
  netWeight_ = pv.netWeight();
  objLx_ = pv.lx();
  objLy_ = pv.ly();
  objW_ = pv.w();
  objH_ = pv.h();
  maxNetDegree_ = pv.maxNetDegree();

  ScratchArena& arena = pv.arena();
  pinGx_ = arena.doubles("wl.pinGx", pv.numPins());
  pinGy_ = arena.doubles("wl.pinGy", pv.numPins());
  pinX_ = arena.doubles("wl.pinX", pv.numPins());
  pinY_ = arena.doubles("wl.pinY", pv.numPins());
  perNet_ = arena.doubles("wl.perNet", pv.numNets());

  // Var -> pin-slot incidence. Each variable maps to at most one object,
  // and that object's objPinIds list is ascending global pin ids — i.e.
  // (net, pin) order, the accumulation order of the serial gradient loop.
  // Pins of nets with < 2 pins carry no gradient and are filtered out.
  const auto objPinStart = pv.objPinStart();
  const auto objPinIds = pv.objPinIds();
  const auto pinNet = pv.pinNet();
  const std::size_t nObj = pv.numObjects();
  auto liveDegree = [&](std::int32_t pid) {
    const auto n = static_cast<std::size_t>(pinNet[static_cast<std::size_t>(pid)]);
    return netPinStart_[n + 1] - netPinStart_[n];
  };
  varOffset_ = arena.ints("wl.varOffset", numVars + 1);
  std::fill(varOffset_.begin(), varOffset_.end(), 0);
  for (std::size_t i = 0; i < nObj; ++i) {
    const auto v = objToVar[i];
    if (v < 0) continue;
    std::int32_t c = 0;
    for (auto s = objPinStart[i]; s < objPinStart[i + 1]; ++s) {
      if (liveDegree(objPinIds[static_cast<std::size_t>(s)]) >= 2) ++c;
    }
    varOffset_[static_cast<std::size_t>(v) + 1] = c;
  }
  for (std::size_t v = 1; v <= numVars; ++v) varOffset_[v] += varOffset_[v - 1];
  varSlots_ = arena.ints(
      "wl.varSlots", static_cast<std::size_t>(varOffset_[numVars]));
  for (std::size_t i = 0; i < nObj; ++i) {
    const auto v = objToVar[i];
    if (v < 0) continue;
    auto at = static_cast<std::size_t>(varOffset_[static_cast<std::size_t>(v)]);
    for (auto s = objPinStart[i]; s < objPinStart[i + 1]; ++s) {
      const auto pid = objPinIds[static_cast<std::size_t>(s)];
      if (liveDegree(pid) >= 2) varSlots_[at++] = pid;
    }
  }
}

void WlEvaluator::ensureScratch(std::size_t parts) {
  if (scratch_.size() < parts) scratch_.resize(parts);
  const auto cap = static_cast<std::size_t>(maxNetDegree_);
  for (std::size_t t = 0; t < parts; ++t) {
    if (scratch_[t].epx.size() < cap) {
      scratch_[t].epx.resize(cap);
      scratch_[t].emx.resize(cap);
      scratch_[t].epy.resize(cap);
      scratch_[t].emy.resize(cap);
    }
  }
}

void WlEvaluator::fillPinPositions(const VarView& view, ThreadPool* pool) {
  // All-pin position gather: pin ids are contiguous per net in the view
  // CSR, so after this pass every per-net loop reads a dense slice of
  // pinX_/pinY_ instead of staging copies. Each pin is written
  // independently — any partition is bit-identical.
  auto fill = [&](std::size_t, std::size_t p0, std::size_t p1) {
    for (std::size_t pid = p0; pid < p1; ++pid) {
      const auto obj = static_cast<std::size_t>(pinObj_[pid]);
      const auto v = view.objToVar[obj];
      if (v >= 0) {
        pinX_[pid] = view.x[static_cast<std::size_t>(v)] + pinOx_[pid];
        pinY_[pid] = view.y[static_cast<std::size_t>(v)] + pinOy_[pid];
      } else {
        // Same FP expression as Object::center(), so results stay
        // bit-identical to VarView::pinPos.
        pinX_[pid] = objLx_[obj] + objW_[obj] * 0.5 + pinOx_[pid];
        pinY_[pid] = objLy_[obj] + objH_[obj] * 0.5 + pinOy_[pid];
      }
    }
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->parallelFor(pinX_.size(), fill, 1024);
  } else {
    fill(0, 0, pinX_.size());
  }
}

double WlEvaluator::waGrad(const VarView& view, double gammaX, double gammaY,
                           std::span<double> gx, std::span<double> gy,
                           ThreadPool* pool) {
  assert(db_ != nullptr && view.db == db_);
  assert(gx.size() + 1 == varOffset_.size() && gy.size() == gx.size());
  const std::size_t nNets = perNet_.size();
  const bool par = pool != nullptr && pool->threads() > 1;
  ensureScratch(par ? static_cast<std::size_t>(pool->threads()) : 1);
  fillPinPositions(view, pool);
  auto perNet = [&](std::size_t part, std::size_t n0, std::size_t n1) {
    auto& sc = scratch_[part];
    for (std::size_t n = n0; n < n1; ++n) {
      const auto pb = static_cast<std::size_t>(netPinStart_[n]);
      const auto pe = static_cast<std::size_t>(netPinStart_[n + 1]);
      const std::size_t deg = pe - pb;
      if (deg < 2) {
        perNet_[n] = 0.0;
        continue;
      }
      const double* px = pinX_.data() + pb;
      const double* py = pinY_.data() + pb;
      WaAxis ax, ay;
      ax.prepare(px, deg, gammaX, sc.epx.data(), sc.emx.data());
      ay.prepare(py, deg, gammaY, sc.epy.data(), sc.emy.data());
      const double wn = netWeight_[n];
      perNet_[n] = wn * (ax.extent() + ay.extent());
      for (std::size_t k = 0; k < deg; ++k) {
        pinGx_[pb + k] = wn * ax.grad(px[k], sc.epx[k], sc.emx[k]);
        pinGy_[pb + k] = wn * ay.grad(py[k], sc.epy[k], sc.emy[k]);
      }
    }
  };
  auto gather = [&](std::size_t, std::size_t v0, std::size_t v1) {
    for (std::size_t v = v0; v < v1; ++v) {
      double sx = 0.0, sy = 0.0;
      const auto s0 = static_cast<std::size_t>(varOffset_[v]);
      const auto s1 = static_cast<std::size_t>(varOffset_[v + 1]);
      for (std::size_t s = s0; s < s1; ++s) {
        const auto slot = static_cast<std::size_t>(varSlots_[s]);
        sx += pinGx_[slot];
        sy += pinGy_[slot];
      }
      gx[v] = sx;
      gy[v] = sy;
    }
  };
  if (par) {
    pool->parallelFor(nNets, perNet, 64);
    pool->parallelFor(gx.size(), gather, 512);
  } else {
    perNet(0, 0, nNets);
    gather(0, 0, gx.size());
  }
  double total = 0.0;
  for (std::size_t n = 0; n < nNets; ++n) {
    if (netPinStart_[n + 1] - netPinStart_[n] < 2) continue;
    total += perNet_[n];
  }
  return total;
}

double WlEvaluator::hpwl(const VarView& view, ThreadPool* pool) {
  assert(db_ != nullptr && view.db == db_);
  const std::size_t nNets = perNet_.size();
  // Unlike waGrad, HPWL reads each position exactly once, so the staged
  // fillPinPositions pass would be pure extra memory traffic — compute the
  // position inline in the min/max scan instead (same FP expressions as
  // fillPinPositions, so both paths stay bit-identical to VarView::pinPos).
  auto perNet = [&](std::size_t, std::size_t n0, std::size_t n1) {
    for (std::size_t n = n0; n < n1; ++n) {
      const auto pb = static_cast<std::size_t>(netPinStart_[n]);
      const auto pe = static_cast<std::size_t>(netPinStart_[n + 1]);
      if (pe == pb) {
        perNet_[n] = 0.0;
        continue;
      }
      double lx = std::numeric_limits<double>::max(), hx = -lx;
      double ly = lx, hy = -lx;
      for (std::size_t pid = pb; pid < pe; ++pid) {
        const auto obj = static_cast<std::size_t>(pinObj_[pid]);
        const auto v = view.objToVar[obj];
        double x, y;
        if (v >= 0) {
          x = view.x[static_cast<std::size_t>(v)] + pinOx_[pid];
          y = view.y[static_cast<std::size_t>(v)] + pinOy_[pid];
        } else {
          x = objLx_[obj] + objW_[obj] * 0.5 + pinOx_[pid];
          y = objLy_[obj] + objH_[obj] * 0.5 + pinOy_[pid];
        }
        lx = std::min(lx, x);
        hx = std::max(hx, x);
        ly = std::min(ly, y);
        hy = std::max(hy, y);
      }
      perNet_[n] = netWeight_[n] * ((hx - lx) + (hy - ly));
    }
  };
  if (pool != nullptr && pool->threads() > 1) {
    pool->parallelFor(nNets, perNet, 64);
  } else {
    perNet(0, 0, nNets);
  }
  double total = 0.0;
  for (std::size_t n = 0; n < nNets; ++n) {
    if (netPinStart_[n + 1] == netPinStart_[n]) continue;
    total += perNet_[n];
  }
  return total;
}

}  // namespace ep
