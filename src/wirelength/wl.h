// Wirelength models: exact HPWL (Eq. 1), the weighted-average smooth model
// (Eq. 3) with its analytic gradient, and the log-sum-exp model kept for
// ablation comparison. All smooth evaluations are numerically stabilized by
// per-net max subtraction so any gamma > 0 is safe.
#pragma once

#include <cstdint>
#include <span>

#include "model/netlist.h"

namespace ep {

/// Exact total HPWL from the object positions stored in the DB.
double hpwl(const PlacementDB& db);

/// HPWL of a single net from DB positions.
double netHpwl(const PlacementDB& db, const Net& net);

/// View mapping optimizer variables onto the netlist: objects with
/// objToVar[i] >= 0 take their center from (x,y)[objToVar[i]]; all others
/// (fixed objects) use the position stored in the DB.
struct VarView {
  const PlacementDB* db = nullptr;
  std::span<const std::int32_t> objToVar;
  std::span<const double> x;
  std::span<const double> y;

  [[nodiscard]] Point pinPos(const PinRef& p) const {
    const auto v = objToVar[static_cast<std::size_t>(p.obj)];
    if (v >= 0) {
      return {x[static_cast<std::size_t>(v)] + p.ox,
              y[static_cast<std::size_t>(v)] + p.oy};
    }
    const Point c = db->objects[static_cast<std::size_t>(p.obj)].center();
    return {c.x + p.ox, c.y + p.oy};
  }
};

/// Exact HPWL under the variable view.
double hpwl(const VarView& view);

/// Weighted-average smooth wirelength (Eq. 3) and gradient.
/// gx/gy are sized to the number of variables and are overwritten.
/// Net weights multiply both the value and the gradient.
double waWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                        std::span<double> gx, std::span<double> gy);

/// Log-sum-exp smooth wirelength [Naylor et al.] and gradient, same
/// contract as waWirelengthGrad. Used by the bell-shape baseline placer and
/// the smoothing-model ablation.
double lseWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                         std::span<double> gx, std::span<double> gy);

/// The ePlace/FFTPL gamma schedule: gamma = 8 * binDim * 10^{(20 tau - 11)/9}
/// so that gamma shrinks (the model sharpens toward HPWL) as the density
/// overflow tau decreases from 1 to 0.1 during mGP.
double waGammaSchedule(double binDim, double overflow);

}  // namespace ep
