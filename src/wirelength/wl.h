// Wirelength models: exact HPWL (Eq. 1), the weighted-average smooth model
// (Eq. 3) with its analytic gradient, and the log-sum-exp model kept for
// ablation comparison. All smooth evaluations are numerically stabilized by
// per-net max subtraction so any gamma > 0 is safe.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/netlist.h"
#include "util/parallel.h"

namespace ep {

/// Exact total HPWL from the object positions stored in the DB.
double hpwl(const PlacementDB& db);

/// HPWL of a single net from DB positions.
double netHpwl(const PlacementDB& db, const Net& net);

/// View mapping optimizer variables onto the netlist: objects with
/// objToVar[i] >= 0 take their center from (x,y)[objToVar[i]]; all others
/// (fixed objects) use the position stored in the DB.
struct VarView {
  const PlacementDB* db = nullptr;
  std::span<const std::int32_t> objToVar;
  std::span<const double> x;
  std::span<const double> y;

  [[nodiscard]] Point pinPos(const PinRef& p) const {
    const auto v = objToVar[static_cast<std::size_t>(p.obj)];
    if (v >= 0) {
      return {x[static_cast<std::size_t>(v)] + p.ox,
              y[static_cast<std::size_t>(v)] + p.oy};
    }
    const Point c = db->objects[static_cast<std::size_t>(p.obj)].center();
    return {c.x + p.ox, c.y + p.oy};
  }
};

/// Exact HPWL under the variable view.
double hpwl(const VarView& view);

/// Weighted-average smooth wirelength (Eq. 3) and gradient.
/// gx/gy are sized to the number of variables and are overwritten.
/// Net weights multiply both the value and the gradient.
double waWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                        std::span<double> gx, std::span<double> gy);

/// Log-sum-exp smooth wirelength [Naylor et al.] and gradient, same
/// contract as waWirelengthGrad. Used by the bell-shape baseline placer and
/// the smoothing-model ablation.
double lseWirelengthGrad(const VarView& view, double gammaX, double gammaY,
                         std::span<double> gx, std::span<double> gy);

/// The ePlace/FFTPL gamma schedule: gamma = 8 * binDim * 10^{(20 tau - 11)/9}
/// so that gamma shrinks (the model sharpens toward HPWL) as the density
/// overflow tau decreases from 1 to 0.1 during mGP.
double waGammaSchedule(double binDim, double overflow);

/// Reusable parallel evaluator for the WA gradient and exact HPWL, reading
/// topology straight from the PlacementView pin CSR (no private CSR build).
///
/// Determinism contract (see docs/PERFORMANCE.md): results are bit-identical
/// to the serial free functions for any thread count. Two phases:
///  1. per-net, embarrassingly parallel — each net writes its own weighted
///     value into perNet_ and its per-pin gradient contributions into fixed
///     pin slots (the view's global pin ids);
///  2. per-variable gather over a CSR incidence (varOffset_/varSlots_) whose
///     slots are stored in (net, pin) order — the exact accumulation order
///     of the serial loop — followed by a serial in-net-order fold of the
///     per-net values.
/// The incidence depends only on the view topology and the obj->var map, so
/// build the evaluator once per placement stage and reuse it. Scratch
/// buffers live in the view's ScratchArena under "wl." keys: a cGP-stage
/// evaluator reuses the mGP stage's allocations, and steady-state calls
/// perform no heap allocation. At most one evaluator per view may be live
/// at a time (the arena lease; see placement_view.h).
class WlEvaluator {
 public:
  WlEvaluator() = default;
  /// `objToVar` must outlive the evaluator only during construction; the
  /// netlist `db` must be finalize()d and outlive all calls. Nets with
  /// < 2 pins carry no gradient and are excluded from the incidence,
  /// matching the serial code. Fixed-object pin positions come from the
  /// view's SoA geometry — fresh by the view position contract.
  WlEvaluator(const PlacementDB& db, std::span<const std::int32_t> objToVar,
              std::size_t numVars);

  /// Parallel waWirelengthGrad. gx/gy must have numVars entries; every
  /// entry is overwritten. `pool == nullptr` (or 1 thread) runs serially.
  double waGrad(const VarView& view, double gammaX, double gammaY,
                std::span<double> gx, std::span<double> gy,
                ThreadPool* pool = nullptr);

  /// Parallel exact HPWL under the view, bit-identical to hpwl(view).
  double hpwl(const VarView& view, ThreadPool* pool = nullptr);

 private:
  void ensureScratch(std::size_t parts);
  /// Gather every pin's position under `view` into pinX_/pinY_ (pin ids
  /// are contiguous per net in the CSR, so the per-net kernels then read
  /// dense slices). Partition-independent per-pin writes.
  void fillPinPositions(const VarView& view, ThreadPool* pool);

  const PlacementDB* db_ = nullptr;
  // View topology (spans into the view; valid until the next finalize()).
  std::span<const std::int32_t> netPinStart_, pinObj_;
  std::span<const double> pinOx_, pinOy_, netWeight_;
  std::span<const double> objLx_, objLy_, objW_, objH_;
  std::int32_t maxNetDegree_ = 0;
  // Arena-backed ("wl." keys): incidence + per-call slot buffers.
  std::span<std::int32_t> varOffset_;  // numVars+1: CSR offsets
  std::span<std::int32_t> varSlots_;   // global pin ids, (net, pin) order
  std::span<double> pinGx_, pinGy_;    // per-pin-slot contributions
  std::span<double> pinX_, pinY_;      // per-pin positions under the view
  std::span<double> perNet_;           // per-net weighted value
  // Per-partition cached-exponential scratch, capacity >= maxNetDegree_ so
  // the hot loop never allocates; grown only on the orchestrating thread.
  struct PartScratch {
    std::vector<double> epx, emx, epy, emy;
  };
  std::vector<PartScratch> scratch_;
};

}  // namespace ep
