// mLG — annealing-based macro legalization (Sec. VI-A).
//
// Unlike floorplanning annealers that perturb an expression and then realize
// it, mLG drives macro motion directly: the mGP layout is near-legal, so
// only local shifts are needed and the shrunk design space suits SA.
//
// Cost (Eq. 14):  f = W(v) + mu_D * D(v) + mu_O * O_m(v)
//   W    total HPWL,
//   D    standard-cell area covered by macros (converts to wirelength later,
//        so mu_D = W/D statically equalizes the two),
//   O_m  macro overlap (with other macros and with fixed obstacles) — the
//        constraint; mu_O scales by kappa per outer iteration.
//
// Schedules exactly as published: temperature t_{j,k} = dfmax(j,k)/ln 2 with
// dfmax interpolated linearly from 0.03*kappa^j down to 1e-4*kappa^j across
// the inner loop (relative cost units); motion radius r_{j,0} =
// (R_x/sqrt(m)) * 0.05 * kappa^j, kappa = 1.5. Standard cells stay fixed.
// Macro positions snap to the row/site grid when rows exist, so a zero-
// overlap outcome is a legal macro layout.
#pragma once

#include <cstdint>

#include "model/netlist.h"

namespace ep {

class RuntimeContext;

struct MlgConfig {
  double kappa = 1.5;         ///< per-outer-iteration escalation (Sec. VI-A)
  int maxOuterIterations = 20;
  int innerIterations = 40;   ///< SA temperature steps per outer iteration
  int movesPerStep = 0;       ///< 0 = one attempt per macro per step
  double dfMaxStart = 0.03;   ///< accepted relative cost increase at k=0
  double dfMaxEnd = 1e-4;     ///< … at k=kmax
  double radiusFactor = 0.05; ///< r_{j,0} = Rx/sqrt(m) * radiusFactor * kappa^j
  /// Extension (paper Sec. III: ePlace "has the flexibility to integrate
  /// the rotational and flipping gradients" but disables them for contest
  /// protocol): allow 90-degree macro rotation / x-mirroring as SA moves.
  /// Pin offsets are transformed along with the shape.
  bool allowRotation = false;
  bool allowFlipping = false;
  double reorientProb = 0.15;  ///< chance a move is a reorientation
  std::uint64_t seed = 12345;
};

struct MlgResult {
  double hpwlBefore = 0.0, hpwlAfter = 0.0;
  double coverBefore = 0.0, coverAfter = 0.0;    // D(v)
  double overlapBefore = 0.0, overlapAfter = 0.0; // O_m(v)
  int outerIterations = 0;
  long attempted = 0, accepted = 0;
  bool legal = false;  ///< O_m == 0 at exit
};

/// Legalizes the movable macros of `db` in place. Standard cells are not
/// touched. Returns the before/after metrics of Fig. 5.
MlgResult legalizeMacros(PlacementDB& db, const MlgConfig& cfg = {},
                         RuntimeContext* ctx = nullptr);

}  // namespace ep
