// Standard-cell legalization: Tetris-style greedy row/segment assignment
// followed by Abacus-style per-segment clumping (least-squares positions
// under ordering constraints), with site snapping. This is the legalization
// half of cDP (the flow's final stage); macros and fixed objects are
// obstacles and must already be overlap-free (mLG guarantees that).
#pragma once

#include "model/netlist.h"

namespace ep {

class RuntimeContext;

struct LegalizeResult {
  bool success = false;        ///< every movable std cell was placed
  double hpwlBefore = 0.0;
  double hpwlAfter = 0.0;
  double avgDisplacement = 0.0;
  double maxDisplacement = 0.0;
  int unplaced = 0;
};

/// Legalizes all movable standard cells of `db` onto rows/sites in place.
/// Movable cells must have height equal to the row height (single-row
/// cells, as in the ISPD netlists); movable macros must have been fixed by
/// mLG beforehand.
LegalizeResult legalizeCells(PlacementDB& db, RuntimeContext* ctx = nullptr);

/// Fallback legalizer: the same Tetris-style greedy row/segment assignment
/// but WITHOUT the Abacus-style clumping refinement. Worse HPWL, but fewer
/// moving parts — the FlowSupervisor switches to it when legalizeCells
/// fails an invariant gate or exceeds its budget (docs/ROBUSTNESS.md). The
/// "legalize.displace" fault site lives in the clumping phase only, so this
/// path stays clean under injection.
LegalizeResult greedyLegalizeCells(PlacementDB& db,
                                   RuntimeContext* ctx = nullptr);

}  // namespace ep
