// Detail placement — the discrete optimization half of cDP. Operates on a
// legal layout and keeps it legal:
//   * per-segment local reordering: sliding windows of consecutive cells are
//     permuted and re-packed toward their ideal positions;
//   * global same-width cell swapping between rows when it reduces HPWL.
// Modeled on the detail placer role NTUplace3 fills for the paper's flow.
#pragma once

#include <cstdint>

#include "model/netlist.h"

namespace ep {

class RuntimeContext;

struct DetailConfig {
  int maxPasses = 3;
  int windowSize = 3;       ///< cells per reorder window
  int swapCandidates = 8;   ///< nearest same-width candidates per cell
  std::uint64_t seed = 99;
};

struct DetailResult {
  double hpwlBefore = 0.0;
  double hpwlAfter = 0.0;
  long reorders = 0;  ///< accepted window reorders
  long swaps = 0;     ///< accepted cross-row swaps
  int passes = 0;
};

/// Discretely improves the legal layout of `db` in place. Requires a legal
/// input (legalizeCells); the result stays legal.
DetailResult detailPlace(PlacementDB& db, const DetailConfig& cfg = {},
                         RuntimeContext* ctx = nullptr);

}  // namespace ep
