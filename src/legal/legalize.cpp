#include "legal/legalize.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "util/context.h"
#include "util/fault_injector.h"
#include "util/log.h"
#include "wirelength/wl.h"

namespace ep {

namespace {

struct Segment {
  double x0, x1;   // usable span (site aligned)
  double y;        // row bottom
  double cursor;   // next free x
  double siteX0, sitePitch;
  std::vector<std::int32_t> cells;  // placed cells, left to right
};

double snapUp(double x, double origin, double pitch) {
  return origin + std::ceil((x - origin) / pitch - 1e-9) * pitch;
}
double snapNearest(double x, double origin, double pitch) {
  return origin + std::round((x - origin) / pitch) * pitch;
}

/// Abacus-style clumping: minimize sum (x_i - target_i)^2 subject to
/// x_{i+1} >= x_i + w_i and [lo, hi] bounds. Classic cluster merge.
void clump(std::vector<double>& x, const std::vector<double>& target,
           const std::vector<double>& w, double lo, double hi) {
  const std::size_t n = x.size();
  if (n == 0) return;
  struct Cluster {
    double pos;     // optimal position of first cell
    double weight;  // number of cells
    double q;       // sum of (target_i - offset_i)
    double width;   // total width
  };
  std::vector<Cluster> stack;
  for (std::size_t i = 0; i < n; ++i) {
    Cluster c{target[i], 1.0, target[i], w[i]};
    // Merge with predecessors while overlapping.
    while (!stack.empty()) {
      Cluster& p = stack.back();
      double cPos = std::clamp(c.q / c.weight, lo, hi - c.width);
      const double pPos = std::clamp(p.q / p.weight, lo, hi - p.width);
      if (pPos + p.width <= cPos + 1e-12) break;
      // Merge c into p: cells of c sit at offset p.width within p.
      p.q += c.q - c.weight * p.width;
      p.weight += c.weight;
      p.width += c.width;
      c = p;
      stack.pop_back();
    }
    stack.push_back(c);
  }
  std::size_t i = 0;
  for (const auto& c : stack) {
    double pos = std::clamp(c.q / c.weight, lo, hi - c.width);
    const auto count = static_cast<std::size_t>(c.weight + 0.5);
    for (std::size_t k = 0; k < count; ++k) {
      x[i] = pos;
      pos += w[i];
      ++i;
    }
  }
}

/// Shared implementation: Tetris assignment always; the Abacus clumping
/// refinement only when `clumpToTargets` (legalizeCells). The greedy path
/// (greedyLegalizeCells) stops after Tetris — it is the supervisor's
/// fallback and deliberately avoids the clumping code and its
/// "legalize.displace" fault site.
LegalizeResult legalizeImpl(PlacementDB& db, bool clumpToTargets,
                            RuntimeContext& rc) {
  LegalizeResult res;
  res.hpwlBefore = hpwl(db);

  // Obstacles: fixed objects and macros (movable macros are legal & frozen
  // by mLG at this point, but may not have fixed=true yet). Flags from the
  // view SoA arrays; rects from the live object positions.
  const PlacementView& pv = db.view();
  const auto kinds = pv.kind();
  const auto fixedMask = pv.fixedMask();
  std::vector<Rect> obstacles;
  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    if (fixedMask[i] != 0 ||
        kinds[i] == static_cast<std::uint8_t>(ObjKind::kMacro)) {
      obstacles.push_back(db.objects[i].rect());
    }
  }

  // Build per-row free segments.
  std::vector<Segment> segments;
  for (const auto& row : db.rows) {
    const double ry0 = row.ly, ry1 = row.ly + row.height;
    std::vector<std::pair<double, double>> blocks;
    for (const auto& obs : obstacles) {
      if (obs.ly < ry1 - 1e-9 && obs.hy > ry0 + 1e-9) {
        blocks.emplace_back(obs.lx, obs.hx);
      }
    }
    std::sort(blocks.begin(), blocks.end());
    double cur = row.lx;
    const double rowEnd = row.hx();
    auto pushSegment = [&](double a, double b) {
      const double x0 = snapUp(a, row.lx, row.siteWidth);
      const double x1 = b;
      if (x1 - x0 >= row.siteWidth - 1e-9) {
        segments.push_back(
            {x0, x1, row.ly, x0, row.lx, row.siteWidth, {}});
      }
    };
    for (const auto& [bl, bh] : blocks) {
      if (bl > cur) pushSegment(cur, std::min(bl, rowEnd));
      cur = std::max(cur, bh);
      if (cur >= rowEnd) break;
    }
    if (cur < rowEnd) pushSegment(cur, rowEnd);
  }
  if (segments.empty()) {
    rc.log().warn("legalizeCells: no usable row segments");
    return res;
  }

  // Movable std cells sorted by x.
  std::vector<std::int32_t> cells;
  for (auto i : db.movable()) {
    if (kinds[static_cast<std::size_t>(i)] ==
        static_cast<std::uint8_t>(ObjKind::kStdCell)) {
      cells.push_back(i);
    }
  }
  std::sort(cells.begin(), cells.end(), [&](std::int32_t a, std::int32_t b) {
    return db.objects[static_cast<std::size_t>(a)].lx <
           db.objects[static_cast<std::size_t>(b)].lx;
  });

  // Remember the global-placement x targets before Tetris overwrites them;
  // clumping pulls cells back toward these.
  std::vector<double> gpX(db.objects.size(), 0.0);
  for (auto ci : cells) {
    gpX[static_cast<std::size_t>(ci)] =
        db.objects[static_cast<std::size_t>(ci)].lx;
  }

  // Tetris assignment.
  std::vector<std::int32_t> unplacedCells;
  double sumDisp = 0.0;
  for (auto ci : cells) {
    auto& o = db.objects[static_cast<std::size_t>(ci)];
    double bestCost = std::numeric_limits<double>::max();
    Segment* best = nullptr;
    double bestPos = 0.0;
    for (auto& seg : segments) {
      if (seg.x1 - seg.cursor < o.w - 1e-9) continue;
      double pos = std::max(seg.cursor, std::min(o.lx, seg.x1 - o.w));
      pos = snapUp(pos, seg.siteX0, seg.sitePitch);
      if (pos + o.w > seg.x1 + 1e-9) continue;
      const double cost = std::abs(pos - o.lx) + std::abs(seg.y - o.ly);
      if (cost < bestCost) {
        bestCost = cost;
        best = &seg;
        bestPos = pos;
      }
    }
    if (best == nullptr) {
      unplacedCells.push_back(ci);
      continue;
    }
    sumDisp += bestCost;
    res.maxDisplacement = std::max(res.maxDisplacement, bestCost);
    best->cells.push_back(ci);
    best->cursor = bestPos + o.w;
    o.lx = bestPos;
    o.ly = best->y;
  }

  // Second chance for cells the cursor heuristic could not host: the greedy
  // pass can leave usable gaps left of each segment cursor (it never places
  // left of the desired position). Fill those gaps first-fit by minimal
  // displacement.
  for (auto ci : unplacedCells) {
    auto& o = db.objects[static_cast<std::size_t>(ci)];
    Segment* best = nullptr;
    double bestPos = 0.0, bestCost = std::numeric_limits<double>::max();
    for (auto& seg : segments) {
      // Gaps between consecutive placed cells (cells are packed in x order).
      double gapStart = seg.x0;
      auto consider = [&](double gapEnd) {
        const double start = snapUp(gapStart, seg.siteX0, seg.sitePitch);
        if (gapEnd - start < o.w - 1e-9) return;
        const double pos =
            std::max(start, std::min(o.lx, gapEnd - o.w));
        const double snapped = snapUp(std::min(pos, gapEnd - o.w) - 1e-9,
                                      seg.siteX0, seg.sitePitch);
        const double fit = (snapped >= start - 1e-9 &&
                            snapped + o.w <= gapEnd + 1e-9)
                               ? snapped
                               : start;
        if (fit + o.w > gapEnd + 1e-9) return;
        const double cost = std::abs(fit - o.lx) + std::abs(seg.y - o.ly);
        if (cost < bestCost) {
          bestCost = cost;
          best = &seg;
          bestPos = fit;
        }
      };
      std::sort(seg.cells.begin(), seg.cells.end(),
                [&](std::int32_t a, std::int32_t b) {
                  return db.objects[static_cast<std::size_t>(a)].lx <
                         db.objects[static_cast<std::size_t>(b)].lx;
                });
      for (auto placed : seg.cells) {
        const auto& p = db.objects[static_cast<std::size_t>(placed)];
        consider(p.lx);
        gapStart = std::max(gapStart, p.lx + p.w);
      }
      consider(seg.x1);
    }
    if (best == nullptr) {
      ++res.unplaced;
      continue;
    }
    sumDisp += bestCost;
    res.maxDisplacement = std::max(res.maxDisplacement, bestCost);
    best->cells.push_back(ci);
    o.lx = bestPos;
    o.ly = best->y;
  }

  // Abacus clumping per segment toward the GP x targets, then site snap.
  for (auto& seg : segments) {
    if (!clumpToTargets) break;
    if (seg.cells.empty()) continue;
    std::sort(seg.cells.begin(), seg.cells.end(),
              [&](std::int32_t a, std::int32_t b) {
                return db.objects[static_cast<std::size_t>(a)].lx <
                       db.objects[static_cast<std::size_t>(b)].lx;
              });
    const std::size_t n = seg.cells.size();
    std::vector<double> x(n), target(n), w(n);
    for (std::size_t k = 0; k < n; ++k) {
      const auto& o = db.objects[static_cast<std::size_t>(seg.cells[k])];
      target[k] = gpX[static_cast<std::size_t>(seg.cells[k])];
      w[k] = o.w;
    }
    clump(x, target, w, seg.x0, seg.x1);
    // Snap left-to-right, then resolve right-edge overflow right-to-left.
    double prevEnd = seg.x0;
    for (std::size_t k = 0; k < n; ++k) {
      double pos = snapNearest(x[k], seg.siteX0, seg.sitePitch);
      if (pos < prevEnd - 1e-9) pos = snapUp(prevEnd, seg.siteX0, seg.sitePitch);
      x[k] = pos;
      prevEnd = pos + w[k];
    }
    double limit = seg.x1;
    for (std::size_t k = n; k-- > 0;) {
      if (x[k] + w[k] > limit + 1e-9) {
        x[k] = limit - w[k];
        x[k] = seg.siteX0 +
               std::floor((x[k] - seg.siteX0) / seg.sitePitch + 1e-9) *
                   seg.sitePitch;
      }
      limit = x[k];
    }
    for (std::size_t k = 0; k < n; ++k) {
      db.objects[static_cast<std::size_t>(seg.cells[k])].lx = x[k];
    }
  }

  // Fault site "legalize.displace": corrupts one clumped x-coordinate (NaN
  // or a spike flinging the cell out of the region) so the supervisor's
  // post-legalization invariant gate and greedy fallback are testable. Lives
  // in the clumping phase only — the greedy path stays clean.
  if (clumpToTargets) {
    FaultInjector& inj = rc.faults();
    if (inj.active() && !cells.empty()) {
      if (const FaultSpec* f = inj.fire("legalize.displace")) {
        std::vector<double> xs(cells.size());
        for (std::size_t k = 0; k < cells.size(); ++k) {
          xs[k] = db.objects[static_cast<std::size_t>(cells[k])].lx;
        }
        inj.corrupt(xs, *f);
        for (std::size_t k = 0; k < cells.size(); ++k) {
          db.objects[static_cast<std::size_t>(cells[k])].lx = xs[k];
        }
      }
    }
  }

  res.success = res.unplaced == 0;
  res.avgDisplacement =
      cells.empty() ? 0.0 : sumDisp / static_cast<double>(cells.size());
  res.hpwlAfter = hpwl(db);
  rc.log().info("%s: HPWL %.4g -> %.4g, avg disp %.3g, unplaced %d",
                clumpToTargets ? "legalize" : "legalize (greedy)",
                res.hpwlBefore, res.hpwlAfter, res.avgDisplacement,
                res.unplaced);
  return res;
}

}  // namespace

LegalizeResult legalizeCells(PlacementDB& db, RuntimeContext* ctx) {
  return legalizeImpl(db, /*clumpToTargets=*/true, resolveContext(ctx));
}

LegalizeResult greedyLegalizeCells(PlacementDB& db, RuntimeContext* ctx) {
  return legalizeImpl(db, /*clumpToTargets=*/false, resolveContext(ctx));
}

}  // namespace ep
