#include "legal/mlg.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "density/bingrid.h"
#include "util/context.h"
#include "util/log.h"
#include "util/rng.h"
#include "wirelength/wl.h"

namespace ep {

namespace {

/// Integrate a stamped-area map over a rectangle, assuming the stamped area
/// is uniformly spread within each bin (standard coverage approximation).
double integrateMap(const BinGrid& grid, std::span<const double> map,
                    const Rect& r) {
  const Rect c = r.intersect(grid.region());
  if (c.empty()) return 0.0;
  const double dx = grid.dx(), dy = grid.dy();
  const std::size_t x0 = grid.binX(c.lx), x1 = grid.binX(c.hx - 1e-12 * dx);
  const std::size_t y0 = grid.binY(c.ly), y1 = grid.binY(c.hy - 1e-12 * dy);
  const double invBinArea = 1.0 / grid.binArea();
  double total = 0.0;
  for (std::size_t iy = y0; iy <= y1; ++iy) {
    const double by0 = grid.region().ly + static_cast<double>(iy) * dy;
    const double oy = intervalOverlap(c.ly, c.hy, by0, by0 + dy);
    for (std::size_t ix = x0; ix <= x1; ++ix) {
      const double bx0 = grid.region().lx + static_cast<double>(ix) * dx;
      const double ox = intervalOverlap(c.lx, c.hx, bx0, bx0 + dx);
      total += map[iy * grid.nx() + ix] * (ox * oy * invBinArea);
    }
  }
  return total;
}

struct Annealer {
  PlacementDB& db;
  const MlgConfig& cfg;
  Rng rng;
  std::vector<std::int32_t> macros;       // movable macro object ids
  std::vector<Rect> obstacles;            // fixed objects
  BinGrid cellGrid;
  std::vector<double> cellArea;           // stamped std-cell area
  double rowY0 = 0.0, rowPitch = 0.0, siteX0 = 0.0, sitePitch = 0.0;
  bool snap = false;

  double wCur = 0.0, dCur = 0.0, omCur = 0.0;
  double muD = 1.0, muO = 1.0;
  bool reoriented = false;  // any accepted rotate/flip (view needs a rebuild)

  explicit Annealer(PlacementDB& dbIn, const MlgConfig& cfgIn)
      : db(dbIn),
        cfg(cfgIn),
        rng(cfgIn.seed),
        cellGrid(dbIn.region, 256, 256) {
    for (std::size_t i = 0; i < db.objects.size(); ++i) {
      const auto& o = db.objects[i];
      if (o.fixed) {
        obstacles.push_back(o.rect());
      } else if (o.kind == ObjKind::kMacro) {
        macros.push_back(static_cast<std::int32_t>(i));
      }
    }
    cellArea.assign(cellGrid.numBins(), 0.0);
    for (const auto& o : db.objects) {
      if (!o.fixed && o.kind == ObjKind::kStdCell) {
        cellGrid.stamp(o.rect(), o.area(), cellArea);
      }
    }
    if (!db.rows.empty()) {
      snap = true;
      rowY0 = db.rows.front().ly;
      rowPitch = db.rows.front().height;
      siteX0 = db.rows.front().lx;
      sitePitch = db.rows.front().siteWidth;
      for (const auto& r : db.rows) {
        rowY0 = std::min(rowY0, r.ly);
        siteX0 = std::min(siteX0, r.lx);
      }
    }
  }

  [[nodiscard]] double coverage(const Rect& r) const {
    return integrateMap(cellGrid, cellArea, r);
  }

  /// Overlap of macro `mi`'s rect `r` with all other macros and obstacles.
  [[nodiscard]] double overlapOf(std::size_t mi, const Rect& r) const {
    double total = 0.0;
    for (std::size_t j = 0; j < macros.size(); ++j) {
      if (j == mi) continue;
      total += r.overlapArea(
          db.objects[static_cast<std::size_t>(macros[j])].rect());
    }
    for (const auto& obs : obstacles) total += r.overlapArea(obs);
    return total;
  }

  [[nodiscard]] double wirelengthOf(std::int32_t obj) const {
    double w = 0.0;
    for (auto n : db.netsOf(obj)) {
      const auto& net = db.nets[static_cast<std::size_t>(n)];
      w += net.weight * netHpwl(db, net);
    }
    return w;
  }

  void computeTotals() {
    wCur = hpwl(db);
    dCur = 0.0;
    for (std::size_t i = 0; i < macros.size(); ++i) {
      dCur += coverage(db.objects[static_cast<std::size_t>(macros[i])].rect());
    }
    omCur = 0.0;
    for (std::size_t i = 0; i < macros.size(); ++i) {
      // Each macro-macro pair counted twice here; halve below. Obstacle
      // overlaps counted once per macro.
      const Rect r = db.objects[static_cast<std::size_t>(macros[i])].rect();
      for (std::size_t j = i + 1; j < macros.size(); ++j) {
        omCur += r.overlapArea(
            db.objects[static_cast<std::size_t>(macros[j])].rect());
      }
      for (const auto& obs : obstacles) omCur += r.overlapArea(obs);
    }
  }

  /// Snap a lower-left candidate onto the row/site grid, inside the region.
  [[nodiscard]] Point snapped(double lx, double ly, double w, double h) const {
    Point p = clampLowerLeft(lx, ly, w, h, db.region);
    if (!snap) return p;
    const double sx = std::round((p.x - siteX0) / sitePitch);
    const double sy = std::round((p.y - rowY0) / rowPitch);
    p.x = siteX0 + sx * sitePitch;
    p.y = rowY0 + sy * rowPitch;
    return clampLowerLeft(p.x, p.y, w, h, db.region);
  }

  /// Rotate a macro 90 degrees about its center: dims swap and every pin
  /// offset maps (ox, oy) -> (-oy, ox). `backward` applies the inverse.
  void rotate(std::int32_t obj, bool backward) {
    auto& o = db.objects[static_cast<std::size_t>(obj)];
    const Point c = o.center();
    std::swap(o.w, o.h);
    o.setCenter(c.x, c.y);
    for (auto n : db.netsOf(obj)) {
      for (auto& pin : db.nets[static_cast<std::size_t>(n)].pins) {
        if (pin.obj != obj) continue;
        const double ox = pin.ox, oy = pin.oy;
        if (backward) {
          pin.ox = oy;
          pin.oy = -ox;
        } else {
          pin.ox = -oy;
          pin.oy = ox;
        }
      }
    }
  }

  /// Mirror a macro about its vertical center line: pin offsets negate x.
  void flip(std::int32_t obj) {
    for (auto n : db.netsOf(obj)) {
      for (auto& pin : db.nets[static_cast<std::size_t>(n)].pins) {
        if (pin.obj == obj) pin.ox = -pin.ox;
      }
    }
  }

  enum class MoveKind { kShift, kRotate, kFlip };

  /// One proposed move of a random macro at relative temperature t and
  /// radius (rx, ry). Returns true when accepted.
  bool tryMove(double t, double rx, double ry) {
    const std::size_t mi = static_cast<std::size_t>(rng.below(macros.size()));
    auto& o = db.objects[static_cast<std::size_t>(macros[mi])];
    const double oldLx = o.lx, oldLy = o.ly;
    const Rect oldRect = o.rect();

    MoveKind kind = MoveKind::kShift;
    if ((cfg.allowRotation || cfg.allowFlipping) &&
        rng.chance(cfg.reorientProb)) {
      if (cfg.allowRotation && cfg.allowFlipping) {
        kind = rng.chance(0.5) ? MoveKind::kRotate : MoveKind::kFlip;
      } else {
        kind = cfg.allowRotation ? MoveKind::kRotate : MoveKind::kFlip;
      }
    }

    const double wOld = wirelengthOf(macros[mi]);
    const double dOld = coverage(oldRect);
    const double omOld = overlapOf(mi, oldRect);

    switch (kind) {
      case MoveKind::kShift: {
        const Point cand = snapped(oldLx + rng.uniform(-rx, rx),
                                   oldLy + rng.uniform(-ry, ry), o.w, o.h);
        if (cand.x == oldLx && cand.y == oldLy) return false;
        o.lx = cand.x;
        o.ly = cand.y;
        break;
      }
      case MoveKind::kRotate: {
        rotate(macros[mi], false);
        const Point cand = snapped(o.lx, o.ly, o.w, o.h);
        o.lx = cand.x;
        o.ly = cand.y;
        break;
      }
      case MoveKind::kFlip:
        flip(macros[mi]);
        break;
    }
    const Rect newRect = o.rect();

    const double wNew = wirelengthOf(macros[mi]);
    const double dNew = coverage(newRect);
    const double omNew = overlapOf(mi, newRect);

    const double dW = wNew - wOld;
    const double dD = dNew - dOld;
    const double dOm = omNew - omOld;
    const double df = dW + muD * dD + muO * dOm;
    const double fCur = wCur + muD * dCur + muO * omCur;
    const double rel = df / std::max(fCur, 1e-12);

    bool accept = rel <= 0.0;
    if (!accept && t > 0.0) accept = rng.uniform() < std::exp(-rel / t);
    if (accept) {
      wCur += dW;
      dCur += dD;
      omCur += dOm;
      // An accepted rotation/flip permanently edits dims / pin offsets,
      // leaving the PlacementView stale; the caller re-finalizes once at
      // the end (rejected moves revert below and need nothing).
      if (kind != MoveKind::kShift) reoriented = true;
      return true;
    }
    switch (kind) {
      case MoveKind::kShift:
        o.lx = oldLx;
        o.ly = oldLy;
        break;
      case MoveKind::kRotate:
        rotate(macros[mi], true);
        o.lx = oldLx;
        o.ly = oldLy;
        break;
      case MoveKind::kFlip:
        flip(macros[mi]);
        break;
    }
    return false;
  }
};

}  // namespace

MlgResult legalizeMacros(PlacementDB& db, const MlgConfig& cfg,
                         RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  MlgResult res;
  Annealer sa(db, cfg);
  if (sa.macros.empty()) {
    res.legal = true;
    return res;
  }

  // Snap macros to the grid up front so the initial state is on-lattice.
  for (auto m : sa.macros) {
    auto& o = db.objects[static_cast<std::size_t>(m)];
    const Point p = sa.snapped(o.lx, o.ly, o.w, o.h);
    o.lx = p.x;
    o.ly = p.y;
  }

  sa.computeTotals();
  res.hpwlBefore = sa.wCur;
  res.coverBefore = sa.dCur;
  res.overlapBefore = sa.omCur;

  // Static objective weight mu_D = W/D; constraint weight mu_O starts at a
  // tenth of the wirelength per unit overlap and escalates by kappa.
  sa.muD = sa.dCur > 0.0 ? sa.wCur / sa.dCur : 1.0;
  sa.muO = 0.1 * sa.wCur / std::max(sa.omCur, 1e-9);

  const double m = static_cast<double>(sa.macros.size());
  const int movesPerStep =
      cfg.movesPerStep > 0 ? cfg.movesPerStep
                           : static_cast<int>(sa.macros.size());

  const double kLn2 = std::log(2.0);
  int j = 0;
  for (; j < cfg.maxOuterIterations; ++j) {
    if (sa.omCur <= 1e-12) break;
    const double scale = std::pow(cfg.kappa, j);
    const double rx0 = db.region.width() / std::sqrt(m) * cfg.radiusFactor *
                       scale;
    const double ry0 = db.region.height() / std::sqrt(m) * cfg.radiusFactor *
                       scale;
    for (int k = 0; k < cfg.innerIterations; ++k) {
      const double frac = static_cast<double>(k) /
                          static_cast<double>(std::max(1, cfg.innerIterations - 1));
      const double dfMax =
          (cfg.dfMaxStart + (cfg.dfMaxEnd - cfg.dfMaxStart) * frac) * scale;
      const double t = dfMax / kLn2;
      // Radius anneals with the same linear profile down to 10%.
      const double rx = rx0 * (1.0 - 0.9 * frac);
      const double ry = ry0 * (1.0 - 0.9 * frac);
      for (int mv = 0; mv < movesPerStep; ++mv) {
        ++res.attempted;
        if (sa.tryMove(t, rx, ry)) ++res.accepted;
      }
    }
    sa.muO *= cfg.kappa;
    // Drift control: recompute totals so incremental error cannot build up.
    sa.computeTotals();
  }

  sa.computeTotals();
  res.hpwlAfter = sa.wCur;
  res.coverAfter = sa.dCur;
  res.overlapAfter = sa.omCur;
  res.outerIterations = j;
  res.legal = sa.omCur <= 1e-9;
  rc.log().info(
      "mLG: W %.4g -> %.4g, D %.4g -> %.4g, Om %.4g -> %.4g (%d outer)",
      res.hpwlBefore, res.hpwlAfter, res.coverBefore, res.coverAfter,
      res.overlapBefore, res.overlapAfter, j);
  // Accepted rotations/flips edited macro dims and pin offsets after
  // finalize(); rebuild the view so downstream consumers see fresh topology.
  if (sa.reoriented) db.finalize();
  return res;
}

}  // namespace ep
