#include "legal/detail.h"

#include <algorithm>
#include <map>
#include <vector>

#include "util/context.h"
#include "util/fault_injector.h"
#include "util/log.h"
#include "util/rng.h"
#include "wirelength/wl.h"

namespace ep {

namespace {

/// Sum of weighted HPWL over a set of net ids (deduplicated by the caller).
double netsHpwl(const PlacementDB& db, std::span<const std::int32_t> nets) {
  double w = 0.0;
  for (auto n : nets) {
    const auto& net = db.nets[static_cast<std::size_t>(n)];
    w += net.weight * netHpwl(db, net);
  }
  return w;
}

/// Deduplicated incident nets of `objs` into a caller-owned scratch vector
/// (the swap loop calls this per candidate pair; reuse keeps it off the
/// heap — netsOf() itself is an allocation-free CSR span).
void uniqueNetsOf(const PlacementDB& db,
                  std::initializer_list<std::int32_t> objs,
                  std::vector<std::int32_t>& nets) {
  nets.clear();
  for (auto o : objs) {
    const auto more = db.netsOf(o);
    nets.insert(nets.end(), more.begin(), more.end());
  }
  std::sort(nets.begin(), nets.end());
  nets.erase(std::unique(nets.begin(), nets.end()), nets.end());
}

}  // namespace

DetailResult detailPlace(PlacementDB& db, const DetailConfig& cfg,
                         RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  DetailResult res;
  res.hpwlBefore = hpwl(db);
  Rng rng(cfg.seed);

  // Obstacle x-intervals per row band: window packing must never slide a
  // cell across a fixed object or macro sitting inside the row. Flags come
  // from the view's SoA arrays, rects from the live object positions.
  const PlacementView& pv = db.view();
  const auto kinds = pv.kind();
  const auto fixedMask = pv.fixedMask();
  const auto isStdCell = [&](std::int32_t i) {
    return kinds[static_cast<std::size_t>(i)] ==
           static_cast<std::uint8_t>(ObjKind::kStdCell);
  };
  const double rowH = db.rows.empty() ? 1.0 : db.rows.front().height;
  std::vector<Rect> obstacleRects;
  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    if (fixedMask[i] != 0 ||
        kinds[i] == static_cast<std::uint8_t>(ObjKind::kMacro)) {
      obstacleRects.push_back(db.objects[i].rect());
    }
  }
  auto windowBlocked = [&](double y, double x0, double x1) {
    for (const auto& r : obstacleRects) {
      if (r.ly < y + rowH - 1e-9 && r.hy > y + 1e-9 && r.lx < x1 - 1e-9 &&
          r.hx > x0 + 1e-9) {
        return true;
      }
    }
    return false;
  };

  // Same-size buckets for cross-row swaps.
  std::map<std::pair<double, double>, std::vector<std::int32_t>> buckets;
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    if (isStdCell(i)) buckets[{o.w, o.h}].push_back(i);
  }

  // Window/swap scratch, hoisted so the inner loops reuse capacity
  // instead of allocating per window / per candidate pair.
  std::vector<std::int32_t> window, netIds, bestPerm, perm, swapNets;
  std::vector<double> savedX, bestX;

  for (int pass = 0; pass < cfg.maxPasses; ++pass) {
    long improvedThisPass = 0;

    // Rows of movable std cells, sorted by x — rebuilt per pass because
    // cross-row swaps move cells between rows.
    std::map<double, std::vector<std::int32_t>> rows;
    for (auto i : db.movable()) {
      const auto& o = db.objects[static_cast<std::size_t>(i)];
      if (isStdCell(i)) rows[o.ly].push_back(i);
    }
    for (auto& [y, cells] : rows) {
      std::sort(cells.begin(), cells.end(),
                [&](std::int32_t a, std::int32_t b) {
                  return db.objects[static_cast<std::size_t>(a)].lx <
                         db.objects[static_cast<std::size_t>(b)].lx;
                });
    }

    // --- Window reordering within each row ---
    const int win = std::max(2, cfg.windowSize);
    for (auto& [y, cells] : rows) {
      if (static_cast<int>(cells.size()) < win) continue;
      for (std::size_t s = 0; s + static_cast<std::size_t>(win) <= cells.size();
           ++s) {
        window.assign(cells.begin() + static_cast<std::ptrdiff_t>(s),
                      cells.begin() + static_cast<std::ptrdiff_t>(s) + win);
        // Window span: from the leftmost cell's lx to the right edge of the
        // last cell (gaps inside are preserved as trailing slack).
        const double x0 = db.objects[static_cast<std::size_t>(window.front())].lx;
        savedX.resize(window.size());
        netIds.clear();
        for (std::size_t k = 0; k < window.size(); ++k) {
          savedX[k] = db.objects[static_cast<std::size_t>(window[k])].lx;
          const auto more = db.netsOf(window[k]);
          netIds.insert(netIds.end(), more.begin(), more.end());
        }
        std::sort(netIds.begin(), netIds.end());
        netIds.erase(std::unique(netIds.begin(), netIds.end()), netIds.end());
        const double right =
            db.objects[static_cast<std::size_t>(window.back())].lx +
            db.objects[static_cast<std::size_t>(window.back())].w;
        if (windowBlocked(y, x0, right)) continue;

        const double before = netsHpwl(db, netIds);
        double best = before;
        bestPerm = window;
        bestX = savedX;

        perm = window;
        std::sort(perm.begin(), perm.end());
        do {
          // Pack the permutation tight from x0; reject if it spills past the
          // original right edge (cannot happen: same widths, tight packing).
          double cursor = x0;
          bool ok = true;
          for (auto ci : perm) {
            auto& o = db.objects[static_cast<std::size_t>(ci)];
            o.lx = cursor;
            cursor += o.w;
          }
          if (cursor > right + 1e-9) ok = false;
          if (ok) {
            const double after = netsHpwl(db, netIds);
            if (after < best - 1e-12) {
              best = after;
              bestPerm = perm;
              for (std::size_t k = 0; k < perm.size(); ++k) {
                bestX[k] = db.objects[static_cast<std::size_t>(perm[k])].lx;
              }
            }
          }
        } while (std::next_permutation(perm.begin(), perm.end()));

        // Restore or apply the winner.
        if (best < before - 1e-12) {
          for (std::size_t k = 0; k < bestPerm.size(); ++k) {
            db.objects[static_cast<std::size_t>(bestPerm[k])].lx = bestX[k];
          }
          std::copy(bestPerm.begin(), bestPerm.end(),
                    cells.begin() + static_cast<std::ptrdiff_t>(s));
          ++res.reorders;
          ++improvedThisPass;
        } else {
          for (std::size_t k = 0; k < window.size(); ++k) {
            db.objects[static_cast<std::size_t>(window[k])].lx = savedX[k];
          }
        }
      }
    }

    // --- Cross-row same-size swaps ---
    for (auto& [dims, group] : buckets) {
      if (group.size() < 2) continue;
      std::sort(group.begin(), group.end(), [&](std::int32_t a, std::int32_t b) {
        return db.objects[static_cast<std::size_t>(a)].lx <
               db.objects[static_cast<std::size_t>(b)].lx;
      });
      for (std::size_t k = 0; k < group.size(); ++k) {
        const std::size_t lim = std::min(
            group.size(), k + 1 + static_cast<std::size_t>(cfg.swapCandidates));
        for (std::size_t j = k + 1; j < lim; ++j) {
          auto& a = db.objects[static_cast<std::size_t>(group[k])];
          auto& b = db.objects[static_cast<std::size_t>(group[j])];
          if (a.lx == b.lx && a.ly == b.ly) continue;
          uniqueNetsOf(db, {group[k], group[j]}, swapNets);
          const double before = netsHpwl(db, swapNets);
          std::swap(a.lx, b.lx);
          std::swap(a.ly, b.ly);
          const double after = netsHpwl(db, swapNets);
          if (after < before - 1e-12) {
            ++res.swaps;
            ++improvedThisPass;
          } else {
            std::swap(a.lx, b.lx);
            std::swap(a.ly, b.ly);
          }
        }
      }
    }

    ++res.passes;
    if (improvedThisPass == 0) break;
  }

  // Fault site "detail.swap": corrupts one cell coordinate after the passes
  // (NaN or a spike breaking legality), modeling a buggy swap that escaped
  // the acceptance check. The supervisor's post-cDP gate must catch it and
  // roll the detail stage back (docs/ROBUSTNESS.md).
  {
    FaultInjector& inj = rc.faults();
    if (inj.active()) {
      std::vector<std::int32_t> cells;
      for (auto i : db.movable()) {
        if (isStdCell(i)) cells.push_back(i);
      }
      if (!cells.empty()) {
        if (const FaultSpec* f = inj.fire("detail.swap")) {
          std::vector<double> xs(cells.size());
          for (std::size_t k = 0; k < cells.size(); ++k) {
            xs[k] = db.objects[static_cast<std::size_t>(cells[k])].lx;
          }
          inj.corrupt(xs, *f);
          for (std::size_t k = 0; k < cells.size(); ++k) {
            db.objects[static_cast<std::size_t>(cells[k])].lx = xs[k];
          }
        }
      }
    }
  }

  res.hpwlAfter = hpwl(db);
  rc.log().info(
      "detail: HPWL %.4g -> %.4g (%ld reorders, %ld swaps, %d passes)",
      res.hpwlBefore, res.hpwlAfter, res.reorders, res.swaps, res.passes);
  return res;
}

}  // namespace ep
