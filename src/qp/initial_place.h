// Mixed-size initial placement (mIP, Sec. III): quadratic wirelength
// minimization only — no spreading. Produces the low-wirelength /
// high-overlap seed v_mIP that mGP starts from.
#pragma once

#include "model/netlist.h"

namespace ep {

class RuntimeContext;

struct InitialPlaceConfig {
  int outerIterations = 8;   ///< B2B rebuild count
  int cgMaxIterations = 300;
  double cgTolerance = 1e-6;
  /// Weight of the weak anchor to the region center added to every movable
  /// when the design has no fixed pins (keeps the system SPD).
  double fallbackAnchor = 1e-6;
  /// Deterministic jitter (fraction of region size) applied to the seed so
  /// the first B2B linearization has distinct bounds.
  double seedJitter = 1e-3;
  std::uint64_t seed = 1;
};

struct InitialPlaceResult {
  double hpwlBefore = 0.0;
  double hpwlAfter = 0.0;
  int totalCgIterations = 0;
};

/// Runs mIP: seeds every movable at the region center (with jitter), then
/// alternates B2B model construction and CG solves per axis. Updates object
/// positions in `db` (centers clamped into the region).
InitialPlaceResult quadraticInitialPlace(PlacementDB& db,
                                         const InitialPlaceConfig& cfg = {},
                                         RuntimeContext* ctx = nullptr);

}  // namespace ep
