// Bound-to-Bound (B2B) quadratic net model [Spindler et al., Kraftwerk2].
//
// For each net and axis the extreme pins (min and max) are identified from
// the *current* placement; every pin connects to both bounds with weight
//   w = 2 / ((P - 1) * |coord_p - coord_bound|)
// which makes the quadratic form's optimum reproduce the net's HPWL
// linearization at the linearization point. The mixed-size initial placement
// (mIP) and the quadratic baseline placer both iterate: build B2B at the
// current point, solve, repeat.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "model/netlist.h"
#include "qp/sparse.h"

namespace ep {

enum class Axis : std::uint8_t { kX, kY };

/// Builds the B2B system for one axis.
/// `objToVar` maps object index -> variable index (-1 = fixed; its pin
/// positions come from the DB). `pos` holds the current centers of the
/// variables on this axis (the linearization point).
/// Appends entries to `builder` and adds the linear terms to `rhs`.
void buildB2B(const PlacementDB& db, Axis axis,
              std::span<const std::int32_t> objToVar,
              std::span<const double> pos, CooBuilder& builder,
              std::span<double> rhs);

/// Quadratic wirelength of the current DB placement under the clique/B2B
/// hybrid used for reporting in tests:  sum over nets of
/// weight * ((max-min)^2 contributions). Exposed mainly for unit tests.
double quadraticNetCost(const PlacementDB& db);

}  // namespace ep
