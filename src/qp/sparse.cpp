#include "qp/sparse.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/stats.h"

namespace ep {

void Csr::multiply(std::span<const double> x, std::span<double> y) const {
  assert(x.size() == static_cast<std::size_t>(n));
  assert(y.size() == static_cast<std::size_t>(n));
  for (std::int32_t i = 0; i < n; ++i) {
    double s = 0.0;
    for (std::int32_t k = start[static_cast<std::size_t>(i)];
         k < start[static_cast<std::size_t>(i) + 1]; ++k) {
      s += val[static_cast<std::size_t>(k)] *
           x[static_cast<std::size_t>(col[static_cast<std::size_t>(k)])];
    }
    y[static_cast<std::size_t>(i)] = s;
  }
}

void CooBuilder::addDiag(std::int32_t i, double w) {
  entries_.push_back({i, i, w});
}

void CooBuilder::addOffDiag(std::int32_t i, std::int32_t j, double w) {
  entries_.push_back({i, j, w});
  entries_.push_back({j, i, w});
}

void CooBuilder::addSpring(std::int32_t i, std::int32_t j, double w) {
  addDiag(i, w);
  addDiag(j, w);
  addOffDiag(i, j, -w);
}

Csr CooBuilder::build() const {
  auto sorted = entries_;
  std::sort(sorted.begin(), sorted.end(), [](const Entry& a, const Entry& b) {
    return a.row != b.row ? a.row < b.row : a.col < b.col;
  });
  Csr m;
  m.n = n_;
  m.start.assign(static_cast<std::size_t>(n_) + 1, 0);
  for (std::size_t k = 0; k < sorted.size();) {
    std::size_t j = k;
    double sum = 0.0;
    while (j < sorted.size() && sorted[j].row == sorted[k].row &&
           sorted[j].col == sorted[k].col) {
      sum += sorted[j].val;
      ++j;
    }
    m.col.push_back(sorted[k].col);
    m.val.push_back(sum);
    ++m.start[static_cast<std::size_t>(sorted[k].row) + 1];
    k = j;
  }
  for (std::size_t i = 1; i < m.start.size(); ++i) m.start[i] += m.start[i - 1];
  return m;
}

CgResult cgSolve(const Csr& A, std::span<const double> b, std::span<double> x,
                 int maxIter, double tol) {
  const auto n = static_cast<std::size_t>(A.n);
  std::vector<double> diag(n, 1.0);
  for (std::int32_t i = 0; i < A.n; ++i) {
    for (std::int32_t k = A.start[static_cast<std::size_t>(i)];
         k < A.start[static_cast<std::size_t>(i) + 1]; ++k) {
      if (A.col[static_cast<std::size_t>(k)] == i) {
        const double d = A.val[static_cast<std::size_t>(k)];
        if (d > 0.0) diag[static_cast<std::size_t>(i)] = d;
      }
    }
  }

  std::vector<double> r(n), z(n), p(n), Ap(n);
  A.multiply(x, Ap);
  for (std::size_t i = 0; i < n; ++i) r[i] = b[i] - Ap[i];
  const double bNorm = std::max(norm2(b), 1e-30);

  for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
  std::copy(z.begin(), z.end(), p.begin());
  double rz = dot(r, z);

  CgResult res;
  for (int it = 0; it < maxIter; ++it) {
    res.iterations = it;
    if (norm2(r) / bNorm < tol) break;
    A.multiply(p, Ap);
    const double pAp = dot(p, Ap);
    if (pAp <= 0.0) break;  // numerical breakdown / not SPD
    const double alpha = rz / pAp;
    for (std::size_t i = 0; i < n; ++i) {
      x[i] += alpha * p[i];
      r[i] -= alpha * Ap[i];
    }
    for (std::size_t i = 0; i < n; ++i) z[i] = r[i] / diag[i];
    const double rzNew = dot(r, z);
    const double beta = rzNew / rz;
    rz = rzNew;
    for (std::size_t i = 0; i < n; ++i) p[i] = z[i] + beta * p[i];
  }
  res.residual = norm2(r) / bNorm;
  return res;
}

}  // namespace ep
