// Sparse symmetric linear algebra for the quadratic placement engine:
// a COO accumulator, a CSR matrix, and a Jacobi-preconditioned conjugate
// gradient solver. Sized for placement systems (n up to a few hundred
// thousand, a handful of entries per row from the B2B model).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace ep {

/// Compressed sparse row matrix (square).
struct Csr {
  std::int32_t n = 0;
  std::vector<std::int32_t> start;  // n+1
  std::vector<std::int32_t> col;
  std::vector<double> val;

  /// y = A x.
  void multiply(std::span<const double> x, std::span<double> y) const;
};

/// Accumulates symmetric quadratic-form entries and compresses to CSR.
/// Duplicate coordinates are summed during build.
class CooBuilder {
 public:
  explicit CooBuilder(std::int32_t n) : n_(n) {}

  /// A_ii += w.
  void addDiag(std::int32_t i, double w);
  /// A_ij += w and A_ji += w (call with the off-diagonal value, usually
  /// negative for a connection of weight -w... callers pass w directly).
  void addOffDiag(std::int32_t i, std::int32_t j, double w);
  /// Convenience: a two-movable spring of weight w
  /// (A_ii += w, A_jj += w, A_ij -= w, A_ji -= w).
  void addSpring(std::int32_t i, std::int32_t j, double w);

  [[nodiscard]] Csr build() const;
  [[nodiscard]] std::int32_t size() const { return n_; }
  void clear() { entries_.clear(); }

 private:
  struct Entry {
    std::int32_t row, col;
    double val;
  };
  std::int32_t n_;
  std::vector<Entry> entries_;
};

struct CgResult {
  int iterations = 0;
  double residual = 0.0;  ///< ||Ax-b|| / ||b||
};

/// Solve A x = b with Jacobi-preconditioned CG, starting from the x passed
/// in. A must be symmetric positive definite (the B2B system with at least
/// one fixed-pin anchor is).
CgResult cgSolve(const Csr& A, std::span<const double> b, std::span<double> x,
                 int maxIter = 300, double tol = 1e-6);

}  // namespace ep
