#include "qp/b2b.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

namespace ep {

namespace {

struct PinCoord {
  double coord;   // absolute pin coordinate on this axis
  double offset;  // pin offset from object center
  std::int32_t var;  // variable index or -1 when fixed
};

}  // namespace

void buildB2B(const PlacementDB& db, Axis axis,
              std::span<const std::int32_t> objToVar,
              std::span<const double> pos, CooBuilder& builder,
              std::span<double> rhs) {
  std::vector<PinCoord> pins;
  for (const auto& net : db.nets) {
    if (net.pins.size() < 2) continue;
    pins.clear();
    for (const auto& pin : net.pins) {
      const auto v = objToVar[static_cast<std::size_t>(pin.obj)];
      const double off = (axis == Axis::kX) ? pin.ox : pin.oy;
      double c;
      if (v >= 0) {
        c = pos[static_cast<std::size_t>(v)] + off;
      } else {
        const Point pc = db.objects[static_cast<std::size_t>(pin.obj)].center();
        c = ((axis == Axis::kX) ? pc.x : pc.y) + off;
      }
      pins.push_back({c, off, v});
    }
    std::size_t lo = 0, hi = 0;
    for (std::size_t k = 1; k < pins.size(); ++k) {
      if (pins[k].coord < pins[lo].coord) lo = k;
      if (pins[k].coord > pins[hi].coord) hi = k;
    }
    if (lo == hi) hi = (lo + 1) % pins.size();  // degenerate: all equal

    const double degScale =
        2.0 / (static_cast<double>(pins.size()) - 1.0) * net.weight;
    const double minSep = 1e-6;

    auto connect = [&](std::size_t a, std::size_t b) {
      if (a == b) return;
      const PinCoord& p = pins[a];
      const PinCoord& q = pins[b];
      if (p.var < 0 && q.var < 0) return;
      const double sep = std::max(std::abs(p.coord - q.coord), minSep);
      const double w = degScale / sep;
      if (p.var >= 0 && q.var >= 0) {
        builder.addSpring(p.var, q.var, w);
        // Offsets enter the linear term: w (x_p + op - x_q - oq)^2.
        rhs[static_cast<std::size_t>(p.var)] += w * (q.offset - p.offset);
        rhs[static_cast<std::size_t>(q.var)] += w * (p.offset - q.offset);
      } else {
        const PinCoord& mov = p.var >= 0 ? p : q;
        const PinCoord& fix = p.var >= 0 ? q : p;
        builder.addDiag(mov.var, w);
        rhs[static_cast<std::size_t>(mov.var)] +=
            w * (fix.coord - mov.offset);
      }
    };

    // Bound-bound connection plus every interior pin to both bounds.
    connect(lo, hi);
    for (std::size_t k = 0; k < pins.size(); ++k) {
      if (k == lo || k == hi) continue;
      connect(k, lo);
      connect(k, hi);
    }
  }
}

double quadraticNetCost(const PlacementDB& db) {
  double total = 0.0;
  for (const auto& net : db.nets) {
    if (net.pins.size() < 2) continue;
    double lx = std::numeric_limits<double>::max(), hx = -lx;
    double ly = lx, hy = -lx;
    for (const auto& pin : net.pins) {
      const Point p = db.pinPos(pin);
      lx = std::min(lx, p.x);
      hx = std::max(hx, p.x);
      ly = std::min(ly, p.y);
      hy = std::max(hy, p.y);
    }
    total += net.weight * ((hx - lx) * (hx - lx) + (hy - ly) * (hy - ly));
  }
  return total;
}

}  // namespace ep
