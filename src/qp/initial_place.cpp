#include "qp/initial_place.h"

#include <algorithm>
#include <cmath>

#include "qp/b2b.h"
#include "qp/sparse.h"
#include "util/context.h"
#include "util/log.h"
#include "util/rng.h"
#include "wirelength/wl.h"

namespace ep {

InitialPlaceResult quadraticInitialPlace(PlacementDB& db,
                                         const InitialPlaceConfig& cfg,
                                         RuntimeContext* ctx) {
  RuntimeContext& rc = resolveContext(ctx);
  InitialPlaceResult result;
  result.hpwlBefore = hpwl(db);

  const auto& movable = db.movable();
  const auto n = static_cast<std::int32_t>(movable.size());
  if (n == 0) {
    result.hpwlAfter = result.hpwlBefore;
    return result;
  }

  std::vector<std::int32_t> objToVar(db.objects.size(), -1);
  for (std::int32_t v = 0; v < n; ++v) {
    objToVar[static_cast<std::size_t>(movable[static_cast<std::size_t>(v)])] = v;
  }

  // Seed: region center plus deterministic jitter.
  const Point c = db.region.center();
  Rng rng(cfg.seed);
  std::vector<double> x(static_cast<std::size_t>(n)),
      y(static_cast<std::size_t>(n));
  const double jx = cfg.seedJitter * db.region.width();
  const double jy = cfg.seedJitter * db.region.height();
  for (std::int32_t v = 0; v < n; ++v) {
    x[static_cast<std::size_t>(v)] = c.x + rng.uniform(-jx, jx);
    y[static_cast<std::size_t>(v)] = c.y + rng.uniform(-jy, jy);
  }

  bool hasFixedPin = false;
  for (const auto& net : db.nets) {
    for (const auto& pin : net.pins) {
      if (db.objects[static_cast<std::size_t>(pin.obj)].fixed) {
        hasFixedPin = true;
        break;
      }
    }
    if (hasFixedPin) break;
  }

  auto solveAxis = [&](Axis axis, std::vector<double>& pos) {
    CooBuilder builder(n);
    std::vector<double> rhs(static_cast<std::size_t>(n), 0.0);
    buildB2B(db, axis, objToVar, pos, builder, rhs);
    if (!hasFixedPin) {
      const double anchorPos = (axis == Axis::kX) ? c.x : c.y;
      for (std::int32_t v = 0; v < n; ++v) {
        builder.addDiag(v, cfg.fallbackAnchor);
        rhs[static_cast<std::size_t>(v)] += cfg.fallbackAnchor * anchorPos;
      }
    }
    const Csr A = builder.build();
    const CgResult cg =
        cgSolve(A, rhs, pos, cfg.cgMaxIterations, cfg.cgTolerance);
    result.totalCgIterations += cg.iterations;
  };

  for (int it = 0; it < cfg.outerIterations; ++it) {
    solveAxis(Axis::kX, x);
    solveAxis(Axis::kY, y);
  }

  // Write back, clamping centers so every object stays inside the region.
  // (Objects larger than the region — not seen in practice — sit centered.)
  auto clampOrMid = [](double v, double lo, double hi) {
    return lo > hi ? 0.5 * (lo + hi) : std::clamp(v, lo, hi);
  };
  for (std::int32_t v = 0; v < n; ++v) {
    auto& o = db.objects[static_cast<std::size_t>(
        movable[static_cast<std::size_t>(v)])];
    const double cx =
        clampOrMid(x[static_cast<std::size_t>(v)], db.region.lx + o.w * 0.5,
                   db.region.hx - o.w * 0.5);
    const double cy =
        clampOrMid(y[static_cast<std::size_t>(v)], db.region.ly + o.h * 0.5,
                   db.region.hy - o.h * 0.5);
    o.setCenter(cx, cy);
  }

  result.hpwlAfter = hpwl(db);
  rc.log().info("mIP: HPWL %.4g -> %.4g (%d CG iterations)",
                result.hpwlBefore, result.hpwlAfter,
                result.totalCgIterations);
  return result;
}

}  // namespace ep
