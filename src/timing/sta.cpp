#include "timing/sta.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "util/log.h"

namespace ep {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

struct Edge {
  std::int32_t from, to;
  double delay;
  std::int32_t net;
};

}  // namespace

double StaResult::criticality(std::size_t net) const {
  const double s = netSlack[net];
  if (!std::isfinite(s) || clockPeriod <= 0.0) return 0.0;
  return std::clamp((clockPeriod - s) / clockPeriod, 0.0, 1.0);
}

StaResult staAnalyze(const PlacementDB& db, double clockPeriod) {
  const std::size_t n = db.objects.size();
  StaResult res;
  res.arrival.assign(n, 0.0);
  res.required.assign(n, kInf);
  res.netSlack.assign(db.nets.size(), kInf);

  // Timing edges: driver pin -> each sink pin, Manhattan wire delay.
  std::vector<Edge> edges;
  std::vector<std::vector<std::int32_t>> out(n), in(n);
  for (std::size_t e = 0; e < db.nets.size(); ++e) {
    const auto& net = db.nets[e];
    if (net.pins.size() < 2) continue;
    std::size_t driver = 0;
    for (std::size_t k = 0; k < net.pins.size(); ++k) {
      if (net.pins[k].dir == PinDir::kOutput) {
        driver = k;
        break;
      }
    }
    const Point dp = db.pinPos(net.pins[driver]);
    for (std::size_t k = 0; k < net.pins.size(); ++k) {
      if (k == driver) continue;
      if (net.pins[k].obj == net.pins[driver].obj) continue;
      const Point sp = db.pinPos(net.pins[k]);
      const double delay = std::abs(sp.x - dp.x) + std::abs(sp.y - dp.y);
      const auto id = static_cast<std::int32_t>(edges.size());
      edges.push_back({net.pins[driver].obj, net.pins[k].obj, delay,
                       static_cast<std::int32_t>(e)});
      out[static_cast<std::size_t>(net.pins[driver].obj)].push_back(id);
      in[static_cast<std::size_t>(net.pins[k].obj)].push_back(id);
    }
  }

  // Levelize (Kahn); leftover nodes belong to combinational cycles and are
  // appended in index order — their unresolved incoming edges are cut.
  std::vector<std::int32_t> indeg(n, 0);
  for (const auto& e : edges) ++indeg[static_cast<std::size_t>(e.to)];
  std::deque<std::int32_t> ready;
  for (std::size_t v = 0; v < n; ++v) {
    if (indeg[v] == 0) ready.push_back(static_cast<std::int32_t>(v));
  }
  std::vector<std::int32_t> order;
  order.reserve(n);
  std::vector<char> placedInOrder(n, 0);
  while (!ready.empty()) {
    const auto v = ready.front();
    ready.pop_front();
    order.push_back(v);
    placedInOrder[static_cast<std::size_t>(v)] = 1;
    for (auto eid : out[static_cast<std::size_t>(v)]) {
      const auto to = static_cast<std::size_t>(edges[static_cast<std::size_t>(eid)].to);
      if (--indeg[to] == 0) ready.push_back(static_cast<std::int32_t>(to));
    }
  }
  for (std::size_t v = 0; v < n; ++v) {
    if (!placedInOrder[v]) order.push_back(static_cast<std::int32_t>(v));
  }
  std::vector<std::int32_t> rank(n);
  for (std::size_t i = 0; i < n; ++i) {
    rank[static_cast<std::size_t>(order[i])] = static_cast<std::int32_t>(i);
  }
  auto isCut = [&](const Edge& e) {
    return rank[static_cast<std::size_t>(e.from)] >=
           rank[static_cast<std::size_t>(e.to)];
  };
  for (const auto& e : edges) res.cutCycleEdges += isCut(e) ? 1 : 0;
  if (res.cutCycleEdges > 0) {
    logDebug("staAnalyze: cut %d combinational-loop edges",
             res.cutCycleEdges);
  }

  // Forward: arrival times.
  for (auto v : order) {
    for (auto eid : out[static_cast<std::size_t>(v)]) {
      const Edge& e = edges[static_cast<std::size_t>(eid)];
      if (isCut(e)) continue;
      auto& a = res.arrival[static_cast<std::size_t>(e.to)];
      a = std::max(a, res.arrival[static_cast<std::size_t>(e.from)] + e.delay);
    }
  }
  for (double a : res.arrival) res.maxDelay = std::max(res.maxDelay, a);
  res.clockPeriod = clockPeriod > 0.0 ? clockPeriod : res.maxDelay;
  if (res.clockPeriod <= 0.0) res.clockPeriod = 1.0;  // netless designs

  // Backward: required times from endpoints.
  for (std::size_t v = 0; v < n; ++v) {
    bool hasLiveOut = false;
    for (auto eid : out[v]) {
      if (!isCut(edges[static_cast<std::size_t>(eid)])) hasLiveOut = true;
    }
    if (!hasLiveOut) res.required[v] = res.clockPeriod;
  }
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    for (auto eid : in[static_cast<std::size_t>(*it)]) {
      const Edge& e = edges[static_cast<std::size_t>(eid)];
      if (isCut(e)) continue;
      auto& r = res.required[static_cast<std::size_t>(e.from)];
      r = std::min(r, res.required[static_cast<std::size_t>(e.to)] - e.delay);
    }
  }

  // Slacks.
  double minSlack = kInf;
  for (const auto& e : edges) {
    if (isCut(e)) continue;
    const double slack = res.required[static_cast<std::size_t>(e.to)] -
                         res.arrival[static_cast<std::size_t>(e.from)] -
                         e.delay;
    auto& ns = res.netSlack[static_cast<std::size_t>(e.net)];
    ns = std::min(ns, slack);
    minSlack = std::min(minSlack, slack);
  }
  res.wns = std::isfinite(minSlack) ? std::min(0.0, minSlack) : 0.0;
  for (std::size_t v = 0; v < n; ++v) {
    if (res.required[v] == res.clockPeriod) {  // endpoint
      res.tns -= std::max(0.0, res.arrival[v] - res.clockPeriod);
    }
  }
  return res;
}

}  // namespace ep
