// Static timing analysis "lite" — the substrate for the timing-driven
// extension the paper's conclusion names as future work.
//
// Model: each net's output pin drives its input pins; the edge delay is the
// Manhattan distance between the two pin locations (linear wire-delay
// model, i.e. buffered interconnect, the standard abstraction at the
// placement level). Objects are combinational: arrival propagates straight
// through. Start points are objects with no incoming edges (e.g. input
// pads); end points have no outgoing edges. Combinational cycles — which a
// synthetic or malformed netlist may contain, real designs break them with
// registers — are cut deterministically during levelization and reported.
#pragma once

#include <cstdint>
#include <vector>

#include "model/netlist.h"

namespace ep {

struct StaResult {
  /// Arrival time per object (worst input-path delay).
  std::vector<double> arrival;
  /// Required time per object (against the clock period).
  std::vector<double> required;
  /// Worst slack over the edges of each net (one entry per net; nets
  /// without a timing edge get +inf).
  std::vector<double> netSlack;
  double clockPeriod = 0.0;
  double maxDelay = 0.0;  ///< critical-path delay
  double wns = 0.0;       ///< worst negative slack (0 when all paths meet)
  double tns = 0.0;       ///< total negative slack (sum over endpoints)
  int cutCycleEdges = 0;  ///< combinational-loop edges ignored

  /// Criticality of a net in [0, 1]: 1 = on the critical path.
  [[nodiscard]] double criticality(std::size_t net) const;
};

/// Runs STA on the current placement. `clockPeriod` <= 0 means "auto":
/// 1.0x the critical-path delay (so wns = 0 and criticalities are relative).
StaResult staAnalyze(const PlacementDB& db, double clockPeriod = 0.0);

}  // namespace ep
