// Timing-driven placement — the paper's other future-work direction
// (Sec. VIII). The classic net-weighting loop: place, analyze timing,
// raise the weights of timing-critical nets (w = 1 + alpha * crit^2, the
// standard quadratic criticality weighting), place again. The smooth
// wirelength objective (Eq. 3/4) already honors net weights, so the whole
// ePlace engine becomes timing-aware with no optimizer changes.
#pragma once

#include "eplace/flow.h"
#include "model/netlist.h"
#include "timing/sta.h"

namespace ep {

struct TimingDrivenConfig {
  int rounds = 2;          ///< reweight/replace iterations after the seed run
  double alpha = 4.0;      ///< weight gain on fully critical nets
  double clockFactor = 1.05;  ///< clock = factor * seed-run critical path
  FlowConfig flow;
};

struct TimingDrivenResult {
  double clockPeriod = 0.0;
  double wnsBefore = 0.0, wnsAfter = 0.0;
  double tnsBefore = 0.0, tnsAfter = 0.0;
  double maxDelayBefore = 0.0, maxDelayAfter = 0.0;
  double hpwlBefore = 0.0, hpwlAfter = 0.0;
  int rounds = 0;
  bool legal = false;
};

/// Places `db` timing-driven: a seed flow run fixes the clock target, then
/// each round reweights nets by criticality and re-places. Net weights are
/// restored to their input values before returning (the placement keeps the
/// benefit; the netlist stays unmodified).
TimingDrivenResult timingDrivenPlace(PlacementDB& db,
                                     const TimingDrivenConfig& cfg = {});

}  // namespace ep
