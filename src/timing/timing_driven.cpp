#include "timing/timing_driven.h"

#include <cmath>

#include "eval/metrics.h"
#include "util/log.h"
#include "wirelength/wl.h"

namespace ep {

TimingDrivenResult timingDrivenPlace(PlacementDB& db,
                                     const TimingDrivenConfig& cfg) {
  TimingDrivenResult res;

  // Seed run fixes the clock target.
  runEplaceFlow(db, cfg.flow);
  {
    const StaResult seed = staAnalyze(db);
    res.clockPeriod = cfg.clockFactor * seed.maxDelay;
  }
  const StaResult before = staAnalyze(db, res.clockPeriod);
  res.wnsBefore = before.wns;
  res.tnsBefore = before.tns;
  res.maxDelayBefore = before.maxDelay;
  res.hpwlBefore = hpwl(db);

  std::vector<double> origWeight(db.nets.size());
  for (std::size_t e = 0; e < db.nets.size(); ++e) {
    origWeight[e] = db.nets[e].weight;
  }
  auto savePositions = [&] {
    std::vector<Point> p(db.objects.size());
    for (std::size_t i = 0; i < db.objects.size(); ++i) {
      p[i] = {db.objects[i].lx, db.objects[i].ly};
    }
    return p;
  };
  auto restorePositions = [&](const std::vector<Point>& p) {
    for (std::size_t i = 0; i < db.objects.size(); ++i) {
      db.objects[i].lx = p[i].x;
      db.objects[i].ly = p[i].y;
    }
  };

  std::vector<Point> best = savePositions();
  double bestWns = before.wns, bestTns = before.tns;

  for (int round = 0; round < cfg.rounds; ++round) {
    const StaResult sta = staAnalyze(db, res.clockPeriod);
    for (std::size_t e = 0; e < db.nets.size(); ++e) {
      const double crit = sta.criticality(e);
      db.nets[e].weight = origWeight[e] * (1.0 + cfg.alpha * crit * crit);
    }
    runEplaceFlow(db, cfg.flow);
    ++res.rounds;

    const StaResult now = staAnalyze(db, res.clockPeriod);
    logInfo("timing round %d: wns %.4g -> %.4g, tns %.4g -> %.4g", round,
            bestWns, now.wns, bestTns, now.tns);
    if (now.wns > bestWns || (now.wns == bestWns && now.tns > bestTns)) {
      bestWns = now.wns;
      bestTns = now.tns;
      best = savePositions();
    }
  }

  for (std::size_t e = 0; e < db.nets.size(); ++e) {
    db.nets[e].weight = origWeight[e];
  }
  restorePositions(best);

  const StaResult after = staAnalyze(db, res.clockPeriod);
  res.wnsAfter = after.wns;
  res.tnsAfter = after.tns;
  res.maxDelayAfter = after.maxDelay;
  res.hpwlAfter = hpwl(db);
  res.legal = checkLegality(db).legal;
  logInfo("timing-driven: wns %.4g -> %.4g, maxDelay %.4g -> %.4g, HPWL "
          "%.4g -> %.4g",
          res.wnsBefore, res.wnsAfter, res.maxDelayBefore, res.maxDelayAfter,
          res.hpwlBefore, res.hpwlAfter);
  return res;
}

}  // namespace ep
