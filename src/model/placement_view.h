// Flat structure-of-arrays core shared by every kernel layer.
//
// PlacementView is the cache-friendly mirror of PlacementDB that the hot
// loops actually sweep: contiguous geometry arrays (lx/ly/w/h/area split
// from names and flags), a movable-index remap, one canonical pin CSR
// (net->pins and object->pins) plus the object->nets CSR, and a keyed
// scratch arena that lets the Nesterov loop run with zero heap
// allocations after warm-up.
//
// Lifetime and ownership rules (docs/ARCHITECTURE.md has the diagram):
//  * Topology (CSRs, remap, dims) is immutable between finalize() calls.
//    PlacementDB::finalize() rebuilds the view; anything that edits nets,
//    pins or object dims afterwards must re-finalize before the next
//    view consumer runs (the flow does this when freezing macros).
//  * Positions (lx/ly) are mutable: syncPositionsFromDb() refreshes them
//    from the objects and pushPositionsToDb() writes them back. During
//    global placement the optimizer owns movable positions; the view's
//    copies are only authoritative for FIXED objects, which never move
//    after finalize.
//  * Spans returned by accessors point into the view and are valid until
//    the next finalize()/build(). netsOf() spans share that lifetime.
//  * The arena is single-threaded: request buffers from the orchestrating
//    thread only, never from inside a parallelFor body.
#pragma once

#include <cstddef>
#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "util/memory_budget.h"

namespace ep {

class PlacementDB;

/// Keyed bump-free scratch pool. Each (type, key) pair names one buffer
/// that is resized on request but never shrunk, so a steady-state caller
/// that asks for the same key with a non-growing size gets the same
/// storage back with no allocation. growthEvents() counts reallocation
/// (growth) events so tests can assert reuse-without-growth.
class ScratchArena {
 public:
  /// Borrow a double buffer named `key`, resized to n elements. Contents
  /// are unspecified (previous contents or garbage) — callers must fill.
  std::span<double> doubles(std::string_view key, std::size_t n);
  /// Same for int32 buffers.
  std::span<std::int32_t> ints(std::string_view key, std::size_t n);

  [[nodiscard]] std::size_t bufferCount() const {
    return d_.size() + i_.size();
  }
  [[nodiscard]] std::size_t capacityBytes() const;
  /// Number of times a request outgrew its key's capacity since
  /// construction (growth == heap traffic). Flat counter == full reuse.
  [[nodiscard]] long growthEvents() const { return growth_; }

  /// Attaches a memory budget: every growth event charges exactly the new
  /// bytes it reserves *before* allocating, throwing MemoryBudgetExceeded
  /// on a breach (the supervisor converts it to kResourceExhausted at the
  /// stage boundary). Steady-state borrows — the only thing kernels do
  /// after warm-up — never touch the budget. nullptr detaches.
  void setBudget(MemoryBudget* budget) { budget_ = budget; }
  [[nodiscard]] MemoryBudget* budget() const { return budget_; }

 private:
  std::map<std::string, std::vector<double>, std::less<>> d_;
  std::map<std::string, std::vector<std::int32_t>, std::less<>> i_;
  long growth_ = 0;
  MemoryBudget* budget_ = nullptr;  // not owned; context outlives the view
};

/// Immutable-topology, mutable-position SoA snapshot of a PlacementDB.
/// Built by PlacementDB::finalize(); reached via PlacementDB::view().
class PlacementView {
 public:
  /// (Re)build every array from the DB. Called by PlacementDB::finalize().
  void build(const PlacementDB& db);
  [[nodiscard]] bool built() const { return built_; }

  // --- counts ---------------------------------------------------------------
  [[nodiscard]] std::size_t numObjects() const { return w_.size(); }
  [[nodiscard]] std::size_t numNets() const {
    return netPinStart_.empty() ? 0 : netPinStart_.size() - 1;
  }
  [[nodiscard]] std::size_t numPins() const { return pinObj_.size(); }
  [[nodiscard]] std::size_t numMovable() const { return movable_.size(); }

  // --- object geometry (object-indexed) -------------------------------------
  [[nodiscard]] std::span<const double> w() const { return w_; }
  [[nodiscard]] std::span<const double> h() const { return h_; }
  [[nodiscard]] std::span<const double> area() const { return area_; }
  /// Lower-left corners. Fixed entries are always fresh; movable entries
  /// are only current after syncPositionsFromDb() (see header comment).
  [[nodiscard]] std::span<const double> lx() const { return lx_; }
  [[nodiscard]] std::span<const double> ly() const { return ly_; }
  /// static_cast<std::uint8_t>(ObjKind) per object (no netlist.h include).
  [[nodiscard]] std::span<const std::uint8_t> kind() const { return kind_; }
  /// 1 for fixed objects, 0 for movable.
  [[nodiscard]] std::span<const std::uint8_t> fixedMask() const {
    return fixed_;
  }
  [[nodiscard]] bool isFixed(std::int32_t obj) const {
    return fixed_[static_cast<std::size_t>(obj)] != 0;
  }

  // --- movable remap --------------------------------------------------------
  /// Movable slot -> object id (same order as PlacementDB::movable()).
  [[nodiscard]] std::span<const std::int32_t> movable() const {
    return movable_;
  }
  /// Object id -> movable slot, -1 for fixed objects.
  [[nodiscard]] std::span<const std::int32_t> objToMovable() const {
    return objToMovable_;
  }

  // --- net -> pin CSR (pin id == global position, (net, pin) ordered) -------
  [[nodiscard]] std::span<const std::int32_t> netPinStart() const {
    return netPinStart_;
  }
  [[nodiscard]] std::span<const std::int32_t> pinObj() const { return pinObj_; }
  [[nodiscard]] std::span<const double> pinOx() const { return pinOx_; }
  [[nodiscard]] std::span<const double> pinOy() const { return pinOy_; }
  /// Owning net of each pin (inverse of netPinStart ranges).
  [[nodiscard]] std::span<const std::int32_t> pinNet() const { return pinNet_; }
  [[nodiscard]] std::span<const double> netWeight() const { return netWeight_; }
  [[nodiscard]] std::int32_t netDegree(std::int32_t n) const {
    return netPinStart_[static_cast<std::size_t>(n) + 1] -
           netPinStart_[static_cast<std::size_t>(n)];
  }
  [[nodiscard]] std::int32_t maxNetDegree() const { return maxNetDegree_; }

  // --- object -> pin CSR (values are global pin ids, ascending) -------------
  [[nodiscard]] std::span<const std::int32_t> objPinStart() const {
    return objPinStart_;
  }
  [[nodiscard]] std::span<const std::int32_t> objPinIds() const {
    return objPinIds_;
  }

  // --- object -> net CSR (one entry per incident pin, net-major order) ------
  [[nodiscard]] std::span<const std::int32_t> objNetStart() const {
    return objNetStart_;
  }
  [[nodiscard]] std::span<const std::int32_t> objNetIds() const {
    return objNetIds_;
  }
  [[nodiscard]] std::span<const std::int32_t> netsOf(std::int32_t obj) const {
    const auto b =
        static_cast<std::size_t>(objNetStart_[static_cast<std::size_t>(obj)]);
    const auto e = static_cast<std::size_t>(
        objNetStart_[static_cast<std::size_t>(obj) + 1]);
    return {objNetIds_.data() + b, e - b};
  }
  [[nodiscard]] std::int32_t degreeOf(std::int32_t obj) const {
    return objNetStart_[static_cast<std::size_t>(obj) + 1] -
           objNetStart_[static_cast<std::size_t>(obj)];
  }

  // --- position sync (stage boundaries only) --------------------------------
  /// Refresh lx/ly from the DB objects (all of them).
  void syncPositionsFromDb(const PlacementDB& db);
  /// Write the view's lx/ly back into the DB objects (all of them).
  void pushPositionsToDb(PlacementDB& db) const;
  /// Overwrite one object's position in the view (movable sync helper).
  void setPosition(std::int32_t obj, double newLx, double newLy) {
    lx_[static_cast<std::size_t>(obj)] = newLx;
    ly_[static_cast<std::size_t>(obj)] = newLy;
  }

  /// Bytes held by the view's own arrays (geometry + all three CSRs),
  /// i.e. the O(cells + pins) construction cost a budgeted session charges
  /// up front. Excludes the arena, which meters itself per growth event.
  [[nodiscard]] std::size_t footprintBytes() const;

  /// Per-run scratch pool shared by the kernels driving this view. Only
  /// one engine/evaluator pair may lease a key namespace at a time; keys
  /// are prefixed per subsystem ("gp.", "wl.", "den.") to keep leases
  /// disjoint. Single-threaded: call from the orchestrating thread.
  [[nodiscard]] ScratchArena& arena() const { return arena_; }

 private:
  std::vector<double> w_, h_, area_, lx_, ly_;
  std::vector<std::uint8_t> kind_, fixed_;
  std::vector<std::int32_t> movable_, objToMovable_;
  std::vector<std::int32_t> netPinStart_, pinObj_, pinNet_;
  std::vector<double> pinOx_, pinOy_, netWeight_;
  std::vector<std::int32_t> objPinStart_, objPinIds_;
  std::vector<std::int32_t> objNetStart_, objNetIds_;
  std::int32_t maxNetDegree_ = 0;
  mutable ScratchArena arena_;
  bool built_ = false;
};

}  // namespace ep
