#include "model/placement_view.h"

#include <algorithm>
#include <stdexcept>

#include "model/netlist.h"
#include "util/checked_math.h"

namespace ep {

namespace {

template <typename T>
std::span<T> borrow(std::map<std::string, std::vector<T>, std::less<>>& pool,
                    std::string_view key, std::size_t n, long& growth,
                    MemoryBudget* budget) {
  auto it = pool.find(key);
  if (it == pool.end()) {
    it = pool.emplace(std::string(key), std::vector<T>()).first;
  }
  auto& buf = it->second;
  if (n > buf.capacity()) {
    // Charge the delta before growing; reserve(n) allocates exactly n
    // elements, so the accounting is exact and a rejected charge leaves
    // the old buffer (and the budget) untouched.
    if (budget != nullptr) {
      budget->chargeOrThrow((n - buf.capacity()) * sizeof(T));
    }
    buf.reserve(n);
    ++growth;
  }
  buf.resize(n);  // within capacity this never reallocates
  return {buf.data(), n};
}

}  // namespace

std::span<double> ScratchArena::doubles(std::string_view key, std::size_t n) {
  return borrow(d_, key, n, growth_, budget_);
}

std::span<std::int32_t> ScratchArena::ints(std::string_view key,
                                           std::size_t n) {
  return borrow(i_, key, n, growth_, budget_);
}

std::size_t ScratchArena::capacityBytes() const {
  std::size_t b = 0;
  for (const auto& [k, v] : d_) b += v.capacity() * sizeof(double);
  for (const auto& [k, v] : i_) b += v.capacity() * sizeof(std::int32_t);
  return b;
}

void PlacementView::build(const PlacementDB& db) {
  const std::size_t nObj = db.objects.size();
  const std::size_t nNet = db.nets.size();
  // Backstop for the 32-bit index contract. Validated entry points reject
  // oversized instances earlier with a typed kInvalidInput (capacity plan /
  // PlacementDB::validate); a caller that skips both still must not wrap
  // the CSR indices into heap corruption.
  {
    std::size_t nPinsAll = 0;
    for (const auto& net : db.nets) nPinsAll += net.pins.size();
    if (!fitsIndex32(nObj) || !fitsIndex32(nNet) || !fitsIndex32(nPinsAll)) {
      throw std::length_error(
          "PlacementView: instance exceeds the 32-bit index space "
          "(objects/nets/pins must each stay under 2^31)");
    }
  }

  // Geometry split from names and flags.
  w_.resize(nObj);
  h_.resize(nObj);
  area_.resize(nObj);
  lx_.resize(nObj);
  ly_.resize(nObj);
  kind_.resize(nObj);
  fixed_.resize(nObj);
  movable_.clear();
  objToMovable_.assign(nObj, -1);
  for (std::size_t i = 0; i < nObj; ++i) {
    const Object& o = db.objects[i];
    w_[i] = o.w;
    h_[i] = o.h;
    area_[i] = o.area();
    lx_[i] = o.lx;
    ly_[i] = o.ly;
    kind_[i] = static_cast<std::uint8_t>(o.kind);
    fixed_[i] = o.fixed ? 1 : 0;
    if (!o.fixed) {
      objToMovable_[i] = static_cast<std::int32_t>(movable_.size());
      movable_.push_back(static_cast<std::int32_t>(i));
    }
  }

  // Net -> pin CSR in (net, pin) order; pin id == global array position.
  std::size_t nPins = 0;
  for (const auto& net : db.nets) nPins += net.pins.size();
  netPinStart_.resize(nNet + 1);
  netWeight_.resize(nNet);
  pinObj_.resize(nPins);
  pinOx_.resize(nPins);
  pinOy_.resize(nPins);
  pinNet_.resize(nPins);
  maxNetDegree_ = 0;
  std::size_t p = 0;
  for (std::size_t n = 0; n < nNet; ++n) {
    const Net& net = db.nets[n];
    netPinStart_[n] = static_cast<std::int32_t>(p);
    netWeight_[n] = net.weight;
    maxNetDegree_ =
        std::max(maxNetDegree_, static_cast<std::int32_t>(net.pins.size()));
    for (const PinRef& pin : net.pins) {
      pinObj_[p] = pin.obj;
      pinOx_[p] = pin.ox;
      pinOy_[p] = pin.oy;
      pinNet_[p] = static_cast<std::int32_t>(n);
      ++p;
    }
  }
  netPinStart_[nNet] = static_cast<std::int32_t>(p);

  // Object -> pin and object -> net CSRs. Both are filled by walking pins
  // in (net, pin) order, so per-object pin-id lists are ascending and the
  // object -> net list matches the historical PlacementDB CSR exactly
  // (one entry per incident pin, net-major).
  std::vector<std::int32_t> counts(nObj + 1, 0);
  for (std::size_t i = 0; i < nPins; ++i) {
    ++counts[static_cast<std::size_t>(pinObj_[i]) + 1];
  }
  for (std::size_t i = 1; i < counts.size(); ++i) counts[i] += counts[i - 1];
  objPinStart_ = counts;
  objNetStart_ = counts;
  objPinIds_.resize(nPins);
  objNetIds_.resize(nPins);
  std::vector<std::int32_t> cursor(counts.begin(), counts.end() - 1);
  for (std::size_t i = 0; i < nPins; ++i) {
    const auto obj = static_cast<std::size_t>(pinObj_[i]);
    const auto at = static_cast<std::size_t>(cursor[obj]++);
    objPinIds_[at] = static_cast<std::int32_t>(i);
    objNetIds_[at] = pinNet_[i];
  }

  built_ = true;
}

std::size_t PlacementView::footprintBytes() const {
  const auto d = [](const std::vector<double>& v) {
    return v.capacity() * sizeof(double);
  };
  const auto i = [](const std::vector<std::int32_t>& v) {
    return v.capacity() * sizeof(std::int32_t);
  };
  return d(w_) + d(h_) + d(area_) + d(lx_) + d(ly_) + kind_.capacity() +
         fixed_.capacity() + i(movable_) + i(objToMovable_) +
         i(netPinStart_) + i(pinObj_) + i(pinNet_) + d(pinOx_) + d(pinOy_) +
         d(netWeight_) + i(objPinStart_) + i(objPinIds_) + i(objNetStart_) +
         i(objNetIds_);
}

void PlacementView::syncPositionsFromDb(const PlacementDB& db) {
  const std::size_t nObj = db.objects.size();
  for (std::size_t i = 0; i < nObj; ++i) {
    lx_[i] = db.objects[i].lx;
    ly_[i] = db.objects[i].ly;
  }
}

void PlacementView::pushPositionsToDb(PlacementDB& db) const {
  const std::size_t nObj = db.objects.size();
  for (std::size_t i = 0; i < nObj; ++i) {
    db.objects[i].lx = lx_[i];
    db.objects[i].ly = ly_[i];
  }
}

}  // namespace ep
