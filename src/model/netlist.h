// Placement instance model: objects (standard cells, macros, IO pads),
// hyperedge nets with pin offsets, placement rows and the core region.
//
// This is the G = (V, E, R) of Section II of the paper. The model follows
// Bookshelf (ISPD contest) conventions: pin offsets are measured from the
// object center; "terminals" are fixed objects. Fillers are *not* part of
// the instance — they are an optimizer-internal device and live in
// src/eplace.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "model/placement_view.h"
#include "util/geometry.h"
#include "util/status.h"

namespace ep {

enum class ObjKind : std::uint8_t { kStdCell, kMacro, kIo };

/// One placeable (or fixed) rectangle. Position is the lower-left corner.
struct Object {
  std::string name;
  ObjKind kind = ObjKind::kStdCell;
  double w = 0.0;
  double h = 0.0;
  double lx = 0.0;
  double ly = 0.0;
  bool fixed = false;

  [[nodiscard]] double area() const { return w * h; }
  [[nodiscard]] Rect rect() const { return {lx, ly, lx + w, ly + h}; }
  [[nodiscard]] Point center() const { return {lx + w * 0.5, ly + h * 0.5}; }
  void setCenter(double cx, double cy) {
    lx = cx - w * 0.5;
    ly = cy - h * 0.5;
  }
};

/// Pin direction (Bookshelf I/O/B). Drives the timing graph; placement
/// itself is direction-agnostic.
enum class PinDir : std::uint8_t { kUnknown, kInput, kOutput };

/// A pin: an object index plus an offset of the pin from the object center.
struct PinRef {
  std::int32_t obj = -1;
  double ox = 0.0;
  double oy = 0.0;
  PinDir dir = PinDir::kUnknown;
};

/// A hyperedge over pins with an optional weight (Bookshelf .wts).
struct Net {
  std::string name;
  std::vector<PinRef> pins;
  double weight = 1.0;

  [[nodiscard]] std::size_t degree() const { return pins.size(); }
};

/// One placement row (Bookshelf .scl). All rows share a height in the
/// designs we model; sites are uniform.
struct Row {
  double lx = 0.0;
  double ly = 0.0;
  double height = 0.0;
  double siteWidth = 1.0;
  std::int32_t numSites = 0;

  [[nodiscard]] double hx() const {
    return lx + siteWidth * static_cast<double>(numSites);
  }
};

/// The full placement instance plus derived connectivity.
class PlacementDB {
 public:
  std::string name;
  Rect region;
  std::vector<Object> objects;
  std::vector<Net> nets;
  std::vector<Row> rows;
  /// Per-bin density upper bound rho_t (1.0 for ISPD 2005, lower for 2006).
  double targetDensity = 1.0;

  /// (Re)build derived structures: movable index list and the flat SoA
  /// PlacementView (geometry arrays, pin/net CSRs, movable remap). Must be
  /// called after the instance is assembled or edited structurally (moving
  /// objects is fine without a rebuild).
  void finalize();

  /// The flat SoA core every kernel layer reads (valid after finalize()).
  /// Mutable access exists so stage boundaries can sync positions.
  [[nodiscard]] const PlacementView& view() const { return view_; }
  [[nodiscard]] PlacementView& view() { return view_; }

  [[nodiscard]] const std::vector<std::int32_t>& movable() const {
    return movable_;
  }
  [[nodiscard]] std::size_t numMovable() const { return movable_.size(); }
  [[nodiscard]] std::size_t numMovableMacros() const;

  /// Nets incident to object i (CSR range into the view — no allocation).
  /// Valid until the next finalize().
  [[nodiscard]] std::span<const std::int32_t> netsOf(std::int32_t obj) const {
    return view_.netsOf(obj);
  }
  /// Vertex degree |E_i| — the wirelength preconditioner term of Eq. (12).
  [[nodiscard]] std::int32_t degreeOf(std::int32_t obj) const {
    return view_.degreeOf(obj);
  }

  [[nodiscard]] double totalMovableArea() const;
  /// Area of fixed objects clipped to the core region.
  [[nodiscard]] double fixedAreaInRegion() const;
  /// Whitespace available to movable objects: region minus clipped fixed.
  [[nodiscard]] double freeArea() const;

  /// Pin position for a PinRef given current object placement.
  [[nodiscard]] Point pinPos(const PinRef& p) const {
    const Point c = objects[static_cast<std::size_t>(p.obj)].center();
    return {c.x + p.ox, c.y + p.oy};
  }

  /// Validate structural invariants (pin indices in range, positive movable
  /// dims, finite geometry, non-empty region, finalized connectivity).
  /// Returns OK or an InvalidInput status describing the first violation.
  /// Fixed objects may have zero dims (ISPD terminal_NI pads are points);
  /// movable objects must have positive area — the density model divides
  /// by it.
  [[nodiscard]] Status validate() const;

  /// Repair what is safely repairable before placement starts, or reject
  /// with InvalidInput what is not:
  ///  * fixed pads stranded absurdly far outside the region (farther than
  ///    one region diagonal) are clamped onto the region boundary — the
  ///    usual signature of corrupt coordinates; near-boundary IO pads are
  ///    left alone;
  ///  * movable objects with non-finite positions are recentered (global
  ///    placement overwrites them anyway);
  ///  * exactly-overlapping fixed pads (identical rects) are de-duplicated —
  ///    duplicates become zero-area points at the same center so the density
  ///    map counts each footprint once (one warning line names the count);
  ///  * zero/negative-area movable objects are rejected.
  /// Returns the number of clamped/recentered objects via `repaired` when
  /// non-null. Call before validate()+mGP; runEplaceFlowChecked() does.
  Status sanitize(int* repaired = nullptr);

 private:
  std::vector<std::int32_t> movable_;
  PlacementView view_;
  bool finalized_ = false;
};

/// Stable 64-bit FNV-1a fingerprint of the placement *input*: design name,
/// region, target density, object dims/kinds/fixed flags (fixed positions
/// included, movable positions excluded — they are outputs), and full net
/// connectivity with pin offsets and weights. Two runs with equal
/// fingerprints solved the same instance; run records carry it so the
/// regression gate refuses to compare records from different inputs.
[[nodiscard]] std::uint64_t netlistFingerprint(const PlacementDB& db);

}  // namespace ep
