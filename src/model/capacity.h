// Capacity planning for the streaming I/O -> model pipeline.
//
// The contract (docs/SCALING.md): before a big instance is materialized,
// the front-end learns its counts (Bookshelf headers or a counting pass),
// turns them into a CapacityPlan, charges the plan against the
// RuntimeContext MemoryBudget, and only then reserves every PlacementDB /
// PlacementView / CSR array to its exact final size. Result: peak memory
// is O(cells) with zero vector regrowth during parsing or finalize(), and
// an instance that cannot fit the budget is rejected up front with a typed
// kResourceExhausted instead of being OOM-killed halfway through a parse.
//
// planCapacity() is also the 32-bit index-space gate: the SoA core indexes
// objects/nets/pins with std::int32_t (util/checked_math.h), so any count
// beyond 2^31-1 is rejected here with kInvalidInput before a single array
// is sized.
#pragma once

#include <cstddef>

#include "util/status.h"

namespace ep {

class PlacementDB;

/// Instance counts from the front-end (declared Bookshelf headers, a
/// counting pass, or a generator spec).
struct CapacityCounts {
  std::size_t objects = 0;
  std::size_t nets = 0;
  std::size_t pins = 0;
  std::size_t rows = 0;
};

/// A validated sizing plan. Byte figures are estimates of the *structural*
/// footprint (vectors, CSRs, the parser's name map); they deliberately
/// exclude transient parse buffers (O(line length)) and optimizer state
/// (charged separately by the GP engine).
struct CapacityPlan {
  CapacityCounts counts;
  std::size_t dbBytes = 0;    ///< PlacementDB vectors + name map
  std::size_t viewBytes = 0;  ///< SoA arrays + the three CSRs
  [[nodiscard]] std::size_t totalBytes() const { return dbBytes + viewBytes; }
};

/// Validates counts against the 32-bit index space and computes the byte
/// plan with overflow-checked arithmetic. kInvalidInput when any count (or
/// the byte total) does not fit.
StatusOr<CapacityPlan> planCapacity(const CapacityCounts& counts);

/// Reserves the PlacementDB top-level vectors to the plan's exact counts
/// (per-net pin vectors are reserved by the parser at each declared
/// NetDegree). After this, assembling the instance performs no top-level
/// vector regrowth.
void reserveCapacity(PlacementDB& db, const CapacityPlan& plan);

}  // namespace ep
