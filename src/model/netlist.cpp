#include "model/netlist.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <map>
#include <sstream>
#include <tuple>

#include "util/checked_math.h"
#include "util/log.h"

namespace ep {

void PlacementDB::finalize() {
  movable_.clear();
  for (std::size_t i = 0; i < objects.size(); ++i) {
    if (!objects[i].fixed) movable_.push_back(static_cast<std::int32_t>(i));
  }
  // The object->nets CSR (one entry per incident pin — a net touching the
  // same object through several pins counts once per pin for degree
  // purposes, matching |E_i| closely enough) now lives in the view along
  // with the rest of the SoA arrays.
  view_.build(*this);
  finalized_ = true;
}

std::size_t PlacementDB::numMovableMacros() const {
  std::size_t k = 0;
  for (auto i : movable_) {
    if (objects[static_cast<std::size_t>(i)].kind == ObjKind::kMacro) ++k;
  }
  return k;
}

double PlacementDB::totalMovableArea() const {
  double a = 0.0;
  for (auto i : movable_) a += objects[static_cast<std::size_t>(i)].area();
  return a;
}

double PlacementDB::fixedAreaInRegion() const {
  double a = 0.0;
  for (const auto& o : objects) {
    if (o.fixed) a += o.rect().overlapArea(region);
  }
  return a;
}

double PlacementDB::freeArea() const {
  return region.area() - fixedAreaInRegion();
}

Status PlacementDB::validate() const {
  auto bad = [](const std::string& msg) { return Status::invalidInput(msg); };
  std::ostringstream err;
  if (region.empty()) return bad("region is empty");
  if (!finalized_) return bad("finalize() has not been called");
  // 32-bit index-space gate (util/checked_math.h): the SoA CSRs index
  // objects/nets/pins with std::int32_t. Oversized instances are rejected
  // here (and by the capacity planner before assembly) with a typed status
  // instead of wrapping an index.
  if (!fitsIndex32(objects.size())) {
    return bad("instance has " + std::to_string(objects.size()) +
               " objects, over the 32-bit index space");
  }
  if (!fitsIndex32(nets.size())) {
    return bad("instance has " + std::to_string(nets.size()) +
               " nets, over the 32-bit index space");
  }
  {
    std::size_t totalPins = 0;
    for (const auto& n : nets) totalPins += n.pins.size();
    if (!fitsIndex32(totalPins)) {
      return bad("instance has " + std::to_string(totalPins) +
                 " pins, over the 32-bit index space");
    }
  }
  for (std::size_t i = 0; i < objects.size(); ++i) {
    const auto& o = objects[i];
    if (!std::isfinite(o.w) || !std::isfinite(o.h) || o.w < 0.0 || o.h < 0.0) {
      err << "object " << o.name << " has invalid dims " << o.w << " x " << o.h;
      return bad(err.str());
    }
    // Fixed point pads (zero area) are legitimate; zero-area movables are
    // not — they carry no density charge and cannot be legalized.
    if (!o.fixed && !(o.w > 0.0 && o.h > 0.0)) {
      err << "movable object " << o.name << " has zero area";
      return bad(err.str());
    }
    if (!std::isfinite(o.lx) || !std::isfinite(o.ly)) {
      err << "object " << o.name << " has non-finite position";
      return bad(err.str());
    }
  }
  for (std::size_t n = 0; n < nets.size(); ++n) {
    if (nets[n].pins.empty()) {
      err << "net " << nets[n].name << " has no pins";
      return bad(err.str());
    }
    for (const auto& pin : nets[n].pins) {
      if (pin.obj < 0 ||
          static_cast<std::size_t>(pin.obj) >= objects.size()) {
        err << "net " << nets[n].name << " references invalid object "
            << pin.obj;
        return bad(err.str());
      }
      if (!std::isfinite(pin.ox) || !std::isfinite(pin.oy)) {
        err << "net " << nets[n].name << " has a non-finite pin offset";
        return bad(err.str());
      }
    }
    if (nets[n].weight <= 0.0 || !std::isfinite(nets[n].weight)) {
      err << "net " << nets[n].name << " has non-positive weight";
      return bad(err.str());
    }
  }
  for (const auto& r : rows) {
    if (r.height <= 0.0 || r.siteWidth <= 0.0 || r.numSites <= 0) {
      return bad("row with non-positive geometry");
    }
  }
  if (targetDensity <= 0.0 || targetDensity > 1.0 ||
      !std::isfinite(targetDensity)) {
    return bad("target density out of (0, 1]");
  }
  return {};
}

Status PlacementDB::sanitize(int* repaired) {
  int fixes = 0;
  if (region.empty()) return Status::invalidInput("region is empty");
  const double diag = std::hypot(region.width(), region.height());
  const Point mid{(region.lx + region.hx) * 0.5, (region.ly + region.hy) * 0.5};
  for (auto& o : objects) {
    if (!std::isfinite(o.w) || !std::isfinite(o.h) || o.w < 0.0 || o.h < 0.0) {
      return Status::invalidInput("object " + o.name + " has invalid dims");
    }
    if (!o.fixed && !(o.w > 0.0 && o.h > 0.0)) {
      return Status::invalidInput("movable object " + o.name +
                                  " has zero area");
    }
    if (!o.fixed && (!std::isfinite(o.lx) || !std::isfinite(o.ly))) {
      o.setCenter(mid.x, mid.y);  // placement recomputes it anyway
      ++fixes;
      continue;
    }
    if (o.fixed && std::isfinite(o.lx) && std::isfinite(o.ly)) {
      // A pad more than one region diagonal away from the core is corrupt
      // input, not periphery IO: clamp its center onto the region.
      const Point c = o.center();
      const double dx =
          std::max({region.lx - c.x, c.x - region.hx, 0.0});
      const double dy =
          std::max({region.ly - c.y, c.y - region.hy, 0.0});
      if (std::hypot(dx, dy) > diag) {
        o.setCenter(std::clamp(c.x, region.lx, region.hx),
                    std::clamp(c.y, region.ly, region.hy));
        ++fixes;
      }
    } else if (o.fixed) {
      return Status::invalidInput("fixed object " + o.name +
                                  " has non-finite position");
    }
  }
  // Exactly-overlapping fixed pads (identical rects, a common artifact of
  // duplicated terminal rows in hand-edited Bookshelf) would be stamped
  // twice into the density map and double-counted in fixedAreaInRegion().
  // Keep the first of each group and shrink the duplicates to zero-area
  // points at the same center: nets still reference them and pin positions
  // are offsets from the (unchanged) center, but they no longer carry area.
  {
    std::map<std::tuple<double, double, double, double>, bool> seen;
    int duplicates = 0;
    for (auto& o : objects) {
      if (!o.fixed || o.area() <= 0.0) continue;
      auto [it, inserted] = seen.try_emplace({o.lx, o.ly, o.w, o.h}, true);
      if (inserted) continue;
      const Point c = o.center();
      o.w = 0.0;
      o.h = 0.0;
      o.lx = c.x;
      o.ly = c.y;
      ++duplicates;
    }
    if (duplicates > 0) {
      logWarn("sanitize: de-duplicated %d exactly-overlapping fixed pad(s); "
              "density map counts each footprint once",
              duplicates);
      fixes += duplicates;
    }
  }
  // sanitize() mutates geometry (clamped pads, zero-area duplicates); if a
  // view was already built it would be stale, so rebuild. Deliberately not
  // setting finalized_: an unfinalized DB stays unfinalized for validate().
  if (finalized_ && fixes > 0) view_.build(*this);
  if (repaired != nullptr) *repaired = fixes;
  return {};
}

namespace {

struct Fnv1a {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void f64(double v) {
    // Hash the bit pattern, normalizing -0.0 so it equals +0.0.
    if (v == 0.0) v = 0.0;
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void str(const std::string& s) {
    u64(s.size());
    bytes(s.data(), s.size());
  }
};

}  // namespace

std::uint64_t netlistFingerprint(const PlacementDB& db) {
  Fnv1a f;
  f.str(db.name);
  f.f64(db.region.lx);
  f.f64(db.region.ly);
  f.f64(db.region.hx);
  f.f64(db.region.hy);
  f.f64(db.targetDensity);
  f.u64(db.objects.size());
  for (const Object& o : db.objects) {
    f.u64(static_cast<std::uint64_t>(o.kind));
    f.u64(o.fixed ? 1 : 0);
    f.f64(o.w);
    f.f64(o.h);
    if (o.fixed) {
      // Fixed geometry is part of the instance; movable positions are the
      // solver's output and must not perturb the fingerprint.
      f.f64(o.lx);
      f.f64(o.ly);
    }
  }
  f.u64(db.nets.size());
  for (const Net& n : db.nets) {
    f.f64(n.weight);
    f.u64(n.pins.size());
    for (const PinRef& p : n.pins) {
      f.u64(static_cast<std::uint64_t>(static_cast<std::int64_t>(p.obj)));
      f.f64(p.ox);
      f.f64(p.oy);
    }
  }
  f.u64(db.rows.size());
  for (const Row& r : db.rows) {
    f.f64(r.lx);
    f.f64(r.ly);
    f.f64(r.height);
    f.f64(r.siteWidth);
    f.u64(static_cast<std::uint64_t>(r.numSites));
  }
  return f.h;
}

}  // namespace ep
