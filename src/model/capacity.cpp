#include "model/capacity.h"

#include <string>

#include "model/netlist.h"
#include "util/checked_math.h"

namespace ep {

namespace {

/// Per-element structural costs. The string members of Object/Net count at
/// sizeof (SSO); kNameSlack covers longer names plus the parser's
/// name->index hash map node per object.
constexpr std::size_t kNameSlack = 48;

Status overflow(const char* what, std::size_t v) {
  return Status::invalidInput(std::string("capacity plan: ") + what + " count " +
                              std::to_string(v) +
                              " exceeds the 32-bit index space");
}

}  // namespace

StatusOr<CapacityPlan> planCapacity(const CapacityCounts& counts) {
  if (!fitsIndex32(counts.objects)) return overflow("object", counts.objects);
  if (!fitsIndex32(counts.nets)) return overflow("net", counts.nets);
  if (!fitsIndex32(counts.pins)) return overflow("pin", counts.pins);
  if (!fitsIndex32(counts.rows)) return overflow("row", counts.rows);

  CapacityPlan plan;
  plan.counts = counts;

  // PlacementDB: objects, nets (with their pin vectors), rows, the movable
  // index list, and the parser's name map.
  const std::size_t perObjDb =
      sizeof(Object) + kNameSlack + sizeof(std::int32_t);
  const std::size_t perNetDb = sizeof(Net) + kNameSlack;
  // PlacementView SoA: w/h/area/lx/ly + kind/fixed + objToMovable +
  // objPinStart/objNetStart per object; pinObj/pinNet/pinOx/pinOy +
  // objPinIds/objNetIds per pin; netPinStart/netWeight per net.
  const std::size_t perObjView =
      5 * sizeof(double) + 2 * sizeof(std::uint8_t) + 3 * sizeof(std::int32_t);
  const std::size_t perPinView = 4 * sizeof(std::int32_t) + 2 * sizeof(double);
  const std::size_t perNetView = sizeof(std::int32_t) + sizeof(double);

  std::size_t term = 0;
  std::size_t db = 0;
  std::size_t view = 0;
  const bool ok =
      checkedMulSize(counts.objects, perObjDb, &term) &&
      checkedAddSize(db, term, &db) &&
      checkedMulSize(counts.nets, perNetDb, &term) &&
      checkedAddSize(db, term, &db) &&
      checkedMulSize(counts.pins, sizeof(PinRef), &term) &&
      checkedAddSize(db, term, &db) &&
      checkedMulSize(counts.rows, sizeof(Row), &term) &&
      checkedAddSize(db, term, &db) &&
      checkedMulSize(counts.objects, perObjView, &term) &&
      checkedAddSize(view, term, &view) &&
      checkedMulSize(counts.pins, perPinView, &term) &&
      checkedAddSize(view, term, &view) &&
      checkedMulSize(counts.nets, perNetView, &term) &&
      checkedAddSize(view, term, &view);
  if (!ok) {
    return Status::invalidInput(
        "capacity plan: byte total overflows size_t arithmetic");
  }
  plan.dbBytes = db;
  plan.viewBytes = view;
  return plan;
}

void reserveCapacity(PlacementDB& db, const CapacityPlan& plan) {
  db.objects.reserve(plan.counts.objects);
  db.nets.reserve(plan.counts.nets);
  db.rows.reserve(plan.counts.rows);
}

}  // namespace ep
