#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "bookshelf/bookshelf.h"
#include "gen/generator.h"

namespace ep {
namespace {

class BookshelfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = ::testing::TempDir() + "/bookshelf_test";
    std::filesystem::create_directories(dir_);
  }
  std::string dir_;
};

TEST_F(BookshelfTest, RoundTripPreservesInstance) {
  GenSpec spec;
  spec.numCells = 200;
  spec.numMovableMacros = 3;
  spec.numFixedMacros = 2;
  spec.numIo = 16;
  spec.seed = 5;
  const PlacementDB orig = generateCircuit(spec);

  ASSERT_TRUE(writeBookshelf(dir_, "rt", orig).ok());
  PlacementDB back;
  const auto res = readBookshelf(dir_ + "/rt.aux", back);
  ASSERT_TRUE(res.ok()) << res.message();

  ASSERT_EQ(back.objects.size(), orig.objects.size());
  ASSERT_EQ(back.nets.size(), orig.nets.size());
  ASSERT_EQ(back.rows.size(), orig.rows.size());
  EXPECT_EQ(back.numMovable(), orig.numMovable());

  for (std::size_t i = 0; i < orig.objects.size(); ++i) {
    const auto& a = orig.objects[i];
    const auto& b = back.objects[i];
    EXPECT_EQ(a.name, b.name);
    EXPECT_NEAR(a.w, b.w, 1e-9);
    EXPECT_NEAR(a.h, b.h, 1e-9);
    EXPECT_NEAR(a.lx, b.lx, 1e-9);
    EXPECT_NEAR(a.ly, b.ly, 1e-9);
    EXPECT_EQ(a.fixed, b.fixed);
  }
  for (std::size_t n = 0; n < orig.nets.size(); ++n) {
    ASSERT_EQ(back.nets[n].pins.size(), orig.nets[n].pins.size());
    for (std::size_t k = 0; k < orig.nets[n].pins.size(); ++k) {
      EXPECT_EQ(back.nets[n].pins[k].obj, orig.nets[n].pins[k].obj);
      EXPECT_NEAR(back.nets[n].pins[k].ox, orig.nets[n].pins[k].ox, 1e-9);
      EXPECT_NEAR(back.nets[n].pins[k].oy, orig.nets[n].pins[k].oy, 1e-9);
      EXPECT_EQ(back.nets[n].pins[k].dir, orig.nets[n].pins[k].dir);
    }
  }
  // Region reconstructed from rows.
  EXPECT_NEAR(back.region.width(), orig.region.width(), 1e-6);
  EXPECT_NEAR(back.region.height(), orig.region.height(), 1e-6);
}

TEST_F(BookshelfTest, RoundTripPreservesWeights) {
  GenSpec spec;
  spec.numCells = 50;
  spec.seed = 8;
  PlacementDB orig = generateCircuit(spec);
  orig.nets[0].weight = 3.5;
  orig.nets[1].weight = 0.25;
  ASSERT_TRUE(writeBookshelf(dir_, "w", orig).ok());
  PlacementDB back;
  ASSERT_TRUE(readBookshelf(dir_ + "/w.aux", back).ok());
  EXPECT_DOUBLE_EQ(back.nets[0].weight, 3.5);
  EXPECT_DOUBLE_EQ(back.nets[1].weight, 0.25);
  EXPECT_DOUBLE_EQ(back.nets[2].weight, 1.0);
}

TEST_F(BookshelfTest, MissingAuxFails) {
  PlacementDB db;
  const auto res = readBookshelf(dir_ + "/nonexistent.aux", db);
  EXPECT_FALSE(res.ok());
  EXPECT_FALSE(res.message().empty());
}

TEST_F(BookshelfTest, MalformedAuxFails) {
  {
    std::ofstream out(dir_ + "/bad.aux");
    out << "RowBasedPlacement : nothing useful\n";
  }
  PlacementDB db;
  EXPECT_FALSE(readBookshelf(dir_ + "/bad.aux", db).ok());
}

TEST_F(BookshelfTest, ParsesHandWrittenFiles) {
  // Minimal hand-authored instance in classic ISPD formatting, including
  // comment lines and the "terminal" keyword.
  {
    std::ofstream out(dir_ + "/mini.aux");
    out << "RowBasedPlacement :  mini.nodes  mini.nets  mini.wts  mini.pl  "
           "mini.scl\n";
  }
  {
    std::ofstream out(dir_ + "/mini.nodes");
    out << "UCLA nodes 1.0\n# comment\n\nNumNodes : 3\nNumTerminals : 1\n"
        << "   a  2  1\n   b  1  1\n   p  1  1  terminal\n";
  }
  {
    std::ofstream out(dir_ + "/mini.nets");
    out << "UCLA nets 1.0\nNumNets : 1\nNumPins : 3\n"
        << "NetDegree : 3   n0\n   a I : 0.5 0\n   b O : 0 0\n   p B : 0 0\n";
  }
  {
    std::ofstream out(dir_ + "/mini.wts");
    out << "UCLA wts 1.0\n";
  }
  {
    std::ofstream out(dir_ + "/mini.pl");
    out << "UCLA pl 1.0\na 1 2 : N\nb 4 2 : N\np 0 0 : N /FIXED\n";
  }
  {
    std::ofstream out(dir_ + "/mini.scl");
    out << "UCLA scl 1.0\nNumRows : 2\n"
        << "CoreRow Horizontal\n  Coordinate : 0\n  Height : 1\n"
        << "  Sitewidth : 1\n  Sitespacing : 1\n  Siteorient : 1\n"
        << "  Sitesymmetry : 1\n  SubrowOrigin : 0  NumSites : 10\nEnd\n"
        << "CoreRow Horizontal\n  Coordinate : 1\n  Height : 1\n"
        << "  Sitewidth : 1\n  Sitespacing : 1\n  Siteorient : 1\n"
        << "  Sitesymmetry : 1\n  SubrowOrigin : 0  NumSites : 10\nEnd\n";
  }
  PlacementDB db;
  const auto res = readBookshelf(dir_ + "/mini.aux", db);
  ASSERT_TRUE(res.ok()) << res.message();
  ASSERT_EQ(db.objects.size(), 3u);
  EXPECT_EQ(db.objects[0].name, "a");
  EXPECT_DOUBLE_EQ(db.objects[0].w, 2.0);
  EXPECT_TRUE(db.objects[2].fixed);
  ASSERT_EQ(db.nets.size(), 1u);
  ASSERT_EQ(db.nets[0].pins.size(), 3u);
  EXPECT_DOUBLE_EQ(db.nets[0].pins[0].ox, 0.5);
  ASSERT_EQ(db.rows.size(), 2u);
  EXPECT_EQ(db.rows[1].ly, 1.0);
  EXPECT_EQ(db.region, Rect(0, 0, 10, 2));
  EXPECT_EQ(db.numMovable(), 2u);
}

TEST_F(BookshelfTest, WriterProducesAllFiles) {
  GenSpec spec;
  spec.numCells = 20;
  const PlacementDB db = generateCircuit(spec);
  ASSERT_TRUE(writeBookshelf(dir_, "files", db).ok());
  for (const char* ext : {".aux", ".nodes", ".nets", ".pl", ".scl", ".wts"}) {
    EXPECT_TRUE(std::filesystem::exists(dir_ + "/files" + ext)) << ext;
  }
}

}  // namespace
}  // namespace ep
