#include <gtest/gtest.h>

#include <cmath>
#include <numbers>
#include <vector>

#include "fft/dct.h"
#include "fft/fft.h"
#include "fft/poisson.h"
#include "util/rng.h"

namespace ep {
namespace {

constexpr double kPi = std::numbers::pi;

// Naive O(N^2) references.
std::vector<Complex> naiveDft(const std::vector<Complex>& x) {
  const std::size_t n = x.size();
  std::vector<Complex> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    Complex s{0.0, 0.0};
    for (std::size_t m = 0; m < n; ++m) {
      const double ang = -2.0 * kPi * static_cast<double>(k * m) /
                         static_cast<double>(n);
      s += x[m] * Complex{std::cos(ang), std::sin(ang)};
    }
    out[k] = s;
  }
  return out;
}

std::vector<double> naiveDct2(const std::vector<double>& x) {
  const std::size_t n = x.size();
  std::vector<double> out(n);
  for (std::size_t k = 0; k < n; ++k) {
    double s = 0.0;
    for (std::size_t m = 0; m < n; ++m) {
      s += x[m] * std::cos(kPi * (2.0 * m + 1.0) * k / (2.0 * n));
    }
    out[k] = s;
  }
  return out;
}

std::vector<double> naiveCosSynth(const std::vector<double>& c) {
  const std::size_t n = c.size();
  std::vector<double> out(n);
  for (std::size_t m = 0; m < n; ++m) {
    double s = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      s += c[k] * std::cos(kPi * k * (2.0 * m + 1.0) / (2.0 * n));
    }
    out[m] = s;
  }
  return out;
}

std::vector<double> naiveSinSynth(const std::vector<double>& c) {
  const std::size_t n = c.size();
  std::vector<double> out(n);
  for (std::size_t m = 0; m < n; ++m) {
    double s = 0.0;
    for (std::size_t k = 0; k < n; ++k) {
      s += c[k] * std::sin(kPi * (k + 1.0) * (2.0 * m + 1.0) / (2.0 * n));
    }
    out[m] = s;
  }
  return out;
}

std::vector<Complex> randomComplex(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<Complex> v(n);
  for (auto& c : v) c = {rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)};
  return v;
}

std::vector<double> randomReal(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> v(n);
  for (auto& x : v) x = rng.uniform(-1.0, 1.0);
  return v;
}

TEST(Fft, MatchesNaiveDft) {
  for (std::size_t n : {1u, 2u, 4u, 8u, 32u, 128u}) {
    auto x = randomComplex(n, 100 + n);
    const auto ref = naiveDft(x);
    Fft fft(n);
    fft.forward(x);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(x[k].real(), ref[k].real(), 1e-9) << "n=" << n << " k=" << k;
      EXPECT_NEAR(x[k].imag(), ref[k].imag(), 1e-9);
    }
  }
}

TEST(Fft, InverseRoundTrip) {
  for (std::size_t n : {2u, 16u, 256u, 1024u}) {
    auto x = randomComplex(n, n);
    const auto orig = x;
    Fft fft(n);
    fft.forward(x);
    fft.inverse(x);
    for (std::size_t k = 0; k < n; ++k) {
      EXPECT_NEAR(x[k].real(), orig[k].real(), 1e-10);
      EXPECT_NEAR(x[k].imag(), orig[k].imag(), 1e-10);
    }
  }
}

TEST(Fft, ParsevalHolds) {
  const std::size_t n = 512;
  auto x = randomComplex(n, 9);
  double timeEnergy = 0.0;
  for (const auto& c : x) timeEnergy += std::norm(c);
  Fft fft(n);
  fft.forward(x);
  double freqEnergy = 0.0;
  for (const auto& c : x) freqEnergy += std::norm(c);
  EXPECT_NEAR(freqEnergy, timeEnergy * static_cast<double>(n),
              1e-6 * timeEnergy * n);
}

TEST(Fft, ImpulseGivesFlatSpectrum) {
  const std::size_t n = 64;
  std::vector<Complex> x(n, Complex{0.0, 0.0});
  x[0] = {1.0, 0.0};
  Fft fft(n);
  fft.forward(x);
  for (const auto& c : x) {
    EXPECT_NEAR(c.real(), 1.0, 1e-12);
    EXPECT_NEAR(c.imag(), 0.0, 1e-12);
  }
}

TEST(Fft, NextPowerOfTwo) {
  EXPECT_EQ(nextPowerOfTwo(1), 1u);
  EXPECT_EQ(nextPowerOfTwo(2), 2u);
  EXPECT_EQ(nextPowerOfTwo(3), 4u);
  EXPECT_EQ(nextPowerOfTwo(1000), 1024u);
  EXPECT_TRUE(isPowerOfTwo(64));
  EXPECT_FALSE(isPowerOfTwo(48));
  EXPECT_FALSE(isPowerOfTwo(0));
}

class DctSizes : public ::testing::TestWithParam<std::size_t> {};

TEST_P(DctSizes, Dct2MatchesNaive) {
  const std::size_t n = GetParam();
  auto x = randomReal(n, 3 * n + 1);
  const auto ref = naiveDct2(x);
  Dct d(n);
  d.dct2(x);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(x[k], ref[k], 1e-9 * static_cast<double>(n)) << "k=" << k;
  }
}

TEST_P(DctSizes, IdctInvertsDct) {
  const std::size_t n = GetParam();
  auto x = randomReal(n, 7 * n + 5);
  const auto orig = x;
  Dct d(n);
  d.dct2(x);
  d.idct2(x);
  for (std::size_t k = 0; k < n; ++k) EXPECT_NEAR(x[k], orig[k], 1e-9);
}

TEST_P(DctSizes, CosineSynthesisMatchesNaive) {
  const std::size_t n = GetParam();
  auto c = randomReal(n, 11 * n);
  const auto ref = naiveCosSynth(c);
  Dct d(n);
  d.cosineSynthesis(c);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(c[k], ref[k], 1e-9 * static_cast<double>(n));
  }
}

TEST_P(DctSizes, SineSynthesisMatchesNaive) {
  const std::size_t n = GetParam();
  auto c = randomReal(n, 13 * n);
  const auto ref = naiveSinSynth(c);
  Dct d(n);
  d.sineSynthesis(c);
  for (std::size_t k = 0; k < n; ++k) {
    EXPECT_NEAR(c[k], ref[k], 1e-9 * static_cast<double>(n));
  }
}

INSTANTIATE_TEST_SUITE_P(PowerOfTwoSizes, DctSizes,
                         ::testing::Values(2, 4, 8, 16, 64, 128));

TEST(Dct, LinearityOfAllTransforms) {
  const std::size_t n = 64;
  Dct d(n);
  auto a = randomReal(n, 21), b = randomReal(n, 22);
  for (int op = 0; op < 4; ++op) {
    std::vector<double> mix(n), ta = a, tb = b;
    for (std::size_t i = 0; i < n; ++i) mix[i] = 3.0 * a[i] - 2.0 * b[i];
    auto apply = [&](std::vector<double>& v) {
      switch (op) {
        case 0: d.dct2(v); break;
        case 1: d.idct2(v); break;
        case 2: d.cosineSynthesis(v); break;
        case 3: d.sineSynthesis(v); break;
      }
    };
    apply(ta);
    apply(tb);
    apply(mix);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(mix[i], 3.0 * ta[i] - 2.0 * tb[i], 1e-9) << "op " << op;
    }
  }
}

TEST(Dct, ConstantVectorConcentratesAtDc) {
  const std::size_t n = 32;
  Dct d(n);
  std::vector<double> v(n, 2.5);
  d.dct2(v);
  EXPECT_NEAR(v[0], 2.5 * n, 1e-9);
  for (std::size_t k = 1; k < n; ++k) EXPECT_NEAR(v[k], 0.0, 1e-9);
}

TEST(Dct, CosineSynthesisOfUnitCoefficient) {
  const std::size_t n = 32;
  Dct d(n);
  std::vector<double> c(n, 0.0);
  c[3] = 1.0;
  d.cosineSynthesis(c);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(c[i], std::cos(kPi * 3.0 * (2.0 * i + 1.0) / (2.0 * n)),
                1e-10);
  }
}

TEST(Dct, SineSynthesisOfUnitCoefficient) {
  const std::size_t n = 32;
  Dct d(n);
  std::vector<double> c(n, 0.0);
  c[4] = 1.0;  // frequency 5
  d.sineSynthesis(c);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(c[i], std::sin(kPi * 5.0 * (2.0 * i + 1.0) / (2.0 * n)),
                1e-10);
  }
}

TEST(Dct, Transform2dSeparability) {
  // 2-D dct2 then full inverse must round-trip.
  const std::size_t nx = 16, ny = 8;
  auto g = randomReal(nx * ny, 77);
  const auto orig = g;
  Dct dx(nx), dy(ny);
  transform2d(g, nx, ny, dx, dy, TrigOp::kDct2, TrigOp::kDct2);
  transform2d(g, nx, ny, dx, dy, TrigOp::kIdct2, TrigOp::kIdct2);
  for (std::size_t i = 0; i < g.size(); ++i) EXPECT_NEAR(g[i], orig[i], 1e-9);
}

// Poisson: manufacture rho from a single cosine mode and verify the analytic
// potential and field.
TEST(Poisson, SingleModeAnalyticSolution) {
  const std::size_t n = 64;
  const double dx = 0.5, dy = 0.25;
  const double widthX = n * dx, widthY = n * dy;
  const double wu = kPi * 3.0 / widthX;  // mode u=3
  const double wv = kPi * 5.0 / widthY;  // mode v=5
  std::vector<double> rho(n * n);
  for (std::size_t iy = 0; iy < n; ++iy) {
    const double y = (iy + 0.5) * dy;
    for (std::size_t ix = 0; ix < n; ++ix) {
      const double x = (ix + 0.5) * dx;
      rho[iy * n + ix] = std::cos(wu * x) * std::cos(wv * y);
    }
  }
  PoissonSolver solver(n, n, dx, dy);
  solver.solve(rho);
  const double denom = wu * wu + wv * wv;
  for (std::size_t iy = 0; iy < n; iy += 5) {
    const double y = (iy + 0.5) * dy;
    for (std::size_t ix = 0; ix < n; ix += 5) {
      const double x = (ix + 0.5) * dx;
      const double psiRef = std::cos(wu * x) * std::cos(wv * y) / denom;
      const double exRef = -wu * std::sin(wu * x) * std::cos(wv * y) / denom;
      const double eyRef = -wv * std::cos(wu * x) * std::sin(wv * y) / denom;
      EXPECT_NEAR(solver.psi()[iy * n + ix], psiRef, 1e-9);
      EXPECT_NEAR(solver.fieldX()[iy * n + ix], exRef, 1e-9);
      EXPECT_NEAR(solver.fieldY()[iy * n + ix], eyRef, 1e-9);
    }
  }
}

TEST(Poisson, UniformDensityGivesZeroField) {
  const std::size_t n = 32;
  PoissonSolver solver(n, n, 1.0, 1.0);
  std::vector<double> rho(n * n, 3.5);
  solver.solve(rho);
  for (std::size_t i = 0; i < n * n; ++i) {
    EXPECT_NEAR(solver.psi()[i], 0.0, 1e-9);
    EXPECT_NEAR(solver.fieldX()[i], 0.0, 1e-9);
    EXPECT_NEAR(solver.fieldY()[i], 0.0, 1e-9);
  }
}

TEST(Poisson, PotentialHasZeroMean) {
  const std::size_t n = 32;
  PoissonSolver solver(n, n, 2.0, 2.0);
  auto rho = randomReal(n * n, 55);
  solver.solve(rho);
  double mean = 0.0;
  for (double p : solver.psi()) mean += p;
  mean /= static_cast<double>(n * n);
  EXPECT_NEAR(mean, 0.0, 1e-10);
}

TEST(Poisson, FieldPointsAwayFromBlob) {
  // A centered square blob of charge: the field left of center must point
  // further left (negative gradient direction is used by the optimizer as
  // force, so grad psi points toward the blob... check signs precisely).
  const std::size_t n = 64;
  PoissonSolver solver(n, n, 1.0, 1.0);
  std::vector<double> rho(n * n, 0.0);
  for (std::size_t iy = 28; iy < 36; ++iy)
    for (std::size_t ix = 28; ix < 36; ++ix) rho[iy * n + ix] = 1.0;
  solver.solve(rho);
  // psi peaks at the blob; to the left of it d psi / dx > 0 (climbing).
  const std::size_t row = 32;
  EXPECT_GT(solver.fieldX()[row * n + 16], 0.0);
  EXPECT_LT(solver.fieldX()[row * n + 48], 0.0);
  EXPECT_GT(solver.fieldY()[16 * n + 32], 0.0);
  EXPECT_LT(solver.fieldY()[48 * n + 32], 0.0);
  // Potential at the blob exceeds potential at the corner.
  EXPECT_GT(solver.psi()[32 * n + 32], solver.psi()[2 * n + 2]);
}

TEST(Poisson, LaplacianResidualSmallForSmoothRho) {
  // For a band-limited rho (sum of a few modes) the discrete Laplacian of
  // psi should reproduce -rho away from aliasing.
  const std::size_t n = 64;
  const double dx = 1.0, dy = 1.0;
  PoissonSolver solver(n, n, dx, dy);
  std::vector<double> rho(n * n);
  const double widthX = n * dx;
  for (std::size_t iy = 0; iy < n; ++iy) {
    for (std::size_t ix = 0; ix < n; ++ix) {
      const double x = (ix + 0.5) * dx, y = (iy + 0.5) * dy;
      rho[iy * n + ix] = std::cos(kPi * 2 * x / widthX) +
                         0.5 * std::cos(kPi * 4 * y / widthX) *
                             std::cos(kPi * 3 * x / widthX);
    }
  }
  solver.solve(rho);
  auto psi = solver.psi();
  double maxResidual = 0.0;
  for (std::size_t iy = 1; iy + 1 < n; ++iy) {
    for (std::size_t ix = 1; ix + 1 < n; ++ix) {
      const double lap =
          (psi[iy * n + ix + 1] - 2 * psi[iy * n + ix] + psi[iy * n + ix - 1]) /
              (dx * dx) +
          (psi[(iy + 1) * n + ix] - 2 * psi[iy * n + ix] +
           psi[(iy - 1) * n + ix]) /
              (dy * dy);
      maxResidual = std::max(maxResidual, std::abs(lap + rho[iy * n + ix]));
    }
  }
  // Second-order finite differences of low modes: residual O(w^2 dx^2) ~ 1e-2.
  EXPECT_LT(maxResidual, 5e-2);
}

}  // namespace
}  // namespace ep
