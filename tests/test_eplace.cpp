#include <gtest/gtest.h>

#include "eplace/filler.h"
#include "eplace/flow.h"
#include "eplace/global_placer.h"
#include "eval/metrics.h"
#include "gen/generator.h"
#include "qp/initial_place.h"
#include "wirelength/wl.h"

namespace ep {
namespace {

PlacementDB circuit(std::uint64_t seed, std::size_t cells = 500,
                    std::size_t macros = 0, double rhoT = 1.0) {
  GenSpec spec;
  spec.name = "ep";
  spec.numCells = cells;
  spec.numMovableMacros = macros;
  spec.targetDensity = rhoT;
  spec.utilization = rhoT < 1.0 ? 0.45 * rhoT / 0.5 : 0.7;
  spec.seed = seed;
  return generateCircuit(spec);
}

TEST(Fillers, BudgetMatchesWhitespace) {
  const PlacementDB db = circuit(1);
  const FillerSet f = makeFillers(db, 7);
  const double budget = db.targetDensity * db.freeArea() - db.totalMovableArea();
  EXPECT_GT(f.size(), 0u);
  EXPECT_LE(f.totalArea(), budget + 1e-9);
  EXPECT_GT(f.totalArea(), 0.8 * budget);  // within one filler of the budget
}

TEST(Fillers, InsideRegion) {
  const PlacementDB db = circuit(2);
  const FillerSet f = makeFillers(db, 8);
  for (std::size_t k = 0; k < f.size(); ++k) {
    EXPECT_GE(f.cx[k] - f.w * 0.5, db.region.lx - 1e-9);
    EXPECT_LE(f.cx[k] + f.w * 0.5, db.region.hx + 1e-9);
    EXPECT_GE(f.cy[k] - f.h * 0.5, db.region.ly - 1e-9);
    EXPECT_LE(f.cy[k] + f.h * 0.5, db.region.hy + 1e-9);
  }
}

TEST(Fillers, DeterministicPerSeed) {
  const PlacementDB db = circuit(3);
  const FillerSet a = makeFillers(db, 9);
  const FillerSet b = makeFillers(db, 9);
  const FillerSet c = makeFillers(db, 10);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t k = 0; k < a.size(); ++k) {
    EXPECT_DOUBLE_EQ(a.cx[k], b.cx[k]);
  }
  bool differs = false;
  for (std::size_t k = 0; k < std::min(a.size(), c.size()); ++k) {
    if (a.cx[k] != c.cx[k]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(Fillers, NoBudgetNoFillers) {
  PlacementDB db = circuit(4);
  db.targetDensity = 0.05;  // below utilization: nothing left for fillers
  const FillerSet f = makeFillers(db, 11);
  EXPECT_EQ(f.size(), 0u);
}

GpResult runGp(PlacementDB& db, GpConfig cfg = {},
               GlobalPlacer::TraceFn trace = {}) {
  quadraticInitialPlace(db);
  GlobalPlacer gp(db, db.movable(), cfg);
  gp.makeFillersFromDb();
  return gp.run(std::move(trace));
}

TEST(GlobalPlacer, ConvergesToTargetOverflow) {
  PlacementDB db = circuit(5);
  const GpResult res = runGp(db);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.finalOverflow, 0.1 + 1e-6);
  EXPECT_LT(res.iterations, 1500);
  // Exact-footprint overflow on the DB agrees with the placer's number.
  EXPECT_NEAR(densityOverflow(db).overflow, res.finalOverflow, 0.05);
}

TEST(GlobalPlacer, OverflowDecreasesOverall) {
  PlacementDB db = circuit(6);
  std::vector<double> taus;
  runGp(db, {}, [&](const GpIterTrace& t) { taus.push_back(t.overflow); });
  ASSERT_GT(taus.size(), 50u);
  // Monotone in the large: final << initial, and the tail is below the head.
  EXPECT_LT(taus.back(), 0.11);
  EXPECT_GT(taus.front(), 0.5);
  EXPECT_LT(taus[taus.size() / 2], taus.front());
}

TEST(GlobalPlacer, Deterministic) {
  PlacementDB a = circuit(7);
  PlacementDB b = circuit(7);
  runGp(a);
  runGp(b);
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.objects[i].lx, b.objects[i].lx);
    EXPECT_DOUBLE_EQ(a.objects[i].ly, b.objects[i].ly);
  }
}

TEST(GlobalPlacer, CellsStayInRegion) {
  PlacementDB db = circuit(8);
  runGp(db);
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    EXPECT_TRUE(db.region.expanded(1e-6).contains(o.rect())) << o.name;
  }
}

TEST(GlobalPlacer, RespectsLowTargetDensity) {
  PlacementDB db = circuit(9, 500, 0, 0.5);
  const GpResult res = runGp(db);
  EXPECT_TRUE(res.converged);
  // Peak overflow-bin density should sit near the 0.5 cap, far below the
  // piled-up extreme (values slightly above rho_t are quantization).
  EXPECT_LT(densityOverflow(db).maxDensity, 0.9);
}

TEST(GlobalPlacer, TraceIsInvokedEveryIteration) {
  PlacementDB db = circuit(10, 300);
  int count = 0;
  const GpResult res = runGp(db, {}, [&](const GpIterTrace&) { ++count; });
  EXPECT_EQ(count, res.iterations);
}

TEST(GlobalPlacer, ScheduleDynamicsAreHealthy) {
  // The bring-up signature of a working mGP (docs/ALGORITHM.md §3): lambda
  // grows overall, gamma shrinks with the overflow, steplengths stay
  // positive and finite, and backtracks stay rare.
  PlacementDB db = circuit(20, 400);
  std::vector<GpIterTrace> trace;
  runGp(db, {}, [&](const GpIterTrace& t) { trace.push_back(t); });
  ASSERT_GT(trace.size(), 30u);
  EXPECT_GT(trace.back().lambda, trace.front().lambda);
  EXPECT_LT(trace.back().gamma, trace.front().gamma);
  long btTotal = 0;
  for (const auto& t : trace) {
    EXPECT_GT(t.alpha, 0.0);
    EXPECT_TRUE(std::isfinite(t.alpha));
    EXPECT_TRUE(std::isfinite(t.hpwl));
    EXPECT_GE(t.energy, 0.0);
    btTotal += t.backtracks;
  }
  EXPECT_LT(btTotal, 2 * static_cast<long>(trace.size()));
  // Energy at the end is far below the start (spreading happened).
  EXPECT_LT(trace.back().energy, 0.2 * trace.front().energy);
}

TEST(GlobalPlacer, DisablingPreconditionerHurts) {
  // Sec. V-D: without the preconditioner, macro gradients dwarf cell
  // gradients and mixed-size placement fails to converge (or badly lags).
  GenSpec spec;
  spec.name = "precond";
  spec.numCells = 400;
  spec.numMovableMacros = 3;
  spec.macroAreaFraction = 0.5;  // few huge macros: worst case for scaling
  spec.seed = 11;
  PlacementDB withP = generateCircuit(spec);
  PlacementDB withoutP = generateCircuit(spec);
  GpConfig cfg;
  cfg.maxIterations = 800;
  const GpResult rp = runGp(withP, cfg);
  GpConfig cfgNo = cfg;
  cfgNo.enablePreconditioner = false;
  const GpResult rn = runGp(withoutP, cfgNo);
  EXPECT_TRUE(rp.converged);
  // At full MMS scale (macros ~1000x cell area) the paper reports outright
  // divergence; at this scaled-down ratio the gap is consistent but
  // smaller — bench_ablation_precond reports the measured numbers.
  const bool failed = !rn.converged;
  const bool slower = rn.iterations > 2 * rp.iterations;
  const bool worse = rn.finalHpwl > 1.01 * rp.finalHpwl;
  EXPECT_TRUE(failed || worse || slower)
      << "precond: " << rp.iterations << " iters, HPWL " << rp.finalHpwl
      << "; unpreconditioned: " << rn.iterations << " iters, HPWL "
      << rn.finalHpwl;
}

TEST(GlobalPlacer, BacktracksAreRare) {
  // Paper Sec. V-C: ~1.04 backtracks per iteration on average.
  PlacementDB db = circuit(12, 400);
  const GpResult res = runGp(db);
  EXPECT_LT(static_cast<double>(res.backtracks),
            2.0 * static_cast<double>(res.iterations));
}

TEST(GlobalPlacer, FillerOnlyMovesOnlyFillers) {
  PlacementDB db = circuit(13, 300, 4);
  quadraticInitialPlace(db);
  GlobalPlacer gp(db, db.movable(), {});
  gp.makeFillersFromDb();
  const auto before = db.objects;
  const FillerSet fBefore = gp.fillers();
  gp.runFillerOnly(10);
  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    EXPECT_DOUBLE_EQ(db.objects[i].lx, before[i].lx);
  }
  bool fillersMoved = false;
  for (std::size_t k = 0; k < fBefore.size(); ++k) {
    if (gp.fillers().cx[k] != fBefore.cx[k]) fillersMoved = true;
  }
  EXPECT_TRUE(fillersMoved);
}

TEST(Flow, StdCellFlowIsLegalAndConverged) {
  PlacementDB db = circuit(14, 600);
  const FlowResult res = runEplaceFlow(db);
  EXPECT_TRUE(res.mgpResult.converged);
  EXPECT_FALSE(res.mlg.ran);  // no movable macros -> mLG/cGP skipped
  EXPECT_FALSE(res.cgp.ran);
  EXPECT_TRUE(res.legality.legal) << res.legality.firstIssue;
  EXPECT_GT(res.finalHpwl, 0.0);
}

TEST(Flow, MixedSizeFlowRunsAllStages) {
  PlacementDB db = circuit(15, 500, 6);
  const FlowResult res = runEplaceFlow(db);
  EXPECT_TRUE(res.mip.ran);
  EXPECT_TRUE(res.mgp.ran);
  EXPECT_TRUE(res.mlg.ran);
  EXPECT_TRUE(res.cgp.ran);
  EXPECT_TRUE(res.cdp.ran);
  EXPECT_TRUE(res.mlgResult.legal);
  EXPECT_TRUE(res.legality.legal) << res.legality.firstIssue;
  // Macros frozen after mLG.
  for (const auto& o : db.objects) {
    if (o.kind == ObjKind::kMacro) EXPECT_TRUE(o.fixed);
  }
}

TEST(Flow, CgpLambdaIsRewound) {
  PlacementDB db = circuit(16, 400, 5);
  const FlowResult res = runEplaceFlow(db);
  // cGP starts from lambda_mGP * 1.1^-m; by the end it must have grown back
  // but the recorded rewind means cGP ran with a real schedule. Check the
  // stage actually iterated and converged.
  EXPECT_GT(res.cgpResult.iterations, 5);
  EXPECT_LE(res.cgpResult.finalOverflow, 0.12);
}

TEST(Flow, TraceSeesStages) {
  PlacementDB db = circuit(17, 400, 4);
  FlowConfig cfg;
  bool sawMgp = false, sawCgp = false;
  cfg.gpTrace = [&](const std::string& stage, const GpIterTrace&) {
    if (stage == "mGP") sawMgp = true;
    if (stage == "cGP") sawCgp = true;
  };
  runEplaceFlow(db, cfg);
  EXPECT_TRUE(sawMgp);
  EXPECT_TRUE(sawCgp);
}

TEST(Flow, StageTimesAreRecorded) {
  PlacementDB db = circuit(18, 300);
  const FlowResult res = runEplaceFlow(db);
  EXPECT_GT(res.stageSeconds.get("mGP"), 0.0);
  EXPECT_GT(res.stageSeconds.get("cDP"), 0.0);
  EXPECT_GT(res.mgpInner.get("density"), 0.0);
  EXPECT_GT(res.mgpInner.get("wirelength"), 0.0);
  EXPECT_LE(res.mgpInner.total(), res.stageSeconds.get("mGP") + 0.5);
}

TEST(Flow, DisablingFillerOnlyStillLegal) {
  PlacementDB db = circuit(19, 400, 4);
  FlowConfig cfg;
  cfg.enableFillerOnly = false;
  const FlowResult res = runEplaceFlow(db, cfg);
  EXPECT_TRUE(res.legality.legal) << res.legality.firstIssue;
}

}  // namespace
}  // namespace ep
