// RunRecord schema + determinism tests (docs/OBSERVABILITY.md).
//
// The record is the substrate of the regression gate, so the gate's
// assumptions are enforced here: the JSON schema round-trips losslessly
// (including IEEE bit patterns), parsing is strict in both directions
// (missing AND unknown fields are typed errors — schema drift cannot slip
// through silently), and the deterministic fields really are bit-identical
// across repeated runs and across thread counts at a fixed seed.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "eplace/session.h"
#include "eplace/supervisor.h"
#include "gen/generator.h"
#include "model/netlist.h"
#include "util/run_record.h"

namespace ep {
namespace {

RunRecord sampleRecord() {
  RunRecord rec;
  rec.name = "sample";
  rec.fingerprint = 0xDEADBEEFCAFEF00DULL;
  rec.seed = 42;
  rec.threads = 4;
  rec.supervised = true;
  for (const char* name : {"mIP", "mGP", "mLG", "cGP", "cDP"}) {
    StageRecord st;
    st.stage = name;
    st.ran = true;
    st.wallMs = 12.5;
    st.iterations = 300;
    st.hpwl = 1.25e6;
    st.hpwlBits = doubleBits(st.hpwl);
    st.overflow = 0.07;
    st.retries = 1;
    st.recoveries = 2;
    st.rollbacks = 0;
    st.snapshots = 1;
    rec.stages.push_back(st);
  }
  rec.finalHpwl = 1.2e6;
  rec.finalHpwlBits = doubleBits(rec.finalHpwl);
  rec.finalScaledHpwl = 1.3e6;
  rec.finalOverflow = 0.05;
  rec.legal = true;
  rec.totalSeconds = 0.8;
  rec.peakBytes = 1 << 20;
  rec.arenaGrowthEvents = 3;
  rec.snapshotsWritten = 5;
  rec.status = "Ok";
  rec.stats = {{"flow.mGP.retries", 1.0}, {"gp.iterations", 300.0}};
  return rec;
}

PlacementDB smallCircuit(std::uint64_t seed) {
  GenSpec spec;
  spec.name = "rec";
  spec.numCells = 250;
  spec.numMovableMacros = 2;
  spec.seed = seed;
  return generateCircuit(spec);
}

RunRecord runSessionRecord(std::uint64_t seed, int threads) {
  SessionOptions so;
  so.name = "rec";
  so.threads = threads;
  so.seed = seed;
  so.flow.runDetail = false;
  so.flow.gp.maxIterations = 100;
  PlacerSession s(so);
  EXPECT_TRUE(s.adopt(smallCircuit(7)).ok());
  EXPECT_TRUE(s.place().ok());
  EXPECT_NE(s.record(), nullptr);
  return *s.record();
}

using RunRecordTest = ::testing::Test;

TEST_F(RunRecordTest, HexBits64RoundTrip) {
  const std::uint64_t patterns[] = {0, 1, 0xFFFFFFFFFFFFFFFFULL,
                                    doubleBits(-0.0), doubleBits(3.14159)};
  for (const std::uint64_t bits : patterns) {
    const std::string hex = hexBits64(bits);
    EXPECT_EQ(hex.size(), 18u);  // "0x" + 16 digits
    std::uint64_t back = 0;
    ASSERT_TRUE(parseHexBits64(hex, &back)) << hex;
    EXPECT_EQ(back, bits);
  }
  std::uint64_t out = 0;
  EXPECT_FALSE(parseHexBits64("", &out));
  EXPECT_FALSE(parseHexBits64("0x12", &out));             // too short
  EXPECT_FALSE(parseHexBits64("0xZZZZZZZZZZZZZZZZ", &out));
  EXPECT_FALSE(parseHexBits64("1234567890abcdef12", &out));  // no 0x
}

TEST_F(RunRecordTest, SchemaRoundTripIsLossless) {
  const RunRecord rec = sampleRecord();
  const StatusOr<RunRecord> back = parseRunRecord(writeRunRecord(rec));
  ASSERT_TRUE(back.ok()) << back.status().toString();
  const RunRecord& b = back.value();
  EXPECT_EQ(b.schemaVersion, rec.schemaVersion);
  EXPECT_EQ(b.name, rec.name);
  EXPECT_EQ(b.fingerprint, rec.fingerprint);
  EXPECT_EQ(b.seed, rec.seed);
  EXPECT_EQ(b.threads, rec.threads);
  EXPECT_EQ(b.supervised, rec.supervised);
  ASSERT_EQ(b.stages.size(), rec.stages.size());
  for (std::size_t i = 0; i < rec.stages.size(); ++i) {
    EXPECT_EQ(b.stages[i].stage, rec.stages[i].stage);
    EXPECT_EQ(b.stages[i].ran, rec.stages[i].ran);
    EXPECT_EQ(b.stages[i].iterations, rec.stages[i].iterations);
    EXPECT_EQ(b.stages[i].hpwlBits, rec.stages[i].hpwlBits);
    EXPECT_EQ(b.stages[i].retries, rec.stages[i].retries);
    EXPECT_EQ(b.stages[i].recoveries, rec.stages[i].recoveries);
    EXPECT_EQ(b.stages[i].rollbacks, rec.stages[i].rollbacks);
    EXPECT_EQ(b.stages[i].snapshots, rec.stages[i].snapshots);
  }
  EXPECT_EQ(b.finalHpwlBits, rec.finalHpwlBits);
  EXPECT_EQ(doubleBits(b.finalScaledHpwl), doubleBits(rec.finalScaledHpwl));
  EXPECT_EQ(doubleBits(b.finalOverflow), doubleBits(rec.finalOverflow));
  EXPECT_EQ(b.legal, rec.legal);
  EXPECT_EQ(b.peakBytes, rec.peakBytes);
  EXPECT_EQ(b.arenaGrowthEvents, rec.arenaGrowthEvents);
  EXPECT_EQ(b.snapshotsWritten, rec.snapshotsWritten);
  EXPECT_EQ(b.status, rec.status);
  EXPECT_EQ(b.stats, rec.stats);
}

TEST_F(RunRecordTest, BitPatternsSurviveTextRoundTrip) {
  // The JSON number path alone can lose the last ulp through a weak
  // printf/strtod; the *_bits hex fields are authoritative. -0.0 is the
  // classic casualty of a value-level comparison.
  RunRecord rec = sampleRecord();
  rec.finalHpwl = -0.0;
  rec.finalHpwlBits = doubleBits(-0.0);
  const StatusOr<RunRecord> back = parseRunRecord(writeRunRecord(rec));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().finalHpwlBits, doubleBits(-0.0));
  EXPECT_NE(back.value().finalHpwlBits, doubleBits(0.0));
}

TEST_F(RunRecordTest, MissingFieldIsTypedError) {
  const StatusOr<JsonValue> parsed =
      parseJson(writeRunRecord(sampleRecord()));
  ASSERT_TRUE(parsed.ok());
  // Rebuild the top-level object without "seed".
  JsonValue mutated = JsonValue::object();
  for (const auto& [key, value] : parsed.value().members()) {
    if (key != "seed") mutated.set(key, value);
  }
  RunRecord out;
  const Status st = runRecordFromJson(mutated, &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidInput);
  EXPECT_NE(st.toString().find("seed"), std::string::npos) << st.toString();
}

TEST_F(RunRecordTest, UnknownFieldIsTypedError) {
  StatusOr<JsonValue> parsed = parseJson(writeRunRecord(sampleRecord()));
  ASSERT_TRUE(parsed.ok());
  parsed.value().set("surprise", JsonValue::number(1));
  RunRecord out;
  const Status st = runRecordFromJson(parsed.value(), &out);
  EXPECT_EQ(st.code(), StatusCode::kInvalidInput);
  EXPECT_NE(st.toString().find("surprise"), std::string::npos)
      << st.toString();
}

TEST_F(RunRecordTest, FileRoundTripDurable) {
  const std::string path =
      ::testing::TempDir() + "/run_record_roundtrip.json";
  const RunRecord rec = sampleRecord();
  ASSERT_TRUE(writeRunRecordFile(path, rec).ok());
  const StatusOr<RunRecord> back = readRunRecordFile(path);
  ASSERT_TRUE(back.ok()) << back.status().toString();
  EXPECT_EQ(back.value().fingerprint, rec.fingerprint);
  EXPECT_EQ(back.value().finalHpwlBits, rec.finalHpwlBits);
  std::remove(path.c_str());
}

TEST_F(RunRecordTest, FingerprintHashesInputsNotSolverOutput) {
  PlacementDB a = smallCircuit(7);
  PlacementDB b = smallCircuit(7);
  EXPECT_EQ(netlistFingerprint(a), netlistFingerprint(b));
  // Moving a movable cell is solver output — the fingerprint must not move.
  for (auto i : b.movable()) {
    auto& o = b.objects[static_cast<std::size_t>(i)];
    o.lx += 5.0;
    o.ly += 5.0;
    break;
  }
  EXPECT_EQ(netlistFingerprint(a), netlistFingerprint(b));
  // A different instance is a different fingerprint.
  PlacementDB c = smallCircuit(8);
  EXPECT_NE(netlistFingerprint(a), netlistFingerprint(c));
}

TEST_F(RunRecordTest, RepeatedRunsBitIdenticalDeterministicFields) {
  const RunRecord r1 = runSessionRecord(21, 2);
  const RunRecord r2 = runSessionRecord(21, 2);
  EXPECT_EQ(r1.fingerprint, r2.fingerprint);
  EXPECT_EQ(r1.finalHpwlBits, r2.finalHpwlBits);
  EXPECT_EQ(doubleBits(r1.finalScaledHpwl), doubleBits(r2.finalScaledHpwl));
  EXPECT_EQ(doubleBits(r1.finalOverflow), doubleBits(r2.finalOverflow));
  ASSERT_EQ(r1.stages.size(), r2.stages.size());
  for (std::size_t i = 0; i < r1.stages.size(); ++i) {
    EXPECT_EQ(r1.stages[i].ran, r2.stages[i].ran);
    EXPECT_EQ(r1.stages[i].iterations, r2.stages[i].iterations)
        << r1.stages[i].stage;
    EXPECT_EQ(r1.stages[i].hpwlBits, r2.stages[i].hpwlBits)
        << r1.stages[i].stage;
    EXPECT_EQ(r1.stages[i].retries, r2.stages[i].retries);
    EXPECT_EQ(r1.stages[i].rollbacks, r2.stages[i].rollbacks);
  }
  // The full gate agrees: one run as baseline, the other as candidate.
  RegressPolicy policy;
  policy.checkWall = false;  // same machine, but keep the unit test noise-free
  const RegressResult res = compareRunRecords(r1, {r2}, policy);
  EXPECT_TRUE(res.pass) << res.summary();
}

TEST_F(RunRecordTest, OneVsFourThreadsBitIdenticalQuality) {
  // The determinism contract: thread count changes wall time and the
  // `threads` precondition field, never the quality fields.
  const RunRecord r1 = runSessionRecord(33, 1);
  const RunRecord r4 = runSessionRecord(33, 4);
  EXPECT_EQ(r1.fingerprint, r4.fingerprint);
  EXPECT_EQ(r1.finalHpwlBits, r4.finalHpwlBits);
  EXPECT_EQ(doubleBits(r1.finalOverflow), doubleBits(r4.finalOverflow));
  ASSERT_EQ(r1.stages.size(), r4.stages.size());
  for (std::size_t i = 0; i < r1.stages.size(); ++i) {
    EXPECT_EQ(r1.stages[i].hpwlBits, r4.stages[i].hpwlBits)
        << r1.stages[i].stage;
    EXPECT_EQ(r1.stages[i].iterations, r4.stages[i].iterations)
        << r1.stages[i].stage;
  }
}

TEST_F(RunRecordTest, SupervisedSessionRecordIsSchemaValid) {
  SessionOptions so;
  so.name = "sup";
  so.threads = 2;
  so.supervised = true;
  so.flow.runDetail = false;
  so.flow.gp.maxIterations = 80;
  PlacerSession s(so);
  ASSERT_TRUE(s.adopt(smallCircuit(5)).ok());
  ASSERT_TRUE(s.place().ok());
  ASSERT_NE(s.record(), nullptr);
  const RunRecord& rec = *s.record();
  EXPECT_TRUE(rec.supervised);
  EXPECT_EQ(rec.threads, 2);
  // Round-trip through the strict parser — the record a live session
  // emits must satisfy its own schema.
  const StatusOr<RunRecord> back = parseRunRecord(writeRunRecord(rec));
  ASSERT_TRUE(back.ok()) << back.status().toString();
  EXPECT_EQ(back.value().finalHpwlBits, rec.finalHpwlBits);
  EXPECT_FALSE(rec.stats.empty());  // context stats registry dump rode along
}

// --- bench_results/ retention (pruneRecordFiles) ---------------------------

TEST_F(RunRecordTest, PruneRecordFilesRotatesOldestFirst) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("prune_" + std::string(::testing::UnitTest::GetInstance()
                                  ->current_test_info()
                                  ->name()));
  fs::remove_all(dir);
  fs::create_directories(dir);
  auto touch = [&](const std::string& name) {
    std::ofstream(dir / name) << "{}\n";
  };
  // Sortable keys in the name define age; mtime is deliberately ignored.
  for (const char* n : {"sweep_0001.json", "sweep_0002.json",
                        "sweep_0003.json", "sweep_0004.json",
                        "sweep_0005.json"}) {
    touch(n);
  }
  touch("other_0001.json");   // different tool: untouched
  touch("sweep_0000.notes");  // not a .json record: untouched

  EXPECT_EQ(pruneRecordFiles(dir.string(), "sweep", 2), 3u);
  EXPECT_FALSE(fs::exists(dir / "sweep_0001.json"));
  EXPECT_FALSE(fs::exists(dir / "sweep_0002.json"));
  EXPECT_FALSE(fs::exists(dir / "sweep_0003.json"));
  EXPECT_TRUE(fs::exists(dir / "sweep_0004.json"));
  EXPECT_TRUE(fs::exists(dir / "sweep_0005.json"));
  EXPECT_TRUE(fs::exists(dir / "other_0001.json"));
  EXPECT_TRUE(fs::exists(dir / "sweep_0000.notes"));

  // Within the cap: a second prune is a no-op (deterministic fixpoint).
  EXPECT_EQ(pruneRecordFiles(dir.string(), "sweep", 2), 0u);
  // maxFiles == 0 means unlimited, never a mass delete.
  EXPECT_EQ(pruneRecordFiles(dir.string(), "sweep", 0), 0u);
  // Missing directory is a no-op, not an error.
  EXPECT_EQ(pruneRecordFiles((dir / "nope").string(), "sweep", 1), 0u);
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ep
