#include <gtest/gtest.h>

#include "model/netlist.h"

namespace ep {
namespace {

PlacementDB smallDb() {
  PlacementDB db;
  db.name = "t";
  db.region = {0, 0, 100, 100};
  auto add = [&](const std::string& name, double w, double h, bool fixed,
                 ObjKind kind) {
    Object o;
    o.name = name;
    o.w = w;
    o.h = h;
    o.fixed = fixed;
    o.kind = kind;
    db.objects.push_back(o);
  };
  add("a", 2, 1, false, ObjKind::kStdCell);
  add("b", 3, 1, false, ObjKind::kStdCell);
  add("m", 10, 10, false, ObjKind::kMacro);
  add("io", 1, 1, true, ObjKind::kIo);
  Net n1;
  n1.name = "n1";
  n1.pins = {{0, 0, 0}, {1, 0.5, 0}, {3, 0, 0}};
  Net n2;
  n2.name = "n2";
  n2.pins = {{1, 0, 0}, {2, -1, 2}};
  db.nets = {n1, n2};
  db.rows.push_back({0, 0, 1.0, 1.0, 100});
  db.finalize();
  return db;
}

TEST(Model, ObjectGeometry) {
  Object o;
  o.w = 4;
  o.h = 2;
  o.lx = 10;
  o.ly = 20;
  EXPECT_DOUBLE_EQ(o.area(), 8.0);
  EXPECT_EQ(o.rect(), Rect(10, 20, 14, 22));
  EXPECT_EQ(o.center(), Point(12, 21));
  o.setCenter(0, 0);
  EXPECT_DOUBLE_EQ(o.lx, -2.0);
  EXPECT_DOUBLE_EQ(o.ly, -1.0);
}

TEST(Model, FinalizeBuildsMovableList) {
  const auto db = smallDb();
  ASSERT_EQ(db.numMovable(), 3u);
  EXPECT_EQ(db.movable()[0], 0);
  EXPECT_EQ(db.movable()[1], 1);
  EXPECT_EQ(db.movable()[2], 2);
  EXPECT_EQ(db.numMovableMacros(), 1u);
}

TEST(Model, DegreeAndNetsOf) {
  const auto db = smallDb();
  EXPECT_EQ(db.degreeOf(0), 1);
  EXPECT_EQ(db.degreeOf(1), 2);  // on both nets
  EXPECT_EQ(db.degreeOf(2), 1);
  EXPECT_EQ(db.degreeOf(3), 1);
  const auto nets1 = db.netsOf(1);
  ASSERT_EQ(nets1.size(), 2u);
  EXPECT_EQ(nets1[0], 0);
  EXPECT_EQ(nets1[1], 1);
}

TEST(Model, Areas) {
  auto db = smallDb();
  EXPECT_DOUBLE_EQ(db.totalMovableArea(), 2 + 3 + 100);
  // io is 1x1 fixed inside the region.
  EXPECT_DOUBLE_EQ(db.fixedAreaInRegion(), 1.0);
  EXPECT_DOUBLE_EQ(db.freeArea(), 100 * 100 - 1.0);
  // A fixed object partially outside only counts its clipped part.
  db.objects[3].lx = -0.5;
  EXPECT_DOUBLE_EQ(db.fixedAreaInRegion(), 0.5);
}

TEST(Model, PinPositions) {
  auto db = smallDb();
  db.objects[1].setCenter(50, 60);
  const Point p = db.pinPos(db.nets[0].pins[1]);
  EXPECT_DOUBLE_EQ(p.x, 50.5);
  EXPECT_DOUBLE_EQ(p.y, 60.0);
}

TEST(Model, ValidatePasses) { EXPECT_TRUE(smallDb().validate().ok()); }

TEST(Model, ValidateCatchesBadPin) {
  auto db = smallDb();
  // Corrupt a pin after finalize; validate() must flag it (and must be run
  // before any re-finalize, which assumes valid indices).
  db.nets[0].pins[0].obj = 99;
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesEmptyRegion) {
  auto db = smallDb();
  db.region = {0, 0, 0, 0};
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesNonPositiveDims) {
  auto db = smallDb();
  db.objects[0].w = 0.0;
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesEmptyNet) {
  auto db = smallDb();
  db.nets.push_back(Net{"empty", {}, 1.0});
  db.finalize();
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesBadWeight) {
  auto db = smallDb();
  db.nets[0].weight = 0.0;
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesBadDensity) {
  auto db = smallDb();
  db.targetDensity = 1.5;
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesUnfinalized) {
  PlacementDB db;
  db.region = {0, 0, 1, 1};
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, RowGeometry) {
  Row r{5.0, 10.0, 1.0, 2.0, 10};
  EXPECT_DOUBLE_EQ(r.hx(), 25.0);
}

}  // namespace
}  // namespace ep
