#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "model/capacity.h"
#include "model/netlist.h"
#include "util/checked_math.h"
#include "util/status.h"

namespace ep {
namespace {

PlacementDB smallDb() {
  PlacementDB db;
  db.name = "t";
  db.region = {0, 0, 100, 100};
  auto add = [&](const std::string& name, double w, double h, bool fixed,
                 ObjKind kind) {
    Object o;
    o.name = name;
    o.w = w;
    o.h = h;
    o.fixed = fixed;
    o.kind = kind;
    db.objects.push_back(o);
  };
  add("a", 2, 1, false, ObjKind::kStdCell);
  add("b", 3, 1, false, ObjKind::kStdCell);
  add("m", 10, 10, false, ObjKind::kMacro);
  add("io", 1, 1, true, ObjKind::kIo);
  Net n1;
  n1.name = "n1";
  n1.pins = {{0, 0, 0}, {1, 0.5, 0}, {3, 0, 0}};
  Net n2;
  n2.name = "n2";
  n2.pins = {{1, 0, 0}, {2, -1, 2}};
  db.nets = {n1, n2};
  db.rows.push_back({0, 0, 1.0, 1.0, 100});
  db.finalize();
  return db;
}

TEST(Model, ObjectGeometry) {
  Object o;
  o.w = 4;
  o.h = 2;
  o.lx = 10;
  o.ly = 20;
  EXPECT_DOUBLE_EQ(o.area(), 8.0);
  EXPECT_EQ(o.rect(), Rect(10, 20, 14, 22));
  EXPECT_EQ(o.center(), Point(12, 21));
  o.setCenter(0, 0);
  EXPECT_DOUBLE_EQ(o.lx, -2.0);
  EXPECT_DOUBLE_EQ(o.ly, -1.0);
}

TEST(Model, FinalizeBuildsMovableList) {
  const auto db = smallDb();
  ASSERT_EQ(db.numMovable(), 3u);
  EXPECT_EQ(db.movable()[0], 0);
  EXPECT_EQ(db.movable()[1], 1);
  EXPECT_EQ(db.movable()[2], 2);
  EXPECT_EQ(db.numMovableMacros(), 1u);
}

TEST(Model, DegreeAndNetsOf) {
  const auto db = smallDb();
  EXPECT_EQ(db.degreeOf(0), 1);
  EXPECT_EQ(db.degreeOf(1), 2);  // on both nets
  EXPECT_EQ(db.degreeOf(2), 1);
  EXPECT_EQ(db.degreeOf(3), 1);
  const auto nets1 = db.netsOf(1);
  ASSERT_EQ(nets1.size(), 2u);
  EXPECT_EQ(nets1[0], 0);
  EXPECT_EQ(nets1[1], 1);
}

TEST(Model, Areas) {
  auto db = smallDb();
  EXPECT_DOUBLE_EQ(db.totalMovableArea(), 2 + 3 + 100);
  // io is 1x1 fixed inside the region.
  EXPECT_DOUBLE_EQ(db.fixedAreaInRegion(), 1.0);
  EXPECT_DOUBLE_EQ(db.freeArea(), 100 * 100 - 1.0);
  // A fixed object partially outside only counts its clipped part.
  db.objects[3].lx = -0.5;
  EXPECT_DOUBLE_EQ(db.fixedAreaInRegion(), 0.5);
}

TEST(Model, PinPositions) {
  auto db = smallDb();
  db.objects[1].setCenter(50, 60);
  const Point p = db.pinPos(db.nets[0].pins[1]);
  EXPECT_DOUBLE_EQ(p.x, 50.5);
  EXPECT_DOUBLE_EQ(p.y, 60.0);
}

TEST(Model, ValidatePasses) { EXPECT_TRUE(smallDb().validate().ok()); }

TEST(Model, ValidateCatchesBadPin) {
  auto db = smallDb();
  // Corrupt a pin after finalize; validate() must flag it (and must be run
  // before any re-finalize, which assumes valid indices).
  db.nets[0].pins[0].obj = 99;
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesEmptyRegion) {
  auto db = smallDb();
  db.region = {0, 0, 0, 0};
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesNonPositiveDims) {
  auto db = smallDb();
  db.objects[0].w = 0.0;
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesEmptyNet) {
  auto db = smallDb();
  db.nets.push_back(Net{"empty", {}, 1.0});
  db.finalize();
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesBadWeight) {
  auto db = smallDb();
  db.nets[0].weight = 0.0;
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesBadDensity) {
  auto db = smallDb();
  db.targetDensity = 1.5;
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, ValidateCatchesUnfinalized) {
  PlacementDB db;
  db.region = {0, 0, 1, 1};
  EXPECT_FALSE(db.validate().ok());
}

TEST(Model, RowGeometry) {
  Row r{5.0, 10.0, 1.0, 2.0, 10};
  EXPECT_DOUBLE_EQ(r.hx(), 25.0);
}

// --- 32-bit index-space gate (util/checked_math.h + model/capacity.h) ------

TEST(Model, CheckedMathBoundaries) {
  EXPECT_TRUE(fitsIndex32(0));
  EXPECT_TRUE(fitsIndex32(kMaxIndex32));
  EXPECT_FALSE(fitsIndex32(kMaxIndex32 + 1));

  std::int32_t idx = -7;
  EXPECT_TRUE(checkedIndex32(kMaxIndex32, &idx));
  EXPECT_EQ(idx, std::numeric_limits<std::int32_t>::max());
  idx = -7;
  EXPECT_FALSE(checkedIndex32(kMaxIndex32 + 1, &idx));
  EXPECT_EQ(idx, -7);  // untouched on overflow

  std::size_t out = 0;
  const std::size_t big = std::numeric_limits<std::size_t>::max();
  EXPECT_TRUE(checkedMulSize(1u << 20, 1u << 10, &out));
  EXPECT_EQ(out, std::size_t{1} << 30);
  EXPECT_FALSE(checkedMulSize(big / 2 + 1, 2, &out));
  EXPECT_TRUE(checkedMulSize(0, big, &out));
  EXPECT_EQ(out, 0u);
  EXPECT_TRUE(checkedAddSize(big - 1, 1, &out));
  EXPECT_EQ(out, big);
  EXPECT_FALSE(checkedAddSize(big, 1, &out));
}

TEST(Model, PlanCapacitySizesTheInstance) {
  const auto plan = planCapacity({1000, 1100, 3800, 64});
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->counts.objects, 1000u);
  EXPECT_GT(plan->dbBytes, 0u);
  EXPECT_GT(plan->viewBytes, 0u);
  EXPECT_EQ(plan->totalBytes(), plan->dbBytes + plan->viewBytes);
  // More pins cannot plan smaller.
  const auto bigger = planCapacity({1000, 1100, 7600, 64});
  ASSERT_TRUE(bigger.ok());
  EXPECT_GT(bigger->totalBytes(), plan->totalBytes());
}

TEST(Model, PlanCapacityRejectsCountsBeyondIndex32) {
  // Each count is gated separately; any overflow is a typed kInvalidInput
  // *before* a single array is sized.
  const std::size_t over = kMaxIndex32 + 1;
  for (const CapacityCounts c :
       {CapacityCounts{over, 10, 10, 1}, CapacityCounts{10, over, 10, 1},
        CapacityCounts{10, 10, over, 1}, CapacityCounts{10, 10, 10, over}}) {
    const auto plan = planCapacity(c);
    ASSERT_FALSE(plan.ok());
    EXPECT_EQ(plan.status().code(), StatusCode::kInvalidInput);
  }
  // Exactly at the boundary the gate itself passes (the byte model may
  // still overflow on a smaller machine's size_t, but not on 64-bit).
  const auto atMax = planCapacity({kMaxIndex32, 0, 0, 0});
  EXPECT_TRUE(atMax.ok());
}

TEST(Model, ReserveCapacityMakesAssemblyRegrowthFree) {
  const auto plan = planCapacity({64, 32, 128, 4});
  ASSERT_TRUE(plan.ok());
  PlacementDB db;
  reserveCapacity(db, *plan);
  EXPECT_GE(db.objects.capacity(), 64u);
  EXPECT_GE(db.nets.capacity(), 32u);
  EXPECT_GE(db.rows.capacity(), 4u);
}

}  // namespace
}  // namespace ep
