// Cross-module integration tests: whole-flow runs over the experiment
// suites, Bookshelf round-trips through the flow, and end-to-end
// determinism. These are the tests a release would gate on.
#include <gtest/gtest.h>

#include <filesystem>

#include "baseline/mincut.h"
#include "baseline/quadratic.h"
#include "bookshelf/bookshelf.h"
#include "eplace/flow.h"
#include "eval/metrics.h"
#include "gen/suites.h"
#include "legal/detail.h"
#include "legal/legalize.h"
#include "wirelength/wl.h"

namespace ep {
namespace {

/// Shrink a suite spec so the sweep stays fast while keeping its character
/// (density cap, macro mix).
GenSpec shrunk(GenSpec spec) {
  spec.numCells = std::min<std::size_t>(spec.numCells, 700);
  spec.numMovableMacros = std::min<std::size_t>(spec.numMovableMacros, 6);
  return spec;
}

class SuiteFlow : public ::testing::TestWithParam<const char*> {};

TEST_P(SuiteFlow, EndToEndLegalAndConverged) {
  PlacementDB db = generateCircuit(shrunk(suiteSpec(GetParam())));
  const FlowResult res = runEplaceFlow(db);
  EXPECT_TRUE(res.mgpResult.converged) << GetParam();
  const auto rep = checkLegality(db);
  EXPECT_TRUE(rep.legal) << GetParam() << ": " << rep.firstIssue;
  // Detail-placed layout must respect the density cap within tolerance.
  EXPECT_LT(densityOverflow(db).overflow, 0.25) << GetParam();
  EXPECT_GT(res.finalHpwl, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Circuits, SuiteFlow,
    ::testing::Values("ispd05_adaptec1s", "ispd05_bigblue1s",
                      "ispd06_adaptec5s", "ispd06_newblue2s", "mms_adaptec1s",
                      "mms_newblue1s", "mms_newblue4s"));

TEST(Integration, FlowIsDeterministicEndToEnd) {
  const GenSpec spec = shrunk(suiteSpec("mms_adaptec1s"));
  PlacementDB a = generateCircuit(spec);
  PlacementDB b = generateCircuit(spec);
  const FlowResult ra = runEplaceFlow(a);
  const FlowResult rb = runEplaceFlow(b);
  EXPECT_DOUBLE_EQ(ra.finalHpwl, rb.finalHpwl);
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.objects[i].lx, b.objects[i].lx);
    EXPECT_DOUBLE_EQ(a.objects[i].ly, b.objects[i].ly);
  }
}

TEST(Integration, BookshelfRoundTripThroughFlow) {
  // Place a generated design, persist it as Bookshelf, read it back, and
  // verify the metrics survive the serialization.
  const std::string dir = ::testing::TempDir() + "/flow_rt";
  std::filesystem::create_directories(dir);
  GenSpec spec = shrunk(suiteSpec("mms_adaptec1s"));
  PlacementDB db = generateCircuit(spec);
  runEplaceFlow(db);
  const double placedHpwl = hpwl(db);
  ASSERT_TRUE(writeBookshelf(dir, "placed", db).ok());

  PlacementDB back;
  ASSERT_TRUE(readBookshelf(dir + "/placed.aux", back).ok());
  back.targetDensity = db.targetDensity;
  EXPECT_NEAR(hpwl(back), placedHpwl, 1e-6 * placedHpwl);
  EXPECT_TRUE(checkLegality(back).legal);
}

TEST(Integration, PlaceAnExternalBookshelfDesign) {
  // Simulates the eplace_cli path: the flow consumes a DB that came from
  // the parser (names, offsets, rows all through serialization).
  const std::string dir = ::testing::TempDir() + "/flow_ext";
  std::filesystem::create_directories(dir);
  GenSpec spec = shrunk(suiteSpec("ispd05_adaptec1s"));
  const PlacementDB orig = generateCircuit(spec);
  ASSERT_TRUE(writeBookshelf(dir, "ext", orig).ok());

  PlacementDB db;
  ASSERT_TRUE(readBookshelf(dir + "/ext.aux", db).ok());
  const FlowResult res = runEplaceFlow(db);
  EXPECT_TRUE(res.legality.legal) << res.legality.firstIssue;
}

TEST(Integration, BaselinesShareTheFinishingPipeline) {
  // Every baseline's output must legalize to a fully legal layout — the
  // guarantee the table benches rely on for fair comparison.
  const GenSpec spec = shrunk(suiteSpec("mms_bigblue1s"));
  for (int which = 0; which < 2; ++which) {
    PlacementDB db = generateCircuit(spec);
    if (which == 0) {
      minCutPlace(db);
    } else {
      quadraticPlace(db);
    }
    if (db.numMovableMacros() > 0) {
      legalizeMacros(db);
      for (auto& o : db.objects) {
        if (o.kind == ObjKind::kMacro) o.fixed = true;
      }
      db.finalize();
    }
    legalizeCells(db);
    detailPlace(db);
    const auto rep = checkLegality(db);
    EXPECT_TRUE(rep.legal) << "baseline " << which << ": " << rep.firstIssue;
  }
}

TEST(Integration, EplaceBeatsNaivePlacementOnQuality) {
  // Sanity on the headline claim's direction at tiny scale: ePlace's final
  // HPWL beats the min-cut baseline on a clustered netlist.
  const GenSpec spec = shrunk(suiteSpec("ispd05_adaptec1s"));
  PlacementDB a = generateCircuit(spec);
  runEplaceFlow(a);

  PlacementDB b = generateCircuit(spec);
  minCutPlace(b);
  legalizeCells(b);
  detailPlace(b);

  EXPECT_LT(hpwl(a), hpwl(b));
}

}  // namespace
}  // namespace ep
