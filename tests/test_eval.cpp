#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "eval/metrics.h"
#include "eval/plot.h"
#include "wirelength/wl.h"
#include "gen/generator.h"

namespace ep {
namespace {

/// Region 0..64 square, rows of height 1, a few objects added by tests.
PlacementDB frame() {
  PlacementDB db;
  db.region = {0, 0, 64, 64};
  for (int r = 0; r < 64; ++r) {
    db.rows.push_back({0, static_cast<double>(r), 1.0, 1.0, 64});
  }
  return db;
}

std::int32_t addObj(PlacementDB& db, const std::string& name, double w,
                    double h, double lx, double ly, bool fixed = false,
                    ObjKind kind = ObjKind::kStdCell) {
  Object o;
  o.name = name;
  o.w = w;
  o.h = h;
  o.lx = lx;
  o.ly = ly;
  o.fixed = fixed;
  o.kind = kind;
  db.objects.push_back(o);
  return static_cast<std::int32_t>(db.objects.size() - 1);
}

TEST(Metrics, OverflowZeroWhenSpread) {
  auto db = frame();
  for (int i = 0; i < 16; ++i) {
    addObj(db, "c" + std::to_string(i), 2, 1, 4.0 * i, 4.0 * i);
  }
  db.finalize();
  EXPECT_NEAR(densityOverflow(db, 32, 32).overflow, 0.0, 1e-9);
}

TEST(Metrics, OverflowNearOneWhenPiled) {
  auto db = frame();
  for (int i = 0; i < 64; ++i) {
    addObj(db, "c" + std::to_string(i), 2, 1, 31.0, 31.0);
  }
  db.finalize();
  const auto rep = densityOverflow(db, 32, 32);
  EXPECT_GT(rep.overflow, 0.9);
  EXPECT_GT(rep.maxDensity, 10.0);
}

TEST(Metrics, FixedAreaReducesCapacity) {
  auto db = frame();
  // Fixed block covering a quarter of the region.
  addObj(db, "blk", 32, 32, 0, 0, true, ObjKind::kMacro);
  // Movable sitting fully on the block: everything overflows.
  addObj(db, "c", 4, 4, 10, 10);
  db.finalize();
  EXPECT_NEAR(densityOverflow(db, 32, 32).overflow, 1.0, 1e-9);
}

TEST(Metrics, ScaledHpwlEqualsHpwlAtFullDensity) {
  auto db = frame();
  const auto a = addObj(db, "a", 1, 1, 0, 0);
  const auto b = addObj(db, "b", 1, 1, 10, 0);
  db.nets.push_back({"n", {{a, 0, 0}, {b, 0, 0}}, 1.0});
  db.targetDensity = 1.0;
  db.finalize();
  EXPECT_DOUBLE_EQ(scaledHpwl(db), hpwl(db));
}

TEST(Metrics, ScaledHpwlPenalizesOverflowAtLowDensity) {
  auto db = frame();
  std::int32_t first = -1;
  for (int i = 0; i < 32; ++i) {
    const auto id = addObj(db, "c" + std::to_string(i), 2, 1, 31.0, 31.0);
    if (first < 0) first = id;
  }
  const auto far = addObj(db, "far", 2, 1, 4.0, 4.0);
  db.nets.push_back({"n", {{first, 0, 0}, {far, 0, 0}}, 1.0});
  db.targetDensity = 0.5;
  db.finalize();
  ASSERT_GT(hpwl(db), 0.0);
  EXPECT_GT(scaledHpwl(db), hpwl(db));
}

TEST(Metrics, PairwiseOverlapExact) {
  auto db = frame();
  const auto a = addObj(db, "a", 4, 4, 0, 0, false, ObjKind::kMacro);
  const auto b = addObj(db, "b", 4, 4, 2, 2, false, ObjKind::kMacro);
  const auto c = addObj(db, "c", 4, 4, 20, 20, false, ObjKind::kMacro);
  db.finalize();
  const std::vector<std::int32_t> idx{a, b, c};
  EXPECT_DOUBLE_EQ(pairwiseOverlapArea(db, idx), 4.0);
}

TEST(Metrics, GridOverlapTracksPiling) {
  auto db = frame();
  for (int i = 0; i < 8; ++i) addObj(db, "c" + std::to_string(i), 4, 4, 30, 30);
  db.finalize();
  // 8 stacked 16-area cells: ~7x16 of overlap beyond the first layer.
  const double o = gridOverlapArea(db, false, 64, 64);
  EXPECT_NEAR(o, 7.0 * 16.0, 8.0);
  // Spread them: no overlap.
  for (int i = 0; i < 8; ++i) {
    db.objects[static_cast<std::size_t>(i)].lx = 8.0 * i;
    db.objects[static_cast<std::size_t>(i)].ly = static_cast<double>((8 * i) % 56);
  }
  EXPECT_NEAR(gridOverlapArea(db, false, 64, 64), 0.0, 1e-9);
}

TEST(Metrics, MacroCellCoverArea) {
  auto db = frame();
  addObj(db, "m", 8, 8, 0, 0, false, ObjKind::kMacro);
  addObj(db, "c1", 2, 1, 1, 1);             // fully covered
  addObj(db, "c2", 2, 1, 7, 0);             // half covered
  addObj(db, "c3", 2, 1, 40, 40);           // clear
  db.finalize();
  EXPECT_NEAR(macroCellCoverArea(db), 2.0 + 1.0, 1e-9);
}

TEST(Legality, AcceptsLegalLayout) {
  auto db = frame();
  addObj(db, "a", 2, 1, 0, 0);
  addObj(db, "b", 3, 1, 2, 0);  // abutting is legal
  addObj(db, "c", 2, 1, 0, 1);
  db.finalize();
  const auto rep = checkLegality(db);
  EXPECT_TRUE(rep.legal) << rep.firstIssue;
}

TEST(Legality, DetectsOverlap) {
  auto db = frame();
  addObj(db, "a", 4, 1, 0, 0);
  addObj(db, "b", 4, 1, 2, 0);
  db.finalize();
  const auto rep = checkLegality(db);
  EXPECT_FALSE(rep.legal);
  EXPECT_GT(rep.overlaps, 0);
}

TEST(Legality, DetectsOffRow) {
  auto db = frame();
  addObj(db, "a", 2, 1, 0, 0.5);
  db.finalize();
  const auto rep = checkLegality(db);
  EXPECT_FALSE(rep.legal);
  EXPECT_GT(rep.offRow, 0);
}

TEST(Legality, DetectsOffSite) {
  auto db = frame();
  addObj(db, "a", 2, 1, 0.5, 0.0);
  db.finalize();
  const auto rep = checkLegality(db);
  EXPECT_FALSE(rep.legal);
  EXPECT_GT(rep.offSite, 0);
}

TEST(Legality, DetectsOutOfRegion) {
  auto db = frame();
  addObj(db, "a", 2, 1, 63, 0);  // sticks out on the right
  db.finalize();
  const auto rep = checkLegality(db);
  EXPECT_FALSE(rep.legal);
  EXPECT_GT(rep.outOfRegion, 0);
}

TEST(Legality, DetectsMovableFixedOverlap) {
  auto db = frame();
  addObj(db, "blk", 8, 8, 8, 8, true, ObjKind::kMacro);
  addObj(db, "a", 2, 1, 9, 9);
  db.finalize();
  const auto rep = checkLegality(db);
  EXPECT_FALSE(rep.legal);
  EXPECT_GT(rep.overlaps, 0);
}

TEST(Legality, IgnoresFixedFixedOverlap) {
  auto db = frame();
  addObj(db, "b1", 8, 8, 8, 8, true, ObjKind::kMacro);
  addObj(db, "b2", 8, 8, 10, 10, true, ObjKind::kMacro);
  db.finalize();
  const auto rep = checkLegality(db);
  EXPECT_EQ(rep.overlaps, 0);
}

TEST(Plot, ScalarMapWritesPpmWithCorrectDims) {
  const std::size_t nx = 8, ny = 4;
  std::vector<double> map(nx * ny);
  for (std::size_t i = 0; i < map.size(); ++i) {
    map[i] = static_cast<double>(i);
  }
  const std::string path = ::testing::TempDir() + "/scalar.ppm";
  ASSERT_TRUE(plotScalarMap(map, nx, ny, path, 3));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  int w = 0, h = 0, maxv = 0;
  in >> magic >> w >> h >> maxv;
  EXPECT_EQ(magic, "P6");
  EXPECT_EQ(w, 24);  // nx * scale
  EXPECT_EQ(h, 12);  // ny * scale
  EXPECT_EQ(maxv, 255);
}

TEST(Plot, ScalarMapRejectsBadDims) {
  std::vector<double> map(10);
  EXPECT_FALSE(plotScalarMap(map, 3, 4, ::testing::TempDir() + "/x.ppm"));
  EXPECT_FALSE(plotScalarMap({}, 0, 0, ::testing::TempDir() + "/y.ppm"));
}

TEST(Plot, ScalarMapHandlesConstantField) {
  std::vector<double> map(16, 7.0);  // zero range must not divide by zero
  EXPECT_TRUE(
      plotScalarMap(map, 4, 4, ::testing::TempDir() + "/const.ppm"));
}

TEST(Plot, WritesPpm) {
  GenSpec spec;
  spec.numCells = 50;
  spec.numMovableMacros = 2;
  const PlacementDB db = generateCircuit(spec);
  const std::string path = ::testing::TempDir() + "/layout.ppm";
  ASSERT_TRUE(plotLayout(db, path));
  std::ifstream in(path, std::ios::binary);
  std::string magic;
  in >> magic;
  EXPECT_EQ(magic, "P6");
  EXPECT_GT(std::filesystem::file_size(path), 1000u);
}

}  // namespace
}  // namespace ep
