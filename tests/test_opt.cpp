#include <gtest/gtest.h>

#include <cmath>

#include "opt/cg.h"
#include "opt/nesterov.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ep {
namespace {

/// Convex quadratic f = 0.5 sum a_i (x_i - c_i)^2 with given stiffnesses.
struct Quadratic {
  std::vector<double> a, c;
  double operator()(std::span<const double> x, std::span<double> g) const {
    double f = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i) {
      const double d = x[i] - c[i];
      f += 0.5 * a[i] * d * d;
      g[i] = a[i] * d;
    }
    return f;
  }
};

Quadratic makeQuadratic(std::size_t n, double conditioning,
                        std::uint64_t seed) {
  Rng rng(seed);
  Quadratic q;
  q.a.resize(n);
  q.c.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    q.a[i] = std::pow(conditioning,
                      static_cast<double>(i) / static_cast<double>(n - 1));
    q.c[i] = rng.uniform(-5.0, 5.0);
  }
  return q;
}

TEST(Nesterov, ConvergesOnWellConditionedQuadratic) {
  const std::size_t n = 50;
  auto q = makeQuadratic(n, 1.0, 1);
  NesterovOptimizer opt(
      n, [&](std::span<const double> x, std::span<double> g) { return q(x, g); });
  std::vector<double> v0(n, 0.0);
  opt.initialize(v0);
  double f = 0.0;
  for (int k = 0; k < 100; ++k) f = opt.step().objective;
  EXPECT_LT(f, 1e-8);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(opt.solution()[i], q.c[i], 1e-4);
  }
}

TEST(Nesterov, HandlesIllConditioning) {
  const std::size_t n = 50;
  auto q = makeQuadratic(n, 100.0, 2);
  NesterovOptimizer opt(
      n, [&](std::span<const double> x, std::span<double> g) { return q(x, g); });
  std::vector<double> v0(n, 0.0);
  opt.initialize(v0);
  double f0 = 0.0, f = 0.0;
  {
    std::vector<double> g(n);
    f0 = q(v0, g);
  }
  for (int k = 0; k < 300; ++k) f = opt.step().objective;
  EXPECT_LT(f, 1e-4 * f0);
}

TEST(Nesterov, MomentumBeatsPlainGradientDescent) {
  const std::size_t n = 60;
  auto q = makeQuadratic(n, 300.0, 3);
  auto fn = [&](std::span<const double> x, std::span<double> g) {
    return q(x, g);
  };
  NesterovConfig withMomentum;
  NesterovConfig without = withMomentum;
  without.enableMomentum = false;

  double fMomentum = 0.0, fPlain = 0.0;
  {
    NesterovOptimizer opt(n, fn, withMomentum);
    std::vector<double> v0(n, 0.0);
    opt.initialize(v0);
    for (int k = 0; k < 120; ++k) fMomentum = opt.step().objective;
  }
  {
    NesterovOptimizer opt(n, fn, without);
    std::vector<double> v0(n, 0.0);
    opt.initialize(v0);
    for (int k = 0; k < 120; ++k) fPlain = opt.step().objective;
  }
  EXPECT_LT(fMomentum, fPlain);
}

TEST(Nesterov, StepLengthTracksInverseLipschitz) {
  // For f = 0.5 L ||x||^2 the Lipschitz constant is exactly L, so the
  // predicted steplength must approach 1/L.
  const std::size_t n = 10;
  const double L = 8.0;
  auto fn = [&](std::span<const double> x, std::span<double> g) {
    double f = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      g[i] = L * x[i];
      f += 0.5 * L * x[i] * x[i];
    }
    return f;
  };
  NesterovOptimizer opt(n, fn);
  std::vector<double> v0(n, 1.0);
  opt.initialize(v0);
  const auto info = opt.step();
  EXPECT_NEAR(info.alpha, 1.0 / L, 1e-6);
  EXPECT_EQ(info.backtracks, 0);  // exact prediction: first check passes
}

TEST(Nesterov, BacktrackingActivatesWhenCurvatureJumps) {
  // Piecewise quadratic: stiffness 1 for |x|>1 but 50 inside. A step taken
  // from the shallow regime overshoots into the stiff one, forcing Alg. 2
  // to backtrack at the crossing.
  const std::size_t n = 1;
  auto fn = [&](std::span<const double> x, std::span<double> g) {
    const double v = x[0];
    if (std::abs(v) <= 1.0) {
      g[0] = 50.0 * v;
      return 25.0 * v * v;
    }
    const double s = v > 0 ? 1.0 : -1.0;
    g[0] = (std::abs(v) - 1.0) * s + 50.0 * s;
    return 0.5 * (std::abs(v) - 1.0) * (std::abs(v) - 1.0) +
           50.0 * std::abs(v) - 25.0;
  };
  NesterovOptimizer opt(n, fn);
  std::vector<double> v0{10.0};
  opt.initialize(v0);
  long total = 0;
  for (int k = 0; k < 50; ++k) opt.step();
  total = opt.backtrackCount();
  EXPECT_GT(total, 0);
}

TEST(Nesterov, ProjectionKeepsIteratesInBox) {
  const std::size_t n = 4;
  auto q = makeQuadratic(n, 1.0, 5);
  for (auto& c : q.c) c = 100.0;  // optimum far outside the box
  auto project = [](std::span<double> v) {
    for (auto& x : v) x = std::clamp(x, -1.0, 1.0);
  };
  NesterovOptimizer opt(
      n,
      [&](std::span<const double> x, std::span<double> g) { return q(x, g); },
      {}, project);
  std::vector<double> v0(n, 0.0);
  opt.initialize(v0);
  for (int k = 0; k < 30; ++k) opt.step();
  for (double x : opt.solution()) {
    EXPECT_GE(x, -1.0);
    EXPECT_LE(x, 1.0);
  }
  // Constrained optimum is the box corner.
  for (double x : opt.solution()) EXPECT_NEAR(x, 1.0, 1e-6);
}

TEST(Nesterov, EvalCountAccounting) {
  const std::size_t n = 8;
  auto q = makeQuadratic(n, 1.0, 6);
  NesterovOptimizer opt(
      n, [&](std::span<const double> x, std::span<double> g) { return q(x, g); });
  std::vector<double> v0(n, 0.0);
  opt.initialize(v0);
  EXPECT_EQ(opt.evalCount(), 2);  // v0 + bootstrap
  const auto info = opt.step();
  // Quadratic: prediction exact; at most one (floating-point-jitter)
  // backtrack, i.e. at most two evaluations for the step.
  EXPECT_LE(info.backtracks, 1);
  EXPECT_LE(opt.evalCount(), 4);
}

TEST(Cg, ConvergesOnQuadratic) {
  const std::size_t n = 40;
  auto q = makeQuadratic(n, 50.0, 7);
  CgOptimizer opt(
      n, [&](std::span<const double> x, std::span<double> g) { return q(x, g); });
  std::vector<double> v0(n, 0.0);
  opt.initialize(v0);
  double f = 0.0;
  for (int k = 0; k < 200; ++k) f = opt.step().objective;
  EXPECT_LT(f, 1e-6);
}

TEST(Cg, ConvergesOnRosenbrock) {
  auto rosen = [](std::span<const double> x, std::span<double> g) {
    const double a = x[0], b = x[1];
    g[0] = -400.0 * a * (b - a * a) - 2.0 * (1.0 - a);
    g[1] = 200.0 * (b - a * a);
    const double t1 = b - a * a, t2 = 1.0 - a;
    return 100.0 * t1 * t1 + t2 * t2;
  };
  CgOptimizer opt(2, rosen);
  std::vector<double> v0{-1.2, 1.0};
  opt.initialize(v0);
  double f = 1e9;
  for (int k = 0; k < 2000 && f > 1e-8; ++k) f = opt.step().objective;
  EXPECT_LT(f, 1e-6);
  EXPECT_NEAR(opt.solution()[0], 1.0, 1e-2);
  EXPECT_NEAR(opt.solution()[1], 1.0, 1e-2);
}

TEST(Cg, LineSearchTimeIsTracked) {
  const std::size_t n = 30;
  auto q = makeQuadratic(n, 100.0, 8);
  CgOptimizer opt(
      n, [&](std::span<const double> x, std::span<double> g) { return q(x, g); });
  std::vector<double> v0(n, 3.0);
  opt.initialize(v0);
  for (int k = 0; k < 50; ++k) opt.step();
  EXPECT_GT(opt.evalCount(), 50);  // line search costs extra evaluations
  EXPECT_GE(opt.lineSearchSeconds(), 0.0);
  EXPECT_GE(opt.totalSeconds(), opt.lineSearchSeconds());
}

TEST(Cg, MonotoneDecrease) {
  const std::size_t n = 20;
  auto q = makeQuadratic(n, 10.0, 9);
  CgOptimizer opt(
      n, [&](std::span<const double> x, std::span<double> g) { return q(x, g); });
  std::vector<double> v0(n, 2.0);
  opt.initialize(v0);
  double prev = 1e100;
  for (int k = 0; k < 40; ++k) {
    const double f = opt.step().objective;
    EXPECT_LE(f, prev + 1e-12);
    prev = f;
  }
}

}  // namespace
}  // namespace ep
