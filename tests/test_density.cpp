#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "density/bingrid.h"
#include "density/electro.h"
#include "util/rng.h"

namespace ep {
namespace {

TEST(BinGrid, Basics) {
  BinGrid g({0, 0, 64, 32}, 32, 16);
  EXPECT_DOUBLE_EQ(g.dx(), 2.0);
  EXPECT_DOUBLE_EQ(g.dy(), 2.0);
  EXPECT_EQ(g.numBins(), 512u);
  EXPECT_EQ(g.binX(0.0), 0u);
  EXPECT_EQ(g.binX(63.9), 31u);
  EXPECT_EQ(g.binX(-5.0), 0u);   // clamped
  EXPECT_EQ(g.binX(100.0), 31u); // clamped
  EXPECT_EQ(g.binRect(1, 2), Rect(2, 4, 4, 6));
}

TEST(BinGrid, ChooseResolution) {
  EXPECT_EQ(BinGrid::chooseResolution(10), 32u);
  EXPECT_EQ(BinGrid::chooseResolution(1024), 32u);
  EXPECT_EQ(BinGrid::chooseResolution(1025), 64u);
  EXPECT_EQ(BinGrid::chooseResolution(5000), 128u);
  EXPECT_EQ(BinGrid::chooseResolution(100'000'000), 512u);  // clamped
}

TEST(BinGrid, StampConservesAmountInside) {
  BinGrid g({0, 0, 16, 16}, 16, 16);
  std::vector<double> map(g.numBins(), 0.0);
  g.stamp({3.25, 4.5, 6.75, 7.25}, 10.0, map);
  const double total = std::accumulate(map.begin(), map.end(), 0.0);
  EXPECT_NEAR(total, 10.0, 1e-9);
}

TEST(BinGrid, StampClipsOutsidePortion) {
  BinGrid g({0, 0, 16, 16}, 16, 16);
  std::vector<double> map(g.numBins(), 0.0);
  // Half of the rect hangs outside: only half the amount lands.
  g.stamp({-2.0, 0.0, 2.0, 4.0}, 8.0, map);
  const double total = std::accumulate(map.begin(), map.end(), 0.0);
  EXPECT_NEAR(total, 4.0, 1e-9);
}

TEST(BinGrid, StampSplitsProportionally) {
  BinGrid g({0, 0, 4, 4}, 4, 4);
  std::vector<double> map(g.numBins(), 0.0);
  // Unit square centered on the corner shared by bins (0,0),(1,0),(0,1),(1,1).
  g.stamp({0.5, 0.5, 1.5, 1.5}, 1.0, map);
  EXPECT_NEAR(map[0], 0.25, 1e-12);
  EXPECT_NEAR(map[1], 0.25, 1e-12);
  EXPECT_NEAR(map[4], 0.25, 1e-12);
  EXPECT_NEAR(map[5], 0.25, 1e-12);
}

PlacementDB emptyDb(double w = 64, double h = 64) {
  PlacementDB db;
  db.region = {0, 0, w, h};
  db.finalize();
  return db;
}

TEST(ElectroDensity, UniformChargesHaveSmallGradient) {
  const std::size_t m = 32;
  ElectroDensity ed({0, 0, 64, 64}, m, m, 1.0);
  ed.stampFixed(emptyDb());
  // A perfect grid of equal charges: near-equilibrium.
  const std::size_t k = 16;
  std::vector<double> cx, cy, w, h;
  for (std::size_t i = 0; i < k; ++i) {
    for (std::size_t j = 0; j < k; ++j) {
      cx.push_back((i + 0.5) * 64.0 / k);
      cy.push_back((j + 0.5) * 64.0 / k);
      w.push_back(64.0 / k);
      h.push_back(64.0 / k);
    }
  }
  ChargeView view{cx, cy, w, h};
  ed.update(view);
  std::vector<double> gx(cx.size()), gy(cx.size());
  ed.gradient(view, gx, gy);
  for (std::size_t i = 0; i < cx.size(); ++i) {
    EXPECT_NEAR(gx[i], 0.0, 1e-6);
    EXPECT_NEAR(gy[i], 0.0, 1e-6);
  }
  EXPECT_NEAR(ed.energy(), 0.0, 1e-6);
}

TEST(ElectroDensity, ClusteredChargesRepelEachOther) {
  const std::size_t m = 64;
  ElectroDensity ed({0, 0, 64, 64}, m, m, 1.0);
  ed.stampFixed(emptyDb());
  // Two charges close together near the center: gradient of the energy
  // must push them apart (descent direction -grad separates them).
  std::vector<double> cx{30.0, 34.0}, cy{32.0, 32.0}, w{4, 4}, h{4, 4};
  ChargeView view{cx, cy, w, h};
  ed.update(view);
  std::vector<double> gx(2), gy(2);
  ed.gradient(view, gx, gy);
  EXPECT_GT(gx[0], 0.0);  // left charge: dN/dx > 0 -> moves left on descent
  EXPECT_LT(gx[1], 0.0);
  EXPECT_GT(ed.energy(), 0.0);
}

TEST(ElectroDensity, GradientMatchesFiniteDifferenceOfEnergy) {
  // Paper Eq. (8): dN/dx_i = 2 q_i xi_i. Our gradient() returns q_i * xi_i
  // (the factor 2 is absorbed into lambda), so the finite difference of the
  // total energy must be ~2x the reported gradient.
  const std::size_t m = 64;
  ElectroDensity ed({0, 0, 64, 64}, m, m, 1.0);
  ed.stampFixed(emptyDb());
  // Charges several bins wide: the field-integral gradient (our
  // implementation, like RePlAce's) and the exact derivative of the
  // *discretized* energy agree only up to stamping quantization, so the
  // charges must be smooth on the grid for a finite-difference check.
  Rng rng(4);
  std::vector<double> cx, cy, w, h;
  for (int i = 0; i < 12; ++i) {
    cx.push_back(rng.uniform(12, 52));
    cy.push_back(rng.uniform(12, 52));
    w.push_back(rng.uniform(6.0, 10.0));
    h.push_back(rng.uniform(6.0, 10.0));
  }
  ChargeView view{cx, cy, w, h};
  ed.update(view);
  std::vector<double> gx(cx.size()), gy(cx.size());
  ed.gradient(view, gx, gy);

  const double eps = 1e-2;
  // The field-integral gradient of box charges carries Gibbs-type
  // discretization error, so the check is sign agreement + bounded ratio
  // (the optimizer only needs a consistent descent direction), plus a
  // descent test on the full gradient.
  for (std::size_t i = 0; i < 5; ++i) {
    const double saved = cx[i];
    cx[i] = saved + eps;
    ed.update(view);
    const double ePlus = ed.energy();
    cx[i] = saved - eps;
    ed.update(view);
    const double eMinus = ed.energy();
    cx[i] = saved;
    const double fd = (ePlus - eMinus) / (2.0 * eps);
    const double an = 2.0 * gx[i];
    if (std::abs(fd) > 0.5) {
      EXPECT_GT(fd * an, 0.0) << "sign mismatch at charge " << i;
      const double ratio = an / fd;
      EXPECT_GT(ratio, 0.25) << "charge " << i;
      EXPECT_LT(ratio, 4.0) << "charge " << i;
    }
  }
  // Full-gradient descent: a small step along -grad lowers the energy.
  ed.update(view);
  const double e0 = ed.energy();
  ed.gradient(view, gx, gy);
  double gnorm = 0.0;
  for (std::size_t i = 0; i < cx.size(); ++i) {
    gnorm = std::max({gnorm, std::abs(gx[i]), std::abs(gy[i])});
  }
  const double t = 0.25 / gnorm;
  for (std::size_t i = 0; i < cx.size(); ++i) {
    cx[i] -= t * gx[i];
    cy[i] -= t * gy[i];
  }
  ed.update(view);
  EXPECT_LT(ed.energy(), e0);
}

TEST(ElectroDensity, SmoothingConservesCharge) {
  // A tiny cell (smaller than a bin) must still deposit its full area.
  const std::size_t m = 32;
  ElectroDensity ed({0, 0, 64, 64}, m, m, 1.0);
  ed.stampFixed(emptyDb());
  std::vector<double> cx{32.0}, cy{32.0}, w{0.25}, h{0.25};
  ed.update(ChargeView{cx, cy, w, h});
  double total = 0.0;
  for (double d : ed.density()) total += d;
  // Total charge = sum rho * binArea = cell area.
  EXPECT_NEAR(total * (64.0 / m) * (64.0 / m), 0.0625, 1e-9);
}

TEST(ElectroDensity, OverflowSemantics) {
  const std::size_t m = 32;
  ElectroDensity ed({0, 0, 64, 64}, m, m, 1.0);
  ed.stampFixed(emptyDb());
  // All area piled into one spot: overflow ~ 1 - (capacity under the pile).
  // The overflow metric uses coarse bins (4x4 here), so the pile must be
  // large relative to a bin to overflow.
  std::vector<double> cx(16, 32.0), cy(16, 32.0);
  std::vector<double> w(16, 4.0), h(16, 4.0);
  const double tauPiled = ed.overflow(ChargeView{cx, cy, w, h});
  EXPECT_GT(tauPiled, 0.7);
  // Spread far apart: no overflow (16 area in a 2x2-bin neighborhood of
  // capacity 16 exactly; place on bin boundaries to be safe).
  std::vector<double> cx2{8, 24, 40, 56}, cy2{8, 24, 40, 56};
  std::vector<double> w2{2, 2, 2, 2}, h2{2, 2, 2, 2};
  const double tauSpread = ed.overflow(ChargeView{cx2, cy2, w2, h2});
  EXPECT_NEAR(tauSpread, 0.0, 1e-9);
}

TEST(ElectroDensity, FixedChargesRepelMovables) {
  const std::size_t m = 64;
  PlacementDB db = emptyDb();
  Object block;
  block.name = "blk";
  block.w = 16;
  block.h = 16;
  block.lx = 24;
  block.ly = 24;
  block.fixed = true;
  block.kind = ObjKind::kMacro;
  db.objects.push_back(block);
  db.finalize();

  ElectroDensity ed({0, 0, 64, 64}, m, m, 1.0);
  ed.stampFixed(db);
  // A movable just left of the block: the field pushes it further left.
  std::vector<double> cx{22.0}, cy{32.0}, w{2}, h{2};
  ChargeView view{cx, cy, w, h};
  ed.update(view);
  std::vector<double> gx(1), gy(1);
  ed.gradient(view, gx, gy);
  EXPECT_GT(gx[0], 0.0);  // descent -> moves away from the block
}

TEST(ElectroDensity, StaticChargesActLikeObstacles) {
  const std::size_t m = 64;
  ElectroDensity ed({0, 0, 64, 64}, m, m, 1.0);
  ed.stampFixed(emptyDb());
  std::vector<double> scx{32}, scy{32}, sw{16}, sh{16};
  ed.stampStaticCharges(ChargeView{scx, scy, sw, sh});

  std::vector<double> cx{22.0}, cy{32.0}, w{2}, h{2};
  ChargeView view{cx, cy, w, h};
  ed.update(view);
  std::vector<double> gx(1), gy(1);
  ed.gradient(view, gx, gy);
  EXPECT_GT(gx[0], 0.0);

  ed.clearStatic();
  ed.update(view);
  ed.gradient(view, gx, gy);
  // Without the static blob, a lone small charge sees a near-zero field.
  EXPECT_LT(std::abs(gx[0]), 0.05);
}

TEST(ElectroDensity, TargetDensityScalesFixedStamping) {
  // With rho_t = 0.5, a fully covered fixed bin contributes 0.5 occupancy.
  const std::size_t m = 32;
  PlacementDB db = emptyDb();
  Object block;
  block.name = "blk";
  block.w = 64;
  block.h = 32;
  block.lx = 0;
  block.ly = 0;
  block.fixed = true;
  block.kind = ObjKind::kMacro;
  db.objects.push_back(block);
  db.finalize();
  ElectroDensity ed({0, 0, 64, 64}, m, m, 0.5);
  ed.stampFixed(db);
  std::vector<double> none;
  ed.update(ChargeView{none, none, none, none});
  // Bottom half bins ~0.5, top half ~0.
  EXPECT_NEAR(ed.density()[5 * m + 5], 0.5, 1e-9);
  EXPECT_NEAR(ed.density()[(m - 3) * m + 5], 0.0, 1e-9);
}

}  // namespace
}  // namespace ep
