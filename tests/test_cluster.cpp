// Multilevel clustering (src/cluster) contracts:
//   * buildClusterLadder is bit-deterministic at any thread count — the
//     ladder topology, coarse geometry and net rewiring never depend on
//     the RuntimeContext's pool size;
//   * per-level conservation — total movable area matches the fine level
//     and fixed objects pass through 1:1 with bit-exact geometry, so the
//     fixed charge the density model sees is identical at every level;
//   * uncoarsen ∘ coarsen maps every fine object exactly once (members
//     CSR is a partition, fineToCoarse is total and consistent);
//   * the supervised multilevel V-cycle completes, records per-level
//     rows, stays bit-identical across thread counts, and resumes
//     bit-exactly after a kill inside a coarse level.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "cluster/cluster.h"
#include "eplace/flow.h"
#include "eplace/supervisor.h"
#include "gen/generator.h"
#include "model/netlist.h"
#include "util/context.h"

namespace ep {
namespace {

namespace fs = std::filesystem;

PlacementDB circuit(std::uint64_t seed, std::size_t cells,
                    std::size_t macros = 0) {
  GenSpec spec;
  spec.name = "cluster";
  spec.numCells = cells;
  spec.numMovableMacros = macros;
  spec.seed = seed;
  return generateCircuit(spec);
}

ClusterConfig smallLadderConfig() {
  ClusterConfig cfg;
  cfg.minMovable = 150;
  cfg.maxLevels = 3;
  return cfg;
}

void expectBitEqual(double a, double b, const std::string& what) {
  EXPECT_EQ(std::bit_cast<std::uint64_t>(a), std::bit_cast<std::uint64_t>(b))
      << what << ": " << a << " vs " << b;
}

/// Structural + geometric equality of two ladders, down to the last bit.
void expectSameLadder(const ClusterLadder& a, const ClusterLadder& b) {
  ASSERT_EQ(a.depth(), b.depth());
  for (std::size_t l = 0; l < a.depth(); ++l) {
    const ClusterLevel& la = a.levels[l];
    const ClusterLevel& lb = b.levels[l];
    EXPECT_EQ(la.fineObjects, lb.fineObjects) << "level " << l;
    EXPECT_EQ(la.fineMovable, lb.fineMovable) << "level " << l;
    EXPECT_EQ(la.fineNets, lb.fineNets) << "level " << l;
    EXPECT_EQ(la.fineToCoarse, lb.fineToCoarse) << "level " << l;
    EXPECT_EQ(la.memberStart, lb.memberStart) << "level " << l;
    EXPECT_EQ(la.members, lb.members) << "level " << l;
    ASSERT_EQ(la.coarse.objects.size(), lb.coarse.objects.size())
        << "level " << l;
    for (std::size_t i = 0; i < la.coarse.objects.size(); ++i) {
      const Object& oa = la.coarse.objects[i];
      const Object& ob = lb.coarse.objects[i];
      EXPECT_EQ(oa.name, ob.name);
      EXPECT_EQ(oa.kind, ob.kind);
      EXPECT_EQ(oa.fixed, ob.fixed);
      expectBitEqual(oa.w, ob.w, "w of " + oa.name);
      expectBitEqual(oa.h, ob.h, "h of " + oa.name);
      expectBitEqual(oa.lx, ob.lx, "lx of " + oa.name);
      expectBitEqual(oa.ly, ob.ly, "ly of " + oa.name);
    }
    ASSERT_EQ(la.coarse.nets.size(), lb.coarse.nets.size()) << "level " << l;
    for (std::size_t n = 0; n < la.coarse.nets.size(); ++n) {
      const Net& na = la.coarse.nets[n];
      const Net& nb = lb.coarse.nets[n];
      ASSERT_EQ(na.pins.size(), nb.pins.size());
      expectBitEqual(na.weight, nb.weight, "weight of " + na.name);
      for (std::size_t p = 0; p < na.pins.size(); ++p) {
        EXPECT_EQ(na.pins[p].obj, nb.pins[p].obj);
        expectBitEqual(na.pins[p].ox, nb.pins[p].ox, "pin ox");
        expectBitEqual(na.pins[p].oy, nb.pins[p].oy, "pin oy");
      }
    }
  }
}

using ClusterTest = ::testing::Test;

TEST_F(ClusterTest, LadderBitDeterministicAcrossThreadCounts) {
  const PlacementDB db = circuit(21, 1200);
  ClusterLadder ladders[3];
  const int threads[3] = {1, 3, 4};
  for (int i = 0; i < 3; ++i) {
    RuntimeContext ctx(threads[i]);
    const auto r = buildClusterLadder(db, smallLadderConfig(), &ctx);
    ASSERT_TRUE(r.ok()) << r.status().message();
    ladders[i] = *r;
  }
  ASSERT_FALSE(ladders[0].empty());
  expectSameLadder(ladders[0], ladders[1]);
  expectSameLadder(ladders[0], ladders[2]);
}

TEST_F(ClusterTest, RepeatedBuildsIdentical) {
  const PlacementDB db = circuit(22, 900, 2);
  const auto a = buildClusterLadder(db, smallLadderConfig());
  const auto b = buildClusterLadder(db, smallLadderConfig());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  expectSameLadder(*a, *b);
}

TEST_F(ClusterTest, MovableAreaConservedPerLevel) {
  const PlacementDB db = circuit(23, 1500);
  const auto r = buildClusterLadder(db, smallLadderConfig());
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  const PlacementDB* fine = &db;
  for (std::size_t l = 0; l < r->depth(); ++l) {
    const ClusterLevel& lvl = r->levels[l];
    const double fineArea = fine->totalMovableArea();
    const double coarseArea = lvl.coarse.totalMovableArea();
    // Cluster area is the exact sum of member areas; only the summation
    // order differs, so the totals agree to tight relative tolerance.
    EXPECT_NEAR(coarseArea, fineArea, 1e-12 * fineArea) << "level " << l;
    EXPECT_LT(lvl.coarse.numMovable(), fine->numMovable()) << "level " << l;
    fine = &lvl.coarse;
  }
}

TEST_F(ClusterTest, FixedChargePassesThroughBitExact) {
  const PlacementDB db = circuit(24, 1000, 0);
  const auto r = buildClusterLadder(db, smallLadderConfig());
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  const PlacementDB* fine = &db;
  for (std::size_t l = 0; l < r->depth(); ++l) {
    const ClusterLevel& lvl = r->levels[l];
    std::size_t fineFixed = 0;
    std::size_t coarseFixed = 0;
    for (std::size_t i = 0; i < fine->objects.size(); ++i) {
      const Object& fo = fine->objects[i];
      if (!fo.fixed) continue;
      ++fineFixed;
      // Every fixed object maps to a fixed coarse copy with identical
      // geometry, so the density model's fixed charge never drifts.
      const auto c = static_cast<std::size_t>(lvl.fineToCoarse[i]);
      ASSERT_LT(c, lvl.coarse.objects.size());
      const Object& co = lvl.coarse.objects[c];
      EXPECT_TRUE(co.fixed) << fo.name;
      EXPECT_EQ(co.kind, fo.kind) << fo.name;
      expectBitEqual(co.w, fo.w, "w of " + fo.name);
      expectBitEqual(co.h, fo.h, "h of " + fo.name);
      expectBitEqual(co.lx, fo.lx, "lx of " + fo.name);
      expectBitEqual(co.ly, fo.ly, "ly of " + fo.name);
    }
    for (const Object& o : lvl.coarse.objects) {
      if (o.fixed) ++coarseFixed;
    }
    EXPECT_EQ(coarseFixed, fineFixed) << "level " << l;
    expectBitEqual(lvl.coarse.fixedAreaInRegion(), fine->fixedAreaInRegion(),
                   "fixed area, level " + std::to_string(l));
    fine = &lvl.coarse;
  }
}

TEST_F(ClusterTest, EveryFineObjectMappedExactlyOnce) {
  const PlacementDB db = circuit(25, 1300, 1);
  const auto r = buildClusterLadder(db, smallLadderConfig());
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  std::size_t fineCount = db.objects.size();
  for (std::size_t l = 0; l < r->depth(); ++l) {
    const ClusterLevel& lvl = r->levels[l];
    ASSERT_EQ(lvl.fineObjects, fineCount) << "level " << l;
    ASSERT_EQ(lvl.fineToCoarse.size(), fineCount) << "level " << l;
    const std::size_t coarseCount = lvl.coarse.objects.size();
    ASSERT_EQ(lvl.memberStart.size(), coarseCount + 1) << "level " << l;
    ASSERT_EQ(lvl.members.size(), fineCount) << "level " << l;

    // The members CSR is a partition of the fine ids: every fine object
    // appears exactly once, inside the row of the cluster fineToCoarse
    // points it at.
    std::vector<int> seen(fineCount, 0);
    for (std::size_t c = 0; c < coarseCount; ++c) {
      ASSERT_LE(lvl.memberStart[c], lvl.memberStart[c + 1]);
      for (std::int32_t m = lvl.memberStart[c]; m < lvl.memberStart[c + 1];
           ++m) {
        const std::int32_t fid = lvl.members[static_cast<std::size_t>(m)];
        ASSERT_GE(fid, 0);
        ASSERT_LT(static_cast<std::size_t>(fid), fineCount);
        ++seen[static_cast<std::size_t>(fid)];
        EXPECT_EQ(lvl.fineToCoarse[static_cast<std::size_t>(fid)],
                  static_cast<std::int32_t>(c));
      }
    }
    for (std::size_t i = 0; i < fineCount; ++i) {
      EXPECT_EQ(seen[i], 1) << "fine object " << i << ", level " << l;
    }
    fineCount = coarseCount;
  }
}

TEST_F(ClusterTest, UncoarsenSeedsMembersAtClusterCenter) {
  PlacementDB db = circuit(26, 800);
  const auto r = buildClusterLadder(db, smallLadderConfig());
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  ClusterLevel lvl = r->levels[0];

  // Scatter the coarse placement deterministically, then uncoarsen.
  for (std::size_t c = 0; c < lvl.coarse.objects.size(); ++c) {
    Object& o = lvl.coarse.objects[c];
    if (o.fixed) continue;
    o.setCenter(db.region.lx + static_cast<double>(c % 37) + 0.25,
                db.region.ly + static_cast<double>(c % 29) + 0.75);
  }
  ASSERT_TRUE(uncoarsenPositions(lvl, db).ok());

  for (std::size_t i = 0; i < db.objects.size(); ++i) {
    const Object& fo = db.objects[i];
    const auto c = static_cast<std::size_t>(lvl.fineToCoarse[i]);
    const Object& co = lvl.coarse.objects[c];
    if (fo.fixed) {
      expectBitEqual(fo.lx, co.lx, "fixed lx of " + fo.name);
      expectBitEqual(fo.ly, co.ly, "fixed ly of " + fo.name);
      continue;
    }
    const std::size_t memberCount =
        static_cast<std::size_t>(lvl.memberStart[c + 1] - lvl.memberStart[c]);
    if (memberCount == 1) {
      // Pass-through movables copy the coarse position bit-exactly.
      expectBitEqual(fo.center().x, co.center().x, "x of " + fo.name);
      expectBitEqual(fo.center().y, co.center().y, "y of " + fo.name);
    } else {
      // Multi-member clusters seed every member at the cluster center.
      expectBitEqual(fo.center().x, co.center().x, "x of " + fo.name);
      expectBitEqual(fo.center().y, co.center().y, "y of " + fo.name);
    }
  }
}

TEST_F(ClusterTest, UncoarsenRejectsMismatchedInstance) {
  const PlacementDB db = circuit(27, 600);
  const auto r = buildClusterLadder(db, smallLadderConfig());
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->empty());
  PlacementDB other = circuit(27, 400);
  EXPECT_FALSE(uncoarsenPositions(r->levels[0], other).ok());
}

TEST_F(ClusterTest, TinyInstanceYieldsEmptyLadder) {
  const PlacementDB db = circuit(28, 100);
  ClusterConfig cfg;  // default floor 3000 movables
  const auto r = buildClusterLadder(db, cfg);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->empty());
}

// ---------------------------------------------------------------------------
// Supervised multilevel V-cycle.
// ---------------------------------------------------------------------------

struct KillSignal {};

FlowConfig fastFlow() {
  FlowConfig cfg;
  cfg.gp.maxIterations = 400;
  cfg.runDetail = true;
  return cfg;
}

SupervisorConfig multilevelConfig() {
  SupervisorConfig sup;
  sup.multilevel.enabled = true;
  sup.multilevel.minMovable = 300;
  sup.multilevel.cluster.minMovable = 150;
  sup.multilevel.cluster.maxLevels = 2;
  sup.multilevel.levelMaxIterations = 80;
  return sup;
}

struct MlOutcome {
  std::vector<double> positions;
  double finalHpwl = 0.0;
  std::vector<std::pair<int, std::size_t>> levels;  ///< (level, clusters)
};

MlOutcome runMultilevel(std::uint64_t seed, int threads) {
  RuntimeContext ctx(threads);
  PlacementDB db = circuit(seed, 900);
  SupervisorReport report;
  const auto run =
      runSupervisedFlow(db, fastFlow(), multilevelConfig(), &report, &ctx);
  EXPECT_TRUE(run.ok());
  MlOutcome out;
  if (run.ok()) {
    out.finalHpwl = run->finalHpwl;
    for (const auto& lm : run->mgpLevels) {
      out.levels.emplace_back(lm.level, lm.clusters);
      EXPECT_TRUE(lm.metrics.ran);
      EXPECT_GT(lm.metrics.iterations, 0);
    }
  }
  for (auto i : db.movable()) {
    const Point c = db.objects[static_cast<std::size_t>(i)].center();
    out.positions.push_back(c.x);
    out.positions.push_back(c.y);
  }
  return out;
}

TEST_F(ClusterTest, SupervisedMultilevelRunsCoarseLevelsThenFlat) {
  const MlOutcome out = runMultilevel(31, 1);
  // 900 movables over a 150 floor with maxLevels=2 must engage the ladder.
  ASSERT_FALSE(out.levels.empty());
  // Coarsest level first (highest index), cluster counts growing as the
  // ladder uncoarsens toward the flat netlist.
  for (std::size_t i = 1; i < out.levels.size(); ++i) {
    EXPECT_GT(out.levels[i - 1].first, out.levels[i].first);
    EXPECT_GT(out.levels[i].second, out.levels[i - 1].second);
  }
  EXPECT_GT(out.finalHpwl, 0.0);
}

TEST_F(ClusterTest, SupervisedMultilevelThreadCountDeterministic) {
  const MlOutcome serial = runMultilevel(32, 1);
  const MlOutcome parallel = runMultilevel(32, 4);
  ASSERT_FALSE(serial.levels.empty());
  ASSERT_EQ(serial.levels, parallel.levels);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.finalHpwl),
            std::bit_cast<std::uint64_t>(parallel.finalHpwl));
  ASSERT_EQ(serial.positions.size(), parallel.positions.size());
  for (std::size_t i = 0; i < serial.positions.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.positions[i]),
              std::bit_cast<std::uint64_t>(parallel.positions[i]))
        << "coordinate " << i;
  }
}

TEST_F(ClusterTest, KilledCoarseLevelResumesBitExact) {
  const fs::path dir =
      fs::path(::testing::TempDir()) /
      ("cluster_resume_" + std::string(::testing::UnitTest::GetInstance()
                                           ->current_test_info()
                                           ->name()));
  fs::remove_all(dir);
  fs::create_directories(dir);

  // Trace sink keyed by (stage, iter); coarse stages are "mGP@L<k>".
  struct TraceRec {
    std::string stage;
    int iter;
    double hpwl;
  };
  const auto traced = [](std::vector<TraceRec>* out, int killIter) {
    FlowConfig cfg = fastFlow();
    cfg.gpTrace = [out, killIter](const std::string& stage,
                                  const GpIterTrace& it) {
      if (out != nullptr) out->push_back({stage, it.iter, it.hpwl});
      if (killIter >= 0 && it.iter == killIter &&
          stage.rfind("mGP@L", 0) == 0) {
        throw KillSignal{};
      }
    };
    return cfg;
  };

  // Reference: uninterrupted multilevel run.
  std::vector<TraceRec> refTrace;
  PlacementDB ref = circuit(33, 900);
  const auto refRun =
      runSupervisedFlow(ref, traced(&refTrace, -1), multilevelConfig());
  ASSERT_TRUE(refRun.ok());
  ASSERT_FALSE(refRun->mgpLevels.empty());

  // Killed run: checkpoints every 7 iterations, dies at coarse iter 25.
  SupervisorConfig supCfg = multilevelConfig();
  supCfg.snapshotDir = dir.string();
  supCfg.saveEvery = 7;
  {
    PlacementDB killed = circuit(33, 900);
    EXPECT_THROW(
        {
          auto r = runSupervisedFlow(killed, traced(nullptr, 25), supCfg);
          (void)r;
        },
        KillSignal);
  }
  ASSERT_FALSE(fs::is_empty(dir));

  // Resume from a fresh process image; the trajectory must replay the
  // reference bit-for-bit from the restored iteration onward.
  std::vector<TraceRec> resTrace;
  SupervisorConfig resumeCfg = supCfg;
  resumeCfg.resumeDir = dir.string();
  PlacementDB resumed = circuit(33, 900);
  SupervisorReport report;
  const auto resRun =
      runSupervisedFlow(resumed, traced(&resTrace, -1), resumeCfg, &report);
  ASSERT_TRUE(resRun.ok());
  EXPECT_TRUE(report.resumed);
  EXPECT_EQ(report.resumeStage, FlowStage::kMgp);

  std::map<std::pair<std::string, int>, double> refByIter;
  for (const auto& t : refTrace) refByIter[{t.stage, t.iter}] = t.hpwl;
  ASSERT_FALSE(resTrace.empty());
  for (const auto& t : resTrace) {
    const auto it = refByIter.find({t.stage, t.iter});
    ASSERT_NE(it, refByIter.end()) << t.stage << " #" << t.iter;
    EXPECT_EQ(it->second, t.hpwl) << t.stage << " #" << t.iter;
  }
  EXPECT_EQ(std::bit_cast<std::uint64_t>(refRun->finalHpwl),
            std::bit_cast<std::uint64_t>(resRun->finalHpwl));
  ASSERT_EQ(ref.objects.size(), resumed.objects.size());
  for (std::size_t i = 0; i < ref.objects.size(); ++i) {
    EXPECT_EQ(ref.objects[i].lx, resumed.objects[i].lx)
        << ref.objects[i].name;
    EXPECT_EQ(ref.objects[i].ly, resumed.objects[i].ly)
        << ref.objects[i].name;
  }
  fs::remove_all(dir);
}

}  // namespace
}  // namespace ep
