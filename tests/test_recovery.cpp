// Checkpoint/rollback recovery under injected numerical faults: the placer
// must detect NaN/spiking gradients and divergence, roll back to a healthy
// checkpoint, and either finish normally or degrade gracefully to the best
// checkpoint with a typed status — never crash, never return NaN positions.
#include <gtest/gtest.h>

#include <cmath>

#include "eplace/flow.h"
#include "eplace/global_placer.h"
#include "gen/generator.h"
#include "qp/initial_place.h"
#include "util/context.h"
#include "util/fault_injector.h"

namespace ep {
namespace {

PlacementDB smallInstance(std::uint64_t seed = 11) {
  GenSpec spec;
  spec.name = "recovery";
  spec.numCells = 300;
  spec.seed = seed;
  return generateCircuit(spec);
}

GpConfig recoveryConfig() {
  GpConfig cfg;
  cfg.maxIterations = 600;
  cfg.health.checkpointEvery = 10;
  return cfg;
}

bool placementInsideRegion(const PlacementDB& db) {
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    const Point c = o.center();
    if (!std::isfinite(c.x) || !std::isfinite(c.y)) return false;
    if (c.x < db.region.lx - 1e-6 || c.x > db.region.hx + 1e-6 ||
        c.y < db.region.ly - 1e-6 || c.y > db.region.hy + 1e-6) {
      return false;
    }
  }
  return true;
}

GpResult runPlacer(PlacementDB& db, const GpConfig& cfg,
                   RuntimeContext& ctx) {
  quadraticInitialPlace(db, {}, &ctx);
  GlobalPlacer gp(db, db.movable(), cfg, &ctx);
  gp.makeFillersFromDb();
  return gp.run();
}

using RecoveryTest = ::testing::Test;

TEST_F(RecoveryTest, NanGradientTriggersRollbackAndRecovers) {
  // Reference run, no faults.
  RuntimeContext ref_ctx;
  PlacementDB clean = smallInstance();
  const GpResult ref = runPlacer(clean, recoveryConfig(), ref_ctx);
  ASSERT_TRUE(ref.status.ok());
  ASSERT_TRUE(ref.converged);

  // Same instance with one NaN injected into the gradient mid-run.
  RuntimeContext ctx;
  PlacementDB faulty = smallInstance();
  ctx.faults().arm("nesterov.grad",
                   {FaultKind::kNaN, /*atTick=*/40, /*count=*/1});
  const GpResult res = runPlacer(faulty, recoveryConfig(), ctx);

  EXPECT_EQ(ctx.faults().fireCount("nesterov.grad"), 1);
  EXPECT_TRUE(res.status.ok()) << res.status.toString();
  EXPECT_GE(res.recoveries, 1);
  EXPECT_TRUE(res.converged);
  EXPECT_LE(res.finalOverflow, recoveryConfig().targetOverflow + 1e-9);
  EXPECT_TRUE(placementInsideRegion(faulty));
  // Recovery must not cost placement quality: within 5% of the clean run.
  EXPECT_NEAR(res.finalHpwl, ref.finalHpwl, 0.05 * ref.finalHpwl);
}

TEST_F(RecoveryTest, GradientSpikeTriggersRollbackAndRecovers) {
  RuntimeContext ref_ctx;
  PlacementDB clean = smallInstance(23);
  const GpResult ref = runPlacer(clean, recoveryConfig(), ref_ctx);
  ASSERT_TRUE(ref.converged);

  RuntimeContext ctx;
  PlacementDB faulty = smallInstance(23);
  ctx.faults().arm(
      "nesterov.grad", {FaultKind::kSpike, /*atTick=*/60, /*count=*/2, 1e12});
  const GpResult res = runPlacer(faulty, recoveryConfig(), ctx);

  EXPECT_TRUE(res.status.ok()) << res.status.toString();
  EXPECT_TRUE(res.converged);
  EXPECT_TRUE(placementInsideRegion(faulty));
  EXPECT_NEAR(res.finalHpwl, ref.finalHpwl, 0.05 * ref.finalHpwl);
}

TEST_F(RecoveryTest, PersistentFaultExhaustsBudgetAndReturnsBestCheckpoint) {
  RuntimeContext ctx;
  PlacementDB db = smallInstance();
  // Every gradient evaluation from pass 30 on is poisoned: recovery cannot
  // succeed, so the placer must exhaust its budget and hand back the best
  // checkpoint with a NumericalDivergence status.
  ctx.faults().arm("nesterov.grad",
                   {FaultKind::kNaN, /*atTick=*/30, /*count=*/-1});
  GpConfig cfg = recoveryConfig();
  const GpResult res = runPlacer(db, cfg, ctx);

  EXPECT_EQ(res.status.code(), StatusCode::kNumericalDivergence)
      << res.status.toString();
  EXPECT_EQ(res.recoveries, cfg.health.maxRecoveries);
  EXPECT_FALSE(res.converged);
  // Graceful degradation: the checkpoint placement is finite and legal-region.
  EXPECT_TRUE(placementInsideRegion(db));
  EXPECT_TRUE(std::isfinite(res.finalHpwl));
  EXPECT_TRUE(std::isfinite(res.finalOverflow));
}

TEST_F(RecoveryTest, FftFaultIsCaughtByGradientHealthCheck) {
  RuntimeContext ctx;
  PlacementDB db = smallInstance(31);
  // Corrupt a spectral coefficient inside the Poisson solver: the NaN
  // reaches the density gradient and must trip the same recovery path.
  ctx.faults().arm("fft.forward",
                   {FaultKind::kNaN, /*atTick=*/200, /*count=*/1});
  const GpResult res = runPlacer(db, recoveryConfig(), ctx);

  EXPECT_GE(ctx.faults().fireCount("fft.forward"), 1);
  EXPECT_TRUE(res.status.ok()) << res.status.toString();
  EXPECT_TRUE(placementInsideRegion(db));
  EXPECT_TRUE(std::isfinite(res.finalHpwl));
}

TEST_F(RecoveryTest, WatchdogStopsLongStageGracefully) {
  RuntimeContext ctx;
  PlacementDB db = smallInstance(47);
  GpConfig cfg = recoveryConfig();
  cfg.health.timeBudgetSeconds = 1e-4;  // expires after the first iteration
  const GpResult res = runPlacer(db, cfg, ctx);

  EXPECT_TRUE(res.timedOut);
  EXPECT_EQ(res.status.code(), StatusCode::kTimeout);
  EXPECT_LT(res.iterations, cfg.maxIterations);
  EXPECT_TRUE(placementInsideRegion(db));
  EXPECT_TRUE(std::isfinite(res.finalHpwl));
}

TEST_F(RecoveryTest, FlowCarriesDivergenceStatusThrough) {
  RuntimeContext ctx;
  PlacementDB db = smallInstance(53);
  ctx.faults().arm("nesterov.grad",
                   {FaultKind::kNaN, /*atTick=*/30, /*count=*/-1});
  FlowConfig cfg;
  cfg.runDetail = false;  // keep the degraded layout observable
  const StatusOr<FlowResult> res = runEplaceFlowChecked(db, cfg, &ctx);
  ASSERT_TRUE(res.ok());  // the flow ran; degradation is in res->status
  EXPECT_EQ(res->status.code(), StatusCode::kNumericalDivergence);
  EXPECT_TRUE(placementInsideRegion(db));
}

TEST_F(RecoveryTest, FlowCheckedRejectsZeroAreaMovable) {
  PlacementDB db = smallInstance();
  db.objects[db.movable()[0]].w = 0.0;
  const StatusOr<FlowResult> res = runEplaceFlowChecked(db);
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(res.status().message().find("zero area"), std::string::npos);
}

TEST_F(RecoveryTest, SanitizeClampsStrandedPadAndRecentersNanMovable) {
  PlacementDB db = smallInstance();
  // A pad flung 100 region-widths away (corrupt coordinates) and a movable
  // cell with NaN position must both be repaired, then the flow runs.
  Object pad;
  pad.name = "stranded";
  pad.w = 1;
  pad.h = 1;
  pad.fixed = true;
  pad.setCenter(db.region.hx + 100.0 * db.region.width(), db.region.hy);
  db.objects.push_back(pad);
  db.objects[db.movable()[0]].lx = std::nan("");
  db.finalize();

  int repaired = 0;
  ASSERT_TRUE(db.sanitize(&repaired).ok());
  EXPECT_EQ(repaired, 2);
  EXPECT_TRUE(db.validate().ok());
  const Point c = db.objects.back().center();
  EXPECT_LE(c.x, db.region.hx + 1e-9);
  // A pad just outside the boundary (normal periphery IO) is left alone.
  Object io;
  io.name = "edge_io";
  io.w = 1;
  io.h = 1;
  io.fixed = true;
  io.setCenter(db.region.lx - 1.0, db.region.ly);
  db.objects.push_back(io);
  db.finalize();
  ASSERT_TRUE(db.sanitize(&repaired).ok());
  EXPECT_EQ(repaired, 0);
  EXPECT_DOUBLE_EQ(db.objects.back().center().x, db.region.lx - 1.0);
}

TEST_F(RecoveryTest, FaultInjectorIsDeterministic) {
  FaultInjector inj;
  std::vector<double> a(64, 1.0), b(64, 1.0);
  inj.arm("x", {FaultKind::kNaN, 0, 3});
  for (int i = 0; i < 3; ++i) {
    if (const FaultSpec* f = inj.fire("x")) inj.corrupt(a, *f);
  }
  inj.reset();
  inj.arm("x", {FaultKind::kNaN, 0, 3});
  for (int i = 0; i < 3; ++i) {
    if (const FaultSpec* f = inj.fire("x")) inj.corrupt(b, *f);
  }
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::isnan(a[i]), std::isnan(b[i])) << i;
  }
}

}  // namespace
}  // namespace ep
