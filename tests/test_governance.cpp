// Resource-governance suite (ctest -L governance): per-context memory
// budgets and storage-fault containment, end to end.
//
// What is proven here:
//   * MemoryBudget semantics — charge-before-allocate, rejection leaves the
//     accounting untouched, peak tracking, clamped release.
//   * ep::io durable-write semantics — a one-shot injected fault is
//     absorbed by the retry policy; a persistent fault exhausts it into a
//     typed kIo; ENOSPC is recognized and never retried.
//   * Steady-state kernels never touch the budget: arena borrows that do
//     not grow charge nothing, so budgets cannot perturb results.
//   * A session whose budget cannot hold the placement view fails with
//     kResourceExhausted before placing anything; a generously budgeted
//     session is bit-identical to an unbudgeted one and reports peak bytes.
//   * The supervised flow survives persistent snapshot-write faults by
//     degrading to snapshot-less mode and still finishing.
//   * Daemon governance — an impossible mem_budget_mb is rejected typed at
//     admission for gen jobs AND aux jobs (the Bookshelf counting pass +
//     capacity plan price the instance at submit; no journal entry, worker
//     slots untouched); a mid-run breach from costs the admission estimate
//     cannot see (fillers over whitespace) fails that job alone while
//     neighbors stay bit-identical to solo runs; a journal-write fault
//     rejects the one submit with kUnavailable while the daemon stays
//     healthy.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <filesystem>
#include <string>

#include "bookshelf/bookshelf.h"
#include "eplace/session.h"
#include "eplace/supervisor.h"
#include "gen/generator.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "util/context.h"
#include "util/fault_injector.h"
#include "util/io.h"
#include "util/memory_budget.h"
#include "util/status.h"

namespace fs = std::filesystem;
using namespace ep;
using namespace ep::serve;

namespace {

FaultSpec persistentError() {
  FaultSpec spec;
  spec.kind = FaultKind::kError;
  spec.atTick = 0;
  spec.count = -1;
  return spec;
}

}  // namespace

// ---------------------------------------------------------------------------
// MemoryBudget unit semantics.

TEST(MemoryBudget, ChargeReleasePeakAndRejection) {
  MemoryBudget mb;
  EXPECT_FALSE(mb.limited());
  EXPECT_TRUE(mb.tryCharge(1000));  // unlimited: always accepted, accounted
  EXPECT_EQ(mb.usedBytes(), 1000u);
  EXPECT_EQ(mb.peakBytes(), 1000u);

  mb.reset();
  mb.setLimit(4096);
  EXPECT_TRUE(mb.limited());
  EXPECT_TRUE(mb.tryCharge(4000));
  // Rejection leaves the accounting exactly where it was.
  EXPECT_FALSE(mb.tryCharge(200));
  EXPECT_EQ(mb.usedBytes(), 4000u);
  EXPECT_EQ(mb.peakBytes(), 4000u);
  // Headroom freed by a release is immediately usable again.
  mb.release(2000);
  EXPECT_TRUE(mb.tryCharge(2096));
  EXPECT_EQ(mb.usedBytes(), 4096u);
  EXPECT_EQ(mb.peakBytes(), 4096u);
  // Over-release clamps at zero instead of wrapping.
  mb.release(1u << 30);
  EXPECT_EQ(mb.usedBytes(), 0u);
  EXPECT_EQ(mb.peakBytes(), 4096u);  // peak is a high-water mark
}

TEST(MemoryBudget, ChargeOrThrowCarriesSizes) {
  MemoryBudget mb;
  mb.setLimit(100);
  EXPECT_NO_THROW(mb.chargeOrThrow(60));
  try {
    mb.chargeOrThrow(50);
    FAIL() << "expected MemoryBudgetExceeded";
  } catch (const MemoryBudgetExceeded& e) {
    EXPECT_EQ(e.requestedBytes, 50u);
    EXPECT_EQ(e.usedBytes, 60u);
    EXPECT_EQ(e.limitBytes, 100u);
  }
  EXPECT_EQ(mb.usedBytes(), 60u);  // failed charge left no residue
}

TEST(MemoryBudget, ScopedChargeReleasesOnlyWhatItHolds) {
  MemoryBudget mb;
  mb.setLimit(1000);
  {
    ScopedCharge ok(mb, 600);
    EXPECT_TRUE(ok.ok());
    EXPECT_EQ(mb.usedBytes(), 600u);
    ScopedCharge rejected(mb, 600);
    EXPECT_FALSE(rejected.ok());
    EXPECT_EQ(mb.usedBytes(), 600u);  // rejected scope holds nothing
  }
  EXPECT_EQ(mb.usedBytes(), 0u);  // only the accepted scope released
}

// ---------------------------------------------------------------------------
// Arena: growth charges the budget; steady state never touches it.

TEST(MemoryBudget, ArenaChargesGrowthOnlyNeverSteadyState) {
  GenSpec gs;
  gs.name = "arena";
  gs.numCells = 50;
  gs.seed = 3;
  PlacementDB db = generateCircuit(gs);
  db.finalize();
  ScratchArena& arena = db.view().arena();

  MemoryBudget mb;
  arena.setBudget(&mb);
  (void)arena.doubles("t.buf", 1000);
  const std::size_t afterGrowth = mb.usedBytes();
  EXPECT_GE(afterGrowth, 1000u * sizeof(double));
  const long growths = arena.growthEvents();

  // The steady-state pattern kernels use after warm-up: same key, same (or
  // smaller) size. Zero growth, zero charges — budgets cannot perturb the
  // hot loop.
  for (int i = 0; i < 100; ++i) {
    (void)arena.doubles("t.buf", 1000);
    (void)arena.doubles("t.buf", 500);
  }
  EXPECT_EQ(arena.growthEvents(), growths);
  EXPECT_EQ(mb.usedBytes(), afterGrowth);

  // Growth past capacity charges exactly the new bytes.
  (void)arena.doubles("t.buf", 2000);
  EXPECT_EQ(mb.usedBytes(), afterGrowth + 1000u * sizeof(double));
  arena.setBudget(nullptr);
}

TEST(MemoryBudget, ArenaGrowthBreachThrowsAndAllocatesNothing) {
  GenSpec gs;
  gs.name = "arena2";
  gs.numCells = 50;
  gs.seed = 3;
  PlacementDB db = generateCircuit(gs);
  db.finalize();
  ScratchArena& arena = db.view().arena();

  MemoryBudget mb;
  mb.setLimit(1024);
  arena.setBudget(&mb);
  const std::size_t capBefore = arena.capacityBytes();
  EXPECT_THROW((void)arena.doubles("t.big", 1u << 20), MemoryBudgetExceeded);
  EXPECT_EQ(arena.capacityBytes(), capBefore);  // charge-before-allocate
  EXPECT_EQ(mb.usedBytes(), 0u);
  arena.setBudget(nullptr);
}

// ---------------------------------------------------------------------------
// ep::io durable-write semantics under injected storage faults.

class IoFaultTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) / "ep_io_fault";
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }
  fs::path dir_;
};

TEST_F(IoFaultTest, OneShotFaultAbsorbedByRetry) {
  for (const char* site : {"io.write", "io.fsync", "io.rename"}) {
    FaultInjector faults;
    FaultSpec spec = persistentError();
    spec.count = 1;  // fail exactly one attempt
    faults.arm(site, spec);
    const std::string path = (dir_ / (std::string(site) + ".txt")).string();
    const Status s = io::writeFileDurably(path, "payload", &faults);
    EXPECT_TRUE(s.ok()) << site << ": " << s.toString();
    EXPECT_TRUE(fs::exists(path)) << site;
    EXPECT_EQ(faults.fireCount(site), 1) << site;
  }
}

TEST_F(IoFaultTest, PersistentFaultExhaustsRetriesIntoTypedIo) {
  for (const char* site : {"io.write", "io.fsync", "io.rename"}) {
    FaultInjector faults;
    faults.arm(site, persistentError());
    const std::string path = (dir_ / (std::string(site) + ".txt")).string();
    const Status s = io::writeFileDurably(path, "payload", &faults);
    EXPECT_EQ(s.code(), StatusCode::kIo) << site;
    EXPECT_FALSE(io::isNoSpace(s)) << site;
    EXPECT_FALSE(fs::exists(path)) << site;  // no partial file landed
    EXPECT_FALSE(fs::exists(path + ".tmp")) << site;  // tmp cleaned up
    EXPECT_EQ(faults.fireCount(site), 3) << site;  // default retry policy
  }
}

TEST_F(IoFaultTest, EnospcIsRecognizedAndNeverRetried) {
  FaultInjector faults;
  faults.arm("io.enospc", persistentError());
  const std::string path = (dir_ / "full.txt").string();
  const Status s = io::writeFileDurably(path, "payload", &faults);
  EXPECT_EQ(s.code(), StatusCode::kIo);
  EXPECT_TRUE(io::isNoSpace(s)) << s.toString();
  // A full disk will not empty itself inside the backoff window: exactly
  // one attempt, no retries.
  EXPECT_EQ(faults.fireCount("io.enospc"), 1);
}

// ---------------------------------------------------------------------------
// Session-level governance.

namespace {

constexpr int kCells = 220;
constexpr int kIters = 40;
constexpr std::uint64_t kSeed = 11;

SessionOptions soloOptions(std::size_t memBudgetMb = 0) {
  SessionOptions so;
  so.name = "gov";
  so.threads = 1;
  so.logLevel = LogLevel::kOff;
  so.supervised = true;
  so.flow.gp.maxIterations = kIters;
  so.flow.runDetail = false;
  so.memBudgetMb = memBudgetMb;
  return so;
}

PlacementDB genDb(std::size_t cells, std::uint64_t seed = kSeed) {
  GenSpec gs;
  gs.name = "gov";
  gs.numCells = cells;
  gs.seed = seed;
  return generateCircuit(gs);
}

}  // namespace

TEST(Governance, UndersizedSessionBudgetFailsTypedBeforePlacing) {
  PlacerSession session(soloOptions(/*memBudgetMb=*/1));
  ASSERT_TRUE(session.adopt(genDb(20000)).ok());
  const auto res = session.place();
  ASSERT_FALSE(res.ok());
  EXPECT_EQ(res.status().code(), StatusCode::kResourceExhausted)
      << res.status().toString();
}

TEST(Governance, BudgetedRunBitIdenticalToUnbudgetedAndReportsPeak) {
  std::uint64_t unbudgeted = 0;
  {
    PlacerSession session(soloOptions());
    ASSERT_TRUE(session.adopt(genDb(kCells)).ok());
    const auto res = session.place();
    ASSERT_TRUE(res.ok()) << res.status().toString();
    unbudgeted = std::bit_cast<std::uint64_t>(res->finalHpwl);
    // Accounting runs even without a cap, so peak-bytes reporting works
    // for unbudgeted jobs too.
    EXPECT_GT(session.context().memory().peakBytes(), 0u);
  }
  PlacerSession session(soloOptions(/*memBudgetMb=*/512));
  ASSERT_TRUE(session.adopt(genDb(kCells)).ok());
  const auto res = session.place();
  ASSERT_TRUE(res.ok()) << res.status().toString();
  EXPECT_EQ(std::bit_cast<std::uint64_t>(res->finalHpwl), unbudgeted)
      << "budget accounting perturbed the placement";
  EXPECT_GT(session.context().memory().peakBytes(), 0u);
  EXPECT_LE(session.context().memory().peakBytes(), 512u << 20);
}

TEST(Governance, SupervisedFlowDegradesToSnapshotlessUnderPersistentEnospc) {
  const fs::path dir = fs::path(::testing::TempDir()) / "gov_enospc";
  fs::remove_all(dir);
  fs::create_directories(dir);

  RuntimeContext ctx;
  ctx.faults().arm("io.enospc", persistentError());

  PlacementDB db = genDb(kCells);
  FlowConfig cfg;
  cfg.gp.maxIterations = kIters;
  cfg.runDetail = false;
  SupervisorConfig sup;
  sup.snapshotDir = (dir / "snaps").string();
  sup.saveEvery = 5;
  SupervisorReport report;
  const auto run = runSupervisedFlow(db, cfg, sup, &report, &ctx);
  // Snapshots are a durability feature, not a correctness one: the run
  // must finish without them.
  ASSERT_TRUE(run.ok()) << run.status().toString();
  EXPECT_TRUE(run->status.ok()) << run->status.toString();
  EXPECT_GE(ctx.stats().value("supervisor.snapshotFailures"), 1.0);
  EXPECT_GE(ctx.stats().value("supervisor.snapshotsDisabled"), 1.0);
  fs::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Daemon-level governance over a real socket.

class GovernanceDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string name = ::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name();
    root_ = "/tmp/ep_gov_" + name;
    sock_ = "/tmp/ep_gov_" + name + ".sock";
    fs::remove_all(root_);
    fs::remove(sock_);
  }
  void TearDown() override {
    fs::remove_all(root_);
    fs::remove(sock_);
  }

  ServeOptions baseOptions() {
    ServeOptions opt;
    opt.socketPath = sock_;
    opt.root = root_;
    opt.workers = 2;
    opt.logLevel = LogLevel::kOff;
    return opt;
  }

  static JobSpec cleanJob(const std::string& name) {
    JobSpec spec;
    spec.name = name;
    spec.hasGen = true;
    spec.gen.numCells = kCells;
    spec.gen.seed = kSeed;
    spec.gpMaxIterations = kIters;
    spec.runDetail = false;
    return spec;
  }

  static std::uint64_t soloBits() {
    PlacerSession session(soloOptions());
    EXPECT_TRUE(session.adopt(genDb(kCells)).ok());
    const auto res = session.place();
    EXPECT_TRUE(res.ok());
    return std::bit_cast<std::uint64_t>(res->finalHpwl);
  }

  std::string root_;
  std::string sock_;
};

TEST_F(GovernanceDaemonTest, ImpossibleBudgetRejectedTypedAtAdmission) {
  ServeDaemon daemon(baseOptions());
  ASSERT_TRUE(daemon.start().ok());
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());

  // 50k cells cannot fit in 1 MiB: the capacity estimate rejects this at
  // submit — typed, instant, no worker slot burned, no journal entry.
  JobSpec doomed = cleanJob("doomed");
  doomed.gen.numCells = 50000;
  doomed.memBudgetMb = 1;
  const auto rejected = client.submit(doomed);
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted)
      << rejected.status().toString();
  EXPECT_FALSE(fs::exists(root_ + "/jobs/job_1.json"));

  // Aux jobs are priced the same way at submit: the Bookshelf counting
  // pass + capacity plan see the 20k cells, so the undersized budget is
  // rejected before a worker slot or journal entry is burned.
  const std::string auxDir = root_ + "_aux";
  fs::remove_all(auxDir);
  fs::create_directories(auxDir);
  ASSERT_TRUE(writeBookshelf(auxDir, "doomed", genDb(20000)).ok());
  JobSpec auxDoomed;
  auxDoomed.name = "aux_doomed";
  auxDoomed.auxPath = auxDir + "/doomed.aux";
  auxDoomed.memBudgetMb = 1;
  const auto auxRejected = client.submit(auxDoomed);
  ASSERT_FALSE(auxRejected.ok());
  EXPECT_EQ(auxRejected.status().code(), StatusCode::kResourceExhausted)
      << auxRejected.status().toString();
  EXPECT_FALSE(fs::exists(root_ + "/jobs/job_1.json"));
  fs::remove_all(auxDir);

  // The same job with a workable budget is admitted and finishes.
  JobSpec fine = cleanJob("fine");
  fine.memBudgetMb = 512;
  const auto id = client.submit(fine);
  ASSERT_TRUE(id.ok()) << id.status().toString();
  const auto out = client.wait(*id, 300.0);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->status.ok()) << out->status.toString();
  EXPECT_GT(out->peakBytes, 0u);

  daemon.requestShutdown();
  daemon.wait();
}

TEST_F(GovernanceDaemonTest, MidRunBreachFailsAloneNeighborsBitExact) {
  // The admission estimate prices what the counting pass can see: object /
  // net / pin counts. Filler cells are created at run time from whitespace,
  // so a sparse design (utilization 5% -> ~19 fillers per cell) carries GP
  // state the estimate cannot anticipate: the job is admitted, then the
  // arena/bin-grid charges breach the budget mid-run. That breach must fail
  // this job alone, typed, with neighbors bit-identical to solo runs.
  GenSpec sparse;
  sparse.name = "mem";
  sparse.numCells = 2000;
  sparse.utilization = 0.05;
  sparse.seed = kSeed;
  const std::string auxDir = root_ + "_aux";
  fs::remove_all(auxDir);
  fs::create_directories(auxDir);
  ASSERT_TRUE(writeBookshelf(auxDir, "mem", generateCircuit(sparse)).ok());

  ServeDaemon daemon(baseOptions());
  ASSERT_TRUE(daemon.start().ok());
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());

  JobSpec breacher;
  breacher.name = "breacher";
  breacher.auxPath = auxDir + "/mem.aux";
  breacher.memBudgetMb = 4;
  breacher.gpMaxIterations = kIters;
  breacher.runDetail = false;

  const auto left = client.submit(cleanJob("left"));
  const auto mid = client.submit(breacher);
  const auto right = client.submit(cleanJob("right"));
  ASSERT_TRUE(left.ok() && mid.ok() && right.ok());

  const auto outMid = client.wait(*mid, 300.0);
  ASSERT_TRUE(outMid.ok());
  EXPECT_EQ(outMid->status.code(), StatusCode::kResourceExhausted)
      << outMid->status.toString();

  const std::uint64_t solo = soloBits();
  for (const std::uint64_t id : {*left, *right}) {
    const auto out = client.wait(id, 300.0);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out->status.ok()) << out->status.toString();
    EXPECT_EQ(out->hpwlBits, solo) << "breach leaked into job " << id;
  }
  EXPECT_TRUE(client.ping().ok());  // daemon healthy throughout

  daemon.requestShutdown();
  daemon.wait();
  fs::remove_all(auxDir);
}

TEST_F(GovernanceDaemonTest, JournalWriteFaultRejectsSubmitDaemonHealthy) {
  ServeDaemon daemon(baseOptions());
  ASSERT_TRUE(daemon.start().ok());
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());

  // Persistent storage fault on the journal path: the durability invariant
  // ("acked => journaled") must hold by rejecting the submit, and the
  // daemon must stay healthy for retries.
  daemon.context().faults().arm("io.write", persistentError());
  const auto denied = client.submit(cleanJob("denied"));
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kUnavailable)
      << denied.status().toString();
  EXPECT_TRUE(client.ping().ok());
  EXPECT_TRUE(fs::is_empty(root_ + "/jobs"));

  // Storage healed: the retry is admitted and finishes bit-exactly.
  daemon.context().faults().disarm("io.write");
  const auto id = client.submit(cleanJob("retried"));
  ASSERT_TRUE(id.ok()) << id.status().toString();
  const auto out = client.wait(*id, 300.0);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->status.ok()) << out->status.toString();
  EXPECT_EQ(out->hpwlBits, soloBits());

  daemon.requestShutdown();
  daemon.wait();
}
