// Durable snapshot container (util/snapshot): byte codec round trips,
// CRC-protected section framing, atomic tmp+rename writes, and typed
// rejection of truncated / bit-flipped / foreign files. The "snapshot.write"
// fault site must produce files the reader detects as corrupt.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "util/fault_injector.h"
#include "util/snapshot.h"

namespace ep {
namespace {

namespace fs = std::filesystem;

class SnapshotTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("snapshot_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  [[nodiscard]] std::string path(const std::string& name) const {
    return (dir_ / name).string();
  }

  static SnapshotData sample() {
    SnapshotData snap;
    ByteWriter w;
    w.str("instance");
    w.u32(42);
    w.u64(1ULL << 40);
    w.f64(3.14159265358979);
    snap.add("meta", w.take());
    ByteWriter p;
    p.doubles(std::vector<double>{1.0, -2.5, 1e300, 0.0});
    snap.add("positions", p.take());
    return snap;
  }

  fs::path dir_;
};

TEST_F(SnapshotTest, Crc32MatchesKnownVector) {
  // CRC-32 of "123456789" is the classic check value 0xCBF43926.
  const std::string s = "123456789";
  const auto* b = reinterpret_cast<const std::uint8_t*>(s.data());
  EXPECT_EQ(crc32({b, s.size()}), 0xCBF43926u);
}

TEST_F(SnapshotTest, ByteCodecRoundTripsBitExact) {
  ByteWriter w;
  w.u8(7);
  w.u32(0xDEADBEEFu);
  w.u64(0x0123456789ABCDEFull);
  w.i32(-12345);
  w.f64(-0.1);  // not exactly representable; must round trip bit-exactly
  w.str("hello world");
  const std::vector<double> v{1.0 / 3.0, -1e-300, 5e307};
  w.doubles(v);

  ByteReader r(w.bytes());
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFull);
  EXPECT_EQ(r.i32(), -12345);
  EXPECT_EQ(r.f64(), -0.1);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.doubles(), v);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

TEST_F(SnapshotTest, ByteReaderFlagsOverrun) {
  ByteWriter w;
  w.u32(3);
  ByteReader r(w.bytes());
  (void)r.u64();  // 8 bytes requested, 4 available
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.u32(), 0u);  // further reads are zero, not UB
}

TEST_F(SnapshotTest, FileRoundTrip) {
  const std::string p = path("a.epsnap");
  ASSERT_TRUE(writeSnapshotFile(p, sample()).ok());
  const auto rd = readSnapshotFile(p);
  ASSERT_TRUE(rd.ok()) << rd.status().toString();
  ASSERT_NE(rd->find("meta"), nullptr);
  ASSERT_NE(rd->find("positions"), nullptr);
  EXPECT_EQ(rd->sections, sample().sections);
  // No stray tmp file once the rename landed.
  EXPECT_FALSE(fs::exists(p + ".tmp"));
}

TEST_F(SnapshotTest, AtomicOverwriteReplacesPreviousSnapshot) {
  const std::string p = path("a.epsnap");
  ASSERT_TRUE(writeSnapshotFile(p, sample()).ok());
  SnapshotData second = sample();
  ByteWriter w;
  w.u32(99);
  second.add("extra", w.take());
  ASSERT_TRUE(writeSnapshotFile(p, second).ok());
  const auto rd = readSnapshotFile(p);
  ASSERT_TRUE(rd.ok());
  EXPECT_NE(rd->find("extra"), nullptr);
}

TEST_F(SnapshotTest, TruncatedFileIsRejected) {
  const std::string p = path("a.epsnap");
  ASSERT_TRUE(writeSnapshotFile(p, sample()).ok());
  const auto size = fs::file_size(p);
  fs::resize_file(p, size / 2);
  const auto rd = readSnapshotFile(p);
  ASSERT_FALSE(rd.ok());
  EXPECT_EQ(rd.status().code(), StatusCode::kInvalidInput);
}

TEST_F(SnapshotTest, BitFlippedPayloadFailsChecksum) {
  const std::string p = path("a.epsnap");
  ASSERT_TRUE(writeSnapshotFile(p, sample()).ok());
  // Flip one bit in the last payload byte (well past the header).
  std::fstream f(p, std::ios::in | std::ios::out | std::ios::binary);
  ASSERT_TRUE(f.good());
  f.seekg(-1, std::ios::end);
  char byte = 0;
  f.get(byte);
  f.seekp(-1, std::ios::end);
  f.put(static_cast<char>(byte ^ 0x10));
  f.close();
  const auto rd = readSnapshotFile(p);
  ASSERT_FALSE(rd.ok());
  EXPECT_EQ(rd.status().code(), StatusCode::kInvalidInput);
  EXPECT_NE(rd.status().message().find("CRC"), std::string::npos)
      << rd.status().message();
}

TEST_F(SnapshotTest, GarbageMagicIsRejected) {
  const std::string p = path("a.epsnap");
  std::ofstream(p, std::ios::binary) << "this is not a snapshot file at all";
  const auto rd = readSnapshotFile(p);
  ASSERT_FALSE(rd.ok());
  EXPECT_EQ(rd.status().code(), StatusCode::kInvalidInput);
}

TEST_F(SnapshotTest, MissingFileIsIoError) {
  const auto rd = readSnapshotFile(path("does_not_exist.epsnap"));
  ASSERT_FALSE(rd.ok());
  EXPECT_EQ(rd.status().code(), StatusCode::kIo);
}

TEST_F(SnapshotTest, WriteFaultSiteBitFlipIsCaughtByReader) {
  FaultInjector faults;
  faults.arm("snapshot.write", {FaultKind::kNaN, /*atTick=*/0, /*count=*/1});
  const std::string p = path("a.epsnap");
  // write itself succeeds
  ASSERT_TRUE(writeSnapshotFile(p, sample(), &faults).ok());
  EXPECT_EQ(faults.fireCount("snapshot.write"), 1);
  const auto rd = readSnapshotFile(p);
  ASSERT_FALSE(rd.ok());
  EXPECT_EQ(rd.status().code(), StatusCode::kInvalidInput);
}

TEST_F(SnapshotTest, WriteFaultSiteTruncationIsCaughtByReader) {
  FaultInjector faults;
  faults.arm("snapshot.write",
             {FaultKind::kTruncate, /*atTick=*/0, /*count=*/1});
  const std::string p = path("a.epsnap");
  ASSERT_TRUE(writeSnapshotFile(p, sample(), &faults).ok());
  const auto rd = readSnapshotFile(p);
  ASSERT_FALSE(rd.ok());
  EXPECT_EQ(rd.status().code(), StatusCode::kInvalidInput);
}

}  // namespace
}  // namespace ep
