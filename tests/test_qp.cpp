#include <gtest/gtest.h>

#include <cmath>

#include "qp/b2b.h"
#include "qp/initial_place.h"
#include "qp/sparse.h"
#include "util/rng.h"
#include "wirelength/wl.h"

namespace ep {
namespace {

TEST(Sparse, BuildAndMultiply) {
  CooBuilder b(3);
  b.addDiag(0, 2.0);
  b.addDiag(1, 3.0);
  b.addDiag(2, 1.0);
  b.addOffDiag(0, 1, -1.0);
  b.addDiag(0, 0.5);  // duplicate coordinates sum
  const Csr A = b.build();
  EXPECT_EQ(A.n, 3);
  std::vector<double> x{1.0, 2.0, 3.0}, y(3);
  A.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 2.5 * 1.0 - 1.0 * 2.0);
  EXPECT_DOUBLE_EQ(y[1], -1.0 * 1.0 + 3.0 * 2.0);
  EXPECT_DOUBLE_EQ(y[2], 3.0);
}

TEST(Sparse, AddSpring) {
  CooBuilder b(2);
  b.addSpring(0, 1, 4.0);
  const Csr A = b.build();
  std::vector<double> x{1.0, -1.0}, y(2);
  A.multiply(x, y);
  // A = [[4,-4],[-4,4]]; A x = [8, -8].
  EXPECT_DOUBLE_EQ(y[0], 8.0);
  EXPECT_DOUBLE_EQ(y[1], -8.0);
}

TEST(Sparse, CgSolvesRandomSpdSystem) {
  // Diagonally dominant random symmetric system.
  const std::int32_t n = 30;
  Rng rng(11);
  CooBuilder b(n);
  for (std::int32_t i = 0; i < n; ++i) {
    b.addDiag(i, 10.0 + rng.uniform());
    for (std::int32_t j = i + 1; j < n; ++j) {
      if (rng.chance(0.2)) {
        const double w = rng.uniform(-0.5, 0.5);
        b.addOffDiag(i, j, w);
      }
    }
  }
  const Csr A = b.build();
  std::vector<double> xTrue(static_cast<std::size_t>(n));
  for (auto& v : xTrue) v = rng.uniform(-3.0, 3.0);
  std::vector<double> rhs(static_cast<std::size_t>(n));
  A.multiply(xTrue, rhs);
  std::vector<double> x(static_cast<std::size_t>(n), 0.0);
  const auto res = cgSolve(A, rhs, x, 500, 1e-10);
  EXPECT_LT(res.residual, 1e-8);
  for (std::int32_t i = 0; i < n; ++i) {
    EXPECT_NEAR(x[static_cast<std::size_t>(i)],
                xTrue[static_cast<std::size_t>(i)], 1e-6);
  }
}

TEST(Sparse, CgWarmStartFewerIterations) {
  const std::int32_t n = 50;
  Rng rng(13);
  CooBuilder b(n);
  for (std::int32_t i = 0; i < n; ++i) b.addDiag(i, 5.0 + rng.uniform());
  for (std::int32_t i = 0; i + 1 < n; ++i) b.addOffDiag(i, i + 1, -1.0);
  const Csr A = b.build();
  std::vector<double> rhs(static_cast<std::size_t>(n), 1.0);
  std::vector<double> cold(static_cast<std::size_t>(n), 0.0);
  const auto coldRes = cgSolve(A, rhs, cold, 500, 1e-10);
  auto warm = cold;  // exact solution as the start
  const auto warmRes = cgSolve(A, rhs, warm, 500, 1e-10);
  EXPECT_LT(warmRes.iterations, coldRes.iterations);
}

/// Two movables on a 2-pin net each anchored to fixed pads: the quadratic
/// optimum is the weighted average of the fixed positions.
TEST(B2B, TwoPinNetsSolveToFixedAverage) {
  PlacementDB db;
  db.region = {0, 0, 100, 100};
  for (int i = 0; i < 3; ++i) {
    Object o;
    o.name = "o" + std::to_string(i);
    o.w = 1;
    o.h = 1;
    o.fixed = (i != 0);
    db.objects.push_back(o);
  }
  db.objects[1].setCenter(10, 10);
  db.objects[2].setCenter(90, 30);
  Net n1{"n1", {{0, 0, 0}, {1, 0, 0}}, 1.0};
  Net n2{"n2", {{0, 0, 0}, {2, 0, 0}}, 1.0};
  db.nets = {n1, n2};
  db.finalize();

  std::vector<std::int32_t> objToVar{0, -1, -1};
  std::vector<double> x{50.0};
  CooBuilder builder(1);
  std::vector<double> rhs(1, 0.0);
  buildB2B(db, Axis::kX, objToVar, x, builder, rhs);
  const Csr A = builder.build();
  std::vector<double> sol{50.0};
  cgSolve(A, rhs, sol, 100, 1e-12);
  // B2B on 2-pin nets is exact: weights cancel so the optimum is where the
  // pulls balance. With distances 40 each the weights are equal -> midpoint.
  EXPECT_NEAR(sol[0], 50.0, 1e-6);

  // Asymmetric start: B2B linearizes |x-10| + |x-90|, whose derivative is
  // zero anywhere between the pads — so any interior linearization point is
  // already stationary and must be reproduced exactly (the B2B fixed point
  // property).
  std::vector<double> x2{20.0};
  CooBuilder b2(1);
  std::vector<double> rhs2(1, 0.0);
  buildB2B(db, Axis::kX, objToVar, x2, b2, rhs2);
  std::vector<double> sol2{0.0};
  cgSolve(b2.build(), rhs2, sol2, 100, 1e-12);
  EXPECT_NEAR(sol2[0], 20.0, 1e-6);
}

TEST(B2B, PinOffsetsShiftSolution) {
  PlacementDB db;
  db.region = {0, 0, 100, 100};
  for (int i = 0; i < 2; ++i) {
    Object o;
    o.name = "o" + std::to_string(i);
    o.w = 2;
    o.h = 2;
    o.fixed = (i == 1);
    db.objects.push_back(o);
  }
  db.objects[1].setCenter(50, 50);
  // Movable pin offset +3: its center must settle at 47 to align the pins.
  Net n{"n", {{0, 3.0, 0}, {1, 0, 0}}, 1.0};
  db.nets = {n};
  db.finalize();
  std::vector<std::int32_t> objToVar{0, -1};
  std::vector<double> x{10.0};
  CooBuilder builder(1);
  std::vector<double> rhs(1, 0.0);
  buildB2B(db, Axis::kX, objToVar, x, builder, rhs);
  std::vector<double> sol{10.0};
  cgSolve(builder.build(), rhs, sol, 100, 1e-12);
  EXPECT_NEAR(sol[0], 47.0, 1e-6);
}

TEST(B2B, QuadraticNetCostSmoke) {
  PlacementDB db;
  db.region = {0, 0, 10, 10};
  for (int i = 0; i < 2; ++i) {
    Object o;
    o.name = "o" + std::to_string(i);
    o.w = 1;
    o.h = 1;
    db.objects.push_back(o);
  }
  db.objects[0].setCenter(1, 1);
  db.objects[1].setCenter(4, 5);
  db.nets.push_back({"n", {{0, 0, 0}, {1, 0, 0}}, 1.0});
  db.finalize();
  EXPECT_DOUBLE_EQ(quadraticNetCost(db), 9.0 + 16.0);
}

TEST(InitialPlace, ReducesHpwlAndStaysInRegion) {
  // Star of movables around fixed pads: mIP must collapse wirelength
  // massively versus a spread random start.
  PlacementDB db;
  db.region = {0, 0, 200, 200};
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    Object o;
    o.name = "c" + std::to_string(i);
    o.w = 2;
    o.h = 1;
    o.setCenter(rng.uniform(1, 199), rng.uniform(1, 199));
    db.objects.push_back(o);
  }
  for (int i = 0; i < 4; ++i) {
    Object o;
    o.name = "p" + std::to_string(i);
    o.w = 1;
    o.h = 1;
    o.fixed = true;
    o.setCenter(i < 2 ? 5.0 : 195.0, (i % 2) ? 5.0 : 195.0);
    db.objects.push_back(o);
  }
  for (int i = 0; i < 49; ++i) {
    db.nets.push_back(
        {"n" + std::to_string(i),
         {{i, 0, 0}, {i + 1, 0, 0}, {50 + (i % 4), 0, 0}},
         1.0});
  }
  db.finalize();
  const auto res = quadraticInitialPlace(db);
  EXPECT_LT(res.hpwlAfter, res.hpwlBefore);
  for (const auto& o : db.objects) {
    if (o.fixed) continue;
    EXPECT_GE(o.lx, db.region.lx - 1e-9);
    EXPECT_LE(o.lx + o.w, db.region.hx + 1e-9);
  }
}

TEST(InitialPlace, HandlesNoFixedPins) {
  // Fully floating design: the fallback anchor must keep the system SPD and
  // pull everything to the region center.
  PlacementDB db;
  db.region = {0, 0, 100, 100};
  for (int i = 0; i < 10; ++i) {
    Object o;
    o.name = "c" + std::to_string(i);
    o.w = 1;
    o.h = 1;
    o.setCenter(5.0 + i, 5.0);
    db.objects.push_back(o);
  }
  for (int i = 0; i < 9; ++i) {
    db.nets.push_back({"n" + std::to_string(i), {{i, 0, 0}, {i + 1, 0, 0}}, 1.0});
  }
  db.finalize();
  const auto res = quadraticInitialPlace(db);
  (void)res;
  for (const auto& o : db.objects) {
    EXPECT_NEAR(o.center().x, 50.0, 5.0);
    EXPECT_NEAR(o.center().y, 50.0, 5.0);
  }
}

TEST(InitialPlace, Deterministic) {
  PlacementDB db1, db2;
  for (PlacementDB* db : {&db1, &db2}) {
    db->region = {0, 0, 100, 100};
    for (int i = 0; i < 20; ++i) {
      Object o;
      o.name = "c" + std::to_string(i);
      o.w = 1;
      o.h = 1;
      db->objects.push_back(o);
    }
    Object pad;
    pad.name = "p";
    pad.w = 1;
    pad.h = 1;
    pad.fixed = true;
    pad.setCenter(10, 10);
    db->objects.push_back(pad);
    for (int i = 0; i < 19; ++i) {
      db->nets.push_back(
          {"n" + std::to_string(i), {{i, 0, 0}, {i + 1, 0, 0}, {20, 0, 0}}, 1.0});
    }
    db->finalize();
    quadraticInitialPlace(*db);
  }
  for (std::size_t i = 0; i < db1.objects.size(); ++i) {
    EXPECT_DOUBLE_EQ(db1.objects[i].lx, db2.objects[i].lx);
    EXPECT_DOUBLE_EQ(db1.objects[i].ly, db2.objects[i].ly);
  }
}

}  // namespace
}  // namespace ep
