// PlacerSession / runPlacerBatch (ctest label: session): concurrent
// sessions must be bit-identical to sequential ones at any thread split,
// faults armed on one session's context must never fire in another, and
// per-session snapshot streams must not collide. Pair with the tsan-session
// preset for data-race coverage of the same paths.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bookshelf/bookshelf.h"
#include "eplace/session.h"
#include "gen/generator.h"

namespace ep {
namespace {

namespace fs = std::filesystem;

/// Two distinct small instances staged as Bookshelf files so the batch API
/// exercises its real load path.
class SessionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("session_test_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    writeInstance("alpha", 7, 220);
    writeInstance("beta", 13, 260);
  }
  void TearDown() override { fs::remove_all(dir_); }

  void writeInstance(const std::string& name, std::uint64_t seed,
                     std::size_t cells) {
    GenSpec spec;
    spec.name = name;
    spec.numCells = cells;
    spec.numMovableMacros = 2;
    spec.seed = seed;
    ASSERT_TRUE(writeBookshelf(dir_.string(), name, generateCircuit(spec)).ok());
  }

  [[nodiscard]] std::string aux(const std::string& name) const {
    return (dir_ / (name + ".aux")).string();
  }

  [[nodiscard]] std::vector<BatchItem> items() const {
    return {{aux("alpha"), ""}, {aux("beta"), ""}};
  }

  static SessionOptions fastSession() {
    SessionOptions so;
    so.flow.runDetail = false;
    so.flow.gp.maxIterations = 120;
    return so;
  }

  fs::path dir_;
};

std::vector<std::uint64_t> positionBits(const PlacementDB& db) {
  std::vector<std::uint64_t> v;
  for (const auto& o : db.objects) {
    v.push_back(std::bit_cast<std::uint64_t>(o.lx));
    v.push_back(std::bit_cast<std::uint64_t>(o.ly));
  }
  return v;
}

TEST_F(SessionTest, ConcurrentBatchBitIdenticalToSequential) {
  for (const int totalThreads : {1, 4}) {
    BatchOptions conc;
    conc.maxConcurrentSessions = 2;
    conc.totalThreads = totalThreads;
    conc.session = fastSession();
    BatchOptions seq = conc;
    seq.maxConcurrentSessions = 1;

    const BatchResult a = runPlacerBatch(items(), seq);
    const BatchResult b = runPlacerBatch(items(), conc);
    ASSERT_TRUE(a.allOk());
    ASSERT_TRUE(b.allOk());
    ASSERT_EQ(a.items.size(), 2u);
    ASSERT_EQ(b.items.size(), 2u);
    for (std::size_t i = 0; i < a.items.size(); ++i) {
      EXPECT_EQ(a.items[i].name, b.items[i].name);
      EXPECT_EQ(std::bit_cast<std::uint64_t>(a.items[i].flow.finalHpwl),
                std::bit_cast<std::uint64_t>(b.items[i].flow.finalHpwl))
          << a.items[i].name << " at totalThreads=" << totalThreads;
    }
  }
}

TEST_F(SessionTest, ConcurrentSessionPositionsMatchSequentialRun) {
  // Drive two PlacerSessions by hand on separate threads and diff full
  // position vectors against back-to-back runs — the strongest identity,
  // beyond the HPWL bits the batch test checks.
  auto runOne = [&](const std::string& name, int threads) {
    SessionOptions so = fastSession();
    so.name = name;
    so.threads = threads;
    PlacerSession s(so);
    EXPECT_TRUE(s.load(aux(name)).ok());
    EXPECT_TRUE(s.place().ok());
    return positionBits(s.db());
  };

  const std::vector<std::uint64_t> refAlpha = runOne("alpha", 2);
  const std::vector<std::uint64_t> refBeta = runOne("beta", 2);

  std::vector<std::uint64_t> gotAlpha, gotBeta;
  std::thread ta([&] { gotAlpha = runOne("alpha", 2); });
  std::thread tb([&] { gotBeta = runOne("beta", 2); });
  ta.join();
  tb.join();
  EXPECT_EQ(refAlpha, gotAlpha);
  EXPECT_EQ(refBeta, gotBeta);
}

TEST_F(SessionTest, FaultArmedInOneSessionNeverFiresInAnother) {
  SessionOptions so = fastSession();
  so.name = "faulty";
  PlacerSession faulty(so);
  faulty.context().faults().arm(
      "nesterov.grad", {FaultKind::kNaN, /*atTick=*/30, /*count=*/1});

  so.name = "clean";
  PlacerSession clean(so);

  ASSERT_TRUE(faulty.load(aux("alpha")).ok());
  ASSERT_TRUE(clean.load(aux("alpha")).ok());

  // Run concurrently: isolation must hold while both are in flight.
  StatusOr<FlowResult> fr = Status::internal("not run");
  StatusOr<FlowResult> cr = Status::internal("not run");
  std::thread tf([&] { fr = faulty.place(); });
  std::thread tc([&] { cr = clean.place(); });
  tf.join();
  tc.join();

  EXPECT_EQ(faulty.context().faults().fireCount("nesterov.grad"), 1);
  EXPECT_EQ(clean.context().faults().fireCount("nesterov.grad"), 0);
  ASSERT_TRUE(cr.ok());
  EXPECT_TRUE(cr->status.ok()) << cr->status.toString();
  ASSERT_TRUE(fr.ok());

  // The reference run saw no fault, so the faulty session's recovery and
  // the clean session's result are both well-formed — and a third untouched
  // run matches the clean one bit-for-bit.
  PlacerSession again(so);
  ASSERT_TRUE(again.load(aux("alpha")).ok());
  ASSERT_TRUE(again.place().ok());
  EXPECT_EQ(std::bit_cast<std::uint64_t>(cr->finalHpwl),
            std::bit_cast<std::uint64_t>(again.result()->finalHpwl));
}

TEST_F(SessionTest, PerSessionSnapshotDirectoriesDoNotCollide) {
  const fs::path snapRoot = dir_ / "snaps";
  BatchOptions opt;
  opt.maxConcurrentSessions = 2;
  opt.session = fastSession();
  opt.session.sup.saveEvery = 10;
  opt.snapshotRoot = snapRoot.string();

  const BatchResult res = runPlacerBatch(items(), opt);
  ASSERT_TRUE(res.allOk());

  // Each session checkpointed under its own subdirectory, and both streams
  // produced at least one durable snapshot.
  for (const char* name : {"alpha", "beta"}) {
    const fs::path sub = snapRoot / name;
    ASSERT_TRUE(fs::is_directory(sub)) << sub;
    std::size_t count = 0;
    for (const auto& e : fs::directory_iterator(sub)) {
      EXPECT_NE(e.path().string().find(name), std::string::npos);
      ++count;
    }
    EXPECT_GT(count, 0u) << sub;
  }
}

TEST_F(SessionTest, PlaceWithoutLoadIsTypedError) {
  PlacerSession s(fastSession());
  const auto run = s.place();
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidInput);
  EXPECT_EQ(s.result(), nullptr);
}

TEST_F(SessionTest, AdoptFinalizesAndPlaces) {
  GenSpec spec;
  spec.name = "adopted";
  spec.numCells = 150;
  spec.seed = 3;
  SessionOptions so = fastSession();
  so.threads = 2;
  PlacerSession s(so);
  ASSERT_TRUE(s.adopt(generateCircuit(spec)).ok());
  const auto run = s.place();
  ASSERT_TRUE(run.ok());
  EXPECT_TRUE(std::isfinite(run->finalHpwl));
  EXPECT_NE(s.result(), nullptr);
}

}  // namespace
}  // namespace ep
