// Noise-aware regression gate (ctest label: regression).
//
// Two halves:
//  1. Synthetic baseline/candidate pairs exercise every gate arm with known
//     inputs: identical records pass, a 5% HPWL regression fails with a
//     field-level diff, wall-clock inside the band passes, a 2.5x breach
//     fails, noise below the floor is ignored, the median absorbs one slow
//     outlier, and mismatched preconditions are "incomparable", not diffed.
//  2. A fixed-seed supervised flow is diffed against a committed baseline in
//     tests/baselines/ — the live end of the gate that CI runs.
//
// Updating the committed baselines (after an intentional quality change, or
// on a platform whose libm produces different last-ulp bits):
//
//   EP_UPDATE_BASELINES=1 ./build/tests/test_regression
//
// rewrites tests/baselines/*.json in the source tree (path baked in via the
// EP_BASELINE_DIR compile definition) and reports the runs as passed. Commit
// the regenerated files together with the change that shifted them, and say
// why in the commit message. Wall-clock fields in committed baselines are
// never compared by this test (checkWall=false) — they are machine-specific;
// the synthetic half covers the banding logic.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "eplace/session.h"
#include "gen/generator.h"
#include "util/run_record.h"

namespace ep {
namespace {

#ifndef EP_BASELINE_DIR
#error "EP_BASELINE_DIR must point at tests/baselines (set in CMakeLists.txt)"
#endif

/// Synthetic five-stage record with plausible values; the synthetic tests
/// perturb copies of this.
RunRecord makeRecord() {
  RunRecord rec;
  rec.name = "synthetic";
  rec.fingerprint = 0x1122334455667788ULL;
  rec.seed = 7;
  rec.threads = 2;
  rec.supervised = true;
  int i = 0;
  for (const char* name : {"mIP", "mGP", "mLG", "cGP", "cDP"}) {
    StageRecord st;
    st.stage = name;
    st.ran = true;
    st.wallMs = 100.0 + 50.0 * i;
    st.iterations = 100 * i;
    st.hpwl = 1.0e6 - 1.0e4 * i;
    st.hpwlBits = doubleBits(st.hpwl);
    st.overflow = 0.5 / (1 + i);
    rec.stages.push_back(st);
    ++i;
  }
  rec.finalHpwl = rec.stages.back().hpwl;
  rec.finalHpwlBits = doubleBits(rec.finalHpwl);
  rec.finalScaledHpwl = rec.finalHpwl * 1.02;
  rec.finalOverflow = rec.stages.back().overflow;
  rec.legal = true;
  rec.totalSeconds = 0.6;
  rec.status = "Ok";
  return rec;
}

bool hasDiffOn(const RegressResult& res, const std::string& field) {
  for (const auto& d : res.diffs) {
    if (d.field.find(field) != std::string::npos && d.fatal) return true;
  }
  return false;
}

using RegressionGate = ::testing::Test;

TEST_F(RegressionGate, IdenticalRecordsPass) {
  const RunRecord base = makeRecord();
  const RegressResult res = compareRunRecords(base, {base});
  EXPECT_TRUE(res.pass) << res.summary();
  EXPECT_TRUE(res.diffs.empty());
}

TEST_F(RegressionGate, FivePercentHpwlRegressionFailsWithFieldDiff) {
  const RunRecord base = makeRecord();
  RunRecord cand = base;
  cand.finalHpwl = base.finalHpwl * 1.05;
  cand.finalHpwlBits = doubleBits(cand.finalHpwl);
  const RegressResult res = compareRunRecords(base, {cand});
  EXPECT_FALSE(res.pass);
  EXPECT_TRUE(hasDiffOn(res, "final.hpwl_bits")) << res.summary();
  // The report renders both bit patterns so a reviewer sees the magnitude.
  EXPECT_NE(res.summary().find(hexBits64(base.finalHpwlBits)),
            std::string::npos);
}

TEST_F(RegressionGate, LastUlpDriftStillFails) {
  // "Noise-aware" must not mean "tolerant": quality fields are bit-exact by
  // the determinism contract, so even a one-ulp drift is a real change.
  const RunRecord base = makeRecord();
  RunRecord cand = base;
  cand.stages[1].hpwlBits = base.stages[1].hpwlBits + 1;
  const RegressResult res = compareRunRecords(base, {cand});
  EXPECT_FALSE(res.pass);
  EXPECT_TRUE(hasDiffOn(res, "stages[mGP].hpwl_bits")) << res.summary();
}

TEST_F(RegressionGate, IterationAndRetryDriftFails) {
  const RunRecord base = makeRecord();
  RunRecord cand = base;
  cand.stages[3].iterations += 5;
  cand.stages[4].retries = 1;
  const RegressResult res = compareRunRecords(base, {cand});
  EXPECT_FALSE(res.pass);
  EXPECT_TRUE(hasDiffOn(res, "stages[cGP].iterations")) << res.summary();
  EXPECT_TRUE(hasDiffOn(res, "stages[cDP].retries")) << res.summary();
}

TEST_F(RegressionGate, WallWithinBandPasses) {
  const RunRecord base = makeRecord();
  RunRecord cand = base;
  for (auto& st : cand.stages) st.wallMs *= 1.4;  // inside the default 50%
  cand.totalSeconds *= 1.4;
  const RegressResult res = compareRunRecords(base, {cand});
  EXPECT_TRUE(res.pass) << res.summary();
}

TEST_F(RegressionGate, WallBreachFails) {
  const RunRecord base = makeRecord();
  RunRecord cand = base;
  cand.stages[1].wallMs *= 2.5;  // a real slowdown, far outside the band
  const RegressResult res = compareRunRecords(base, {cand});
  EXPECT_FALSE(res.pass);
  EXPECT_TRUE(hasDiffOn(res, "stages[mGP].wall_ms")) << res.summary();
}

TEST_F(RegressionGate, TotalWallBreachFails) {
  const RunRecord base = makeRecord();
  RunRecord cand = base;
  cand.totalSeconds *= 2.0;
  const RegressResult res = compareRunRecords(base, {cand});
  EXPECT_FALSE(res.pass);
  EXPECT_TRUE(hasDiffOn(res, "wall.total_seconds")) << res.summary();
}

TEST_F(RegressionGate, WallBelowNoiseFloorNeverGated) {
  RunRecord base = makeRecord();
  base.stages[0].wallMs = 5.0;  // under the 20 ms floor
  RunRecord cand = base;
  cand.stages[0].wallMs = 19.0;  // 3.8x "slower" — pure scheduler noise
  const RegressResult res = compareRunRecords(base, {cand});
  EXPECT_TRUE(res.pass) << res.summary();
}

TEST_F(RegressionGate, MedianAbsorbsOneSlowOutlier) {
  const RunRecord base = makeRecord();
  RunRecord slow = base;
  for (auto& st : slow.stages) st.wallMs *= 3.0;  // one preempted run
  slow.totalSeconds *= 3.0;
  // Median of {1x, 1x, 3x} is 1x: the gate judges the typical run.
  const RegressResult res = compareRunRecords(base, {base, slow, base});
  EXPECT_TRUE(res.pass) << res.summary();
}

TEST_F(RegressionGate, CandidatesDisagreeingIsADeterminismBreak) {
  const RunRecord base = makeRecord();
  RunRecord odd = base;
  odd.finalHpwlBits = base.finalHpwlBits ^ 1;
  const RegressResult res = compareRunRecords(base, {base, odd});
  EXPECT_FALSE(res.pass);
  EXPECT_TRUE(hasDiffOn(res, "run[1] vs run[0]")) << res.summary();
}

TEST_F(RegressionGate, NoWallPolicySkipsWallEntirely) {
  const RunRecord base = makeRecord();
  RunRecord cand = base;
  for (auto& st : cand.stages) st.wallMs *= 10.0;
  cand.totalSeconds *= 10.0;
  RegressPolicy policy;
  policy.checkWall = false;
  const RegressResult res = compareRunRecords(base, {cand}, policy);
  EXPECT_TRUE(res.pass) << res.summary();
}

TEST_F(RegressionGate, MismatchedPreconditionsAreIncomparable) {
  const RunRecord base = makeRecord();
  RunRecord cand = base;
  cand.fingerprint ^= 0xFFULL;  // different input netlist
  cand.finalHpwlBits ^= 1;      // would also diff — must NOT be reported
  const RegressResult res = compareRunRecords(base, {cand});
  EXPECT_FALSE(res.pass);
  EXPECT_TRUE(hasDiffOn(res, "fingerprint")) << res.summary();
  EXPECT_FALSE(hasDiffOn(res, "final.hpwl_bits"))
      << "value diffs must not be reported for incomparable records:\n"
      << res.summary();
}

TEST_F(RegressionGate, ThreadCountMismatchIsIncomparable) {
  const RunRecord base = makeRecord();
  RunRecord cand = base;
  cand.threads = 8;
  const RegressResult res = compareRunRecords(base, {cand});
  EXPECT_FALSE(res.pass);
  EXPECT_TRUE(hasDiffOn(res, "threads")) << res.summary();
}

// ---------------------------------------------------------------------------
// Committed-baseline gate: the fixed-seed flow CI runs.
// ---------------------------------------------------------------------------

struct BaselineCase {
  const char* name;
  std::uint64_t genSeed;
  std::size_t cells;
  std::size_t macros;
  std::uint64_t runSeed;
};

constexpr BaselineCase kBaselines[] = {
    {"flow_small", 101, 300, 2, 11},
    {"flow_macro", 102, 400, 6, 12},
};

RunRecord runBaselineCase(const BaselineCase& c) {
  GenSpec spec;
  spec.name = c.name;
  spec.numCells = c.cells;
  spec.numMovableMacros = c.macros;
  spec.seed = c.genSeed;

  SessionOptions so;
  so.name = c.name;
  so.threads = 2;
  so.seed = c.runSeed;
  so.supervised = true;
  so.flow.runDetail = false;
  so.flow.gp.maxIterations = 120;
  PlacerSession s(so);
  EXPECT_TRUE(s.adopt(generateCircuit(spec)).ok());
  EXPECT_TRUE(s.place().ok());
  EXPECT_NE(s.record(), nullptr);
  return *s.record();
}

std::string baselinePath(const BaselineCase& c) {
  return std::string(EP_BASELINE_DIR) + "/" + c.name + ".json";
}

class CommittedBaseline : public ::testing::TestWithParam<int> {};

TEST_P(CommittedBaseline, FixedSeedFlowMatchesCommittedRecord) {
  const BaselineCase& c = kBaselines[GetParam()];
  const RunRecord rec = runBaselineCase(c);

  if (std::getenv("EP_UPDATE_BASELINES") != nullptr) {
    ASSERT_TRUE(writeRunRecordFile(baselinePath(c), rec).ok());
    std::printf("updated %s (hpwl %s)\n", baselinePath(c).c_str(),
                hexBits64(rec.finalHpwlBits).c_str());
    return;
  }

  const StatusOr<RunRecord> baseline = readRunRecordFile(baselinePath(c));
  ASSERT_TRUE(baseline.ok())
      << "missing/invalid baseline " << baselinePath(c) << ": "
      << baseline.status().toString()
      << "; run EP_UPDATE_BASELINES=1 ./test_regression";

  RegressPolicy policy;
  policy.checkWall = false;  // committed wall figures are machine-specific
  const RegressResult res = compareRunRecords(baseline.value(), {rec}, policy);
  EXPECT_TRUE(res.pass) << res.summary()
                        << "if this change is intentional, regenerate with "
                           "EP_UPDATE_BASELINES=1 ./test_regression";
}

INSTANTIATE_TEST_SUITE_P(Cases, CommittedBaseline, ::testing::Values(0, 1));

}  // namespace
}  // namespace ep
