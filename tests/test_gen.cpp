#include <gtest/gtest.h>

#include <numeric>

#include "gen/generator.h"
#include "gen/suites.h"

namespace ep {
namespace {

TEST(Generator, ProducesValidInstance) {
  GenSpec spec;
  spec.numCells = 500;
  spec.numMovableMacros = 4;
  spec.numFixedMacros = 3;
  spec.seed = 9;
  const PlacementDB db = generateCircuit(spec);
  EXPECT_TRUE(db.validate().ok());
  EXPECT_FALSE(db.rows.empty());
  EXPECT_FALSE(db.nets.empty());
}

TEST(Generator, Deterministic) {
  GenSpec spec;
  spec.numCells = 300;
  spec.numMovableMacros = 2;
  spec.seed = 42;
  const PlacementDB a = generateCircuit(spec);
  const PlacementDB b = generateCircuit(spec);
  ASSERT_EQ(a.objects.size(), b.objects.size());
  ASSERT_EQ(a.nets.size(), b.nets.size());
  for (std::size_t i = 0; i < a.objects.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.objects[i].lx, b.objects[i].lx);
    EXPECT_DOUBLE_EQ(a.objects[i].w, b.objects[i].w);
  }
  for (std::size_t i = 0; i < a.nets.size(); ++i) {
    ASSERT_EQ(a.nets[i].pins.size(), b.nets[i].pins.size());
    for (std::size_t k = 0; k < a.nets[i].pins.size(); ++k) {
      EXPECT_EQ(a.nets[i].pins[k].obj, b.nets[i].pins[k].obj);
    }
  }
}

TEST(Generator, SeedChangesOutcome) {
  GenSpec spec;
  spec.numCells = 300;
  spec.seed = 1;
  const PlacementDB a = generateCircuit(spec);
  spec.seed = 2;
  const PlacementDB b = generateCircuit(spec);
  // Same counts, different structure.
  int diff = 0;
  for (std::size_t i = 0; i < std::min(a.nets.size(), b.nets.size()); ++i) {
    if (a.nets[i].pins.size() != b.nets[i].pins.size() ||
        a.nets[i].pins[0].obj != b.nets[i].pins[0].obj) {
      ++diff;
    }
  }
  EXPECT_GT(diff, 0);
}

TEST(Generator, CountsMatchSpec) {
  GenSpec spec;
  spec.numCells = 400;
  spec.numMovableMacros = 5;
  spec.numIo = 32;
  const PlacementDB db = generateCircuit(spec);
  std::size_t cells = 0, movMacros = 0, ios = 0;
  for (const auto& o : db.objects) {
    if (o.kind == ObjKind::kStdCell && !o.fixed) ++cells;
    if (o.kind == ObjKind::kMacro && !o.fixed) ++movMacros;
    if (o.kind == ObjKind::kIo) ++ios;
  }
  EXPECT_EQ(cells, 400u);
  EXPECT_EQ(movMacros, 5u);
  EXPECT_EQ(ios, 32u);
}

TEST(Generator, UtilizationInRange) {
  GenSpec spec;
  spec.numCells = 800;
  spec.utilization = 0.6;
  spec.targetDensity = 1.0;
  const PlacementDB db = generateCircuit(spec);
  const double util = db.totalMovableArea() / db.freeArea();
  EXPECT_NEAR(util, 0.6, 0.08);
}

TEST(Generator, TargetDensityRespected) {
  GenSpec spec;
  spec.numCells = 500;
  spec.targetDensity = 0.5;
  spec.utilization = 0.4;
  const PlacementDB db = generateCircuit(spec);
  EXPECT_DOUBLE_EQ(db.targetDensity, 0.5);
  // Movable area must fit under the density cap.
  EXPECT_LT(db.totalMovableArea(), 0.5 * db.freeArea());
}

TEST(Generator, MeanNetDegreeNearSpec) {
  GenSpec spec;
  spec.numCells = 2000;
  spec.avgNetDegree = 3.5;
  const PlacementDB db = generateCircuit(spec);
  double pins = 0.0;
  for (const auto& n : db.nets) pins += static_cast<double>(n.pins.size());
  const double mean = pins / static_cast<double>(db.nets.size());
  EXPECT_NEAR(mean, 3.5, 0.6);
}

TEST(Generator, NoFloatingMovables) {
  GenSpec spec;
  spec.numCells = 600;
  spec.numMovableMacros = 4;
  const PlacementDB db = generateCircuit(spec);
  for (auto i : db.movable()) {
    EXPECT_GT(db.degreeOf(i), 0) << "object " << i << " floats";
  }
}

TEST(Generator, ObjectsStartInsideRegion) {
  GenSpec spec;
  spec.numCells = 300;
  spec.numMovableMacros = 3;
  const PlacementDB db = generateCircuit(spec);
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    EXPECT_TRUE(db.region.contains(o.center()));
  }
}

TEST(Generator, FixedMacrosDoNotOverlap) {
  GenSpec spec;
  spec.numCells = 500;
  spec.numFixedMacros = 8;
  spec.seed = 77;
  const PlacementDB db = generateCircuit(spec);
  std::vector<const Object*> fixed;
  for (const auto& o : db.objects) {
    if (o.fixed && o.kind == ObjKind::kMacro) fixed.push_back(&o);
  }
  for (std::size_t i = 0; i < fixed.size(); ++i) {
    for (std::size_t j = i + 1; j < fixed.size(); ++j) {
      EXPECT_DOUBLE_EQ(fixed[i]->rect().overlapArea(fixed[j]->rect()), 0.0);
    }
  }
}

TEST(Generator, MacroAreaFraction) {
  GenSpec spec;
  spec.numCells = 1000;
  spec.numMovableMacros = 10;
  spec.macroAreaFraction = 0.3;
  const PlacementDB db = generateCircuit(spec);
  double cellArea = 0.0, macroArea = 0.0;
  for (auto i : db.movable()) {
    const auto& o = db.objects[static_cast<std::size_t>(i)];
    (o.kind == ObjKind::kMacro ? macroArea : cellArea) += o.area();
  }
  EXPECT_NEAR(macroArea / (macroArea + cellArea), 0.3, 0.08);
}

TEST(Suites, SizesAndNames) {
  const auto s05 = ispd2005Suite();
  const auto s06 = ispd2006Suite();
  const auto mms = mmsSuite();
  EXPECT_EQ(s05.size(), 8u);
  EXPECT_EQ(s06.size(), 8u);
  EXPECT_EQ(mms.size(), 16u);
  for (const auto& s : s05) {
    EXPECT_EQ(s.targetDensity, 1.0);
    EXPECT_EQ(s.numMovableMacros, 0u);
    EXPECT_GT(s.numFixedMacros, 0u);
  }
  for (const auto& s : mms) EXPECT_GT(s.numMovableMacros, 0u);
  // ISPD 2006 carries the paper's density bounds.
  EXPECT_DOUBLE_EQ(s06[0].targetDensity, 0.5);
  EXPECT_DOUBLE_EQ(s06[2].targetDensity, 0.9);
}

TEST(Suites, DistinctSeeds) {
  const auto mms = mmsSuite();
  for (std::size_t i = 0; i < mms.size(); ++i) {
    for (std::size_t j = i + 1; j < mms.size(); ++j) {
      EXPECT_NE(mms[i].seed, mms[j].seed);
    }
  }
}

TEST(Suites, LookupByName) {
  const GenSpec s = suiteSpec("mms_adaptec1s");
  EXPECT_EQ(s.name, "mms_adaptec1s");
  EXPECT_GT(s.numMovableMacros, 0u);
}

}  // namespace
}  // namespace ep
