// Thread-count determinism: the placer must produce bit-identical results
// for any --threads value (docs/PERFORMANCE.md). Every parallel kernel is
// designed so each double is computed by exactly the same FP expression
// sequence as the serial code — these tests enforce that contract at the
// whole-stage level, comparing positions bit-for-bit (not within an eps).
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <vector>

#include "eplace/flow.h"
#include "eplace/global_placer.h"
#include "gen/generator.h"
#include "qp/initial_place.h"
#include "util/context.h"

namespace ep {
namespace {

PlacementDB circuit(std::uint64_t seed, std::size_t cells,
                    std::size_t macros = 0) {
  GenSpec spec;
  spec.name = "det";
  spec.numCells = cells;
  spec.numMovableMacros = macros;
  spec.seed = seed;
  return generateCircuit(spec);
}

std::vector<double> movablePositions(const PlacementDB& db) {
  std::vector<double> v;
  for (auto i : db.movable()) {
    const Point c = db.objects[static_cast<std::size_t>(i)].center();
    v.push_back(c.x);
    v.push_back(c.y);
  }
  return v;
}

/// Bitwise equality over doubles: EXPECT_EQ would conflate -0.0 and 0.0.
void expectBitIdentical(const std::vector<double>& a,
                        const std::vector<double>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(a[i]),
              std::bit_cast<std::uint64_t>(b[i]))
        << "coordinate " << i << ": " << a[i] << " vs " << b[i];
  }
}

struct RunOutcome {
  std::vector<double> positions;
  double hpwl = 0.0;
  int iterations = 0;
};

/// mGP on a `threads`-worker context from a fresh copy of the instance.
RunOutcome runMgp(std::uint64_t seed, int threads) {
  RuntimeContext ctx(threads);
  PlacementDB db = circuit(seed, 400);
  quadraticInitialPlace(db, {}, &ctx);
  GlobalPlacer gp(db, db.movable(), GpConfig{}, &ctx);
  gp.makeFillersFromDb();
  const GpResult res = gp.run();
  EXPECT_TRUE(res.status.ok());
  return {movablePositions(db), res.finalHpwl, res.iterations};
}

/// Mixed-size flow (mGP + mLG + cGP, no detail) on `threads` workers.
RunOutcome runMixedFlow(std::uint64_t seed, int threads) {
  RuntimeContext ctx(threads);
  PlacementDB db = circuit(seed, 300, 4);
  FlowConfig cfg;
  cfg.runDetail = false;
  const FlowResult res = runEplaceFlow(db, cfg, &ctx);
  return {movablePositions(db), res.finalHpwl, res.mgp.iterations};
}

using Determinism = ::testing::Test;

TEST_F(Determinism, MgpOneVsFourThreads) {
  const RunOutcome serial = runMgp(11, 1);
  const RunOutcome parallel = runMgp(11, 4);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.hpwl),
            std::bit_cast<std::uint64_t>(parallel.hpwl));
  expectBitIdentical(serial.positions, parallel.positions);
}

TEST_F(Determinism, MixedSizeFlowOneVsFourThreads) {
  const RunOutcome serial = runMixedFlow(12, 1);
  const RunOutcome parallel = runMixedFlow(12, 4);
  EXPECT_EQ(serial.iterations, parallel.iterations);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(serial.hpwl),
            std::bit_cast<std::uint64_t>(parallel.hpwl));
  expectBitIdentical(serial.positions, parallel.positions);
}

TEST_F(Determinism, RepeatedFourThreadRunsIdentical) {
  const RunOutcome first = runMgp(13, 4);
  const RunOutcome second = runMgp(13, 4);
  EXPECT_EQ(first.iterations, second.iterations);
  EXPECT_EQ(std::bit_cast<std::uint64_t>(first.hpwl),
            std::bit_cast<std::uint64_t>(second.hpwl));
  expectBitIdentical(first.positions, second.positions);
}

TEST_F(Determinism, OddThreadCountMatchesToo) {
  // Partition boundaries move with the thread count; 3 exercises uneven
  // n/P splits that 1/2/4 do not.
  const RunOutcome serial = runMgp(14, 1);
  const RunOutcome three = runMgp(14, 3);
  expectBitIdentical(serial.positions, three.positions);
}

}  // namespace
}  // namespace ep
