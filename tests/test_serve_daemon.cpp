// End-to-end daemon tests over a real AF_UNIX socket: bit-exact parity with
// solo runs, cooperative cancel, per-job fault isolation, bounded admission,
// malformed-input survival, daemon-level fault sites, graceful drain,
// preempt-at-drain-deadline resume, and the headline crash test — SIGKILL
// the eplace_serve subprocess mid-batch, restart on the same state root, and
// require the interrupted jobs to finish bit-identically to never-killed
// runs. Socket paths stay short (sun_path is ~100 bytes).
#include <gtest/gtest.h>

#include <csignal>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "eplace/session.h"
#include "gen/generator.h"
#include "serve/client.h"
#include "serve/daemon.h"
#include "serve/journal.h"
#include "serve/protocol.h"
#include "util/fault_injector.h"
#include "util/run_record.h"
#include "util/status.h"

namespace fs = std::filesystem;
using namespace ep;
using namespace ep::serve;

namespace {

constexpr int kCells = 220;
constexpr int kIters = 40;
constexpr std::uint64_t kSeed = 11;

/// Solo oracle with EXACTLY the daemon job's placement configuration.
std::uint64_t soloBits(std::uint64_t seed = kSeed, int iters = kIters) {
  SessionOptions so;
  so.name = "solo";
  so.threads = 1;
  so.logLevel = LogLevel::kOff;
  so.supervised = true;
  so.flow.gp.maxIterations = iters;
  so.flow.runDetail = false;
  PlacerSession session(so);
  GenSpec gs;
  gs.name = "solo";
  gs.numCells = kCells;
  gs.seed = seed;
  EXPECT_TRUE(session.adopt(generateCircuit(gs)).ok());
  auto res = session.place();
  EXPECT_TRUE(res.ok());
  return std::bit_cast<std::uint64_t>(res->finalHpwl);
}

JobSpec cleanJob(const std::string& name, std::uint64_t seed = kSeed,
                 int iters = kIters) {
  JobSpec spec;
  spec.name = name;
  spec.hasGen = true;
  spec.gen.numCells = kCells;
  spec.gen.seed = seed;
  spec.gpMaxIterations = iters;
  spec.runDetail = false;
  return spec;
}

class ServeDaemonTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string name = ::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name();
    root_ = "/tmp/ep_sd_" + name;
    sock_ = "/tmp/ep_sd_" + name + ".sock";
    fs::remove_all(root_);
    fs::remove(sock_);
  }
  void TearDown() override {
    fs::remove_all(root_);
    fs::remove(sock_);
  }

  ServeOptions baseOptions() {
    ServeOptions opt;
    opt.socketPath = sock_;
    opt.root = root_;
    opt.workers = 2;
    opt.logLevel = LogLevel::kOff;
    return opt;
  }

  std::string root_;
  std::string sock_;
};

}  // namespace

TEST_F(ServeDaemonTest, SubmitWaitBitExactVsSolo) {
  ServeDaemon daemon(baseOptions());
  ASSERT_TRUE(daemon.start().ok());
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());
  ASSERT_TRUE(client.ping().ok());

  auto id1 = client.submit(cleanJob("a"));
  auto id2 = client.submit(cleanJob("b"));
  ASSERT_TRUE(id1.ok() && id2.ok());
  auto out1 = client.wait(*id1, 300.0);
  auto out2 = client.wait(*id2, 300.0);
  ASSERT_TRUE(out1.ok()) << out1.status().toString();
  ASSERT_TRUE(out2.ok()) << out2.status().toString();
  EXPECT_TRUE(out1->status.ok());
  const std::uint64_t solo = soloBits();
  EXPECT_EQ(out1->hpwlBits, solo);
  EXPECT_EQ(out2->hpwlBits, solo);
  EXPECT_GT(out1->wallSeconds, 0.0);
  EXPECT_FALSE(out1->resumed);

  // Every successful outcome carries a schema-valid RunRecord that survived
  // the wire round-trip; its deterministic fields agree with the outcome.
  ASSERT_TRUE(out1->record.isObject());
  RunRecord rec;
  const Status recSt = runRecordFromJson(out1->record, &rec);
  ASSERT_TRUE(recSt.ok()) << recSt.toString();
  EXPECT_EQ(rec.name, "a");
  EXPECT_EQ(rec.finalHpwlBits, solo);
  EXPECT_TRUE(rec.supervised);  // daemon jobs run under the supervisor

  daemon.requestShutdown();
  daemon.wait();
}

TEST_F(ServeDaemonTest, CancelRunningJobYieldsCancelled) {
  ServeDaemon daemon(baseOptions());
  ASSERT_TRUE(daemon.start().ok());
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());

  JobSpec spec = cleanJob("slow", kSeed, 5000);
  spec.gen.numCells = 2000;
  auto id = client.submit(spec);
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(400));
  ASSERT_TRUE(client.cancel(*id).ok());
  auto out = client.wait(*id, 120.0);
  ASSERT_TRUE(out.ok()) << out.status().toString();
  EXPECT_EQ(out->status.code(), StatusCode::kCancelled)
      << out->status.toString();

  daemon.requestShutdown();
  daemon.wait();
}

TEST_F(ServeDaemonTest, CancelQueuedJobNeverRuns) {
  ServeOptions opt = baseOptions();
  opt.workers = 1;
  ServeDaemon daemon(opt);
  ASSERT_TRUE(daemon.start().ok());
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());

  JobSpec blocker = cleanJob("blocker", kSeed, 2000);
  blocker.gen.numCells = 1500;
  auto b = client.submit(blocker);
  ASSERT_TRUE(b.ok());
  auto q = client.submit(cleanJob("queued"));
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(client.cancel(*q).ok());
  auto out = client.wait(*q, 60.0);
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->status.code(), StatusCode::kCancelled);
  EXPECT_EQ(out->wallSeconds, 0.0);  // never dispatched
  ASSERT_TRUE(client.cancel(*b).ok());
  ASSERT_TRUE(client.wait(*b, 120.0).ok());

  daemon.requestShutdown();
  daemon.wait();
}

TEST_F(ServeDaemonTest, PoisonedJobFailsAloneNeighborsBitExact) {
  ServeDaemon daemon(baseOptions());
  ASSERT_TRUE(daemon.start().ok());
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());

  // The poisoned job NaNs every gradient evaluation, defeating every
  // supervisor retry — it must end with a typed failure, not hang or crash.
  JobSpec poisoned = cleanJob("poisoned");
  InjectSpec inj;
  inj.site = "nesterov.grad";
  inj.spec.kind = FaultKind::kNaN;
  inj.spec.atTick = 0;
  inj.spec.count = 1000000;
  poisoned.injections.push_back(inj);

  auto a = client.submit(cleanJob("left"));
  auto p = client.submit(poisoned);
  auto b = client.submit(cleanJob("right"));
  ASSERT_TRUE(a.ok() && p.ok() && b.ok());

  auto outP = client.wait(*p, 300.0);
  ASSERT_TRUE(outP.ok());
  EXPECT_FALSE(outP->status.ok());
  EXPECT_NE(outP->status.code(), StatusCode::kInternal)
      << outP->status.toString();

  const std::uint64_t solo = soloBits();
  for (auto id : {*a, *b}) {
    auto out = client.wait(id, 300.0);
    ASSERT_TRUE(out.ok());
    EXPECT_TRUE(out->status.ok()) << out->status.toString();
    EXPECT_EQ(out->hpwlBits, solo);
  }

  daemon.requestShutdown();
  daemon.wait();
}

TEST_F(ServeDaemonTest, FullQueueRejectsTypedWithoutBlocking) {
  ServeOptions opt = baseOptions();
  opt.workers = 1;
  opt.queueCapacity = 1;
  ServeDaemon daemon(opt);
  ASSERT_TRUE(daemon.start().ok());
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());

  JobSpec blocker = cleanJob("blocker", kSeed, 5000);
  blocker.gen.numCells = 2000;
  ASSERT_TRUE(client.submit(blocker).ok());  // running
  // Give the worker a moment to claim the blocker so the next submit is
  // the one queued entry.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ASSERT_TRUE(client.submit(cleanJob("queued")).ok());

  const auto t0 = std::chrono::steady_clock::now();
  auto rejected = client.submit(cleanJob("over"));
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_LT(took, 2.0);  // admission never blocks
  // The rejected submit left no trace: no journal entry, no result.
  EXPECT_FALSE(fs::exists(root_ + "/jobs/job_3.json"));

  daemon.requestShutdown();
  daemon.wait();
}

TEST_F(ServeDaemonTest, MalformedLinesGetTypedErrorsDaemonSurvives) {
  ServeDaemon daemon(baseOptions());
  ASSERT_TRUE(daemon.start().ok());
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());

  for (const std::string bad :
       {std::string("this is not json"), std::string("{\"op\":\"warp\"}"),
        std::string("{\"op\":\"submit\",\"job\":{}}"), std::string("{")}) {
    auto raw = client.callRaw(bad, 30.0);
    ASSERT_TRUE(raw.ok()) << bad;
    auto resp = parseJson(*raw);
    ASSERT_TRUE(resp.ok()) << *raw;
    EXPECT_FALSE(resp->getBool("ok", true)) << *raw;
    EXPECT_EQ(statusFromResponse(*resp).code(), StatusCode::kInvalidInput);
  }
  // Same connection still serves valid requests.
  EXPECT_TRUE(client.ping().ok());

  // An oversized un-newlined line loses framing: the daemon may close the
  // connection after its one typed rejection, but must keep serving new
  // connections.
  ServeClient big;
  ASSERT_TRUE(big.connect(sock_).ok());
  std::string huge(200 * 1024, 'x');
  (void)big.callRaw(huge, 10.0);
  ServeClient fresh;
  ASSERT_TRUE(fresh.connect(sock_).ok());
  EXPECT_TRUE(fresh.ping().ok());

  daemon.requestShutdown();
  daemon.wait();
}

TEST_F(ServeDaemonTest, ServeFaultSitesDegradeOneRequestOnly) {
  ServeDaemon daemon(baseOptions());
  ASSERT_TRUE(daemon.start().ok());

  // serve.request: one raw line is corrupted before parsing -> typed
  // rejection for that request, daemon unharmed.
  FaultSpec corrupt;
  corrupt.kind = FaultKind::kTruncate;
  corrupt.atTick = 0;
  corrupt.count = 1;
  daemon.context().faults().arm("serve.request", corrupt);
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());
  {
    auto raw = client.callRaw("{\"op\":\"stats\"}", 30.0);
    ASSERT_TRUE(raw.ok());
    auto resp = parseJson(*raw);
    ASSERT_TRUE(resp.ok());
    EXPECT_FALSE(resp->getBool("ok", true));
  }
  EXPECT_TRUE(client.ping().ok());  // next request is clean

  // serve.accept: one admission is refused kUnavailable; the retry lands.
  FaultSpec refuse;
  refuse.kind = FaultKind::kNaN;
  refuse.atTick = 0;
  refuse.count = 1;
  daemon.context().faults().arm("serve.accept", refuse);
  auto denied = client.submit(cleanJob("denied"));
  ASSERT_FALSE(denied.ok());
  EXPECT_EQ(denied.status().code(), StatusCode::kUnavailable);
  auto retried = client.submit(cleanJob("retried"));
  ASSERT_TRUE(retried.ok());
  auto out = client.wait(*retried, 300.0);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->status.ok());
  EXPECT_EQ(out->hpwlBits, soloBits());

  daemon.requestShutdown();
  daemon.wait();
}

TEST_F(ServeDaemonTest, GracefulShutdownDrainsRunningJobs) {
  ServeOptions opt = baseOptions();
  opt.drainSeconds = 120.0;
  ServeDaemon daemon(opt);
  ASSERT_TRUE(daemon.start().ok());
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());
  auto id = client.submit(cleanJob("drained"));
  ASSERT_TRUE(id.ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  daemon.requestShutdown();
  daemon.wait();

  // The running job finished inside the drain window; its durable result
  // matches the solo run and the stats dump exists.
  JobStore store(root_);
  auto out = store.readResult(*id);
  ASSERT_TRUE(out.ok()) << out.status().toString();
  EXPECT_TRUE(out->status.ok());
  EXPECT_EQ(out->hpwlBits, soloBits());
  EXPECT_TRUE(fs::exists(root_ + "/serve_stats.json"));
  EXPECT_TRUE(store.recoverPending().empty());
}

TEST_F(ServeDaemonTest, DrainDeadlinePreemptsThenRestartResumesBitExact) {
  // Heavy enough that neither job can finish before the shutdown below
  // (sized against the planned-FFT kernels: a 4000-cell supervised flow
  // stays well past the 600 ms preemption point on any machine).
  constexpr std::size_t kBigCells = 4000;
  auto bigJob = [](const char* name) {
    JobSpec spec = cleanJob(name, kSeed, 1500);
    spec.gen.numCells = kBigCells;
    return spec;
  };
  std::uint64_t solo = 0;
  {
    SessionOptions so;
    so.name = "solo";
    so.threads = 1;
    so.logLevel = LogLevel::kOff;
    so.supervised = true;
    so.flow.gp.maxIterations = 1500;
    so.flow.runDetail = false;
    PlacerSession session(so);
    GenSpec gs;
    gs.name = "solo";
    gs.numCells = kBigCells;
    gs.seed = kSeed;
    ASSERT_TRUE(session.adopt(generateCircuit(gs)).ok());
    auto res = session.place();
    ASSERT_TRUE(res.ok());
    solo = std::bit_cast<std::uint64_t>(res->finalHpwl);
  }
  {
    ServeOptions opt = baseOptions();
    opt.workers = 1;
    opt.drainSeconds = 0.0;  // preempt immediately at shutdown
    opt.defaultSaveEvery = 5;
    ServeDaemon daemon(opt);
    ASSERT_TRUE(daemon.start().ok());
    ServeClient client;
    ASSERT_TRUE(client.connect(sock_).ok());
    // One running + one still queued at shutdown; both must survive.
    auto r = client.submit(bigJob("running"));
    auto q = client.submit(bigJob("queued"));
    ASSERT_TRUE(r.ok() && q.ok());
    // Let the running job put real iterations behind a snapshot.
    std::this_thread::sleep_for(std::chrono::milliseconds(600));
    daemon.requestShutdown();
    daemon.wait();
    JobStore store(root_);
    EXPECT_EQ(store.recoverPending().size(), 2u);
  }
  {
    ServeOptions opt = baseOptions();
    ServeDaemon daemon(opt);
    ASSERT_TRUE(daemon.start().ok());
    EXPECT_EQ(daemon.recoveredJobs(), 2);
    ServeClient client;
    ASSERT_TRUE(client.connect(sock_).ok());
    for (std::uint64_t id : {1ULL, 2ULL}) {
      auto out = client.wait(id, 300.0);
      ASSERT_TRUE(out.ok()) << out.status().toString();
      EXPECT_TRUE(out->status.ok()) << out->status.toString();
      EXPECT_EQ(out->hpwlBits, solo) << "job " << id;
    }
    daemon.requestShutdown();
    daemon.wait();
  }
}

TEST_F(ServeDaemonTest, DeadlineMapsToWallBudget) {
  ServeDaemon daemon(baseOptions());
  ASSERT_TRUE(daemon.start().ok());
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());
  JobSpec spec = cleanJob("deadline", kSeed, 100000);
  spec.gen.numCells = 2000;
  spec.deadlineSeconds = 0.3;
  auto id = client.submit(spec);
  ASSERT_TRUE(id.ok());
  const auto t0 = std::chrono::steady_clock::now();
  auto out = client.wait(*id, 120.0);
  const double took =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  ASSERT_TRUE(out.ok());
  // A 100k-iteration 2000-cell job cannot finish in the budget: the
  // deadline must cut it short with a typed terminal outcome.
  EXPECT_LT(took, 60.0);
  if (!out->status.ok()) {
    EXPECT_EQ(out->status.code(), StatusCode::kTimeout)
        << out->status.toString();
  }
  daemon.requestShutdown();
  daemon.wait();
}

TEST_F(ServeDaemonTest, WatchStreamsProgressEvents) {
  ServeDaemon daemon(baseOptions());
  ASSERT_TRUE(daemon.start().ok());
  ServeClient submitter;
  ASSERT_TRUE(submitter.connect(sock_).ok());
  auto id = submitter.submit(cleanJob("watched"));
  ASSERT_TRUE(id.ok());

  ServeClient watcher;
  ASSERT_TRUE(watcher.connect(sock_).ok());
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str("watch"));
  req.set("id", JsonValue::number(static_cast<double>(*id)));
  auto raw = watcher.callRaw(writeJson(req), 300.0);
  ASSERT_TRUE(raw.ok());
  int events = 0;
  bool sawFinal = false;
  std::string line = *raw;
  for (int i = 0; i < 10000 && !sawFinal; ++i) {
    auto v = parseJson(line);
    ASSERT_TRUE(v.ok()) << line;
    if (v->find("event") != nullptr) {
      ++events;
    } else {
      EXPECT_TRUE(v->getBool("ok", false)) << line;
      EXPECT_NE(v->find("result"), nullptr);
      sawFinal = true;
      break;
    }
    auto next = watcher.readLine(300.0);
    ASSERT_TRUE(next.ok()) << next.status().toString();
    line = *next;
  }
  EXPECT_TRUE(sawFinal);
  EXPECT_GT(events, 0);

  daemon.requestShutdown();
  daemon.wait();
}

// ---------------------------------------------------------------------------
// The headline crash test: SIGKILL the real daemon binary mid-batch.

namespace {

pid_t spawnDaemon(const std::string& sock, const std::string& root) {
  const pid_t pid = fork();
  if (pid == 0) {
    execl(EP_SERVE_BIN, "eplace_serve", "--socket", sock.c_str(), "--root",
          root.c_str(), "--workers", "1", "--save-every", "5",
          "--log-level", "off", static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

}  // namespace

TEST_F(ServeDaemonTest, KillNineMidBatchThenRestartFinishesBitExact) {
  const int iters = 600;
  const std::uint64_t solo = soloBits(kSeed, iters);

  const pid_t pid = spawnDaemon(sock_, root_);
  ASSERT_GT(pid, 0);
  {
    ServeClient client;
    ASSERT_TRUE(client.connect(sock_, 15.0).ok());
    // Two jobs: one running, one queued when the axe falls.
    JobSpec spec = cleanJob("victim", kSeed, iters);
    spec.saveEvery = 5;
    ASSERT_TRUE(client.submit(spec).ok());
    ASSERT_TRUE(client.submit(spec).ok());
    // Wait until the running job has at least two COMPLETED snapshots (a
    // lone entry could be the torn .tmp of a write the kill interrupts,
    // which would leave nothing valid to resume from).
    const std::string snapDir = root_ + "/snaps/job_1";
    int completed = 0;
    for (int i = 0; i < 1500 && completed < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      completed = 0;
      if (fs::exists(snapDir)) {
        for (const auto& e : fs::directory_iterator(snapDir)) {
          if (e.path().extension() == ".epsnap") ++completed;
        }
      }
    }
    ASSERT_GE(completed, 2) << "no snapshots appeared before the kill";
  }
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  fs::remove(sock_);  // the killed daemon could not unlink its socket

  // Both journals survived the kill; neither has a result yet.
  {
    JobStore store(root_);
    EXPECT_EQ(store.recoverPending().size(), 2u);
  }

  // Restart in-process on the same root: both jobs must be re-admitted and
  // finish bit-identically to a never-killed run.
  ServeOptions opt = baseOptions();
  ServeDaemon daemon(opt);
  ASSERT_TRUE(daemon.start().ok());
  EXPECT_EQ(daemon.recoveredJobs(), 2);
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());
  bool anyResumed = false;
  for (std::uint64_t id : {1ULL, 2ULL}) {
    auto out = client.wait(id, 600.0);
    ASSERT_TRUE(out.ok()) << out.status().toString();
    EXPECT_TRUE(out->status.ok()) << out->status.toString();
    EXPECT_EQ(out->hpwlBits, solo) << "job " << id;
    anyResumed = anyResumed || out->resumed;
  }
  // The job that was mid-GP when killed must have resumed from its
  // snapshot rather than recomputed from scratch.
  EXPECT_TRUE(anyResumed);
  daemon.requestShutdown();
  daemon.wait();
}

namespace {

/// Overwrites a file with garbage of the same length (defeats both the
/// snapshot CRC and the journal's JSON parse without changing sizes).
void corruptFile(const fs::path& p) {
  const auto n = static_cast<std::size_t>(fs::file_size(p));
  std::string garbage(n > 0 ? n : 16, '\xa5');
  std::FILE* f = std::fopen(p.c_str(), "wb");
  ASSERT_NE(f, nullptr) << p;
  std::fwrite(garbage.data(), 1, garbage.size(), f);
  std::fclose(f);
}

}  // namespace

// Worst-case restart: the daemon is SIGKILLed mid-batch and EVERY durable
// artifact it would resume from is then corrupted — all snapshots of the
// running job, plus the queued job's journal entry. The restart must not
// crash-loop: the corrupt journal entry is dropped with a warning (typed
// absence, not a crash), and the job whose snapshots are all invalid is
// re-run from scratch to a bit-exact result.
TEST_F(ServeDaemonTest, CorruptSnapshotsAndJournalAtRestartNeverCrashLoop) {
  const int iters = 600;
  const std::uint64_t solo = soloBits(kSeed, iters);

  const pid_t pid = spawnDaemon(sock_, root_);
  ASSERT_GT(pid, 0);
  {
    ServeClient client;
    ASSERT_TRUE(client.connect(sock_, 15.0).ok());
    JobSpec spec = cleanJob("victim", kSeed, iters);
    spec.saveEvery = 5;
    ASSERT_TRUE(client.submit(spec).ok());
    ASSERT_TRUE(client.submit(spec).ok());
    const std::string snapDir = root_ + "/snaps/job_1";
    int completed = 0;
    for (int i = 0; i < 1500 && completed < 2; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      completed = 0;
      if (fs::exists(snapDir)) {
        for (const auto& e : fs::directory_iterator(snapDir)) {
          if (e.path().extension() == ".epsnap") ++completed;
        }
      }
    }
    ASSERT_GE(completed, 2) << "no snapshots appeared before the kill";
  }
  ASSERT_EQ(kill(pid, SIGKILL), 0);
  int wstatus = 0;
  ASSERT_EQ(waitpid(pid, &wstatus, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(wstatus));
  fs::remove(sock_);

  // Poison everything the restart would trust.
  int corrupted = 0;
  for (const char* dir : {"/snaps/job_1", "/snaps/job_2"}) {
    if (!fs::exists(root_ + dir)) continue;
    for (const auto& e : fs::directory_iterator(root_ + dir)) {
      if (!e.is_regular_file()) continue;
      corruptFile(e.path());
      ++corrupted;
    }
  }
  ASSERT_GT(corrupted, 0);
  ASSERT_TRUE(fs::exists(root_ + "/jobs/job_2.json"));
  corruptFile(root_ + "/jobs/job_2.json");

  // Restart on the poisoned root. Job 1 (intact journal, corrupt
  // snapshots) is re-admitted and re-run from scratch; job 2 (corrupt
  // journal) is skipped with a warning. Neither crashes the daemon.
  ServeOptions opt = baseOptions();
  ServeDaemon daemon(opt);
  ASSERT_TRUE(daemon.start().ok());
  EXPECT_EQ(daemon.recoveredJobs(), 1);
  ServeClient client;
  ASSERT_TRUE(client.connect(sock_).ok());
  EXPECT_TRUE(client.ping().ok());

  auto out = client.wait(1, 600.0);
  ASSERT_TRUE(out.ok()) << out.status().toString();
  EXPECT_TRUE(out->status.ok()) << out->status.toString();
  EXPECT_EQ(out->hpwlBits, solo);
  EXPECT_FALSE(out->resumed) << "no valid snapshot existed to resume from";

  // The dropped job is a typed absence on the wire, not a crash.
  JsonValue req = JsonValue::object();
  req.set("op", JsonValue::str("result"));
  req.set("id", JsonValue::number(2.0));
  auto resp = client.call(req, 30.0);
  ASSERT_TRUE(resp.ok());
  EXPECT_FALSE(resp->getBool("ok", true));
  EXPECT_EQ(statusFromResponse(*resp).code(), StatusCode::kInvalidInput);

  daemon.requestShutdown();
  daemon.wait();
}
