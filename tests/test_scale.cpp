// Scale lane (`ctest -L scale`, the `scale` preset, a dedicated CI job):
// a generated 100k-cell design runs the full supervised flow through the
// multilevel V-cycle under explicit wall-clock and memory ceilings. The
// test is expensive by design, so it only runs when EP_SCALE_TEST=1 is
// set (the preset sets it; a plain `ctest` skips in milliseconds).
#include <gtest/gtest.h>

#include <sys/resource.h>

#include <cstdlib>
#include <cstdint>

#include "eplace/flow.h"
#include "eplace/supervisor.h"
#include "gen/suites.h"
#include "util/context.h"
#include "util/timer.h"

namespace ep {
namespace {

bool scaleEnabled() {
  const char* v = std::getenv("EP_SCALE_TEST");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

/// Process peak RSS in bytes (Linux ru_maxrss is KiB).
std::size_t peakRssBytes() {
  struct rusage ru{};
  getrusage(RUSAGE_SELF, &ru);
  return static_cast<std::size_t>(ru.ru_maxrss) * 1024;
}

TEST(ScaleTest, Supervised100kMultilevelFlowWithinBudgets) {
  if (!scaleEnabled()) {
    GTEST_SKIP() << "set EP_SCALE_TEST=1 (or run the scale preset)";
  }
  const GenSpec spec = suiteSpec("scale_100k");
  PlacementDB db = generateCircuit(spec);
  ASSERT_GE(db.numMovable(), 100000u);

  RuntimeContext ctx(4);
  SupervisorConfig sup;
  sup.multilevel.enabled = true;
  FlowConfig cfg;
  SupervisorReport report;

  Timer t;
  const auto run = runSupervisedFlow(db, cfg, sup, &report, &ctx);
  const double wall = t.seconds();
  ASSERT_TRUE(run.ok()) << run.status().message();
  EXPECT_TRUE(run->status.ok()) << run->status.message();

  // The ladder must actually engage at this size, and every coarse level
  // must have run as a real GP stage.
  ASSERT_FALSE(run->mgpLevels.empty());
  for (const auto& lm : run->mgpLevels) {
    EXPECT_TRUE(lm.metrics.ran) << "level " << lm.level;
    EXPECT_GT(lm.clusters, 0u) << "level " << lm.level;
  }

  // mGP -> cDP completed: a legal placement with sane quality metrics.
  EXPECT_TRUE(run->cdp.ran);
  EXPECT_TRUE(run->legality.legal);
  EXPECT_GT(run->finalHpwl, 0.0);

  // Budgets for the CI lane (4 vCPUs): generous enough to absorb
  // scheduler noise, tight enough that a superlinear regression in any
  // stage or a vector-regrowth memory spike fails the lane.
  EXPECT_LT(wall, 900.0) << "wall seconds over the scale budget";
  // Peak RSS stays O(cells): ~150 MB of model + optimizer state for 100k
  // cells; 2 GiB flags an accidental O(n^2) or regrowth blowup.
  EXPECT_LT(peakRssBytes(), std::size_t{2} << 30)
      << "peak RSS " << (peakRssBytes() >> 20) << " MiB over the budget";

  std::printf("scale_100k: %.1fs wall, %zu MiB peak RSS, HPWL %.4g, "
              "%zu coarse levels\n",
              wall, peakRssBytes() >> 20, run->finalHpwl,
              run->mgpLevels.size());
}

}  // namespace
}  // namespace ep
